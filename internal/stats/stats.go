// Package stats provides the small statistical toolkit the experiment
// harness needs: streaming summaries, quantiles, least-squares fits and
// log–log scaling exponents.
package stats

import (
	"fmt"
	"math"
	"slices"
)

// Summary accumulates a stream of observations with Welford's online
// algorithm. The zero value is ready to use.
type Summary struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		s.min = math.Min(s.min, x)
		s.max = math.Max(s.max, x)
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of observations.
func (s *Summary) N() int64 { return s.n }

// Mean returns the sample mean (0 for an empty summary).
func (s *Summary) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance.
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation (0 for an empty summary).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 for an empty summary).
func (s *Summary) Max() float64 { return s.max }

// String formats the summary as "mean ± std [min, max] (n)".
func (s *Summary) String() string {
	return fmt.Sprintf("%.4g ± %.3g [%.4g, %.4g] (n=%d)", s.Mean(), s.Std(), s.Min(), s.Max(), s.N())
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs by linear
// interpolation on the sorted copy. It returns NaN for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	sorted := slices.Clone(xs)
	slices.Sort(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Fit holds an ordinary least-squares line y = Slope·x + Intercept.
type Fit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// LinearFit computes the least-squares line through (x, y). It returns
// an error if fewer than two points are given or the x values are all
// identical.
func LinearFit(x, y []float64) (Fit, error) {
	if len(x) != len(y) {
		return Fit{}, fmt.Errorf("stats: mismatched lengths %d, %d", len(x), len(y))
	}
	if len(x) < 2 {
		return Fit{}, fmt.Errorf("stats: need ≥ 2 points, got %d", len(x))
	}
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Fit{}, fmt.Errorf("stats: degenerate fit (constant x)")
	}
	slope := sxy / sxx
	fit := Fit{Slope: slope, Intercept: my - slope*mx, R2: 1}
	if syy > 0 {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	}
	return fit, nil
}

// LogLogSlope fits log(y) against log(x) and returns the scaling
// exponent (the slope), i.e. the b of y ≈ a·x^b. All inputs must be
// positive.
func LogLogSlope(x, y []float64) (Fit, error) {
	lx := make([]float64, len(x))
	ly := make([]float64, len(y))
	for i := range x {
		if i >= len(y) || x[i] <= 0 || y[i] <= 0 {
			return Fit{}, fmt.Errorf("stats: log-log fit needs positive paired data")
		}
		lx[i] = math.Log(x[i])
		ly[i] = math.Log(y[i])
	}
	return LinearFit(lx, ly)
}

// Rate returns successes/total as a float (NaN when total is 0).
func Rate(successes, total int) float64 {
	if total == 0 {
		return math.NaN()
	}
	return float64(successes) / float64(total)
}
