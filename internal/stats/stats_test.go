package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummary(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", s.Mean())
	}
	// Population variance is 4; unbiased sample variance is 32/7.
	if math.Abs(s.Var()-32.0/7) > 1e-12 {
		t.Fatalf("Var = %v, want %v", s.Var(), 32.0/7)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Std() != 0 || s.N() != 0 {
		t.Fatal("zero Summary not zeroed")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(empty) not NaN")
	}
	if Median([]float64{3, 1}) != 2 {
		t.Error("Median interpolation wrong")
	}
}

func TestLinearFit(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9} // y = 2x + 1
	fit, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2) > 1e-12 || math.Abs(fit.Intercept-1) > 1e-12 {
		t.Fatalf("fit = %+v, want slope 2 intercept 1", fit)
	}
	if math.Abs(fit.R2-1) > 1e-12 {
		t.Fatalf("R2 = %v, want 1", fit.R2)
	}
	if _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("accepted 1 point")
	}
	if _, err := LinearFit([]float64{2, 2}, []float64{1, 5}); err == nil {
		t.Error("accepted constant x")
	}
	if _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("accepted mismatched lengths")
	}
}

func TestLogLogSlope(t *testing.T) {
	// y = 3·x^2.5
	x := []float64{1, 2, 4, 8, 16}
	y := make([]float64, len(x))
	for i := range x {
		y[i] = 3 * math.Pow(x[i], 2.5)
	}
	fit, err := LogLogSlope(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2.5) > 1e-9 {
		t.Fatalf("slope = %v, want 2.5", fit.Slope)
	}
	if _, err := LogLogSlope([]float64{1, -2}, []float64{1, 2}); err == nil {
		t.Error("accepted non-positive data")
	}
}

func TestRate(t *testing.T) {
	if Rate(3, 4) != 0.75 {
		t.Fatal("Rate wrong")
	}
	if !math.IsNaN(Rate(0, 0)) {
		t.Fatal("Rate(0,0) not NaN")
	}
}

// Property: Summary.Mean matches the naive mean.
func TestSummaryMeanProperty(t *testing.T) {
	check := func(xs []float64) bool {
		var s Summary
		var sum float64
		clean := xs[:0]
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
				continue
			}
			clean = append(clean, x)
		}
		if len(clean) == 0 {
			return true
		}
		for _, x := range clean {
			s.Add(x)
			sum += x
		}
		naive := sum / float64(len(clean))
		return math.Abs(s.Mean()-naive) <= 1e-6*(1+math.Abs(naive))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	check := func(raw []float64, q1, q2 float64) bool {
		xs := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		q1 = math.Mod(math.Abs(q1), 1)
		q2 = math.Mod(math.Abs(q2), 1)
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		a, b := Quantile(xs, q1), Quantile(xs, q2)
		return a <= b && a >= Quantile(xs, 0) && b <= Quantile(xs, 1)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
