// Package algo is the pluggable rendezvous-strategy registry. Every
// strategy — the paper's two algorithms, the baselines, and any
// future addition — self-describes as a Spec and registers itself at
// init time; the fnr facade, the batch engine and the CLIs all derive
// their algorithm lists from this one table instead of hard-coded
// switches.
//
// A strategy package registers itself from an init function:
//
//	func init() {
//		algo.Register(algo.Spec{
//			Name: "sweep",
//			Caps: algo.Caps{NeighborIDs: true},
//			Build: func(o algo.BuildOpts) (a, b sim.Program, err error) {
//				a, b = StayAndSweep()
//				return a, b, nil
//			},
//		})
//	}
//
// and consumers pull it in with a blank import (the registration
// idiom), e.g. `import _ "fnr/internal/algo/paper"`.
package algo

import (
	"cmp"
	"errors"
	"fmt"
	"slices"
	"sync"

	"fnr/internal/core"
	"fnr/internal/sim"
)

// ErrDeltaRequired is returned (wrapped) by Build when a strategy
// whose Caps.NeedsDelta is set is built without a positive Delta.
var ErrDeltaRequired = errors.New("algorithm requires a known minimum degree δ (Delta)")

// ErrUnknown is returned (wrapped) when a name resolves to no
// registered spec.
var ErrUnknown = errors.New("unknown algorithm")

// Caps describes the simulation capabilities a strategy needs. The
// engine and the fnr facade translate them directly into sim.Config
// switches, so a strategy physically cannot use a capability it does
// not declare.
type Caps struct {
	// NeighborIDs requires the KT1 model: agents see the IDs of their
	// current vertex's neighbors.
	NeighborIDs bool
	// Whiteboards requires per-vertex whiteboards.
	Whiteboards bool
	// NeedsDelta requires BuildOpts.Delta > 0 (a known minimum
	// degree); building without it fails with ErrDeltaRequired.
	NeedsDelta bool
}

// BuildOpts carries the per-run inputs a strategy may consume.
type BuildOpts struct {
	// Params holds the algorithm constants (never zero — callers
	// default it to core.PracticalParams()).
	Params core.Params
	// Delta is the minimum degree known to the agents; 0 means
	// unknown (strategies that can estimate it do so, strategies with
	// Caps.NeedsDelta fail).
	Delta int
	// WhiteboardStats, if non-nil, collects the Theorem-1 algorithm's
	// diagnostics. Other strategies ignore it.
	WhiteboardStats *core.WhiteboardStats
	// NoboardStats, if non-nil, collects the Theorem-2 algorithm's
	// diagnostics. Other strategies ignore it.
	NoboardStats *core.NoboardStats
}

// Spec is one registered strategy.
type Spec struct {
	// Name is the unique CLI-facing identifier ("whiteboard",
	// "sweep", …).
	Name string
	// Order ranks specs in listings and must be unique: the listing
	// index is the public fnr.Algorithm value, so a collision would
	// silently renumber existing strategies. The seven built-ins use
	// 0–6; third-party specs must pick a distinct Order ≥ 100
	// (Register panics on a duplicate, including the zero value
	// colliding with the built-in 0).
	Order int
	// Summary is a one-line description for -algo discovery output.
	Summary string
	// Caps declares the simulation capabilities the strategy needs.
	Caps Caps
	// Build constructs a fresh program pair for one run. Programs are
	// stateful closures: call Build once per trial.
	Build func(o BuildOpts) (a, b sim.Program, err error)
	// BuildSteppers, when non-nil, constructs the strategy as a pair
	// of state-machine steppers for the engine's goroutine-free fast
	// path; the engine prefers it automatically. It must be
	// behaviorally identical to Build — same action sequence, same
	// RNG draw order — so that a batch produces byte-identical
	// results on either path (internal/engine's differential suite
	// enforces this for every registered strategy). Direct-style
	// strategies can satisfy it cheaply with SteppersFromPrograms;
	// specs that leave it nil simply stay on the Program path.
	BuildSteppers func(o BuildOpts) (a, b sim.Stepper, err error)
	// BuildTeam, when non-nil, constructs the strategy for a k-agent
	// scenario (k > 2): one stepper per agent, in team order. It is
	// never consulted at k=2 — Spec.Team routes the pair case through
	// BuildSteppers so two-agent scenarios stay byte-identical to the
	// legacy path — and a nil BuildTeam means the strategy supports
	// exactly two agents (Team fails loudly for larger k). The
	// oblivious baselines support any k; the paper's algorithms are
	// inherently pairwise and leave it nil.
	BuildTeam func(o BuildOpts, k int) ([]sim.Stepper, error)
}

// check validates the NeedsDelta capability; Build implementations
// call it (via Spec.Programs) so the error is uniform.
func (s Spec) check(o BuildOpts) error {
	if s.Caps.NeedsDelta && o.Delta <= 0 {
		return fmt.Errorf("algo %q: %w", s.Name, ErrDeltaRequired)
	}
	return nil
}

// Programs builds a fresh program pair after validating o against the
// spec's capabilities. Prefer this over calling Build directly.
func (s Spec) Programs(o BuildOpts) (a, b sim.Program, err error) {
	if err := s.check(o); err != nil {
		return nil, nil, err
	}
	if o.Params == (core.Params{}) {
		o.Params = core.PracticalParams()
	}
	return s.Build(o)
}

// Steppers builds a fresh stepper pair after validating o against the
// spec's capabilities; it fails for specs without a stepper builder.
// Prefer this over calling BuildSteppers directly.
func (s Spec) Steppers(o BuildOpts) (a, b sim.Stepper, err error) {
	if s.BuildSteppers == nil {
		return nil, nil, fmt.Errorf("algo %q: no stepper builder (Program path only)", s.Name)
	}
	if err := s.check(o); err != nil {
		return nil, nil, err
	}
	if o.Params == (core.Params{}) {
		o.Params = core.PracticalParams()
	}
	return s.BuildSteppers(o)
}

// Team builds a fresh k-agent stepper team after validating o against
// the spec's capabilities. k=2 always routes through the stepper-pair
// builder — guaranteeing a two-agent scenario runs the exact steppers
// the legacy path runs — and k>2 requires BuildTeam: strategies
// without one (the paper's pairwise algorithms) fail loudly here
// rather than silently degrading.
func (s Spec) Team(o BuildOpts, k int) ([]sim.Stepper, error) {
	if k == 2 {
		a, b, err := s.Steppers(o)
		if err != nil {
			sim.Finish(b)
			sim.Finish(a)
			return nil, err
		}
		return []sim.Stepper{a, b}, nil
	}
	if s.BuildTeam == nil {
		return nil, fmt.Errorf("algo %q does not support %d agents (two-agent strategy)", s.Name, k)
	}
	if k < 2 {
		return nil, fmt.Errorf("algo %q: team size %d < 2", s.Name, k)
	}
	if err := s.check(o); err != nil {
		return nil, err
	}
	if o.Params == (core.Params{}) {
		o.Params = core.PracticalParams()
	}
	team, err := s.BuildTeam(o, k)
	if err != nil {
		return nil, err
	}
	if len(team) != k {
		for i := len(team) - 1; i >= 0; i-- {
			sim.Finish(team[i])
		}
		return nil, fmt.Errorf("algo %q: team builder returned %d steppers, want %d", s.Name, len(team), k)
	}
	return team, nil
}

// SupportsTeam reports whether the strategy can run k-agent scenarios
// for k > 2 (two-agent scenarios run on every strategy).
func (s Spec) SupportsTeam() bool { return s.BuildTeam != nil }

// SteppersFromPrograms lifts a Program-pair builder into a
// stepper-pair builder by hosting each program on a lightweight
// coroutine (sim.NewProgramStepper): direct-style strategies ride the
// engine's fast path without being rewritten as state machines. The
// paper's two algorithms register their BuildSteppers this way.
func SteppersFromPrograms(build func(o BuildOpts) (a, b sim.Program, err error)) func(o BuildOpts) (a, b sim.Stepper, err error) {
	return func(o BuildOpts) (sim.Stepper, sim.Stepper, error) {
		a, b, err := build(o)
		if err != nil {
			return nil, nil, err
		}
		return sim.NewProgramStepper(a), sim.NewProgramStepper(b), nil
	}
}

var (
	mu       sync.RWMutex
	registry = map[string]Spec{}
)

// Register adds a spec to the registry. It panics on an empty name, a
// nil Build, a duplicate name, or a duplicate Order — all programmer
// errors at init time. The Order check is what keeps fnr.Algorithm
// values stable: an unset (zero) Order on a third-party spec would
// otherwise sort among the built-ins and renumber them.
func Register(s Spec) {
	if s.Name == "" {
		panic("algo: Register with empty name")
	}
	if s.Build == nil {
		panic(fmt.Sprintf("algo: Register(%q) with nil Build", s.Name))
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("algo: duplicate registration of %q", s.Name))
	}
	for _, prev := range registry {
		if prev.Order == s.Order {
			panic(fmt.Sprintf("algo: Register(%q) reuses Order %d of %q; orders must be unique (use ≥ 100 for non-built-ins)",
				s.Name, s.Order, prev.Name))
		}
	}
	registry[s.Name] = s
}

// Lookup returns the spec registered under name.
func Lookup(name string) (Spec, error) {
	mu.RLock()
	defer mu.RUnlock()
	s, ok := registry[name]
	if !ok {
		return Spec{}, fmt.Errorf("%w %q (registered: %v)", ErrUnknown, name, names())
	}
	return s, nil
}

// Specs returns every registered spec, sorted by (Order, Name).
func Specs() []Spec {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]Spec, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	slices.SortFunc(out, func(a, b Spec) int {
		if a.Order != b.Order {
			return cmp.Compare(a.Order, b.Order)
		}
		return cmp.Compare(a.Name, b.Name)
	})
	return out
}

// Names returns the registered names in Specs order.
func Names() []string {
	specs := Specs()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// names is the lock-held helper behind error messages.
func names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	slices.Sort(out)
	return out
}
