package algo

import (
	"errors"
	"testing"

	"fnr/internal/core"
	"fnr/internal/sim"
)

func noopBuild(BuildOpts) (sim.Program, sim.Program, error) {
	p := func(e *sim.Env) {}
	return p, p, nil
}

func TestRegisterLookupSpecs(t *testing.T) {
	Register(Spec{Name: "test-b", Order: 202, Build: noopBuild})
	Register(Spec{Name: "test-a", Order: 200, Build: noopBuild})
	Register(Spec{Name: "test-a2", Order: 201, Build: noopBuild})

	if _, err := Lookup("test-a"); err != nil {
		t.Fatalf("Lookup(test-a): %v", err)
	}
	if _, err := Lookup("absent"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("Lookup(absent) = %v, want ErrUnknown", err)
	}

	// Specs must come back sorted by Order.
	specs := Specs()
	idx := map[string]int{}
	for i, s := range specs {
		idx[s.Name] = i
	}
	if !(idx["test-a"] < idx["test-a2"] && idx["test-a2"] < idx["test-b"]) {
		t.Fatalf("specs out of order: %v", Names())
	}
}

func TestRegisterPanics(t *testing.T) {
	mustPanic := func(name string, s Spec) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		Register(s)
	}
	mustPanic("empty name", Spec{Build: noopBuild})
	mustPanic("nil build", Spec{Name: "test-nil-build"})
	Register(Spec{Name: "test-dup", Order: 300, Build: noopBuild})
	mustPanic("duplicate name", Spec{Name: "test-dup", Order: 301, Build: noopBuild})
	// A duplicate Order would renumber the public Algorithm indices —
	// in a real binary that includes an unset (zero) Order colliding
	// with built-in Order 0.
	mustPanic("duplicate order", Spec{Name: "test-order-clash", Order: 300, Build: noopBuild})
	Register(Spec{Name: "test-zero-order", Build: noopBuild}) // Order 0 free in this test binary
	mustPanic("second zero order", Spec{Name: "test-zero-order-2", Build: noopBuild})
}

func TestProgramsCapabilityCheck(t *testing.T) {
	s := Spec{Name: "test-needs-delta", Caps: Caps{NeedsDelta: true}, Build: noopBuild}
	if _, _, err := s.Programs(BuildOpts{}); !errors.Is(err, ErrDeltaRequired) {
		t.Fatalf("Programs without delta = %v, want ErrDeltaRequired", err)
	}
	if _, _, err := s.Programs(BuildOpts{Delta: 3}); err != nil {
		t.Fatalf("Programs with delta: %v", err)
	}
}

func TestProgramsDefaultsParams(t *testing.T) {
	var got core.Params
	s := Spec{Name: "test-params", Build: func(o BuildOpts) (sim.Program, sim.Program, error) {
		got = o.Params
		p := func(e *sim.Env) {}
		return p, p, nil
	}}
	if _, _, err := s.Programs(BuildOpts{}); err != nil {
		t.Fatal(err)
	}
	if got == (core.Params{}) {
		t.Fatal("Programs did not default Params")
	}
}
