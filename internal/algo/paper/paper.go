// Package paper registers the source paper's two algorithms with the
// strategy registry. It lives beside the registry rather than inside
// internal/core because core is a dependency of algo (for Params and
// the stats types) and cannot import it back; blank-importing this
// package is what puts "whiteboard" and "noboard" on the menu:
//
//	import _ "fnr/internal/algo/paper"
//
// Both algorithms stay in direct style (they are intricate, multi-phase
// programs); their stepper builders come from algo.SteppersFromPrograms,
// which hosts the same programs on coroutines so batch trials still
// skip the goroutine+channel handoffs of the classic Program path.
package paper

import (
	"fnr/internal/algo"
	"fnr/internal/core"
	"fnr/internal/sim"
)

func init() {
	buildWhiteboard := func(o algo.BuildOpts) (a, b sim.Program, err error) {
		// Delta ≤ 0 falls back to the §4.1 doubling estimation.
		know := core.Knowledge{Delta: o.Delta, Doubling: o.Delta <= 0}
		a, b = core.WhiteboardAgents(o.Params, know, o.WhiteboardStats)
		return a, b, nil
	}
	algo.Register(algo.Spec{
		Name:          "whiteboard",
		Order:         0,
		Summary:       "Theorem 1: Construct + Main-Rendezvous, O(n/δ·log²n + √(n∆/δ)·log n) w.h.p.; needs whiteboards and neighbor IDs",
		Caps:          algo.Caps{NeighborIDs: true, Whiteboards: true},
		Build:         buildWhiteboard,
		BuildSteppers: algo.SteppersFromPrograms(buildWhiteboard),
	})
	buildNoboard := func(o algo.BuildOpts) (a, b sim.Program, err error) {
		a, b = core.NoboardAgents(o.Params, o.Delta, o.NoboardStats)
		return a, b, nil
	}
	algo.Register(algo.Spec{
		Name:          "noboard",
		Order:         1,
		Summary:       "Theorem 2: whiteboard-free rendezvous, O(n/√δ·log²n) w.h.p.; needs neighbor IDs, tight naming and known δ",
		Caps:          algo.Caps{NeighborIDs: true, NeedsDelta: true},
		Build:         buildNoboard,
		BuildSteppers: algo.SteppersFromPrograms(buildNoboard),
	})
}
