// Package paper registers the source paper's two algorithms with the
// strategy registry. It lives beside the registry rather than inside
// internal/core because core is a dependency of algo (for Params and
// the stats types) and cannot import it back; blank-importing this
// package is what puts "whiteboard" and "noboard" on the menu:
//
//	import _ "fnr/internal/algo/paper"
//
// Both algorithms register twice over: Build constructs the
// direct-style Program pair (the readable reference implementation),
// while BuildSteppers constructs the native state-machine steppers of
// core's stepper_a.go / stepper_b.go — no per-trial iter.Pull
// coroutine, no program-closure setup, which is what the engine's
// fast path runs. The two forms are held byte-identical (actions, RNG
// draw order, stats) by the differential suites in internal/engine
// and internal/core.
package paper

import (
	"fnr/internal/algo"
	"fnr/internal/core"
	"fnr/internal/sim"
)

func init() {
	buildWhiteboard := func(o algo.BuildOpts) (a, b sim.Program, err error) {
		// Delta ≤ 0 falls back to the §4.1 doubling estimation.
		know := core.Knowledge{Delta: o.Delta, Doubling: o.Delta <= 0}
		a, b = core.WhiteboardAgents(o.Params, know, o.WhiteboardStats)
		return a, b, nil
	}
	algo.Register(algo.Spec{
		Name:    "whiteboard",
		Order:   0,
		Summary: "Theorem 1: Construct + Main-Rendezvous, O(n/δ·log²n + √(n∆/δ)·log n) w.h.p.; needs whiteboards and neighbor IDs",
		Caps:    algo.Caps{NeighborIDs: true, Whiteboards: true},
		Build:   buildWhiteboard,
		BuildSteppers: func(o algo.BuildOpts) (a, b sim.Stepper, err error) {
			know := core.Knowledge{Delta: o.Delta, Doubling: o.Delta <= 0}
			a, b = core.WhiteboardSteppers(o.Params, know, o.WhiteboardStats)
			return a, b, nil
		},
	})
	buildNoboard := func(o algo.BuildOpts) (a, b sim.Program, err error) {
		a, b = core.NoboardAgents(o.Params, o.Delta, o.NoboardStats)
		return a, b, nil
	}
	algo.Register(algo.Spec{
		Name:    "noboard",
		Order:   1,
		Summary: "Theorem 2: whiteboard-free rendezvous, O(n/√δ·log²n) w.h.p.; needs neighbor IDs, tight naming and known δ",
		Caps:    algo.Caps{NeighborIDs: true, NeedsDelta: true},
		Build:   buildNoboard,
		BuildSteppers: func(o algo.BuildOpts) (a, b sim.Stepper, err error) {
			a, b = core.NoboardSteppers(o.Params, o.Delta, o.NoboardStats)
			return a, b, nil
		},
	})
}
