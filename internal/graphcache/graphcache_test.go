package graphcache_test

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"fnr/internal/graphcache"
	"fnr/internal/job"
)

func planted(n, d int, seed uint64) job.Workload {
	return job.Workload{Kind: "planted", N: n, D: d, Seed: seed}
}

// TestSingleflightBuildOnce races N goroutines at one key and
// requires exactly one build, everyone sharing the same graph
// pointer. Run under -race in CI, this is also the cache's data-race
// witness.
func TestSingleflightBuildOnce(t *testing.T) {
	c := graphcache.New(0)
	w := planted(256, 16, 7)
	var builds atomic.Int64

	const goroutines = 32
	var wg sync.WaitGroup
	results := make([]job.Materialized, goroutines)
	errs := make([]error, goroutines)
	start := make(chan struct{})
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			results[i], errs[i] = c.Get(context.Background(), w.Key(), func() (job.Materialized, error) {
				builds.Add(1)
				return w.Materialize()
			})
		}(i)
	}
	close(start)
	wg.Wait()

	if got := builds.Load(); got != 1 {
		t.Fatalf("graph built %d times under concurrency, want exactly 1", got)
	}
	for i := 0; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if results[i].Graph != results[0].Graph {
			t.Fatal("concurrent Gets returned different graph pointers")
		}
	}
	st := c.Stats()
	if st.Builds != 1 || st.Misses != 1 || st.Hits != goroutines-1 {
		t.Fatalf("stats = %+v, want 1 build, 1 miss, %d hits", st, goroutines-1)
	}
	if st.Entries != 1 || st.Bytes != results[0].Graph.FootprintBytes() {
		t.Fatalf("retention = %d entries / %d bytes, want 1 entry of %d bytes",
			st.Entries, st.Bytes, results[0].Graph.FootprintBytes())
	}
}

// TestStampStableAcrossHits: a cache hit returns the same immutable
// graph — same pointer, same Stamp — so stamp-keyed engine scratch
// (home-return-port caches) stays valid across requests.
func TestStampStableAcrossHits(t *testing.T) {
	c := graphcache.New(0)
	w := planted(64, 8, 3)
	get := func() job.Materialized {
		m, err := c.Get(context.Background(), w.Key(), w.Materialize)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	first := get()
	for i := 0; i < 3; i++ {
		again := get()
		if again.Graph != first.Graph {
			t.Fatal("cache hit returned a different graph pointer")
		}
		if again.Graph.Stamp() != first.Graph.Stamp() {
			t.Fatal("cache hit changed the graph stamp")
		}
		if again.StartA != first.StartA || again.StartB != first.StartB {
			t.Fatal("cache hit changed the start pair")
		}
	}
	if st := c.Stats(); st.Builds != 1 {
		t.Fatalf("%d builds across repeated hits, want 1", st.Builds)
	}
}

// TestLRUEvictionAtByteBudget sizes the budget for exactly two built
// graphs and inserts three: the least recently used one must go, and
// re-getting it must rebuild.
func TestLRUEvictionAtByteBudget(t *testing.T) {
	ws := []job.Workload{planted(64, 8, 1), planted(64, 8, 2), planted(64, 8, 3)}
	var ms []job.Materialized
	for _, w := range ws {
		m, err := w.Materialize()
		if err != nil {
			t.Fatal(err)
		}
		ms = append(ms, m)
	}
	// Budget: any two graphs fit, all three never do.
	budget := ms[0].Graph.FootprintBytes() + ms[1].Graph.FootprintBytes() + ms[2].Graph.FootprintBytes() - 1

	c := graphcache.New(budget)
	builds := make([]int, len(ws))
	get := func(i int) {
		t.Helper()
		if _, err := c.Get(context.Background(), ws[i].Key(), func() (job.Materialized, error) {
			builds[i]++
			return ws[i].Materialize()
		}); err != nil {
			t.Fatal(err)
		}
	}
	get(0)
	get(1)
	get(0) // order now: 0 (recent), 1
	get(2) // evicts 1, the LRU victim
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats after third insert = %+v, want 1 eviction, 2 entries", st)
	}
	if _, ok := c.Lookup(ws[1].Key()); ok {
		t.Fatal("LRU victim still resident")
	}
	if _, ok := c.Lookup(ws[0].Key()); !ok {
		t.Fatal("recently used entry was evicted instead of the LRU victim")
	}
	get(1) // rebuild after eviction
	if builds[0] != 1 || builds[1] != 2 || builds[2] != 1 {
		t.Fatalf("build counts = %v, want [1 2 1]", builds)
	}
	if st := c.Stats(); st.Bytes > budget {
		t.Fatalf("retained %d bytes over the %d budget", st.Bytes, budget)
	}
}

// TestBuildErrorNotCached: a failed build propagates its error and is
// forgotten, so the next Get retries.
func TestBuildErrorNotCached(t *testing.T) {
	c := graphcache.New(0)
	w := planted(64, 8, 5)
	boom := errors.New("boom")
	fail := true
	get := func() (job.Materialized, error) {
		return c.Get(context.Background(), w.Key(), func() (job.Materialized, error) {
			if fail {
				return job.Materialized{}, boom
			}
			return w.Materialize()
		})
	}
	if _, err := get(); !errors.Is(err, boom) {
		t.Fatalf("first Get error = %v, want boom", err)
	}
	fail = false
	if m, err := get(); err != nil || m.Graph == nil {
		t.Fatalf("retry after failed build: %v", err)
	}
	if st := c.Stats(); st.Builds != 2 {
		t.Fatalf("%d builds, want 2 (failure + retry)", st.Builds)
	}
}

// TestWaiterCancellation: a waiter whose context dies abandons the
// wait with ctx.Err while the build itself continues for others.
func TestWaiterCancellation(t *testing.T) {
	c := graphcache.New(0)
	w := planted(64, 8, 6)
	release := make(chan struct{})
	firstIn := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := c.Get(context.Background(), w.Key(), func() (job.Materialized, error) {
			close(firstIn)
			<-release
			return w.Materialize()
		})
		done <- err
	}()
	<-firstIn
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Get(ctx, w.Key(), w.Materialize); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter error = %v, want context.Canceled", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// The build completed despite the waiter's cancellation.
	if _, ok := c.Lookup(w.Key()); !ok {
		t.Fatal("build abandoned because one waiter cancelled")
	}
}
