// Package graphcache is a content-addressed cache of materialized
// workloads (immutable built graphs plus their start pairs), keyed by
// job.Workload.Key. Graphs are immutable after construction and carry
// a process-unique Stamp, so serving the same *graph.Graph to many
// concurrent batches is safe — and keeps the engine's stamp-keyed
// per-agent scratch (home-return-port caches) legal across requests.
//
// Concurrency follows the singleflight discipline: the first Get for
// a key claims the build and every concurrent Get for the same key
// waits on it, so a graph is built exactly once no matter how many
// requests race. Retention is LRU by the graphs' CSR footprint
// (graph.FootprintBytes) under a byte budget; entries still being
// built are not evictable, and a failed build is forgotten so a later
// Get retries.
package graphcache

import (
	"container/list"
	"context"
	"fmt"
	"sync"

	"fnr/internal/job"
)

// DefaultMaxBytes is the retention budget New applies when the caller
// passes 0: a few large-preset graphs' worth.
const DefaultMaxBytes = 1 << 31 // 2 GiB

// Stats is a point-in-time counter snapshot.
type Stats struct {
	// Hits counts Gets served an already-built (or in-flight) graph;
	// Misses counts Gets that claimed a build; Builds counts build
	// attempts (= Misses); Evictions counts LRU removals.
	Hits, Misses, Builds, Evictions uint64
	// Entries and Bytes describe current retention; MaxBytes the
	// budget.
	Entries  int
	Bytes    int64
	MaxBytes int64
}

// Cache is the content-addressed graph cache. The zero value is not
// usable; construct with New.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	entries  map[string]*entry
	lru      *list.List // front = most recently used; built entries only
	stats    Stats
}

type entry struct {
	key   string
	val   job.Materialized
	bytes int64
	err   error
	ready chan struct{} // closed when the build finishes
	elem  *list.Element // non-nil once resident in the LRU list
}

// New returns a cache retaining up to maxBytes of built CSR arrays
// (0 = DefaultMaxBytes, negative = unlimited).
func New(maxBytes int64) *Cache {
	if maxBytes == 0 {
		maxBytes = DefaultMaxBytes
	}
	return &Cache{
		maxBytes: maxBytes,
		entries:  make(map[string]*entry),
		lru:      list.New(),
	}
}

// Get returns the materialized workload for key, building it with
// build on the first request. Concurrent Gets for the same key share
// one build (singleflight); waiters abandon the wait — but not the
// build — when ctx is cancelled. A failed build is not cached: the
// error propagates to every waiter and the next Get retries.
func (c *Cache) Get(ctx context.Context, key string, build func() (job.Materialized, error)) (job.Materialized, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.stats.Hits++
		c.mu.Unlock()
		select {
		case <-e.ready:
		case <-ctx.Done():
			return job.Materialized{}, ctx.Err()
		}
		if e.err != nil {
			return job.Materialized{}, e.err
		}
		c.mu.Lock()
		c.touch(e)
		c.mu.Unlock()
		return e.val, nil
	}
	e := &entry{key: key, ready: make(chan struct{})}
	c.entries[key] = e
	c.stats.Misses++
	c.stats.Builds++
	c.mu.Unlock()

	val, err := build()
	c.mu.Lock()
	if err != nil {
		e.err = err
		// Forget the failure so a later Get retries the build.
		delete(c.entries, key)
		close(e.ready)
		c.mu.Unlock()
		return job.Materialized{}, err
	}
	if val.Graph == nil {
		e.err = fmt.Errorf("graphcache: build for %q returned no graph", key)
		delete(c.entries, key)
		close(e.ready)
		c.mu.Unlock()
		return job.Materialized{}, e.err
	}
	e.val = val
	e.bytes = val.Graph.FootprintBytes()
	e.elem = c.lru.PushFront(e)
	c.bytes += e.bytes
	c.evictOverBudget(e)
	close(e.ready)
	c.mu.Unlock()
	return val, nil
}

// Lookup returns the entry for key only if it is already built —
// no build, no wait. The resolution path for job.Spec.GraphRef.
func (c *Cache) Lookup(key string) (job.Materialized, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok || e.elem == nil {
		c.stats.Misses++
		return job.Materialized{}, false
	}
	c.stats.Hits++
	c.touch(e)
	return e.val, true
}

// touch marks a built entry most recently used.
func (c *Cache) touch(e *entry) {
	if e.elem != nil && c.entries[e.key] == e {
		c.lru.MoveToFront(e.elem)
	}
}

// evictOverBudget drops least-recently-used built entries until the
// budget holds, never evicting keep (the entry just inserted: the
// current request needs it, and evicting it would make an oversized
// graph rebuild on every Get without ever being servable from cache —
// it gets evicted by the next insertion instead).
func (c *Cache) evictOverBudget(keep *entry) {
	if c.maxBytes < 0 {
		return
	}
	for c.bytes > c.maxBytes {
		back := c.lru.Back()
		if back == nil {
			return
		}
		e := back.Value.(*entry)
		if e == keep {
			return
		}
		c.lru.Remove(back)
		e.elem = nil
		delete(c.entries, e.key)
		c.bytes -= e.bytes
		c.stats.Evictions++
	}
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.lru.Len()
	s.Bytes = c.bytes
	s.MaxBytes = c.maxBytes
	return s
}
