package graph

import (
	"bytes"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func mustComplete(t *testing.T, n int) *Graph {
	t.Helper()
	g, err := Complete(n)
	if err != nil {
		t.Fatalf("Complete(%d): %v", n, err)
	}
	return g
}

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(4)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(1, 2)
	b.MustAddEdge(2, 3)
	b.MustAddEdge(3, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if g.N() != 4 || g.M() != 4 {
		t.Fatalf("got n=%d m=%d, want 4, 4", g.N(), g.M())
	}
	if g.MinDegree() != 2 || g.MaxDegree() != 2 {
		t.Fatalf("got δ=%d ∆=%d, want 2, 2", g.MinDegree(), g.MaxDegree())
	}
	if !g.HasEdge(0, 1) || g.HasEdge(0, 2) {
		t.Fatalf("adjacency wrong: HasEdge(0,1)=%v HasEdge(0,2)=%v", g.HasEdge(0, 1), g.HasEdge(0, 2))
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestBuilderRejectsBadEdges(t *testing.T) {
	tests := []struct {
		name string
		u, v Vertex
	}{
		{"self-loop", 1, 1},
		{"negative", -1, 0},
		{"out of range", 0, 9},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBuilder(3)
			if err := b.AddEdge(tc.u, tc.v); err == nil {
				t.Fatalf("AddEdge(%d,%d) succeeded, want error", tc.u, tc.v)
			}
		})
	}
	b := NewBuilder(3)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatalf("first AddEdge: %v", err)
	}
	if err := b.AddEdge(1, 0); err == nil {
		t.Fatal("duplicate AddEdge succeeded, want error")
	}
}

func TestPortNumbering(t *testing.T) {
	b := NewBuilder(4)
	// Port order at vertex 0 should follow insertion order: 2, 1, 3.
	b.MustAddEdge(0, 2)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(0, 3)
	g := b.MustBuild()
	want := []Vertex{2, 1, 3}
	for p, w := range want {
		if got := g.Neighbor(0, p); got != w {
			t.Errorf("Neighbor(0,%d) = %d, want %d", p, got, w)
		}
	}
	if p := g.PortTo(0, 3); p != 2 {
		t.Errorf("PortTo(0,3) = %d, want 2", p)
	}
	if p := g.PortTo(1, 3); p != -1 {
		t.Errorf("PortTo(1,3) = %d, want -1", p)
	}
}

func TestIDAssignment(t *testing.T) {
	b := NewBuilder(3)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(1, 2)
	b.SetID(0, 7)
	b.SetID(1, 5)
	b.SetID(2, 9)
	b.SetNPrime(10)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if g.ID(0) != 7 || g.ID(2) != 9 {
		t.Fatalf("IDs wrong: %d, %d", g.ID(0), g.ID(2))
	}
	if v, ok := g.VertexByID(5); !ok || v != 1 {
		t.Fatalf("VertexByID(5) = %d, %v", v, ok)
	}
	if _, ok := g.VertexByID(4); ok {
		t.Fatal("VertexByID(4) found a vertex, want none")
	}
	got := g.IDsOfNeighbors(1, nil)
	if len(got) != 2 || got[0] != 7 || got[1] != 9 {
		t.Fatalf("IDsOfNeighbors(1) = %v, want [7 9]", got)
	}
}

func TestBuildRejectsDuplicateIDs(t *testing.T) {
	b := NewBuilder(3)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(1, 2)
	b.SetID(0, 1) // collides with vertex 1's default ID
	if _, err := b.Build(); err == nil {
		t.Fatal("Build succeeded with duplicate IDs, want error")
	}
}

func TestBuildRejectsOutOfRangeIDs(t *testing.T) {
	b := NewBuilder(2)
	b.MustAddEdge(0, 1)
	b.SetID(0, 99) // exceeds default nPrime = 2
	if _, err := b.Build(); err == nil {
		t.Fatal("Build succeeded with out-of-range ID, want error")
	}
}

func TestPermuteIDs(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	b := NewBuilder(50)
	for v := 0; v < 49; v++ {
		b.MustAddEdge(Vertex(v), Vertex(v+1))
	}
	b.PermuteIDs(rng)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if g.NPrime() != 50 {
		t.Fatalf("NPrime = %d, want 50", g.NPrime())
	}
	seen := make(map[int64]bool)
	for v := 0; v < g.N(); v++ {
		id := g.ID(Vertex(v))
		if id < 0 || id >= 50 || seen[id] {
			t.Fatalf("bad permuted ID %d at vertex %d", id, v)
		}
		seen[id] = true
	}
}

func TestSparseIDs(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	b := NewBuilder(20)
	for v := 0; v < 19; v++ {
		b.MustAddEdge(Vertex(v), Vertex(v+1))
	}
	if err := b.SparseIDs(10, rng); err != nil {
		t.Fatalf("SparseIDs: %v", err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if g.NPrime() != 200 {
		t.Fatalf("NPrime = %d, want 200", g.NPrime())
	}
	if err := b.SparseIDs(0, rng); err == nil {
		t.Fatal("SparseIDs(0) succeeded, want error")
	}
}

func TestCloneAndEqual(t *testing.T) {
	g := mustComplete(t, 6)
	h := g.Clone()
	if !g.Equal(h) {
		t.Fatal("clone not Equal to original")
	}
	g2 := mustComplete(t, 7)
	if g.Equal(g2) {
		t.Fatal("K6 Equal K7, want different")
	}
}

func TestFromAdjacencyRejectsAsymmetry(t *testing.T) {
	ids := []int64{0, 1}
	adj := [][]Vertex{{1}, {}} // 0->1 present, 1->0 missing
	if _, err := FromAdjacency(ids, adj, 2); err == nil {
		t.Fatal("FromAdjacency accepted asymmetric adjacency")
	}
}

func TestShufflePortsPreservesStructure(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	b := NewBuilder(30)
	for v := 1; v < 30; v++ {
		b.MustAddEdge(0, Vertex(v))
	}
	before := b.MustBuild()
	b.ShufflePorts(rng)
	after := b.MustBuild()
	if before.Equal(after) {
		t.Log("shuffle left ports unchanged (possible but unlikely)")
	}
	if after.Degree(0) != 29 || after.M() != before.M() {
		t.Fatal("shuffle changed structure")
	}
	if err := after.Validate(); err != nil {
		t.Fatalf("Validate after shuffle: %v", err)
	}
}

func TestRebuild(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 42))
	g, err := PlantedMinDegree(30, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	h := Rebuild(g).MustBuild()
	// Rebuild collapses port order to sorted-by-endpoint within each
	// vertex pair ordering; structure and IDs must be preserved even
	// if port order differs.
	if h.N() != g.N() || h.M() != g.M() || h.NPrime() != g.NPrime() {
		t.Fatalf("rebuild changed shape: %v vs %v", h, g)
	}
	for v := Vertex(0); int(v) < g.N(); v++ {
		if h.ID(v) != g.ID(v) {
			t.Fatalf("rebuild changed ID of %d", v)
		}
		if h.Degree(v) != g.Degree(v) {
			t.Fatalf("rebuild changed degree of %d", v)
		}
	}
	for v := Vertex(0); int(v) < g.N(); v++ {
		for _, w := range g.Adj(v) {
			if !h.HasEdge(v, w) {
				t.Fatalf("rebuild lost edge %d-%d", v, w)
			}
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	// FromAdjacency runs Validate; feed it raw corrupted structures.
	cases := []struct {
		name string
		ids  []int64
		adj  [][]Vertex
		np   int64
	}{
		{"self loop", []int64{0, 1}, [][]Vertex{{0, 1}, {0}}, 2},
		{"parallel edge", []int64{0, 1}, [][]Vertex{{1, 1}, {0, 0}}, 2},
		{"out of range neighbor", []int64{0, 1}, [][]Vertex{{5}, {0}}, 2},
		{"negative ID", []int64{-1, 1}, [][]Vertex{{1}, {0}}, 2},
		{"ID beyond nPrime", []int64{0, 5}, [][]Vertex{{1}, {0}}, 2},
		{"n exceeds nPrime", []int64{0, 1}, [][]Vertex{{1}, {0}}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := FromAdjacency(tc.ids, tc.adj, tc.np); err == nil {
				t.Fatalf("accepted %s", tc.name)
			}
		})
	}
}

func TestWriteToReportsBytes(t *testing.T) {
	g := mustComplete(t, 5)
	var buf bytes.Buffer
	n, err := g.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	if n == 0 {
		t.Fatal("empty serialization")
	}
}

// Property: Neighbor and PortTo are inverse on random graphs.
func TestPortToNeighborInverseProperty(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		n := 5 + int(nRaw)%40
		rng := rand.New(rand.NewPCG(seed, 3))
		g, err := PlantedMinDegree(n, 3, rng)
		if err != nil {
			return false
		}
		for v := Vertex(0); int(v) < g.N(); v++ {
			for p := 0; p < g.Degree(v); p++ {
				w := g.Neighbor(v, p)
				if g.PortTo(v, w) != p {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: the Theorem-3 family keeps its degree profile at any size.
func TestTwoStarsProperty(t *testing.T) {
	check := func(raw uint16) bool {
		half := 1 + int(raw)%500
		g, ca, cb, err := TwoStars(half)
		if err != nil {
			return false
		}
		return g.N() == 2*half+2 &&
			g.Degree(ca) == half+1 && g.Degree(cb) == half+1 &&
			g.MinDegree() == 1 && g.HasEdge(ca, cb) && IsConnected(g)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestBridgedCliquePairDegreesUniform(t *testing.T) {
	// Theorem 4 needs every vertex at the same degree so KT0 port
	// counts carry no information.
	for _, n := range []int{6, 10, 64, 200} {
		g, _, _, _, _, err := BridgedCliquePair(n)
		if err != nil {
			t.Fatal(err)
		}
		if g.MinDegree() != g.MaxDegree() {
			t.Fatalf("n=%d: degrees not uniform: δ=%d ∆=%d", n, g.MinDegree(), g.MaxDegree())
		}
		if g.MinDegree() != n/2-1 {
			t.Fatalf("n=%d: degree %d, want %d", n, g.MinDegree(), n/2-1)
		}
	}
}
