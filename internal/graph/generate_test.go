package graph

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestComplete(t *testing.T) {
	for _, n := range []int{2, 3, 5, 17} {
		g, err := Complete(n)
		if err != nil {
			t.Fatalf("Complete(%d): %v", n, err)
		}
		if g.M() != n*(n-1)/2 {
			t.Errorf("K%d has %d edges, want %d", n, g.M(), n*(n-1)/2)
		}
		if g.MinDegree() != n-1 || g.MaxDegree() != n-1 {
			t.Errorf("K%d degrees δ=%d ∆=%d, want both %d", n, g.MinDegree(), g.MaxDegree(), n-1)
		}
	}
	if _, err := Complete(1); err == nil {
		t.Error("Complete(1) succeeded, want error")
	}
}

func TestRingPathStar(t *testing.T) {
	g, err := Ring(8)
	if err != nil {
		t.Fatalf("Ring: %v", err)
	}
	if g.M() != 8 || g.MinDegree() != 2 || g.MaxDegree() != 2 || Diameter(g) != 4 {
		t.Errorf("Ring(8): m=%d δ=%d ∆=%d diam=%d", g.M(), g.MinDegree(), g.MaxDegree(), Diameter(g))
	}
	p, err := Path(5)
	if err != nil {
		t.Fatalf("Path: %v", err)
	}
	if p.M() != 4 || p.MinDegree() != 1 || Diameter(p) != 4 {
		t.Errorf("Path(5): m=%d δ=%d diam=%d", p.M(), p.MinDegree(), Diameter(p))
	}
	s, err := Star(10)
	if err != nil {
		t.Fatalf("Star: %v", err)
	}
	if s.Degree(0) != 9 || s.MinDegree() != 1 || Diameter(s) != 2 {
		t.Errorf("Star(10): deg0=%d δ=%d diam=%d", s.Degree(0), s.MinDegree(), Diameter(s))
	}
	for _, f := range []func(int) (*Graph, error){Ring, Path, Star} {
		if _, err := f(1); err == nil {
			t.Error("generator accepted n=1")
		}
	}
}

func TestGridTorusHypercube(t *testing.T) {
	g, err := Grid(3, 4)
	if err != nil {
		t.Fatalf("Grid: %v", err)
	}
	if g.N() != 12 || g.M() != 3*3+2*4 || !IsConnected(g) {
		t.Errorf("Grid(3,4): n=%d m=%d connected=%v", g.N(), g.M(), IsConnected(g))
	}
	tor, err := Torus(4, 5)
	if err != nil {
		t.Fatalf("Torus: %v", err)
	}
	if tor.MinDegree() != 4 || tor.MaxDegree() != 4 || tor.M() != 2*4*5 {
		t.Errorf("Torus(4,5): δ=%d ∆=%d m=%d", tor.MinDegree(), tor.MaxDegree(), tor.M())
	}
	if _, err := Torus(2, 5); err == nil {
		t.Error("Torus(2,5) succeeded, want error (parallel edges)")
	}
	h, err := Hypercube(4)
	if err != nil {
		t.Fatalf("Hypercube: %v", err)
	}
	if h.N() != 16 || h.MinDegree() != 4 || h.MaxDegree() != 4 || Diameter(h) != 4 {
		t.Errorf("Q4: n=%d δ=%d ∆=%d diam=%d", h.N(), h.MinDegree(), h.MaxDegree(), Diameter(h))
	}
}

func TestGNP(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	g, err := GNP(100, 0.2, rng)
	if err != nil {
		t.Fatalf("GNP: %v", err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Expected m ≈ 0.2 · C(100,2) = 990; allow a wide band.
	if g.M() < 700 || g.M() > 1300 {
		t.Errorf("GNP(100, 0.2) has %d edges, expected ≈990", g.M())
	}
	if _, err := GNP(100, 1.5, rng); err == nil {
		t.Error("GNP accepted p=1.5")
	}
	empty, err := GNP(10, 0, rng)
	if err != nil || empty.M() != 0 {
		t.Errorf("GNP(10, 0): m=%d err=%v", empty.M(), err)
	}
}

func TestPlantedMinDegree(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	for _, tc := range []struct{ n, d int }{
		{16, 4}, {64, 8}, {100, 30}, {200, 14}, {50, 49},
	} {
		g, err := PlantedMinDegree(tc.n, tc.d, rng)
		if err != nil {
			t.Fatalf("PlantedMinDegree(%d,%d): %v", tc.n, tc.d, err)
		}
		if g.MinDegree() < tc.d {
			t.Errorf("PlantedMinDegree(%d,%d): δ=%d < %d", tc.n, tc.d, g.MinDegree(), tc.d)
		}
		if !IsConnected(g) {
			t.Errorf("PlantedMinDegree(%d,%d) disconnected", tc.n, tc.d)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("Validate: %v", err)
		}
		// The family should stay quasi-regular: ∆ within a small factor of d.
		if g.MaxDegree() > 3*tc.d+8 {
			t.Errorf("PlantedMinDegree(%d,%d): ∆=%d too large vs d", tc.n, tc.d, g.MaxDegree())
		}
	}
	if _, err := PlantedMinDegree(10, 10, rand.New(rand.NewPCG(0, 0))); err == nil {
		t.Error("PlantedMinDegree accepted d = n")
	}
}

func TestRandomRegular(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	for _, tc := range []struct{ n, d int }{{20, 3}, {50, 6}, {64, 8}} {
		g, err := RandomRegular(tc.n, tc.d, rng)
		if err != nil {
			t.Fatalf("RandomRegular(%d,%d): %v", tc.n, tc.d, err)
		}
		if g.MinDegree() != tc.d || g.MaxDegree() != tc.d {
			t.Errorf("RandomRegular(%d,%d): δ=%d ∆=%d", tc.n, tc.d, g.MinDegree(), g.MaxDegree())
		}
	}
	if _, err := RandomRegular(5, 3, rng); err == nil {
		t.Error("RandomRegular accepted odd n·d")
	}
}

// Property: PlantedMinDegree always yields a connected simple graph with
// the requested degree floor, across random parameters.
func TestPlantedMinDegreeProperty(t *testing.T) {
	check := func(seed uint64, nRaw, dRaw uint16) bool {
		n := 10 + int(nRaw)%120
		d := 2 + int(dRaw)%(n-2)
		rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b9))
		g, err := PlantedMinDegree(n, d, rng)
		if err != nil {
			return false
		}
		return g.MinDegree() >= d && IsConnected(g) && g.Validate() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: GNP outputs validate and respect the vertex count.
func TestGNPProperty(t *testing.T) {
	check := func(seed uint64, nRaw uint8, pRaw uint8) bool {
		n := 2 + int(nRaw)%80
		p := float64(pRaw) / 255
		rng := rand.New(rand.NewPCG(seed, 1))
		g, err := GNP(n, p, rng)
		if err != nil {
			return false
		}
		return g.N() == n && g.Validate() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
