package graph

import "fmt"

// This file holds the lower-bound graph families from Section 5 of the
// paper (Figures 1–3). Each generator returns the designated start
// vertices alongside the graph; internal/lower wraps these into full
// experiment instances.

// TwoStars returns the Figure 1(a) instance: two stars of half+1
// vertices whose centers are joined by an edge. The returned vertices
// are the two centers (the agents' initial locations). The graph has
// n = 2·half+2 vertices, δ = 1 and ∆ = half+1, so a sublinear-time
// algorithm would need o(∆) = o(n) rounds — impossible per Theorem 3.
func TwoStars(half int) (g *Graph, centerA, centerB Vertex, err error) {
	if half < 1 {
		return nil, NilVertex, NilVertex, fmt.Errorf("graph: two-stars needs half ≥ 1, got %d", half)
	}
	n := 2*half + 2
	b := NewBuilder(n)
	centerA, centerB = 0, Vertex(half+1)
	for i := 1; i <= half; i++ {
		b.MustAddEdge(centerA, Vertex(i))
		b.MustAddEdge(centerB, centerB+Vertex(i))
	}
	b.MustAddEdge(centerA, centerB)
	g, err = b.Build()
	return g, centerA, centerB, err
}

// StarCliquePair returns the Figure 1(b) instance generalizing
// TwoStars to minimum degree δ = Θ(n/∆): two center vertices joined by
// an edge, each additionally adjacent to one vertex in each of `arms`
// disjoint cliques of `cliqueSize` vertices. The centers have degree
// arms+1 = Θ(∆); clique vertices have degree cliqueSize-1 or
// cliqueSize, so δ = cliqueSize-1. Total n = 2·(1 + arms·cliqueSize).
func StarCliquePair(arms, cliqueSize int) (g *Graph, centerA, centerB Vertex, err error) {
	if arms < 1 || cliqueSize < 2 {
		return nil, NilVertex, NilVertex,
			fmt.Errorf("graph: star-clique needs arms ≥ 1, cliqueSize ≥ 2, got %d, %d", arms, cliqueSize)
	}
	side := 1 + arms*cliqueSize
	n := 2 * side
	b := NewBuilder(n)
	b.Grow(cliqueSize)
	centerA, centerB = 0, Vertex(side)
	buildSide := func(center Vertex) {
		base := center + 1
		for a := 0; a < arms; a++ {
			first := base + Vertex(a*cliqueSize)
			// The first vertex of each clique is the center's contact.
			b.MustAddEdge(center, first)
			for i := 0; i < cliqueSize; i++ {
				for j := i + 1; j < cliqueSize; j++ {
					b.MustAddEdge(first+Vertex(i), first+Vertex(j))
				}
			}
		}
	}
	buildSide(centerA)
	buildSide(centerB)
	b.MustAddEdge(centerA, centerB)
	g, err = b.Build()
	return g, centerA, centerB, err
}

// BridgedCliquePair returns the Figure 2 (Theorem 4) instance used for
// the KT0 lower bound: two cliques C1, C2 of n/2 vertices each, with
// the edges (a0,x1) and (b0,x2) removed and the bridges (a0,b0) and
// (x1,x2) added. In the KT0 model (ports carry no ID information) the
// bridge ports are indistinguishable from the removed clique edges'
// ports. n must be even and ≥ 6. a0 and b0 are the agents' initial
// locations; x1 ∈ C1 and x2 ∈ C2 are the secondary bridge endpoints.
func BridgedCliquePair(n int) (g *Graph, a0, b0, x1, x2 Vertex, err error) {
	if n < 6 || n%2 != 0 {
		return nil, NilVertex, NilVertex, NilVertex, NilVertex,
			fmt.Errorf("graph: bridged clique pair needs even n ≥ 6, got %d", n)
	}
	half := n / 2
	b := NewBuilder(n)
	b.Grow(half - 1)
	// C1 on [0, half), C2 on [half, n).
	a0, x1 = 0, Vertex(half-1)
	b0, x2 = Vertex(half), Vertex(n-1)
	addClique := func(lo, hi Vertex, skipU, skipV Vertex) {
		for u := lo; u < hi; u++ {
			for v := u + 1; v < hi; v++ {
				if u == skipU && v == skipV {
					continue
				}
				b.MustAddEdge(u, v)
			}
		}
	}
	addClique(0, Vertex(half), a0, x1)
	addClique(Vertex(half), Vertex(n), b0, x2)
	// The bridge edges take the port slots the removed edges vacated
	// only in the sense that degrees are preserved; in KT0 mode the
	// simulator hides IDs, which is what makes them indistinguishable.
	b.MustAddEdge(a0, b0)
	b.MustAddEdge(x1, x2)
	g, err = b.Build()
	return g, a0, b0, x1, x2, err
}

// TwoCliquesSharing returns the Figure 3 (Theorem 5) instance: two
// cliques of `size` vertices sharing exactly one vertex x. Total
// n = 2·size-1 (odd), ∆ = n-1 at x, δ = size-1 = (n-1)/2. The agents
// start at cA and cB, one inside each clique, at distance 2 from each
// other (both adjacent to x but not to each other).
func TwoCliquesSharing(size int) (g *Graph, cA, cB, x Vertex, err error) {
	if size < 3 {
		return nil, NilVertex, NilVertex, NilVertex,
			fmt.Errorf("graph: shared-vertex cliques need size ≥ 3, got %d", size)
	}
	n := 2*size - 1
	b := NewBuilder(n)
	b.Grow(size)
	// Clique 1 on [0, size); clique 2 on {size-1} ∪ [size, n).
	x = Vertex(size - 1)
	for u := 0; u < size; u++ {
		for v := u + 1; v < size; v++ {
			b.MustAddEdge(Vertex(u), Vertex(v))
		}
	}
	second := make([]Vertex, 0, size)
	second = append(second, x)
	for v := size; v < n; v++ {
		second = append(second, Vertex(v))
	}
	for i := 0; i < len(second); i++ {
		for j := i + 1; j < len(second); j++ {
			b.MustAddEdge(second[i], second[j])
		}
	}
	cA, cB = 0, Vertex(size)
	g, err = b.Build()
	return g, cA, cB, x, err
}
