package graph

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"io"
	"math/rand/v2"
	"testing"
)

// unsizedReader hides the size of its source, forcing the v3 decoder
// onto its growth-bounded no-size-hint path.
type unsizedReader struct{ r io.Reader }

func (u unsizedReader) Read(p []byte) (int, error) { return u.r.Read(p) }

// craftBinaryV3 assembles a v3 stream (valid frame and stream CRCs)
// from raw header values and varint sections, framed at the given
// chunk target — for feeding the reader inputs no writer produces.
func craftBinaryV3(n, nPrime, arcs uint64, idDeltas []int64, degrees []uint64, rows []uint64, chunk int) []byte {
	var buf bytes.Buffer
	cw := &chunkedWriter{w: &buf, crc: crc32.New(crcTable), chunk: chunk, buf: make([]byte, 0, chunk+binary.MaxVarintLen64)}
	cw.write(binMagicV3[:])
	cw.putU(n)
	cw.putU(nPrime)
	cw.putU(arcs)
	for _, d := range idDeltas {
		cw.putI(d)
	}
	for _, d := range degrees {
		cw.putU(d)
	}
	for _, x := range rows {
		cw.putU(x)
	}
	cw.finish()
	return buf.Bytes()
}

// v3RoundTrip encodes g in v3 at the given chunk target and decodes it
// back through Read, both sized and unsized.
func v3RoundTrip(t *testing.T, g *Graph, chunk int) *Graph {
	t.Helper()
	var buf bytes.Buffer
	wrote, err := g.writeBinaryV3(&buf, chunk)
	if err != nil {
		t.Fatalf("writeBinaryV3(chunk=%d): %v", chunk, err)
	}
	if wrote != int64(buf.Len()) {
		t.Fatalf("writeBinaryV3 reported %d bytes, wrote %d", wrote, buf.Len())
	}
	h, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Read(v3 sized, chunk=%d): %v", chunk, err)
	}
	hu, err := Read(unsizedReader{bytes.NewReader(buf.Bytes())})
	if err != nil {
		t.Fatalf("Read(v3 unsized, chunk=%d): %v", chunk, err)
	}
	if !h.Equal(hu) {
		t.Fatalf("sized and unsized v3 decodes differ (chunk=%d)", chunk)
	}
	return h
}

// TestBinaryV3RoundTripAllFamilies pins v3 encode→decode as the
// identity on every family and labeling variant, at a tiny chunk
// target (so even unit-size graphs span many frames) and the default.
func TestBinaryV3RoundTripAllFamilies(t *testing.T) {
	for name, g := range allFamilies(t) {
		t.Run(name, func(t *testing.T) {
			for _, chunk := range []int{64, v3ChunkLen} {
				h := v3RoundTrip(t, g, chunk)
				if !g.Equal(h) || !h.Equal(g) {
					t.Fatalf("v3 round trip (chunk=%d) changed the graph", chunk)
				}
				if err := h.Validate(); err != nil {
					t.Fatalf("decoded graph invalid (chunk=%d): %v", chunk, err)
				}
			}
		})
	}
}

// TestBinaryV3MatchesV2Payload pins the cross-format identity: the
// same graph decoded from v2 and from v3 must be Equal, and the v3
// framing overhead must stay marginal (frames add ~9 bytes per MiB).
func TestBinaryV3MatchesV2Payload(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	g, err := PlantedMinDegree(300, 11, rng)
	if err != nil {
		t.Fatal(err)
	}
	var v2, v3 bytes.Buffer
	if _, err := g.WriteBinary(&v2); err != nil {
		t.Fatal(err)
	}
	if _, err := g.WriteBinaryV3(&v3); err != nil {
		t.Fatal(err)
	}
	h2, err := Read(bytes.NewReader(v2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	h3, err := Read(bytes.NewReader(v3.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !h2.Equal(h3) {
		t.Fatal("v2 and v3 decodes of the same graph differ")
	}
	// One frame here: overhead = length varint + frame CRC + end
	// marker + stream CRC ≈ 12 bytes over v2's 4-byte trailer.
	if v3.Len() > v2.Len()+32 {
		t.Errorf("v3 (%d bytes) much larger than v2 (%d bytes)", v3.Len(), v2.Len())
	}
}

// TestBinaryV3RejectsCorrupt drives Read over truncations and
// corruptions of a valid multi-frame v3 stream: every one must error
// cleanly (frame CRC, stream CRC, or a structural check), never panic,
// never return a graph — sized and unsized alike.
func TestBinaryV3RejectsCorrupt(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 9))
	g, err := PlantedMinDegree(50, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := g.writeBinaryV3(&buf, 128); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	if _, err := Read(bytes.NewReader(valid)); err != nil {
		t.Fatalf("valid multi-frame stream rejected: %v", err)
	}
	check := func(name string, data []byte) {
		t.Helper()
		if _, err := Read(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: sized Read accepted it", name)
		}
		if _, err := Read(unsizedReader{bytes.NewReader(data)}); err == nil {
			t.Errorf("%s: unsized Read accepted it", name)
		}
	}
	// Truncations at every interesting boundary, including mid-frame
	// and inside the end marker and trailer.
	for _, cut := range []int{1, 4, len(binMagicV3), len(binMagicV3) + 1, len(binMagicV3) + 3, len(valid) / 2, len(valid) - 5, len(valid) - 1} {
		check("truncation", valid[:cut])
	}
	// Single corrupted byte in the header, frame payloads, and trailer.
	for _, pos := range []int{len(binMagicV3), len(binMagicV3) + 2, len(valid) / 2, len(valid) - 2} {
		c := append([]byte(nil), valid...)
		c[pos] ^= 0x40
		check("bit flip", c)
	}
	// A frame length past the reader's cap must be refused before any
	// allocation for it.
	var over bytes.Buffer
	over.Write(binMagicV3[:])
	var tmp [binary.MaxVarintLen64]byte
	over.Write(tmp[:binary.PutUvarint(tmp[:], v3MaxChunkLen+1)])
	check("oversized frame", over.Bytes())
	// A varint split across a frame boundary is a hard error (the
	// writer never produces one): first frame carries the lone
	// continuation byte of a two-byte varint.
	var split bytes.Buffer
	split.Write(binMagicV3[:])
	frame := func(payload []byte) {
		split.Write(tmp[:binary.PutUvarint(tmp[:], uint64(len(payload)))])
		split.Write(payload)
		var fcrc [4]byte
		binary.LittleEndian.PutUint32(fcrc[:], crc32.Checksum(payload, crcTable))
		split.Write(fcrc[:])
	}
	frame([]byte{0x80})
	frame([]byte{0x01})
	sum := crc32.Checksum(split.Bytes(), crcTable)
	split.WriteByte(0)
	var tb [4]byte
	binary.LittleEndian.PutUint32(tb[:], sum)
	split.Write(tb[:])
	check("split varint", split.Bytes())
	// Version byte 4 must be refused explicitly.
	c := append([]byte(nil), valid...)
	c[len(binMagicV3)-1] = 4
	check("future version", c)
	// Trailing bytes after the stream trailer must be refused even
	// though every checksum holds.
	check("trailing bytes", append(append([]byte(nil), valid...), 0x00))
}

// TestBinaryV3StraddlesEveryChunk shreds one graph across every tiny
// chunk target so frame boundaries land between all section types.
func TestBinaryV3StraddlesEveryChunk(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 32))
	g, err := PlantedMinDegree(80, 9, rng)
	if err != nil {
		t.Fatal(err)
	}
	for chunk := 1; chunk <= 24; chunk++ {
		h := v3RoundTrip(t, g, chunk)
		if !g.Equal(h) {
			t.Fatalf("chunk=%d round trip changed the graph", chunk)
		}
	}
}
