package graph

import "testing"

func TestTwoStars(t *testing.T) {
	g, ca, cb, err := TwoStars(10)
	if err != nil {
		t.Fatalf("TwoStars: %v", err)
	}
	if g.N() != 22 {
		t.Fatalf("n = %d, want 22", g.N())
	}
	if !g.HasEdge(ca, cb) {
		t.Fatal("centers not adjacent")
	}
	if g.Degree(ca) != 11 || g.Degree(cb) != 11 {
		t.Fatalf("center degrees %d, %d, want 11", g.Degree(ca), g.Degree(cb))
	}
	if g.MinDegree() != 1 {
		t.Fatalf("δ = %d, want 1", g.MinDegree())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if _, _, _, err := TwoStars(0); err == nil {
		t.Error("TwoStars(0) succeeded, want error")
	}
}

func TestStarCliquePair(t *testing.T) {
	arms, size := 5, 4
	g, ca, cb, err := StarCliquePair(arms, size)
	if err != nil {
		t.Fatalf("StarCliquePair: %v", err)
	}
	wantN := 2 * (1 + arms*size)
	if g.N() != wantN {
		t.Fatalf("n = %d, want %d", g.N(), wantN)
	}
	if !g.HasEdge(ca, cb) {
		t.Fatal("centers not adjacent")
	}
	if g.Degree(ca) != arms+1 {
		t.Fatalf("center degree %d, want %d", g.Degree(ca), arms+1)
	}
	// Clique vertices have degree size-1, contacts size.
	if g.MinDegree() != size-1 {
		t.Fatalf("δ = %d, want %d", g.MinDegree(), size-1)
	}
	if !IsConnected(g) {
		t.Fatal("disconnected")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestBridgedCliquePair(t *testing.T) {
	g, a0, b0, x1, x2, err := BridgedCliquePair(12)
	if err != nil {
		t.Fatalf("BridgedCliquePair: %v", err)
	}
	if g.N() != 12 {
		t.Fatalf("n = %d, want 12", g.N())
	}
	if !g.HasEdge(a0, b0) || !g.HasEdge(x1, x2) {
		t.Fatal("bridge edges missing")
	}
	if g.HasEdge(a0, x1) || g.HasEdge(b0, x2) {
		t.Fatal("removed clique edges still present")
	}
	// Degrees all equal n/2-1: clique degree n/2-1, minus removed edge,
	// plus bridge.
	if g.MinDegree() != 5 || g.MaxDegree() != 5 {
		t.Fatalf("degrees δ=%d ∆=%d, want 5, 5", g.MinDegree(), g.MaxDegree())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for _, bad := range []int{5, 7, 4} {
		if _, _, _, _, _, err := BridgedCliquePair(bad); err == nil {
			t.Errorf("BridgedCliquePair(%d) succeeded, want error", bad)
		}
	}
}

func TestTwoCliquesSharing(t *testing.T) {
	size := 6
	g, cA, cB, x, err := TwoCliquesSharing(size)
	if err != nil {
		t.Fatalf("TwoCliquesSharing: %v", err)
	}
	if g.N() != 2*size-1 {
		t.Fatalf("n = %d, want %d", g.N(), 2*size-1)
	}
	if g.Degree(x) != g.N()-1 {
		t.Fatalf("shared vertex degree %d, want %d", g.Degree(x), g.N()-1)
	}
	if g.MinDegree() != size-1 {
		t.Fatalf("δ = %d, want %d", g.MinDegree(), size-1)
	}
	if d := Dist(g, cA, cB); d != 2 {
		t.Fatalf("dist(cA, cB) = %d, want 2", d)
	}
	if !g.HasEdge(cA, x) || !g.HasEdge(cB, x) {
		t.Fatal("start vertices not adjacent to shared vertex")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if _, _, _, _, err := TwoCliquesSharing(2); err == nil {
		t.Error("TwoCliquesSharing(2) succeeded, want error")
	}
}
