//go:build !race

package graph

// raceEnabled reports whether the race detector is compiled in; the
// allocation-regression gates skip under it (instrumentation changes
// allocation counts).
const raceEnabled = false
