package graph

import (
	"math/rand/v2"
	"testing"
)

// cycleSequential is the reference implementation AddCycle must match
// byte-for-byte: n sequential MustAddEdge calls.
func cycleSequential(b *Builder, order []int) {
	n := len(order)
	for i := 0; i < n; i++ {
		b.MustAddEdge(Vertex(order[i]), Vertex(order[(i+1)%n]))
	}
}

// TestAddCycleMatchesSequential pins the bulk cycle fill against the
// sequential edge loop: identical graphs (port order included) and
// identical membership state — edges added afterwards must land, and
// duplicates of cycle edges must still be caught.
func TestAddCycleMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 42))
	orders := [][]int{
		{0, 1, 2},
		{2, 0, 1, 3},
		rng.Perm(97),
		rng.Perm(1024),
		rng.Perm(5000), // > one parallelBlocks block
	}
	for _, order := range orders {
		n := len(order)
		bulk, seq := NewBuilder(n), NewBuilder(n)
		if err := bulk.AddCycle(order); err != nil {
			t.Fatalf("AddCycle(n=%d): %v", n, err)
		}
		cycleSequential(seq, order)
		if bulk.M() != seq.M() {
			t.Fatalf("n=%d: bulk %d edges, sequential %d", n, bulk.M(), seq.M())
		}
		// The membership state must behave identically: cycle edges are
		// duplicates, and a fresh chord lands in the same port slots.
		if err := bulk.AddEdge(Vertex(order[0]), Vertex(order[1])); err == nil {
			t.Fatalf("n=%d: AddCycle did not register edge %d-%d", n, order[0], order[1])
		}
		if n > 3 {
			u, w := Vertex(order[0]), Vertex(order[2])
			if err := bulk.AddEdge(u, w); err != nil {
				t.Fatalf("n=%d: chord rejected after AddCycle: %v", n, err)
			}
			seq.MustAddEdge(u, w)
		}
		g, err := bulk.Build()
		if err != nil {
			t.Fatal(err)
		}
		h, err := seq.Build()
		if err != nil {
			t.Fatal(err)
		}
		if !g.Equal(h) || !h.Equal(g) {
			t.Fatalf("n=%d: bulk and sequential cycles differ", n)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

// TestAddCycleRejectsBadInput covers the argument contract.
func TestAddCycleRejectsBadInput(t *testing.T) {
	if err := NewBuilder(2).AddCycle([]int{0, 1}); err == nil {
		t.Error("accepted n=2")
	}
	if err := NewBuilder(4).AddCycle([]int{0, 1, 2}); err == nil {
		t.Error("accepted a short order")
	}
	if err := NewBuilder(4).AddCycle([]int{0, 1, 2, 2}); err == nil {
		t.Error("accepted a non-permutation")
	}
	if err := NewBuilder(4).AddCycle([]int{0, 1, 2, 4}); err == nil {
		t.Error("accepted an out-of-range entry")
	}
	b := NewBuilder(4)
	b.MustAddEdge(0, 1)
	if err := b.AddCycle([]int{0, 1, 2, 3}); err == nil {
		t.Error("accepted a non-empty builder")
	}
	// After Reset the builder is empty again and the cycle must land.
	b.Reset()
	if err := b.AddCycle([]int{0, 1, 2, 3}); err != nil {
		t.Errorf("rejected a reset builder: %v", err)
	}
}

// TestPlantedMinDegreeProgress pins the observer variant: identical
// topology to the plain call, and a monotone edge count ending at M.
func TestPlantedMinDegreeProgress(t *testing.T) {
	g, err := PlantedMinDegree(500, 19, rand.New(rand.NewPCG(7, 0xbe7c4)))
	if err != nil {
		t.Fatal(err)
	}
	calls, last := 0, -1
	h, err := PlantedMinDegreeProgress(500, 19, rand.New(rand.NewPCG(7, 0xbe7c4)), func(done, expected int) {
		calls++
		if done < last {
			t.Fatalf("progress went backwards: %d after %d", done, last)
		}
		last = done
		if expected != max(500, 500*19/2) {
			t.Fatalf("expected estimate %d", expected)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(h) {
		t.Fatal("progress observer changed the topology")
	}
	if calls < 2 || last != h.M() {
		t.Fatalf("progress saw %d calls ending at %d (M=%d)", calls, last, h.M())
	}
}
