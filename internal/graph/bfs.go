package graph

// BFSDistances returns the array of hop distances from src to every
// vertex; unreachable vertices get -1.
func BFSDistances(g *Graph, src Vertex) []int32 {
	dist := make([]int32, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]Vertex, 1, g.N())
	queue[0] = src
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, w := range g.Adj(v) {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// Dist returns the hop distance between u and v, or -1 if disconnected.
func Dist(g *Graph, u, v Vertex) int32 {
	if u == v {
		return 0
	}
	return BFSDistances(g, u)[v]
}

// IsConnected reports whether g is connected (the empty graph and the
// single vertex count as connected).
func IsConnected(g *Graph) bool {
	if g.N() <= 1 {
		return true
	}
	for _, d := range BFSDistances(g, 0) {
		if d < 0 {
			return false
		}
	}
	return true
}

// Diameter returns the largest finite pairwise distance, or -1 if g is
// disconnected. It runs n BFS passes; intended for tests and tools, not
// hot paths.
func Diameter(g *Graph) int32 {
	var diam int32
	for v := 0; v < g.N(); v++ {
		for _, d := range BFSDistances(g, Vertex(v)) {
			if d < 0 {
				return -1
			}
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}

// DegreeHistogram returns a map from degree to the number of vertices
// with that degree.
func DegreeHistogram(g *Graph) map[int]int {
	h := make(map[int]int)
	for v := 0; v < g.N(); v++ {
		h[g.Degree(Vertex(v))]++
	}
	return h
}

// PairsAtDistance returns up to max (u, v) pairs with distance exactly d,
// scanning vertices in index order. Used by experiments to pick valid
// initial locations; d must be ≥ 1.
func PairsAtDistance(g *Graph, d int32, max int) [][2]Vertex {
	var out [][2]Vertex
	if d < 1 || max <= 0 {
		return out
	}
	for u := 0; u < g.N() && len(out) < max; u++ {
		dist := BFSDistances(g, Vertex(u))
		for v := range dist {
			if dist[v] == d && Vertex(v) > Vertex(u) {
				out = append(out, [2]Vertex{Vertex(u), Vertex(v)})
				if len(out) >= max {
					break
				}
			}
		}
	}
	return out
}
