package graph

import (
	"bytes"
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	g, err := PlantedMinDegree(40, 7, rng)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	h, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !g.Equal(h) {
		t.Fatal("round trip changed the graph")
	}
}

func TestRoundTripSparseIDs(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 32))
	b := NewBuilder(10)
	for v := 0; v < 9; v++ {
		b.MustAddEdge(Vertex(v), Vertex(v+1))
	}
	if err := b.SparseIDs(100, rng); err != nil {
		t.Fatal(err)
	}
	g := b.MustBuild()
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	h, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !g.Equal(h) || h.NPrime() != 1000 {
		t.Fatalf("round trip mismatch, nPrime=%d", h.NPrime())
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"bad header":  "not-a-graph\n",
		"bad sizes":   "fnr-graph v1\nn=x nprime=y\n",
		"short ids":   "fnr-graph v1\nn=3 nprime=3\nids 0 1\n",
		"bad trailer": "fnr-graph v1\nn=1 nprime=1\nids 0\nadj 0\nnot-end\n",
		"asymmetric":  "fnr-graph v1\nn=2 nprime=2\nids 0 1\nadj 0 1\nadj 1\nend\n",
		"loop":        "fnr-graph v1\nn=1 nprime=1\nids 0\nadj 0 0\nend\n",
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Read(strings.NewReader(in)); err == nil {
				t.Fatalf("Read accepted %q", in)
			}
		})
	}
}

// Property: encode→decode is the identity on random planted graphs.
func TestRoundTripProperty(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		n := 5 + int(nRaw)%60
		rng := rand.New(rand.NewPCG(seed, 99))
		g, err := PlantedMinDegree(n, 2+n/10, rng)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if _, err := g.WriteTo(&buf); err != nil {
			return false
		}
		h, err := Read(&buf)
		return err == nil && g.Equal(h)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
