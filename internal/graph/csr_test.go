package graph

import (
	"hash/fnv"
	"math"
	"math/rand/v2"
	"testing"
)

// topoHash digests a graph's full observable topology — sizes, ID
// table, and every adjacency list in port order — so regression tests
// can pin a generated instance to one value.
func topoHash(g *Graph) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(x uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(x >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(uint64(g.N()))
	put(uint64(g.NPrime()))
	for v := Vertex(0); int(v) < g.N(); v++ {
		put(uint64(g.ID(v)))
	}
	for v := Vertex(0); int(v) < g.N(); v++ {
		put(uint64(g.Degree(v)))
		for _, w := range g.Adj(v) {
			put(uint64(w))
		}
	}
	return h.Sum64()
}

// TestPlantedMinDegreeBenchTopologyPinned pins the exact topology of
// the benchmark workload PlantedMinDegree(1024, 181) under
// benchengine's stream PCG(7, 0xbe7c4), including the start-pair
// draws that follow it. The values were recorded from the seed
// (pre-CSR) implementation; if this test fails, the generator's RNG
// draw sequence moved and every committed BENCH_engine.json aggregate
// is silently invalidated.
func TestPlantedMinDegreeBenchTopologyPinned(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 0xbe7c4))
	g, err := PlantedMinDegree(1024, 181, rng)
	if err != nil {
		t.Fatal(err)
	}
	if h := topoHash(g); h != 0x314fbb045ed27955 {
		t.Errorf("topology hash = %#x, want 0x314fbb045ed27955 (bench workload moved)", h)
	}
	if g.M() != 92681 || g.MinDegree() != 181 || g.MaxDegree() != 182 {
		t.Errorf("shape = m=%d δ=%d ∆=%d, want m=92681 δ=181 ∆=182", g.M(), g.MinDegree(), g.MaxDegree())
	}
	sa := Vertex(rng.IntN(g.N()))
	for g.Degree(sa) == 0 {
		sa = Vertex(rng.IntN(g.N()))
	}
	sb := g.Adj(sa)[rng.IntN(g.Degree(sa))]
	if sa != 902 || sb != 577 {
		t.Errorf("start pair = (%d, %d), want (902, 577)", sa, sb)
	}
}

// TestGNPExactStreamPinned pins GNPExact to the seed implementation's
// per-pair Bernoulli draw stream (values recorded from the pre-CSR
// GNP). GNP itself now uses geometric edge-skipping and draws
// differently; GNPExact is the compatibility gate.
func TestGNPExactStreamPinned(t *testing.T) {
	cases := []struct {
		n     int
		p     float64
		s1    uint64
		s2    uint64
		hash  uint64
		edges int
	}{
		{50, 0.3, 1, 2, 0x7a717779b869ffda, 368},
		{100, 0.2, 7, 7, 0x33b1996f35032083, 1015},
	}
	for _, tc := range cases {
		g, err := GNPExact(tc.n, tc.p, rand.New(rand.NewPCG(tc.s1, tc.s2)))
		if err != nil {
			t.Fatal(err)
		}
		if h := topoHash(g); h != tc.hash {
			t.Errorf("GNPExact(%d, %v): hash = %#x, want %#x", tc.n, tc.p, h, tc.hash)
		}
		if g.M() != tc.edges {
			t.Errorf("GNPExact(%d, %v): m = %d, want %d", tc.n, tc.p, g.M(), tc.edges)
		}
	}
}

// allFamilies generates one modest instance of every graph family for
// the semantic-equivalence properties.
func allFamilies(t *testing.T) map[string]*Graph {
	t.Helper()
	out := map[string]*Graph{}
	add := func(name string, g *Graph, err error) {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = g
	}
	rng := rand.New(rand.NewPCG(99, 0x5eed))
	g, err := Complete(24)
	add("complete", g, err)
	g, err = Ring(31)
	add("ring", g, err)
	g, err = Path(17)
	add("path", g, err)
	g, err = Star(20)
	add("star", g, err)
	g, err = Grid(5, 7)
	add("grid", g, err)
	g, err = Torus(4, 6)
	add("torus", g, err)
	g, err = Hypercube(5)
	add("hypercube", g, err)
	g, err = GNP(60, 0.25, rng)
	add("gnp", g, err)
	g, err = GNPExact(60, 0.25, rng)
	add("gnp exact", g, err)
	g, err = GNP(150, 0.8, rng) // dense: exercises builder bitset promotion
	add("gnp dense", g, err)
	g, err = PlantedMinDegree(80, 9, rng)
	add("planted", g, err)
	g, err = RandomRegular(30, 4, rng)
	add("regular", g, err)
	g, _, _, err = TwoStars(12)
	add("twostars", g, err)
	g, _, _, err = StarCliquePair(3, 4)
	add("starclique", g, err)
	g, _, _, _, _, err = BridgedCliquePair(16)
	add("kt0", g, err)
	g, _, _, _, err = TwoCliquesSharing(7)
	add("dist2", g, err)
	// Relabeled variants cover non-tight ID spaces.
	b := Rebuild(out["planted"])
	b.PermuteIDs(rng)
	g, err = b.Build()
	add("planted permuted", g, err)
	b = Rebuild(out["gnp"])
	if err := b.SparseIDs(16, rng); err != nil {
		t.Fatal(err)
	}
	g, err = b.Build()
	add("gnp sparse", g, err)
	return out
}

// TestCSRSemanticsAcrossFamilies checks, for every generator family,
// that the CSR graph is semantically identical to its plain adjacency
// form: rebuilding through FromAdjacency reproduces an Equal graph,
// Clone round-trips, HasEdge matches a naive membership scan,
// PortTo/PortOfID invert Neighbor/NeighborIDList, and Validate
// accepts the result.
func TestCSRSemanticsAcrossFamilies(t *testing.T) {
	for name, g := range allFamilies(t) {
		t.Run(name, func(t *testing.T) {
			if err := g.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			// Reconstruct the plain adjacency form through the public
			// API and rebuild: must be Equal both ways.
			n := g.N()
			ids := make([]int64, n)
			rows := make([][]Vertex, n)
			for v := Vertex(0); int(v) < n; v++ {
				ids[v] = g.ID(v)
				rows[v] = make([]Vertex, g.Degree(v))
				for p := range rows[v] {
					rows[v][p] = g.Neighbor(v, p)
				}
			}
			h, err := FromAdjacency(ids, rows, g.NPrime())
			if err != nil {
				t.Fatalf("FromAdjacency: %v", err)
			}
			if !g.Equal(h) || !h.Equal(g) {
				t.Fatal("FromAdjacency round-trip not Equal")
			}
			if c := g.Clone(); !g.Equal(c) || topoHash(c) != topoHash(g) {
				t.Fatal("Clone not Equal")
			}
			// Naive adjacency membership as ground truth for HasEdge.
			adj := make(map[[2]Vertex]bool)
			for v := Vertex(0); int(v) < n; v++ {
				for _, w := range rows[v] {
					adj[[2]Vertex{v, w}] = true
				}
			}
			for u := Vertex(0); int(u) < n; u++ {
				for v := Vertex(0); int(v) < n; v++ {
					if g.HasEdge(u, v) != adj[[2]Vertex{u, v}] {
						t.Fatalf("HasEdge(%d,%d) = %v, want %v", u, v, g.HasEdge(u, v), adj[[2]Vertex{u, v}])
					}
				}
			}
			// Port round-trips: Neighbor <-> PortTo, NeighborIDList <->
			// PortOfID, and the two namespaces agree.
			for v := Vertex(0); int(v) < n; v++ {
				nbrIDs := g.NeighborIDList(v)
				if len(nbrIDs) != g.Degree(v) {
					t.Fatalf("NeighborIDList(%d) has %d entries for degree %d", v, len(nbrIDs), g.Degree(v))
				}
				for p := 0; p < g.Degree(v); p++ {
					w := g.Neighbor(v, p)
					if got := g.PortTo(v, w); got != p {
						t.Fatalf("PortTo(%d,%d) = %d, want %d", v, w, got, p)
					}
					if nbrIDs[p] != g.ID(w) {
						t.Fatalf("NeighborIDList(%d)[%d] = %d, want ID %d", v, p, nbrIDs[p], g.ID(w))
					}
					if got := g.PortOfID(v, g.ID(w)); got != p {
						t.Fatalf("PortOfID(%d, %d) = %d, want %d", v, g.ID(w), got, p)
					}
				}
				if g.PortOfID(v, g.NPrime()+5) != -1 {
					t.Fatalf("PortOfID(%d, out-of-space) != -1", v)
				}
			}
		})
	}
}

// TestBuilderReset checks that Reset keeps the vertex set, IDs and n'
// while dropping every edge, and that a reused builder reproduces the
// same graph an equivalent fresh builder would.
func TestBuilderReset(t *testing.T) {
	b := NewBuilder(40)
	rng := rand.New(rand.NewPCG(3, 14))
	b.PermuteIDs(rng)
	for v := Vertex(0); v < 39; v++ {
		b.MustAddEdge(v, v+1)
	}
	b.MustAddEdge(0, 20)
	if b.M() != 40 {
		t.Fatalf("M = %d, want 40", b.M())
	}
	first := b.MustBuild()
	b.Reset()
	if b.M() != 0 {
		t.Fatalf("M after Reset = %d, want 0", b.M())
	}
	for v := Vertex(0); int(v) < b.N(); v++ {
		if b.Degree(v) != 0 {
			t.Fatalf("degree of %d after Reset = %d, want 0", v, b.Degree(v))
		}
	}
	if b.HasEdge(0, 1) || b.HasEdge(0, 20) {
		t.Fatal("HasEdge true after Reset")
	}
	// Rebuild the identical edge set: graphs must be Equal (IDs and
	// n' survive the Reset).
	for v := Vertex(0); v < 39; v++ {
		b.MustAddEdge(v, v+1)
	}
	b.MustAddEdge(0, 20)
	second := b.MustBuild()
	if !first.Equal(second) {
		t.Fatal("rebuilt graph differs after Reset")
	}
}

// TestBuilderResetAfterBitsetPromotion covers Reset on a builder whose
// dense vertices were promoted to bitset membership.
func TestBuilderResetAfterBitsetPromotion(t *testing.T) {
	n := 200
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.MustAddEdge(0, Vertex(v)) // vertex 0 passes the promotion threshold
	}
	b.Reset()
	if b.HasEdge(0, 1) {
		t.Fatal("HasEdge true after Reset of promoted vertex")
	}
	b.MustAddEdge(0, 1)
	if !b.HasEdge(0, 1) || b.HasEdge(0, 2) {
		t.Fatal("membership wrong after Reset of promoted vertex")
	}
	if err := b.MustBuild().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestPlantedMinDegreeNearComplete exercises the uniform-fallback path
// at degrees close to n, where the seed implementation's unbounded
// rejection loop could spin for Θ(n) draws per edge (and arbitrarily
// long in the worst case): generation must terminate and deliver the
// degree floor. d = n-1 forces the complete graph.
func TestPlantedMinDegreeNearComplete(t *testing.T) {
	for _, tc := range []struct{ n, d int }{{12, 11}, {48, 47}, {64, 60}, {100, 97}} {
		rng := rand.New(rand.NewPCG(uint64(tc.n), uint64(tc.d)))
		g, err := PlantedMinDegree(tc.n, tc.d, rng)
		if err != nil {
			t.Fatalf("PlantedMinDegree(%d,%d): %v", tc.n, tc.d, err)
		}
		if g.MinDegree() < tc.d {
			t.Errorf("PlantedMinDegree(%d,%d): δ=%d", tc.n, tc.d, g.MinDegree())
		}
		if err := g.Validate(); err != nil {
			t.Errorf("Validate: %v", err)
		}
		if tc.d == tc.n-1 && g.M() != tc.n*(tc.n-1)/2 {
			t.Errorf("PlantedMinDegree(%d,%d): m=%d, want complete %d", tc.n, tc.d, g.M(), tc.n*(tc.n-1)/2)
		}
	}
}

// TestGNPGeometricDeterministic checks the geometric-skip sampler is
// deterministic per seed and diverges from the exact-stream sampler
// only in draw order, not in distribution (edge-count band).
func TestGNPGeometricDeterministic(t *testing.T) {
	g1, err := GNP(200, 0.15, rand.New(rand.NewPCG(5, 6)))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := GNP(200, 0.15, rand.New(rand.NewPCG(5, 6)))
	if err != nil {
		t.Fatal(err)
	}
	if !g1.Equal(g2) {
		t.Fatal("GNP not deterministic for a fixed seed")
	}
	// Expected m = 0.15 · C(200,2) = 2985; allow a wide band.
	if g1.M() < 2400 || g1.M() > 3600 {
		t.Errorf("GNP(200, 0.15): m=%d, expected ≈2985", g1.M())
	}
	if full, err := GNP(30, 1, rand.New(rand.NewPCG(1, 1))); err != nil || full.M() != 435 {
		t.Errorf("GNP(30, 1): m=%v err=%v, want complete 435", full.M(), err)
	}
	for _, f := range []func(int, float64, *rand.Rand) (*Graph, error){GNP, GNPExact} {
		if _, err := f(10, math.NaN(), rand.New(rand.NewPCG(1, 1))); err == nil {
			t.Error("G(n,p) accepted p=NaN")
		}
	}
}
