package graph

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// This file holds the graph families used across the experiments.
// Generators return graphs with tight IDs (ids[v] = v); relabel via the
// Builder helpers when an experiment needs permuted or sparse naming.

// Complete returns the complete graph K_n (n ≥ 2).
func Complete(n int) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: complete graph needs n ≥ 2, got %d", n)
	}
	b := NewBuilder(n)
	b.Grow(n - 1)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.addKnownNew(Vertex(u), Vertex(v))
		}
	}
	return b.Build()
}

// Ring returns the cycle C_n (n ≥ 3).
func Ring(n int) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("graph: ring needs n ≥ 3, got %d", n)
	}
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		b.addKnownNew(Vertex(v), Vertex((v+1)%n))
	}
	return b.Build()
}

// Path returns the path P_n (n ≥ 2).
func Path(n int) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: path needs n ≥ 2, got %d", n)
	}
	b := NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		b.addKnownNew(Vertex(v), Vertex(v+1))
	}
	return b.Build()
}

// Star returns the star S_{n-1}: vertex 0 is the center, vertices
// 1..n-1 are leaves (n ≥ 2).
func Star(n int) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: star needs n ≥ 2, got %d", n)
	}
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.addKnownNew(0, Vertex(v))
	}
	return b.Build()
}

// Grid returns the rows×cols grid graph (rows, cols ≥ 1, rows·cols ≥ 2).
func Grid(rows, cols int) (*Graph, error) {
	if rows < 1 || cols < 1 || rows*cols < 2 {
		return nil, fmt.Errorf("graph: invalid grid %dx%d", rows, cols)
	}
	b := NewBuilder(rows * cols)
	at := func(r, c int) Vertex { return Vertex(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.addKnownNew(at(r, c), at(r, c+1))
			}
			if r+1 < rows {
				b.addKnownNew(at(r, c), at(r+1, c))
			}
		}
	}
	return b.Build()
}

// Torus returns the rows×cols torus (wrap-around grid); rows, cols ≥ 3
// so that no parallel edges arise.
func Torus(rows, cols int) (*Graph, error) {
	if rows < 3 || cols < 3 {
		return nil, fmt.Errorf("graph: torus needs rows, cols ≥ 3, got %dx%d", rows, cols)
	}
	b := NewBuilder(rows * cols)
	b.Grow(4)
	at := func(r, c int) Vertex { return Vertex(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			b.addKnownNew(at(r, c), at(r, (c+1)%cols))
			b.addKnownNew(at(r, c), at((r+1)%rows, c))
		}
	}
	return b.Build()
}

// Hypercube returns the dim-dimensional hypercube Q_dim (dim ≥ 1).
func Hypercube(dim int) (*Graph, error) {
	if dim < 1 || dim > 24 {
		return nil, fmt.Errorf("graph: hypercube dimension %d out of [1,24]", dim)
	}
	n := 1 << dim
	b := NewBuilder(n)
	b.Grow(dim)
	for v := 0; v < n; v++ {
		for bit := 0; bit < dim; bit++ {
			w := v ^ (1 << bit)
			if v < w {
				b.addKnownNew(Vertex(v), Vertex(w))
			}
		}
	}
	return b.Build()
}

// checkGNPArgs validates the shared G(n,p) parameter domain.
func checkGNPArgs(n int, p float64) error {
	if n < 2 {
		return fmt.Errorf("graph: G(n,p) needs n ≥ 2, got %d", n)
	}
	if math.IsNaN(p) || p < 0 || p > 1 {
		return fmt.Errorf("graph: G(n,p) needs p in [0,1], got %v", p)
	}
	return nil
}

// GNP returns an Erdős–Rényi G(n, p) sample using geometric
// edge-skipping: instead of one Bernoulli draw per vertex pair (O(n²)
// RNG calls), it draws the gap to the next present edge from the
// geometric distribution, so generation costs O(n + m) RNG calls and
// O(n + m) work overall. The result may be disconnected or have
// isolated vertices; callers that need degree floors should use
// PlantedMinDegree instead.
//
// The sampled distribution is exactly G(n, p), but the RNG draw stream
// differs from the seed implementation's per-pair loop; GNPExact keeps
// that legacy stream for reproducibility tests.
func GNP(n int, p float64, rng *rand.Rand) (*Graph, error) {
	if err := checkGNPArgs(n, p); err != nil {
		return nil, err
	}
	if p == 1 {
		return Complete(n)
	}
	b := NewBuilder(n)
	if p == 0 {
		return b.Build()
	}
	// Pairs (u,v), u < v, in lexicographic order get linear indices
	// 0..C(n,2)-1. Jump between present pairs with geometric gaps:
	// skip ~ floor(log(1-U) / log(1-p)).
	logq := math.Log1p(-p)
	total := int64(n) * int64(n-1) / 2
	var u int64
	rowStart, rowEnd := int64(0), int64(n-1) // row u covers [rowStart, rowEnd)
	i := int64(-1)
	for {
		gap := math.Log1p(-rng.Float64()) / logq
		if gap >= float64(total) { // also catches +Inf before the int conversion
			break
		}
		i += 1 + int64(gap)
		if i >= total {
			break
		}
		for i >= rowEnd {
			u++
			rowStart = rowEnd
			rowEnd += int64(n) - 1 - u
		}
		v := u + 1 + (i - rowStart)
		b.addKnownNew(Vertex(u), Vertex(v))
	}
	return b.Build()
}

// GNPExact returns an Erdős–Rényi G(n, p) sample with the seed
// implementation's draw stream: exactly one rng.Float64 per vertex
// pair in lexicographic order. It exists so reproducibility tests and
// experiments pinned to historic streams keep their exact topologies;
// new code should use GNP, which samples the same distribution in
// O(n + m) draws.
func GNPExact(n int, p float64, rng *rand.Rand) (*Graph, error) {
	if err := checkGNPArgs(n, p); err != nil {
		return nil, err
	}
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.addKnownNew(Vertex(u), Vertex(v))
			}
		}
	}
	return b.Build()
}

// aliveList is an order-statistics structure over the fixed vertex
// range [0, n): a Fenwick tree of 0/1 weights supporting "remove
// vertex" and "select the k-th alive vertex in index order", both in
// O(log n). PlantedMinDegree uses it to reproduce the draw semantics
// of the original compact-then-index deficit list (uniform selection
// over the surviving vertices in index order) without the O(n) rescan
// per added edge that made large-n generation quadratic.
type aliveList struct {
	tree  []int32 // 1-based Fenwick partial sums
	alive []bool
	count int
}

func newAliveList(n int) *aliveList {
	return &aliveList{tree: make([]int32, n+1), alive: make([]bool, n)}
}

func (a *aliveList) insert(v Vertex) {
	if a.alive[v] {
		return
	}
	a.alive[v] = true
	a.count++
	for i := int(v) + 1; i < len(a.tree); i += i & (-i) {
		a.tree[i]++
	}
}

func (a *aliveList) remove(v Vertex) {
	if !a.alive[v] {
		return
	}
	a.alive[v] = false
	a.count--
	for i := int(v) + 1; i < len(a.tree); i += i & (-i) {
		a.tree[i]--
	}
}

// kth returns the (k+1)-th alive vertex in index order, k in
// [0, count).
func (a *aliveList) kth(k int) Vertex {
	pos := 0
	rem := int32(k) + 1
	for step := highestBit(len(a.tree) - 1); step > 0; step >>= 1 {
		next := pos + step
		if next < len(a.tree) && a.tree[next] < rem {
			rem -= a.tree[next]
			pos = next
		}
	}
	return Vertex(pos) // tree is 1-based: slot pos+1 -> vertex pos
}

func highestBit(n int) int {
	b := 1
	for b<<1 <= n {
		b <<= 1
	}
	return b
}

// plantedFallbackDraws bounds PlantedMinDegree's uniform rejection
// loop before it switches to explicit non-neighbor enumeration. The
// bound is high enough that workloads with d = O(n/2) never reach it
// (each draw fails with probability ≈ d/n, so 64 consecutive failures
// are astronomically unlikely), keeping the common-path RNG stream
// byte-identical to the seed implementation, while degenerate d ≈ n
// instances terminate deterministically instead of spinning.
const plantedFallbackDraws = 64

// PlantedMinDegree returns a connected graph on n vertices with minimum
// degree at least d and maximum degree O(d) in expectation: a
// Hamiltonian cycle (connectivity) plus random edges added from
// deficit vertices until every vertex reaches degree d. This is the
// quasi-regular workload family used by the scaling experiments, where
// δ is the controlled parameter and ∆/δ stays bounded.
//
// The RNG draw sequence is byte-identical to the seed implementation
// on non-degenerate inputs: the Hamiltonian prefix consumes exactly
// the rng.Perm(n) draws (its edges are bulk-filled by AddCycle, which
// draws nothing), and the deficit list is maintained as a Fenwick
// order-statistics structure whose selection semantics match the
// original per-iteration compaction exactly, at O(log n) instead of
// O(n) per added edge.
func PlantedMinDegree(n, d int, rng *rand.Rand) (*Graph, error) {
	return PlantedMinDegreeProgress(n, d, rng, nil)
}

// PlantedMinDegreeProgress is PlantedMinDegree with a generation
// observer: progress (when non-nil) is called periodically with the
// edges added so far and the expected total ≈ n·d/2 (done may end
// slightly past the estimate — deficit pairing can overshoot by a few
// edges). The callback only observes; the RNG draw sequence and the
// resulting topology are identical to PlantedMinDegree's.
func PlantedMinDegreeProgress(n, d int, rng *rand.Rand, progress func(done, expected int)) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("graph: planted graph needs n ≥ 3, got %d", n)
	}
	if d < 2 || d > n-1 {
		return nil, fmt.Errorf("graph: planted degree %d out of [2, %d]", d, n-1)
	}
	b := NewBuilder(n)
	b.Grow(min(d+2, n-1))
	perm := rng.Perm(n)
	if err := b.AddCycle(perm); err != nil {
		return nil, err
	}
	expected := max(n, n*d/2)
	every := max(1, expected/64)
	nextReport := b.M() + every
	if progress != nil {
		progress(b.M(), expected)
	}
	// Repeatedly pick a vertex with deficit and connect it to a random
	// non-neighbor, preferring other deficit vertices to keep the
	// degree distribution tight. Selection draws index the alive
	// deficit vertices in vertex order — the same order the original
	// compacted slice exposed.
	deficit := newAliveList(n)
	for v := 0; v < n; v++ {
		if b.Degree(Vertex(v)) < d {
			deficit.insert(Vertex(v))
		}
	}
	for deficit.count > 0 {
		v := deficit.kth(rng.IntN(deficit.count))
		var w Vertex
		if deficit.count > 1 {
			// Try a few times to pair two deficit vertices.
			w = v
			for try := 0; try < 8 && (w == v || b.HasEdge(v, w)); try++ {
				w = deficit.kth(rng.IntN(deficit.count))
			}
			if w == v || b.HasEdge(v, w) {
				w = NilVertex
			}
		} else {
			w = NilVertex
		}
		if w == NilVertex {
			// Fall back to a uniform non-neighbor; after
			// plantedFallbackDraws failed draws (only reachable when v
			// is adjacent to nearly all of V), enumerate the
			// non-neighbors explicitly instead of spinning.
			w = Vertex(rng.IntN(n))
			for draws := 1; w == v || b.HasEdge(v, w); draws++ {
				if draws >= plantedFallbackDraws {
					w = pickNonNeighbor(b, v, rng)
					break
				}
				w = Vertex(rng.IntN(n))
			}
		}
		b.MustAddEdge(v, w)
		if b.Degree(v) >= d {
			deficit.remove(v)
		}
		if b.Degree(w) >= d {
			deficit.remove(w)
		}
		if progress != nil && b.M() >= nextReport {
			progress(b.M(), expected)
			nextReport = b.M() + every
		}
	}
	if progress != nil {
		progress(b.M(), expected)
	}
	return b.Build()
}

// pickNonNeighbor returns a uniformly chosen vertex that is neither v
// nor adjacent to v. A deficit vertex has degree < d ≤ n-1, so at
// least one such vertex always exists.
func pickNonNeighbor(b *Builder, v Vertex, rng *rand.Rand) Vertex {
	nonNbrs := make([]Vertex, 0, b.N()-1-b.Degree(v))
	for w := Vertex(0); int(w) < b.N(); w++ {
		if w != v && !b.HasEdge(v, w) {
			nonNbrs = append(nonNbrs, w)
		}
	}
	if len(nonNbrs) == 0 {
		panic(fmt.Sprintf("graph: vertex %d has no non-neighbor (degree %d of n=%d)", v, b.Degree(v), b.N()))
	}
	return nonNbrs[rng.IntN(len(nonNbrs))]
}

// RandomRegular returns a random d-regular graph on n vertices using
// Steger–Wormald incremental stub matching: unmatched stubs are paired
// uniformly at random, rejecting loops and parallel edges locally
// (via the builder's O(log d) / O(1) edge test), and the whole
// construction restarts on a dead end. One builder is reused across
// restarts via Reset, so a restart costs no fresh allocations. n·d
// must be even and d ≤ n-1.
func RandomRegular(n, d int, rng *rand.Rand) (*Graph, error) {
	if n < 2 || d < 1 || d > n-1 {
		return nil, fmt.Errorf("graph: random regular needs 1 ≤ d ≤ n-1, got n=%d d=%d", n, d)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("graph: random regular needs n·d even, got n=%d d=%d", n, d)
	}
	stubs := make([]Vertex, 0, n*d)
	b := NewBuilder(n)
	b.Grow(d)
restart:
	for try := 0; try < 200; try++ {
		stubs = stubs[:0]
		for v := 0; v < n; v++ {
			for i := 0; i < d; i++ {
				stubs = append(stubs, Vertex(v))
			}
		}
		b.Reset()
		for len(stubs) > 0 {
			// Pick a valid random pair of stubs; give up on this
			// attempt after enough failed draws (dead end).
			ok := false
			for draw := 0; draw < 64; draw++ {
				i := rng.IntN(len(stubs))
				j := rng.IntN(len(stubs))
				if i == j {
					continue
				}
				u, v := stubs[i], stubs[j]
				if u == v || b.HasEdge(u, v) {
					continue
				}
				b.addKnownNew(u, v)
				// Remove the two stubs (order matters: delete the
				// larger index first).
				if i < j {
					i, j = j, i
				}
				stubs[i] = stubs[len(stubs)-1]
				stubs = stubs[:len(stubs)-1]
				stubs[j] = stubs[len(stubs)-1]
				stubs = stubs[:len(stubs)-1]
				ok = true
				break
			}
			if !ok {
				continue restart
			}
		}
		return b.Build()
	}
	return nil, fmt.Errorf("graph: random regular pairing failed for n=%d d=%d", n, d)
}
