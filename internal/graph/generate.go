package graph

import (
	"fmt"
	"math/rand/v2"
)

// This file holds the graph families used across the experiments.
// Generators return graphs with tight IDs (ids[v] = v); relabel via the
// Builder helpers when an experiment needs permuted or sparse naming.

// Complete returns the complete graph K_n (n ≥ 2).
func Complete(n int) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: complete graph needs n ≥ 2, got %d", n)
	}
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.MustAddEdge(Vertex(u), Vertex(v))
		}
	}
	return b.Build()
}

// Ring returns the cycle C_n (n ≥ 3).
func Ring(n int) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("graph: ring needs n ≥ 3, got %d", n)
	}
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		b.MustAddEdge(Vertex(v), Vertex((v+1)%n))
	}
	return b.Build()
}

// Path returns the path P_n (n ≥ 2).
func Path(n int) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: path needs n ≥ 2, got %d", n)
	}
	b := NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		b.MustAddEdge(Vertex(v), Vertex(v+1))
	}
	return b.Build()
}

// Star returns the star S_{n-1}: vertex 0 is the center, vertices
// 1..n-1 are leaves (n ≥ 2).
func Star(n int) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: star needs n ≥ 2, got %d", n)
	}
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.MustAddEdge(0, Vertex(v))
	}
	return b.Build()
}

// Grid returns the rows×cols grid graph (rows, cols ≥ 1, rows·cols ≥ 2).
func Grid(rows, cols int) (*Graph, error) {
	if rows < 1 || cols < 1 || rows*cols < 2 {
		return nil, fmt.Errorf("graph: invalid grid %dx%d", rows, cols)
	}
	b := NewBuilder(rows * cols)
	at := func(r, c int) Vertex { return Vertex(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.MustAddEdge(at(r, c), at(r, c+1))
			}
			if r+1 < rows {
				b.MustAddEdge(at(r, c), at(r+1, c))
			}
		}
	}
	return b.Build()
}

// Torus returns the rows×cols torus (wrap-around grid); rows, cols ≥ 3
// so that no parallel edges arise.
func Torus(rows, cols int) (*Graph, error) {
	if rows < 3 || cols < 3 {
		return nil, fmt.Errorf("graph: torus needs rows, cols ≥ 3, got %dx%d", rows, cols)
	}
	b := NewBuilder(rows * cols)
	at := func(r, c int) Vertex { return Vertex(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			b.MustAddEdge(at(r, c), at(r, (c+1)%cols))
			b.MustAddEdge(at(r, c), at((r+1)%rows, c))
		}
	}
	return b.Build()
}

// Hypercube returns the dim-dimensional hypercube Q_dim (dim ≥ 1).
func Hypercube(dim int) (*Graph, error) {
	if dim < 1 || dim > 24 {
		return nil, fmt.Errorf("graph: hypercube dimension %d out of [1,24]", dim)
	}
	n := 1 << dim
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		for bit := 0; bit < dim; bit++ {
			w := v ^ (1 << bit)
			if v < w {
				b.MustAddEdge(Vertex(v), Vertex(w))
			}
		}
	}
	return b.Build()
}

// GNP returns an Erdős–Rényi G(n, p) sample. The result may be
// disconnected or have isolated vertices; callers that need degree
// floors should use PlantedMinDegree instead.
func GNP(n int, p float64, rng *rand.Rand) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: G(n,p) needs n ≥ 2, got %d", n)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("graph: G(n,p) needs p in [0,1], got %v", p)
	}
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.MustAddEdge(Vertex(u), Vertex(v))
			}
		}
	}
	return b.Build()
}

// PlantedMinDegree returns a connected graph on n vertices with minimum
// degree at least d and maximum degree O(d) in expectation: a
// Hamiltonian cycle (connectivity) plus random edges added from
// deficit vertices until every vertex reaches degree d. This is the
// quasi-regular workload family used by the scaling experiments, where
// δ is the controlled parameter and ∆/δ stays bounded.
func PlantedMinDegree(n, d int, rng *rand.Rand) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("graph: planted graph needs n ≥ 3, got %d", n)
	}
	if d < 2 || d > n-1 {
		return nil, fmt.Errorf("graph: planted degree %d out of [2, %d]", d, n-1)
	}
	b := NewBuilder(n)
	perm := rng.Perm(n)
	for i := 0; i < n; i++ {
		b.MustAddEdge(Vertex(perm[i]), Vertex(perm[(i+1)%n]))
	}
	// Repeatedly pick a vertex with deficit and connect it to a random
	// non-neighbor, preferring other deficit vertices to keep the
	// degree distribution tight.
	deficit := make([]Vertex, 0, n)
	for v := 0; v < n; v++ {
		if b.Degree(Vertex(v)) < d {
			deficit = append(deficit, Vertex(v))
		}
	}
	for len(deficit) > 0 {
		// Compact the deficit list.
		out := deficit[:0]
		for _, v := range deficit {
			if b.Degree(v) < d {
				out = append(out, v)
			}
		}
		deficit = out
		if len(deficit) == 0 {
			break
		}
		v := deficit[rng.IntN(len(deficit))]
		var w Vertex
		if len(deficit) > 1 {
			// Try a few times to pair two deficit vertices.
			w = v
			for try := 0; try < 8 && (w == v || b.HasEdge(v, w)); try++ {
				w = deficit[rng.IntN(len(deficit))]
			}
			if w == v || b.HasEdge(v, w) {
				w = NilVertex
			}
		} else {
			w = NilVertex
		}
		if w == NilVertex {
			// Fall back to a uniform non-neighbor.
			w = Vertex(rng.IntN(n))
			for w == v || b.HasEdge(v, w) {
				w = Vertex(rng.IntN(n))
			}
		}
		b.MustAddEdge(v, w)
	}
	return b.Build()
}

// RandomRegular returns a random d-regular graph on n vertices using
// Steger–Wormald incremental stub matching: unmatched stubs are paired
// uniformly at random, rejecting loops and parallel edges locally, and
// the whole construction restarts on a dead end. n·d must be even and
// d ≤ n-1.
func RandomRegular(n, d int, rng *rand.Rand) (*Graph, error) {
	if n < 2 || d < 1 || d > n-1 {
		return nil, fmt.Errorf("graph: random regular needs 1 ≤ d ≤ n-1, got n=%d d=%d", n, d)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("graph: random regular needs n·d even, got n=%d d=%d", n, d)
	}
	stubs := make([]Vertex, 0, n*d)
restart:
	for try := 0; try < 200; try++ {
		stubs = stubs[:0]
		for v := 0; v < n; v++ {
			for i := 0; i < d; i++ {
				stubs = append(stubs, Vertex(v))
			}
		}
		b := NewBuilder(n)
		for len(stubs) > 0 {
			// Pick a valid random pair of stubs; give up on this
			// attempt after enough failed draws (dead end).
			ok := false
			for draw := 0; draw < 64; draw++ {
				i := rng.IntN(len(stubs))
				j := rng.IntN(len(stubs))
				if i == j {
					continue
				}
				u, v := stubs[i], stubs[j]
				if u == v || b.HasEdge(u, v) {
					continue
				}
				b.MustAddEdge(u, v)
				// Remove the two stubs (order matters: delete the
				// larger index first).
				if i < j {
					i, j = j, i
				}
				stubs[i] = stubs[len(stubs)-1]
				stubs = stubs[:len(stubs)-1]
				stubs[j] = stubs[len(stubs)-1]
				stubs = stubs[:len(stubs)-1]
				ok = true
				break
			}
			if !ok {
				continue restart
			}
		}
		return b.Build()
	}
	return nil, fmt.Errorf("graph: random regular pairing failed for n=%d d=%d", n, d)
}
