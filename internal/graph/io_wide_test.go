package graph

import (
	"bufio"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strings"
	"testing"
)

// TestWideOffsetsBoundaryRoundTrip proves the 64-bit CSR core end to
// end at the old int32 boundary: the complete graph on n = 46342
// vertices has n·(n−1) = 2,147,745,222 arcs — just past 2³¹−1, the
// seed layout's hard cap — and must build, digest, serialize through
// the v3 streaming format, and decode back to an identical topology,
// while the v1/v2 writers reject it loudly.
//
// The instance holds ~60 GB of CSR arrays and ~8 GB of serialized
// bytes, so the test is gated: set FNR_WIDE_BOUNDARY=1 to run it
// (needs ~80 GB of RAM headroom, ~10 GB of free temp disk, and a few
// minutes of single-core time). CI exercises the same decode path at
// bounded size through the benchengine huge preset instead.
func TestWideOffsetsBoundaryRoundTrip(t *testing.T) {
	if os.Getenv("FNR_WIDE_BOUNDARY") == "" {
		t.Skip("set FNR_WIDE_BOUNDARY=1 to run (~80 GB RAM, ~10 GB disk)")
	}
	// Two graphs this size cannot be resident together, so the live
	// set is kept to one: digest → free → decode → digest. A tight GC
	// target keeps the heap ceiling near the live set instead of 2×.
	defer debug.SetGCPercent(debug.SetGCPercent(30))

	const n = 46342 // smallest n with n·(n−1) > 2³¹−1
	arcs := int64(n) * int64(n-1)
	if arcs <= math.MaxInt32 {
		t.Fatalf("arc count %d does not cross the int32 boundary", arcs)
	}

	// Direct CSR construction of K_n (the Builder's per-edge
	// membership sets would cost another ~2 GB and hours of inserts):
	// identity IDs, ascending rows, identity ports.
	ids := make([]int64, n)
	offsets := make([]int64, n+1)
	for v := 0; v < n; v++ {
		ids[v] = int64(v)
		offsets[v] = int64(v) * (n - 1)
	}
	offsets[n] = arcs
	sorted := make([]Vertex, arcs)
	ports := make([]int32, arcs)
	for v := 0; v < n; v++ {
		row := sorted[offsets[v]:offsets[v+1]]
		prow := ports[offsets[v]:offsets[v+1]]
		i := 0
		for w := 0; w < n; w++ {
			if w != v {
				row[i] = Vertex(w)
				prow[i] = int32(i)
				i++
			}
		}
	}
	g, err := fromCSRSorted(ids, offsets, sorted, ports, n)
	ids, offsets, sorted, ports = nil, nil, nil, nil
	if err != nil {
		t.Fatalf("building K_%d: %v", n, err)
	}
	if got := 2 * int64(g.M()); got != arcs {
		t.Fatalf("built %d arcs, want %d", got, arcs)
	}
	if g.MinDegree() != n-1 || g.MaxDegree() != n-1 {
		t.Fatalf("degrees [%d,%d], want %d", g.MinDegree(), g.MaxDegree(), n-1)
	}
	t.Logf("built K_%d: %d arcs", n, arcs)
	digest := topoHash(g)

	// The narrow formats must refuse it loudly, naming their cap.
	if _, err := g.WriteTo(io.Discard); err == nil || !strings.Contains(err.Error(), "capacity") {
		t.Fatalf("v1 text writer: got %v, want a capacity error", err)
	}
	if _, err := g.WriteBinary(io.Discard); err == nil || !strings.Contains(err.Error(), "capacity") {
		t.Fatalf("v2 binary writer: got %v, want a capacity error", err)
	}

	path := filepath.Join(t.TempDir(), "wide.fnrb3")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	wrote, err := g.WriteBinaryV3(bw)
	if err == nil {
		err = bw.Flush()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatalf("v3 write: %v", err)
	}
	t.Logf("wrote %d v3 bytes", wrote)

	g = nil
	runtime.GC()

	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Read(rf)
	rf.Close()
	if err != nil {
		t.Fatalf("v3 streaming read: %v", err)
	}
	if got := 2 * int64(h.M()); got != arcs {
		t.Fatalf("decoded %d arcs, want %d", got, arcs)
	}
	if got := topoHash(h); got != digest {
		t.Fatalf("round trip changed the topology: digest %#x, want %#x", got, digest)
	}
}
