package graph

import (
	"math/rand/v2"
	"testing"
)

// Generation benchmarks: the CI workflow runs these once per push
// (-bench=Generate -benchtime=1x) as a large-n smoke, so every entry
// must finish in seconds, not minutes.

func benchPlanted(b *testing.B, n, d int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewPCG(7, 0xbe7c4))
		g, err := PlantedMinDegree(n, d, rng)
		if err != nil {
			b.Fatal(err)
		}
		if g.MinDegree() < d {
			b.Fatalf("δ=%d < %d", g.MinDegree(), d)
		}
	}
}

func BenchmarkGeneratePlanted1024x181(b *testing.B)  { benchPlanted(b, 1024, 181) }
func BenchmarkGeneratePlanted4096x64(b *testing.B)   { benchPlanted(b, 4096, 64) }
func BenchmarkGeneratePlanted16384x128(b *testing.B) { benchPlanted(b, 16384, 128) }

// BenchmarkGeneratePlanted65536x256 is the large scaling preset's
// graph — the acceptance datapoint for CSR-era generation speed.
func BenchmarkGeneratePlanted65536x256(b *testing.B) { benchPlanted(b, 65536, 256) }

func BenchmarkGenerateGNPGeometric65536(b *testing.B) {
	b.ReportAllocs()
	p := 256.0 / 65536
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewPCG(7, 7))
		if _, err := GNP(65536, p, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateGNPExact1024(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewPCG(7, 7))
		if _, err := GNPExact(1024, 0.18, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateRandomRegular2048x64(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewPCG(7, 7))
		if _, err := RandomRegular(2048, 64, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerateRebuildCSR isolates the Build step (CSR assembly +
// derived arrays) from edge generation.
func BenchmarkGenerateRebuildCSR(b *testing.B) {
	rng := rand.New(rand.NewPCG(7, 0xbe7c4))
	g, err := PlantedMinDegree(4096, 64, rng)
	if err != nil {
		b.Fatal(err)
	}
	builder := Rebuild(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := builder.Build(); err != nil {
			b.Fatal(err)
		}
	}
}
