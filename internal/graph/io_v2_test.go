package graph

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math"
	"math/rand/v2"
	"testing"
)

// binaryRoundTrip encodes g in v2 binary and decodes it back.
func binaryRoundTrip(t *testing.T, g *Graph) *Graph {
	t.Helper()
	var buf bytes.Buffer
	wrote, err := g.WriteBinary(&buf)
	if err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	if wrote != int64(buf.Len()) {
		t.Fatalf("WriteBinary reported %d bytes, wrote %d", wrote, buf.Len())
	}
	h, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read(binary): %v", err)
	}
	return h
}

// TestBinaryRoundTripAllFamilies pins encode→decode as the identity —
// including the decoder's sort-free derived-index reconstruction — on
// every generator family and labeling variant.
func TestBinaryRoundTripAllFamilies(t *testing.T) {
	for name, g := range allFamilies(t) {
		t.Run(name, func(t *testing.T) {
			h := binaryRoundTrip(t, g)
			if !g.Equal(h) || !h.Equal(g) {
				t.Fatal("binary round trip changed the graph")
			}
			if err := h.Validate(); err != nil {
				t.Fatalf("decoded graph invalid: %v", err)
			}
			// The decoded graph's derived indexes come from the
			// presorted fast path: spot-check them against the
			// original's query results.
			for v := Vertex(0); int(v) < g.N(); v++ {
				for p, id := range g.NeighborIDList(v) {
					if got := h.PortOfID(v, id); got != g.PortOfID(v, id) {
						t.Fatalf("PortOfID(%d, %d) = %d, want %d", v, id, got, g.PortOfID(v, id))
					}
					if h.Neighbor(v, p) != g.Neighbor(v, p) {
						t.Fatalf("Neighbor(%d, %d) differs", v, p)
					}
				}
				if hv, ok := h.VertexByID(g.ID(v)); !ok || hv != v {
					t.Fatalf("VertexByID(%d) = %d, %v", g.ID(v), hv, ok)
				}
			}
		})
	}
}

// TestReadAutoDetect feeds both serializations of one graph through
// the same Read entry point.
func TestReadAutoDetect(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	g, err := PlantedMinDegree(60, 7, rng)
	if err != nil {
		t.Fatal(err)
	}
	var text, bin bytes.Buffer
	if _, err := g.WriteTo(&text); err != nil {
		t.Fatal(err)
	}
	if _, err := g.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= text.Len() {
		t.Errorf("binary (%d bytes) not smaller than text (%d bytes)", bin.Len(), text.Len())
	}
	ht, err := Read(&text)
	if err != nil {
		t.Fatalf("Read(text): %v", err)
	}
	hb, err := Read(&bin)
	if err != nil {
		t.Fatalf("Read(binary): %v", err)
	}
	if !g.Equal(ht) || !g.Equal(hb) {
		t.Fatal("auto-detected round trips not Equal")
	}
}

// TestBinaryRejectsCorrupt drives Read over truncations and
// corruptions of a valid v2 payload: every one must error (the CRC or
// a structural check), never panic, and never return a graph.
func TestBinaryRejectsCorrupt(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 9))
	g, err := PlantedMinDegree(50, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	// Truncations at every interesting boundary.
	for _, cut := range []int{1, 4, len(binMagic), len(binMagic) + 1, len(binMagic) + 3, len(valid) / 2, len(valid) - 5, len(valid) - 1} {
		if _, err := Read(bytes.NewReader(valid[:cut])); err == nil {
			t.Errorf("Read accepted a %d-byte truncation of a %d-byte payload", cut, len(valid))
		}
	}
	// Single corrupted byte in the header, body, and trailer.
	for _, pos := range []int{len(binMagic), len(binMagic) + 2, len(valid) / 2, len(valid) - 2} {
		c := append([]byte(nil), valid...)
		c[pos] ^= 0x40
		if _, err := Read(bytes.NewReader(c)); err == nil {
			t.Errorf("Read accepted a payload corrupted at byte %d", pos)
		}
	}
	// A future format version must be refused explicitly.
	c := append([]byte(nil), valid...)
	c[len(binMagic)-1] = 3
	if _, err := Read(bytes.NewReader(c)); err == nil {
		t.Error("Read accepted an unknown binary format version")
	}
}

// craftBinary assembles a v2 payload (with a valid trailer) from raw
// header values and varint sections — for feeding the reader inputs no
// writer produces.
func craftBinary(n, nPrime, arcs uint64, idDeltas []int64, degrees []uint64, rows []uint64) []byte {
	var buf bytes.Buffer
	buf.Write(binMagic[:])
	var tmp [binary.MaxVarintLen64]byte
	putU := func(x uint64) { buf.Write(tmp[:binary.PutUvarint(tmp[:], x)]) }
	putI := func(x int64) { buf.Write(tmp[:binary.PutVarint(tmp[:], x)]) }
	putU(n)
	putU(nPrime)
	putU(arcs)
	for _, d := range idDeltas {
		putI(d)
	}
	for _, d := range degrees {
		putU(d)
	}
	for _, x := range rows {
		putU(x)
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], crc32.Checksum(buf.Bytes(), crcTable))
	buf.Write(trailer[:])
	return buf.Bytes()
}

// TestBinaryRejectsWrappingGap is the regression for a crafted
// neighbor gap ≥ 2^63: the int64 delta arithmetic used to wrap
// negative, slip past the upper-bound check, and panic indexing
// ids[-1]. Any gap ≥ n must be rejected before the arithmetic.
func TestBinaryRejectsWrappingGap(t *testing.T) {
	// n=2, non-identity ids [1, 0], one edge; row 0's first gap wraps.
	evil := craftBinary(2, 2, 2,
		[]int64{1, -1},
		[]uint64{1, 1},
		[]uint64{math.MaxUint64, 0 /* row 0: gap, port */, 0, 0 /* row 1 */})
	if _, err := Read(bytes.NewReader(evil)); err == nil {
		t.Fatal("Read accepted a wrapping neighbor gap")
	}
	// A gap that wraps back into range must be rejected too, not
	// accepted as a bogus ascending run.
	evil = craftBinary(2, 2, 2,
		[]int64{1, -1},
		[]uint64{1, 1},
		[]uint64{1<<64 - 1<<32, 0, 0, 0})
	if _, err := Read(bytes.NewReader(evil)); err == nil {
		t.Fatal("Read accepted an in-range-after-wrap neighbor gap")
	}
	// Degree varints near 2^64 used to wrap the degree-sum accumulator
	// past both its guards, planting negative CSR offsets (and an
	// index-out-of-range panic) — the sum must be rejected before it
	// wraps.
	evil = craftBinary(3, 3, 2,
		[]int64{0, 1, 1},
		[]uint64{math.MaxUint64, 1, 2},
		[]uint64{1, 0, 0, 0})
	if _, err := Read(bytes.NewReader(evil)); err == nil {
		t.Fatal("Read accepted a wrapping degree sum")
	}
	evil = craftBinary(4, 4, 2,
		[]int64{0, 1, 1, 1},
		[]uint64{1, math.MaxUint64, 1, 1},
		[]uint64{1, 0, 0, 0})
	if _, err := Read(bytes.NewReader(evil)); err == nil {
		t.Fatal("Read accepted a wrapping degree sum (non-monotone offsets)")
	}
	// Unconsumed bytes between the arc sections and the CRC trailer —
	// a payload whose declared counts don't account for all its data —
	// must be rejected even though the checksum holds.
	evil = craftBinary(2, 2, 2,
		[]int64{1, -1},
		[]uint64{1, 1},
		[]uint64{1, 0, 1, 0 /* valid graph */, 9, 9 /* trailing junk */})
	if _, err := Read(bytes.NewReader(evil)); err == nil {
		t.Fatal("Read accepted trailing garbage before the trailer")
	}
}

// FuzzRead holds the parser panic-free on arbitrary input: any byte
// string must either fail cleanly or decode to a graph that validates.
func FuzzRead(f *testing.F) {
	rng := rand.New(rand.NewPCG(3, 4))
	g, err := PlantedMinDegree(30, 4, rng)
	if err != nil {
		f.Fatal(err)
	}
	var text, bin bytes.Buffer
	g.WriteTo(&text)
	g.WriteBinary(&bin)
	f.Add(text.Bytes())
	f.Add(bin.Bytes())
	f.Add(bin.Bytes()[:20])
	f.Add(append(bin.Bytes()[:12], 0xff, 0xff, 0xff, 0xff, 0xff))
	f.Add([]byte("fnr-graph v1\nn=2 nprime=2\nids 0 1\nadj 0 1\nadj 1 0\nend\n"))
	f.Add([]byte("fnrgbin\x02"))
	f.Add([]byte{})
	f.Add(craftBinary(2, 2, 2, []int64{1, -1}, []uint64{1, 1},
		[]uint64{math.MaxUint64, 0, 0, 0}))
	f.Add(craftBinary(3, 3, 2, []int64{0, 1, 1},
		[]uint64{math.MaxUint64, 1, 2}, []uint64{1, 0, 0, 0}))
	// v3 seeds: a valid single-frame stream, the same graph shredded
	// into tiny frames, truncations (mid-frame and inside the stream
	// trailer), a corrupted frame payload, a bare/future-version
	// magic, a frame length past the reader's cap, and crafted
	// headers whose declared counts disagree with the payload.
	var v3, v3tiny bytes.Buffer
	g.WriteBinaryV3(&v3)
	g.writeBinaryV3(&v3tiny, 16)
	f.Add(v3.Bytes())
	f.Add(v3tiny.Bytes())
	f.Add(v3.Bytes()[:12])
	f.Add(v3.Bytes()[:v3.Len()-3])
	flipped := append([]byte(nil), v3tiny.Bytes()...)
	flipped[len(binMagicV3)+6] ^= 0x20
	f.Add(flipped)
	f.Add([]byte("fnrgbin\x03"))
	f.Add([]byte("fnrgbin\x04"))
	var over [binary.MaxVarintLen64]byte
	f.Add(append([]byte("fnrgbin\x03"), over[:binary.PutUvarint(over[:], v3MaxChunkLen+1)]...))
	f.Add(craftBinaryV3(2, 2, 2, []int64{1, -1}, []uint64{1, 1},
		[]uint64{math.MaxUint64, 0, 0, 0}, 16))
	f.Add(craftBinaryV3(4, 4, 1<<35, []int64{0, 1, 1, 1}, nil, nil, 1<<12))
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := Read(bytes.NewReader(data))
		if err == nil {
			if verr := h.Validate(); verr != nil {
				t.Fatalf("Read accepted an invalid graph: %v", verr)
			}
		}
	})
}

// TestReadBigAdjacencyRow is the regression for the 64 KB token cap a
// default bufio.Scanner imposes: a single adjacency row with degree
// ≫ 8192 spans far more than one buffer and must still parse in both
// formats.
func TestReadBigAdjacencyRow(t *testing.T) {
	const n = 20001 // center degree 20000, text row ≈ 120 KB
	g, err := Star(n)
	if err != nil {
		t.Fatal(err)
	}
	if g.MaxDegree() <= 8192 {
		t.Fatalf("regression needs degree ≫ 8192, got %d", g.MaxDegree())
	}
	var text bytes.Buffer
	if _, err := g.WriteTo(&text); err != nil {
		t.Fatal(err)
	}
	h, err := Read(&text)
	if err != nil {
		t.Fatalf("Read(text) with a %d-degree row: %v", g.MaxDegree(), err)
	}
	if !g.Equal(h) {
		t.Fatal("big-row text round trip changed the graph")
	}
	if hb := binaryRoundTrip(t, g); !g.Equal(hb) {
		t.Fatal("big-row binary round trip changed the graph")
	}
}

// TestArcCountCapsByFormat pins where the seed-era 2^31 arc cap now
// lives: not in the CSR build path (offsets are int64; see
// TestWideOffsetsBoundaryRoundTrip for the gated proof at the real
// boundary), but in the v1/v2 serialization formats, whose headers and
// writers must reject wide graphs loudly before allocating anything
// proportional to the declared width.
func TestArcCountCapsByFormat(t *testing.T) {
	// A v2 header declaring 2^31 arcs is refused at the capacity check,
	// not with a truncation error after attempted allocation.
	wide := craftBinary(4, 4, 1<<31, []int64{0, 1, 1, 1}, nil, nil)
	_, err := Read(bytes.NewReader(wide))
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("v2 format capacity")) {
		t.Fatalf("v2 reader: got %v, want the format-capacity rejection", err)
	}
	// The same declaration under the v3 magic sails past the capacity
	// checks: the framed stream then fails for truncation (no frames),
	// never for arc-count width.
	wideV3 := craftBinaryV3(4, 4, 1<<31, []int64{0, 1, 1, 1}, nil, nil, 1<<16)
	_, err = Read(bytes.NewReader(wideV3))
	if err == nil {
		t.Fatal("v3 reader accepted a truncated wide payload")
	}
	if bytes.Contains([]byte(err.Error()), []byte("capacity")) {
		t.Fatalf("v3 reader rejected a 2^31 arc count for width: %v", err)
	}
}

// TestVertexByIDAllocs gates VertexByID at zero allocations in both
// index forms (dense inverse under tight naming, sorted pairs under
// sparse naming).
func TestVertexByIDAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	rng := rand.New(rand.NewPCG(11, 12))
	tight, err := PlantedMinDegree(64, 7, rng)
	if err != nil {
		t.Fatal(err)
	}
	b := Rebuild(tight)
	if err := b.SparseIDs(1000, rng); err != nil {
		t.Fatal(err)
	}
	sparse, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if tight.idToV == nil {
		t.Fatal("tight graph did not get the dense inverse index")
	}
	if sparse.idKeys == nil {
		t.Fatal("sparse graph did not get the sorted-pair index")
	}
	for _, g := range []*Graph{tight, sparse} {
		id := g.ID(3)
		if allocs := testing.AllocsPerRun(100, func() {
			if _, ok := g.VertexByID(id); !ok {
				t.Fatal("lookup failed")
			}
			if _, ok := g.VertexByID(-7); ok {
				t.Fatal("negative ID resolved")
			}
		}); allocs != 0 {
			t.Errorf("VertexByID allocates %.1f times per call, want 0", allocs)
		}
	}
}

// TestReadAllocsPerRow gates the parsers' per-row allocation budget:
// the old strings.Fields parser allocated multiple times per row; the
// rewrite must stay below one allocation per row end to end (flat
// arrays plus O(1) scratch).
func TestReadAllocsPerRow(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	rng := rand.New(rand.NewPCG(13, 14))
	g, err := PlantedMinDegree(2048, 24, rng)
	if err != nil {
		t.Fatal(err)
	}
	var text, bin bytes.Buffer
	if _, err := g.WriteTo(&text); err != nil {
		t.Fatal(err)
	}
	if _, err := g.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string][]byte{"text": text.Bytes(), "binary": bin.Bytes()} {
		allocs := testing.AllocsPerRun(3, func() {
			if _, err := Read(bytes.NewReader(data)); err != nil {
				t.Fatal(err)
			}
		})
		if perRow := allocs / float64(g.N()); perRow > 1 {
			t.Errorf("%s Read: %.0f allocations = %.2f per row, want < 1", name, allocs, perRow)
		}
	}
}
