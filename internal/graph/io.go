package graph

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"io/fs"
	"math"
	"slices"
	"strconv"
	"strings"
)

// Three serialization formats share one reader:
//
// The v1 text format preserves IDs, the ID-space bound, and the exact
// port order of every adjacency list — human-inspectable, stable since
// the seed, and still what golden files use:
//
//	fnr-graph v1
//	n=<n> nprime=<n'>
//	ids <id0> <id1> ... <id_{n-1}>
//	adj <v> <w0> <w1> ...        (one line per vertex, ports in order)
//	end
//
// Vertices in adj lines are internal indices, not IDs.
//
// The v2 binary format carries the same information as varint-encoded
// CSR arrays, roughly half the text size and an order of magnitude
// faster to parse at n=65536 (see README.md, "Graph serialization").
// Adjacency is stored per vertex as the ASCENDING neighbor list
// (delta-coded, so the gaps are small and the reader rebuilds the
// graph's sorted index without sorting anything) plus the permutation
// recovering the port order:
//
//	magic   8 bytes: "fnrgbin" + version byte 0x02
//	header  uvarint n, uvarint n', uvarint arcs (= 2m)
//	ids     n zigzag varints, delta-coded (ids[v] − ids[v−1])
//	degrees n uvarints (the CSR offset deltas)
//	arcs    per vertex: deg(v) uvarint gaps of the ascending neighbor
//	        list (first gap from 0, later gaps ≥ 1), then deg(v)
//	        uvarint ports — ports[i] is the local port of v leading to
//	        the i-th ascending neighbor
//	trailer crc32 (Castagnoli, little-endian) of magic through arcs
//
// The v3 chunked binary format (see its own section below) carries the
// same logical payload as v2 with 64-bit arc counts, framed so the
// decoder streams with O(chunk) transient memory — the only format for
// graphs past 2^31 arcs.
//
// Read auto-detects the format by the leading bytes; WriteTo emits v1
// text, WriteBinary emits v2, WriteBinaryV3 emits v3.

const formatHeader = "fnr-graph v1"

// binMagic opens the v2 binary format: seven tag bytes no valid v1
// text stream can start with, then the format version (v3 bumps the
// final byte; see binMagicV3).
var binMagic = [8]byte{'f', 'n', 'r', 'g', 'b', 'i', 'n', 2}

// crcTable is the Castagnoli polynomial table shared by the v2 writer
// and reader.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// countWriter counts the bytes that actually reach the underlying
// writer.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// WriteTo serializes g in the fnr-graph v1 text format. Numbers are
// appended with strconv into a buffered writer — no per-field fmt
// call — so serializing multi-million-arc graphs stays cheap.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	if len(g.nbrs) > math.MaxInt32 {
		return 0, fmt.Errorf("graph: arc count %d exceeds v1 text capacity (max %d arcs; use WriteBinaryV3)", len(g.nbrs), math.MaxInt32)
	}
	cw := &countWriter{w: w}
	bw := bufio.NewWriterSize(cw, 1<<16)
	scratch := make([]byte, 0, 24)
	writeInt := func(prefix byte, x int64) error {
		scratch = append(scratch[:0], prefix)
		scratch = strconv.AppendInt(scratch, x, 10)
		_, err := bw.Write(scratch)
		return err
	}
	if _, err := fmt.Fprintf(bw, "%s\nn=%d nprime=%d\nids", formatHeader, g.N(), g.nPrime); err != nil {
		return cw.n, err
	}
	for _, id := range g.ids {
		if err := writeInt(' ', id); err != nil {
			return cw.n, err
		}
	}
	if err := bw.WriteByte('\n'); err != nil {
		return cw.n, err
	}
	for v := Vertex(0); int(v) < g.N(); v++ {
		if _, err := bw.WriteString("adj"); err != nil {
			return cw.n, err
		}
		if err := writeInt(' ', int64(v)); err != nil {
			return cw.n, err
		}
		for _, u := range g.Adj(v) {
			if err := writeInt(' ', int64(u)); err != nil {
				return cw.n, err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return cw.n, err
		}
	}
	if _, err := bw.WriteString("end\n"); err != nil {
		return cw.n, err
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// WriteBinary serializes g in the fnr binary v2 format. At large n it
// is several times smaller than the text format and an order of
// magnitude faster to read back.
func (g *Graph) WriteBinary(w io.Writer) (int64, error) {
	if len(g.nbrs) > math.MaxInt32 {
		return 0, fmt.Errorf("graph: arc count %d exceeds v2 format capacity (max %d arcs; use WriteBinaryV3)", len(g.nbrs), math.MaxInt32)
	}
	cw := &countWriter{w: w}
	crc := crc32.New(crcTable)
	bw := bufio.NewWriterSize(io.MultiWriter(cw, crc), 1<<16)
	var vbuf [binary.MaxVarintLen64]byte
	var werr error
	putU := func(x uint64) {
		if werr == nil {
			k := binary.PutUvarint(vbuf[:], x)
			_, werr = bw.Write(vbuf[:k])
		}
	}
	putI := func(x int64) {
		if werr == nil {
			k := binary.PutVarint(vbuf[:], x)
			_, werr = bw.Write(vbuf[:k])
		}
	}
	if _, err := bw.Write(binMagic[:]); err != nil {
		return cw.n, err
	}
	g.emitBinarySections(putU, putI)
	if werr != nil {
		return cw.n, werr
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	// The trailer checksums everything before it, so it bypasses the
	// MultiWriter and goes straight to the counted output.
	var tb [4]byte
	binary.LittleEndian.PutUint32(tb[:], crc.Sum32())
	if _, err := cw.Write(tb[:]); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// emitBinarySections writes the logical payload shared by the v2 and
// v3 binary formats through the given varint sinks: the header (n, n',
// arcs), the delta-coded ids, the degrees, then per vertex the
// ascending-neighbor gaps and the sorted→port permutation. The sinks
// own error handling (both writers use sticky-error closures).
func (g *Graph) emitBinarySections(putU func(uint64), putI func(int64)) {
	putU(uint64(g.N()))
	putU(uint64(g.nPrime))
	putU(uint64(len(g.nbrs)))
	prev := int64(0)
	for _, id := range g.ids {
		putI(id - prev)
		prev = id
	}
	for v := Vertex(0); int(v) < g.N(); v++ {
		putU(uint64(g.Degree(v)))
	}
	// ports[i] = the local port behind sorted-run entry i. Under
	// identity naming that is exactly the graph's idPort run (ID order
	// equals index order); otherwise recover it with rank lookups in
	// the (cache-resident) sorted run.
	identity := g.identityIDs()
	var ports []int32
	if !identity {
		ports = make([]int32, g.maxDeg)
	}
	for v := Vertex(0); int(v) < g.N(); v++ {
		o, e := g.offsets[v], g.offsets[v+1]
		s := g.sortedAdj(v)
		prev = 0
		for _, u := range s {
			putU(uint64(int64(u) - prev))
			prev = int64(u)
		}
		run := g.idPort[o:e]
		if !identity {
			for p, w := range g.Adj(v) {
				if i, ok := slices.BinarySearch(s, w); ok {
					ports[i] = int32(p)
				}
			}
			run = ports[:len(s)]
		}
		for _, p := range run {
			putU(uint64(p))
		}
	}
}

// The v3 chunked binary format lifts the two v2 scale walls — the
// 2^31 arc cap (64-bit arc counts) and the io.ReadAll decode (whose
// transient memory is the whole file) — while carrying the exact same
// logical payload sections as v2. Everything after the magic is a
// sequence of self-checking frames, so the decoder's transient memory
// is O(chunk), not O(file):
//
//	magic   8 bytes: "fnrgbin" + version byte 0x03
//	frame   uvarint plen (1 ≤ plen ≤ 4 MiB), plen payload bytes,
//	        crc32c (Castagnoli, little-endian) of those payload bytes
//	...     (frames repeat; their concatenated payloads form the v2
//	        logical sections: header, ids, degrees, gaps+ports)
//	end     uvarint 0, then crc32c of every wire byte before it
//	        (magic, frame lengths, payloads, frame CRCs), so frame
//	        tampering, reordering, and truncation all surface
//
// The writer only flushes frames at varint boundaries, so a varint
// never straddles two frames; the decoder treats a straddled varint in
// crafted input as a hard error. Each frame's CRC is verified before
// any of its bytes are decoded, and the end-frame CRC is accumulated
// incrementally — nothing ever re-reads or retains more than one
// frame.

// binMagicV3 opens the v3 chunked binary format.
var binMagicV3 = [8]byte{'f', 'n', 'r', 'g', 'b', 'i', 'n', 3}

// v3ChunkLen is the writer's target frame payload size.
const v3ChunkLen = 1 << 20

// v3MaxChunkLen is the largest frame payload the decoder accepts — the
// bound on its transient buffer, and the "chunk budget" of the CI
// transient-memory gate (decode peak must stay under 2× this).
const v3MaxChunkLen = 1 << 22

// V3MaxChunkLen is the exported v3 frame-payload cap: the bound on a
// streaming decode's transient buffer. Tools gating decode memory
// (benchengine's huge preset) measure against multiples of it.
const V3MaxChunkLen = v3MaxChunkLen

// v3MaxArcs bounds the arc count a v3 header may declare: with n ≤
// maxReasonableN = 2^28 a simple graph has fewer than 2^56 arcs, so
// anything wider is corrupt, not big.
const v3MaxArcs = 1 << 56

// chunkedWriter frames varints into the v3 wire format: whole varints
// accumulate in buf, and whenever buf reaches the chunk target it is
// flushed as one length-prefixed, CRC-trailed frame — so frame
// boundaries always fall between varints.
type chunkedWriter struct {
	w     io.Writer
	crc   hash.Hash32 // whole-stream digest of every wire byte
	buf   []byte      // pending payload, whole varints only
	chunk int
	n     int64
	err   error
}

// write sends raw wire bytes: counted and folded into the stream
// digest.
func (cw *chunkedWriter) write(p []byte) {
	if cw.err != nil {
		return
	}
	cw.crc.Write(p)
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	cw.err = err
}

func (cw *chunkedWriter) putU(x uint64) {
	var vbuf [binary.MaxVarintLen64]byte
	cw.buf = append(cw.buf, vbuf[:binary.PutUvarint(vbuf[:], x)]...)
	if len(cw.buf) >= cw.chunk {
		cw.flushFrame()
	}
}

func (cw *chunkedWriter) putI(x int64) {
	var vbuf [binary.MaxVarintLen64]byte
	cw.buf = append(cw.buf, vbuf[:binary.PutVarint(vbuf[:], x)]...)
	if len(cw.buf) >= cw.chunk {
		cw.flushFrame()
	}
}

func (cw *chunkedWriter) flushFrame() {
	if cw.err != nil || len(cw.buf) == 0 {
		return
	}
	var hdr [binary.MaxVarintLen64]byte
	cw.write(hdr[:binary.PutUvarint(hdr[:], uint64(len(cw.buf)))])
	cw.write(cw.buf)
	var fcrc [4]byte
	binary.LittleEndian.PutUint32(fcrc[:], crc32.Checksum(cw.buf, crcTable))
	cw.write(fcrc[:])
	cw.buf = cw.buf[:0]
}

// finish flushes the last frame and writes the end marker plus the
// whole-stream CRC trailer (which checksums everything before itself,
// so it is not folded into the digest).
func (cw *chunkedWriter) finish() {
	cw.flushFrame()
	cw.write([]byte{0})
	if cw.err != nil {
		return
	}
	var tb [4]byte
	binary.LittleEndian.PutUint32(tb[:], cw.crc.Sum32())
	n, err := cw.w.Write(tb[:])
	cw.n += int64(n)
	cw.err = err
}

// WriteBinaryV3 serializes g in the fnr binary v3 chunked format — the
// same logical payload as v2 with 64-bit arc counts, framed so the
// reader's transient memory is one chunk instead of the whole file.
// It is the only format that can carry graphs past 2^31 arcs.
func (g *Graph) WriteBinaryV3(w io.Writer) (int64, error) {
	return g.writeBinaryV3(w, v3ChunkLen)
}

// writeBinaryV3 is WriteBinaryV3 with an explicit chunk target, so
// tests can force multi-frame streams at unit-test sizes.
func (g *Graph) writeBinaryV3(w io.Writer, chunk int) (int64, error) {
	if chunk < 1 {
		chunk = 1
	}
	if chunk > v3MaxChunkLen {
		return 0, fmt.Errorf("graph: v3 chunk %d exceeds the reader's frame cap %d", chunk, v3MaxChunkLen)
	}
	cw := &chunkedWriter{
		w:     w,
		crc:   crc32.New(crcTable),
		chunk: chunk,
		buf:   make([]byte, 0, chunk+binary.MaxVarintLen64),
	}
	cw.write(binMagicV3[:])
	g.emitBinarySections(cw.putU, cw.putI)
	cw.finish()
	return cw.n, cw.err
}

// frameReader streams the v3 wire format one frame at a time: buf
// holds the current frame's payload (verified against its CRC before
// any byte is decoded), the stream digest accumulates incrementally,
// and remain tracks the input bytes left when the source's size is
// known (-1 otherwise). err is sticky, so decode loops read varints
// unconditionally and check once per row.
type frameReader struct {
	r      io.Reader
	crc    hash.Hash32
	buf    []byte
	pos    int
	remain int64
	end    bool // end marker seen: no more payload frames
	err    error
}

// errSplitVarint rejects crafted streams whose frame boundary falls
// inside a varint — the writer never produces one.
var errSplitVarint = errors.New("varint split across a chunk boundary")

// readWire fills p with raw wire bytes, counting them against remain
// and folding them into the stream digest.
func (fr *frameReader) readWire(p []byte) error {
	if _, err := io.ReadFull(fr.r, p); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return err
	}
	fr.crc.Write(p)
	if fr.remain >= 0 {
		fr.remain -= int64(len(p))
	}
	return nil
}

// wireUvarint reads one uvarint byte-by-byte from the wire (frame
// lengths live outside any frame).
func (fr *frameReader) wireUvarint() (uint64, error) {
	var x uint64
	var s uint
	var one [1]byte
	for i := 0; i < binary.MaxVarintLen64; i++ {
		if err := fr.readWire(one[:]); err != nil {
			return 0, err
		}
		b := one[0]
		if b < 0x80 {
			if i == binary.MaxVarintLen64-1 && b > 1 {
				break
			}
			return x | uint64(b)<<s, nil
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
	return 0, errors.New("frame length varint overflows")
}

// nextFrame loads the next data frame into buf, or — on the end
// marker — verifies the whole-stream CRC and that the input ends.
func (fr *frameReader) nextFrame() error {
	plen, err := fr.wireUvarint()
	if err != nil {
		return err
	}
	if plen == 0 {
		// End marker: the trailer checksums every wire byte before it,
		// so snapshot the digest before consuming it.
		want := fr.crc.Sum32()
		var tb [4]byte
		if _, err := io.ReadFull(fr.r, tb[:]); err != nil {
			return io.ErrUnexpectedEOF
		}
		if binary.LittleEndian.Uint32(tb[:]) != want {
			return errors.New("stream checksum mismatch (corrupt or reordered frames)")
		}
		var one [1]byte
		if n, err := io.ReadFull(fr.r, one[:]); n != 0 || err != io.EOF {
			return errors.New("trailing bytes after the v3 stream trailer")
		}
		fr.end = true
		fr.buf, fr.pos = fr.buf[:0], 0
		return nil
	}
	if plen > v3MaxChunkLen {
		return fmt.Errorf("frame length %d exceeds the %d-byte cap", plen, v3MaxChunkLen)
	}
	if fr.remain >= 0 && int64(plen)+4 > fr.remain {
		return io.ErrUnexpectedEOF
	}
	if uint64(cap(fr.buf)) < plen {
		fr.buf = make([]byte, plen)
	}
	fr.buf = fr.buf[:plen]
	fr.pos = 0
	if err := fr.readWire(fr.buf); err != nil {
		return err
	}
	var fcrc [4]byte
	if err := fr.readWire(fcrc[:]); err != nil {
		return err
	}
	if crc32.Checksum(fr.buf, crcTable) != binary.LittleEndian.Uint32(fcrc[:]) {
		return errors.New("frame checksum mismatch (corrupt or truncated chunk)")
	}
	return nil
}

// u64 decodes the next payload uvarint, crossing frame boundaries.
func (fr *frameReader) u64() uint64 {
	if fr.err != nil {
		return 0
	}
	for fr.pos == len(fr.buf) {
		if fr.end {
			fr.err = io.ErrUnexpectedEOF
			return 0
		}
		if err := fr.nextFrame(); err != nil {
			fr.err = err
			return 0
		}
		if fr.end {
			fr.err = io.ErrUnexpectedEOF
			return 0
		}
	}
	x, k := binary.Uvarint(fr.buf[fr.pos:])
	if k <= 0 {
		if k == 0 {
			fr.err = errSplitVarint
		} else {
			fr.err = errors.New("payload varint overflows")
		}
		return 0
	}
	fr.pos += k
	return x
}

// i64 decodes the next payload zigzag varint.
func (fr *frameReader) i64() int64 {
	x := fr.u64()
	return int64(x>>1) ^ -int64(x&1)
}

// finish checks that the payload and the stream end together: no
// unconsumed payload bytes, no frames past the decoded sections, and a
// verified end marker.
func (fr *frameReader) finish() error {
	if fr.err != nil {
		return fr.err
	}
	if fr.pos != len(fr.buf) {
		return fmt.Errorf("%d unconsumed bytes after the arc sections", len(fr.buf)-fr.pos)
	}
	if !fr.end {
		if err := fr.nextFrame(); err != nil {
			return err
		}
		if !fr.end {
			return fmt.Errorf("%d unconsumed bytes after the arc sections", len(fr.buf))
		}
	}
	return nil
}

// readBinaryV3 decodes the v3 chunked format. sizeHint is the input's
// remaining byte count when known (seekable files, in-memory readers),
// -1 otherwise. Known sizes get the v2 check-before-allocate guard and
// exact preallocation — the streaming decode then allocates nothing
// transient beyond one frame buffer, which is what keeps transient
// memory O(chunk) instead of O(file). Unknown sizes fall back to
// append growth, which is bounded by a small multiple of the input
// actually consumed, so a forged header still cannot buy allocation it
// did not pay for in bytes.
func readBinaryV3(br *bufio.Reader, sizeHint int64) (*Graph, error) {
	fr := &frameReader{r: br, crc: crc32.New(crcTable), remain: sizeHint}
	var magic [8]byte
	if err := fr.readWire(magic[:]); err != nil {
		return nil, fmt.Errorf("graph: v3 magic: %w", err)
	}
	nU, nPrimeU, arcsU := fr.u64(), fr.u64(), fr.u64()
	if fr.err != nil {
		return nil, fmt.Errorf("graph: v3 header: %w", fr.err)
	}
	if nU > maxReasonableN {
		return nil, fmt.Errorf("graph: unreasonable n=%d", nU)
	}
	if nPrimeU > math.MaxInt64 {
		return nil, fmt.Errorf("graph: n'=%d overflows the ID space", nPrimeU)
	}
	if arcsU >= v3MaxArcs {
		return nil, fmt.Errorf("graph: unreasonable arc count %d", arcsU)
	}
	n, arcs := int(nU), int64(arcsU)
	sized := fr.remain >= 0
	// Every varint is at least one byte and framing only adds bytes, so
	// the input must still hold at least 2n+2arcs bytes across the
	// unread wire and the already-buffered frame remainder — reject
	// before allocating for a payload that cannot exist.
	avail := fr.remain + int64(len(fr.buf)-fr.pos)
	if sized && int64(2*n)+2*arcs > avail {
		return nil, fmt.Errorf("graph: v3 payload truncated (%d bytes left for n=%d, %d arcs)", avail, n, arcs)
	}
	idCap := n
	if !sized {
		idCap = min(n, 1<<16)
	}
	ids := make([]int64, 0, idCap)
	prev := int64(0)
	for i := 0; i < n; i++ {
		prev += fr.i64()
		if fr.err != nil {
			return nil, fmt.Errorf("graph: v3 ids: %w", fr.err)
		}
		ids = append(ids, prev)
	}
	// n ids decoded means ≥ n input bytes consumed, so the offsets
	// allocation below is amplification-bounded even unsized.
	offsets := make([]int64, n+1)
	total := uint64(0)
	for v := 0; v < n; v++ {
		deg := fr.u64()
		if fr.err != nil {
			return nil, fmt.Errorf("graph: v3 degrees: %w", fr.err)
		}
		// Compare against remaining capacity (not a sum) so a crafted
		// degree near 2^64 cannot wrap past the checks.
		if deg > arcsU-total {
			return nil, fmt.Errorf("graph: degree sum exceeds declared arc count %d", arcsU)
		}
		total += deg
		offsets[v+1] = int64(total)
	}
	if total != arcsU {
		return nil, fmt.Errorf("graph: degree sum %d does not match declared arc count %d", total, arcsU)
	}
	arcCap := arcs
	if !sized {
		arcCap = min(arcs, 1<<20)
	}
	sorted := make([]Vertex, 0, arcCap)
	ports := make([]int32, 0, arcCap)
	for v := 0; v < n; v++ {
		o, e := offsets[v], offsets[v+1]
		prev = -1
		for i := o; i < e; i++ {
			gap := fr.u64()
			if fr.err != nil {
				return nil, fmt.Errorf("graph: v3 arcs: %w", fr.err)
			}
			if gap >= uint64(n) {
				return nil, fmt.Errorf("graph: vertex %d has out-of-range neighbor gap %d", v, gap)
			}
			if i > o && gap == 0 {
				return nil, fmt.Errorf("graph: parallel edge %d-%d", v, prev)
			}
			next := prev + int64(gap)
			if i == o {
				next++ // first gap counts from 0, prev starts at -1
			}
			if next >= int64(n) {
				return nil, fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", v, next)
			}
			sorted = append(sorted, Vertex(next))
			prev = next
		}
		deg := uint64(e - o)
		for i := o; i < e; i++ {
			p := fr.u64()
			if fr.err != nil {
				return nil, fmt.Errorf("graph: v3 arcs: %w", fr.err)
			}
			if p >= deg {
				return nil, fmt.Errorf("graph: vertex %d has port %d outside [0,%d)", v, p, deg)
			}
			ports = append(ports, int32(p))
		}
	}
	if err := fr.finish(); err != nil {
		return nil, fmt.Errorf("graph: v3 payload: %w", err)
	}
	return fromCSRSorted(ids, offsets, sorted, ports, int64(nPrimeU))
}

// sizeHintOf reports how many bytes remain in r when r exposes its
// size — in-memory readers via Len (bytes.Reader, strings.Reader),
// regular files via Stat and the current offset — and -1 otherwise.
func sizeHintOf(r io.Reader) int64 {
	if l, ok := r.(interface{ Len() int }); ok {
		return int64(l.Len())
	}
	type statSeeker interface {
		io.Seeker
		Stat() (fs.FileInfo, error)
	}
	if f, ok := r.(statSeeker); ok {
		if fi, err := f.Stat(); err == nil && fi.Mode().IsRegular() {
			if pos, err := f.Seek(0, io.SeekCurrent); err == nil && pos >= 0 && pos <= fi.Size() {
				return fi.Size() - pos
			}
		}
	}
	return -1
}

// maxReasonableN bounds the vertex count either parser accepts before
// allocating anything proportional to it.
const maxReasonableN = 1 << 28

// Read parses a graph in any serialization format — v3 chunked
// binary, v2 binary, or v1 text, auto-detected from the leading
// bytes — and validates it. v3 decodes streaming with O(chunk)
// transient memory; the size hint for its check-before-allocate guard
// is sniffed from r before any buffering.
func Read(r io.Reader) (*Graph, error) {
	sizeHint := sizeHintOf(r)
	br := bufio.NewReaderSize(r, 1<<16)
	head, err := br.Peek(len(binMagic))
	if err == nil && bytes.Equal(head[:len(binMagic)-1], binMagic[:len(binMagic)-1]) {
		switch head[len(binMagic)-1] {
		case binMagic[len(binMagic)-1]:
			return readBinary(br)
		case binMagicV3[len(binMagicV3)-1]:
			return readBinaryV3(br, sizeHint)
		default:
			return nil, fmt.Errorf("graph: unsupported binary format version %d", head[len(binMagic)-1])
		}
	}
	return readText(br)
}

// readBinary decodes the v2 binary format. The payload is read whole
// and decoded in place: at n=65536, δ=256 that is a ~35 MB transient
// buffer against a ~1 GB decoded graph, and slice-indexed varint
// decoding is what makes binary reads ~30× faster than v1 text.
func readBinary(br *bufio.Reader) (*Graph, error) {
	data, err := io.ReadAll(br)
	if err != nil {
		return nil, fmt.Errorf("graph: reading binary payload: %w", err)
	}
	if len(data) < len(binMagic)+4 {
		return nil, errors.New("graph: binary payload truncated before header")
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if sum := crc32.Checksum(body, crcTable); sum != binary.LittleEndian.Uint32(trailer) {
		return nil, fmt.Errorf("graph: binary checksum mismatch (corrupt or truncated payload)")
	}
	p := body[len(binMagic):]
	var derr error
	nextU := func() uint64 {
		if derr != nil {
			return 0
		}
		x, k := binary.Uvarint(p)
		if k <= 0 {
			derr = io.ErrUnexpectedEOF
			return 0
		}
		p = p[k:]
		return x
	}
	nextI := func() int64 {
		if derr != nil {
			return 0
		}
		x, k := binary.Varint(p)
		if k <= 0 {
			derr = io.ErrUnexpectedEOF
			return 0
		}
		p = p[k:]
		return x
	}
	nU, nPrimeU, arcsU := nextU(), nextU(), nextU()
	if derr != nil {
		return nil, fmt.Errorf("graph: binary header: %w", derr)
	}
	if nU > maxReasonableN {
		return nil, fmt.Errorf("graph: unreasonable n=%d", nU)
	}
	if nPrimeU > math.MaxInt64 {
		return nil, fmt.Errorf("graph: n'=%d overflows the ID space", nPrimeU)
	}
	if arcsU > math.MaxInt32 {
		return nil, fmt.Errorf("graph: arc count %d exceeds v2 format capacity (max %d arcs; use the v3 format)", arcsU, math.MaxInt32)
	}
	n, arcs := int(nU), int(arcsU)
	// Every varint is at least one byte; reject counts the remaining
	// payload cannot possibly hold before allocating for them.
	if int64(2*n)+2*int64(arcs) > int64(len(p)) {
		return nil, fmt.Errorf("graph: binary payload truncated (%d bytes for n=%d, %d arcs)", len(p), n, arcs)
	}
	ids := make([]int64, n)
	prev := int64(0)
	for i := range ids {
		prev += nextI()
		ids[i] = prev
	}
	offsets := make([]int64, n+1)
	total := uint64(0)
	for v := 0; v < n; v++ {
		deg := nextU()
		// Compare against the remaining capacity rather than summing
		// first: a crafted degree near 2^64 would wrap the sum past
		// both this check and the final equality, planting negative
		// offsets. This form keeps total ≤ arcsU ≤ MaxInt32 invariant.
		if deg > arcsU-total {
			return nil, fmt.Errorf("graph: degree sum exceeds declared arc count %d", arcsU)
		}
		total += deg
		offsets[v+1] = int64(total)
	}
	if derr == nil && total != arcsU {
		return nil, fmt.Errorf("graph: degree sum %d does not match declared arc count %d", total, arcsU)
	}
	sorted := make([]Vertex, arcs)
	ports := make([]int32, arcs)
	for v := 0; v < n; v++ {
		o, e := offsets[v], offsets[v+1]
		prev = -1
		for i := o; i < e; i++ {
			gap := nextU()
			// Any valid gap is at most n-1; rejecting on the unsigned
			// value also makes the int64 arithmetic below wrap-free.
			if gap >= uint64(n) {
				return nil, fmt.Errorf("graph: vertex %d has out-of-range neighbor gap %d", v, gap)
			}
			if i > o && gap == 0 {
				return nil, fmt.Errorf("graph: parallel edge %d-%d", v, prev)
			}
			next := prev + int64(gap)
			if i == o {
				next++ // first gap counts from 0, prev starts at -1
			}
			if next >= int64(n) {
				return nil, fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", v, next)
			}
			sorted[i] = Vertex(next)
			prev = next
		}
		deg := uint64(e - o)
		for i := o; i < e; i++ {
			p := nextU()
			if p >= deg {
				return nil, fmt.Errorf("graph: vertex %d has port %d outside [0,%d)", v, p, deg)
			}
			ports[i] = int32(p)
		}
	}
	if derr != nil {
		return nil, fmt.Errorf("graph: binary payload: %w", derr)
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("graph: %d unconsumed bytes after the arc sections", len(p))
	}
	return fromCSRSorted(ids, offsets, sorted, ports, int64(nPrimeU))
}

// readText parses the v1 text format. Rows are handed out as byte
// slices viewing the bufio buffer (ReadSlice, no copy) and fields are
// scanned in place — no strings.Fields, no per-row slices — landing
// directly in the graph's flat CSR arrays, so parse cost is linear
// with O(1) allocations per row.
func readText(br *bufio.Reader) (*Graph, error) {
	lr := &lineReader{br: br}
	hdr, err := lr.line()
	if err != nil {
		return nil, fmt.Errorf("graph: reading header: %w", err)
	}
	if strings.TrimSpace(string(hdr)) != formatHeader {
		return nil, fmt.Errorf("graph: bad header %q", hdr)
	}
	sizes, err := lr.line()
	if err != nil {
		return nil, fmt.Errorf("graph: reading sizes: %w", err)
	}
	var n int
	var nPrime int64
	if _, err := fmt.Sscanf(strings.TrimSpace(string(sizes)), "n=%d nprime=%d", &n, &nPrime); err != nil {
		return nil, fmt.Errorf("graph: bad size line %q: %w", sizes, err)
	}
	if n < 0 || n > maxReasonableN {
		return nil, fmt.Errorf("graph: unreasonable n=%d", n)
	}
	row, err := lr.line()
	if err != nil {
		return nil, fmt.Errorf("graph: reading ids: %w", err)
	}
	fs := fieldScanner{line: row}
	if err := fs.expectWord("ids"); err != nil {
		return nil, fmt.Errorf("graph: bad ids line: %w", err)
	}
	// Grow ids as fields actually arrive (and allocate offsets only
	// after all n arrived): a forged header declaring a huge n must
	// not cost O(n) memory on a few bytes of input — the same
	// check-before-allocate discipline as the binary reader.
	ids := make([]int64, 0, min(n, 1<<16))
	for i := 0; i < n; i++ {
		id, err := fs.int64Field()
		if err != nil {
			return nil, fmt.Errorf("graph: bad ids line (field %d of %d): %w", i+1, n, err)
		}
		ids = append(ids, id)
	}
	if err := fs.expectEOL(); err != nil {
		return nil, fmt.Errorf("graph: bad ids line (more than n=%d fields): %w", n, err)
	}
	offsets := make([]int64, n+1)
	var nbrs []Vertex
	for i := 0; i < n; i++ {
		row, err := lr.line()
		if err != nil {
			return nil, fmt.Errorf("graph: reading adj row %d: %w", i, err)
		}
		fs := fieldScanner{line: row}
		if err := fs.expectWord("adj"); err != nil {
			return nil, fmt.Errorf("graph: bad adj row %d: %w", i, err)
		}
		v, err := fs.int64Field()
		if err != nil || v != int64(i) {
			return nil, fmt.Errorf("graph: adj row %d labeled %d (err %v)", i, v, err)
		}
		for {
			w, ok, err := fs.int64FieldOrEOL()
			if err != nil {
				return nil, fmt.Errorf("graph: bad neighbor in adj row %d: %w", i, err)
			}
			if !ok {
				break
			}
			if w < math.MinInt32 || w > math.MaxInt32 {
				return nil, fmt.Errorf("graph: neighbor %d of vertex %d overflows the vertex index space", w, i)
			}
			if int64(len(nbrs)) >= math.MaxInt32 {
				return nil, fmt.Errorf("graph: arc count exceeds v1 text capacity (max %d arcs; use the v3 binary format)", math.MaxInt32)
			}
			nbrs = append(nbrs, Vertex(w))
		}
		offsets[i+1] = int64(len(nbrs))
	}
	row, err = lr.line()
	if err != nil {
		return nil, fmt.Errorf("graph: reading trailer: %w", err)
	}
	if strings.TrimSpace(string(row)) != "end" {
		return nil, fmt.Errorf("graph: bad trailer %q", row)
	}
	return fromCSR(ids, offsets, nbrs, nPrime)
}

// lineReader hands out '\n'-terminated rows as byte slices without
// copying: views into the bufio buffer when the row fits (the common
// case), a reused spill buffer otherwise. Each returned slice is valid
// only until the next call. The final row may omit its terminator.
type lineReader struct {
	br  *bufio.Reader
	buf []byte // spill for rows longer than the bufio buffer
}

func (lr *lineReader) line() ([]byte, error) {
	s, err := lr.br.ReadSlice('\n')
	switch err {
	case nil:
		return s[:len(s)-1], nil
	case io.EOF:
		if len(s) == 0 {
			return nil, io.ErrUnexpectedEOF
		}
		return s, nil
	case bufio.ErrBufferFull:
		lr.buf = append(lr.buf[:0], s...)
		for {
			s, err = lr.br.ReadSlice('\n')
			lr.buf = append(lr.buf, s...)
			switch err {
			case nil:
				return lr.buf[:len(lr.buf)-1], nil
			case io.EOF:
				if len(lr.buf) == 0 {
					return nil, io.ErrUnexpectedEOF
				}
				return lr.buf, nil
			case bufio.ErrBufferFull:
				continue
			default:
				return nil, err
			}
		}
	default:
		return nil, err
	}
}

// fieldScanner walks the whitespace-separated fields of one row in
// place. Spaces, tabs and '\r' separate fields.
type fieldScanner struct {
	line []byte
	pos  int
}

// next returns the next field as a subslice of the row; ok=false means
// the row is exhausted.
func (fs *fieldScanner) next() ([]byte, bool) {
	i := fs.pos
	line := fs.line
	for i < len(line) && (line[i] == ' ' || line[i] == '\t' || line[i] == '\r') {
		i++
	}
	if i >= len(line) {
		fs.pos = i
		return nil, false
	}
	start := i
	for i < len(line) && line[i] != ' ' && line[i] != '\t' && line[i] != '\r' {
		i++
	}
	fs.pos = i
	return line[start:i], true
}

// expectWord consumes the next field and fails unless it equals word.
func (fs *fieldScanner) expectWord(word string) error {
	tok, ok := fs.next()
	if !ok {
		return fmt.Errorf("unexpected end of row (want %q)", word)
	}
	if string(tok) != word {
		return fmt.Errorf("unexpected field %q (want %q)", tok, word)
	}
	return nil
}

// expectEOL fails on any extra field left on the row.
func (fs *fieldScanner) expectEOL() error {
	if tok, ok := fs.next(); ok {
		return fmt.Errorf("unexpected extra field %q", tok)
	}
	return nil
}

// int64Field parses the next field as a decimal int64, failing at
// end-of-row.
func (fs *fieldScanner) int64Field() (int64, error) {
	x, ok, err := fs.int64FieldOrEOL()
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, errors.New("unexpected end of row (want an integer)")
	}
	return x, nil
}

// int64FieldOrEOL parses the next field as a decimal int64; ok=false
// means the row ended first.
func (fs *fieldScanner) int64FieldOrEOL() (int64, bool, error) {
	tok, ok := fs.next()
	if !ok {
		return 0, false, nil
	}
	x, err := parseInt64(tok)
	if err != nil {
		return 0, false, err
	}
	return x, true, nil
}

// parseInt64 is strconv.ParseInt for a byte slice, sparing the string
// conversion on the per-arc hot path.
func parseInt64(b []byte) (int64, error) {
	if len(b) == 0 {
		return 0, errors.New("empty integer field")
	}
	neg := false
	i := 0
	if b[0] == '+' || b[0] == '-' {
		neg = b[0] == '-'
		i = 1
		if len(b) == 1 {
			return 0, fmt.Errorf("bad integer %q", b)
		}
	}
	const cutoff = math.MaxInt64/10 + 1
	un := uint64(0)
	for ; i < len(b); i++ {
		c := b[i]
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("bad integer %q", b)
		}
		if un >= cutoff {
			return 0, fmt.Errorf("integer %q out of range", b)
		}
		un = un*10 + uint64(c-'0')
	}
	if neg {
		if un > uint64(math.MaxInt64)+1 {
			return 0, fmt.Errorf("integer %q out of range", b)
		}
		return -int64(un), nil
	}
	if un > math.MaxInt64 {
		return 0, fmt.Errorf("integer %q out of range", b)
	}
	return int64(un), nil
}
