package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text format preserves IDs, the ID-space bound, and the exact port
// order of every adjacency list:
//
//	fnr-graph v1
//	n=<n> nprime=<n'>
//	ids <id0> <id1> ... <id_{n-1}>
//	adj <v> <w0> <w1> ...        (one line per vertex, ports in order)
//	end
//
// Vertices in adj lines are internal indices, not IDs.

const formatHeader = "fnr-graph v1"

// countWriter counts the bytes that actually reach the underlying
// writer.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// WriteTo serializes g in the fnr-graph v1 text format. Numbers are
// appended with strconv into a buffered writer — no per-field fmt
// call — so serializing multi-million-arc graphs stays cheap.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	bw := bufio.NewWriterSize(cw, 1<<16)
	scratch := make([]byte, 0, 24)
	writeInt := func(prefix byte, x int64) error {
		scratch = append(scratch[:0], prefix)
		scratch = strconv.AppendInt(scratch, x, 10)
		_, err := bw.Write(scratch)
		return err
	}
	if _, err := fmt.Fprintf(bw, "%s\nn=%d nprime=%d\nids", formatHeader, g.N(), g.nPrime); err != nil {
		return cw.n, err
	}
	for _, id := range g.ids {
		if err := writeInt(' ', id); err != nil {
			return cw.n, err
		}
	}
	if err := bw.WriteByte('\n'); err != nil {
		return cw.n, err
	}
	for v := Vertex(0); int(v) < g.N(); v++ {
		if _, err := bw.WriteString("adj"); err != nil {
			return cw.n, err
		}
		if err := writeInt(' ', int64(v)); err != nil {
			return cw.n, err
		}
		for _, u := range g.Adj(v) {
			if err := writeInt(' ', int64(u)); err != nil {
				return cw.n, err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return cw.n, err
		}
	}
	if _, err := bw.WriteString("end\n"); err != nil {
		return cw.n, err
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// Read parses a graph in the fnr-graph v1 text format and validates it.
func Read(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<26)
	line := func() (string, error) {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return "", err
			}
			return "", io.ErrUnexpectedEOF
		}
		return sc.Text(), nil
	}
	hdr, err := line()
	if err != nil {
		return nil, fmt.Errorf("graph: reading header: %w", err)
	}
	if strings.TrimSpace(hdr) != formatHeader {
		return nil, fmt.Errorf("graph: bad header %q", hdr)
	}
	sizes, err := line()
	if err != nil {
		return nil, fmt.Errorf("graph: reading sizes: %w", err)
	}
	var n int
	var nPrime int64
	if _, err := fmt.Sscanf(strings.TrimSpace(sizes), "n=%d nprime=%d", &n, &nPrime); err != nil {
		return nil, fmt.Errorf("graph: bad size line %q: %w", sizes, err)
	}
	if n < 0 || n > 1<<28 {
		return nil, fmt.Errorf("graph: unreasonable n=%d", n)
	}
	idLine, err := line()
	if err != nil {
		return nil, fmt.Errorf("graph: reading ids: %w", err)
	}
	fields := strings.Fields(idLine)
	if len(fields) != n+1 || fields[0] != "ids" {
		return nil, fmt.Errorf("graph: bad ids line (%d fields for n=%d)", len(fields), n)
	}
	ids := make([]int64, n)
	for i := 0; i < n; i++ {
		ids[i], err = strconv.ParseInt(fields[i+1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: bad id %q: %w", fields[i+1], err)
		}
	}
	adj := make([][]Vertex, n)
	for i := 0; i < n; i++ {
		row, err := line()
		if err != nil {
			return nil, fmt.Errorf("graph: reading adj row %d: %w", i, err)
		}
		fields = strings.Fields(row)
		if len(fields) < 2 || fields[0] != "adj" {
			return nil, fmt.Errorf("graph: bad adj line %q", row)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil || v != i {
			return nil, fmt.Errorf("graph: adj row %d labeled %q", i, fields[1])
		}
		neigh := make([]Vertex, 0, len(fields)-2)
		for _, f := range fields[2:] {
			w, err := strconv.ParseInt(f, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("graph: bad neighbor %q: %w", f, err)
			}
			neigh = append(neigh, Vertex(w))
		}
		adj[i] = neigh
	}
	tail, err := line()
	if err != nil {
		return nil, fmt.Errorf("graph: reading trailer: %w", err)
	}
	if strings.TrimSpace(tail) != "end" {
		return nil, fmt.Errorf("graph: bad trailer %q", tail)
	}
	return FromAdjacency(ids, adj, nPrime)
}
