package graph

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"slices"
	"strconv"
	"strings"
)

// Two serialization formats share one reader:
//
// The v1 text format preserves IDs, the ID-space bound, and the exact
// port order of every adjacency list — human-inspectable, stable since
// the seed, and still what golden files use:
//
//	fnr-graph v1
//	n=<n> nprime=<n'>
//	ids <id0> <id1> ... <id_{n-1}>
//	adj <v> <w0> <w1> ...        (one line per vertex, ports in order)
//	end
//
// Vertices in adj lines are internal indices, not IDs.
//
// The v2 binary format carries the same information as varint-encoded
// CSR arrays, roughly half the text size and an order of magnitude
// faster to parse at n=65536 (see README.md, "Graph serialization").
// Adjacency is stored per vertex as the ASCENDING neighbor list
// (delta-coded, so the gaps are small and the reader rebuilds the
// graph's sorted index without sorting anything) plus the permutation
// recovering the port order:
//
//	magic   8 bytes: "fnrgbin" + version byte 0x02
//	header  uvarint n, uvarint n', uvarint arcs (= 2m)
//	ids     n zigzag varints, delta-coded (ids[v] − ids[v−1])
//	degrees n uvarints (the CSR offset deltas)
//	arcs    per vertex: deg(v) uvarint gaps of the ascending neighbor
//	        list (first gap from 0, later gaps ≥ 1), then deg(v)
//	        uvarint ports — ports[i] is the local port of v leading to
//	        the i-th ascending neighbor
//	trailer crc32 (Castagnoli, little-endian) of magic through arcs
//
// Read auto-detects the format by the leading bytes; WriteTo emits v1
// text, WriteBinary emits v2.

const formatHeader = "fnr-graph v1"

// binMagic opens the v2 binary format: seven tag bytes no valid v1
// text stream can start with, then the format version. A future v3
// bumps the final byte.
var binMagic = [8]byte{'f', 'n', 'r', 'g', 'b', 'i', 'n', 2}

// crcTable is the Castagnoli polynomial table shared by the v2 writer
// and reader.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// countWriter counts the bytes that actually reach the underlying
// writer.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// WriteTo serializes g in the fnr-graph v1 text format. Numbers are
// appended with strconv into a buffered writer — no per-field fmt
// call — so serializing multi-million-arc graphs stays cheap.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	bw := bufio.NewWriterSize(cw, 1<<16)
	scratch := make([]byte, 0, 24)
	writeInt := func(prefix byte, x int64) error {
		scratch = append(scratch[:0], prefix)
		scratch = strconv.AppendInt(scratch, x, 10)
		_, err := bw.Write(scratch)
		return err
	}
	if _, err := fmt.Fprintf(bw, "%s\nn=%d nprime=%d\nids", formatHeader, g.N(), g.nPrime); err != nil {
		return cw.n, err
	}
	for _, id := range g.ids {
		if err := writeInt(' ', id); err != nil {
			return cw.n, err
		}
	}
	if err := bw.WriteByte('\n'); err != nil {
		return cw.n, err
	}
	for v := Vertex(0); int(v) < g.N(); v++ {
		if _, err := bw.WriteString("adj"); err != nil {
			return cw.n, err
		}
		if err := writeInt(' ', int64(v)); err != nil {
			return cw.n, err
		}
		for _, u := range g.Adj(v) {
			if err := writeInt(' ', int64(u)); err != nil {
				return cw.n, err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return cw.n, err
		}
	}
	if _, err := bw.WriteString("end\n"); err != nil {
		return cw.n, err
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// WriteBinary serializes g in the fnr binary v2 format. At large n it
// is several times smaller than the text format and an order of
// magnitude faster to read back.
func (g *Graph) WriteBinary(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	crc := crc32.New(crcTable)
	bw := bufio.NewWriterSize(io.MultiWriter(cw, crc), 1<<16)
	var vbuf [binary.MaxVarintLen64]byte
	var werr error
	putU := func(x uint64) {
		if werr == nil {
			k := binary.PutUvarint(vbuf[:], x)
			_, werr = bw.Write(vbuf[:k])
		}
	}
	putI := func(x int64) {
		if werr == nil {
			k := binary.PutVarint(vbuf[:], x)
			_, werr = bw.Write(vbuf[:k])
		}
	}
	if _, err := bw.Write(binMagic[:]); err != nil {
		return cw.n, err
	}
	putU(uint64(g.N()))
	putU(uint64(g.nPrime))
	putU(uint64(len(g.nbrs)))
	prev := int64(0)
	for _, id := range g.ids {
		putI(id - prev)
		prev = id
	}
	for v := Vertex(0); int(v) < g.N(); v++ {
		putU(uint64(g.Degree(v)))
	}
	// ports[i] = the local port behind sorted-run entry i. Under
	// identity naming that is exactly the graph's idPort run (ID order
	// equals index order); otherwise recover it with rank lookups in
	// the (cache-resident) sorted run.
	identity := g.identityIDs()
	var ports []int32
	if !identity {
		ports = make([]int32, g.maxDeg)
	}
	for v := Vertex(0); int(v) < g.N(); v++ {
		o, e := g.offsets[v], g.offsets[v+1]
		s := g.sortedAdj(v)
		prev = 0
		for _, u := range s {
			putU(uint64(int64(u) - prev))
			prev = int64(u)
		}
		run := g.idPort[o:e]
		if !identity {
			for p, w := range g.Adj(v) {
				if i, ok := slices.BinarySearch(s, w); ok {
					ports[i] = int32(p)
				}
			}
			run = ports[:len(s)]
		}
		for _, p := range run {
			putU(uint64(p))
		}
	}
	if werr != nil {
		return cw.n, werr
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	// The trailer checksums everything before it, so it bypasses the
	// MultiWriter and goes straight to the counted output.
	var tb [4]byte
	binary.LittleEndian.PutUint32(tb[:], crc.Sum32())
	if _, err := cw.Write(tb[:]); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// maxReasonableN bounds the vertex count either parser accepts before
// allocating anything proportional to it.
const maxReasonableN = 1 << 28

// Read parses a graph in either serialization format — v2 binary or
// v1 text, auto-detected from the leading bytes — and validates it.
func Read(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head, err := br.Peek(len(binMagic))
	if err == nil && bytes.Equal(head, binMagic[:]) {
		return readBinary(br)
	}
	if err == nil && bytes.Equal(head[:len(binMagic)-1], binMagic[:len(binMagic)-1]) {
		return nil, fmt.Errorf("graph: unsupported binary format version %d", head[len(binMagic)-1])
	}
	return readText(br)
}

// readBinary decodes the v2 binary format. The payload is read whole
// and decoded in place: at n=65536, δ=256 that is a ~35 MB transient
// buffer against a ~1 GB decoded graph, and slice-indexed varint
// decoding is what makes binary reads ~30× faster than v1 text.
func readBinary(br *bufio.Reader) (*Graph, error) {
	data, err := io.ReadAll(br)
	if err != nil {
		return nil, fmt.Errorf("graph: reading binary payload: %w", err)
	}
	if len(data) < len(binMagic)+4 {
		return nil, errors.New("graph: binary payload truncated before header")
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if sum := crc32.Checksum(body, crcTable); sum != binary.LittleEndian.Uint32(trailer) {
		return nil, fmt.Errorf("graph: binary checksum mismatch (corrupt or truncated payload)")
	}
	p := body[len(binMagic):]
	var derr error
	nextU := func() uint64 {
		if derr != nil {
			return 0
		}
		x, k := binary.Uvarint(p)
		if k <= 0 {
			derr = io.ErrUnexpectedEOF
			return 0
		}
		p = p[k:]
		return x
	}
	nextI := func() int64 {
		if derr != nil {
			return 0
		}
		x, k := binary.Varint(p)
		if k <= 0 {
			derr = io.ErrUnexpectedEOF
			return 0
		}
		p = p[k:]
		return x
	}
	nU, nPrimeU, arcsU := nextU(), nextU(), nextU()
	if derr != nil {
		return nil, fmt.Errorf("graph: binary header: %w", derr)
	}
	if nU > maxReasonableN {
		return nil, fmt.Errorf("graph: unreasonable n=%d", nU)
	}
	if nPrimeU > math.MaxInt64 {
		return nil, fmt.Errorf("graph: n'=%d overflows the ID space", nPrimeU)
	}
	if arcsU > math.MaxInt32 {
		return nil, fmt.Errorf("graph: arc count %d exceeds CSR capacity (int32 offsets)", arcsU)
	}
	n, arcs := int(nU), int(arcsU)
	// Every varint is at least one byte; reject counts the remaining
	// payload cannot possibly hold before allocating for them.
	if int64(2*n)+2*int64(arcs) > int64(len(p)) {
		return nil, fmt.Errorf("graph: binary payload truncated (%d bytes for n=%d, %d arcs)", len(p), n, arcs)
	}
	ids := make([]int64, n)
	prev := int64(0)
	for i := range ids {
		prev += nextI()
		ids[i] = prev
	}
	offsets := make([]int32, n+1)
	total := uint64(0)
	for v := 0; v < n; v++ {
		deg := nextU()
		// Compare against the remaining capacity rather than summing
		// first: a crafted degree near 2^64 would wrap the sum past
		// both this check and the final equality, planting negative
		// offsets. This form keeps total ≤ arcsU ≤ MaxInt32 invariant.
		if deg > arcsU-total {
			return nil, fmt.Errorf("graph: degree sum exceeds declared arc count %d", arcsU)
		}
		total += deg
		offsets[v+1] = int32(total)
	}
	if derr == nil && total != arcsU {
		return nil, fmt.Errorf("graph: degree sum %d does not match declared arc count %d", total, arcsU)
	}
	sorted := make([]Vertex, arcs)
	ports := make([]int32, arcs)
	for v := 0; v < n; v++ {
		o, e := offsets[v], offsets[v+1]
		prev = -1
		for i := o; i < e; i++ {
			gap := nextU()
			// Any valid gap is at most n-1; rejecting on the unsigned
			// value also makes the int64 arithmetic below wrap-free.
			if gap >= uint64(n) {
				return nil, fmt.Errorf("graph: vertex %d has out-of-range neighbor gap %d", v, gap)
			}
			if i > o && gap == 0 {
				return nil, fmt.Errorf("graph: parallel edge %d-%d", v, prev)
			}
			next := prev + int64(gap)
			if i == o {
				next++ // first gap counts from 0, prev starts at -1
			}
			if next >= int64(n) {
				return nil, fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", v, next)
			}
			sorted[i] = Vertex(next)
			prev = next
		}
		deg := uint64(e - o)
		for i := o; i < e; i++ {
			p := nextU()
			if p >= deg {
				return nil, fmt.Errorf("graph: vertex %d has port %d outside [0,%d)", v, p, deg)
			}
			ports[i] = int32(p)
		}
	}
	if derr != nil {
		return nil, fmt.Errorf("graph: binary payload: %w", derr)
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("graph: %d unconsumed bytes after the arc sections", len(p))
	}
	return fromCSRSorted(ids, offsets, sorted, ports, int64(nPrimeU))
}

// readText parses the v1 text format. Rows are handed out as byte
// slices viewing the bufio buffer (ReadSlice, no copy) and fields are
// scanned in place — no strings.Fields, no per-row slices — landing
// directly in the graph's flat CSR arrays, so parse cost is linear
// with O(1) allocations per row.
func readText(br *bufio.Reader) (*Graph, error) {
	lr := &lineReader{br: br}
	hdr, err := lr.line()
	if err != nil {
		return nil, fmt.Errorf("graph: reading header: %w", err)
	}
	if strings.TrimSpace(string(hdr)) != formatHeader {
		return nil, fmt.Errorf("graph: bad header %q", hdr)
	}
	sizes, err := lr.line()
	if err != nil {
		return nil, fmt.Errorf("graph: reading sizes: %w", err)
	}
	var n int
	var nPrime int64
	if _, err := fmt.Sscanf(strings.TrimSpace(string(sizes)), "n=%d nprime=%d", &n, &nPrime); err != nil {
		return nil, fmt.Errorf("graph: bad size line %q: %w", sizes, err)
	}
	if n < 0 || n > maxReasonableN {
		return nil, fmt.Errorf("graph: unreasonable n=%d", n)
	}
	row, err := lr.line()
	if err != nil {
		return nil, fmt.Errorf("graph: reading ids: %w", err)
	}
	fs := fieldScanner{line: row}
	if err := fs.expectWord("ids"); err != nil {
		return nil, fmt.Errorf("graph: bad ids line: %w", err)
	}
	// Grow ids as fields actually arrive (and allocate offsets only
	// after all n arrived): a forged header declaring a huge n must
	// not cost O(n) memory on a few bytes of input — the same
	// check-before-allocate discipline as the binary reader.
	ids := make([]int64, 0, min(n, 1<<16))
	for i := 0; i < n; i++ {
		id, err := fs.int64Field()
		if err != nil {
			return nil, fmt.Errorf("graph: bad ids line (field %d of %d): %w", i+1, n, err)
		}
		ids = append(ids, id)
	}
	if err := fs.expectEOL(); err != nil {
		return nil, fmt.Errorf("graph: bad ids line (more than n=%d fields): %w", n, err)
	}
	offsets := make([]int32, n+1)
	var nbrs []Vertex
	for i := 0; i < n; i++ {
		row, err := lr.line()
		if err != nil {
			return nil, fmt.Errorf("graph: reading adj row %d: %w", i, err)
		}
		fs := fieldScanner{line: row}
		if err := fs.expectWord("adj"); err != nil {
			return nil, fmt.Errorf("graph: bad adj row %d: %w", i, err)
		}
		v, err := fs.int64Field()
		if err != nil || v != int64(i) {
			return nil, fmt.Errorf("graph: adj row %d labeled %d (err %v)", i, v, err)
		}
		for {
			w, ok, err := fs.int64FieldOrEOL()
			if err != nil {
				return nil, fmt.Errorf("graph: bad neighbor in adj row %d: %w", i, err)
			}
			if !ok {
				break
			}
			if w < math.MinInt32 || w > math.MaxInt32 {
				return nil, fmt.Errorf("graph: neighbor %d of vertex %d overflows the vertex index space", w, i)
			}
			if int64(len(nbrs)) >= math.MaxInt32 {
				return nil, fmt.Errorf("graph: arc count exceeds CSR capacity (int32 offsets)")
			}
			nbrs = append(nbrs, Vertex(w))
		}
		offsets[i+1] = int32(len(nbrs))
	}
	row, err = lr.line()
	if err != nil {
		return nil, fmt.Errorf("graph: reading trailer: %w", err)
	}
	if strings.TrimSpace(string(row)) != "end" {
		return nil, fmt.Errorf("graph: bad trailer %q", row)
	}
	return fromCSR(ids, offsets, nbrs, nPrime)
}

// lineReader hands out '\n'-terminated rows as byte slices without
// copying: views into the bufio buffer when the row fits (the common
// case), a reused spill buffer otherwise. Each returned slice is valid
// only until the next call. The final row may omit its terminator.
type lineReader struct {
	br  *bufio.Reader
	buf []byte // spill for rows longer than the bufio buffer
}

func (lr *lineReader) line() ([]byte, error) {
	s, err := lr.br.ReadSlice('\n')
	switch err {
	case nil:
		return s[:len(s)-1], nil
	case io.EOF:
		if len(s) == 0 {
			return nil, io.ErrUnexpectedEOF
		}
		return s, nil
	case bufio.ErrBufferFull:
		lr.buf = append(lr.buf[:0], s...)
		for {
			s, err = lr.br.ReadSlice('\n')
			lr.buf = append(lr.buf, s...)
			switch err {
			case nil:
				return lr.buf[:len(lr.buf)-1], nil
			case io.EOF:
				if len(lr.buf) == 0 {
					return nil, io.ErrUnexpectedEOF
				}
				return lr.buf, nil
			case bufio.ErrBufferFull:
				continue
			default:
				return nil, err
			}
		}
	default:
		return nil, err
	}
}

// fieldScanner walks the whitespace-separated fields of one row in
// place. Spaces, tabs and '\r' separate fields.
type fieldScanner struct {
	line []byte
	pos  int
}

// next returns the next field as a subslice of the row; ok=false means
// the row is exhausted.
func (fs *fieldScanner) next() ([]byte, bool) {
	i := fs.pos
	line := fs.line
	for i < len(line) && (line[i] == ' ' || line[i] == '\t' || line[i] == '\r') {
		i++
	}
	if i >= len(line) {
		fs.pos = i
		return nil, false
	}
	start := i
	for i < len(line) && line[i] != ' ' && line[i] != '\t' && line[i] != '\r' {
		i++
	}
	fs.pos = i
	return line[start:i], true
}

// expectWord consumes the next field and fails unless it equals word.
func (fs *fieldScanner) expectWord(word string) error {
	tok, ok := fs.next()
	if !ok {
		return fmt.Errorf("unexpected end of row (want %q)", word)
	}
	if string(tok) != word {
		return fmt.Errorf("unexpected field %q (want %q)", tok, word)
	}
	return nil
}

// expectEOL fails on any extra field left on the row.
func (fs *fieldScanner) expectEOL() error {
	if tok, ok := fs.next(); ok {
		return fmt.Errorf("unexpected extra field %q", tok)
	}
	return nil
}

// int64Field parses the next field as a decimal int64, failing at
// end-of-row.
func (fs *fieldScanner) int64Field() (int64, error) {
	x, ok, err := fs.int64FieldOrEOL()
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, errors.New("unexpected end of row (want an integer)")
	}
	return x, nil
}

// int64FieldOrEOL parses the next field as a decimal int64; ok=false
// means the row ended first.
func (fs *fieldScanner) int64FieldOrEOL() (int64, bool, error) {
	tok, ok := fs.next()
	if !ok {
		return 0, false, nil
	}
	x, err := parseInt64(tok)
	if err != nil {
		return 0, false, err
	}
	return x, true, nil
}

// parseInt64 is strconv.ParseInt for a byte slice, sparing the string
// conversion on the per-arc hot path.
func parseInt64(b []byte) (int64, error) {
	if len(b) == 0 {
		return 0, errors.New("empty integer field")
	}
	neg := false
	i := 0
	if b[0] == '+' || b[0] == '-' {
		neg = b[0] == '-'
		i = 1
		if len(b) == 1 {
			return 0, fmt.Errorf("bad integer %q", b)
		}
	}
	const cutoff = math.MaxInt64/10 + 1
	un := uint64(0)
	for ; i < len(b); i++ {
		c := b[i]
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("bad integer %q", b)
		}
		if un >= cutoff {
			return 0, fmt.Errorf("integer %q out of range", b)
		}
		un = un*10 + uint64(c-'0')
	}
	if neg {
		if un > uint64(math.MaxInt64)+1 {
			return 0, fmt.Errorf("integer %q out of range", b)
		}
		return -int64(un), nil
	}
	if un > math.MaxInt64 {
		return 0, fmt.Errorf("integer %q out of range", b)
	}
	return int64(un), nil
}
