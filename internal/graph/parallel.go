package graph

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelBlocks runs f over the vertex range [0, n) split into
// fixed-size blocks handed to GOMAXPROCS goroutines via an atomic
// cursor, so degree-skewed graphs still balance. Small ranges run
// inline — per-graph derived-array assembly must not pay goroutine
// overhead at the n of unit tests. f must be safe for concurrent
// calls on disjoint ranges.
func parallelBlocks(n int, f func(lo, hi Vertex)) {
	const blockSize = 1024
	workers := runtime.GOMAXPROCS(0)
	if blocks := (n + blockSize - 1) / blockSize; workers > blocks {
		workers = blocks
	}
	if workers <= 1 {
		f(0, Vertex(n))
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(blockSize)) - blockSize
				if lo >= n {
					return
				}
				f(Vertex(lo), Vertex(min(lo+blockSize, n)))
			}
		}()
	}
	wg.Wait()
}
