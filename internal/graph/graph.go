// Package graph provides the static graph substrate used by the
// rendezvous simulator: undirected simple graphs with unique vertex
// identifiers, explicit local port numberings, generators for the graph
// families used throughout the paper "Fast Neighborhood Rendezvous"
// (Eguchi, Kitamura, Izumi; ICDCS 2020), and text serialization.
//
// Vertices carry two independent namespaces:
//
//   - the internal index (type Vertex), a dense [0, N) range used by the
//     simulator and all algorithms' internal bookkeeping, and
//   - the identifier (int64 ID), the value visible to agents. IDs are
//     distinct integers in [0, n'), where n' is the ID-space bound the
//     paper calls n′ (agents know n′; "tight naming" means n' = O(n)).
//
// The local port numbering of a vertex v is the order of its adjacency
// list: port p of v leads to Adj(v)[p]. This is the paper's true port
// mapping P̂_v. Whether agents may translate ports to neighbor IDs (the
// accessible mapping P_v equals P̂_v, the KT1-style assumption) is a
// property of the simulation, not of the graph.
//
// # Memory layout
//
// A Graph stores its adjacency structure in compressed sparse row
// (CSR) form: a single offsets array of n+1 cursors into flat backing
// arrays holding all 2m arcs contiguously. Five parallel per-arc
// arrays share the one offsets table — the port-ordered neighbor
// indices (Adj), the per-vertex ascending neighbor indices (HasEdge),
// the port-ordered neighbor IDs (NeighborIDList), and the per-vertex
// ID-sorted (ID, port) index (PortOfID). Adj and NeighborIDList
// therefore return zero-copy subslices of contiguous memory, per-round
// accesses walk cache lines instead of chasing per-vertex slice
// headers, and a 65k-vertex δ=√n graph is a handful of flat arrays
// rather than hundreds of thousands of small allocations.
package graph

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"sort"
)

// Vertex is a dense internal vertex index in [0, N).
type Vertex int32

// NilVertex is the sentinel "no vertex" value.
const NilVertex Vertex = -1

// NoID is the sentinel identifier meaning "unassigned".
const NoID int64 = -1

// Graph is an immutable undirected simple graph with unique vertex IDs
// and a fixed port numbering. Construct one with a Builder or one of the
// generators; a zero Graph is empty and unusable.
type Graph struct {
	ids  []int64          // index -> identifier
	byID map[int64]Vertex // identifier -> index
	// CSR adjacency: vertex v's arcs live at positions
	// [offsets[v], offsets[v+1]) of every flat per-arc array below.
	offsets []int32
	nbrs    []Vertex // port order: nbrs[offsets[v]+p] = neighbor of v behind port p
	sorted  []Vertex // per-vertex ascending, for HasEdge binary search
	nbrIDs  []int64  // port order: nbrIDs[offsets[v]+p] = ID(nbrs[offsets[v]+p])
	// Per-vertex ID->port index: idSorted holds v's neighbor IDs
	// ascending, idPort the matching ports, so PortOfID is a binary
	// search instead of an O(deg) scan.
	idSorted []int64
	idPort   []int32
	nPrime   int64 // ID-space bound n' (all IDs are in [0, n'))
	minDeg   int
	maxDeg   int
	edges    int
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.ids) }

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.edges }

// NPrime returns the ID-space bound n': every vertex ID lies in [0, n').
func (g *Graph) NPrime() int64 { return g.nPrime }

// MinDegree returns δ(G), the minimum vertex degree.
func (g *Graph) MinDegree() int { return g.minDeg }

// MaxDegree returns ∆(G), the maximum vertex degree.
func (g *Graph) MaxDegree() int { return g.maxDeg }

// ID returns the identifier of vertex v.
func (g *Graph) ID(v Vertex) int64 { return g.ids[v] }

// VertexByID returns the vertex with the given identifier.
func (g *Graph) VertexByID(id int64) (Vertex, bool) {
	v, ok := g.byID[id]
	return v, ok
}

// Degree returns the degree of v.
func (g *Graph) Degree(v Vertex) int { return int(g.offsets[v+1] - g.offsets[v]) }

// Neighbor returns the neighbor of v behind local port p.
func (g *Graph) Neighbor(v Vertex, p int) Vertex { return g.nbrs[int(g.offsets[v])+p] }

// Adj returns the adjacency list of v in port order: a zero-copy
// subslice of the graph's flat arc array. The returned slice is shared
// with the graph and must not be modified; use Neighbors for an owned
// copy.
func (g *Graph) Adj(v Vertex) []Vertex {
	return g.nbrs[g.offsets[v]:g.offsets[v+1]:g.offsets[v+1]]
}

// sortedAdj returns v's neighbors in ascending vertex order (shared,
// read-only).
func (g *Graph) sortedAdj(v Vertex) []Vertex {
	return g.sorted[g.offsets[v]:g.offsets[v+1]]
}

// Neighbors returns a copy of the adjacency list of v in port order.
func (g *Graph) Neighbors(v Vertex) []Vertex {
	return slices.Clone(g.Adj(v))
}

// HasEdge reports whether u and v are adjacent. It binary-searches the
// smaller endpoint's sorted neighbor run: O(log min(deg(u), deg(v))),
// allocation-free.
func (g *Graph) HasEdge(u, v Vertex) bool {
	if u == v {
		return false
	}
	a := g.sortedAdj(u)
	if g.Degree(v) < len(a) {
		a, v = g.sortedAdj(v), u
	}
	_, ok := slices.BinarySearch(a, v)
	return ok
}

// PortTo returns the local port of u leading to v, or -1 if u and v are
// not adjacent. It runs in O(deg(u)).
func (g *Graph) PortTo(u, v Vertex) int {
	for p, w := range g.Adj(u) {
		if w == v {
			return p
		}
	}
	return -1
}

// IDsOfNeighbors appends the identifiers of v's neighbors, in port
// order, to dst and returns the extended slice.
func (g *Graph) IDsOfNeighbors(v Vertex, dst []int64) []int64 {
	return append(dst, g.NeighborIDList(v)...)
}

// NeighborIDList returns the identifiers of v's neighbors in port
// order as a slice shared with the graph — no copy, so it is the
// per-round fast path for the simulator's views. Callers must treat
// it as read-only: the graph is immutable and the slice is shared by
// every concurrent run on it.
func (g *Graph) NeighborIDList(v Vertex) []int64 {
	return g.nbrIDs[g.offsets[v]:g.offsets[v+1]:g.offsets[v+1]]
}

// PortOfID returns the local port of v leading to the neighbor with
// the given ID, or -1 if v has no such neighbor. It runs in
// O(log deg(v)).
func (g *Graph) PortOfID(v Vertex, id int64) int {
	s := g.idSorted[g.offsets[v]:g.offsets[v+1]]
	if i, ok := slices.BinarySearch(s, id); ok {
		return int(g.idPort[int(g.offsets[v])+i])
	}
	return -1
}

// Validate checks the structural invariants of the graph: symmetric
// adjacency, no self-loops, no parallel edges, distinct in-range IDs.
// Graphs produced by a Builder or the generators always validate; the
// method exists for graphs decoded from untrusted input and for tests.
func (g *Graph) Validate() error {
	n := g.N()
	if err := validateIDs(g.ids, g.nPrime); err != nil {
		return err
	}
	edges := 0
	for v := Vertex(0); int(v) < n; v++ {
		for _, w := range g.Adj(v) {
			if w == v {
				return fmt.Errorf("graph: self-loop at vertex %d", v)
			}
			if int(w) < 0 || int(w) >= n {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", v, w)
			}
			if !g.HasEdge(w, v) {
				return fmt.Errorf("graph: edge %d-%d is not symmetric", v, w)
			}
			edges++
		}
		// Parallel edges are adjacent duplicates in the sorted run.
		s := g.sortedAdj(v)
		for i := 1; i < len(s); i++ {
			if s[i] == s[i-1] {
				return fmt.Errorf("graph: parallel edge %d-%d", v, s[i])
			}
		}
	}
	if edges%2 != 0 {
		return errors.New("graph: odd total arc count")
	}
	if edges/2 != g.edges {
		return fmt.Errorf("graph: edge count %d does not match recorded %d", edges/2, g.edges)
	}
	return nil
}

// validateIDs checks that ids are distinct and lie in [0, nPrime).
func validateIDs(ids []int64, nPrime int64) error {
	if int64(len(ids)) > nPrime {
		return fmt.Errorf("graph: n=%d exceeds ID space n'=%d", len(ids), nPrime)
	}
	seen := make(map[int64]Vertex, len(ids))
	for v, id := range ids {
		if id < 0 || id >= nPrime {
			return fmt.Errorf("graph: vertex %d has ID %d outside [0, %d)", v, id, nPrime)
		}
		if prev, dup := seen[id]; dup {
			return fmt.Errorf("graph: vertices %d and %d share ID %d", prev, v, id)
		}
		seen[id] = Vertex(v)
	}
	return nil
}

// setRows fills the CSR offsets and port-ordered neighbor array from
// per-vertex rows. Rows are copied; out-of-range entries are preserved
// verbatim (Validate reports them). It fails loudly if the arc count
// overflows the int32 offset space rather than truncating silently.
func (g *Graph) setRows(rows [][]Vertex) error {
	n := len(rows)
	arcs := 0
	for _, row := range rows {
		arcs += len(row)
	}
	if int64(arcs) > math.MaxInt32 {
		return fmt.Errorf("graph: %d arcs overflow the int32 CSR offset space", arcs)
	}
	g.offsets = make([]int32, n+1)
	g.nbrs = make([]Vertex, 0, arcs)
	for v, row := range rows {
		g.offsets[v] = int32(len(g.nbrs))
		g.nbrs = append(g.nbrs, row...)
	}
	g.offsets[n] = int32(len(g.nbrs))
	return nil
}

// idPortSorter sorts a vertex's (neighbor ID, port) pairs by ID.
type idPortSorter struct {
	ids   []int64
	ports []int32
}

func (s idPortSorter) Len() int           { return len(s.ids) }
func (s idPortSorter) Less(i, j int) bool { return s.ids[i] < s.ids[j] }
func (s idPortSorter) Swap(i, j int) {
	s.ids[i], s.ids[j] = s.ids[j], s.ids[i]
	s.ports[i], s.ports[j] = s.ports[j], s.ports[i]
}

// buildDerived computes every derived field of a graph whose ids,
// offsets, nbrs and nPrime fields are populated: the ID map, degree
// extremes and edge count, and the three remaining flat per-arc arrays
// (sorted adjacency, neighbor IDs, ID->port index).
func (g *Graph) buildDerived() {
	n := len(g.ids)
	arcs := len(g.nbrs)
	g.byID = make(map[int64]Vertex, n)
	for v, id := range g.ids {
		g.byID[id] = Vertex(v)
	}
	g.minDeg, g.maxDeg = 0, 0
	for v := Vertex(0); int(v) < n; v++ {
		d := g.Degree(v)
		if v == 0 || d < g.minDeg {
			g.minDeg = d
		}
		if d > g.maxDeg {
			g.maxDeg = d
		}
	}
	g.edges = arcs / 2

	// Sorted adjacency: copy the neighbor array once, sort each
	// vertex's run in place.
	g.sorted = slices.Clone(g.nbrs)
	for v := Vertex(0); int(v) < n; v++ {
		slices.Sort(g.sorted[g.offsets[v]:g.offsets[v+1]])
	}

	// Port-ordered neighbor IDs (out-of-range neighbors map to NoID and
	// are left for Validate to report).
	g.nbrIDs = make([]int64, arcs)
	for i, w := range g.nbrs {
		if int(w) >= 0 && int(w) < n {
			g.nbrIDs[i] = g.ids[w]
		} else {
			g.nbrIDs[i] = NoID
		}
	}

	// ID->port index: per-vertex copy of the ID run plus the identity
	// port run, co-sorted by ID.
	g.idSorted = slices.Clone(g.nbrIDs)
	g.idPort = make([]int32, arcs)
	for v := Vertex(0); int(v) < n; v++ {
		lo, hi := g.offsets[v], g.offsets[v+1]
		run := g.idPort[lo:hi]
		for p := range run {
			run[p] = int32(p)
		}
		sort.Sort(idPortSorter{ids: g.idSorted[lo:hi], ports: run})
	}
}

// FromAdjacency constructs a graph directly from an ID table and an
// adjacency structure (which fixes the port numbering verbatim). The
// input slices are copied into the graph's flat CSR arrays. It returns
// an error if the structure is not a simple undirected graph with
// distinct IDs in [0, nPrime).
func FromAdjacency(ids []int64, adj [][]Vertex, nPrime int64) (*Graph, error) {
	if len(ids) != len(adj) {
		return nil, fmt.Errorf("graph: %d IDs for %d adjacency rows", len(ids), len(adj))
	}
	g := &Graph{ids: slices.Clone(ids), nPrime: nPrime}
	if err := g.setRows(adj); err != nil {
		return nil, err
	}
	g.buildDerived()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	ng := &Graph{
		ids:     slices.Clone(g.ids),
		offsets: slices.Clone(g.offsets),
		nbrs:    slices.Clone(g.nbrs),
		nPrime:  g.nPrime,
	}
	ng.buildDerived()
	return ng
}

// Equal reports whether g and h have identical vertex IDs, ID-space
// bounds, and adjacency lists (including port order).
func (g *Graph) Equal(h *Graph) bool {
	return g.N() == h.N() && g.nPrime == h.nPrime &&
		slices.Equal(g.ids, h.ids) &&
		slices.Equal(g.offsets, h.offsets) &&
		slices.Equal(g.nbrs, h.nbrs)
}

// String returns a short human-readable summary, not the full structure.
func (g *Graph) String() string {
	return fmt.Sprintf("graph(n=%d m=%d δ=%d ∆=%d n'=%d)", g.N(), g.M(), g.minDeg, g.maxDeg, g.nPrime)
}
