// Package graph provides the static graph substrate used by the
// rendezvous simulator: undirected simple graphs with unique vertex
// identifiers, explicit local port numberings, generators for the graph
// families used throughout the paper "Fast Neighborhood Rendezvous"
// (Eguchi, Kitamura, Izumi; ICDCS 2020), and serialization in three
// formats (v1 text, v2 binary, v3 chunked binary; see io.go).
//
// Vertices carry two independent namespaces:
//
//   - the internal index (type Vertex), a dense [0, N) range used by the
//     simulator and all algorithms' internal bookkeeping, and
//   - the identifier (int64 ID), the value visible to agents. IDs are
//     distinct integers in [0, n'), where n' is the ID-space bound the
//     paper calls n′ (agents know n′; "tight naming" means n' = O(n)).
//
// The local port numbering of a vertex v is the order of its adjacency
// list: port p of v leads to Adj(v)[p]. This is the paper's true port
// mapping P̂_v. Whether agents may translate ports to neighbor IDs (the
// accessible mapping P_v equals P̂_v, the KT1-style assumption) is a
// property of the simulation, not of the graph.
//
// # Memory layout
//
// A Graph stores its adjacency structure in compressed sparse row
// (CSR) form: a single offsets array of n+1 cursors into flat backing
// arrays holding all 2m arcs contiguously. Five parallel per-arc
// arrays share the one offsets table — the port-ordered neighbor
// indices (Adj), the per-vertex ascending neighbor indices (HasEdge),
// the port-ordered neighbor IDs (NeighborIDList), and the per-vertex
// ID-sorted (ID, port) index (PortOfID). Adj and NeighborIDList
// therefore return zero-copy subslices of contiguous memory, per-round
// accesses walk cache lines instead of chasing per-vertex slice
// headers, and a 65k-vertex δ=√n graph is a handful of flat arrays
// rather than hundreds of thousands of small allocations.
package graph

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"slices"
	"sort"
	"sync/atomic"
)

// Vertex is a dense internal vertex index in [0, N).
type Vertex int32

// NilVertex is the sentinel "no vertex" value.
const NilVertex Vertex = -1

// NoID is the sentinel identifier meaning "unassigned".
const NoID int64 = -1

// Graph is an immutable undirected simple graph with unique vertex IDs
// and a fixed port numbering. Construct one with a Builder or one of the
// generators; a zero Graph is empty and unusable.
type Graph struct {
	ids []int64 // index -> identifier
	// Identifier -> index, in one of two map-free forms: under tight
	// naming (n' ≤ 4n) idToV is the dense inverse of ids (-1 = no
	// vertex) and VertexByID is one bounds-checked array load;
	// otherwise idKeys/idVerts hold the (ID, vertex) pairs sorted by ID
	// and VertexByID is a binary search. Exactly one form is non-nil.
	idToV   []int32
	idKeys  []int64
	idVerts []int32
	// CSR adjacency: vertex v's arcs live at positions
	// [offsets[v], offsets[v+1]) of every flat per-arc array below.
	// Offsets are int64 so the arc space is bounded by memory, not by
	// the 2^31 cap of the int32 seed layout; Vertex itself stays int32
	// (n ≤ maxReasonableN), so the per-arc arrays keep their width.
	offsets []int64
	nbrs    []Vertex // port order: nbrs[offsets[v]+p] = neighbor of v behind port p
	sorted  []Vertex // per-vertex ascending, for HasEdge binary search
	nbrIDs  []int64  // port order: nbrIDs[offsets[v]+p] = ID(nbrs[offsets[v]+p])
	// Per-vertex ID->port index: idSorted holds v's neighbor IDs
	// ascending, idPort the matching ports, so PortOfID is a binary
	// search instead of an O(deg) scan.
	idSorted []int64
	idPort   []int32
	nPrime   int64 // ID-space bound n' (all IDs are in [0, n'))
	minDeg   int
	maxDeg   int
	edges    int
	// stamp is a process-unique identity assigned at construction.
	// Graphs are immutable, so two equal stamps guarantee identical
	// structure — the key algorithm scratch uses to carry
	// graph-derived caches (e.g. port lookups) across trials.
	stamp uint64
}

// nextStamp issues process-unique graph identities; 0 is reserved as
// "no graph" so zero-valued contexts never match a cache key.
var nextStamp atomic.Uint64

// Stamp returns the graph's process-unique construction identity
// (never 0 for a built graph). Equal stamps imply the same immutable
// graph, letting per-agent scratch reuse graph-derived caches across
// trials without structural comparison.
func (g *Graph) Stamp() uint64 { return g.stamp }

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.ids) }

// FootprintBytes reports the retained size of the graph's backing
// arrays: the CSR offsets and five parallel per-arc arrays, the ID
// table, and whichever ID→vertex index form this graph carries (dense
// inverse or sorted pairs). It is the eviction weight for graph
// caches and the baseline benchmark memory witnesses subtract.
func (g *Graph) FootprintBytes() int64 {
	return 8*int64(len(g.ids)) +
		4*int64(len(g.idToV)) +
		8*int64(len(g.idKeys)) + 4*int64(len(g.idVerts)) +
		8*int64(len(g.offsets)) +
		4*int64(len(g.nbrs)) + 4*int64(len(g.sorted)) +
		8*int64(len(g.nbrIDs)) +
		8*int64(len(g.idSorted)) + 4*int64(len(g.idPort))
}

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.edges }

// NPrime returns the ID-space bound n': every vertex ID lies in [0, n').
func (g *Graph) NPrime() int64 { return g.nPrime }

// MinDegree returns δ(G), the minimum vertex degree.
func (g *Graph) MinDegree() int { return g.minDeg }

// MaxDegree returns ∆(G), the maximum vertex degree.
func (g *Graph) MaxDegree() int { return g.maxDeg }

// ID returns the identifier of vertex v.
func (g *Graph) ID(v Vertex) int64 { return g.ids[v] }

// VertexByID returns the vertex with the given identifier. It is
// allocation-free: O(1) under tight naming (a dense inverse array),
// O(log n) otherwise (binary search of the sorted ID index).
func (g *Graph) VertexByID(id int64) (Vertex, bool) {
	if g.idToV != nil {
		if id < 0 || id >= int64(len(g.idToV)) {
			return NilVertex, false
		}
		if v := g.idToV[id]; v >= 0 {
			return Vertex(v), true
		}
		return NilVertex, false
	}
	if i, ok := slices.BinarySearch(g.idKeys, id); ok {
		return Vertex(g.idVerts[i]), true
	}
	return NilVertex, false
}

// Degree returns the degree of v.
func (g *Graph) Degree(v Vertex) int { return int(g.offsets[v+1] - g.offsets[v]) }

// Neighbor returns the neighbor of v behind local port p.
func (g *Graph) Neighbor(v Vertex, p int) Vertex { return g.nbrs[int(g.offsets[v])+p] }

// Adj returns the adjacency list of v in port order: a zero-copy
// subslice of the graph's flat arc array. The returned slice is shared
// with the graph and must not be modified; use Neighbors for an owned
// copy.
func (g *Graph) Adj(v Vertex) []Vertex {
	return g.nbrs[g.offsets[v]:g.offsets[v+1]:g.offsets[v+1]]
}

// sortedAdj returns v's neighbors in ascending vertex order (shared,
// read-only).
func (g *Graph) sortedAdj(v Vertex) []Vertex {
	return g.sorted[g.offsets[v]:g.offsets[v+1]]
}

// Neighbors returns a copy of the adjacency list of v in port order.
func (g *Graph) Neighbors(v Vertex) []Vertex {
	return slices.Clone(g.Adj(v))
}

// HasEdge reports whether u and v are adjacent. It binary-searches the
// smaller endpoint's sorted neighbor run: O(log min(deg(u), deg(v))),
// allocation-free.
func (g *Graph) HasEdge(u, v Vertex) bool {
	if u == v {
		return false
	}
	a := g.sortedAdj(u)
	if g.Degree(v) < len(a) {
		a, v = g.sortedAdj(v), u
	}
	_, ok := slices.BinarySearch(a, v)
	return ok
}

// PortTo returns the local port of u leading to v, or -1 if u and v are
// not adjacent. It runs in O(deg(u)).
func (g *Graph) PortTo(u, v Vertex) int {
	for p, w := range g.Adj(u) {
		if w == v {
			return p
		}
	}
	return -1
}

// IDsOfNeighbors appends the identifiers of v's neighbors, in port
// order, to dst and returns the extended slice.
func (g *Graph) IDsOfNeighbors(v Vertex, dst []int64) []int64 {
	return append(dst, g.NeighborIDList(v)...)
}

// NeighborIDList returns the identifiers of v's neighbors in port
// order as a slice shared with the graph — no copy, so it is the
// per-round fast path for the simulator's views. Callers must treat
// it as read-only: the graph is immutable and the slice is shared by
// every concurrent run on it.
func (g *Graph) NeighborIDList(v Vertex) []int64 {
	return g.nbrIDs[g.offsets[v]:g.offsets[v+1]:g.offsets[v+1]]
}

// PortOfID returns the local port of v leading to the neighbor with
// the given ID, or -1 if v has no such neighbor. It runs in
// O(log deg(v)).
func (g *Graph) PortOfID(v Vertex, id int64) int {
	s := g.idSorted[g.offsets[v]:g.offsets[v+1]]
	if i, ok := slices.BinarySearch(s, id); ok {
		return int(g.idPort[int(g.offsets[v])+i])
	}
	return -1
}

// Validate checks the structural invariants of the graph: symmetric
// adjacency, no self-loops, no parallel edges, distinct in-range IDs.
// Graphs produced by a Builder or the generators always validate; the
// method exists for graphs decoded from untrusted input and for tests.
// Symmetry is established by one sequential linear sweep (see below)
// instead of a binary search per arc, so validating a 33M-arc
// deserialized graph costs a fraction of a core-second instead of
// several.
func (g *Graph) Validate() error {
	if err := g.validateIDsIndexed(); err != nil {
		return err
	}
	if len(g.nbrs)%2 != 0 {
		return errors.New("graph: odd total arc count")
	}
	if len(g.nbrs)/2 != g.edges {
		return fmt.Errorf("graph: edge count %d does not match recorded %d", len(g.nbrs)/2, g.edges)
	}
	// Symmetry by one linear cursor co-sweep instead of a binary
	// search per arc (see symmetrySweep). The cursor array is the
	// validation's only allocation; int32 cursors suffice whenever the
	// arc indices fit, which keeps the transient footprint of
	// validating a streamed million-vertex graph at 4 bytes per vertex
	// (the read path's O(chunk) memory bound counts this).
	if int64(len(g.nbrs)) <= math.MaxInt32 {
		return symmetrySweep[int32](g)
	}
	return symmetrySweep[int64](g)
}

// symmetrySweep proves the graph symmetric with one linear cursor
// co-sweep. Both graph constructions guarantee structurally that each
// sorted run holds the same multiset as its Adj row (buildDerived
// sorts the row's copy; the binary reader scatters the run through a
// checked port permutation), so sweeping sources in ascending order
// must land every arc (v, w) exactly on the cursor of w's sorted run.
// A completed sweep maps each arc to a distinct matching run entry —
// an injection of the arc multiset into its own reversal, hence a
// bijection: the graph is symmetric. Every arc advances exactly one
// cursor inside its run's bounds and the totals agree, so all cursors
// end exactly at their degrees — no final pass needed.
func symmetrySweep[C int32 | int64](g *Graph) error {
	n := g.N()
	cur := make([]C, n)
	for v := range cur {
		cur[v] = C(g.offsets[v])
	}
	for v := Vertex(0); int(v) < n; v++ {
		s := g.sortedAdj(v)
		for i, w := range s {
			if w == v {
				return fmt.Errorf("graph: self-loop at vertex %d", v)
			}
			if int(w) < 0 || int(w) >= n {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", v, w)
			}
			if i > 0 && w == s[i-1] {
				return fmt.Errorf("graph: parallel edge %d-%d", v, w)
			}
		}
		for _, w := range g.Adj(v) {
			c := int64(cur[w])
			if c >= g.offsets[w+1] || g.sorted[c] != v {
				return fmt.Errorf("graph: edge %d-%d is not symmetric", v, w)
			}
			cur[w] = C(c + 1)
		}
	}
	return nil
}

// validateIDsIndexed checks that the graph's IDs are distinct and lie
// in [0, n') by reading the ID index buildIDIndex already constructed
// — the dense inverse detects a duplicate as a vertex the
// last-one-wins fill overwrote, the sorted pair index as adjacent
// equal keys — so no per-validation map is built (a 1M-vertex map
// cost more transient memory than the streaming decoder it ran
// under). Falls back to the map for index-less graphs (none today).
func (g *Graph) validateIDsIndexed() error {
	if int64(len(g.ids)) > g.nPrime {
		return fmt.Errorf("graph: n=%d exceeds ID space n'=%d", len(g.ids), g.nPrime)
	}
	switch {
	case g.idToV != nil:
		for v, id := range g.ids {
			if id < 0 || id >= g.nPrime {
				return fmt.Errorf("graph: vertex %d has ID %d outside [0, %d)", v, id, g.nPrime)
			}
			if w := Vertex(g.idToV[id]); w != Vertex(v) {
				return fmt.Errorf("graph: vertices %d and %d share ID %d", min(w, Vertex(v)), max(w, Vertex(v)), id)
			}
		}
	case g.idKeys != nil:
		for v, id := range g.ids {
			if id < 0 || id >= g.nPrime {
				return fmt.Errorf("graph: vertex %d has ID %d outside [0, %d)", v, id, g.nPrime)
			}
		}
		for i := 1; i < len(g.idKeys); i++ {
			if g.idKeys[i] == g.idKeys[i-1] {
				a, b := Vertex(g.idVerts[i-1]), Vertex(g.idVerts[i])
				return fmt.Errorf("graph: vertices %d and %d share ID %d", min(a, b), max(a, b), g.idKeys[i])
			}
		}
	default:
		return validateIDs(g.ids, g.nPrime)
	}
	return nil
}

// validateIDs checks that ids are distinct and lie in [0, nPrime).
func validateIDs(ids []int64, nPrime int64) error {
	if int64(len(ids)) > nPrime {
		return fmt.Errorf("graph: n=%d exceeds ID space n'=%d", len(ids), nPrime)
	}
	seen := make(map[int64]Vertex, len(ids))
	for v, id := range ids {
		if id < 0 || id >= nPrime {
			return fmt.Errorf("graph: vertex %d has ID %d outside [0, %d)", v, id, nPrime)
		}
		if prev, dup := seen[id]; dup {
			return fmt.Errorf("graph: vertices %d and %d share ID %d", prev, v, id)
		}
		seen[id] = Vertex(v)
	}
	return nil
}

// setRows fills the CSR offsets and port-ordered neighbor array from
// per-vertex rows. Rows are copied; out-of-range entries are preserved
// verbatim (Validate reports them). Offsets are int64, so the arc
// count is bounded only by memory — the seed-era 2^31 cap now lives
// solely in the v1/v2 serialization formats (see io.go).
func (g *Graph) setRows(rows [][]Vertex) error {
	n := len(rows)
	var arcs int64
	for _, row := range rows {
		arcs += int64(len(row))
	}
	g.offsets = make([]int64, n+1)
	g.nbrs = make([]Vertex, 0, arcs)
	for v, row := range rows {
		g.offsets[v] = int64(len(g.nbrs))
		g.nbrs = append(g.nbrs, row...)
	}
	g.offsets[n] = int64(len(g.nbrs))
	return nil
}

// idPortSorter sorts a vertex's (neighbor ID, port) pairs by ID.
type idPortSorter struct {
	ids   []int64
	ports []int32
}

func (s idPortSorter) Len() int           { return len(s.ids) }
func (s idPortSorter) Less(i, j int) bool { return s.ids[i] < s.ids[j] }
func (s idPortSorter) Swap(i, j int) {
	s.ids[i], s.ids[j] = s.ids[j], s.ids[i]
	s.ports[i], s.ports[j] = s.ports[j], s.ports[i]
}

// buildDerived computes every derived field of a graph whose ids,
// offsets, nbrs and nPrime fields are populated: the ID index, degree
// extremes and edge count, and the three remaining flat per-arc arrays
// (sorted adjacency, neighbor IDs, ID->port index). Per-vertex
// assembly — the sorts in particular — fans out over vertex blocks,
// and the (ID, port) co-sort runs as a single flat uint64 sort per
// vertex whenever the ID and port widths pack into one word (they do
// for every graph the parsers accept), so deserializing or building a
// 33M-arc graph spends fractions of a core-second here instead of
// several. None of this touches an RNG: generator draw sequences are
// byte-identical at any GOMAXPROCS.
func (g *Graph) buildDerived() {
	n := len(g.ids)
	arcs := len(g.nbrs)
	g.stamp = nextStamp.Add(1)
	g.buildIDIndex()
	g.computeDegreeStats()

	g.nbrIDs = make([]int64, arcs)
	g.idSorted = make([]int64, arcs)

	// Tight identity naming (ids[v] = v, every generator's default)
	// means ID order equals index order, so ONE packed sort per vertex
	// on (neighbor index, port) keys yields sorted, idSorted and
	// idPort together — measurably faster than an int32 sort plus a
	// second co-sort, and far faster than the seed's interface-based
	// sort.Sort. Under other labelings sorted gets its own int32 sort
	// and the (ID, port) pairs co-sort as packed uint64 keys when the
	// ID and port widths fit 63 bits together (they do for every graph
	// the parsers accept), falling back to the interface sort for
	// astronomically sparse namings. Invalid inputs (IDs or neighbors
	// out of range) may pack garbage keys; buildDerived only has to be
	// deterministic on them, not meaningful, because Validate rejects
	// such graphs before anyone queries the index.
	g.sorted = make([]Vertex, arcs)
	g.idPort = make([]int32, arcs)
	identity := g.identityIDs()
	keys, portBits, portMask := g.idPortKeys(identity)

	parallelBlocks(n, func(lo, hi Vertex) {
		for v := lo; v < hi; v++ {
			o, e := g.offsets[v], g.offsets[v+1]
			idRun := g.nbrIDs[o:e]
			if identity {
				// Keys are (index << portBits) | port: the index fits
				// 32 bits (Vertex is int32) and portBits ≤ 31, so the
				// key always fits. uint32 round-trips negative
				// (invalid) indices exactly; they merely sort high.
				ks := keys[o:e]
				for p, w := range g.nbrs[o:e] {
					ks[p] = uint64(uint32(w))<<portBits | uint64(p)
					if int(w) >= 0 && int(w) < n {
						idRun[p] = int64(w)
					} else {
						idRun[p] = NoID
					}
				}
				slices.Sort(ks)
				for i, k := range ks {
					w := Vertex(int32(uint32(k >> portBits)))
					g.sorted[int(o)+i] = w
					g.idSorted[int(o)+i] = int64(w)
					g.idPort[int(o)+i] = int32(k & portMask)
				}
				continue
			}
			// Sorted adjacency: copy this vertex's run and sort it.
			sortRun := g.sorted[o:e]
			copy(sortRun, g.nbrs[o:e])
			slices.Sort(sortRun)
			// Port-ordered neighbor IDs (out-of-range neighbors map to
			// NoID and are left for Validate to report).
			for i, w := range g.nbrs[o:e] {
				if int(w) >= 0 && int(w) < n {
					idRun[i] = g.ids[w]
				} else {
					idRun[i] = NoID
				}
			}
			g.coSortIDPort(o, e, keys, portBits, portMask)
		}
	})
}

// identityIDs reports whether the graph uses the identity labeling
// ids[v] = v.
func (g *Graph) identityIDs() bool {
	for v, id := range g.ids {
		if id != int64(v) {
			return false
		}
	}
	return true
}

// computeDegreeStats fills the degree extremes and edge count from the
// populated offsets.
func (g *Graph) computeDegreeStats() {
	g.minDeg, g.maxDeg = 0, 0
	for v := Vertex(0); int(v) < len(g.ids); v++ {
		d := g.Degree(v)
		if v == 0 || d < g.minDeg {
			g.minDeg = d
		}
		if d > g.maxDeg {
			g.maxDeg = d
		}
	}
	g.edges = len(g.nbrs) / 2
}

// idPortKeys decides the packed-key representation for the (ID, port)
// co-sorts: a shared scratch array plus the bit split when the ID and
// port widths fit one uint64 key (always, under identity naming — the
// key packs the 32-bit index instead of the ID), nil keys to select
// the interface-sort fallback otherwise. Must run after
// computeDegreeStats (portBits derives from the maximum degree).
func (g *Graph) idPortKeys(identity bool) (keys []uint64, portBits int, portMask uint64) {
	portBits = bits.Len(uint(max(g.maxDeg-1, 0)))
	portMask = uint64(1)<<portBits - 1
	idBits := bits.Len64(uint64(max(g.nPrime-1, 0)))
	if identity || idBits+portBits <= 63 {
		keys = make([]uint64, len(g.nbrs))
	}
	return keys, portBits, portMask
}

// coSortIDPort builds the ID->port index run [o, e) by co-sorting the
// already-filled nbrIDs run with its ports — as packed uint64 keys
// when keys is non-nil, through the interface sort otherwise.
func (g *Graph) coSortIDPort(o, e int64, keys []uint64, portBits int, portMask uint64) {
	idRun := g.nbrIDs[o:e]
	if keys != nil {
		ks := keys[o:e]
		for p, id := range idRun {
			ks[p] = uint64(id)<<portBits | uint64(p)
		}
		slices.Sort(ks)
		for i, k := range ks {
			g.idSorted[int(o)+i] = int64(k >> portBits)
			g.idPort[int(o)+i] = int32(k & portMask)
		}
		return
	}
	copy(g.idSorted[o:e], idRun)
	run := g.idPort[o:e]
	for p := range run {
		run[p] = int32(p)
	}
	sort.Sort(idPortSorter{ids: g.idSorted[o:e], ports: run})
}

// buildIDIndex builds the map-free identifier -> index structure: the
// dense inverse array when the naming is tight enough that it costs
// O(n) memory (n' ≤ 4n), the ID-sorted pair index otherwise. IDs
// outside [0, n') or duplicated are tolerated here (last one wins in
// the dense form) — Validate is what rejects them.
func (g *Graph) buildIDIndex() {
	n := len(g.ids)
	g.idToV, g.idKeys, g.idVerts = nil, nil, nil
	if n > 0 && g.nPrime >= 0 && g.nPrime <= int64(4*n) {
		g.idToV = make([]int32, g.nPrime)
		for i := range g.idToV {
			g.idToV[i] = -1
		}
		for v, id := range g.ids {
			if id >= 0 && id < int64(len(g.idToV)) {
				g.idToV[id] = int32(v)
			}
		}
		return
	}
	g.idKeys = make([]int64, n)
	g.idVerts = make([]int32, n)
	copy(g.idKeys, g.ids)
	for v := range g.idVerts {
		g.idVerts[v] = int32(v)
	}
	sort.Sort(idPortSorter{ids: g.idKeys, ports: g.idVerts})
}

// FromAdjacency constructs a graph directly from an ID table and an
// adjacency structure (which fixes the port numbering verbatim). The
// input slices are copied into the graph's flat CSR arrays. It returns
// an error if the structure is not a simple undirected graph with
// distinct IDs in [0, nPrime).
func FromAdjacency(ids []int64, adj [][]Vertex, nPrime int64) (*Graph, error) {
	if len(ids) != len(adj) {
		return nil, fmt.Errorf("graph: %d IDs for %d adjacency rows", len(ids), len(adj))
	}
	g := &Graph{ids: slices.Clone(ids), nPrime: nPrime}
	if err := g.setRows(adj); err != nil {
		return nil, err
	}
	g.buildDerived()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// fromCSR constructs and validates a graph from already-flat CSR
// arrays, taking ownership of the slices — the text deserializer's
// path, which skips the per-row copies of FromAdjacency. offsets must
// have len(ids)+1 monotone entries with offsets[len(ids)] ==
// len(nbrs).
func fromCSR(ids []int64, offsets []int64, nbrs []Vertex, nPrime int64) (*Graph, error) {
	g := &Graph{ids: ids, offsets: offsets, nbrs: nbrs, nPrime: nPrime}
	g.buildDerived()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// fromCSRSorted constructs and validates a graph from the binary
// reader's arrays: per-vertex ascending neighbor runs plus the
// sorted-position -> port permutation (ports[i] is the local port
// behind which run entry i sits). The port-order adjacency is rebuilt
// by scattering each run through its ports — rejecting out-of-range
// and duplicate ports, so the rebuilt rows provably hold exactly the
// runs' multisets — and nothing needs sorting. Takes ownership of all
// slices (ports becomes the idPort index under identity naming). The
// caller must have checked that every run is strictly ascending with
// entries in [0, len(ids)).
func fromCSRSorted(ids []int64, offsets []int64, sorted []Vertex, ports []int32, nPrime int64) (*Graph, error) {
	n := len(ids)
	nbrs := make([]Vertex, len(sorted))
	for i := range nbrs {
		nbrs[i] = NilVertex
	}
	for v := 0; v < n; v++ {
		o, e := offsets[v], offsets[v+1]
		deg := e - o
		for i := o; i < e; i++ {
			p := int64(ports[i])
			if p < 0 || p >= deg {
				return nil, fmt.Errorf("graph: vertex %d has port %d outside [0,%d)", v, p, deg)
			}
			if nbrs[o+p] != NilVertex {
				return nil, fmt.Errorf("graph: vertex %d lists port %d twice", v, p)
			}
			nbrs[o+p] = sorted[i]
		}
	}
	g := &Graph{ids: ids, offsets: offsets, nbrs: nbrs, sorted: sorted, nPrime: nPrime}
	g.buildDerivedPresorted(ports)
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// buildDerivedPresorted is the binary reader's counterpart of
// buildDerived for graphs whose sorted adjacency (already in g) and
// sorted->port permutation arrive with the payload: under identity
// naming nothing needs sorting at all — ports IS the ID->port index —
// and under other labelings only the ID co-sort remains.
func (g *Graph) buildDerivedPresorted(ports []int32) {
	n := len(g.ids)
	arcs := len(g.nbrs)
	g.buildIDIndex()
	g.computeDegreeStats()
	g.nbrIDs = make([]int64, arcs)
	g.idSorted = make([]int64, arcs)
	if g.identityIDs() {
		g.idPort = ports
		parallelBlocks(n, func(lo, hi Vertex) {
			for i := g.offsets[lo]; i < g.offsets[hi]; i++ {
				g.idSorted[i] = int64(g.sorted[i])
				g.nbrIDs[i] = int64(g.nbrs[i])
			}
		})
		return
	}
	g.idPort = make([]int32, arcs)
	keys, portBits, portMask := g.idPortKeys(false)
	parallelBlocks(n, func(lo, hi Vertex) {
		for v := lo; v < hi; v++ {
			o, e := g.offsets[v], g.offsets[v+1]
			idRun := g.nbrIDs[o:e]
			for i, w := range g.nbrs[o:e] {
				idRun[i] = g.ids[w]
			}
			g.coSortIDPort(o, e, keys, portBits, portMask)
		}
	})
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	ng := &Graph{
		ids:     slices.Clone(g.ids),
		offsets: slices.Clone(g.offsets),
		nbrs:    slices.Clone(g.nbrs),
		nPrime:  g.nPrime,
	}
	ng.buildDerived()
	return ng
}

// Equal reports whether g and h have identical vertex IDs, ID-space
// bounds, and adjacency lists (including port order).
func (g *Graph) Equal(h *Graph) bool {
	return g.N() == h.N() && g.nPrime == h.nPrime &&
		slices.Equal(g.ids, h.ids) &&
		slices.Equal(g.offsets, h.offsets) &&
		slices.Equal(g.nbrs, h.nbrs)
}

// String returns a short human-readable summary, not the full structure.
func (g *Graph) String() string {
	return fmt.Sprintf("graph(n=%d m=%d δ=%d ∆=%d n'=%d)", g.N(), g.M(), g.minDeg, g.maxDeg, g.nPrime)
}
