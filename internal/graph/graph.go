// Package graph provides the static graph substrate used by the
// rendezvous simulator: undirected simple graphs with unique vertex
// identifiers, explicit local port numberings, generators for the graph
// families used throughout the paper "Fast Neighborhood Rendezvous"
// (Eguchi, Kitamura, Izumi; ICDCS 2020), and text serialization.
//
// Vertices carry two independent namespaces:
//
//   - the internal index (type Vertex), a dense [0, N) range used by the
//     simulator and all algorithms' internal bookkeeping, and
//   - the identifier (int64 ID), the value visible to agents. IDs are
//     distinct integers in [0, n'), where n' is the ID-space bound the
//     paper calls n′ (agents know n′; "tight naming" means n' = O(n)).
//
// The local port numbering of a vertex v is the order of its adjacency
// list: port p of v leads to Adj(v)[p]. This is the paper's true port
// mapping P̂_v. Whether agents may translate ports to neighbor IDs (the
// accessible mapping P_v equals P̂_v, the KT1-style assumption) is a
// property of the simulation, not of the graph.
package graph

import (
	"cmp"
	"errors"
	"fmt"
	"slices"
)

// Vertex is a dense internal vertex index in [0, N).
type Vertex int32

// NilVertex is the sentinel "no vertex" value.
const NilVertex Vertex = -1

// NoID is the sentinel identifier meaning "unassigned".
const NoID int64 = -1

// Graph is an immutable undirected simple graph with unique vertex IDs
// and a fixed port numbering. Construct one with a Builder or one of the
// generators; a zero Graph is empty and unusable.
type Graph struct {
	ids    []int64          // index -> identifier
	byID   map[int64]Vertex // identifier -> index
	adj    [][]Vertex       // adj[v][p] = neighbor of v behind port p
	sorted [][]Vertex       // per-vertex sorted adjacency, for HasEdge
	nbrIDs [][]int64        // nbrIDs[v][p] = ID(adj[v][p]), one flat backing array
	// Per-vertex ID->port index: idSorted[v] holds v's neighbor IDs
	// ascending, idPort[v] the matching ports, so PortOfID is a
	// binary search instead of an O(deg) scan.
	idSorted [][]int64
	idPort   [][]int32
	nPrime   int64 // ID-space bound n' (all IDs are in [0, n'))
	minDeg   int
	maxDeg   int
	edges    int
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.ids) }

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.edges }

// NPrime returns the ID-space bound n': every vertex ID lies in [0, n').
func (g *Graph) NPrime() int64 { return g.nPrime }

// MinDegree returns δ(G), the minimum vertex degree.
func (g *Graph) MinDegree() int { return g.minDeg }

// MaxDegree returns ∆(G), the maximum vertex degree.
func (g *Graph) MaxDegree() int { return g.maxDeg }

// ID returns the identifier of vertex v.
func (g *Graph) ID(v Vertex) int64 { return g.ids[v] }

// VertexByID returns the vertex with the given identifier.
func (g *Graph) VertexByID(id int64) (Vertex, bool) {
	v, ok := g.byID[id]
	return v, ok
}

// Degree returns the degree of v.
func (g *Graph) Degree(v Vertex) int { return len(g.adj[v]) }

// Neighbor returns the neighbor of v behind local port p.
func (g *Graph) Neighbor(v Vertex, p int) Vertex { return g.adj[v][p] }

// Adj returns the adjacency list of v in port order. The returned slice
// is shared with the graph and must not be modified; use Neighbors for
// an owned copy.
func (g *Graph) Adj(v Vertex) []Vertex { return g.adj[v] }

// Neighbors returns a copy of the adjacency list of v in port order.
func (g *Graph) Neighbors(v Vertex) []Vertex {
	return slices.Clone(g.adj[v])
}

// HasEdge reports whether u and v are adjacent.
func (g *Graph) HasEdge(u, v Vertex) bool {
	if u == v {
		return false
	}
	// Search the smaller of the two sorted lists.
	a := g.sorted[u]
	if len(g.sorted[v]) < len(a) {
		a, v = g.sorted[v], u
	}
	_, ok := slices.BinarySearch(a, v)
	return ok
}

// PortTo returns the local port of u leading to v, or -1 if u and v are
// not adjacent. It runs in O(deg(u)).
func (g *Graph) PortTo(u, v Vertex) int {
	for p, w := range g.adj[u] {
		if w == v {
			return p
		}
	}
	return -1
}

// IDsOfNeighbors appends the identifiers of v's neighbors, in port
// order, to dst and returns the extended slice.
func (g *Graph) IDsOfNeighbors(v Vertex, dst []int64) []int64 {
	return append(dst, g.nbrIDs[v]...)
}

// NeighborIDList returns the identifiers of v's neighbors in port
// order as a slice shared with the graph — no copy, so it is the
// per-round fast path for the simulator's views. Callers must treat
// it as read-only: the graph is immutable and the slice is shared by
// every concurrent run on it.
func (g *Graph) NeighborIDList(v Vertex) []int64 { return g.nbrIDs[v] }

// Validate checks the structural invariants of the graph: symmetric
// adjacency, no self-loops, no parallel edges, distinct in-range IDs.
// Graphs produced by a Builder or the generators always validate; the
// method exists for graphs decoded from untrusted input and for tests.
func (g *Graph) Validate() error {
	n := g.N()
	if int64(n) > g.nPrime {
		return fmt.Errorf("graph: n=%d exceeds ID space n'=%d", n, g.nPrime)
	}
	seen := make(map[int64]Vertex, n)
	for v, id := range g.ids {
		if id < 0 || id >= g.nPrime {
			return fmt.Errorf("graph: vertex %d has ID %d outside [0, %d)", v, id, g.nPrime)
		}
		if prev, dup := seen[id]; dup {
			return fmt.Errorf("graph: vertices %d and %d share ID %d", prev, v, id)
		}
		seen[id] = Vertex(v)
	}
	edges := 0
	for v := range g.adj {
		local := make(map[Vertex]struct{}, len(g.adj[v]))
		for _, w := range g.adj[v] {
			if w == Vertex(v) {
				return fmt.Errorf("graph: self-loop at vertex %d", v)
			}
			if int(w) < 0 || int(w) >= n {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", v, w)
			}
			if _, dup := local[w]; dup {
				return fmt.Errorf("graph: parallel edge %d-%d", v, w)
			}
			local[w] = struct{}{}
			if !g.HasEdge(w, Vertex(v)) {
				return fmt.Errorf("graph: edge %d-%d is not symmetric", v, w)
			}
			edges++
		}
	}
	if edges%2 != 0 {
		return errors.New("graph: odd total arc count")
	}
	if edges/2 != g.edges {
		return fmt.Errorf("graph: edge count %d does not match recorded %d", edges/2, g.edges)
	}
	return nil
}

// finish computes the derived fields of a graph whose ids, adj and
// nPrime fields are populated.
func (g *Graph) finish() {
	n := len(g.ids)
	g.byID = make(map[int64]Vertex, n)
	for v, id := range g.ids {
		g.byID[id] = Vertex(v)
	}
	g.sorted = make([][]Vertex, n)
	g.minDeg = 0
	g.maxDeg = 0
	g.edges = 0
	for v := range g.adj {
		s := slices.Clone(g.adj[v])
		slices.Sort(s)
		g.sorted[v] = s
		d := len(s)
		g.edges += d
		if v == 0 || d < g.minDeg {
			g.minDeg = d
		}
		if d > g.maxDeg {
			g.maxDeg = d
		}
	}
	g.edges /= 2
	// Precompute the per-vertex neighbor-ID lists (port order) into
	// one flat backing array, so simulator views need no per-round
	// ID translation.
	flat := make([]int64, 0, 2*g.edges)
	g.nbrIDs = make([][]int64, n)
	for v := range g.adj {
		start := len(flat)
		for _, w := range g.adj[v] {
			id := NoID // out-of-range neighbor: left for Validate to report
			if int(w) >= 0 && int(w) < n {
				id = g.ids[w]
			}
			flat = append(flat, id)
		}
		g.nbrIDs[v] = flat[start:len(flat):len(flat)]
	}
	// Build the ID->port binary-search index over the same lists.
	flatIDs := make([]int64, 0, 2*g.edges)
	flatPorts := make([]int32, 0, 2*g.edges)
	g.idSorted = make([][]int64, n)
	g.idPort = make([][]int32, n)
	for v := range g.adj {
		d := len(g.adj[v])
		perm := make([]int32, d)
		for p := range perm {
			perm[p] = int32(p)
		}
		ids := g.nbrIDs[v]
		slices.SortFunc(perm, func(a, b int32) int {
			return cmp.Compare(ids[a], ids[b])
		})
		is, ps := len(flatIDs), len(flatPorts)
		for _, p := range perm {
			flatIDs = append(flatIDs, ids[p])
			flatPorts = append(flatPorts, p)
		}
		g.idSorted[v] = flatIDs[is:len(flatIDs):len(flatIDs)]
		g.idPort[v] = flatPorts[ps:len(flatPorts):len(flatPorts)]
	}
}

// PortOfID returns the local port of v leading to the neighbor with
// the given ID, or -1 if v has no such neighbor. It runs in
// O(log deg(v)).
func (g *Graph) PortOfID(v Vertex, id int64) int {
	s := g.idSorted[v]
	if i, ok := slices.BinarySearch(s, id); ok {
		return int(g.idPort[v][i])
	}
	return -1
}

// FromAdjacency constructs a graph directly from an ID table and an
// adjacency structure (which fixes the port numbering verbatim). The
// input slices are cloned. It returns an error if the structure is not
// a simple undirected graph with distinct IDs in [0, nPrime).
func FromAdjacency(ids []int64, adj [][]Vertex, nPrime int64) (*Graph, error) {
	if len(ids) != len(adj) {
		return nil, fmt.Errorf("graph: %d IDs for %d adjacency rows", len(ids), len(adj))
	}
	g := &Graph{
		ids:    slices.Clone(ids),
		adj:    make([][]Vertex, len(adj)),
		nPrime: nPrime,
	}
	for v := range adj {
		g.adj[v] = slices.Clone(adj[v])
	}
	g.finish()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	ng := &Graph{
		ids:    slices.Clone(g.ids),
		adj:    make([][]Vertex, len(g.adj)),
		nPrime: g.nPrime,
	}
	for v := range g.adj {
		ng.adj[v] = slices.Clone(g.adj[v])
	}
	ng.finish()
	return ng
}

// Equal reports whether g and h have identical vertex IDs, ID-space
// bounds, and adjacency lists (including port order).
func (g *Graph) Equal(h *Graph) bool {
	if g.N() != h.N() || g.nPrime != h.nPrime || !slices.Equal(g.ids, h.ids) {
		return false
	}
	for v := range g.adj {
		if !slices.Equal(g.adj[v], h.adj[v]) {
			return false
		}
	}
	return true
}

// String returns a short human-readable summary, not the full structure.
func (g *Graph) String() string {
	return fmt.Sprintf("graph(n=%d m=%d δ=%d ∆=%d n'=%d)", g.N(), g.M(), g.minDeg, g.maxDeg, g.nPrime)
}
