package graph

import (
	"fmt"
	"math/rand/v2"
	"slices"
)

// adjTailCap bounds the unsorted tail of an adjSet: membership tests
// scan at most this many entries linearly before the binary search.
const adjTailCap = 32

// adjSet is one vertex's edge-membership set inside a Builder: a
// sorted array with a small unsorted insertion tail, promoted to a
// bitset once the vertex is dense enough that the bitset costs no more
// memory than the list (degree > n/64). Lookups are allocation-free:
// O(log d + adjTailCap) in list form, O(1) in bitset form.
type adjSet struct {
	sorted []Vertex // ascending
	tail   []Vertex // recent inserts, ≤ adjTailCap, unsorted
	bits   []uint64 // non-nil once promoted; then authoritative
}

func (s *adjSet) has(w Vertex) bool {
	if s.bits != nil {
		return s.bits[uint32(w)>>6]&(1<<(uint32(w)&63)) != 0
	}
	if _, ok := slices.BinarySearch(s.sorted, w); ok {
		return true
	}
	return slices.Contains(s.tail, w)
}

func (s *adjSet) add(w Vertex) {
	if s.bits != nil {
		s.bits[uint32(w)>>6] |= 1 << (uint32(w) & 63)
		return
	}
	s.tail = append(s.tail, w)
	if len(s.tail) >= adjTailCap {
		s.flush()
	}
}

// flush merges the sorted tail into the sorted prefix in place
// (backward merge into grown capacity), leaving the tail empty.
func (s *adjSet) flush() {
	if len(s.tail) == 0 {
		return
	}
	slices.Sort(s.tail)
	na, nb := len(s.sorted), len(s.tail)
	s.sorted = slices.Grow(s.sorted, nb)[:na+nb]
	i, j, k := na-1, nb-1, na+nb-1
	for j >= 0 {
		if i >= 0 && s.sorted[i] > s.tail[j] {
			s.sorted[k] = s.sorted[i]
			i--
		} else {
			s.sorted[k] = s.tail[j]
			j--
		}
		k--
	}
	s.tail = s.tail[:0]
}

// promote switches the set to bitset form over an n-vertex index space.
func (s *adjSet) promote(n int, members []Vertex) {
	s.bits = make([]uint64, (n+63)/64)
	for _, w := range members {
		s.bits[uint32(w)>>6] |= 1 << (uint32(w) & 63)
	}
	s.sorted, s.tail = nil, nil
}

// reset empties the set, retaining allocated capacity where possible.
func (s *adjSet) reset() {
	s.sorted = s.sorted[:0]
	s.tail = s.tail[:0]
	s.bits = nil
}

// Builder assembles a graph incrementally. Edges are appended to both
// endpoints' adjacency lists in call order, which defines the port
// numbering. IDs default to the tight assignment ids[v] = v; override
// with SetID or one of the relabeling helpers before Build.
//
// Edge dedup uses per-vertex sorted adjacency (with a bitset upgrade
// for dense vertices) instead of a global hash set, so HasEdge is
// allocation-free and generation never touches a map on its hot path.
type Builder struct {
	ids       []int64
	adj       [][]Vertex // port order
	seen      []adjSet   // per-vertex membership, parallel to adj
	nPrime    int64
	edges     int
	bitsetDeg int // promote a vertex's adjSet to bitset at this degree
}

// NewBuilder returns a builder for a graph on n vertices with tight IDs
// (ids[v] = v, n' = n) until changed.
func NewBuilder(n int) *Builder {
	b := &Builder{
		ids:       make([]int64, n),
		adj:       make([][]Vertex, n),
		seen:      make([]adjSet, n),
		nPrime:    int64(n),
		bitsetDeg: max(64, n/64),
	}
	for v := range b.ids {
		b.ids[v] = int64(v)
	}
	return b
}

// N returns the number of vertices under construction.
func (b *Builder) N() int { return len(b.ids) }

// M returns the number of edges added so far.
func (b *Builder) M() int { return b.edges }

// SetID assigns identifier id to vertex v. Uniqueness and range are
// checked at Build time.
func (b *Builder) SetID(v Vertex, id int64) { b.ids[v] = id }

// SetNPrime sets the ID-space bound n'. Build fails if any ID falls
// outside [0, n').
func (b *Builder) SetNPrime(nPrime int64) { b.nPrime = nPrime }

// HasEdge reports whether the edge u-v has been added. It checks the
// smaller endpoint's set: O(log min(deg(u), deg(v))) in list form,
// O(1) once either endpoint is bitset-promoted; never allocates.
func (b *Builder) HasEdge(u, v Vertex) bool {
	if n := Vertex(len(b.ids)); u < 0 || v < 0 || u >= n || v >= n {
		return false
	}
	if b.seen[u].bits != nil || (b.seen[v].bits == nil && len(b.adj[u]) <= len(b.adj[v])) {
		return b.seen[u].has(v)
	}
	return b.seen[v].has(u)
}

// Degree returns the current degree of v.
func (b *Builder) Degree(v Vertex) int { return len(b.adj[v]) }

// addHalf appends w to v's adjacency and membership structures.
func (b *Builder) addHalf(v, w Vertex) {
	b.adj[v] = append(b.adj[v], w)
	s := &b.seen[v]
	if s.bits == nil && len(b.adj[v]) >= b.bitsetDeg {
		s.promote(len(b.ids), b.adj[v])
		return
	}
	s.add(w)
}

// AddEdge adds the undirected edge u-v. It returns an error on
// self-loops, out-of-range endpoints, or duplicate edges.
func (b *Builder) AddEdge(u, v Vertex) error {
	n := Vertex(len(b.ids))
	if u < 0 || v < 0 || u >= n || v >= n {
		return fmt.Errorf("graph: edge %d-%d out of range [0,%d)", u, v, n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at %d", u)
	}
	if b.HasEdge(u, v) {
		return fmt.Errorf("graph: duplicate edge %d-%d", u, v)
	}
	b.addKnownNew(u, v)
	return nil
}

// addKnownNew adds u-v without the duplicate/range checks — the fast
// path for generators whose edges are distinct by construction.
func (b *Builder) addKnownNew(u, v Vertex) {
	b.addHalf(u, v)
	b.addHalf(v, u)
	b.edges++
}

// MustAddEdge is AddEdge for generator code where the edge is known
// valid by construction; it panics on error.
func (b *Builder) MustAddEdge(u, v Vertex) {
	if err := b.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// AddCycle adds the Hamiltonian cycle order[0] → order[1] → … →
// order[n-1] → order[0] in one bulk pass, leaving the builder in a
// state byte-equivalent to n sequential MustAddEdge(order[i],
// order[(i+1)%n]) calls: the same per-vertex port order and the same
// membership structures, so anything built on top (RNG-pinned
// generators in particular) cannot tell the difference. Because a
// cycle over a permutation touches each vertex's rows exactly once,
// the fill skips the per-edge duplicate checks entirely and writes
// vertex rows independently, fanned out over parallelBlocks — this is
// PlantedMinDegree's generation prefix, and at n=2^20 it runs several
// times faster than the sequential edge loop even on one core.
//
// The builder must hold no edges yet, and order must be a permutation
// of [0, n) with n ≥ 3 (so the cycle's edges are distinct and
// loop-free by construction).
func (b *Builder) AddCycle(order []int) error {
	n := len(b.ids)
	if b.edges != 0 {
		return fmt.Errorf("graph: AddCycle needs an empty builder, have %d edges", b.edges)
	}
	if n < 3 || len(order) != n {
		return fmt.Errorf("graph: cycle over %d vertices on a %d-vertex builder (need n ≥ 3)", len(order), n)
	}
	// pos is the inverse permutation: pos[v] = v's position in order.
	// It both validates the permutation and lets the fill iterate
	// destination vertices in index order — every b.adj and b.seen row
	// is written in one sequential sweep (the cache-friendly axis at
	// n in the millions), with only the read-only order lookups
	// hopping around.
	pos := make([]int32, n)
	for i := range pos {
		pos[i] = -1
	}
	for i, v := range order {
		if v < 0 || v >= n || pos[v] >= 0 {
			return fmt.Errorf("graph: cycle order is not a permutation of [0,%d)", n)
		}
		pos[v] = int32(i)
	}
	// One shared backing array seeds every vertex's membership tail —
	// each holds exactly the cycle's two incident edges — instead of a
	// per-vertex 2-element allocation (2M tiny allocations at n=2²⁰,
	// the dominant cost of the fill). Three-index slicing caps every
	// window at 2, so a later add reallocates instead of clobbering a
	// neighbor's window, exactly like an organically grown tail.
	tails := make([]Vertex, 2*n)
	parallelBlocks(n, func(lo, hi Vertex) {
		for v := lo; v < hi; v++ {
			i := int(pos[v])
			prev, next := i-1, i+1
			if i == 0 {
				prev = n - 1
			}
			if i == n-1 {
				next = 0
			}
			p, q := Vertex(order[prev]), Vertex(order[next])
			if i == 0 {
				// The sequential loop reaches order[0] first as the
				// source of its successor edge and only later as the
				// target of the closing edge, so its row reads
				// [next, prev] — every other vertex reads [prev, next].
				p, q = q, p
			}
			b.adj[v] = append(b.adj[v], p, q)
			t := tails[2*int(v) : 2*int(v)+2 : 2*int(v)+2]
			t[0], t[1] = p, q
			b.seen[v].tail = t
		}
	})
	b.edges += n
	return nil
}

// Reset removes every edge while keeping the vertex count, IDs, n',
// and — crucially for retrying generators — the per-vertex slice
// capacity already grown, so a restart adds no fresh allocations.
func (b *Builder) Reset() {
	for v := range b.adj {
		b.adj[v] = b.adj[v][:0]
		b.seen[v].reset()
	}
	b.edges = 0
}

// Grow pre-allocates every vertex's adjacency list for the given
// expected degree — a capacity hint for generators that know their
// degree profile up front.
func (b *Builder) Grow(deg int) {
	if deg <= 0 {
		return
	}
	for v := range b.adj {
		if cap(b.adj[v]) < deg {
			next := make([]Vertex, len(b.adj[v]), deg)
			copy(next, b.adj[v])
			b.adj[v] = next
		}
	}
}

// ShufflePorts randomizes the port order of every adjacency list using
// rng. Algorithms must not depend on generator-specific port order;
// shuffling ports in tests catches such dependencies.
func (b *Builder) ShufflePorts(rng *rand.Rand) {
	for v := range b.adj {
		a := b.adj[v]
		rng.Shuffle(len(a), func(i, j int) { a[i], a[j] = a[j], a[i] })
	}
}

// Build finalizes the graph. The builder remains usable (the structure
// is copied out into the graph's flat CSR arrays). Edge invariants
// hold by construction (AddEdge enforces them), so Build only has to
// check the ID assignment.
func (b *Builder) Build() (*Graph, error) {
	if err := validateIDs(b.ids, b.nPrime); err != nil {
		return nil, err
	}
	g := &Graph{ids: slices.Clone(b.ids), nPrime: b.nPrime}
	if err := g.setRows(b.adj); err != nil {
		return nil, err
	}
	g.buildDerived()
	return g, nil
}

// MustBuild is Build for generator code where the construction is known
// valid; it panics on error.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// PermuteIDs assigns IDs that are a uniformly random permutation of
// [0, n), keeping tight naming but decorrelating IDs from indices.
func (b *Builder) PermuteIDs(rng *rand.Rand) {
	perm := rng.Perm(len(b.ids))
	for v := range b.ids {
		b.ids[v] = int64(perm[v])
	}
	b.nPrime = int64(len(b.ids))
}

// Rebuild returns a builder preloaded with g's structure (edges in
// per-vertex port order, IDs and n' copied), ready for relabeling or
// extension.
func Rebuild(g *Graph) *Builder {
	b := NewBuilder(g.N())
	for v := Vertex(0); int(v) < g.N(); v++ {
		for _, w := range g.Adj(v) {
			if v < w {
				b.addKnownNew(v, w)
			}
		}
	}
	for v := Vertex(0); int(v) < g.N(); v++ {
		b.SetID(v, g.ID(v))
	}
	b.SetNPrime(g.NPrime())
	return b
}

// SparseIDs assigns IDs drawn uniformly without replacement from
// [0, factor·n), modeling the paper's loose (polynomial) naming where
// n' may exceed n. factor must be at least 1.
func (b *Builder) SparseIDs(factor int64, rng *rand.Rand) error {
	n := int64(len(b.ids))
	if factor < 1 {
		return fmt.Errorf("graph: sparse ID factor %d < 1", factor)
	}
	space := factor * n
	used := make(map[int64]struct{}, n)
	for v := range b.ids {
		for {
			id := rng.Int64N(space)
			if _, dup := used[id]; !dup {
				used[id] = struct{}{}
				b.ids[v] = id
				break
			}
		}
	}
	b.nPrime = space
	return nil
}
