package graph

import (
	"fmt"
	"math/rand/v2"
)

// Builder assembles a graph incrementally. Edges are appended to both
// endpoints' adjacency lists in call order, which defines the port
// numbering. IDs default to the tight assignment ids[v] = v; override
// with SetID or one of the relabeling helpers before Build.
type Builder struct {
	ids    []int64
	adj    [][]Vertex
	seen   map[edgeKey]struct{}
	nPrime int64
}

type edgeKey uint64

func keyOf(u, v Vertex) edgeKey {
	if u > v {
		u, v = v, u
	}
	return edgeKey(uint64(uint32(u))<<32 | uint64(uint32(v)))
}

// NewBuilder returns a builder for a graph on n vertices with tight IDs
// (ids[v] = v, n' = n) until changed.
func NewBuilder(n int) *Builder {
	b := &Builder{
		ids:    make([]int64, n),
		adj:    make([][]Vertex, n),
		seen:   make(map[edgeKey]struct{}),
		nPrime: int64(n),
	}
	for v := range b.ids {
		b.ids[v] = int64(v)
	}
	return b
}

// N returns the number of vertices under construction.
func (b *Builder) N() int { return len(b.ids) }

// SetID assigns identifier id to vertex v. Uniqueness and range are
// checked at Build time.
func (b *Builder) SetID(v Vertex, id int64) { b.ids[v] = id }

// SetNPrime sets the ID-space bound n'. Build fails if any ID falls
// outside [0, n').
func (b *Builder) SetNPrime(nPrime int64) { b.nPrime = nPrime }

// HasEdge reports whether the edge u-v has been added.
func (b *Builder) HasEdge(u, v Vertex) bool {
	_, ok := b.seen[keyOf(u, v)]
	return ok
}

// Degree returns the current degree of v.
func (b *Builder) Degree(v Vertex) int { return len(b.adj[v]) }

// AddEdge adds the undirected edge u-v. It returns an error on
// self-loops, out-of-range endpoints, or duplicate edges.
func (b *Builder) AddEdge(u, v Vertex) error {
	n := Vertex(len(b.ids))
	if u < 0 || v < 0 || u >= n || v >= n {
		return fmt.Errorf("graph: edge %d-%d out of range [0,%d)", u, v, n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at %d", u)
	}
	k := keyOf(u, v)
	if _, dup := b.seen[k]; dup {
		return fmt.Errorf("graph: duplicate edge %d-%d", u, v)
	}
	b.seen[k] = struct{}{}
	b.adj[u] = append(b.adj[u], v)
	b.adj[v] = append(b.adj[v], u)
	return nil
}

// MustAddEdge is AddEdge for generator code where the edge is known
// valid by construction; it panics on error.
func (b *Builder) MustAddEdge(u, v Vertex) {
	if err := b.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// ShufflePorts randomizes the port order of every adjacency list using
// rng. Algorithms must not depend on generator-specific port order;
// shuffling ports in tests catches such dependencies.
func (b *Builder) ShufflePorts(rng *rand.Rand) {
	for v := range b.adj {
		a := b.adj[v]
		rng.Shuffle(len(a), func(i, j int) { a[i], a[j] = a[j], a[i] })
	}
}

// Build finalizes the graph. The builder remains usable (the structure
// is copied out).
func (b *Builder) Build() (*Graph, error) {
	return FromAdjacency(b.ids, b.adj, b.nPrime)
}

// MustBuild is Build for generator code where the construction is known
// valid; it panics on error.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// PermuteIDs assigns IDs that are a uniformly random permutation of
// [0, n), keeping tight naming but decorrelating IDs from indices.
func (b *Builder) PermuteIDs(rng *rand.Rand) {
	perm := rng.Perm(len(b.ids))
	for v := range b.ids {
		b.ids[v] = int64(perm[v])
	}
	b.nPrime = int64(len(b.ids))
}

// Rebuild returns a builder preloaded with g's structure (edges in
// per-vertex port order, IDs and n' copied), ready for relabeling or
// extension.
func Rebuild(g *Graph) *Builder {
	b := NewBuilder(g.N())
	for v := Vertex(0); int(v) < g.N(); v++ {
		for _, w := range g.Adj(v) {
			if v < w {
				b.MustAddEdge(v, w)
			}
		}
	}
	for v := Vertex(0); int(v) < g.N(); v++ {
		b.SetID(v, g.ID(v))
	}
	b.SetNPrime(g.NPrime())
	return b
}

// SparseIDs assigns IDs drawn uniformly without replacement from
// [0, factor·n), modeling the paper's loose (polynomial) naming where
// n' may exceed n. factor must be at least 1.
func (b *Builder) SparseIDs(factor int64, rng *rand.Rand) error {
	n := int64(len(b.ids))
	if factor < 1 {
		return fmt.Errorf("graph: sparse ID factor %d < 1", factor)
	}
	space := factor * n
	used := make(map[int64]struct{}, n)
	for v := range b.ids {
		for {
			id := rng.Int64N(space)
			if _, dup := used[id]; !dup {
				used[id] = struct{}{}
				b.ids[v] = id
				break
			}
		}
	}
	b.nPrime = space
	return nil
}
