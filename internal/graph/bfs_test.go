package graph

import "testing"

func TestBFSDistances(t *testing.T) {
	g, err := Path(5)
	if err != nil {
		t.Fatalf("Path: %v", err)
	}
	d := BFSDistances(g, 0)
	want := []int32{0, 1, 2, 3, 4}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("dist[%d] = %d, want %d", i, d[i], want[i])
		}
	}
	if Dist(g, 1, 4) != 3 || Dist(g, 2, 2) != 0 {
		t.Errorf("Dist wrong: %d, %d", Dist(g, 1, 4), Dist(g, 2, 2))
	}
}

func TestConnectivityAndDiameter(t *testing.T) {
	// Two disjoint edges: disconnected.
	b := NewBuilder(4)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(2, 3)
	g := b.MustBuild()
	if IsConnected(g) {
		t.Fatal("disjoint edges reported connected")
	}
	if Diameter(g) != -1 {
		t.Fatalf("Diameter of disconnected graph = %d, want -1", Diameter(g))
	}
	if d := Dist(g, 0, 3); d != -1 {
		t.Fatalf("Dist across components = %d, want -1", d)
	}
	ring, err := Ring(10)
	if err != nil {
		t.Fatal(err)
	}
	if Diameter(ring) != 5 {
		t.Fatalf("Diameter(C10) = %d, want 5", Diameter(ring))
	}
}

func TestDegreeHistogram(t *testing.T) {
	s, err := Star(6)
	if err != nil {
		t.Fatal(err)
	}
	h := DegreeHistogram(s)
	if h[5] != 1 || h[1] != 5 {
		t.Fatalf("histogram %v, want 1×deg5, 5×deg1", h)
	}
}

func TestPairsAtDistance(t *testing.T) {
	g, err := Path(6)
	if err != nil {
		t.Fatal(err)
	}
	p1 := PairsAtDistance(g, 1, 100)
	if len(p1) != 5 {
		t.Fatalf("got %d adjacent pairs, want 5", len(p1))
	}
	p3 := PairsAtDistance(g, 3, 2)
	if len(p3) != 2 {
		t.Fatalf("got %d pairs at distance 3 with cap 2, want 2", len(p3))
	}
	for _, pr := range p3 {
		if Dist(g, pr[0], pr[1]) != 3 {
			t.Errorf("pair %v not at distance 3", pr)
		}
	}
	if got := PairsAtDistance(g, 0, 5); len(got) != 0 {
		t.Errorf("distance 0 returned %d pairs, want 0", len(got))
	}
}
