// Package baseline implements the reference strategies the paper's
// algorithms are measured against:
//
//   - StayAndSweep: the trivial O(∆) neighborhood sweep the paper's
//     introduction cites as the baseline to beat,
//   - StayAndDFS: rendezvous by full graph exploration (the
//     "existentially optimal" O(n) strategy of §1.1),
//   - StayAndWalk / RandomWalkPair: random-walk rendezvous (meeting
//     time), usable in the KT0 model because they navigate by ports,
//   - BirthdayAgents: the whiteboard birthday-paradox strategy for
//     complete graphs standing in for Anderson–Weber [6], which the
//     paper generalizes.
package baseline

import (
	"fnr/internal/sim"
)

// StayAndSweep returns the trivial O(∆) neighborhood-rendezvous pair:
// agent a stays home; agent b visits each neighbor of its start vertex
// in port order, returning home between visits. If the agents start at
// adjacent vertices, b reaches a within 2·deg(b) rounds. Requires
// neighbor-ID access for the return trips.
func StayAndSweep() (a, b sim.Program) {
	a = Stayer()
	b = func(e *sim.Env) {
		home := e.HereID()
		nbs := make([]int64, len(e.NeighborIDs()))
		copy(nbs, e.NeighborIDs())
		for _, u := range nbs {
			if err := e.MoveToID(u); err != nil {
				panic(err)
			}
			if err := e.MoveToID(home); err != nil {
				panic(err)
			}
		}
		// Distance was not 1 after all; nothing left to try.
	}
	return a, b
}

// Stayer returns a program that waits at its start vertex forever.
func Stayer() sim.Program {
	return func(e *sim.Env) {
		for {
			e.StayFor(1 << 30)
		}
	}
}

// RandomWalker returns a program performing an endless uniform random
// walk by local ports. It works in both KT1 and KT0 runs.
func RandomWalker() sim.Program {
	return func(e *sim.Env) {
		for {
			d := e.Degree()
			if d == 0 {
				e.Stay()
				continue
			}
			if err := e.MoveToPort(e.Rand().IntN(d)); err != nil {
				panic(err)
			}
		}
	}
}

// StayAndWalk returns the wait-for-mommy pair: a stays, b random-walks.
func StayAndWalk() (a, b sim.Program) {
	return Stayer(), RandomWalker()
}

// RandomWalkPair returns two independent random walkers.
func RandomWalkPair() (a, b sim.Program) {
	return RandomWalker(), RandomWalker()
}

// StayAndDFS returns the graph-exploration pair: a stays, b explores
// the whole graph depth-first using neighbor IDs, visiting every
// reachable vertex within 2(n−1) moves. This is the §1.1
// exploration-based strategy that is existentially optimal (Θ(n)) but
// oblivious to the initial distance.
func StayAndDFS() (a, b sim.Program) {
	return Stayer(), DFSExplorer()
}

// DFSExplorer returns a program that walks a depth-first traversal of
// the graph (requires neighbor-ID access) and halts when every
// reachable vertex has been visited.
func DFSExplorer() sim.Program {
	return func(e *sim.Env) {
		visited := map[int64]bool{e.HereID(): true}
		var path []int64 // vertex IDs from the root to the parent of the current vertex
		for {
			next := int64(-1)
			for _, u := range e.NeighborIDs() {
				if !visited[u] {
					next = u
					break
				}
			}
			if next >= 0 {
				visited[next] = true
				path = append(path, e.HereID())
				if err := e.MoveToID(next); err != nil {
					panic(err)
				}
				continue
			}
			if len(path) == 0 {
				return // traversal complete
			}
			parent := path[len(path)-1]
			path = path[:len(path)-1]
			if err := e.MoveToID(parent); err != nil {
				panic(err)
			}
		}
	}
}

// BirthdayAgents returns the complete-graph whiteboard strategy that
// stands in for Anderson–Weber [6]: agent b repeatedly marks a uniform
// closed neighbor with its start ID; agent a repeatedly probes a
// uniform closed neighbor and, on finding the mark, moves to b's start
// vertex and waits. On K_n both closed neighborhoods are V, giving the
// O(√n)-expected-round birthday bound the paper cites. Requires
// whiteboards and neighbor-ID access.
func BirthdayAgents() (a, b sim.Program) {
	a = func(e *sim.Env) {
		home := e.HereID()
		np := make([]int64, 0, e.Degree()+1)
		np = append(np, home)
		np = append(np, e.NeighborIDs()...)
		rng := e.Rand()
		for {
			v := np[rng.IntN(len(np))]
			if v != home {
				if err := e.MoveToID(v); err != nil {
					panic(err)
				}
			}
			mark := e.Whiteboard()
			if v != home {
				if err := e.MoveToID(home); err != nil {
					panic(err)
				}
			}
			if mark == sim.NoMark || mark == home {
				continue
			}
			if err := e.MoveToID(mark); err != nil {
				continue // mark not adjacent; not ours to chase
			}
			for {
				e.Stay()
			}
		}
	}
	b = func(e *sim.Env) {
		home := e.HereID()
		np := make([]int64, 0, e.Degree()+1)
		np = append(np, home)
		np = append(np, e.NeighborIDs()...)
		rng := e.Rand()
		for {
			u := np[rng.IntN(len(np))]
			if u == home {
				if err := e.WriteWhiteboard(home); err != nil {
					panic(err)
				}
				e.Stay()
				continue
			}
			if err := e.MoveToID(u); err != nil {
				panic(err)
			}
			if err := e.WriteWhiteboard(home); err != nil {
				panic(err)
			}
			if err := e.MoveToID(home); err != nil {
				panic(err)
			}
		}
	}
	return a, b
}
