package baseline

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"fnr/internal/graph"
	"fnr/internal/sim"
)

func TestStayAndSweepMeetsWithinTwoDelta(t *testing.T) {
	cases := []struct {
		name string
		gen  func() (*graph.Graph, error)
	}{
		{"K16", func() (*graph.Graph, error) { return graph.Complete(16) }},
		{"C12", func() (*graph.Graph, error) { return graph.Ring(12) }},
		{"Q5", func() (*graph.Graph, error) { return graph.Hypercube(5) }},
		{"planted", func() (*graph.Graph, error) {
			return graph.PlantedMinDegree(100, 20, rand.New(rand.NewPCG(1, 2)))
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, err := tc.gen()
			if err != nil {
				t.Fatal(err)
			}
			pairs := graph.PairsAtDistance(g, 1, 3)
			for _, pr := range pairs {
				a, b := StayAndSweep()
				res, err := sim.Run(sim.Config{
					Graph: g, StartA: pr[0], StartB: pr[1],
					NeighborIDs: true, MaxRounds: int64(4*g.MaxDegree() + 8),
				}, a, b)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Met {
					t.Fatalf("sweep failed from %v", pr)
				}
				if res.MeetRound > int64(2*g.MaxDegree()) {
					t.Fatalf("sweep took %d rounds, want ≤ 2∆ = %d", res.MeetRound, 2*g.MaxDegree())
				}
			}
		})
	}
}

func TestStayAndDFSMeetsAtAnyDistance(t *testing.T) {
	g, err := graph.Grid(6, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []int32{1, 3, 7} {
		pairs := graph.PairsAtDistance(g, d, 1)
		if len(pairs) == 0 {
			t.Fatalf("no pairs at distance %d", d)
		}
		a, b := StayAndDFS()
		res, err := sim.Run(sim.Config{
			Graph: g, StartA: pairs[0][0], StartB: pairs[0][1],
			NeighborIDs: true, MaxRounds: int64(4 * g.N()),
		}, a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Met {
			t.Fatalf("DFS failed at distance %d", d)
		}
		if res.MeetRound > int64(2*g.N()) {
			t.Fatalf("DFS took %d rounds, want ≤ 2n = %d", res.MeetRound, 2*g.N())
		}
	}
}

func TestDFSVisitsEverything(t *testing.T) {
	// Track coverage via an observer on a solo run.
	g, err := graph.PlantedMinDegree(60, 6, rand.New(rand.NewPCG(3, 4)))
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[graph.Vertex]bool)
	_, err = sim.Run(sim.Config{
		Graph: g, StartA: 0, StartB: 0,
		NeighborIDs: true, MaxRounds: int64(4 * g.N()), DisableMeeting: true,
		Observer: func(ev sim.RoundEvent) { seen[ev.PosA] = true },
	}, DFSExplorer(), func(e *sim.Env) {})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != g.N() {
		t.Fatalf("DFS visited %d of %d vertices", len(seen), g.N())
	}
}

func TestRandomWalksWorkInKT0(t *testing.T) {
	g, err := graph.Complete(12)
	if err != nil {
		t.Fatal(err)
	}
	a, b := RandomWalkPair()
	res, err := sim.Run(sim.Config{
		Graph: g, StartA: 0, StartB: 5,
		NeighborIDs: false, // KT0: walkers navigate by ports only
		Seed:        11,
	}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met {
		t.Fatal("random walkers never met on K12")
	}
}

func TestStayAndWalkMeets(t *testing.T) {
	g, err := graph.Ring(16)
	if err != nil {
		t.Fatal(err)
	}
	a, b := StayAndWalk()
	res, err := sim.Run(sim.Config{
		Graph: g, StartA: 0, StartB: 1, Seed: 3,
	}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met {
		t.Fatal("walker never hit the stayer")
	}
}

func TestBirthdayOnComplete(t *testing.T) {
	g, err := graph.Complete(64)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(0); seed < 5; seed++ {
		a, b := BirthdayAgents()
		res, err := sim.Run(sim.Config{
			Graph: g, StartA: 0, StartB: 1,
			NeighborIDs: true, Whiteboards: true, Seed: seed,
			MaxRounds: 1 << 20,
		}, a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Met {
			t.Fatalf("seed %d: birthday strategy failed on K64", seed)
		}
	}
}

// Property: the sweep baseline always meets within 2∆ from any adjacent
// pair on random planted graphs.
func TestSweepProperty(t *testing.T) {
	check := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 17))
		g, err := graph.PlantedMinDegree(40+int(seed%40), 5, rng)
		if err != nil {
			return false
		}
		pairs := graph.PairsAtDistance(g, 1, 1)
		a, b := StayAndSweep()
		res, err := sim.Run(sim.Config{
			Graph: g, StartA: pairs[0][0], StartB: pairs[0][1],
			NeighborIDs: true, Seed: seed, MaxRounds: int64(4*g.MaxDegree() + 8),
		}, a, b)
		return err == nil && res.Met && res.MeetRound <= int64(2*g.MaxDegree())
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestRandomWalkerOnIsolatedVertex(t *testing.T) {
	// Degree-0 vertices must not crash the walker; it just waits.
	ids := []int64{0, 1, 2}
	adj := [][]graph.Vertex{{}, {2}, {1}}
	g, err := graph.FromAdjacency(ids, adj, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Config{
		Graph: g, StartA: 0, StartB: 1, MaxRounds: 20,
	}, RandomWalker(), Stayer())
	if err != nil {
		t.Fatal(err)
	}
	if res.Met {
		t.Fatal("isolated walker cannot reach the stayer")
	}
	if res.A.Stays != 20 {
		t.Fatalf("isolated walker stays = %d, want 20", res.A.Stays)
	}
}
