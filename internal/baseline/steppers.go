package baseline

// This file holds the stepper (state-machine) forms of the baseline
// strategies, used by the engine's goroutine-free fast path. Each
// stepper is behaviorally identical to its Program counterpart in
// baseline.go — same action sequence, same RNG draw order — so trial
// results are byte-identical on either path (the differential suite
// in internal/engine enforces this). When changing a strategy, change
// both forms.

import (
	"errors"
	"fmt"
	"math/rand/v2"

	"fnr/internal/sim"
)

// errNotAdjacent mirrors the Program forms' panic on an impossible
// MoveToID: the run errors out rather than silently diverging.
func errNotAdjacent(v *sim.View, id int64) error {
	return fmt.Errorf("baseline stepper at vertex %d has no neighbor with ID %d", v.HereID, id)
}

// StayerStepper returns the stepper form of Stayer: it waits at its
// start vertex forever in fast-forwardable bulk stays.
func StayerStepper() sim.Stepper { return stayerStepper{} }

type stayerStepper struct{}

func (stayerStepper) Init(*sim.StepContext) {}

func (stayerStepper) Reset(*sim.StepContext) {}

func (stayerStepper) Next(*sim.View) sim.Action { return sim.StayFor(1 << 30) }

// SweepStepper returns the stepper form of StayAndSweep's agent b: it
// visits each neighbor of its start vertex in port order, returning
// home between visits, then halts.
func SweepStepper() sim.Stepper { return &sweepStepper{} }

type sweepStepper struct {
	started   bool
	home      int64
	nbs       []int64
	i         int
	returning bool
}

func (s *sweepStepper) Init(*sim.StepContext) {}

// Reset re-arms the sweep for another trial, keeping the grown
// neighbor buffer (lane reuse contract).
func (s *sweepStepper) Reset(*sim.StepContext) { *s = sweepStepper{nbs: s.nbs[:0]} }

func (s *sweepStepper) Next(v *sim.View) sim.Action {
	if !s.started {
		s.started = true
		s.home = v.HereID
		s.nbs = append(s.nbs, v.NeighborIDs...)
	}
	if s.i >= len(s.nbs) {
		// Distance was not 1 after all; nothing left to try.
		return sim.Halt()
	}
	if !s.returning {
		// nbs is home's neighbor list in port order, so sweep target i
		// sits behind port i.
		s.returning = true
		return sim.Move(s.i)
	}
	p, ok := v.PortOfID(s.home)
	if !ok {
		return sim.Abort(errNotAdjacent(v, s.home))
	}
	s.returning = false
	s.i++
	return sim.Move(p)
}

// RandomWalkerStepper returns the stepper form of RandomWalker: an
// endless uniform random walk by local ports (KT0-capable).
func RandomWalkerStepper() sim.Stepper { return &randomWalkerStepper{} }

type randomWalkerStepper struct {
	rng *rand.Rand
}

func (s *randomWalkerStepper) Init(ctx *sim.StepContext) { s.rng = ctx.Rand }

func (s *randomWalkerStepper) Reset(ctx *sim.StepContext) { s.rng = ctx.Rand }

func (s *randomWalkerStepper) Next(v *sim.View) sim.Action {
	if v.Degree == 0 {
		return sim.Stay()
	}
	return sim.Move(s.rng.IntN(v.Degree))
}

// DFSStepper returns the stepper form of DFSExplorer: a depth-first
// traversal of the graph by neighbor IDs, halting when every reachable
// vertex has been visited.
func DFSStepper() sim.Stepper { return &dfsStepper{} }

type dfsStepper struct {
	started bool
	visited map[int64]bool
	path    []int64 // vertex IDs from the root to the parent of the current vertex
}

func (s *dfsStepper) Init(*sim.StepContext) {}

// Reset re-arms the traversal for another trial, keeping the visited
// map's buckets and the path's capacity (lane reuse contract).
func (s *dfsStepper) Reset(*sim.StepContext) {
	s.started = false
	clear(s.visited)
	s.path = s.path[:0]
}

func (s *dfsStepper) Next(v *sim.View) sim.Action {
	if !s.started {
		s.started = true
		if s.visited == nil {
			s.visited = make(map[int64]bool)
		}
		s.visited[v.HereID] = true
	}
	next := int64(-1)
	for _, u := range v.NeighborIDs {
		if !s.visited[u] {
			next = u
			break
		}
	}
	if next >= 0 {
		s.visited[next] = true
		s.path = append(s.path, v.HereID)
		p, ok := v.PortOfID(next)
		if !ok {
			return sim.Abort(errNotAdjacent(v, next))
		}
		return sim.Move(p)
	}
	if len(s.path) == 0 {
		return sim.Halt() // traversal complete
	}
	parent := s.path[len(s.path)-1]
	s.path = s.path[:len(s.path)-1]
	p, ok := v.PortOfID(parent)
	if !ok {
		return sim.Abort(errNotAdjacent(v, parent))
	}
	return sim.Move(p)
}

// BirthdayStepperA returns the stepper form of BirthdayAgents' agent
// a: repeatedly probe a uniform closed neighbor for a mark and chase
// it when found. The RNG draw sequence matches the Program form
// exactly, including the zero-round retries when the draw is the home
// vertex.
func BirthdayStepperA() sim.Stepper { return &birthdayStepperA{} }

type birthdayStepperA struct {
	rng     *rand.Rand
	boards  bool
	started bool
	home    int64
	np      []int64
	state   birthdayAState
	mark    int64 // whiteboard value read at the probed vertex
}

type birthdayAState uint8

const (
	birthdayAChoose birthdayAState = iota // at home, pick the next probe
	birthdayAProbe                        // arrived at the probed neighbor
	birthdayACheck                        // back home, act on the mark read remotely
	birthdayAWait                         // co-located with b's start; wait forever
)

func (s *birthdayStepperA) Init(ctx *sim.StepContext) {
	s.rng = ctx.Rand
	s.boards = ctx.Whiteboards
}

// Reset re-arms the machine for another trial, keeping the grown
// closed-neighborhood buffer (lane reuse contract).
func (s *birthdayStepperA) Reset(ctx *sim.StepContext) {
	*s = birthdayStepperA{np: s.np[:0]}
	s.Init(ctx)
}

func (s *birthdayStepperA) Next(v *sim.View) sim.Action {
	if !s.started {
		if !s.boards {
			return sim.Abort(errors.New("birthday strategy in a whiteboard-free run"))
		}
		s.started = true
		s.home = v.HereID
		s.np = append(s.np[:0], s.home)
		s.np = append(s.np, v.NeighborIDs...)
	}
	switch s.state {
	case birthdayAProbe:
		// Read the mark here, then head home; the decision happens on
		// arrival (birthdayACheck), as in the Program form.
		s.mark = v.Whiteboard
		p, ok := v.PortOfID(s.home)
		if !ok {
			return sim.Abort(errNotAdjacent(v, s.home))
		}
		s.state = birthdayACheck
		return sim.Move(p)
	case birthdayAWait:
		return sim.Stay()
	case birthdayACheck:
		if s.mark != sim.NoMark && s.mark != s.home {
			if p, ok := v.PortOfID(s.mark); ok {
				s.state = birthdayAWait
				return sim.Move(p)
			}
			// Mark not adjacent; not ours to chase.
		}
		s.state = birthdayAChoose
	}
	// birthdayAChoose: draw closed neighbors until one costs a round,
	// mirroring the Program form's zero-round retry loop (home draws
	// that read an unchaseable mark consume no rounds). np is home
	// followed by the neighbors in port order, so a drawn index j ≥ 1
	// is the neighbor behind port j-1 — no ID lookup.
	for {
		j := s.rng.IntN(len(s.np))
		if pick := s.np[j]; pick != s.home {
			s.state = birthdayAProbe
			return sim.Move(j - 1)
		}
		mark := v.Whiteboard
		if mark == sim.NoMark || mark == s.home {
			continue
		}
		if p, ok := v.PortOfID(mark); ok {
			s.state = birthdayAWait
			return sim.Move(p)
		}
	}
}

// BirthdayStepperB returns the stepper form of BirthdayAgents' agent
// b: repeatedly mark a uniform closed neighbor with its start ID.
func BirthdayStepperB() sim.Stepper { return &birthdayStepperB{} }

type birthdayStepperB struct {
	rng     *rand.Rand
	boards  bool
	started bool
	home    int64
	np      []int64
	away    bool // at the marked neighbor, heading home next
}

func (s *birthdayStepperB) Init(ctx *sim.StepContext) {
	s.rng = ctx.Rand
	s.boards = ctx.Whiteboards
}

// Reset re-arms the machine for another trial, keeping the grown
// closed-neighborhood buffer (lane reuse contract).
func (s *birthdayStepperB) Reset(ctx *sim.StepContext) {
	*s = birthdayStepperB{np: s.np[:0]}
	s.Init(ctx)
}

func (s *birthdayStepperB) Next(v *sim.View) sim.Action {
	if !s.started {
		if !s.boards {
			return sim.Abort(errors.New("birthday strategy in a whiteboard-free run"))
		}
		s.started = true
		s.home = v.HereID
		s.np = append(s.np[:0], s.home)
		s.np = append(s.np, v.NeighborIDs...)
	}
	if s.away {
		// Mark commits together with the move home, exactly like the
		// Program form's staged WriteWhiteboard before MoveToID(home).
		p, ok := v.PortOfID(s.home)
		if !ok {
			return sim.Abort(errNotAdjacent(v, s.home))
		}
		s.away = false
		return sim.Move(p).WithWrite(s.home)
	}
	// np is home followed by the neighbors in port order: index j ≥ 1
	// is the neighbor behind port j-1.
	j := s.rng.IntN(len(s.np))
	if s.np[j] == s.home {
		return sim.Stay().WithWrite(s.home)
	}
	s.away = true
	return sim.Move(j - 1)
}
