package baseline

import (
	"fnr/internal/algo"
	"fnr/internal/sim"
)

// The baselines self-register with the strategy registry; importing
// this package (blank imports included) is enough to make them
// resolvable by name. Orders 2–6 preserve the historical
// fnr.Algorithm constant values. Every baseline registers three
// forms: Build (direct-style programs, the goroutine path),
// BuildSteppers (the native state machines of steppers.go, the
// engine's fast path), and BuildTeam — the baselines are all
// oblivious, so the k-agent generalization is agent 0 in the a-role
// and agents 1..k-1 each running an independent copy of the b-role
// (for walkpair, k independent walkers; the roles coincide).
func init() {
	pair := func(f func() (sim.Program, sim.Program)) func(algo.BuildOpts) (sim.Program, sim.Program, error) {
		return func(algo.BuildOpts) (sim.Program, sim.Program, error) {
			a, b := f()
			return a, b, nil
		}
	}
	steppers := func(fa, fb func() sim.Stepper) func(algo.BuildOpts) (sim.Stepper, sim.Stepper, error) {
		return func(algo.BuildOpts) (sim.Stepper, sim.Stepper, error) {
			return fa(), fb(), nil
		}
	}
	team := func(fa, fb func() sim.Stepper) func(algo.BuildOpts, int) ([]sim.Stepper, error) {
		return func(_ algo.BuildOpts, k int) ([]sim.Stepper, error) {
			out := make([]sim.Stepper, 0, k)
			out = append(out, fa())
			for i := 1; i < k; i++ {
				out = append(out, fb())
			}
			return out, nil
		}
	}
	algo.Register(algo.Spec{
		Name:          "sweep",
		Order:         2,
		Summary:       "trivial O(∆) baseline: a waits, b sweeps its neighborhood in port order",
		Caps:          algo.Caps{NeighborIDs: true},
		Build:         pair(StayAndSweep),
		BuildSteppers: steppers(StayerStepper, SweepStepper),
		BuildTeam:     team(StayerStepper, SweepStepper),
	})
	algo.Register(algo.Spec{
		Name:          "dfs",
		Order:         3,
		Summary:       "full-exploration baseline: a waits, b walks a DFS traversal of the graph",
		Caps:          algo.Caps{NeighborIDs: true},
		Build:         pair(StayAndDFS),
		BuildSteppers: steppers(StayerStepper, DFSStepper),
		BuildTeam:     team(StayerStepper, DFSStepper),
	})
	algo.Register(algo.Spec{
		Name:          "staywalk",
		Order:         4,
		Summary:       "a waits, b random-walks by ports (KT0-capable)",
		Build:         pair(StayAndWalk),
		BuildSteppers: steppers(StayerStepper, RandomWalkerStepper),
		BuildTeam:     team(StayerStepper, RandomWalkerStepper),
	})
	algo.Register(algo.Spec{
		Name:          "walkpair",
		Order:         5,
		Summary:       "two independent random walkers (KT0-capable)",
		Build:         pair(RandomWalkPair),
		BuildSteppers: steppers(RandomWalkerStepper, RandomWalkerStepper),
		BuildTeam:     team(RandomWalkerStepper, RandomWalkerStepper),
	})
	algo.Register(algo.Spec{
		Name:          "birthday",
		Order:         6,
		Summary:       "complete-graph whiteboard birthday strategy (Anderson–Weber stand-in)",
		Caps:          algo.Caps{NeighborIDs: true, Whiteboards: true},
		Build:         pair(BirthdayAgents),
		BuildSteppers: steppers(BirthdayStepperA, BirthdayStepperB),
		BuildTeam:     team(BirthdayStepperA, BirthdayStepperB),
	})
}
