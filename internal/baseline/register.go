package baseline

import (
	"fnr/internal/algo"
	"fnr/internal/sim"
)

// The baselines self-register with the strategy registry; importing
// this package (blank imports included) is enough to make them
// resolvable by name. Orders 2–6 preserve the historical
// fnr.Algorithm constant values.
func init() {
	pair := func(f func() (sim.Program, sim.Program)) func(algo.BuildOpts) (sim.Program, sim.Program, error) {
		return func(algo.BuildOpts) (sim.Program, sim.Program, error) {
			a, b := f()
			return a, b, nil
		}
	}
	algo.Register(algo.Spec{
		Name:    "sweep",
		Order:   2,
		Summary: "trivial O(∆) baseline: a waits, b sweeps its neighborhood in port order",
		Caps:    algo.Caps{NeighborIDs: true},
		Build:   pair(StayAndSweep),
	})
	algo.Register(algo.Spec{
		Name:    "dfs",
		Order:   3,
		Summary: "full-exploration baseline: a waits, b walks a DFS traversal of the graph",
		Caps:    algo.Caps{NeighborIDs: true},
		Build:   pair(StayAndDFS),
	})
	algo.Register(algo.Spec{
		Name:    "staywalk",
		Order:   4,
		Summary: "a waits, b random-walks by ports (KT0-capable)",
		Build:   pair(StayAndWalk),
	})
	algo.Register(algo.Spec{
		Name:    "walkpair",
		Order:   5,
		Summary: "two independent random walkers (KT0-capable)",
		Build:   pair(RandomWalkPair),
	})
	algo.Register(algo.Spec{
		Name:    "birthday",
		Order:   6,
		Summary: "complete-graph whiteboard birthday strategy (Anderson–Weber stand-in)",
		Caps:    algo.Caps{NeighborIDs: true, Whiteboards: true},
		Build:   pair(BirthdayAgents),
	})
}
