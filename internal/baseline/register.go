package baseline

import (
	"fnr/internal/algo"
	"fnr/internal/sim"
)

// The baselines self-register with the strategy registry; importing
// this package (blank imports included) is enough to make them
// resolvable by name. Orders 2–6 preserve the historical
// fnr.Algorithm constant values. Every baseline registers both forms:
// Build (direct-style programs, the goroutine path) and BuildSteppers
// (the native state machines of steppers.go, the engine's fast path).
func init() {
	pair := func(f func() (sim.Program, sim.Program)) func(algo.BuildOpts) (sim.Program, sim.Program, error) {
		return func(algo.BuildOpts) (sim.Program, sim.Program, error) {
			a, b := f()
			return a, b, nil
		}
	}
	steppers := func(fa, fb func() sim.Stepper) func(algo.BuildOpts) (sim.Stepper, sim.Stepper, error) {
		return func(algo.BuildOpts) (sim.Stepper, sim.Stepper, error) {
			return fa(), fb(), nil
		}
	}
	algo.Register(algo.Spec{
		Name:          "sweep",
		Order:         2,
		Summary:       "trivial O(∆) baseline: a waits, b sweeps its neighborhood in port order",
		Caps:          algo.Caps{NeighborIDs: true},
		Build:         pair(StayAndSweep),
		BuildSteppers: steppers(StayerStepper, SweepStepper),
	})
	algo.Register(algo.Spec{
		Name:          "dfs",
		Order:         3,
		Summary:       "full-exploration baseline: a waits, b walks a DFS traversal of the graph",
		Caps:          algo.Caps{NeighborIDs: true},
		Build:         pair(StayAndDFS),
		BuildSteppers: steppers(StayerStepper, DFSStepper),
	})
	algo.Register(algo.Spec{
		Name:          "staywalk",
		Order:         4,
		Summary:       "a waits, b random-walks by ports (KT0-capable)",
		Build:         pair(StayAndWalk),
		BuildSteppers: steppers(StayerStepper, RandomWalkerStepper),
	})
	algo.Register(algo.Spec{
		Name:          "walkpair",
		Order:         5,
		Summary:       "two independent random walkers (KT0-capable)",
		Build:         pair(RandomWalkPair),
		BuildSteppers: steppers(RandomWalkerStepper, RandomWalkerStepper),
	})
	algo.Register(algo.Spec{
		Name:          "birthday",
		Order:         6,
		Summary:       "complete-graph whiteboard birthday strategy (Anderson–Weber stand-in)",
		Caps:          algo.Caps{NeighborIDs: true, Whiteboards: true},
		Build:         pair(BirthdayAgents),
		BuildSteppers: steppers(BirthdayStepperA, BirthdayStepperB),
	})
}
