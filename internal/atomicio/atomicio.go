// Package atomicio writes files all-or-nothing: content lands in a
// temporary file in the destination's directory, is fsynced, and is
// renamed over the destination in one step. A writer killed at any
// point — including kill -9 mid-write — leaves either the old file
// or the new one, never a torn hybrid, which is the property the
// checkpoint journal and every result artifact (graphs, benchmark
// JSON) rely on: a reader must never half-parse a half-written file.
package atomicio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFile writes the file at path atomically: write produces the
// content into a temp file in path's directory, which is then synced
// and renamed onto path. On any error the temp file is removed and
// the destination is untouched.
func WriteFile(path string, write func(w io.Writer) error) (err error) {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = write(tmp); err != nil {
		return err
	}
	// Sync before rename: the rename must never become visible ahead
	// of the bytes it names (a crash right after an unsynced rename
	// can resurface as an empty or partial "new" file).
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	return nil
}
