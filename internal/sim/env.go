package sim

import (
	"fmt"
	"math/rand/v2"
)

// Program is an agent algorithm written in direct style against an Env.
// Under Run the program gets its own goroutine and every Env movement
// call costs exactly one simulated round, blocking until the runtime
// advances; under NewProgramStepper the same function runs on a
// coroutine inside the stepper fast path. Returning from the program
// halts the agent at its current vertex (equivalent to Halt).
type Program func(e *Env)

// Env is an agent's handle onto the simulation: its view of the current
// vertex and the actions it may take. An Env is only valid inside the
// Program it was passed to and must not be shared across goroutines.
type Env struct {
	name    AgentName
	nPrime  int64
	kt1     bool
	boards  bool
	rng     *rand.Rand
	scratch *AgentScratch
	// Channel transport (goroutine-backed adapter); nil in pull mode.
	viewCh  <-chan View
	actCh   chan<- Action
	done    <-chan struct{}
	cur     View
	haveCur bool
	// Coroutine transport (pull adapter); nil in channel mode.
	pull    *pullProgramStepper
	staged  bool  // staged whiteboard write
	stagedV int64 // value of the staged write
}

// control-flow sentinels for unwinding agent goroutines/coroutines.
type ctrlSignal uint8

const (
	haltSignal ctrlSignal = iota // program called Halt
	stopSignal                   // runtime shut down under the program
)

// Name returns which agent this program is running as.
func (e *Env) Name() AgentName { return e.name }

// NPrime returns the ID-space bound n' known to agents (paper §2.1).
func (e *Env) NPrime() int64 { return e.nPrime }

// Rand returns the agent's private deterministic random stream.
func (e *Env) Rand() *rand.Rand { return e.rng }

// Scratch returns the agent's reusable scratch slot on the driving
// trial context, or nil when the runtime offers no cross-trial reuse.
// See AgentScratch for the contract.
func (e *Env) Scratch() *AgentScratch { return e.scratch }

// HasNeighborIDs reports whether the run grants access to neighborhood
// IDs (the KT1-style assumption).
func (e *Env) HasNeighborIDs() bool { return e.kt1 }

// HasWhiteboards reports whether the run provides whiteboards.
func (e *Env) HasWhiteboards() bool { return e.boards }

// Round returns the current round number.
func (e *Env) Round() int64 { return e.view().Round }

// HereID returns the ID of the agent's current vertex.
func (e *Env) HereID() int64 { return e.view().HereID }

// Degree returns the degree of the current vertex.
func (e *Env) Degree() int { return e.view().Degree }

// NeighborIDs returns the IDs of the current vertex's neighbors in
// local port order, or nil in KT0 mode. The slice is shared with the
// runtime (zero-copy from the graph) and must be treated as strictly
// read-only and valid only until the next movement call; copy it to
// retain it.
func (e *Env) NeighborIDs() []int64 { return e.view().NeighborIDs }

// Whiteboard returns the whiteboard content of the current vertex as of
// the beginning of the round (NoMark if empty or disabled).
func (e *Env) Whiteboard() int64 { return e.view().Whiteboard }

// WriteWhiteboard stages a write of v to the current vertex's
// whiteboard; it commits together with the agent's next action this
// round, matching the formal model where the algorithm's output is
// (state, move, whiteboard content). It returns an error if the run has
// no whiteboards.
func (e *Env) WriteWhiteboard(v int64) error {
	if !e.boards {
		return fmt.Errorf("sim: agent %s wrote a whiteboard in a whiteboard-free run", e.name)
	}
	e.staged = true
	e.stagedV = v
	return nil
}

// Stay spends one round at the current vertex.
func (e *Env) Stay() { e.StayFor(1) }

// StayFor spends k rounds at the current vertex. k ≤ 0 is a no-op. The
// runtime fast-forwards overlapping waits, so large k is cheap.
func (e *Env) StayFor(k int64) {
	if k <= 0 {
		return
	}
	e.step(Action{kind: actStay, wait: k})
}

// WaitUntilRound stays until the global round counter reaches r (a
// no-op if r is not in the future). Used for the paper's barrier
// synchronization in Rendezvous-without-Whiteboards.
func (e *Env) WaitUntilRound(r int64) {
	now := e.view().Round
	if r > now {
		e.StayFor(r - now)
	}
}

// MoveToPort crosses the edge behind local port p (one round).
func (e *Env) MoveToPort(p int) error {
	if p < 0 || p >= e.view().Degree {
		return fmt.Errorf("sim: agent %s moving through port %d of a degree-%d vertex", e.name, p, e.view().Degree)
	}
	e.step(Action{kind: actMove, port: p})
	return nil
}

// MoveToID crosses the edge to the neighbor with the given ID (one
// round). It requires neighbor-ID access and adjacency; otherwise it
// returns an error and the agent does not move.
func (e *Env) MoveToID(id int64) error {
	if !e.kt1 {
		return fmt.Errorf("sim: agent %s used MoveToID without neighbor-ID access", e.name)
	}
	if p, ok := e.view().PortOfID(id); ok {
		e.step(Action{kind: actMove, port: p})
		return nil
	}
	return fmt.Errorf("sim: agent %s at vertex %d has no neighbor with ID %d", e.name, e.view().HereID, id)
}

// Halt stops the agent at its current vertex permanently. It does not
// return.
func (e *Env) Halt() {
	panic(haltSignal)
}

// view returns the current round's observation, blocking for the
// runtime if the previous action consumed it.
func (e *Env) view() *View {
	if e.pull != nil {
		return e.pull.cur
	}
	if !e.haveCur {
		select {
		case v := <-e.viewCh:
			e.cur = v
			e.haveCur = true
		case <-e.done:
			panic(stopSignal)
		}
	}
	return &e.cur
}

// step submits an action (attaching any staged whiteboard write) and
// marks the current view stale.
func (e *Env) step(act Action) {
	// Ensure the round's view was produced before acting, so that a
	// channel-mode runtime is in its receive state.
	e.view()
	if e.staged {
		act.write = true
		act.writeVal = e.stagedV
		e.staged = false
	}
	if e.pull != nil {
		if !e.pull.yield(act) {
			panic(stopSignal)
		}
		return
	}
	e.haveCur = false
	select {
	case e.actCh <- act:
	case <-e.done:
		panic(stopSignal)
	}
}

// exitAction maps a program's exit cause (the value recovered at its
// top frame) to the final action reported to the runtime; ok=false
// means a silent shutdown-driven exit.
func exitAction(r any) (Action, bool) {
	switch r {
	case nil, haltSignal:
		return Action{kind: actHalt}, true
	case stopSignal:
		return Action{}, false
	default:
		return Action{kind: actPanic, err: fmt.Errorf("program panic: %v", r)}, true
	}
}

// chanProgramStepper hosts a Program on its own goroutine and bridges
// it to the stepper runtime with a pair of unbuffered channels — the
// classic "goroutine path". Every acting round costs two channel
// handoffs; batch callers wanting the fast path use the coroutine
// adapter (NewProgramStepper) or a native Stepper instead.
type chanProgramStepper struct {
	prog    Program
	env     *Env
	viewCh  chan View
	actCh   chan Action
	done    chan struct{}
	exited  chan struct{}
	started bool
}

func newChanProgramStepper(prog Program) *chanProgramStepper {
	return &chanProgramStepper{
		prog:   prog,
		viewCh: make(chan View),
		actCh:  make(chan Action),
		done:   make(chan struct{}),
		exited: make(chan struct{}),
	}
}

// Init launches the agent goroutine. The program begins executing
// immediately but blocks on its first observation until the runtime
// delivers the round-0 view.
func (ps *chanProgramStepper) Init(ctx *StepContext) {
	ps.env = &Env{
		name:    ctx.Name,
		nPrime:  ctx.NPrime,
		kt1:     ctx.NeighborIDs,
		boards:  ctx.Whiteboards,
		rng:     ctx.Rand,
		scratch: ctx.Scratch,
		viewCh:  ps.viewCh,
		actCh:   ps.actCh,
		done:    ps.done,
	}
	ps.started = true
	go func() {
		defer close(ps.exited)
		defer func() {
			act, ok := exitAction(recover())
			if !ok {
				return // runtime is shutting down; exit silently
			}
			select {
			case ps.actCh <- act:
			case <-ps.done:
			}
		}()
		ps.prog(ps.env)
	}()
}

// Next delivers the current view to the agent and collects its action.
// If the agent already produced an action without consuming a view
// (e.g. it halted right after its previous move), the stale view is
// discarded.
func (ps *chanProgramStepper) Next(v *View) Action {
	select {
	case ps.viewCh <- *v:
		return <-ps.actCh
	case act := <-ps.actCh:
		return act
	}
}

// Finish tears the agent goroutine down (idempotent, safe before
// Init) — the Finisher hook the runtime calls on every exit path.
func (ps *chanProgramStepper) Finish() {
	select {
	case <-ps.done:
	default:
		close(ps.done)
	}
	if ps.started {
		<-ps.exited
	}
}
