package sim

import (
	"fmt"
	"math/rand/v2"

	"fnr/internal/graph"
)

// Program is an agent algorithm written in direct style against an Env.
// The runtime runs it on its own goroutine; every Env movement call
// costs exactly one simulated round and blocks until the runtime
// advances. Returning from the program halts the agent at its current
// vertex (equivalent to Halt).
type Program func(e *Env)

// Env is an agent's handle onto the simulation: its view of the current
// vertex and the actions it may take. An Env is only valid inside the
// Program it was passed to and must not be shared across goroutines.
type Env struct {
	name    AgentName
	nPrime  int64
	kt1     bool
	boards  bool
	rng     *rand.Rand
	viewCh  <-chan view
	actCh   chan<- action
	done    <-chan struct{}
	cur     view
	haveCur bool
	staged  bool  // staged whiteboard write
	stagedV int64 // value of the staged write
}

// view is the per-round observation handed to an agent.
type view struct {
	round      int64
	hereID     int64
	degree     int
	neighborID []int64 // shared buffer, only valid for the round; nil in KT0
	whiteboard int64
}

type actionKind uint8

const (
	actStay actionKind = iota
	actMove
	actHalt
	actPanic
)

type action struct {
	kind     actionKind
	port     int   // actMove
	wait     int64 // actStay: total rounds to spend staying (≥ 1)
	write    bool  // commit a whiteboard write at the current vertex
	writeVal int64
	err      error // actPanic
}

// control-flow sentinels for unwinding agent goroutines.
type ctrlSignal uint8

const (
	haltSignal ctrlSignal = iota // program called Halt
	stopSignal                   // runtime shut down under the program
)

// Name returns which agent this program is running as.
func (e *Env) Name() AgentName { return e.name }

// NPrime returns the ID-space bound n' known to agents (paper §2.1).
func (e *Env) NPrime() int64 { return e.nPrime }

// Rand returns the agent's private deterministic random stream.
func (e *Env) Rand() *rand.Rand { return e.rng }

// HasNeighborIDs reports whether the run grants access to neighborhood
// IDs (the KT1-style assumption).
func (e *Env) HasNeighborIDs() bool { return e.kt1 }

// HasWhiteboards reports whether the run provides whiteboards.
func (e *Env) HasWhiteboards() bool { return e.boards }

// Round returns the current round number.
func (e *Env) Round() int64 { return e.view().round }

// HereID returns the ID of the agent's current vertex.
func (e *Env) HereID() int64 { return e.view().hereID }

// Degree returns the degree of the current vertex.
func (e *Env) Degree() int { return e.view().degree }

// NeighborIDs returns the IDs of the current vertex's neighbors in
// local port order, or nil in KT0 mode. The slice is shared with the
// runtime and is valid only until the next movement call; copy it to
// retain it.
func (e *Env) NeighborIDs() []int64 { return e.view().neighborID }

// Whiteboard returns the whiteboard content of the current vertex as of
// the beginning of the round (NoMark if empty or disabled).
func (e *Env) Whiteboard() int64 { return e.view().whiteboard }

// WriteWhiteboard stages a write of v to the current vertex's
// whiteboard; it commits together with the agent's next action this
// round, matching the formal model where the algorithm's output is
// (state, move, whiteboard content). It returns an error if the run has
// no whiteboards.
func (e *Env) WriteWhiteboard(v int64) error {
	if !e.boards {
		return fmt.Errorf("sim: agent %s wrote a whiteboard in a whiteboard-free run", e.name)
	}
	e.staged = true
	e.stagedV = v
	return nil
}

// Stay spends one round at the current vertex.
func (e *Env) Stay() { e.StayFor(1) }

// StayFor spends k rounds at the current vertex. k ≤ 0 is a no-op. The
// runtime fast-forwards overlapping waits, so large k is cheap.
func (e *Env) StayFor(k int64) {
	if k <= 0 {
		return
	}
	e.step(action{kind: actStay, wait: k})
}

// WaitUntilRound stays until the global round counter reaches r (a
// no-op if r is not in the future). Used for the paper's barrier
// synchronization in Rendezvous-without-Whiteboards.
func (e *Env) WaitUntilRound(r int64) {
	now := e.view().round
	if r > now {
		e.StayFor(r - now)
	}
}

// MoveToPort crosses the edge behind local port p (one round).
func (e *Env) MoveToPort(p int) error {
	if p < 0 || p >= e.view().degree {
		return fmt.Errorf("sim: agent %s moving through port %d of a degree-%d vertex", e.name, p, e.view().degree)
	}
	e.step(action{kind: actMove, port: p})
	return nil
}

// MoveToID crosses the edge to the neighbor with the given ID (one
// round). It requires neighbor-ID access and adjacency; otherwise it
// returns an error and the agent does not move.
func (e *Env) MoveToID(id int64) error {
	if !e.kt1 {
		return fmt.Errorf("sim: agent %s used MoveToID without neighbor-ID access", e.name)
	}
	for p, nid := range e.view().neighborID {
		if nid == id {
			e.step(action{kind: actMove, port: p})
			return nil
		}
	}
	return fmt.Errorf("sim: agent %s at vertex %d has no neighbor with ID %d", e.name, e.view().hereID, id)
}

// Halt stops the agent at its current vertex permanently. It does not
// return.
func (e *Env) Halt() {
	panic(haltSignal)
}

// view returns the current round's observation, blocking for the
// runtime if the previous action consumed it.
func (e *Env) view() *view {
	if !e.haveCur {
		select {
		case v := <-e.viewCh:
			e.cur = v
			e.haveCur = true
		case <-e.done:
			panic(stopSignal)
		}
	}
	return &e.cur
}

// step submits an action (attaching any staged whiteboard write) and
// marks the current view stale.
func (e *Env) step(act action) {
	// Ensure the round's view was produced before acting, so that the
	// runtime is in its receive state.
	e.view()
	if e.staged {
		act.write = true
		act.writeVal = e.stagedV
		e.staged = false
	}
	e.haveCur = false
	select {
	case e.actCh <- act:
	case <-e.done:
		panic(stopSignal)
	}
}

// driver is the runtime-side handle of one agent.
type driver struct {
	name         AgentName
	rt           *runtime
	pos          graph.Vertex
	moveTo       graph.Vertex
	waiting      int64
	halted       bool
	pendingWrite bool
	writeVal     int64
	moves        int64
	stays        int64
	prog         Program
	env          *Env
	viewCh       chan view
	actCh        chan action
	done         chan struct{}
	exited       chan struct{}
	nbuf         []int64
}

func newDriver(rt *runtime, name AgentName, start graph.Vertex, rng *rand.Rand, prog Program) *driver {
	d := &driver{
		name:   name,
		rt:     rt,
		pos:    start,
		moveTo: graph.NilVertex,
		prog:   prog,
		viewCh: make(chan view),
		actCh:  make(chan action),
		done:   make(chan struct{}),
		exited: make(chan struct{}),
	}
	d.env = &Env{
		name:   name,
		nPrime: rt.g.NPrime(),
		kt1:    rt.kt1,
		boards: rt.whiteboards,
		rng:    rng,
		viewCh: d.viewCh,
		actCh:  d.actCh,
		done:   d.done,
	}
	return d
}

// start launches the agent goroutine. The program begins executing
// immediately but blocks on its first observation until step delivers
// the round-0 view.
func (d *driver) start() {
	go func() {
		defer close(d.exited)
		defer func() {
			r := recover()
			var act action
			switch r {
			case nil, haltSignal:
				act = action{kind: actHalt}
			case stopSignal:
				return // runtime is shutting down; exit silently
			default:
				act = action{kind: actPanic, err: fmt.Errorf("program panic: %v", r)}
			}
			select {
			case d.actCh <- act:
			case <-d.done:
			}
		}()
		d.prog(d.env)
	}()
}

// step delivers the current view to the agent and collects its action.
// If the agent already produced an action without consuming a view
// (e.g. it halted right after its previous move), the stale view is
// discarded.
func (d *driver) step() error {
	v := view{
		round:      d.rt.round,
		hereID:     d.rt.g.ID(d.pos),
		degree:     d.rt.g.Degree(d.pos),
		whiteboard: NoMark,
	}
	if d.rt.whiteboards {
		v.whiteboard = d.rt.boards[d.pos]
	}
	if d.rt.kt1 {
		d.nbuf = d.rt.g.IDsOfNeighbors(d.pos, d.nbuf[:0])
		v.neighborID = d.nbuf
	}
	var act action
	select {
	case d.viewCh <- v:
		act = <-d.actCh
	case act = <-d.actCh:
	}
	switch act.kind {
	case actPanic:
		d.halted = true
		return act.err
	case actHalt:
		d.halted = true
	case actStay:
		d.waiting = act.wait - 1
		d.stays++
	case actMove:
		d.moveTo = d.rt.g.Neighbor(d.pos, act.port)
	}
	if act.write {
		d.pendingWrite = true
		d.writeVal = act.writeVal
	}
	return nil
}

// stop tears the agent goroutine down (idempotent).
func (d *driver) stop() {
	select {
	case <-d.done:
	default:
		close(d.done)
	}
	<-d.exited
}
