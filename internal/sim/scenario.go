package sim

import (
	"fmt"

	"fnr/internal/graph"
)

// Scenario generalizes the simulation beyond the paper's exact
// setting of two agents waking simultaneously: k ≥ 2 agents, each
// with its own start vertex and wake delay, and a choice of meeting
// predicate. A nil Scenario on Config means the legacy two-agent
// setting (StartA/StartB, no delays, rendezvous when both agents
// co-locate) — the k=2, τ=0 special case of this type.
//
// Wake-delay semantics (the delayed/asynchronous wake-up model of
// Miller–Pelc, arXiv:2311.12976): an agent with delay τᵢ consumes its
// first τᵢ rounds waiting at its start vertex — the rounds count, the
// agent's Stays grow, and it can be met while asleep (the meeting
// check is positional) — and its first acting round is round τᵢ, so
// its algorithm sees View.Round == τᵢ on the first Next call. A delay
// of 0 reproduces the legacy behavior exactly.
type Scenario struct {
	// Starts holds one start vertex per agent; len(Starts) is the
	// agent count k (2 ≤ k ≤ MaxAgents).
	Starts []graph.Vertex
	// WakeDelays holds one wake delay τᵢ ≥ 0 per agent, or is empty
	// for all agents waking at round 0. When non-empty its length
	// must equal len(Starts).
	WakeDelays []int64
	// MeetFirstPair switches the meeting predicate from all-k
	// gathered at one vertex (the default, the k-agent gathering
	// problem) to the first co-location of any two agents.
	MeetFirstPair bool
}

// MaxAgents is the largest supported team size: agent identities are
// AgentName (uint8) values, so a scenario can name at most 256 agents.
const MaxAgents = 256

// K returns the agent count.
func (sc *Scenario) K() int { return len(sc.Starts) }

// Delay returns agent i's wake delay (0 when WakeDelays is empty).
func (sc *Scenario) Delay(i int) int64 {
	if len(sc.WakeDelays) == 0 {
		return 0
	}
	return sc.WakeDelays[i]
}

// Validate checks the scenario against an n-vertex graph: 2 ≤ k ≤
// MaxAgents, every start in range, delays (when present) one per
// agent and non-negative. Config.validate applies it automatically;
// it is exported so the engine can fail a bad scenario before any
// worker starts.
func (sc *Scenario) Validate(n graph.Vertex) error {
	k := sc.K()
	if k < 2 {
		return fmt.Errorf("sim: scenario needs at least 2 agents, got %d", k)
	}
	if k > MaxAgents {
		return fmt.Errorf("sim: scenario has %d agents, limit is %d", k, MaxAgents)
	}
	for i, s := range sc.Starts {
		if s < 0 || s >= n {
			return fmt.Errorf("sim: agent %s start vertex %d out of range [0,%d)", AgentName(i), s, n)
		}
	}
	if len(sc.WakeDelays) != 0 && len(sc.WakeDelays) != k {
		return fmt.Errorf("sim: scenario has %d wake delays for %d agents (want 0 or %d)", len(sc.WakeDelays), k, k)
	}
	for i, d := range sc.WakeDelays {
		if d < 0 {
			return fmt.Errorf("sim: agent %s wake delay %d is negative", AgentName(i), d)
		}
	}
	return nil
}

// LegacyPair returns the scenario's start pair when the scenario is
// observably the legacy two-agent setting — k=2, every delay zero,
// all-gather predicate. Such scenarios run byte-identically to a
// Config carrying the same pair in StartA/StartB with a nil Scenario,
// so callers (the batch engine) fold them away to keep checkpoint
// identities and aggregates stable.
func (sc *Scenario) LegacyPair() (a, b graph.Vertex, ok bool) {
	if len(sc.Starts) != 2 || sc.MeetFirstPair {
		return 0, 0, false
	}
	for _, d := range sc.WakeDelays {
		if d != 0 {
			return 0, 0, false
		}
	}
	return sc.Starts[0], sc.Starts[1], true
}

// teamSize returns the number of agents cfg describes.
func (cfg *Config) teamSize() int {
	if cfg.Scenario != nil {
		return cfg.Scenario.K()
	}
	return 2
}

// startOf returns agent i's start vertex.
func (cfg *Config) startOf(i int) graph.Vertex {
	if cfg.Scenario != nil {
		return cfg.Scenario.Starts[i]
	}
	if i == 0 {
		return cfg.StartA
	}
	return cfg.StartB
}

// delayOf returns agent i's wake delay.
func (cfg *Config) delayOf(i int) int64 {
	if cfg.Scenario != nil {
		return cfg.Scenario.Delay(i)
	}
	return 0
}
