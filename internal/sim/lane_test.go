package sim

import (
	"errors"
	"fmt"
	"testing"
)

// reusableWalkStepper is walkStepper plus the lane reuse contract.
type reusableWalkStepper struct{ walkStepper }

func (s *reusableWalkStepper) Reset(ctx *StepContext) { s.Init(ctx) }

// laneSeed mirrors the engine's per-trial seed derivation shape: any
// injective map of trial index to seed works for these tests.
func laneSeed(t int) uint64 { return uint64(t)*2654435761 + 17 }

// TestLaneMatchesSoloRuns pins the lane's core guarantee: running a
// range of trials through a TrialLane — at any width, reusable or
// not — produces exactly the results of running each trial alone
// with a fresh context and freshly built steppers.
func TestLaneMatchesSoloRuns(t *testing.T) {
	g := mustComplete(t, 12)
	cfg := Config{Graph: g, StartA: 0, StartB: 7, MaxRounds: 100000}
	const trials = 40

	want := make([]*Result, trials)
	for i := range want {
		c := cfg
		c.Seed = laneSeed(i)
		res, err := RunSteppers(c, &walkStepper{}, &walkStepper{})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}

	builders := map[string]func() (Stepper, Stepper, error){
		"reusable": func() (Stepper, Stepper, error) {
			return &reusableWalkStepper{}, &reusableWalkStepper{}, nil
		},
		"rebuild": func() (Stepper, Stepper, error) {
			return &walkStepper{}, &walkStepper{}, nil
		},
	}
	for name, build := range builders {
		for _, width := range []int{1, 3, 8, 64} {
			t.Run(fmt.Sprintf("%s/width=%d", name, width), func(t *testing.T) {
				lane := NewTrialLane(width, build)
				defer lane.Close()
				got := make([]*Result, trials)
				// Two chunked calls on one lane, like the engine's
				// chunk claiming, to cover warm re-Run.
				emit := func(trial int, res *Result, err error) {
					if err != nil {
						t.Fatalf("trial %d: %v", trial, err)
					}
					if got[trial] != nil {
						t.Fatalf("trial %d emitted twice", trial)
					}
					c := *res
					got[trial] = &c
				}
				lane.Run(cfg, laneSeed, 0, trials/2, emit)
				lane.Run(cfg, laneSeed, trials/2, trials, emit)
				for i := range want {
					if got[i] == nil {
						t.Fatalf("trial %d never emitted", i)
					}
					if !resultsEqual(got[i], want[i]) {
						t.Errorf("trial %d: lane %+v != solo %+v", i, *got[i], *want[i])
					}
				}
			})
		}
	}
}

// TestLaneBuilderAmortization pins the reuse contract's economics:
// a Reusable pair is built once per slot, a plain pair once per
// trial.
func TestLaneBuilderAmortization(t *testing.T) {
	g := mustComplete(t, 8)
	cfg := Config{Graph: g, StartA: 0, StartB: 3, MaxRounds: 100000}
	const trials, width = 20, 4

	count := func(build func() (Stepper, Stepper, error)) int {
		n := 0
		lane := NewTrialLane(width, func() (Stepper, Stepper, error) {
			n++
			return build()
		})
		defer lane.Close()
		lane.Run(cfg, laneSeed, 0, trials, func(_ int, _ *Result, err error) {
			if err != nil {
				t.Fatal(err)
			}
		})
		return n
	}

	if n := count(func() (Stepper, Stepper, error) {
		return &reusableWalkStepper{}, &reusableWalkStepper{}, nil
	}); n != width {
		t.Errorf("reusable pair: %d builds, want %d (one per slot)", n, width)
	}
	if n := count(func() (Stepper, Stepper, error) {
		return &walkStepper{}, &walkStepper{}, nil
	}); n != trials {
		t.Errorf("plain pair: %d builds, want %d (one per trial)", n, trials)
	}
}

// TestLaneBuilderErrors: a failing builder surfaces as a per-trial
// error outcome, exactly as the one-at-a-time path reports it, and
// never stalls the rest of the range.
func TestLaneBuilderErrors(t *testing.T) {
	g := mustComplete(t, 8)
	cfg := Config{Graph: g, StartA: 0, StartB: 3, MaxRounds: 100000}
	boom := errors.New("boom")
	calls := 0
	lane := NewTrialLane(2, func() (Stepper, Stepper, error) {
		calls++
		if calls%2 == 0 {
			return nil, nil, boom
		}
		return &walkStepper{}, &walkStepper{}, nil
	})
	defer lane.Close()

	const trials = 10
	okTrials, errTrials := 0, 0
	lane.Run(cfg, laneSeed, 0, trials, func(trial int, res *Result, err error) {
		switch {
		case err != nil:
			if !errors.Is(err, boom) {
				t.Errorf("trial %d: error %v, want %v", trial, err, boom)
			}
			errTrials++
		case res == nil:
			t.Errorf("trial %d: nil result without error", trial)
		default:
			okTrials++
		}
	})
	if okTrials+errTrials != trials {
		t.Fatalf("emitted %d outcomes, want %d", okTrials+errTrials, trials)
	}
	if errTrials == 0 || okTrials == 0 {
		t.Fatalf("want a mix of successes and failures, got %d ok / %d err", okTrials, errTrials)
	}
}

// TestLaneNilStepperBuilder: a builder returning nil steppers without
// an error still yields a per-trial error, not a panic.
func TestLaneNilStepperBuilder(t *testing.T) {
	g := mustComplete(t, 8)
	cfg := Config{Graph: g, StartA: 0, StartB: 3, MaxRounds: 100000}
	lane := NewTrialLane(2, func() (Stepper, Stepper, error) {
		return nil, nil, nil
	})
	defer lane.Close()
	emitted := 0
	lane.Run(cfg, laneSeed, 0, 4, func(trial int, res *Result, err error) {
		emitted++
		if err == nil {
			t.Errorf("trial %d: want error for nil steppers", trial)
		}
	})
	if emitted != 4 {
		t.Fatalf("emitted %d outcomes, want 4", emitted)
	}
}

// armedPanicStepper is a reusable walk stepper that panics out of
// Next when its fire flag is set — armed per trial through the lane's
// PostArm hook, the way the engine's fault wrappers work.
type armedPanicStepper struct {
	reusableWalkStepper
	fire bool
}

func (s *armedPanicStepper) Next(v *View) Action {
	if s.fire {
		s.fire = false
		panic("lane slot panic")
	}
	return s.walkStepper.Next(v)
}

// panicAtTrialHook arms the panic on one specific trial.
type panicAtTrialHook struct{ target int }

func (h panicAtTrialHook) PreArm(int) error { return nil }
func (h panicAtTrialHook) PostArm(trial int, team []Stepper) {
	if p, ok := team[0].(*armedPanicStepper); ok {
		p.fire = trial == h.target
	}
}

// TestLanePanicQuarantinesSlot: a panicking trial surfaces as that
// trial's error, its slot is quarantined — the stepper pair is
// abandoned and rebuilt, never re-armed — and every other trial of
// the range still matches its solo run exactly.
func TestLanePanicQuarantinesSlot(t *testing.T) {
	g := mustComplete(t, 12)
	cfg := Config{Graph: g, StartA: 0, StartB: 7, MaxRounds: 100000}
	const trials, target = 20, 7

	want := make([]*Result, trials)
	for i := range want {
		c := cfg
		c.Seed = laneSeed(i)
		res, err := RunSteppers(c, &walkStepper{}, &walkStepper{})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}

	for _, width := range []int{1, 3, 8} {
		builds := 0
		lane := NewTrialLane(width, func() (Stepper, Stepper, error) {
			builds++
			return &armedPanicStepper{}, &armedPanicStepper{}, nil
		})
		lane.Hook = panicAtTrialHook{target: target}
		got := make([]*Result, trials)
		var panicErr error
		wm := lane.Run(cfg, laneSeed, 0, trials, func(trial int, res *Result, err error) {
			if trial == target {
				panicErr = err
				return
			}
			if err != nil {
				t.Fatalf("width=%d trial %d: %v", width, trial, err)
			}
			c := *res
			got[trial] = &c
		})
		if wm != trials {
			t.Fatalf("width=%d: watermark %d, want %d (a panic must not stop the range)", width, wm, trials)
		}
		if panicErr == nil || panicErr.Error() != "sim: trial panicked: lane slot panic" {
			t.Fatalf("width=%d: target trial error = %v, want the panic message", width, panicErr)
		}
		for i := range want {
			if i == target {
				continue
			}
			if got[i] == nil {
				t.Fatalf("width=%d: trial %d never emitted", width, i)
			}
			if !resultsEqual(got[i], want[i]) {
				t.Errorf("width=%d trial %d: post-panic lane %+v != solo %+v", width, i, *got[i], *want[i])
			}
		}
		// Reusable steppers build once per slot; the quarantined slot
		// rebuilds exactly once more.
		if builds != width+1 {
			t.Errorf("width=%d: %d builds, want %d (one per slot plus the quarantine rebuild)", width, builds, width+1)
		}
		lane.Close()
	}
}

// TestLaneStopWatermark: Stop ends the run at a refill boundary; the
// watermark is the first un-armed trial, everything below it was
// emitted exactly once (resident trials drain), nothing at or above
// it was touched.
func TestLaneStopWatermark(t *testing.T) {
	g := mustComplete(t, 12)
	cfg := Config{Graph: g, StartA: 0, StartB: 7, MaxRounds: 100000}
	const trials, stopAfter = 400, 25

	for _, width := range []int{1, 4, 16} {
		lane := NewTrialLane(width, func() (Stepper, Stepper, error) {
			return &reusableWalkStepper{}, &reusableWalkStepper{}, nil
		})
		emitted := map[int]int{}
		stop := false
		lane.Stop = func() bool { return stop }
		wm := lane.Run(cfg, laneSeed, 0, trials, func(trial int, res *Result, err error) {
			if err != nil {
				t.Fatalf("width=%d trial %d: %v", width, trial, err)
			}
			emitted[trial]++
			if len(emitted) >= stopAfter {
				stop = true
			}
		})
		if wm >= trials || wm < stopAfter {
			t.Fatalf("width=%d: watermark %d outside the expected [%d, %d) window", width, wm, stopAfter, trials)
		}
		for trial := 0; trial < wm; trial++ {
			if emitted[trial] != 1 {
				t.Errorf("width=%d: trial %d below watermark %d emitted %d times, want 1", width, trial, wm, emitted[trial])
			}
		}
		for trial := range emitted {
			if trial >= wm {
				t.Errorf("width=%d: trial %d at/above watermark %d was emitted", width, trial, wm)
			}
		}
		// A stopped lane stays stopped: the next Run arms nothing.
		if wm2 := lane.Run(cfg, laneSeed, wm, trials, func(int, *Result, error) {
			t.Errorf("width=%d: stopped lane emitted a trial", width)
		}); wm2 != wm {
			t.Errorf("width=%d: stopped lane advanced its watermark %d → %d", width, wm, wm2)
		}
		// Clearing Stop resumes from the watermark; the union covers
		// the range exactly once.
		lane.Stop = nil
		lane.Run(cfg, laneSeed, wm, trials, func(trial int, res *Result, err error) {
			if err != nil {
				t.Fatalf("width=%d trial %d: %v", width, trial, err)
			}
			emitted[trial]++
		})
		for trial := 0; trial < trials; trial++ {
			if emitted[trial] != 1 {
				t.Errorf("width=%d: trial %d emitted %d times across stop+resume, want 1", width, trial, emitted[trial])
			}
		}
		lane.Close()
	}
}

// TestLaneValidationErrors: an invalid configuration is reported for
// every trial of the range without building any steppers.
func TestLaneValidationErrors(t *testing.T) {
	builds := 0
	lane := NewTrialLane(4, func() (Stepper, Stepper, error) {
		builds++
		return &walkStepper{}, &walkStepper{}, nil
	})
	defer lane.Close()
	emitted := 0
	lane.Run(Config{}, laneSeed, 0, 6, func(trial int, res *Result, err error) {
		emitted++
		if err == nil || res != nil {
			t.Errorf("trial %d: want validation error, got res=%v err=%v", trial, res, err)
		}
	})
	if emitted != 6 {
		t.Fatalf("emitted %d outcomes, want 6", emitted)
	}
	if builds != 0 {
		t.Errorf("builder ran %d times on an invalid config, want 0", builds)
	}
}
