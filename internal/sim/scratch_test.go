package sim

import (
	"testing"

	"fnr/internal/graph"
)

// scratchProbe records which scratch values it saw across runs.
type scratchProbe struct {
	seen []any
}

type scratchStepper struct {
	probe *scratchProbe
	mark  int
}

func (s *scratchStepper) Init(ctx *StepContext) {
	s.probe.seen = append(s.probe.seen, ctx.Scratch.Get())
	ctx.Scratch.Set(s.mark)
}

func (s *scratchStepper) Next(v *View) Action { return Halt() }

// TestTrialContextScratchPersists pins the AgentScratch contract: a
// value parked during one trial is handed back, per agent, on the next
// trial of the same TrialContext — and fresh contexts start empty.
func TestTrialContextScratchPersists(t *testing.T) {
	g, err := graph.Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Graph: g, StartA: 0, StartB: 1, MaxRounds: 4}
	tc := NewTrialContext()
	pa, pb := &scratchProbe{}, &scratchProbe{}
	for trial := 0; trial < 3; trial++ {
		a := &scratchStepper{probe: pa, mark: 10 + trial}
		b := &scratchStepper{probe: pb, mark: 20 + trial}
		if _, err := tc.RunSteppers(cfg, a, b); err != nil {
			t.Fatal(err)
		}
	}
	wantA := []any{nil, 10, 11}
	wantB := []any{nil, 20, 21}
	for i := range wantA {
		if pa.seen[i] != wantA[i] || pb.seen[i] != wantB[i] {
			t.Fatalf("scratch history a=%v b=%v, want a=%v b=%v", pa.seen, pb.seen, wantA, wantB)
		}
	}
	// A fresh context must not see the old scratch.
	p := &scratchProbe{}
	if _, err := RunSteppers(cfg, &scratchStepper{probe: p, mark: 0}, &scratchStepper{probe: &scratchProbe{}, mark: 0}); err != nil {
		t.Fatal(err)
	}
	if p.seen[0] != nil {
		t.Fatalf("fresh TrialContext leaked scratch %v", p.seen[0])
	}
	// Nil slots (hand-built contexts) must be safe no-ops.
	var nilSlot *AgentScratch
	if nilSlot.Get() != nil {
		t.Fatal("nil AgentScratch.Get != nil")
	}
	nilSlot.Set(5) // must not panic
}
