package sim

import "fmt"

// PanicError formats a recovered panic value as the error a panicking
// trial surfaces. Every execution path that isolates a trial panic —
// the lockstep lane and the engine's per-trial stepper path — must
// produce byte-identical messages for the same panic value, or the
// engine's first-error reporting would depend on which path ran the
// trial; this helper is the single definition of that formatting.
func PanicError(r any) error {
	return fmt.Errorf("sim: trial panicked: %v", r)
}

// safeFinish is Finish hardened against a poisoned stepper: a trial
// that panicked mid-run may have left its steppers in a state where
// even the Finish hook panics, and quarantine teardown must not let
// that second panic escape the lane.
func safeFinish(s Stepper) {
	defer func() { _ = recover() }()
	Finish(s)
}
