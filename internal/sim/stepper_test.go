package sim

import (
	"errors"
	goruntime "runtime"
	"strings"
	"testing"
	"testing/quick"
)

// walkStepper is the stepper twin of the randomWalk test program.
type walkStepper struct{ ctx *StepContext }

func (s *walkStepper) Init(ctx *StepContext) { s.ctx = ctx }

func (s *walkStepper) Next(v *View) Action {
	return Move(s.ctx.Rand.IntN(v.Degree))
}

// stayStepper is the stepper twin of the stayer test program.
type stayStepper struct{}

func (stayStepper) Init(*StepContext) {}

func (stayStepper) Next(*View) Action { return Stay() }

func resultsEqual(a, b *Result) bool {
	if a.Met != b.Met || a.MeetRound != b.MeetRound || a.MeetVertex != b.MeetVertex ||
		a.Rounds != b.Rounds || a.A != b.A || a.B != b.B || a.Writes != b.Writes {
		return false
	}
	if len(a.Agents) != len(b.Agents) {
		return false
	}
	for i := range a.Agents {
		if a.Agents[i] != b.Agents[i] {
			return false
		}
	}
	return true
}

// Seed-0 regression: the default seed is normalized inside the
// simulator, so a raw Seed 0 and an explicit Seed 1 are the same run
// on every path. (Before the fix, fnr.Rendezvous normalized 0 to 1
// but direct sim.Run calls and the engine used the raw seed, so the
// same logical run differed by entry point.)
func TestSeedZeroNormalizedToOne(t *testing.T) {
	g := mustComplete(t, 12)
	run := func(seed uint64) *Result {
		res, err := Run(Config{Graph: g, StartA: 0, StartB: 7, Seed: seed, MaxRounds: 100000}, randomWalk, randomWalk)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if !resultsEqual(run(0), run(1)) {
		t.Error("program path: Seed 0 and Seed 1 are different runs")
	}
	runSt := func(seed uint64) *Result {
		res, err := RunSteppers(Config{Graph: g, StartA: 0, StartB: 7, Seed: seed, MaxRounds: 100000}, &walkStepper{}, &walkStepper{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if !resultsEqual(runSt(0), runSt(1)) {
		t.Error("stepper path: Seed 0 and Seed 1 are different runs")
	}
	if !resultsEqual(run(0), runSt(0)) {
		t.Error("program and stepper paths disagree on the default-seeded run")
	}
}

// Co-located writes: when both agents write the same vertex in the
// same round (possible under DisableMeeting), commits happen in agent
// order, so agent b's value wins — an explicit guarantee, with both
// writes counted.
func TestColocatedWritesLastWriterWins(t *testing.T) {
	g := mustComplete(t, 4)
	writer := func(val int64) Program {
		return func(e *Env) {
			if err := e.WriteWhiteboard(val); err != nil {
				panic(err)
			}
			e.Stay() // commit the write, stay put
			if e.Whiteboard() != 222 {
				panic("board does not hold agent b's value")
			}
			e.Halt()
		}
	}
	res, err := Run(Config{
		Graph: g, StartA: 1, StartB: 1,
		Whiteboards: true, DisableMeeting: true, MaxRounds: 10,
	}, writer(111), writer(222))
	if err != nil {
		t.Fatal(err)
	}
	if res.Writes != 2 {
		t.Fatalf("Writes = %d, want 2 (both co-located writes count)", res.Writes)
	}

	// Same guarantee on the stepper path.
	mk := func(val int64) Stepper { return &colocatedWriter{val: val} }
	resSt, err := RunSteppers(Config{
		Graph: g, StartA: 1, StartB: 1,
		Whiteboards: true, DisableMeeting: true, MaxRounds: 10,
	}, mk(111), mk(222))
	if err != nil {
		t.Fatal(err)
	}
	if resSt.Writes != 2 {
		t.Fatalf("stepper path: Writes = %d, want 2", resSt.Writes)
	}
}

// colocatedWriter writes its value at round 0, then verifies agent
// b's value won before halting.
type colocatedWriter struct {
	val  int64
	step int
}

func (s *colocatedWriter) Init(*StepContext) {}

func (s *colocatedWriter) Next(v *View) Action {
	s.step++
	switch s.step {
	case 1:
		return Stay().WithWrite(s.val)
	default:
		if v.Whiteboard != 222 {
			return Abort(errors.New("board does not hold agent b's value"))
		}
		return Halt()
	}
}

// The coroutine adapter must be observationally identical to the
// goroutine adapter for the same program, across normal runs, early
// halts, and panics.
func TestProgramStepperMatchesGoroutinePath(t *testing.T) {
	g := mustComplete(t, 12)
	cfg := Config{Graph: g, StartA: 0, StartB: 7, Seed: 42, MaxRounds: 100000}
	viaChan, err := Run(cfg, randomWalk, randomWalk)
	if err != nil {
		t.Fatal(err)
	}
	viaPull, err := RunSteppers(cfg, NewProgramStepper(randomWalk), NewProgramStepper(randomWalk))
	if err != nil {
		t.Fatal(err)
	}
	if !resultsEqual(viaChan, viaPull) {
		t.Fatalf("paths diverge: %+v vs %+v", viaChan, viaPull)
	}

	// Program panic surfaces identically.
	bomber := func(e *Env) { e.Stay(); panic("boom") }
	_, errChan := Run(Config{Graph: g, StartA: 0, StartB: 7, MaxRounds: 10}, bomber, stayer)
	_, errPull := RunSteppers(Config{Graph: g, StartA: 0, StartB: 7, MaxRounds: 10}, NewProgramStepper(bomber), NewProgramStepper(stayer))
	if errChan == nil || errPull == nil {
		t.Fatalf("panic lost: chan=%v pull=%v", errChan, errPull)
	}
	if !strings.Contains(errPull.Error(), "boom") || errChan.Error() != errPull.Error() {
		t.Fatalf("panic errors differ: %q vs %q", errChan, errPull)
	}

	// Early return / Halt land on the same round.
	quitter := func(e *Env) { e.Stay(); e.Stay() }
	rc, err := Run(Config{Graph: g, StartA: 0, StartB: 7, MaxRounds: 100}, quitter, quitter)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := RunSteppers(Config{Graph: g, StartA: 0, StartB: 7, MaxRounds: 100}, NewProgramStepper(quitter), NewProgramStepper(quitter))
	if err != nil {
		t.Fatal(err)
	}
	if !resultsEqual(rc, rp) {
		t.Fatalf("halt timing diverges: %+v vs %+v", rc, rp)
	}
}

// Property: arbitrary seeds agree between the two Program transports,
// including whiteboard traffic.
func TestProgramStepperEquivalenceProperty(t *testing.T) {
	g := mustComplete(t, 9)
	mkChaotic := func() Program {
		return func(e *Env) {
			r := e.Rand()
			for {
				switch r.IntN(5) {
				case 0:
					e.Stay()
				case 1:
					e.StayFor(1 + int64(r.IntN(5)))
				case 2, 3:
					if err := e.MoveToPort(r.IntN(e.Degree())); err != nil {
						panic(err)
					}
				case 4:
					if err := e.WriteWhiteboard(int64(r.IntN(50))); err != nil {
						panic(err)
					}
					e.Stay()
				}
			}
		}
	}
	check := func(seed uint64) bool {
		cfg := Config{
			Graph: g, StartA: 3, StartB: 6,
			NeighborIDs: true, Whiteboards: true,
			Seed: seed, MaxRounds: 300, DisableMeeting: true,
		}
		rc, err1 := Run(cfg, mkChaotic(), mkChaotic())
		rp, err2 := RunSteppers(cfg, NewProgramStepper(mkChaotic()), NewProgramStepper(mkChaotic()))
		if err1 != nil || err2 != nil {
			return false
		}
		return resultsEqual(rc, rp)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// A TrialContext reused across many runs must give exactly the
// results of fresh contexts — scratch reuse is invisible.
func TestTrialContextReuse(t *testing.T) {
	g := mustComplete(t, 10)
	tc := NewTrialContext()
	for seed := uint64(1); seed <= 20; seed++ {
		cfg := Config{Graph: g, StartA: 0, StartB: 5, Whiteboards: true, Seed: seed, MaxRounds: 100000}
		reused, err := tc.RunSteppers(cfg, &walkStepper{}, &walkStepper{})
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := RunSteppers(cfg, &walkStepper{}, &walkStepper{})
		if err != nil {
			t.Fatal(err)
		}
		if !resultsEqual(reused, fresh) {
			t.Fatalf("seed %d: reused context diverged: %+v vs %+v", seed, reused, fresh)
		}
	}
}

func TestRunSteppersValidatesConfig(t *testing.T) {
	g := mustRing(t, 4)
	if _, err := RunSteppers(Config{Graph: nil}, stayStepper{}, stayStepper{}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := RunSteppers(Config{Graph: g, StartA: 0, StartB: 99}, stayStepper{}, stayStepper{}); err == nil {
		t.Error("out-of-range start accepted")
	}
	if _, err := RunSteppers(Config{Graph: g, StartA: 0, StartB: 1}, nil, stayStepper{}); err == nil {
		t.Error("nil stepper accepted")
	}
}

// A stepper returning an out-of-range port aborts the run like a
// program panic would.
func TestStepperBadPortErrors(t *testing.T) {
	g := mustRing(t, 4)
	bad := &badPortStepper{}
	_, err := RunSteppers(Config{Graph: g, StartA: 0, StartB: 2, MaxRounds: 5}, bad, stayStepper{})
	if err == nil || !strings.Contains(err.Error(), "port") {
		t.Fatalf("err = %v, want port error", err)
	}
}

type badPortStepper struct{}

func (badPortStepper) Init(*StepContext) {}

func (badPortStepper) Next(*View) Action { return Move(99) }

// Abort surfaces its error with the agent prefix.
func TestStepperAbort(t *testing.T) {
	g := mustRing(t, 4)
	_, err := RunSteppers(Config{Graph: g, StartA: 0, StartB: 2, MaxRounds: 5},
		stayStepper{}, &abortStepper{})
	if err == nil || !strings.Contains(err.Error(), "agent b") || !strings.Contains(err.Error(), "impossible state") {
		t.Fatalf("err = %v, want agent-b abort", err)
	}
}

type abortStepper struct{}

func (abortStepper) Init(*StepContext) {}

func (abortStepper) Next(*View) Action { return Abort(errors.New("impossible state")) }

// Coroutine-hosted programs must be torn down when runs end early
// (meeting, budget, other agent's panic): the goroutine count stays
// flat across many abandoned runs.
func TestProgramStepperNoLeaks(t *testing.T) {
	g := mustRing(t, 6)
	before := goruntime.NumGoroutine()
	for i := 0; i < 200; i++ {
		// idWalker meets the stayer mid-program, so the walker's
		// coroutine is abandoned mid-run every time.
		_, err := RunSteppers(Config{Graph: g, StartA: 0, StartB: 3, NeighborIDs: true, MaxRounds: 100, Seed: uint64(i)},
			NewProgramStepper(idWalker), NewProgramStepper(stayer))
		if err != nil {
			t.Fatal(err)
		}
	}
	goruntime.GC()
	after := goruntime.NumGoroutine()
	if after > before+4 {
		t.Fatalf("goroutines grew from %d to %d across 200 runs", before, after)
	}
}

// StayFor actions below one round are clamped: a Stepper cannot act
// without consuming a round (unlike Env.StayFor's no-op).
func TestStepperStayForClamped(t *testing.T) {
	g := mustRing(t, 4)
	res, err := RunSteppers(Config{Graph: g, StartA: 0, StartB: 2, MaxRounds: 7},
		&zeroStayStepper{}, stayStepper{})
	if err != nil {
		t.Fatal(err)
	}
	if res.A.Stays != 7 {
		t.Fatalf("stays = %d, want 7 one-round stays", res.A.Stays)
	}
}

type zeroStayStepper struct{}

func (zeroStayStepper) Init(*StepContext) {}

func (zeroStayStepper) Next(*View) Action { return StayFor(-3) }

func TestViewPortOfID(t *testing.T) {
	v := &View{NeighborIDs: []int64{10, 20, 30}}
	if p, ok := v.PortOfID(20); !ok || p != 1 {
		t.Fatalf("PortOfID(20) = %d, %v", p, ok)
	}
	if _, ok := v.PortOfID(99); ok {
		t.Fatal("missing ID reported present")
	}
	if _, ok := (&View{}).PortOfID(1); ok {
		t.Fatal("KT0 view reported a port")
	}
}
