package sim

import (
	"errors"
	gort "runtime"
	"testing"
	"time"

	"fnr/internal/graph"
)

// finishProbe wraps a stepper and records lifecycle calls.
type finishProbe struct {
	inner    Stepper
	finished int
}

func (p *finishProbe) Init(ctx *StepContext) {
	if p.inner != nil {
		p.inner.Init(ctx)
	}
}

func (p *finishProbe) Next(v *View) Action {
	if p.inner != nil {
		return p.inner.Next(v)
	}
	return Halt()
}

func (p *finishProbe) Finish() { p.finished++ }

// abortAfter aborts the run after n acting rounds.
type abortAfter struct{ n int }

func (s *abortAfter) Init(*StepContext) {}
func (s *abortAfter) Next(*View) Action {
	if s.n <= 0 {
		return Abort(errors.New("test abort"))
	}
	s.n--
	return Stay()
}

// TestFinishRunsOnEveryExitPath pins the Finisher contract: a stepper's
// Finish hook runs exactly once per run, on normal completion, on
// MaxRounds exhaustion, on abort, and even when the configuration is
// rejected before round 0.
func TestFinishRunsOnEveryExitPath(t *testing.T) {
	g, err := graph.Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	valid := Config{Graph: g, StartA: 0, StartB: 1, MaxRounds: 8}
	cases := []struct {
		name    string
		cfg     Config
		a, b    Stepper
		wantErr bool
	}{
		{"normal halt", valid, &finishProbe{}, &finishProbe{}, false},
		{"max rounds", valid, &finishProbe{inner: stayerStepper{}}, &finishProbe{inner: stayerStepper{}}, false},
		{"abort", valid, &finishProbe{inner: &abortAfter{n: 2}}, &finishProbe{inner: stayerStepper{}}, true},
		{"nil graph", Config{}, &finishProbe{}, &finishProbe{}, true},
		{"start out of range", Config{Graph: g, StartA: 99, StartB: 1}, &finishProbe{}, &finishProbe{}, true},
	}
	for _, tc := range cases {
		_, err := RunSteppers(tc.cfg, tc.a, tc.b)
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: err = %v, wantErr = %v", tc.name, err, tc.wantErr)
		}
		for which, st := range map[string]Stepper{"a": tc.a, "b": tc.b} {
			if n := st.(*finishProbe).finished; n != 1 {
				t.Errorf("%s: agent %s Finish ran %d times, want exactly 1", tc.name, which, n)
			}
		}
	}
	// The standalone helper must be safe on nil and on steppers without
	// the hook.
	Finish(nil)
	Finish(stayerStepper{})
}

// stayerStepper never halts; every run with it exhausts MaxRounds.
type stayerStepper struct{}

func (stayerStepper) Init(*StepContext) {}
func (stayerStepper) Next(*View) Action { return Stay() }

// endlessMover is a Program that never returns: the adapter hosting it
// must be torn down by the runtime when the trial ends early.
func endlessMover(e *Env) {
	for {
		if err := e.MoveToPort(0); err != nil {
			panic(err)
		}
	}
}

// TestProgramAdaptersDoNotLeakOnEarlyTrialEnd is the leak gate of the
// stepper lifecycle: a batch whose every trial times out mid-program
// must leave no adapter goroutines (channel path) or live iter.Pull
// coroutines (pull path) behind. Both count as goroutines once
// started, so gort.NumGoroutine is the measurement for both.
func TestProgramAdaptersDoNotLeakOnEarlyTrialEnd(t *testing.T) {
	g, err := graph.Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Graph: g, StartA: 0, StartB: 1, MaxRounds: 16, DisableMeeting: true}

	paths := []struct {
		name string
		run  func(seed uint64) (*Result, error)
	}{
		{"goroutine adapter", func(seed uint64) (*Result, error) {
			c := cfg
			c.Seed = seed
			return Run(c, endlessMover, endlessMover)
		}},
		{"coroutine adapter", func(seed uint64) (*Result, error) {
			c := cfg
			c.Seed = seed
			return RunSteppers(c, NewProgramStepper(endlessMover), NewProgramStepper(endlessMover))
		}},
	}
	for _, p := range paths {
		before := gort.NumGoroutine()
		for seed := uint64(1); seed <= 64; seed++ {
			res, err := p.run(seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", p.name, seed, err)
			}
			if res.Met || res.Rounds != cfg.MaxRounds {
				t.Fatalf("%s seed %d: trial did not time out as designed: %+v", p.name, seed, res)
			}
		}
		// Teardown is synchronous (Finish blocks on the goroutine's
		// exit; the coroutine unwinds inline), but give the scheduler a
		// grace window before declaring a leak.
		deadline := time.Now().Add(5 * time.Second)
		for {
			gort.GC()
			if after := gort.NumGoroutine(); after <= before {
				break
			} else if time.Now().After(deadline) {
				t.Fatalf("%s: %d goroutines before the batch, %d after — adapter executions leaked",
					p.name, before, after)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}
