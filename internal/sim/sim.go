// Package sim implements the synchronous two-agent mobile-agent
// execution model of the paper "Fast Neighborhood Rendezvous" (§2.1):
// discrete rounds; per round each agent either stays at its current
// vertex or crosses one incident edge; local computation, whiteboard
// access and neighbor-ID inspection are free within a round; rendezvous
// completes at round t when both agents occupy the same vertex at the
// beginning of round t.
//
// Agents are written as ordinary Go functions (Program) against an Env
// handle; the runtime runs each program on its own goroutine and
// advances both in lockstep. Multi-round waits are fast-forwarded when
// neither agent needs to act, so wait-heavy algorithms (such as the
// paper's no-whiteboard algorithm) simulate in time proportional to
// their activity, not to their round count.
package sim

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"

	"fnr/internal/graph"
)

// AgentName identifies one of the two agents. The paper calls them a
// and b and allows them to run different algorithms (asymmetry).
type AgentName uint8

// The two agents.
const (
	AgentA AgentName = iota
	AgentB
)

// String returns "a" or "b".
func (n AgentName) String() string {
	if n == AgentA {
		return "a"
	}
	return "b"
}

// NoMark is the whiteboard content ⊥ (empty).
const NoMark int64 = math.MinInt64

// Config describes one simulation run.
type Config struct {
	// Graph is the static environment. Required.
	Graph *graph.Graph
	// StartA and StartB are the agents' initial vertices.
	StartA, StartB graph.Vertex
	// NeighborIDs enables the KT1-style accessible port numbering:
	// agents see the IDs of their current vertex's neighbors. When
	// false (KT0), ports are bare indices and views carry no IDs.
	NeighborIDs bool
	// Whiteboards enables per-vertex whiteboards. When false, writes
	// are rejected and reads return NoMark — used to certify that the
	// Theorem 2 algorithm never relies on whiteboards.
	Whiteboards bool
	// MaxRounds stops the run if rendezvous has not completed. Zero
	// selects the generous default 4n²+1000 (beyond any exploration
	// bound for the instances we run).
	MaxRounds int64
	// Seed derives both agents' private random streams.
	Seed uint64
	// DisableMeeting turns off rendezvous detection: agents pass
	// through each other and the run ends only on MaxRounds or both
	// agents halting. This models the paper's single-agent "illegal
	// runs" (the X̂(G, a, v, f(n)) executions of §5) and is used by
	// diagnostic experiments that study one agent in isolation.
	DisableMeeting bool
	// MeetingFromRound suppresses rendezvous detection before the
	// given round. Incidental co-locations while agent a is still
	// building its dense set end real runs early (and count for the
	// upper bounds); the mechanism-isolation experiments set this to
	// the schedule barrier to measure the designed rendezvous phase
	// alone. Zero means detection is on from the start.
	MeetingFromRound int64
	// Observer, if non-nil, is called once per executed round with the
	// positions at the beginning of the round. Fast-forwarded waiting
	// rounds are reported in one call with Skipped > 1.
	Observer func(RoundEvent)
}

// RoundEvent is a point-in-time observation delivered to Config.Observer.
type RoundEvent struct {
	Round   int64
	PosA    graph.Vertex
	PosB    graph.Vertex
	Skipped int64 // number of rounds this event covers (≥ 1)
}

// Result reports the outcome of a run.
type Result struct {
	// Met reports whether the agents occupied the same vertex at the
	// beginning of some round ≤ MaxRounds.
	Met bool
	// MeetRound is the completion round (valid when Met).
	MeetRound int64
	// MeetVertex is the rendezvous vertex (valid when Met).
	MeetVertex graph.Vertex
	// Rounds is the number of rounds executed (equals MeetRound when
	// Met, and MaxRounds or the both-halted round otherwise).
	Rounds int64
	// Per-agent statistics.
	A, B AgentStats
	// Writes counts committed whiteboard writes (both agents).
	Writes int64
}

// AgentStats aggregates one agent's activity.
type AgentStats struct {
	// Moves is the number of edge traversals.
	Moves int64
	// Stays is the number of rounds spent waiting (including
	// fast-forwarded rounds).
	Stays int64
	// Halted reports whether the program returned or called Halt.
	Halted bool
}

// DefaultMaxRounds returns the fallback round budget for g: 4n²+1000.
func DefaultMaxRounds(g *graph.Graph) int64 {
	n := int64(g.N())
	return 4*n*n + 1000
}

// Run executes the two programs on cfg's graph until rendezvous, both
// agents halting, or the round budget expiring. It returns an error for
// invalid configurations or if a program panics.
func Run(cfg Config, progA, progB Program) (*Result, error) {
	if cfg.Graph == nil {
		return nil, errors.New("sim: nil graph")
	}
	n := graph.Vertex(cfg.Graph.N())
	if cfg.StartA < 0 || cfg.StartA >= n || cfg.StartB < 0 || cfg.StartB >= n {
		return nil, fmt.Errorf("sim: start vertices (%d, %d) out of range [0,%d)", cfg.StartA, cfg.StartB, n)
	}
	if progA == nil || progB == nil {
		return nil, errors.New("sim: nil program")
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds(cfg.Graph)
	}

	rt := &runtime{
		g:           cfg.Graph,
		kt1:         cfg.NeighborIDs,
		whiteboards: cfg.Whiteboards,
		maxRounds:   maxRounds,
		observer:    cfg.Observer,
		noMeeting:   cfg.DisableMeeting,
		meetFrom:    cfg.MeetingFromRound,
	}
	if cfg.Whiteboards {
		rt.boards = make([]int64, cfg.Graph.N())
		for i := range rt.boards {
			rt.boards[i] = NoMark
		}
	}
	rt.agents[AgentA] = newDriver(rt, AgentA, cfg.StartA, rand.New(rand.NewPCG(cfg.Seed, 0xA)), progA)
	rt.agents[AgentB] = newDriver(rt, AgentB, cfg.StartB, rand.New(rand.NewPCG(cfg.Seed, 0xB)), progB)
	defer rt.shutdown()
	return rt.run()
}

// runtime is the per-run lockstep engine.
type runtime struct {
	g           *graph.Graph
	kt1         bool
	whiteboards bool
	boards      []int64
	maxRounds   int64
	observer    func(RoundEvent)
	noMeeting   bool
	meetFrom    int64
	round       int64
	writes      int64
	agents      [2]*driver
}

func (rt *runtime) run() (*Result, error) {
	a, b := rt.agents[AgentA], rt.agents[AgentB]
	a.start()
	b.start()
	for {
		// Rendezvous check at the beginning of the round.
		if a.pos == b.pos && !rt.noMeeting && rt.round >= rt.meetFrom {
			res := rt.result()
			res.Met = true
			res.MeetRound = rt.round
			res.MeetVertex = a.pos
			return res, nil
		}
		if rt.round >= rt.maxRounds {
			return rt.result(), nil
		}
		if a.halted && b.halted {
			return rt.result(), nil
		}
		// Fast-forward: if every live agent is mid-wait, skip ahead.
		if skip := rt.skippable(); skip > 1 {
			capped := min(skip, rt.maxRounds-rt.round)
			if rt.round < rt.meetFrom {
				// Do not skip past the detection barrier: the meeting
				// check must run exactly at meetFrom.
				capped = min(capped, rt.meetFrom-rt.round)
			}
			for _, d := range rt.agents {
				if !d.halted {
					d.waiting -= capped
					d.stays += capped
				}
			}
			rt.observe(capped)
			rt.round += capped
			continue
		}
		// Collect one action from each live agent.
		for _, d := range rt.agents {
			if d.halted {
				continue
			}
			if d.waiting > 0 {
				d.waiting--
				d.stays++
				continue
			}
			if err := d.step(); err != nil {
				return nil, fmt.Errorf("sim: agent %s: %w", d.name, err)
			}
		}
		// Commit writes (agents occupy distinct vertices here), then
		// moves.
		for _, d := range rt.agents {
			if d.pendingWrite {
				d.pendingWrite = false
				if rt.whiteboards {
					rt.boards[d.pos] = d.writeVal
					rt.writes++
				}
			}
		}
		rt.observe(1)
		for _, d := range rt.agents {
			if d.moveTo != graph.NilVertex {
				d.pos = d.moveTo
				d.moveTo = graph.NilVertex
				d.moves++
			}
		}
		rt.round++
	}
}

// skippable returns the largest number of rounds that can elapse with no
// agent needing to act (minimum of live agents' remaining waits; halted
// agents never act). Returns 0 if some live agent must act now.
func (rt *runtime) skippable() int64 {
	skip := int64(math.MaxInt64)
	live := false
	for _, d := range rt.agents {
		if d.halted {
			continue
		}
		live = true
		if d.waiting < skip {
			skip = d.waiting
		}
	}
	if !live {
		return 0
	}
	return skip
}

func (rt *runtime) observe(skipped int64) {
	if rt.observer == nil {
		return
	}
	rt.observer(RoundEvent{
		Round:   rt.round,
		PosA:    rt.agents[AgentA].pos,
		PosB:    rt.agents[AgentB].pos,
		Skipped: skipped,
	})
}

func (rt *runtime) result() *Result {
	a, b := rt.agents[AgentA], rt.agents[AgentB]
	return &Result{
		Rounds: rt.round,
		A:      AgentStats{Moves: a.moves, Stays: a.stays, Halted: a.halted},
		B:      AgentStats{Moves: b.moves, Stays: b.stays, Halted: b.halted},
		Writes: rt.writes,
	}
}

func (rt *runtime) shutdown() {
	for _, d := range rt.agents {
		if d != nil {
			d.stop()
		}
	}
}
