// Package sim implements the synchronous mobile-agent execution model
// of the paper "Fast Neighborhood Rendezvous" (§2.1): discrete
// rounds; per round each agent either stays at its current vertex or
// crosses one incident edge; local computation, whiteboard access and
// neighbor-ID inspection are free within a round; rendezvous
// completes at round t when the agents occupy the same vertex at the
// beginning of round t. The paper's setting — two agents waking
// simultaneously — is the default; a Config.Scenario generalizes a
// run to k ≥ 2 agents with per-agent wake delays and an all-gather or
// first-pair meeting predicate (see Scenario).
//
// Agents come in two styles sharing one lockstep loop:
//
//   - Program: ordinary Go functions against an Env handle. Run drives
//     each program on its own goroutine with a channel handoff per
//     acting round (the classic path); NewProgramStepper instead hosts
//     the same function on a lightweight coroutine for the fast path.
//   - Stepper: explicit state machines (Next(view) action) that the
//     runtime steps inline — no goroutines, no channels, and with
//     per-trial scratch reuse via TrialContext. This is the hot path
//     for batch trials.
//
// Multi-round waits are fast-forwarded when neither agent needs to
// act, so wait-heavy algorithms (such as the paper's no-whiteboard
// algorithm) simulate in time proportional to their activity, not to
// their round count.
package sim

import (
	"errors"
	"fmt"
	"math"

	"fnr/internal/graph"
)

// AgentName identifies one agent by team index. The paper calls its
// two agents a and b and allows them to run different algorithms
// (asymmetry); k-agent scenarios number agents 0..k-1 in the same
// scheme.
type AgentName uint8

// The paper's two agents (team indices 0 and 1).
const (
	AgentA AgentName = iota
	AgentB
)

// String returns "a" for agent 0, "b" for agent 1, and so on through
// "z"; agents past index 25 render as "agent26", "agent27", ….
func (n AgentName) String() string {
	if n < 26 {
		return string(rune('a' + n))
	}
	return fmt.Sprintf("agent%d", uint8(n))
}

// NoMark is the whiteboard content ⊥ (empty).
const NoMark int64 = math.MinInt64

// Config describes one simulation run.
type Config struct {
	// Graph is the static environment. Required.
	Graph *graph.Graph
	// StartA and StartB are the agents' initial vertices in the
	// default two-agent setting. Ignored when Scenario is set.
	StartA, StartB graph.Vertex
	// Scenario, if non-nil, replaces the two-agent setting with a
	// k-agent, delayed-wakeup one: per-agent starts and wake delays
	// and the meeting predicate come from the scenario, and
	// StartA/StartB are ignored. Team-shaped entry points (RunTeam)
	// require exactly K() steppers; nil means the legacy pair.
	Scenario *Scenario
	// NeighborIDs enables the KT1-style accessible port numbering:
	// agents see the IDs of their current vertex's neighbors. When
	// false (KT0), ports are bare indices and views carry no IDs.
	NeighborIDs bool
	// Whiteboards enables per-vertex whiteboards. When false, writes
	// are rejected and reads return NoMark — used to certify that the
	// Theorem 2 algorithm never relies on whiteboards.
	Whiteboards bool
	// MaxRounds stops the run if rendezvous has not completed. Zero
	// selects the generous default 4n²+1000 (beyond any exploration
	// bound for the instances we run).
	MaxRounds int64
	// Seed derives both agents' private random streams. Seed 0 is
	// normalized to 1 here, in the simulator, so every entry point
	// (fnr.Rendezvous, the batch engine, direct Run/RunSteppers
	// calls) agrees on what the default-seeded run is.
	Seed uint64
	// DisableMeeting turns off rendezvous detection: agents pass
	// through each other and the run ends only on MaxRounds or both
	// agents halting. This models the paper's single-agent "illegal
	// runs" (the X̂(G, a, v, f(n)) executions of §5) and is used by
	// diagnostic experiments that study one agent in isolation.
	DisableMeeting bool
	// MeetingFromRound suppresses rendezvous detection before the
	// given round. Incidental co-locations while agent a is still
	// building its dense set end real runs early (and count for the
	// upper bounds); the mechanism-isolation experiments set this to
	// the schedule barrier to measure the designed rendezvous phase
	// alone. Zero means detection is on from the start.
	MeetingFromRound int64
	// Observer, if non-nil, is called once per executed round with the
	// positions at the beginning of the round. Fast-forwarded waiting
	// rounds are reported in one call with Skipped > 1.
	Observer func(RoundEvent)
}

// RoundEvent is a point-in-time observation delivered to Config.Observer.
type RoundEvent struct {
	Round   int64
	PosA    graph.Vertex
	PosB    graph.Vertex
	Skipped int64 // number of rounds this event covers (≥ 1)
}

// Result reports the outcome of a run.
type Result struct {
	// Met reports whether the agents occupied the same vertex at the
	// beginning of some round ≤ MaxRounds.
	Met bool
	// MeetRound is the completion round (valid when Met).
	MeetRound int64
	// MeetVertex is the rendezvous vertex (valid when Met).
	MeetVertex graph.Vertex
	// Rounds is the number of rounds executed (equals MeetRound when
	// Met, and MaxRounds or the both-halted round otherwise).
	Rounds int64
	// A and B are the first two agents' statistics — always filled,
	// at every team size.
	A, B AgentStats
	// Agents holds every agent's statistics (including agents 0 and
	// 1) when the run had more than two agents; nil on two-agent
	// runs. Like the Result itself on the lane path, the slice is a
	// reusable per-slot buffer — copy what must be retained.
	Agents []AgentStats
	// Writes counts committed whiteboard writes (all agents).
	Writes int64
}

// TotalMoves sums edge traversals over every agent of the run.
func (r *Result) TotalMoves() int64 {
	if r.Agents == nil {
		return r.A.Moves + r.B.Moves
	}
	var total int64
	for i := range r.Agents {
		total += r.Agents[i].Moves
	}
	return total
}

// AgentStats aggregates one agent's activity.
type AgentStats struct {
	// Moves is the number of edge traversals.
	Moves int64
	// Stays is the number of rounds spent waiting (including
	// fast-forwarded rounds).
	Stays int64
	// Halted reports whether the program returned or called Halt.
	Halted bool
}

// DefaultMaxRounds returns the fallback round budget for g: 4n²+1000.
func DefaultMaxRounds(g *graph.Graph) int64 {
	n := int64(g.N())
	return 4*n*n + 1000
}

// Run executes the two programs on cfg's graph until rendezvous, both
// agents halting, or the round budget expiring. It returns an error for
// invalid configurations or if a program panics. Each program runs on
// its own goroutine with a channel handoff per acting round; batch
// callers should prefer the stepper path (RunSteppers with steppers or
// NewProgramStepper adapters), which steps agents inline.
func Run(cfg Config, progA, progB Program) (*Result, error) {
	var sa, sb Stepper
	if progA != nil {
		sa = newChanProgramStepper(progA)
	}
	if progB != nil {
		sb = newChanProgramStepper(progB)
	}
	return runTeam(cfg, NewTrialContext(), []Stepper{sa, sb})
}

// runTeam is the single lockstep entry point behind Run, RunSteppers
// and RunTeam: validate, wire the agents to tc's scratch, loop.
func runTeam(cfg Config, tc *TrialContext, team []Stepper) (*Result, error) {
	// Lifecycle guarantee first, before any validation return: every
	// stepper handed to a run gets its Finish hook on every exit path,
	// so adapter goroutines/coroutines never outlive the run (or touch
	// tc's buffers after they are handed to the next trial). See
	// Finisher. Finish order is reverse team order, matching the
	// stacked defers of the historical two-agent path.
	defer func() {
		for i := len(team) - 1; i >= 0; i-- {
			Finish(team[i])
		}
	}()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	for _, st := range team {
		if st == nil {
			return nil, errors.New("sim: nil agent (program or stepper)")
		}
	}
	if len(team) != cfg.teamSize() {
		return nil, fmt.Errorf("sim: %d steppers for a %d-agent scenario", len(team), cfg.teamSize())
	}
	tc.arm(cfg, team, false)
	return tc.rt.run()
}

// validate checks the configuration invariants shared by every entry
// point (solo runs and the lane scheduler alike).
func (cfg *Config) validate() error {
	if cfg.Graph == nil {
		return errors.New("sim: nil graph")
	}
	n := graph.Vertex(cfg.Graph.N())
	if sc := cfg.Scenario; sc != nil {
		return sc.Validate(n)
	}
	if cfg.StartA < 0 || cfg.StartA >= n || cfg.StartB < 0 || cfg.StartB >= n {
		return fmt.Errorf("sim: start vertices (%d, %d) out of range [0,%d)", cfg.StartA, cfg.StartB, n)
	}
	return nil
}

// arm primes tc for one run of cfg: reset the lockstep runtime in
// place, re-arm the whiteboard array, reseed every agent's private
// stream, and hand each stepper its run context — Init for a freshly
// built team, Reset for a reused one (reuse=true requires every
// stepper to implement Reusable). The caller has validated cfg and
// the steppers, and len(team) == cfg.teamSize(). The runtime and the
// per-agent state live on the trial context: one wholesale reset per
// run instead of one allocation per trial.
func (tc *TrialContext) arm(cfg Config, team []Stepper, reuse bool) {
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds(cfg.Graph)
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	k := len(team)
	tc.ensureAgents(k)
	rt := &tc.rt
	*rt = runtime{
		g:             cfg.Graph,
		kt1:           cfg.NeighborIDs,
		whiteboards:   cfg.Whiteboards,
		maxRounds:     maxRounds,
		observer:      cfg.Observer,
		noMeeting:     cfg.DisableMeeting,
		meetFrom:      cfg.MeetingFromRound,
		meetFirstPair: cfg.Scenario != nil && cfg.Scenario.MeetFirstPair,
	}
	if cfg.Whiteboards {
		rt.boards = tc.boardsFor(cfg.Graph.N())
	}
	rt.agents = tc.agents[:k]
	for i, st := range team {
		ag := &rt.agents[i]
		*ag = agentState{
			name:    AgentName(i),
			st:      st,
			pos:     cfg.startOf(i),
			moveTo:  graph.NilVertex,
			waiting: cfg.delayOf(i),
		}
		ctx := &tc.stepCtx[i]
		*ctx = StepContext{
			Name:        ag.name,
			NPrime:      cfg.Graph.NPrime(),
			NeighborIDs: cfg.NeighborIDs,
			Whiteboards: cfg.Whiteboards,
			Rand:        tc.randFor(i, seed, 0xA+uint64(i)),
			Scratch:     &tc.scratch[i],
			GraphStamp:  cfg.Graph.Stamp(),
		}
		if reuse {
			st.(Reusable).Reset(ctx)
		} else {
			st.Init(ctx)
		}
	}
}

// runtime is the per-run lockstep engine. agents aliases the owning
// TrialContext's per-agent buffer (see TrialContext.ensureAgents), so
// resetting the runtime wholesale per trial stays allocation-free at
// any team size.
type runtime struct {
	g             *graph.Graph
	kt1           bool
	whiteboards   bool
	boards        []int64
	maxRounds     int64
	observer      func(RoundEvent)
	noMeeting     bool
	meetFrom      int64
	meetFirstPair bool
	round         int64
	writes        int64
	agents        []agentState
}

// agentState is the runtime-side state of one agent.
type agentState struct {
	name         AgentName
	st           Stepper
	pos          graph.Vertex
	moveTo       graph.Vertex
	waiting      int64
	halted       bool
	pendingWrite bool
	writeVal     int64
	moves        int64
	stays        int64
	view         View
}

func (rt *runtime) run() (*Result, error) {
	res := new(Result)
	for {
		done, err := rt.tick(res)
		if err != nil {
			return nil, err
		}
		if done {
			return res, nil
		}
	}
}

// tick executes one iteration of the lockstep loop — the round-start
// checks, then at most one acting round (or one fast-forwarded block
// of waiting rounds) — and reports whether the run ended, filling out
// with the final result when it did. Factored out of run so the lane
// scheduler (TrialLane) can interleave many resident trials one tick
// at a time with semantics identical to a solo run.
func (rt *runtime) tick(out *Result) (done bool, err error) {
	// Meeting check at the beginning of the round.
	if !rt.noMeeting && rt.round >= rt.meetFrom {
		if v, met := rt.met(); met {
			rt.fill(out)
			out.Met = true
			out.MeetRound = rt.round
			out.MeetVertex = v
			return true, nil
		}
	}
	if rt.round >= rt.maxRounds {
		rt.fill(out)
		return true, nil
	}
	allHalted := true
	for i := range rt.agents {
		if !rt.agents[i].halted {
			allHalted = false
			break
		}
	}
	if allHalted {
		rt.fill(out)
		return true, nil
	}
	// Fast-forward: if every live agent is mid-wait, skip ahead.
	if skip := rt.skippable(); skip > 1 {
		capped := min(skip, rt.maxRounds-rt.round)
		if rt.round < rt.meetFrom {
			// Do not skip past the detection barrier: the meeting
			// check must run exactly at meetFrom.
			capped = min(capped, rt.meetFrom-rt.round)
		}
		for i := range rt.agents {
			if d := &rt.agents[i]; !d.halted {
				d.waiting -= capped
				d.stays += capped
			}
		}
		rt.observe(capped)
		rt.round += capped
		return false, nil
	}
	// Collect one action from each live agent, a first.
	for i := range rt.agents {
		d := &rt.agents[i]
		if d.halted {
			continue
		}
		if d.waiting > 0 {
			d.waiting--
			d.stays++
			continue
		}
		if err := rt.step(d); err != nil {
			return true, fmt.Errorf("sim: agent %s: %w", d.name, err)
		}
	}
	// Commit whiteboard writes in agent order. When agents occupy
	// the same vertex (possible under DisableMeeting or before
	// MeetingFromRound) and several wrote this round, the
	// highest-indexed agent's value wins — last-writer-wins in team
	// order (b over a in the paper's pair) is a documented
	// guarantee, and every write still counts.
	for i := range rt.agents {
		d := &rt.agents[i]
		if d.pendingWrite {
			d.pendingWrite = false
			if rt.whiteboards {
				rt.boards[d.pos] = d.writeVal
				rt.writes++
			}
		}
	}
	rt.observe(1)
	for i := range rt.agents {
		d := &rt.agents[i]
		if d.moveTo != graph.NilVertex {
			d.pos = d.moveTo
			d.moveTo = graph.NilVertex
			d.moves++
		}
	}
	rt.round++
	return false, nil
}

// step builds d's view of the current round, asks its stepper for one
// action, and applies it to the runtime state.
func (rt *runtime) step(d *agentState) error {
	v := &d.view
	v.Round = rt.round
	v.HereID = rt.g.ID(d.pos)
	v.Degree = rt.g.Degree(d.pos)
	v.Whiteboard = NoMark
	if rt.whiteboards {
		v.Whiteboard = rt.boards[d.pos]
	}
	v.NeighborIDs = nil
	v.g, v.here = nil, graph.NilVertex
	if rt.kt1 {
		// Zero-copy: the graph's precomputed per-vertex ID list, with
		// the graph's ID->port index backing PortOfID. Agents hold
		// both read-only (documented on View and Env).
		v.NeighborIDs = rt.g.NeighborIDList(d.pos)
		v.g, v.here = rt.g, d.pos
	}
	act := d.st.Next(v)
	switch act.kind {
	case actPanic:
		d.halted = true
		return act.err
	case actHalt:
		d.halted = true
	case actStay:
		d.waiting = max(act.wait, 1) - 1
		d.stays++
	case actMove:
		if act.port < 0 || act.port >= v.Degree {
			d.halted = true
			return fmt.Errorf("moved through port %d of a degree-%d vertex", act.port, v.Degree)
		}
		d.moveTo = rt.g.Neighbor(d.pos, act.port)
	}
	if act.write {
		d.pendingWrite = true
		d.writeVal = act.writeVal
	}
	return nil
}

// met evaluates the meeting predicate at the beginning of a round:
// all agents gathered at one vertex by default, or any two agents
// co-located under the first-pair predicate (the two coincide at
// k=2). It returns the meeting vertex when the predicate holds.
func (rt *runtime) met() (graph.Vertex, bool) {
	ags := rt.agents
	if !rt.meetFirstPair || len(ags) == 2 {
		p := ags[0].pos
		for i := 1; i < len(ags); i++ {
			if ags[i].pos != p {
				return graph.NilVertex, false
			}
		}
		return p, true
	}
	for i := range ags {
		for j := i + 1; j < len(ags); j++ {
			if ags[i].pos == ags[j].pos {
				return ags[i].pos, true
			}
		}
	}
	return graph.NilVertex, false
}

// skippable returns the largest number of rounds that can elapse with no
// agent needing to act (minimum of live agents' remaining waits; halted
// agents never act). Returns 0 if some live agent must act now.
func (rt *runtime) skippable() int64 {
	skip := int64(math.MaxInt64)
	live := false
	for i := range rt.agents {
		d := &rt.agents[i]
		if d.halted {
			continue
		}
		live = true
		if d.waiting < skip {
			skip = d.waiting
		}
	}
	if !live {
		return 0
	}
	return skip
}

func (rt *runtime) observe(skipped int64) {
	if rt.observer == nil {
		return
	}
	rt.observer(RoundEvent{
		Round:   rt.round,
		PosA:    rt.agents[AgentA].pos,
		PosB:    rt.agents[AgentB].pos,
		Skipped: skipped,
	})
}

// fill overwrites out with the run's final statistics (the caller
// sets the Met fields when the run ended in a rendezvous). Writing
// into a caller-provided box lets the lane path reuse one Result per
// slot instead of allocating one per trial; on k>2 runs the box's
// Agents slice is reused the same way.
func (rt *runtime) fill(out *Result) {
	a, b := &rt.agents[0], &rt.agents[1]
	agents := out.Agents[:0]
	*out = Result{
		Rounds: rt.round,
		A:      AgentStats{Moves: a.moves, Stays: a.stays, Halted: a.halted},
		B:      AgentStats{Moves: b.moves, Stays: b.stays, Halted: b.halted},
		Writes: rt.writes,
	}
	if len(rt.agents) > 2 {
		for i := range rt.agents {
			d := &rt.agents[i]
			agents = append(agents, AgentStats{Moves: d.moves, Stays: d.stays, Halted: d.halted})
		}
		out.Agents = agents
	}
}
