package sim

import (
	"errors"
	"fmt"
)

// TrialLane is the batch engine's lockstep scheduler: it keeps up to
// W trials of the same configuration resident at once, stored as
// parallel per-slot slices (struct-of-arrays), and advances every
// resident trial by one runtime tick per sweep. A finished trial is
// emitted and its slot immediately re-armed with the next trial of
// the caller's range, so a worker's stepper teams and per-slot
// scratch (whiteboards, PCG state, walker tables) live for the whole
// range instead of one trial:
//
//   - When every stepper of the team implements Reusable, each slot
//     builds its team exactly once and Reset re-arms it per trial —
//     the builder cost is amortized away entirely.
//   - Otherwise the team is rebuilt (and the old one Finished) per
//     trial, which is always correct, just slower.
//
// The lane never changes results: each resident trial owns a full
// TrialContext (its own whiteboard array, random streams, scratch and
// lockstep runtime), ticks are the same state transitions a solo
// runTeam performs, and trials are identified by index, so the
// lane width — like the engine's worker count — affects wall-clock
// time and memory only. The engine's differential suite pins this.
//
// A TrialLane is not safe for concurrent use; give each worker
// goroutine its own.
type TrialLane struct {
	// Stop, if set, is polled at every refill boundary: once it
	// returns true the lane arms no further trials, drains the trials
	// already resident (a stop never tears a trial mid-flight), and
	// Run returns its watermark. The engine's cancellation plumbing
	// sets it to a context check.
	Stop func() bool
	// Hook, if set, observes every slot arm (see ArmHook) — the
	// engine's fault-injection seam.
	Hook ArmHook

	build    func() ([]Stepper, error)
	canReset bool // every stepper implements Reusable (set at build)

	// Per-slot parallel state, indexed by lane slot: the resident
	// trial (-1 = empty), the stepper team, and the TrialContext
	// holding the slot's agent positions, round counters, PCG states
	// and scratch. res is the slot's reusable result box.
	trial    []int
	steppers [][]Stepper
	built    []bool
	tcs      []*TrialContext
	res      []Result

	live int
}

// ArmHook intercepts slot arming, once per trial. PreArm runs before
// the slot is touched: a non-nil error skips the trial entirely and
// surfaces as that trial's error outcome (how the engine injects
// deterministic builder faults). PostArm runs after a successful arm
// with the team that will execute the trial — the seam through
// which per-trial fault state reaches stepper wrappers the lane built
// once and re-arms many times. The team slice is the lane's; hooks
// must not retain or mutate it. Hooks must be deterministic in the
// trial index alone; the lane calls them from its Run loop only.
type ArmHook interface {
	PreArm(trial int) error
	PostArm(trial int, team []Stepper)
}

// NewTrialLane returns a lane of the given width over a pair-shaped
// stepper builder — the historical two-agent constructor, now a thin
// wrapper over NewTeamLane.
func NewTrialLane(width int, build func() (Stepper, Stepper, error)) *TrialLane {
	return NewTeamLane(width, func() ([]Stepper, error) {
		a, b, err := build()
		if err != nil {
			Finish(a)
			Finish(b)
			return nil, err
		}
		return []Stepper{a, b}, nil
	})
}

// NewTeamLane returns a lane of the given width (clamped to ≥ 1)
// over the given team builder. The builder must return one stepper
// per scenario agent, in team order; the lane owns the steppers it
// builds: call Close when done with the lane to honor their Finish
// lifecycle.
func NewTeamLane(width int, build func() ([]Stepper, error)) *TrialLane {
	if width < 1 {
		width = 1
	}
	l := &TrialLane{
		build:    build,
		trial:    make([]int, width),
		steppers: make([][]Stepper, width),
		built:    make([]bool, width),
		tcs:      make([]*TrialContext, width),
		res:      make([]Result, width),
	}
	for s := range l.trial {
		l.trial[s] = -1
		l.tcs[s] = NewTrialContext()
	}
	return l
}

// Width returns the lane's slot count.
func (l *TrialLane) Width() int { return len(l.trial) }

// Run executes trials [from, to) of cfg in lockstep, with trial t
// seeded by seedOf(t) (cfg.Seed is ignored; seed 0 normalizes to 1
// exactly as everywhere else). emit is called exactly once per trial,
// in completion order — not trial order — with either the trial's
// result or its error (validation failures, builder errors and
// aborts, matching what a solo run of that trial would return). The
// *Result points at the slot's reusable box and is only valid during
// the emit call.
//
// Run may be called repeatedly on one lane (the engine calls it once
// per claimed chunk); steppers and scratch stay warm across calls.
//
// Run returns its watermark: the first trial index of [from, to) it
// did not run — to when the range completed, and the first un-armed
// index when Stop ended the run early. Every trial below the
// watermark was emitted exactly once (resident trials drain before
// Run returns); no trial at or above it was touched.
func (l *TrialLane) Run(cfg Config, seedOf func(trial int) uint64, from, to int, emit func(trial int, res *Result, err error)) int {
	if from < 0 {
		from = 0
	}
	if from >= to {
		return from
	}
	if l.Stop != nil && l.Stop() {
		return from
	}
	if err := cfg.validate(); err != nil {
		for t := from; t < to; t++ {
			emit(t, nil, err)
		}
		return to
	}
	next := from
	for s := range l.trial {
		next = l.refill(s, cfg, seedOf, next, to, emit)
	}
	for l.live > 0 {
		for s := range l.trial {
			t := l.trial[s]
			if t < 0 {
				continue
			}
			done, err := l.tickSlot(s)
			if !done {
				continue
			}
			l.trial[s] = -1
			l.live--
			if err != nil {
				emit(t, nil, err)
			} else {
				emit(t, &l.res[s], nil)
			}
			next = l.refill(s, cfg, seedOf, next, to, emit)
		}
	}
	return next
}

// tickSlot advances slot s by one runtime tick, converting a stepper
// panic into the trial's error and quarantining the slot: a panicking
// Next may have left the slot's steppers and TrialContext scratch in
// any state, so neither is ever re-armed — the team is finished
// (panic-tolerantly) and the context rebuilt fresh.
func (l *TrialLane) tickSlot(s int) (done bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			l.quarantine(s)
			done, err = true, PanicError(r)
		}
	}()
	return l.tcs[s].rt.tick(&l.res[s])
}

// refill arms slot s with successive trials starting at next until
// one arms successfully or the range [next, to) drains, emitting an
// error outcome for every trial whose arm failed (builder errors and
// PreArm vetoes — exactly how the one-at-a-time path surfaces them).
// It returns the new next. A Stop request is honored here, at the
// refill boundary: the slot is simply left empty.
func (l *TrialLane) refill(s int, cfg Config, seedOf func(int) uint64, next, to int, emit func(int, *Result, error)) int {
	if l.Stop != nil && l.Stop() {
		return next
	}
	for next < to {
		t := next
		next++
		if l.Hook != nil {
			if err := l.Hook.PreArm(t); err != nil {
				emit(t, nil, err)
				continue
			}
		}
		if err := l.armSlot(s, cfg, seedOf(t)); err != nil {
			emit(t, nil, err)
			continue
		}
		if l.Hook != nil {
			l.Hook.PostArm(t, l.steppers[s])
		}
		l.trial[s] = t
		l.live++
		break
	}
	return next
}

// armSlot is arm with panic isolation: a panicking builder, Init or
// Reset quarantines the slot and surfaces as the trial's error.
func (l *TrialLane) armSlot(s int, cfg Config, seed uint64) (err error) {
	defer func() {
		if r := recover(); r != nil {
			l.quarantine(s)
			err = PanicError(r)
		}
	}()
	return l.arm(s, cfg, seed)
}

// quarantine abandons slot s's possibly-poisoned state after a panic:
// the stepper team is finished (tolerating Finish itself panicking)
// and never re-armed, and the slot's TrialContext — whiteboard array,
// RNG state, agent scratch, runtime — is replaced wholesale, so
// nothing a panicking trial touched can influence a later trial.
func (l *TrialLane) quarantine(s int) {
	if l.built[s] {
		for i := len(l.steppers[s]) - 1; i >= 0; i-- {
			safeFinish(l.steppers[s][i])
		}
	}
	l.built[s] = false
	l.steppers[s] = nil
	l.trial[s] = -1
	l.tcs[s] = NewTrialContext()
}

// arm readies slot s for one trial: Reset the resident team when the
// reuse contract holds, rebuild it otherwise, then prime the slot's
// TrialContext for the seeded run.
func (l *TrialLane) arm(s int, cfg Config, seed uint64) error {
	if l.built[s] && !l.canReset {
		for i := len(l.steppers[s]) - 1; i >= 0; i-- {
			Finish(l.steppers[s][i])
		}
		l.built[s] = false
	}
	reuse := l.built[s]
	if !reuse {
		team, err := l.build()
		if err == nil {
			if len(team) == 0 {
				err = errors.New("sim: lane builder returned an empty team")
			}
			for _, st := range team {
				if st == nil {
					err = errors.New("sim: lane builder returned a nil stepper")
					break
				}
			}
		}
		if err != nil {
			for i := len(team) - 1; i >= 0; i-- {
				Finish(team[i])
			}
			return err
		}
		l.steppers[s] = team
		l.built[s] = true
		l.canReset = true
		for _, st := range team {
			if _, ok := st.(Reusable); !ok {
				l.canReset = false
				break
			}
		}
	}
	if got, want := len(l.steppers[s]), cfg.teamSize(); got != want {
		return fmt.Errorf("sim: lane builder returned %d steppers for a %d-agent scenario", got, want)
	}
	cfg.Seed = seed
	l.tcs[s].arm(cfg, l.steppers[s], reuse)
	return nil
}

// Close finishes every built stepper team and empties the lane. The
// lane remains usable afterwards (slots rebuild on the next Run).
// Teardown tolerates a Finish panic (a stopped run may leave slots
// whose steppers were abandoned mid-trial).
func (l *TrialLane) Close() {
	for s := range l.steppers {
		if !l.built[s] {
			continue
		}
		for i := len(l.steppers[s]) - 1; i >= 0; i-- {
			safeFinish(l.steppers[s][i])
		}
		l.built[s] = false
		l.steppers[s] = nil
		l.trial[s] = -1
	}
	l.live = 0
}
