package sim

import "errors"

// TrialLane is the batch engine's lockstep scheduler: it keeps up to
// W trials of the same configuration resident at once, stored as
// parallel per-slot slices (struct-of-arrays), and advances every
// resident trial by one runtime tick per sweep. A finished trial is
// emitted and its slot immediately re-armed with the next trial of
// the caller's range, so a worker's stepper pairs and per-slot
// scratch (whiteboards, PCG state, walker tables) live for the whole
// range instead of one trial:
//
//   - When both steppers implement Reusable, each slot builds its
//     pair exactly once and Reset re-arms it per trial — the
//     spec.Steppers builder cost is amortized away entirely.
//   - Otherwise the pair is rebuilt (and the old one Finished) per
//     trial, which is always correct, just slower.
//
// The lane never changes results: each resident trial owns a full
// TrialContext (its own whiteboard array, random streams, scratch and
// lockstep runtime), ticks are the same state transitions a solo
// runSteppers performs, and trials are identified by index, so the
// lane width — like the engine's worker count — affects wall-clock
// time and memory only. The engine's differential suite pins this.
//
// A TrialLane is not safe for concurrent use; give each worker
// goroutine its own.
type TrialLane struct {
	build    func() (Stepper, Stepper, error)
	canReset bool // both steppers implement Reusable (set at first build)

	// Per-slot parallel state, indexed by lane slot: the resident
	// trial (-1 = empty), the stepper pair, and the TrialContext
	// holding the slot's agent positions, round counters, PCG states
	// and scratch. res is the slot's reusable result box.
	trial    []int
	steppers [][2]Stepper
	built    []bool
	tcs      []*TrialContext
	res      []Result

	live int
}

// NewTrialLane returns a lane of the given width (clamped to ≥ 1)
// over the given stepper builder. The lane owns the steppers it
// builds: call Close when done with the lane to honor their Finish
// lifecycle.
func NewTrialLane(width int, build func() (Stepper, Stepper, error)) *TrialLane {
	if width < 1 {
		width = 1
	}
	l := &TrialLane{
		build:    build,
		trial:    make([]int, width),
		steppers: make([][2]Stepper, width),
		built:    make([]bool, width),
		tcs:      make([]*TrialContext, width),
		res:      make([]Result, width),
	}
	for s := range l.trial {
		l.trial[s] = -1
		l.tcs[s] = NewTrialContext()
	}
	return l
}

// Width returns the lane's slot count.
func (l *TrialLane) Width() int { return len(l.trial) }

// Run executes trials [from, to) of cfg in lockstep, with trial t
// seeded by seedOf(t) (cfg.Seed is ignored; seed 0 normalizes to 1
// exactly as everywhere else). emit is called exactly once per trial,
// in completion order — not trial order — with either the trial's
// result or its error (validation failures, builder errors and
// aborts, matching what a solo run of that trial would return). The
// *Result points at the slot's reusable box and is only valid during
// the emit call.
//
// Run may be called repeatedly on one lane (the engine calls it once
// per claimed chunk); steppers and scratch stay warm across calls.
func (l *TrialLane) Run(cfg Config, seedOf func(trial int) uint64, from, to int, emit func(trial int, res *Result, err error)) {
	if from < 0 {
		from = 0
	}
	if from >= to {
		return
	}
	if err := cfg.validate(); err != nil {
		for t := from; t < to; t++ {
			emit(t, nil, err)
		}
		return
	}
	next := from
	for s := range l.trial {
		next = l.refill(s, cfg, seedOf, next, to, emit)
	}
	for l.live > 0 {
		for s := range l.trial {
			t := l.trial[s]
			if t < 0 {
				continue
			}
			done, err := l.tcs[s].rt.tick(&l.res[s])
			if !done {
				continue
			}
			l.trial[s] = -1
			l.live--
			if err != nil {
				emit(t, nil, err)
			} else {
				emit(t, &l.res[s], nil)
			}
			next = l.refill(s, cfg, seedOf, next, to, emit)
		}
	}
}

// refill arms slot s with successive trials starting at next until
// one arms successfully or the range [next, to) drains, emitting an
// error outcome for every trial whose arm failed (builder errors —
// exactly how the one-at-a-time path surfaces them). It returns the
// new next.
func (l *TrialLane) refill(s int, cfg Config, seedOf func(int) uint64, next, to int, emit func(int, *Result, error)) int {
	for next < to {
		t := next
		next++
		if err := l.arm(s, cfg, seedOf(t)); err != nil {
			emit(t, nil, err)
			continue
		}
		l.trial[s] = t
		l.live++
		break
	}
	return next
}

// arm readies slot s for one trial: Reset the resident pair when the
// reuse contract holds, rebuild it otherwise, then prime the slot's
// TrialContext for the seeded run.
func (l *TrialLane) arm(s int, cfg Config, seed uint64) error {
	if l.built[s] && !l.canReset {
		Finish(l.steppers[s][0])
		Finish(l.steppers[s][1])
		l.built[s] = false
	}
	reuse := l.built[s]
	if !reuse {
		a, b, err := l.build()
		if err != nil || a == nil || b == nil {
			Finish(a)
			Finish(b)
			if err == nil {
				err = errors.New("sim: lane builder returned a nil stepper")
			}
			return err
		}
		l.steppers[s] = [2]Stepper{a, b}
		l.built[s] = true
		_, ra := a.(Reusable)
		_, rb := b.(Reusable)
		l.canReset = ra && rb
	}
	cfg.Seed = seed
	l.tcs[s].arm(cfg, l.steppers[s][0], l.steppers[s][1], reuse)
	return nil
}

// Close finishes every built stepper pair and empties the lane. The
// lane remains usable afterwards (slots rebuild on the next Run).
func (l *TrialLane) Close() {
	for s := range l.steppers {
		if !l.built[s] {
			continue
		}
		Finish(l.steppers[s][0])
		Finish(l.steppers[s][1])
		l.built[s] = false
		l.steppers[s] = [2]Stepper{}
		l.trial[s] = -1
	}
	l.live = 0
}
