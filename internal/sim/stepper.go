package sim

import (
	"math/rand/v2"

	"fnr/internal/graph"
)

// Stepper is an agent algorithm in state-machine style: the lockstep
// runtime calls Next once per acting round with the agent's current
// observation and receives the action to perform. Steppers run inline
// on the runtime's goroutine — no goroutines, no channel handoffs —
// which makes them the fast path for batch trials (see
// TrialContext.RunSteppers and the engine's automatic path selection).
//
// A Stepper is built fresh for every run and may keep arbitrary state
// between Next calls. Init is called exactly once, before round 0,
// with the agent's identity and private random stream; Next is never
// called after it returns Halt or Abort, nor while a previous StayFor
// is still elapsing.
//
// Direct-style Programs remain fully supported: NewProgramStepper
// adapts any Program into a Stepper via a lightweight coroutine, and
// Run drives Programs through the classic goroutine-backed adapter.
type Stepper interface {
	// Init receives the run-constant context before round 0. The
	// context's fields (including ctx.Rand) are only valid for this
	// run, and the *StepContext itself only during the Init call (the
	// runtime reuses the box across trials): copy the fields out,
	// never retain the pointer.
	Init(ctx *StepContext)
	// Next returns the agent's action for the current acting round.
	// The View and its NeighborIDs buffer are shared with the runtime
	// and valid only until the agent's next acting round; copy what
	// must be retained.
	Next(v *View) Action
}

// StepContext carries the run-constant inputs handed to a Stepper's
// Init — the stepper-path counterpart of Env's accessor methods.
type StepContext struct {
	// Name is which agent the stepper is running as.
	Name AgentName
	// NPrime is the ID-space bound n' known to agents (paper §2.1).
	NPrime int64
	// NeighborIDs reports KT1-style neighbor-ID access: when false,
	// View.NeighborIDs is always nil.
	NeighborIDs bool
	// Whiteboards reports whether the run provides whiteboards; in a
	// whiteboard-free run staged writes are silently dropped, so
	// strategies that depend on boards should Abort when this is
	// false.
	Whiteboards bool
	// Rand is the agent's private deterministic random stream, seeded
	// from (Config.Seed, agent name) exactly as on the Program path.
	Rand *rand.Rand
	// Scratch is this agent's reusable scratch slot on the trial
	// context driving the run, or nil when the runtime offers no reuse
	// (hand-built contexts in tests). See AgentScratch.
	Scratch *AgentScratch
	// GraphStamp is the run graph's process-unique construction
	// identity (graph.Graph.Stamp), or 0 when unknown (hand-built
	// contexts). Equal non-zero stamps across runs guarantee the same
	// immutable graph, so scratch parked on the slot may carry
	// graph-derived caches between trials keyed on it.
	GraphStamp uint64
}

// AgentScratch is one agent's opaque scratch slot on a TrialContext.
// An algorithm implementation may park reusable per-run state here
// (large lookup tables, counters) and find it again on the next trial
// run by the same worker, turning Θ(n)-per-trial allocations into
// one-time warm-up cost. The simulator never touches the value; like
// every TrialContext buffer it must never influence results — a fresh
// slot and a reused slot have to produce identical runs (the engine's
// differential suite enforces this for the paper's algorithms).
type AgentScratch struct{ v any }

// Get returns the parked value, or nil on a fresh (or absent) slot.
func (s *AgentScratch) Get() any {
	if s == nil {
		return nil
	}
	return s.v
}

// Set parks a value on the slot (a no-op on a nil slot).
func (s *AgentScratch) Set(v any) {
	if s != nil {
		s.v = v
	}
}

// View is the per-round observation handed to an agent: the state of
// its current vertex at the beginning of the round.
type View struct {
	// Round is the current round number.
	Round int64
	// HereID is the ID of the agent's current vertex.
	HereID int64
	// Degree is the degree of the current vertex.
	Degree int
	// NeighborIDs holds the IDs of the current vertex's neighbors in
	// local port order, or nil in KT0 mode. The slice is shared with
	// the graph (zero-copy) and must be treated as strictly read-only;
	// treat it as valid only for the acting round.
	NeighborIDs []int64
	// Whiteboard is the whiteboard content of the current vertex as of
	// the beginning of the round (NoMark if empty or disabled).
	Whiteboard int64

	// g/here back PortOfID with the graph's precomputed ID->port
	// index when the runtime grants neighbor-ID access; a View built
	// by hand (tests) falls back to scanning NeighborIDs.
	g    *graph.Graph
	here graph.Vertex
}

// PortOfID returns the local port leading to the neighbor with the
// given ID, or ok=false if no such neighbor is visible (including all
// KT0 runs, where NeighborIDs is nil).
func (v *View) PortOfID(id int64) (port int, ok bool) {
	if v.g != nil {
		if p := v.g.PortOfID(v.here, id); p >= 0 {
			return p, true
		}
		return -1, false
	}
	for p, nid := range v.NeighborIDs {
		if nid == id {
			return p, true
		}
	}
	return -1, false
}

// Action is one agent decision for one acting round. Build actions
// with the constructors (Stay, StayFor, Move, Halt, Abort) and attach
// a whiteboard write with WithWrite; the zero value is a 1-round stay.
type Action struct {
	kind     actionKind
	port     int   // actMove
	wait     int64 // actStay: total rounds to spend staying (≥ 1)
	write    bool  // commit a whiteboard write at the current vertex
	writeVal int64
	err      error // actPanic
}

type actionKind uint8

const (
	actStay actionKind = iota
	actMove
	actHalt
	actPanic
)

// Stay spends one round at the current vertex.
func Stay() Action { return Action{kind: actStay, wait: 1} }

// StayFor spends k rounds at the current vertex (k < 1 is clamped to
// 1: unlike Env.StayFor, a Stepper cannot act without consuming a
// round). The runtime fast-forwards overlapping waits, so large k is
// cheap.
func StayFor(k int64) Action {
	if k < 1 {
		k = 1
	}
	return Action{kind: actStay, wait: k}
}

// Move crosses the edge behind local port p (one round). An
// out-of-range port aborts the run with an error, matching a Program
// panic.
func Move(p int) Action { return Action{kind: actMove, port: p} }

// Halt stops the agent at its current vertex permanently.
func Halt() Action { return Action{kind: actHalt} }

// Abort fails the whole run with err — the stepper counterpart of a
// Program panic, for states an algorithm considers impossible.
func Abort(err error) Action { return Action{kind: actPanic, err: err} }

// WithWrite stages a whiteboard write of val to the agent's current
// vertex; it commits together with the action in the same round,
// matching the formal model where the algorithm's output is (state,
// move, whiteboard content). Writes in whiteboard-free runs are
// dropped.
func (a Action) WithWrite(val int64) Action {
	a.write = true
	a.writeVal = val
	return a
}

// Reusable is the optional stepper-reuse extension the lane scheduler
// (TrialLane) amortizes builder calls with: Reset(ctx) must leave the
// stepper in exactly the state a freshly built stepper is in after
// Init(ctx) — callable from any prior state, including mid-run
// abandonment and aborts. Implementations may keep grown buffers
// (capacity reuse must never influence results — the same contract as
// AgentScratch). When any stepper of a team does not implement
// Reusable, the lane rebuilds (and Finishes) the whole team for every
// trial, which is always correct, just slower. The native paper
// steppers and all five baselines implement it.
type Reusable interface {
	Reset(ctx *StepContext)
}

// Finisher is the optional stepper-lifecycle extension: a Stepper
// that owns execution resources (a goroutine, a coroutine, an open
// handle) implements Finish to release them. The runtime guarantees
// Finish is called exactly once per RunSteppers/Run invocation, on
// every exit path — normal completion, MaxRounds exhaustion, the peer
// halting, an abort, and even configuration-validation failure before
// round 0. Finish must be idempotent and safe to call before Init.
// The Program adapters implement it to tear down their goroutine and
// iter.Pull coroutine; native steppers normally have nothing to
// release and simply don't implement it.
type Finisher interface{ Finish() }

// Finish releases s's execution resources if it implements Finisher —
// the hook callers (the batch engine, benchmarks) use to honor the
// stepper lifecycle for steppers that never reach a run, e.g. after a
// mid-batch builder error. Safe on nil.
func Finish(s Stepper) {
	if f, ok := s.(Finisher); ok {
		f.Finish()
	}
}

// TrialContext owns the per-trial scratch of the stepper fast path —
// the whiteboard array, every agent's PCG state, and one opaque
// AgentScratch slot per agent for algorithm-side reuse — so that a
// worker running many trials in sequence allocates (almost) nothing
// per trial. The per-agent buffers grow on demand to the largest team
// the context has run (ensureAgents) and then stay warm, so k-agent
// scenarios are as allocation-free per trial as the two-agent
// default. A TrialContext is not safe for concurrent use; give each
// worker goroutine its own.
type TrialContext struct {
	boards  []int64
	pcg     []*rand.PCG
	rand    []*rand.Rand
	scratch []AgentScratch // per-agent algorithm scratch (see AgentScratch)
	agents  []agentState   // backing for runtime.agents
	teamBuf []Stepper      // reusable team slice for the pair-shaped entry points
	// rt is the reusable lockstep engine and stepCtx the per-agent
	// Init contexts: runTeam resets both wholesale at the start of
	// every run, so the per-trial runtime state costs no allocation on
	// a warm context (StepContext escapes through the Stepper
	// interface and would otherwise be a per-trial heap box).
	rt      runtime
	stepCtx []StepContext
}

// NewTrialContext returns an empty reusable trial context, pre-sized
// for the default two-agent team.
func NewTrialContext() *TrialContext {
	tc := &TrialContext{}
	tc.ensureAgents(2)
	return tc
}

// ensureAgents grows the per-agent buffers to hold k agents,
// preserving existing contents (parked AgentScratch values survive
// growth). Growth happens at arm time only, so pointers handed to
// steppers stay valid for the duration of their run.
func (tc *TrialContext) ensureAgents(k int) {
	for len(tc.pcg) < k {
		p := rand.NewPCG(0, 0)
		tc.pcg = append(tc.pcg, p)
		tc.rand = append(tc.rand, rand.New(p))
	}
	for len(tc.scratch) < k {
		tc.scratch = append(tc.scratch, AgentScratch{})
	}
	for len(tc.stepCtx) < k {
		tc.stepCtx = append(tc.stepCtx, StepContext{})
	}
	for len(tc.agents) < k {
		tc.agents = append(tc.agents, agentState{})
	}
}

// boardsFor returns the whiteboard array reset to n empty boards,
// reusing the previous trial's capacity.
func (tc *TrialContext) boardsFor(n int) []int64 {
	if cap(tc.boards) < n {
		tc.boards = make([]int64, n)
	}
	tc.boards = tc.boards[:n]
	for i := range tc.boards {
		tc.boards[i] = NoMark
	}
	return tc.boards
}

// randFor reseeds and returns agent i's reusable random stream.
// rand.Rand is a stateless wrapper around its Source, so reseeding
// the PCG in place reproduces rand.New(rand.NewPCG(seed, stream))
// draw for draw.
func (tc *TrialContext) randFor(i int, seed, stream uint64) *rand.Rand {
	tc.pcg[i].Seed(seed, stream)
	return tc.rand[i]
}

// RunSteppers executes two stepper agents on cfg's graph until
// rendezvous, both agents halting, or the round budget expiring —
// the goroutine-free counterpart of Run, reusing tc's scratch. It
// returns an error for invalid configurations or if a stepper aborts.
func (tc *TrialContext) RunSteppers(cfg Config, a, b Stepper) (*Result, error) {
	tc.teamBuf = append(tc.teamBuf[:0], a, b)
	return runTeam(cfg, tc, tc.teamBuf)
}

// RunSteppers executes two stepper agents with fresh scratch. Callers
// running many trials should hold a TrialContext and use its
// RunSteppers method instead.
func RunSteppers(cfg Config, a, b Stepper) (*Result, error) {
	return NewTrialContext().RunSteppers(cfg, a, b)
}

// RunTeam executes a team of stepper agents — one per scenario agent,
// in team order — reusing tc's scratch. cfg.Scenario sizes the team
// (a nil scenario means the two-agent default, so len(team) must be
// 2). Semantics otherwise match RunSteppers.
func (tc *TrialContext) RunTeam(cfg Config, team []Stepper) (*Result, error) {
	return runTeam(cfg, tc, team)
}

// RunTeam executes a team of stepper agents with fresh scratch.
// Callers running many trials should hold a TrialContext and use its
// RunTeam method instead.
func RunTeam(cfg Config, team []Stepper) (*Result, error) {
	return runTeam(cfg, NewTrialContext(), team)
}
