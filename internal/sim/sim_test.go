package sim

import (
	goruntime "runtime"
	"strings"
	"testing"
	"testing/quick"

	"fnr/internal/graph"
)

func stayer(e *Env) {
	for {
		e.Stay()
	}
}

// portWalker repeatedly moves through port 0.
func portWalker(e *Env) {
	for {
		if err := e.MoveToPort(0); err != nil {
			return
		}
	}
}

func mustRing(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g, err := graph.Ring(n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func mustComplete(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g, err := graph.Complete(n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRunValidatesConfig(t *testing.T) {
	g := mustRing(t, 4)
	if _, err := Run(Config{Graph: nil, StartA: 0, StartB: 1}, stayer, stayer); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := Run(Config{Graph: g, StartA: 0, StartB: 99}, stayer, stayer); err == nil {
		t.Error("out-of-range start accepted")
	}
	if _, err := Run(Config{Graph: g, StartA: 0, StartB: 1}, nil, stayer); err == nil {
		t.Error("nil program accepted")
	}
}

func TestImmediateMeeting(t *testing.T) {
	g := mustRing(t, 4)
	res, err := Run(Config{Graph: g, StartA: 2, StartB: 2}, stayer, stayer)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met || res.MeetRound != 0 || res.MeetVertex != 2 {
		t.Fatalf("got %+v, want met at round 0 on vertex 2", res)
	}
}

func TestStayersNeverMeet(t *testing.T) {
	g := mustRing(t, 4)
	res, err := Run(Config{Graph: g, StartA: 0, StartB: 2, MaxRounds: 50}, stayer, stayer)
	if err != nil {
		t.Fatal(err)
	}
	if res.Met {
		t.Fatal("stayers met")
	}
	if res.Rounds != 50 {
		t.Fatalf("Rounds = %d, want 50", res.Rounds)
	}
	if res.A.Stays != 50 || res.B.Stays != 50 {
		t.Fatalf("stays = %d, %d, want 50, 50", res.A.Stays, res.B.Stays)
	}
}

// On K2 both agents moving every round swap positions forever; meeting
// requires co-location at the beginning of a round, so they never meet.
func TestSwapIsNotMeeting(t *testing.T) {
	g := mustComplete(t, 2)
	res, err := Run(Config{Graph: g, StartA: 0, StartB: 1, MaxRounds: 30}, portWalker, portWalker)
	if err != nil {
		t.Fatal(err)
	}
	if res.Met {
		t.Fatal("swapping agents reported as met")
	}
	if res.A.Moves != 30 || res.B.Moves != 30 {
		t.Fatalf("moves = %d, %d, want 30, 30", res.A.Moves, res.B.Moves)
	}
}

// idWalker walks a ring by increasing vertex ID (requires tight IDs and
// neighbor-ID access).
func idWalker(e *Env) {
	n := e.NPrime()
	for {
		next := (e.HereID() + 1) % n
		if err := e.MoveToID(next); err != nil {
			return
		}
	}
}

func TestChaserMeetsStayer(t *testing.T) {
	// On a ring, a walker moving by increasing ID circles the ring; it
	// must reach the stayer within n rounds.
	g := mustRing(t, 8)
	res, err := Run(Config{Graph: g, StartA: 0, StartB: 3, NeighborIDs: true, MaxRounds: 100}, idWalker, stayer)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met {
		t.Fatal("walker never reached stayer")
	}
	if res.MeetVertex != 3 {
		t.Fatalf("met at %d, want 3", res.MeetVertex)
	}
	if res.MeetRound > 8 {
		t.Fatalf("met at round %d, want ≤ 8", res.MeetRound)
	}
}

func TestMoveToID(t *testing.T) {
	g := mustComplete(t, 5)
	hopper := func(e *Env) {
		// Walk the complete graph by ID: 0 → 1 → 2 → 3.
		for next := int64(1); next < 4; next++ {
			if err := e.MoveToID(next); err != nil {
				panic(err)
			}
		}
		e.Halt()
	}
	res, err := Run(Config{Graph: g, StartA: 0, StartB: 3, NeighborIDs: true, MaxRounds: 20}, hopper, stayer)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met || res.MeetVertex != 3 || res.MeetRound != 3 {
		t.Fatalf("got %+v, want met at round 3 on vertex 3", res)
	}
}

func TestMoveToIDRequiresKT1(t *testing.T) {
	g := mustComplete(t, 3)
	var gotErr error
	prog := func(e *Env) {
		gotErr = e.MoveToID(1)
	}
	if _, err := Run(Config{Graph: g, StartA: 0, StartB: 2, NeighborIDs: false, MaxRounds: 5}, prog, stayer); err != nil {
		t.Fatal(err)
	}
	if gotErr == nil || !strings.Contains(gotErr.Error(), "neighbor-ID") {
		t.Fatalf("MoveToID in KT0 returned %v, want neighbor-ID error", gotErr)
	}
}

func TestKT0HidesNeighborIDs(t *testing.T) {
	g := mustComplete(t, 4)
	sawIDs := false
	prog := func(e *Env) {
		if e.NeighborIDs() != nil || e.HasNeighborIDs() {
			sawIDs = true
		}
		if e.Degree() != 3 {
			panic("degree should still be visible in KT0")
		}
	}
	if _, err := Run(Config{Graph: g, StartA: 0, StartB: 2, NeighborIDs: false, MaxRounds: 5}, prog, stayer); err != nil {
		t.Fatal(err)
	}
	if sawIDs {
		t.Fatal("KT0 run leaked neighbor IDs")
	}
}

func TestWhiteboards(t *testing.T) {
	g := mustComplete(t, 4)
	// Writer marks its start vertex 0 and leaves; reader then visits
	// vertex 0 and reads the mark.
	writer := func(e *Env) {
		if err := e.WriteWhiteboard(42); err != nil {
			panic(err)
		}
		if err := e.MoveToID(3); err != nil { // commit + leave
			panic(err)
		}
	}
	var read int64 = NoMark
	reader := func(e *Env) {
		e.Stay() // round 0: writer's mark commits at vertex 0
		if err := e.MoveToID(0); err != nil {
			panic(err)
		}
		read = e.Whiteboard()
	}
	res, err := Run(Config{
		Graph: g, StartA: 0, StartB: 2,
		NeighborIDs: true, Whiteboards: true, MaxRounds: 20,
	}, writer, reader)
	if err != nil {
		t.Fatal(err)
	}
	if res.Met {
		t.Fatal("agents met unexpectedly")
	}
	if read != 42 {
		t.Fatalf("reader saw %d, want 42", read)
	}
	if res.Writes != 1 {
		t.Fatalf("Writes = %d, want 1", res.Writes)
	}
}

func TestWhiteboardDisabledRejectsWrites(t *testing.T) {
	g := mustComplete(t, 3)
	var gotErr error
	prog := func(e *Env) {
		gotErr = e.WriteWhiteboard(1)
	}
	if _, err := Run(Config{Graph: g, StartA: 0, StartB: 1, MaxRounds: 5}, prog, stayer); err != nil {
		t.Fatal(err)
	}
	if gotErr == nil {
		t.Fatal("WriteWhiteboard succeeded in a whiteboard-free run")
	}
}

func TestProgramPanicPropagates(t *testing.T) {
	g := mustRing(t, 4)
	bomber := func(e *Env) {
		e.Stay()
		panic("boom")
	}
	_, err := Run(Config{Graph: g, StartA: 0, StartB: 2, MaxRounds: 10}, bomber, stayer)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want program panic", err)
	}
}

func TestBothHaltedEndsRun(t *testing.T) {
	g := mustRing(t, 6)
	quitter := func(e *Env) {
		e.Stay()
	}
	res, err := Run(Config{Graph: g, StartA: 0, StartB: 3, MaxRounds: 1000}, quitter, quitter)
	if err != nil {
		t.Fatal(err)
	}
	if res.Met {
		t.Fatal("quitters met")
	}
	if !res.A.Halted || !res.B.Halted {
		t.Fatal("agents not marked halted")
	}
	if res.Rounds >= 1000 {
		t.Fatalf("run did not end early: %d rounds", res.Rounds)
	}
}

func TestHaltStopsAgent(t *testing.T) {
	g := mustRing(t, 6)
	halter := func(e *Env) {
		e.Halt()
		panic("unreachable")
	}
	res, err := Run(Config{Graph: g, StartA: 0, StartB: 3, MaxRounds: 100}, halter, stayer)
	if err != nil {
		t.Fatal(err)
	}
	if !res.A.Halted {
		t.Fatal("Halt did not halt")
	}
}

func TestStayForFastForward(t *testing.T) {
	g := mustRing(t, 4)
	longWaiter := func(e *Env) {
		e.StayFor(1_000_000)
	}
	var covered int64
	res, err := Run(Config{
		Graph: g, StartA: 0, StartB: 2, MaxRounds: 2_000_000,
		Observer: func(ev RoundEvent) { covered += ev.Skipped },
	}, longWaiter, longWaiter)
	if err != nil {
		t.Fatal(err)
	}
	if res.A.Stays != 1_000_000 {
		t.Fatalf("stays = %d, want 1000000", res.A.Stays)
	}
	if covered != res.Rounds {
		t.Fatalf("observer covered %d rounds, runtime executed %d", covered, res.Rounds)
	}
}

func TestWaitUntilRound(t *testing.T) {
	g := mustRing(t, 4)
	var woke int64 = -1
	prog := func(e *Env) {
		e.WaitUntilRound(137)
		woke = e.Round()
		e.WaitUntilRound(5) // in the past: no-op
		if e.Round() != 137 {
			panic("WaitUntilRound moved backwards")
		}
	}
	if _, err := Run(Config{Graph: g, StartA: 0, StartB: 2, MaxRounds: 200}, prog, stayer); err != nil {
		t.Fatal(err)
	}
	if woke != 137 {
		t.Fatalf("woke at round %d, want 137", woke)
	}
}

// randomWalk is a seed-driven random walker used for determinism tests.
func randomWalk(e *Env) {
	for {
		p := e.Rand().IntN(e.Degree())
		if err := e.MoveToPort(p); err != nil {
			return
		}
	}
}

func TestDeterminism(t *testing.T) {
	g := mustComplete(t, 12)
	run := func(seed uint64) *Result {
		res, err := Run(Config{Graph: g, StartA: 0, StartB: 7, Seed: seed, MaxRounds: 100000}, randomWalk, randomWalk)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r2 := run(42), run(42)
	if r1.Met != r2.Met || r1.MeetRound != r2.MeetRound || r1.MeetVertex != r2.MeetVertex ||
		r1.A.Moves != r2.A.Moves || r1.B.Moves != r2.B.Moves {
		t.Fatalf("same seed diverged: %+v vs %+v", r1, r2)
	}
}

// Property: two random walkers on a complete graph always meet well
// within the default budget, for any seed.
func TestRandomWalkersMeetProperty(t *testing.T) {
	g := mustComplete(t, 8)
	check := func(seed uint64) bool {
		res, err := Run(Config{Graph: g, StartA: 1, StartB: 5, Seed: seed}, randomWalk, randomWalk)
		return err == nil && res.Met
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: StayFor(k) is observationally equivalent to k separate
// Stay calls (same meeting round against a fixed opponent).
func TestStayForEquivalenceProperty(t *testing.T) {
	g := mustRing(t, 10)
	runWith := func(waiter Program) int64 {
		res, err := Run(Config{Graph: g, StartA: 0, StartB: 4, NeighborIDs: true, MaxRounds: 500}, idWalker, waiter)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Met {
			t.Fatal("walker never reached waiter")
		}
		return res.MeetRound
	}
	check := func(kRaw uint8) bool {
		k := int64(kRaw%20) + 1
		bulk := runWith(func(e *Env) { e.StayFor(k); stayer(e) })
		loop := runWith(func(e *Env) {
			for i := int64(0); i < k; i++ {
				e.Stay()
			}
			stayer(e)
		})
		return bulk == loop
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestMovesAndDegreeAccounting(t *testing.T) {
	g := mustRing(t, 5)
	var sawDegree int
	prog := func(e *Env) {
		sawDegree = e.Degree()
		if err := e.MoveToPort(0); err != nil {
			panic(err)
		}
		if err := e.MoveToPort(0); err != nil {
			panic(err)
		}
	}
	res, err := Run(Config{Graph: g, StartA: 0, StartB: 3, MaxRounds: 10}, prog, stayer)
	if err != nil {
		t.Fatal(err)
	}
	if sawDegree != 2 {
		t.Fatalf("degree = %d, want 2", sawDegree)
	}
	if res.A.Moves != 2 {
		t.Fatalf("moves = %d, want 2", res.A.Moves)
	}
}

func TestMoveToPortRange(t *testing.T) {
	g := mustRing(t, 5)
	var gotErr error
	prog := func(e *Env) {
		gotErr = e.MoveToPort(7)
	}
	if _, err := Run(Config{Graph: g, StartA: 0, StartB: 2, MaxRounds: 5}, prog, stayer); err != nil {
		t.Fatal(err)
	}
	if gotErr == nil {
		t.Fatal("out-of-range port accepted")
	}
}

func TestDisableMeeting(t *testing.T) {
	g := mustRing(t, 4)
	res, err := Run(Config{Graph: g, StartA: 1, StartB: 1, MaxRounds: 20, DisableMeeting: true}, stayer, stayer)
	if err != nil {
		t.Fatal(err)
	}
	if res.Met {
		t.Fatal("DisableMeeting run reported a meeting")
	}
	if res.Rounds != 20 {
		t.Fatalf("Rounds = %d, want 20", res.Rounds)
	}
}

func TestMeetingFromRound(t *testing.T) {
	g := mustComplete(t, 2)
	// Both agents sit on the same vertex from round 0, but detection
	// is gated to round 10: the meeting must be reported exactly then.
	res, err := Run(Config{
		Graph: g, StartA: 0, StartB: 0,
		MaxRounds: 50, MeetingFromRound: 10,
	}, stayer, stayer)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met || res.MeetRound != 10 {
		t.Fatalf("got met=%v round=%d, want meeting exactly at 10", res.Met, res.MeetRound)
	}
}

func TestMeetingFromRoundSkipsTransients(t *testing.T) {
	g := mustComplete(t, 2)
	// A meets B's vertex at round 1 (transient, before the gate), then
	// leaves at round 2; they never co-locate afterwards.
	visitOnce := func(e *Env) {
		if err := e.MoveToPort(0); err != nil {
			panic(err)
		}
		if err := e.MoveToPort(0); err != nil {
			panic(err)
		}
		for {
			e.Stay()
		}
	}
	res, err := Run(Config{
		Graph: g, StartA: 0, StartB: 1,
		MaxRounds: 40, MeetingFromRound: 5,
	}, visitOnce, stayer)
	if err != nil {
		t.Fatal(err)
	}
	if res.Met {
		t.Fatalf("transient pre-gate co-location reported as meeting (round %d)", res.MeetRound)
	}
}

// Agent goroutines must not leak: after many runs the goroutine count
// stays flat.
func TestNoGoroutineLeaks(t *testing.T) {
	g := mustRing(t, 6)
	before := goruntime.NumGoroutine()
	for i := 0; i < 200; i++ {
		_, err := Run(Config{Graph: g, StartA: 0, StartB: 3, MaxRounds: 5, Seed: uint64(i)}, stayer, stayer)
		if err != nil {
			t.Fatal(err)
		}
	}
	after := goruntime.NumGoroutine()
	if after > before+4 {
		t.Fatalf("goroutines grew from %d to %d across 200 runs", before, after)
	}
}

func TestWhiteboardPersistsAcrossRounds(t *testing.T) {
	g := mustComplete(t, 4)
	writer := func(e *Env) {
		if err := e.WriteWhiteboard(7); err != nil {
			panic(err)
		}
		if err := e.MoveToID(3); err != nil {
			panic(err)
		}
		// Idle far from the mark.
		for {
			e.Stay()
		}
	}
	var reads []int64
	reader := func(e *Env) {
		for i := 0; i < 3; i++ {
			e.StayFor(4)
			if err := e.MoveToID(0); err != nil {
				panic(err)
			}
			reads = append(reads, e.Whiteboard())
			if err := e.MoveToID(2); err != nil {
				panic(err)
			}
		}
	}
	if _, err := Run(Config{
		Graph: g, StartA: 0, StartB: 2,
		NeighborIDs: true, Whiteboards: true, MaxRounds: 100, DisableMeeting: true,
	}, writer, reader); err != nil {
		t.Fatal(err)
	}
	if len(reads) != 3 {
		t.Fatalf("reader made %d visits, want 3", len(reads))
	}
	for i, r := range reads {
		if r != 7 {
			t.Fatalf("visit %d read %d, want persistent mark 7", i, r)
		}
	}
}

// The two agents' random streams must be independent: changing the
// shared seed changes both, but agent b's draws never influence agent
// a's trajectory for a fixed seed.
func TestAgentRandomStreamIndependence(t *testing.T) {
	g := mustComplete(t, 16)
	trajectory := func(bProg Program) []graph.Vertex {
		var tr []graph.Vertex
		_, err := Run(Config{
			Graph: g, StartA: 0, StartB: 8, Seed: 42,
			MaxRounds: 30, DisableMeeting: true,
			Observer: func(ev RoundEvent) { tr = append(tr, ev.PosA) },
		}, randomWalk, bProg)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	// b's behavior differs wildly between the two runs; a's walk must
	// not change.
	t1 := trajectory(stayer)
	t2 := trajectory(randomWalk)
	if len(t1) != len(t2) {
		t.Fatalf("trajectory lengths differ: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("agent a's trajectory depends on b's draws at round %d", i)
		}
	}
}

func TestMaxRoundsExactBoundary(t *testing.T) {
	g := mustRing(t, 4)
	res, err := Run(Config{Graph: g, StartA: 0, StartB: 2, MaxRounds: 1}, stayer, stayer)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 1 || res.Met {
		t.Fatalf("got rounds=%d met=%v, want exactly 1 round", res.Rounds, res.Met)
	}
}

func TestObserverSeesMonotonicRounds(t *testing.T) {
	g := mustRing(t, 6)
	last := int64(-1)
	_, err := Run(Config{
		Graph: g, StartA: 0, StartB: 3, MaxRounds: 50,
		Observer: func(ev RoundEvent) {
			if ev.Round <= last {
				t.Fatalf("observer rounds not increasing: %d after %d", ev.Round, last)
			}
			last = ev.Round
		},
	}, stayer, func(e *Env) { e.StayFor(20); stayer(e) })
	if err != nil {
		t.Fatal(err)
	}
	if last < 0 {
		t.Fatal("observer never called")
	}
}

// NeighborIDs buffers are only valid within a round; agents that copy
// them must observe consistent port order with the graph.
func TestNeighborIDsMatchPortOrder(t *testing.T) {
	g := mustComplete(t, 5)
	checked := false
	prog := func(e *Env) {
		ids := e.NeighborIDs()
		if len(ids) != 4 {
			panic("wrong neighbor count")
		}
		for p, id := range ids {
			if nb := g.Neighbor(0, p); g.ID(nb) != id {
				panic("port order mismatch")
			}
		}
		checked = true
	}
	if _, err := Run(Config{Graph: g, StartA: 0, StartB: 3, NeighborIDs: true, MaxRounds: 3}, prog, stayer); err != nil {
		t.Fatal(err)
	}
	if !checked {
		t.Fatal("program never ran")
	}
}

// Randomized-program invariant check: agents performing arbitrary mixes
// of moves, stays, bulk waits, writes, and early halts must never break
// the runtime's accounting — per-agent moves+stays cover every round up
// to the halt, positions stay within the graph, and the run terminates.
func TestRandomProgramInvariantsProperty(t *testing.T) {
	g := mustComplete(t, 9)
	mkChaotic := func() Program {
		return func(e *Env) {
			r := e.Rand()
			for {
				switch r.IntN(6) {
				case 0:
					e.Stay()
				case 1:
					e.StayFor(1 + int64(r.IntN(7)))
				case 2, 3:
					if err := e.MoveToPort(r.IntN(e.Degree())); err != nil {
						panic(err)
					}
				case 4:
					if e.HasWhiteboards() {
						if err := e.WriteWhiteboard(int64(r.IntN(100))); err != nil {
							panic(err)
						}
					}
					e.Stay()
				case 5:
					if r.IntN(40) == 0 {
						return // occasional early halt
					}
					e.Stay()
				}
			}
		}
	}
	check := func(seed uint64) bool {
		maxRounds := int64(200)
		var lastA, lastB graph.Vertex = -1, -1
		res, err := Run(Config{
			Graph: g, StartA: 3, StartB: 6,
			NeighborIDs: true, Whiteboards: true,
			Seed: seed, MaxRounds: maxRounds, DisableMeeting: true,
			Observer: func(ev RoundEvent) {
				lastA, lastB = ev.PosA, ev.PosB
			},
		}, mkChaotic(), mkChaotic())
		if err != nil {
			return false
		}
		if res.Rounds > maxRounds {
			return false
		}
		if lastA < 0 || lastA >= graph.Vertex(g.N()) || lastB < 0 || lastB >= graph.Vertex(g.N()) {
			return false
		}
		// Every executed round is either a move or a stay for a live
		// agent; halted agents stop accumulating.
		if res.A.Moves+res.A.Stays > res.Rounds || res.B.Moves+res.B.Stays > res.Rounds {
			return false
		}
		if !res.A.Halted && res.A.Moves+res.A.Stays != res.Rounds {
			return false
		}
		if !res.B.Halted && res.B.Moves+res.B.Stays != res.Rounds {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
