package sim

import "iter"

// NewProgramStepper adapts a direct-style Program into a Stepper
// without giving up the stepper fast path: the program runs on a
// lightweight coroutine (iter.Pull), so the per-acting-round handoff
// between the lockstep loop and the program is a direct context
// switch instead of the two unbuffered-channel operations (plus
// scheduler wakeups) the goroutine path pays. Observable behavior —
// actions, RNG draws, round accounting, panic and Halt handling — is
// identical to running the same Program under Run; the differential
// suite in internal/engine holds the two paths to byte-identical
// results.
//
// This is how the paper's two algorithms ride the fast path while
// staying in direct style; strategies wanting the last word in trial
// throughput implement Stepper natively instead (see
// internal/baseline for examples, and README.md, "Writing a fast
// strategy").
func NewProgramStepper(prog Program) Stepper {
	return &pullProgramStepper{prog: prog}
}

// pullProgramStepper hosts a Program on a coroutine. Control moves
// program-ward on next() (inside Next) and runtime-ward on yield
// (inside Env.step), so exactly one of the two is ever running — the
// same lockstep contract as the channel adapter, minus the scheduler.
type pullProgramStepper struct {
	prog    Program
	env     *Env
	cur     *View // the runtime's view for the acting round being processed
	next    func() (Action, bool)
	stopFn  func()
	yieldFn func(Action) bool
	final   Action // exit-derived action (halt or panic) once the coroutine ends
}

func (ps *pullProgramStepper) Init(ctx *StepContext) {
	ps.env = &Env{
		name:    ctx.Name,
		nPrime:  ctx.NPrime,
		kt1:     ctx.NeighborIDs,
		boards:  ctx.Whiteboards,
		rng:     ctx.Rand,
		scratch: ctx.Scratch,
		pull:    ps,
	}
	seq := func(yield func(Action) bool) {
		ps.yieldFn = yield
		defer func() {
			// A Finish()-driven unwind (stopSignal) also lands here;
			// its final action is never consumed.
			ps.final, _ = exitAction(recover())
		}()
		ps.prog(ps.env)
	}
	ps.next, ps.stopFn = iter.Pull(iter.Seq[Action](seq))
}

func (ps *pullProgramStepper) Next(v *View) Action {
	ps.cur = v
	act, ok := ps.next()
	if !ok {
		// The program returned, halted, or panicked since its last
		// action; report how it exited.
		return ps.final
	}
	return act
}

// yield hands act to the runtime and suspends the program until its
// next acting round; it reports false when the run is shutting down.
func (ps *pullProgramStepper) yield(act Action) bool { return ps.yieldFn(act) }

// Finish unwinds the coroutine if the program is still live
// (idempotent, safe before Init) — the Finisher hook the runtime
// calls on every exit path.
func (ps *pullProgramStepper) Finish() {
	if ps.stopFn != nil {
		ps.stopFn()
	}
}
