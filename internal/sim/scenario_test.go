package sim

import (
	"math/rand/v2"
	"strings"
	"testing"

	"fnr/internal/graph"
)

// The scenario-layer semantics suite: k-agent teams, per-agent wake
// delays, and the two meeting predicates. The differential guarantee
// (a k=2, τ=0 scenario is byte-identical to the legacy two-agent
// path) is pinned here at the sim layer and again end-to-end in
// internal/engine's scenario differential suite.

// scriptStepper plays a fixed list of port moves, then waits out the
// rest of the budget. It records the round number its first Next call
// observed — the probe for the wake-delay contract (first acting
// round == τ).
type scriptStepper struct {
	moves      []int
	i          int
	firstRound int64
	sawNext    bool
}

func (s *scriptStepper) Init(ctx *StepContext) {}

func (s *scriptStepper) Next(v *View) Action {
	if !s.sawNext {
		s.sawNext = true
		s.firstRound = v.Round
	}
	if s.i < len(s.moves) {
		p := s.moves[s.i]
		s.i++
		return Move(p)
	}
	return StayFor(1 << 40)
}

// parked waits forever.
type parked struct{}

func (parked) Init(ctx *StepContext) {}
func (parked) Next(v *View) Action   { return StayFor(1 << 40) }

func pathGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g, err := graph.Path(n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// A k=2 scenario with zero delays must reproduce the legacy
// StartA/StartB run exactly — the fold the engine relies on.
func TestScenarioPairMatchesLegacyRun(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	g, err := graph.PlantedMinDegree(64, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 4; seed++ {
		legacy, err := RunTeam(Config{
			Graph: g, StartA: 0, StartB: 9, Seed: seed, MaxRounds: 1 << 20,
		}, []Stepper{newWalker(), newWalker()})
		if err != nil {
			t.Fatal(err)
		}
		scen, err := RunTeam(Config{
			Graph: g, Seed: seed, MaxRounds: 1 << 20,
			Scenario: &Scenario{Starts: []graph.Vertex{0, 9}},
		}, []Stepper{newWalker(), newWalker()})
		if err != nil {
			t.Fatal(err)
		}
		if !resultsEqual(legacy, scen) {
			t.Fatalf("seed %d: scenario pair diverged from legacy run:\nlegacy:   %+v\nscenario: %+v", seed, legacy, scen)
		}
	}
}

// newWalker builds a uniform random walker (moves to a random port
// every round) — enough structure to exercise RNG streams and
// meeting dynamics.
func newWalker() Stepper {
	return &walkerStepper{}
}

type walkerStepper struct{ ctx *StepContext }

func (w *walkerStepper) Init(ctx *StepContext) { w.ctx = ctx }
func (w *walkerStepper) Next(v *View) Action {
	if v.Degree == 0 {
		return Stay()
	}
	return Move(w.ctx.Rand.IntN(v.Degree))
}

// A delayed agent consumes its delay as counted, stay-accounted
// rounds and sees Round == τ on its first Next call; the meeting
// shifts by exactly τ when the delayed agent is the mover.
func TestWakeDelayShiftsMeetingAndAccounting(t *testing.T) {
	g := pathGraph(t, 3) // 0-1-2
	const tau = 5
	mover := &scriptStepper{moves: []int{0, 1}} // 0→1, then 1→2
	res, err := RunTeam(Config{
		Graph: g, MaxRounds: 1 << 16,
		Scenario: &Scenario{
			Starts:     []graph.Vertex{0, 2},
			WakeDelays: []int64{tau, 0},
		},
	}, []Stepper{mover, parked{}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met || res.MeetVertex != 2 {
		t.Fatalf("no rendezvous: %+v", res)
	}
	// Undelayed, the walk 0→1→2 meets the stayer at the start of
	// round 2; a wake delay of τ pushes every action τ rounds later.
	if res.MeetRound != 2+tau {
		t.Errorf("MeetRound = %d, want %d", res.MeetRound, 2+tau)
	}
	if !mover.sawNext || mover.firstRound != tau {
		t.Errorf("delayed agent's first acting round = %d (saw=%v), want %d", mover.firstRound, mover.sawNext, tau)
	}
	if res.A.Stays != tau || res.A.Moves != 2 {
		t.Errorf("delayed agent accounting = %+v, want %d stays, 2 moves", res.A, tau)
	}
}

// An asleep agent can still be met: the meeting predicate is
// positional, not "awake and co-located".
func TestAsleepAgentsCanMeet(t *testing.T) {
	g := pathGraph(t, 3)
	res, err := RunTeam(Config{
		Graph: g, MaxRounds: 1 << 16,
		Scenario: &Scenario{
			Starts:     []graph.Vertex{1, 1},
			WakeDelays: []int64{3, 7},
		},
	}, []Stepper{parked{}, parked{}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met || res.MeetRound != 0 || res.MeetVertex != 1 {
		t.Fatalf("co-located sleeping agents did not meet at round 0: %+v", res)
	}
}

// All-gather vs first-pair on a three-agent path scenario: the first
// co-location of a pair precedes the full gathering by one round.
func TestMeetingPredicates(t *testing.T) {
	g := pathGraph(t, 3)
	build := func() []Stepper {
		return []Stepper{
			&scriptStepper{moves: []int{0, 1}}, // 0→1→2
			&scriptStepper{moves: []int{1}},    // 1→2
			parked{},                           // parked at 2
		}
	}
	sc := &Scenario{Starts: []graph.Vertex{0, 1, 2}}
	gather, err := RunTeam(Config{Graph: g, MaxRounds: 1 << 16, Scenario: sc}, build())
	if err != nil {
		t.Fatal(err)
	}
	if !gather.Met || gather.MeetRound != 2 || gather.MeetVertex != 2 {
		t.Fatalf("all-gather: got %+v, want meeting at round 2, vertex 2", gather)
	}
	if len(gather.Agents) != 3 {
		t.Fatalf("k=3 run reported %d agent stats, want 3", len(gather.Agents))
	}
	if gather.A != gather.Agents[0] || gather.B != gather.Agents[1] {
		t.Errorf("A/B fields disagree with Agents[0]/Agents[1]: %+v", gather)
	}
	if got := gather.TotalMoves(); got != 3 {
		t.Errorf("TotalMoves = %d, want 3", got)
	}

	scFP := &Scenario{Starts: []graph.Vertex{0, 1, 2}, MeetFirstPair: true}
	first, err := RunTeam(Config{Graph: g, MaxRounds: 1 << 16, Scenario: scFP}, build())
	if err != nil {
		t.Fatal(err)
	}
	if !first.Met || first.MeetRound != 1 || first.MeetVertex != 2 {
		t.Fatalf("first-pair: got %+v, want meeting at round 1, vertex 2", first)
	}
}

// A k=3 team of stayers on distinct vertices never gathers: the run
// must exhaust its budget, not report a phantom meeting.
func TestAllGatherRequiresEveryAgent(t *testing.T) {
	g := pathGraph(t, 4)
	res, err := RunTeam(Config{
		Graph: g, MaxRounds: 64,
		Scenario: &Scenario{Starts: []graph.Vertex{0, 0, 3}},
	}, []Stepper{parked{}, parked{}, parked{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Met {
		t.Fatalf("two of three agents co-located reported Met under all-gather: %+v", res)
	}
}

func TestScenarioValidation(t *testing.T) {
	g := pathGraph(t, 3)
	team := func(k int) []Stepper {
		out := make([]Stepper, k)
		for i := range out {
			out[i] = parked{}
		}
		return out
	}
	cases := []struct {
		name string
		sc   *Scenario
		k    int
		want string
	}{
		{"too few agents", &Scenario{Starts: []graph.Vertex{0}}, 1, "at least 2 agents"},
		{"too many agents", &Scenario{Starts: make([]graph.Vertex, MaxAgents+1)}, MaxAgents + 1, "limit is 256"},
		{"start out of range", &Scenario{Starts: []graph.Vertex{0, 7}}, 2, "agent b start vertex 7 out of range"},
		{"delay length mismatch", &Scenario{Starts: []graph.Vertex{0, 1, 2}, WakeDelays: []int64{1}}, 3, "1 wake delays for 3 agents"},
		{"negative delay", &Scenario{Starts: []graph.Vertex{0, 1}, WakeDelays: []int64{0, -4}}, 2, "wake delay -4 is negative"},
	}
	for _, tc := range cases {
		_, err := RunTeam(Config{Graph: g, MaxRounds: 16, Scenario: tc.sc}, team(tc.k))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	// Team length must match the scenario's agent count.
	_, err := RunTeam(Config{Graph: g, MaxRounds: 16,
		Scenario: &Scenario{Starts: []graph.Vertex{0, 1, 2}}}, team(2))
	if err == nil || !strings.Contains(err.Error(), "2 steppers for a 3-agent scenario") {
		t.Errorf("team-size mismatch error = %v", err)
	}
}

func TestLegacyPairFolding(t *testing.T) {
	cases := []struct {
		name string
		sc   Scenario
		ok   bool
	}{
		{"plain pair", Scenario{Starts: []graph.Vertex{3, 8}}, true},
		{"pair with zero delays", Scenario{Starts: []graph.Vertex{3, 8}, WakeDelays: []int64{0, 0}}, true},
		{"pair with delay", Scenario{Starts: []graph.Vertex{3, 8}, WakeDelays: []int64{0, 4}}, false},
		{"first-pair predicate", Scenario{Starts: []graph.Vertex{3, 8}, MeetFirstPair: true}, false},
		{"three agents", Scenario{Starts: []graph.Vertex{3, 8, 1}}, false},
	}
	for _, tc := range cases {
		a, b, ok := tc.sc.LegacyPair()
		if ok != tc.ok {
			t.Errorf("%s: LegacyPair ok = %v, want %v", tc.name, ok, tc.ok)
			continue
		}
		if ok && (a != 3 || b != 8) {
			t.Errorf("%s: LegacyPair = (%d, %d), want (3, 8)", tc.name, a, b)
		}
	}
}

func TestAgentNameString(t *testing.T) {
	for _, tc := range []struct {
		n    AgentName
		want string
	}{{0, "a"}, {1, "b"}, {25, "z"}, {26, "agent26"}, {255, "agent255"}} {
		if got := tc.n.String(); got != tc.want {
			t.Errorf("AgentName(%d).String() = %q, want %q", uint8(tc.n), got, tc.want)
		}
	}
}

// Lane execution of a k=3 scenario must match solo runs trial for
// trial — quarantine/reuse machinery included.
func TestTeamLaneMatchesSoloRuns(t *testing.T) {
	g := pathGraph(t, 5)
	sc := &Scenario{Starts: []graph.Vertex{0, 2, 4}, WakeDelays: []int64{0, 3, 0}}
	cfg := Config{Graph: g, MaxRounds: 1 << 16, Scenario: sc}
	build := func() ([]Stepper, error) {
		return []Stepper{newWalker(), newWalker(), newWalker()}, nil
	}
	const trials = 24
	want := make([]*Result, trials)
	for i := range want {
		team, _ := build()
		c := cfg
		c.Seed = uint64(i + 1)
		res, err := RunTeam(c, team)
		if err != nil {
			t.Fatal(err)
		}
		cp := *res
		cp.Agents = append([]AgentStats(nil), res.Agents...)
		want[i] = &cp
	}
	for _, width := range []int{1, 4} {
		lane := NewTeamLane(width, build)
		defer lane.Close()
		got := make([]*Result, trials)
		mark := lane.Run(cfg,
			func(i int) uint64 { return uint64(i + 1) },
			0, trials,
			func(i int, res *Result, trialErr error) {
				if trialErr != nil {
					t.Errorf("trial %d: %v", i, trialErr)
					return
				}
				cp := *res
				cp.Agents = append([]AgentStats(nil), res.Agents...)
				got[i] = &cp
			})
		if mark != trials {
			t.Fatalf("lane watermark = %d, want %d", mark, trials)
		}
		for i := range got {
			if !resultsEqual(got[i], want[i]) {
				t.Errorf("width %d trial %d: lane diverged:\nlane: %+v\nsolo: %+v", width, i, got[i], want[i])
			}
		}
	}
}
