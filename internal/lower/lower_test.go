package lower

import (
	"strings"
	"testing"

	"fnr/internal/graph"
	"fnr/internal/sim"
)

func TestInstanceBuilders(t *testing.T) {
	ts, err := TwoStarsInstance(50)
	if err != nil {
		t.Fatal(err)
	}
	if ts.G.N() != 102 || !ts.G.HasEdge(ts.StartA, ts.StartB) {
		t.Fatalf("two-stars: n=%d adjacent=%v", ts.G.N(), ts.G.HasEdge(ts.StartA, ts.StartB))
	}
	sc, err := StarCliqueInstance(8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if sc.G.MinDegree() != 4 {
		t.Fatalf("star-clique δ = %d, want 4", sc.G.MinDegree())
	}
	kt, err := KT0Instance(20)
	if err != nil {
		t.Fatal(err)
	}
	if !kt.KT0 {
		t.Fatal("KT0 instance not marked KT0")
	}
	d2, err := Distance2Instance(12)
	if err != nil {
		t.Fatal(err)
	}
	if graph.Dist(d2.G, d2.StartA, d2.StartB) != 2 {
		t.Fatal("distance-2 instance starts not at distance 2")
	}
}

func TestGreedySweepDeterministic(t *testing.T) {
	// On K5 with home 0 the sweep should visit 1,2,3,4 in order with
	// returns: 1,0,2,0,3,0,4,0 then stay.
	g, err := graph.Complete(5)
	if err != nil {
		t.Fatal(err)
	}
	var trace []graph.Vertex
	_, err = sim.Run(sim.Config{
		Graph: g, StartA: 0, StartB: 0, NeighborIDs: true,
		MaxRounds: 12, DisableMeeting: true,
		Observer: func(ev sim.RoundEvent) { trace = append(trace, ev.PosA) },
	}, AsProgram(NewGreedySweep()), AsProgram(NewStayPut()))
	if err != nil {
		t.Fatal(err)
	}
	want := []graph.Vertex{0, 1, 0, 2, 0, 3, 0, 4, 0}
	for i, w := range want {
		if trace[i] != w {
			t.Fatalf("trace[%d] = %d, want %d (full: %v)", i, trace[i], w, trace)
		}
	}
}

func TestLexDFSExploresAll(t *testing.T) {
	g, err := graph.Grid(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[graph.Vertex]bool{}
	_, err = sim.Run(sim.Config{
		Graph: g, StartA: 0, StartB: 0, NeighborIDs: true,
		MaxRounds: int64(4 * g.N()), DisableMeeting: true,
		Observer: func(ev sim.RoundEvent) { seen[ev.PosA] = true },
	}, AsProgram(NewLexDFS()), AsProgram(NewStayPut()))
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != g.N() {
		t.Fatalf("lexDFS visited %d of %d vertices", len(seen), g.N())
	}
}

func TestBuildLazyRespectsRules(t *testing.T) {
	ids := []int64{0, 1, 2, 3, 4, 5, 6, 7, 8}
	pool := []int64{3, 4, 5, 6, 7, 8}
	run, err := buildLazy(ids, 0, pool, NewGreedySweep(), 4)
	if err != nil {
		t.Fatal(err)
	}
	// The sweep from 0 visits 1, 0, 2, 0 in four rounds; pool vertices
	// stay unvisited.
	if len(run.unvisited) != len(pool)-0 {
		// vertices 1 and 2 are P̄, so no pool vertex was touched? The
		// sweep visits ascending IDs 1,2,... in out-and-back pattern;
		// 4 rounds reach only 1 and 2 (non-pool).
		t.Fatalf("unvisited = %v, want all of pool", run.unvisited)
	}
	// P̄ = {1, 2} forms a clique (one edge) and start links everywhere.
	if _, ok := run.adj[1][2]; !ok {
		t.Fatal("P̄ clique edge missing")
	}
	if len(run.adj[0]) != 8 {
		t.Fatalf("start degree %d, want 8", len(run.adj[0]))
	}
}

func TestBuildLazyRevealsPoolEdges(t *testing.T) {
	ids := []int64{0, 1, 2, 3, 4}
	pool := []int64{1, 2, 3, 4}
	// Sweep visits 1 (pool) on its first move: 1 must then link to all
	// unvisited pool vertices {2, 3, 4}.
	run, err := buildLazy(ids, 0, pool, NewGreedySweep(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int64{2, 3, 4} {
		if _, ok := run.adj[1][v]; !ok {
			t.Fatalf("revealed pool vertex 1 missing edge to %d", v)
		}
	}
	if len(run.unvisited) != 3 {
		t.Fatalf("unvisited = %v, want {2,3,4}", run.unvisited)
	}
}

func TestTheorem6InstanceSweep(t *testing.T) {
	n := 128
	inst, err := Theorem6Instance(n, NewGreedySweep, NewGreedySweep)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.G.Validate(); err != nil {
		t.Fatalf("instance graph invalid: %v", err)
	}
	// Lemma 9 (ii): minimum degree Θ(n). P̄ vertices have ≈ n/16.
	if inst.G.MinDegree() < n/16-2 {
		t.Fatalf("δ = %d, want ≥ n/16-2 = %d", inst.G.MinDegree(), n/16-2)
	}
	if !inst.G.HasEdge(inst.StartA, inst.StartB) {
		t.Fatal("start vertices not adjacent (distance must be 1)")
	}
	// The theorem's guarantee: no meeting within n/32 rounds.
	res, err := sim.Run(sim.Config{
		Graph: inst.G, StartA: inst.StartA, StartB: inst.StartB,
		NeighborIDs: true, MaxRounds: inst.LowerBound,
	}, AsProgram(NewGreedySweep()), AsProgram(NewGreedySweep()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Met {
		t.Fatalf("agents met at round %d, theorem forbids meeting before %d", res.MeetRound, inst.LowerBound)
	}
	if !strings.Contains(inst.Note, "Theorem 6") {
		t.Error("note missing provenance")
	}
}

func TestTheorem6InstanceLexDFS(t *testing.T) {
	n := 96
	inst, err := Theorem6Instance(n, NewLexDFS, NewLexDFS)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Config{
		Graph: inst.G, StartA: inst.StartA, StartB: inst.StartB,
		NeighborIDs: true, MaxRounds: inst.LowerBound,
	}, AsProgram(NewLexDFS()), AsProgram(NewLexDFS()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Met {
		t.Fatalf("lexDFS agents met at round %d < %d", res.MeetRound, inst.LowerBound)
	}
}

func TestTheorem6InstanceMixedPair(t *testing.T) {
	inst, err := Theorem6Instance(64, NewGreedySweep, NewLexDFS)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Config{
		Graph: inst.G, StartA: inst.StartA, StartB: inst.StartB,
		NeighborIDs: true, MaxRounds: inst.LowerBound,
	}, AsProgram(NewGreedySweep()), AsProgram(NewLexDFS()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Met {
		t.Fatalf("mixed pair met at round %d < %d", res.MeetRound, inst.LowerBound)
	}
}

func TestTheorem6RejectsBadN(t *testing.T) {
	for _, n := range []int{10, 48, 100} {
		if _, err := Theorem6Instance(n, NewGreedySweep, NewGreedySweep); err == nil {
			t.Errorf("Theorem6Instance(%d) succeeded, want error", n)
		}
	}
}

func TestSymmetricRingNeverMeets(t *testing.T) {
	inst, err := SymmetricRing(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.G.Validate(); err != nil {
		t.Fatal(err)
	}
	// Identical deterministic port programs: any fixed sequence keeps
	// the agents antipodal forever.
	sequences := [][]int{{0}, {1}, {0, 1}, {0, 0, 1}}
	for _, seq := range sequences {
		mk := func() *SymmetricPortAgent { return NewSymmetricPortAgent(seq) }
		progFor := func(a *SymmetricPortAgent) sim.Program {
			return func(e *sim.Env) {
				for {
					p := a.NextPort(e.Degree())
					if p < 0 {
						e.Stay()
						continue
					}
					if err := e.MoveToPort(p); err != nil {
						panic(err)
					}
				}
			}
		}
		res, err := sim.Run(sim.Config{
			Graph: inst.G, StartA: inst.StartA, StartB: inst.StartB,
			NeighborIDs: false, MaxRounds: 2000,
		}, progFor(mk()), progFor(mk()))
		if err != nil {
			t.Fatal(err)
		}
		if res.Met {
			t.Fatalf("sequence %v: symmetric agents met at round %d", seq, res.MeetRound)
		}
	}
}

func TestSymmetricRingPortStructure(t *testing.T) {
	inst, err := SymmetricRing(6)
	if err != nil {
		t.Fatal(err)
	}
	g := inst.G
	for v := graph.Vertex(0); int(v) < g.N(); v++ {
		if g.Neighbor(v, 0) != (v+1)%6 {
			t.Fatalf("vertex %d port 0 leads to %d, want clockwise", v, g.Neighbor(v, 0))
		}
		if g.Neighbor(v, 1) != (v+5)%6 {
			t.Fatalf("vertex %d port 1 leads to %d, want counter-clockwise", v, g.Neighbor(v, 1))
		}
	}
	if _, err := SymmetricRing(5); err == nil {
		t.Error("odd n accepted")
	}
	if _, err := SymmetricRing(2); err == nil {
		t.Error("n=2 accepted")
	}
}

// Randomization breaks the symmetry: the same instance with random
// walkers meets quickly. This is the paper's motivation for the
// randomized model.
func TestSymmetricRingRandomizationEscapes(t *testing.T) {
	inst, err := SymmetricRing(8)
	if err != nil {
		t.Fatal(err)
	}
	walk := func(e *sim.Env) {
		for {
			if err := e.MoveToPort(e.Rand().IntN(e.Degree())); err != nil {
				panic(err)
			}
		}
	}
	res, err := sim.Run(sim.Config{
		Graph: inst.G, StartA: inst.StartA, StartB: inst.StartB,
		NeighborIDs: false, Seed: 3, MaxRounds: 100000,
	}, walk, walk)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met {
		t.Fatal("random walkers failed to escape the symmetry trap")
	}
}

// The descending sweeper attacks the TOP of the ID space, where the
// adversary prefers to place the bridge — the search must route around
// it and the instance must still hold.
func TestTheorem6InstanceDescendingSweep(t *testing.T) {
	for _, pair := range []struct {
		name     string
		mkA, mkB func() DetAgent
	}{
		{"desc/desc", NewGreedySweepDesc, NewGreedySweepDesc},
		{"asc/desc", NewGreedySweep, NewGreedySweepDesc},
	} {
		inst, err := Theorem6Instance(128, pair.mkA, pair.mkB)
		if err != nil {
			t.Fatalf("%s: %v", pair.name, err)
		}
		res, err := sim.Run(sim.Config{
			Graph: inst.G, StartA: inst.StartA, StartB: inst.StartB,
			NeighborIDs: true, MaxRounds: inst.LowerBound,
		}, AsProgram(pair.mkA()), AsProgram(pair.mkB()))
		if err != nil {
			t.Fatalf("%s: %v", pair.name, err)
		}
		if res.Met {
			t.Fatalf("%s: met at round %d < %d", pair.name, res.MeetRound, inst.LowerBound)
		}
	}
}
