package lower

import (
	"slices"

	"fnr/internal/sim"
)

// DetAgent is a deterministic mobile-agent algorithm in the paper's
// model, expressed as a pure state machine: given the current vertex ID
// and the set of neighbor IDs, return the ID to move to (returning the
// current ID means stay). Implementations must depend only on the SET
// of neighbor IDs, never on their order, because the adaptive adversary
// (Lemma 9) and the final glued instance may present ports in different
// orders.
type DetAgent interface {
	Next(hereID int64, neighborIDs []int64) int64
}

// AsProgram adapts a deterministic agent to the simulator. The agent
// must be a fresh instance (state machines are single-use).
func AsProgram(d DetAgent) sim.Program {
	return func(e *sim.Env) {
		for {
			target := d.Next(e.HereID(), e.NeighborIDs())
			if target == e.HereID() {
				e.Stay()
				continue
			}
			if err := e.MoveToID(target); err != nil {
				panic(err)
			}
		}
	}
}

// greedySweep visits the start vertex's neighbors in ascending ID
// order, returning home between visits, then stays forever. This is the
// deterministic form of the trivial O(∆) algorithm.
type greedySweep struct {
	init    bool
	desc    bool
	home    int64
	targets []int64
	idx     int
}

// NewGreedySweep returns a fresh deterministic neighbor sweeper
// (ascending ID order).
func NewGreedySweep() DetAgent { return &greedySweep{} }

func (s *greedySweep) Next(here int64, nbs []int64) int64 {
	if !s.init {
		s.init = true
		s.home = here
		s.targets = slices.Clone(nbs)
		slices.Sort(s.targets)
		if s.desc {
			slices.Reverse(s.targets)
		}
	}
	if here != s.home {
		return s.home
	}
	if s.idx >= len(s.targets) {
		return here // sweep done; stay
	}
	t := s.targets[s.idx]
	s.idx++
	return t
}

// NewGreedySweepDesc returns a sweeper that visits neighbors in
// DESCENDING ID order — it attacks the top of the ID space first, the
// opposite bias of NewGreedySweep, which stresses the Theorem-6
// adversary's bridge search from the other side.
func NewGreedySweepDesc() DetAgent { return &greedySweep{desc: true} }

// lexDFS explores depth-first, always descending to the smallest
// unvisited neighbor ID and backtracking when none remains.
type lexDFS struct {
	init    bool
	visited map[int64]bool
	path    []int64
}

// NewLexDFS returns a fresh deterministic lexicographic DFS explorer.
func NewLexDFS() DetAgent { return &lexDFS{} }

func (d *lexDFS) Next(here int64, nbs []int64) int64 {
	if !d.init {
		d.init = true
		d.visited = map[int64]bool{here: true}
	}
	next := int64(-1)
	for _, u := range nbs {
		if !d.visited[u] && (next < 0 || u < next) {
			next = u
		}
	}
	if next >= 0 {
		d.visited[next] = true
		d.path = append(d.path, here)
		return next
	}
	if len(d.path) == 0 {
		return here // fully explored; stay
	}
	parent := d.path[len(d.path)-1]
	d.path = d.path[:len(d.path)-1]
	return parent
}

// stayPut never moves: the deterministic "wait" half of a
// wait/search pair.
type stayPut struct{}

// NewStayPut returns the deterministic agent that never moves.
func NewStayPut() DetAgent { return stayPut{} }

func (stayPut) Next(here int64, _ []int64) int64 { return here }
