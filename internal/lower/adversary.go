package lower

import (
	"fmt"
	"slices"

	"fnr/internal/graph"
)

// lazyRun is the outcome of Lemma 9's adaptive construction for one
// agent: the finished graph G_t (as an ID-keyed adjacency), the pool P,
// and the unvisited pool W = P \ Q_t.
type lazyRun struct {
	ids       []int64
	adj       map[int64]map[int64]struct{}
	start     int64
	pool      []int64
	poolSet   map[int64]struct{}
	visited   map[int64]struct{}
	unvisited []int64 // W, sorted
}

// buildLazy runs the deterministic agent for t rounds on the adaptively
// grown graph of Lemma 9. The initial edge set is
// E₀ = {(start,u) : u ∈ ids\{start}} ∪ clique(ids \ pool \ {start});
// whenever the agent moves to an unvisited pool vertex v, edges from v
// to every vertex of P\Q are added before the agent observes v's
// neighborhood. Views presented to the agent list neighbors in
// ascending ID order (DetAgents must be order-independent anyway).
func buildLazy(ids []int64, start int64, pool []int64, agent DetAgent, t int) (*lazyRun, error) {
	r := &lazyRun{
		ids:     slices.Clone(ids),
		adj:     make(map[int64]map[int64]struct{}, len(ids)),
		start:   start,
		pool:    slices.Clone(pool),
		poolSet: make(map[int64]struct{}, len(pool)),
		visited: map[int64]struct{}{start: {}},
	}
	for _, id := range ids {
		r.adj[id] = make(map[int64]struct{})
	}
	addEdge := func(u, v int64) {
		if u == v {
			return
		}
		r.adj[u][v] = struct{}{}
		r.adj[v][u] = struct{}{}
	}
	inIDs := make(map[int64]struct{}, len(ids))
	for _, id := range ids {
		inIDs[id] = struct{}{}
	}
	if _, ok := inIDs[start]; !ok {
		return nil, fmt.Errorf("lower: start %d not in ID space", start)
	}
	for _, p := range pool {
		if _, ok := inIDs[p]; !ok || p == start {
			return nil, fmt.Errorf("lower: pool vertex %d invalid", p)
		}
		r.poolSet[p] = struct{}{}
	}
	// E₀: star on start, clique on P̄ = ids \ pool \ {start}.
	var pbar []int64
	for _, id := range ids {
		if id == start {
			continue
		}
		addEdge(start, id)
		if _, inPool := r.poolSet[id]; !inPool {
			pbar = append(pbar, id)
		}
	}
	for i := 0; i < len(pbar); i++ {
		for j := i + 1; j < len(pbar); j++ {
			addEdge(pbar[i], pbar[j])
		}
	}
	// Drive the agent.
	cur := start
	nbs := make([]int64, 0, len(ids))
	for round := 0; round < t; round++ {
		nbs = nbs[:0]
		for u := range r.adj[cur] {
			nbs = append(nbs, u)
		}
		slices.Sort(nbs)
		next := agent.Next(cur, nbs)
		if next != cur {
			if _, adjacent := r.adj[cur][next]; !adjacent {
				return nil, fmt.Errorf("lower: agent moved %d -> %d along a non-edge", cur, next)
			}
			_, inPool := r.poolSet[next]
			_, seen := r.visited[next]
			if inPool && !seen {
				// Reveal next's neighborhood: edges to all of P\Q.
				for _, p := range r.pool {
					if _, v := r.visited[p]; !v {
						addEdge(next, p)
					}
				}
			}
			r.visited[next] = struct{}{}
			cur = next
		}
	}
	for _, p := range r.pool {
		if _, seen := r.visited[p]; !seen {
			r.unvisited = append(r.unvisited, p)
		}
	}
	slices.Sort(r.unvisited)
	return r, nil
}

// Theorem6Instance builds the Theorem-6 hard instance for a pair of
// deterministic algorithms, following the proof: run the adaptive
// adversary separately against each agent on its own n/2+1-vertex ID
// space, pick bridge endpoints j ∈ W_b and k ∈ W_a, glue the two
// graphs along the edge (j, k), and densify the unvisited pools with a
// complete bipartite graph between W_a\{k} and W_b\{j} so the minimum
// degree is Θ(n). Both agents provably ignore the bridge for the first
// n/32 rounds.
//
// mkA and mkB construct fresh instances of the two deterministic
// algorithms. n must be a multiple of 32 and at least 64.
func Theorem6Instance(n int, mkA, mkB func() DetAgent) (*Instance, error) {
	if n < 64 || n%32 != 0 {
		return nil, fmt.Errorf("lower: Theorem 6 instance needs n ≥ 64, multiple of 32; got %d", n)
	}
	t := n / 32
	half := n / 2
	pbarSize := n / 16

	// The proof's counting argument guarantees some pair (j, k) with
	// k ∈ W(a,j) and j ∈ W(b,k): search candidate bridge endpoints
	// j ∈ pool_b = [half, n-pbarSize) and k ∈ W(a,j) until one works
	// (each agent visits at most t+1 vertices, so almost all pairs do).
	// P̄_a is the lowest pbarSize IDs of a's space and P̄_b the highest
	// of b's, keeping both bridge endpoints inside the pools.
	idsB := make([]int64, 0, half+1)
	for v := half; v < n; v++ {
		idsB = append(idsB, int64(v))
	}
	var poolB []int64
	for v := half; v < n-pbarSize; v++ {
		poolB = append(poolB, int64(v))
	}
	var (
		runA, runB *lazyRun
		j, k       int64 = -1, -1
		bRuns      int
	)
	const maxBRuns = 512
searchJ:
	for jIdx := len(poolB) - 1; jIdx >= 0; jIdx-- {
		jCand := poolB[jIdx]
		idsA := make([]int64, 0, half+1)
		for v := 0; v < half; v++ {
			idsA = append(idsA, int64(v))
		}
		idsA = append(idsA, jCand)
		var poolA []int64
		for v := pbarSize; v < half; v++ {
			poolA = append(poolA, int64(v))
		}
		ra, err := buildLazy(idsA, jCand, poolA, mkA(), t)
		if err != nil {
			return nil, fmt.Errorf("lower: adversary vs agent a: %w", err)
		}
		for _, kCand := range ra.unvisited {
			if bRuns >= maxBRuns {
				break searchJ
			}
			bRuns++
			rb, err := buildLazy(append(slices.Clone(idsB), kCand), kCand, poolB, mkB(), t)
			if err != nil {
				return nil, fmt.Errorf("lower: adversary vs agent b: %w", err)
			}
			if _, visitedJ := rb.visited[jCand]; !visitedJ {
				runA, runB, j, k = ra, rb, jCand, kCand
				break searchJ
			}
		}
	}
	if runB == nil {
		return nil, fmt.Errorf("lower: no bridge pair (j,k) found within %d adversary runs", bRuns)
	}

	// Glue on vertex IDs [0, n): union of both adjacencies plus the
	// bipartite densification W_a\{k} × W_b\{j}. The (j,k) edge is
	// already present in both runs' E₀.
	b := graph.NewBuilder(n)
	addRun := func(r *lazyRun) {
		// Deterministic edge order (sorted IDs): the port numbering of
		// the glued instance must not depend on map iteration.
		us := make([]int64, 0, len(r.adj))
		for u := range r.adj {
			us = append(us, u)
		}
		slices.Sort(us)
		for _, u := range us {
			vs := make([]int64, 0, len(r.adj[u]))
			for v := range r.adj[u] {
				if v > u {
					vs = append(vs, v)
				}
			}
			slices.Sort(vs)
			for _, v := range vs {
				if !b.HasEdge(graph.Vertex(u), graph.Vertex(v)) {
					b.MustAddEdge(graph.Vertex(u), graph.Vertex(v))
				}
			}
		}
	}
	addRun(runA)
	addRun(runB)
	for _, u := range runA.unvisited {
		if u == k {
			continue
		}
		for _, v := range runB.unvisited {
			if v == j {
				continue
			}
			if !b.HasEdge(graph.Vertex(u), graph.Vertex(v)) {
				b.MustAddEdge(graph.Vertex(u), graph.Vertex(v))
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("lower: gluing Theorem 6 instance: %w", err)
	}
	return &Instance{
		Name:       "deterministic-adversary",
		G:          g,
		StartA:     graph.Vertex(j),
		StartB:     graph.Vertex(k),
		LowerBound: int64(t),
		Note: fmt.Sprintf("Theorem 6 / Lemma 9: adaptive adversary; |W_a|=%d, |W_b|=%d, bridge (%d,%d)",
			len(runA.unvisited), len(runB.unvisited), j, k),
	}, nil
}
