// Package lower builds the hard instances behind the paper's four
// impossibility results (§5):
//
//   - Theorem 3 / Fig. 1: minimum degree o(√n) — two-star and
//     star-clique instances,
//   - Theorem 4 / Fig. 2: no neighborhood-ID access (KT0) — glued
//     clique pairs whose bridges are indistinguishable from clique
//     edges,
//   - Theorem 5 / Fig. 3: initial distance two — cliques sharing one
//     vertex,
//   - Theorem 6 / Lemma 9: deterministic algorithms — an adaptive
//     adversary that grows the graph in response to the agent's moves.
//
// Each instance packages a graph, designated start vertices, the
// predicted lower bound, and the simulation mode it must run under.
package lower

import (
	"fmt"

	"fnr/internal/graph"
)

// Instance is a packaged lower-bound scenario.
type Instance struct {
	// Name identifies the family ("two-stars", "kt0-cliques", ...).
	Name string
	// G is the hard graph.
	G *graph.Graph
	// StartA and StartB are the agents' initial vertices.
	StartA, StartB graph.Vertex
	// LowerBound is a concrete round count below which the relevant
	// theorem forbids reliable rendezvous (a conservative constant
	// fraction of the Ω(·) argument).
	LowerBound int64
	// KT0 marks instances that must be simulated without neighbor-ID
	// access (Theorem 4's model).
	KT0 bool
	// Note explains the construction.
	Note string
}

// TwoStarsInstance builds the Figure 1(a) Theorem-3 instance on
// n = 2·half+2 vertices: two stars with adjacent centers, δ = 1,
// ∆ = half+1. Any algorithm needs Ω(∆) rounds with constant
// probability.
func TwoStarsInstance(half int) (*Instance, error) {
	g, ca, cb, err := graph.TwoStars(half)
	if err != nil {
		return nil, err
	}
	return &Instance{
		Name:       "two-stars",
		G:          g,
		StartA:     ca,
		StartB:     cb,
		LowerBound: int64(g.MaxDegree()) / 8,
		Note:       "Theorem 3 / Fig. 1(a): δ=1, ∆=Θ(n); agents must find the center-center edge among ∆ look-alike ports",
	}, nil
}

// StarCliqueInstance builds the Figure 1(b) Theorem-3 instance with
// δ = cliqueSize-1 = Θ(n/∆): centers of degree arms+1 attached to
// cliques.
func StarCliqueInstance(arms, cliqueSize int) (*Instance, error) {
	g, ca, cb, err := graph.StarCliquePair(arms, cliqueSize)
	if err != nil {
		return nil, err
	}
	return &Instance{
		Name:       "star-clique",
		G:          g,
		StartA:     ca,
		StartB:     cb,
		LowerBound: int64(g.MaxDegree()) / 8,
		Note:       "Theorem 3 / Fig. 1(b): δ=Θ(n/∆) via cliques replacing leaves",
	}, nil
}

// KT0Instance builds the Figure 2 Theorem-4 instance on n vertices
// (even, ≥ 6): two bridged cliques that are indistinguishable from
// plain cliques without neighborhood IDs. Must be run in KT0 mode.
func KT0Instance(n int) (*Instance, error) {
	g, a0, b0, _, _, err := graph.BridgedCliquePair(n)
	if err != nil {
		return nil, err
	}
	return &Instance{
		Name:       "kt0-cliques",
		G:          g,
		StartA:     a0,
		StartB:     b0,
		LowerBound: int64(n) / 8,
		KT0:        true,
		Note:       "Theorem 4 / Fig. 2: without neighbor IDs the two bridge ports hide among n/2-1 clique ports",
	}, nil
}

// Distance2Instance builds the Figure 3 Theorem-5 instance: two
// cliques of `size` vertices sharing exactly one vertex, with the
// agents starting at distance two (one per clique).
func Distance2Instance(size int) (*Instance, error) {
	g, ca, cb, x, err := graph.TwoCliquesSharing(size)
	if err != nil {
		return nil, err
	}
	if d := graph.Dist(g, ca, cb); d != 2 {
		return nil, fmt.Errorf("lower: distance-2 instance has start distance %d", d)
	}
	_ = x
	return &Instance{
		Name:       "distance-2",
		G:          g,
		StartA:     ca,
		StartB:     cb,
		LowerBound: int64(g.N()) / 8,
		Note:       "Theorem 5 / Fig. 3: both agents must locate the single shared vertex among Θ(n) candidates",
	}, nil
}
