package lower

import (
	"fmt"

	"fnr/internal/graph"
)

// SymmetricRing builds the introduction's motivating impossibility: a
// ring of n vertices (n even, ≥ 4) whose port numbering is rotationally
// symmetric — port 0 always leads clockwise, port 1 counter-clockwise,
// exactly the footnote's "edges of clockwise direction have port number
// one" setup (up to renaming). Two agents at antipodal vertices running
// the SAME deterministic port-based algorithm move identically and keep
// their distance forever: rendezvous is unsolvable without symmetry
// breaking.
//
// The instance must be run in KT0 mode with identical deterministic
// programs for the impossibility to bind; IDs are assigned but a
// symmetric algorithm by definition ignores them.
func SymmetricRing(n int) (*Instance, error) {
	if n < 4 || n%2 != 0 {
		return nil, fmt.Errorf("lower: symmetric ring needs even n ≥ 4, got %d", n)
	}
	ids := make([]int64, n)
	adj := make([][]graph.Vertex, n)
	for v := 0; v < n; v++ {
		ids[v] = int64(v)
		adj[v] = []graph.Vertex{
			graph.Vertex((v + 1) % n),     // port 0: clockwise
			graph.Vertex((v + n - 1) % n), // port 1: counter-clockwise
		}
	}
	g, err := graph.FromAdjacency(ids, adj, int64(n))
	if err != nil {
		return nil, err
	}
	return &Instance{
		Name:       "symmetric-ring",
		G:          g,
		StartA:     0,
		StartB:     graph.Vertex(n / 2),
		LowerBound: int64(n) * int64(n), // no finite bound suffices; any budget holds
		KT0:        true,
		Note:       "introduction's footnote: rotationally symmetric ports; identical deterministic agents preserve their distance forever",
	}, nil
}

// SymmetricPortAgent returns a deterministic KT0 agent that follows a
// fixed port sequence cyclically — the canonical "same algorithm" both
// agents run in the symmetry impossibility. An empty sequence means
// stay forever.
type SymmetricPortAgent struct {
	sequence []int
	step     int
}

// NewSymmetricPortAgent builds a fresh agent following seq cyclically.
func NewSymmetricPortAgent(seq []int) *SymmetricPortAgent {
	return &SymmetricPortAgent{sequence: append([]int(nil), seq...)}
}

// NextPort returns the port to use this round, or -1 to stay.
func (s *SymmetricPortAgent) NextPort(degree int) int {
	if len(s.sequence) == 0 || degree == 0 {
		return -1
	}
	p := s.sequence[s.step%len(s.sequence)]
	s.step++
	if p < 0 || p >= degree {
		return -1
	}
	return p
}
