// Package server is the HTTP/JSON batch daemon behind cmd/fnrd: it
// accepts job.Specs over POST /v1/batches, runs them on a bounded
// worker pool fed by a fixed-depth admission queue (backpressure is a
// 429 with Retry-After), serves status and aggregates — byte-identical
// to the same spec run in-process through the engine's reduced path —
// resolves workloads through a shared content-addressed graph cache,
// cancels batches via DELETE (the engine's context plumbing returns
// the partial reducer, so a cancelled job still reports its covered
// trial_spans), and drains gracefully on SIGTERM, journalling
// in-flight checkpointed jobs through their final flush.
//
// Endpoints:
//
//	POST   /v1/batches       submit a job.Spec           → 202 + job id
//	GET    /v1/batches       list jobs (id, state)
//	GET    /v1/batches/{id}  status + aggregate when finished
//	DELETE /v1/batches/{id}  cancel (idempotent)
//	GET    /metrics          Prometheus text format
//	GET    /healthz          200 while serving, 503 while draining
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"fnr/internal/graphcache"
	"fnr/internal/job"

	// Strategy registrations: spec validation resolves algorithm
	// names against the registry.
	_ "fnr/internal/algo/paper"
	_ "fnr/internal/baseline"
)

// Config tunes the daemon. The zero value is usable: 2 concurrent
// jobs, a 16-deep admission queue, engine-default per-job workers,
// and a fresh default-budget graph cache.
type Config struct {
	// Jobs is the worker-pool size — how many batches run
	// concurrently (default 2).
	Jobs int
	// QueueDepth bounds the admission queue; a submit finding it full
	// is rejected with 429 + Retry-After (default 16).
	QueueDepth int
	// JobWorkers is the engine worker count per batch (0 =
	// GOMAXPROCS). Parallelism never affects results.
	JobWorkers int
	// RetryAfter is the hint returned with 429 (default 1s).
	RetryAfter time.Duration
	// Cache is the shared graph cache (nil = graphcache.New(0)).
	Cache *graphcache.Cache
}

// state values of a job's lifecycle.
const (
	stateQueued    = "queued"
	stateRunning   = "running"
	stateDone      = "done"
	stateFailed    = "failed"
	stateCancelled = "cancelled"
)

// jobState is one submitted batch. Mutable fields are guarded by the
// server mutex; done closes on reaching a terminal state.
type jobState struct {
	id          string
	spec        job.Spec
	hash        string
	workloadKey string
	ctx         context.Context
	cancel      context.CancelFunc
	done        chan struct{}

	state string
	errs  string
	agg   json.RawMessage
}

// Server implements http.Handler. Construct with New; stop with
// Drain.
type Server struct {
	cfg   Config
	cache *graphcache.Cache
	mux   *http.ServeMux

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup
	queue      chan *jobState

	// run executes one job — overridable in-package so tests can
	// hold the pool busy deterministically.
	run func(ctx context.Context, js *jobState) (*job.Result, error)

	mu       sync.Mutex
	draining bool
	seq      int
	jobs     map[string]*jobState
	order    []string
	// Counter state for /metrics.
	submitted, rejected, completed, failed, cancelled uint64
	inflight                                          int
	trialsDone                                        uint64
}

// New builds the server and starts its worker pool.
func New(cfg Config) *Server {
	if cfg.Jobs <= 0 {
		cfg.Jobs = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.Cache == nil {
		cfg.Cache = graphcache.New(0)
	}
	s := &Server{
		cfg:   cfg,
		cache: cfg.Cache,
		mux:   http.NewServeMux(),
		queue: make(chan *jobState, cfg.QueueDepth),
		jobs:  make(map[string]*jobState),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.run = s.execute
	s.mux.HandleFunc("POST /v1/batches", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/batches", s.handleList)
	s.mux.HandleFunc("GET /v1/batches/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /v1/batches/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	for i := 0; i < cfg.Jobs; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Drain stops the daemon gracefully: no new submissions, every
// running batch's context is cancelled — the engine stops at the next
// chunk boundary and checkpointed jobs flush their journals through
// the final-flush path — queued jobs are marked cancelled, and Drain
// returns when the pool is idle (or ctx expires first).
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if !already {
		s.baseCancel()
	}
	idle := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// worker consumes the admission queue until drain, then empties what
// is left as cancelled.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case js := <-s.queue:
			s.process(js)
		case <-s.baseCtx.Done():
			for {
				select {
				case js := <-s.queue:
					s.process(js)
				default:
					return
				}
			}
		}
	}
}

// process runs one queued job to a terminal state.
func (s *Server) process(js *jobState) {
	s.mu.Lock()
	if js.state != stateQueued {
		// Cancelled while queued; already terminal.
		s.mu.Unlock()
		return
	}
	if js.ctx.Err() != nil {
		js.state = stateCancelled
		js.errs = "server draining"
		s.cancelled++
		s.mu.Unlock()
		close(js.done)
		return
	}
	js.state = stateRunning
	s.inflight++
	s.mu.Unlock()

	res, err := s.run(js.ctx, js)

	var aggJSON json.RawMessage
	var trials int
	if res != nil {
		agg := res.Aggregate()
		trials = agg.Trials
		if data, mErr := json.Marshal(agg); mErr == nil {
			aggJSON = data
		} else if err == nil {
			err = mErr
		}
	}
	s.mu.Lock()
	s.inflight--
	switch {
	case err == nil:
		js.state = stateDone
		js.agg = aggJSON
		s.completed++
		s.trialsDone += uint64(trials)
	case res != nil && js.ctx.Err() != nil:
		// Cancelled mid-batch: the engine returned the partial
		// reducer, whose aggregate carries the covered trial_spans.
		js.state = stateCancelled
		js.errs = err.Error()
		js.agg = aggJSON
		s.cancelled++
		s.trialsDone += uint64(trials)
	default:
		js.state = stateFailed
		js.errs = err.Error()
		s.failed++
	}
	s.mu.Unlock()
	close(js.done)
}

// execute is the production run function: resolve the workload
// through the graph cache (building at most once per workload key,
// however many requests race), then run the spec on the shared graph.
func (s *Server) execute(ctx context.Context, js *jobState) (*job.Result, error) {
	var m job.Materialized
	if js.spec.GraphRef != "" {
		var ok bool
		if m, ok = s.cache.Lookup(js.spec.GraphRef); !ok {
			return nil, fmt.Errorf("server: graph_ref %q is not resident in the graph cache (submit its workload first)", js.spec.GraphRef)
		}
	} else {
		var err error
		if m, err = s.cache.Get(ctx, js.workloadKey, js.spec.Materialize); err != nil {
			return nil, err
		}
	}
	return job.RunBuilt(ctx, js.spec, m, job.ExecOptions{Workers: s.cfg.JobWorkers})
}

// statusResponse is the wire form of a job's state.
type statusResponse struct {
	ID          string `json:"id"`
	State       string `json:"state"`
	SpecHash    string `json:"spec_hash"`
	WorkloadKey string `json:"workload_key,omitempty"`
	Error       string `json:"error,omitempty"`
	// Aggregate is present once the job is done or cancelled; its
	// bytes are exactly json.Marshal of the engine aggregate — the
	// same bytes the CLI path produces for this spec.
	Aggregate json.RawMessage `json:"aggregate,omitempty"`
}

// statusLocked snapshots a job; callers hold s.mu.
func statusLocked(js *jobState) statusResponse {
	return statusResponse{
		ID:          js.id,
		State:       js.state,
		SpecHash:    js.hash,
		WorkloadKey: js.workloadKey,
		Error:       js.errs,
		Aggregate:   js.agg,
	}
}

// writeJSON writes v compactly — deliberately no indentation, so an
// embedded aggregate json.RawMessage passes through byte-identical to
// the engine's own json.Marshal output (re-indenting would reformat
// it).
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec job.Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "decoding spec: " + err.Error()})
		return
	}
	spec = spec.Normalize()
	if err := spec.Validate(); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	hash, err := spec.Hash()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server draining"})
		return
	}
	s.seq++
	js := &jobState{
		id:          fmt.Sprintf("%s-%d", hash[:12], s.seq),
		spec:        spec,
		hash:        hash,
		workloadKey: spec.WorkloadKey(),
		state:       stateQueued,
		done:        make(chan struct{}),
	}
	js.ctx, js.cancel = context.WithCancel(s.baseCtx)
	select {
	case s.queue <- js:
		s.jobs[js.id] = js
		s.order = append(s.order, js.id)
		s.submitted++
		resp := statusLocked(js)
		s.mu.Unlock()
		writeJSON(w, http.StatusAccepted, resp)
	default:
		s.rejected++
		s.mu.Unlock()
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter/time.Second)))
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: "admission queue full"})
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	type item struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	s.mu.Lock()
	items := make([]item, 0, len(s.order))
	for _, id := range s.order {
		items = append(items, item{ID: id, State: s.jobs[id].state})
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"batches": items})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	js, ok := s.jobs[r.PathValue("id")]
	var resp statusResponse
	if ok {
		resp = statusLocked(js)
	}
	s.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown batch id"})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	js, ok := s.jobs[r.PathValue("id")]
	if !ok {
		s.mu.Unlock()
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown batch id"})
		return
	}
	if js.state == stateQueued {
		// Not yet picked up: terminal immediately; the worker will
		// skip it when it surfaces from the queue.
		js.state = stateCancelled
		js.errs = "cancelled before start"
		s.cancelled++
		close(js.done)
	}
	js.cancel()
	resp := statusLocked(js)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}
