package server

import (
	"fmt"
	"net/http"
)

// handleMetrics renders the admission, execution, and graph-cache
// counters in the Prometheus text exposition format — hand-written,
// so the daemon stays dependency-free.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	submitted, rejected := s.submitted, s.rejected
	completed, failed, cancelled := s.completed, s.failed, s.cancelled
	inflight, queued := s.inflight, len(s.queue)
	trials := s.trialsDone
	draining := 0
	if s.draining {
		draining = 1
	}
	s.mu.Unlock()
	cs := s.cache.Stats()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("fnrd_batches_submitted_total", "Batches accepted into the admission queue.", submitted)
	counter("fnrd_batches_rejected_total", "Submissions rejected with 429 (queue full).", rejected)
	counter("fnrd_batches_completed_total", "Batches finished successfully.", completed)
	counter("fnrd_batches_failed_total", "Batches finished with an error.", failed)
	counter("fnrd_batches_cancelled_total", "Batches cancelled (client DELETE or drain).", cancelled)
	counter("fnrd_trials_completed_total", "Engine trials aggregated across finished and cancelled batches.", trials)
	gauge("fnrd_batches_inflight", "Batches currently executing.", int64(inflight))
	gauge("fnrd_queue_depth", "Batches waiting in the admission queue.", int64(queued))
	gauge("fnrd_queue_capacity", "Admission queue capacity.", int64(s.cfg.QueueDepth))
	gauge("fnrd_draining", "1 while the server is draining.", int64(draining))
	counter("fnrd_graphcache_hits_total", "Graph-cache hits (including waits on an in-flight build).", cs.Hits)
	counter("fnrd_graphcache_misses_total", "Graph-cache misses.", cs.Misses)
	counter("fnrd_graphcache_builds_total", "Graph builds claimed (one per workload key under singleflight).", cs.Builds)
	counter("fnrd_graphcache_evictions_total", "Graphs evicted by the LRU byte budget.", cs.Evictions)
	gauge("fnrd_graphcache_entries", "Graphs resident in the cache.", int64(cs.Entries))
	gauge("fnrd_graphcache_bytes", "Bytes of CSR arrays resident in the cache.", cs.Bytes)
	gauge("fnrd_graphcache_max_bytes", "Graph-cache retention budget.", cs.MaxBytes)
}
