package server

import (
	"context"
	"os"
	"os/signal"
	"syscall"
)

// SignalContext returns a copy of parent cancelled on the first
// SIGINT or SIGTERM — the one drain trigger shared by the daemon and
// the CLIs. Cancellation propagates into the engine's entry points,
// which stop at the next chunk boundary and flush checkpoint journals
// through the final-flush path, so `experiments -tail`, benchengine,
// and fnrd all honor an interrupt through this single code path. The
// returned stop function releases the signal registration (a second
// signal after stop kills the process with the default disposition —
// the escape hatch from a wedged drain).
func SignalContext(parent context.Context) (context.Context, context.CancelFunc) {
	return signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
}
