package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fnr"
	"fnr/internal/graphcache"
	"fnr/internal/job"
)

// postSpec submits a spec and returns the decoded response and status
// code.
func postSpec(t *testing.T, url string, spec job.Spec) (statusResponse, int, http.Header) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/batches", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statusResponse
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp.StatusCode, resp.Header
}

// getStatus fetches one batch's status.
func getStatus(t *testing.T, url, id string) statusResponse {
	t.Helper()
	resp, err := http.Get(url + "/v1/batches/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET status = %d", resp.StatusCode)
	}
	var st statusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// pollUntil polls the batch until its state is one of want (fatal on
// a different terminal state or timeout).
func pollUntil(t *testing.T, url, id string, want ...string) statusResponse {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		st := getStatus(t, url, id)
		for _, w := range want {
			if st.State == w {
				return st
			}
		}
		switch st.State {
		case stateDone, stateFailed, stateCancelled:
			t.Fatalf("batch %s reached terminal state %q (error %q) while waiting for %v", id, st.State, st.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("batch %s stuck in %q waiting for %v", id, st.State, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// cancelBatch issues the DELETE.
func cancelBatch(t *testing.T, url, id string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url+"/v1/batches/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status = %d", resp.StatusCode)
	}
}

// inProcessAggregate runs the spec through the public CLI path —
// fnr.RunBatchReduced on the spec's own batch — and marshals the
// aggregate: the bytes the server must reproduce exactly.
func inProcessAggregate(t *testing.T, spec job.Spec) []byte {
	t.Helper()
	m, err := spec.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Batch(m, job.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := fnr.RunBatchReduced(b)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(r.Aggregate(b))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestSubmitPollAggregateByteIdentical is the acceptance pin: a batch
// submitted over HTTP returns aggregate JSON byte-identical to the
// same job.Spec run in-process via fnr.RunBatchReduced, and a second
// request for the same workload hash hits the graph cache (build
// count stays 1).
func TestSubmitPollAggregateByteIdentical(t *testing.T) {
	cache := graphcache.New(0)
	srv := New(Config{Cache: cache})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Drain(context.Background())

	spec := job.Spec{
		Algorithm: "whiteboard",
		Workload:  &job.Workload{Kind: "planted", N: 256, D: 32, Seed: 5},
		Trials:    60,
		Seed:      5,
	}
	st, code, _ := postSpec(t, ts.URL, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	final := pollUntil(t, ts.URL, st.ID, stateDone)
	want := inProcessAggregate(t, spec)
	if string(final.Aggregate) != string(want) {
		t.Fatalf("HTTP aggregate differs from in-process fnr.RunBatchReduced:\n%s\n%s", final.Aggregate, want)
	}

	// Second submission of the same workload hash: different trials
	// and algorithm, same graph — served from cache, built once.
	spec2 := job.Spec{
		Algorithm: "sweep",
		Workload:  &job.Workload{Kind: "planted", N: 256, D: 32, Seed: 5},
		Trials:    30,
		Seed:      9,
	}
	if spec2.WorkloadKey() != spec.WorkloadKey() {
		t.Fatal("test bug: workload keys should match")
	}
	st2, code, _ := postSpec(t, ts.URL, spec2)
	if code != http.StatusAccepted {
		t.Fatalf("second submit status = %d", code)
	}
	pollUntil(t, ts.URL, st2.ID, stateDone)
	if cs := cache.Stats(); cs.Builds != 1 || cs.Hits < 1 {
		t.Fatalf("cache stats after second request = %+v, want 1 build and ≥ 1 hit", cs)
	}

	// GraphRef resolution: reference the resident workload by key.
	ref := job.Spec{Algorithm: "sweep", GraphRef: spec.WorkloadKey(), Trials: 10, Seed: 2}
	st3, code, _ := postSpec(t, ts.URL, ref)
	if code != http.StatusAccepted {
		t.Fatalf("graph_ref submit status = %d", code)
	}
	if fin := pollUntil(t, ts.URL, st3.ID, stateDone); fin.Error != "" {
		t.Fatalf("graph_ref job failed: %s", fin.Error)
	}
	if cs := cache.Stats(); cs.Builds != 1 {
		t.Fatalf("graph_ref resolution rebuilt the graph: %+v", cs)
	}
}

// TestCancelMidBatchReturnsPartialSpans: DELETE on a running batch
// yields state "cancelled" with a partial aggregate carrying
// trial_spans for exactly the covered prefix.
func TestCancelMidBatchReturnsPartialSpans(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Drain(context.Background())

	const trials = 200_000_000 // far more than can finish before the cancel
	spec := job.Spec{
		Algorithm: "sweep",
		Workload:  &job.Workload{Kind: "planted", N: 64, D: 8, Seed: 3},
		Trials:    trials,
		Seed:      7,
	}
	st, code, _ := postSpec(t, ts.URL, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	pollUntil(t, ts.URL, st.ID, stateRunning)
	// Let some chunks land so the partial reducer has coverage.
	time.Sleep(300 * time.Millisecond)
	cancelBatch(t, ts.URL, st.ID)
	final := pollUntil(t, ts.URL, st.ID, stateCancelled)

	var agg struct {
		Trials int               `json:"trials"`
		Spans  []json.RawMessage `json:"trial_spans"`
	}
	if err := json.Unmarshal(final.Aggregate, &agg); err != nil {
		t.Fatalf("cancelled batch aggregate: %v\n%s", err, final.Aggregate)
	}
	if agg.Trials <= 0 || agg.Trials >= trials {
		t.Fatalf("cancelled batch covered %d trials, want a non-empty strict prefix of %d", agg.Trials, trials)
	}
	if len(agg.Spans) == 0 {
		t.Fatalf("cancelled batch aggregate has no trial_spans:\n%s", final.Aggregate)
	}
}

// TestCancelResubmitResumeByteIdentical is the crash-recovery
// acceptance path over HTTP: cancel a checkpointed batch mid-run,
// resubmit the same spec with Resume pointing at the journal, and the
// finished aggregate is byte-identical to the uninterrupted
// in-process run (resume re-ran only the uncovered trial_spans).
func TestCancelResubmitResumeByteIdentical(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Drain(context.Background())

	ckpt := filepath.Join(t.TempDir(), "batch.ckpt")
	spec := job.Spec{
		Algorithm:       "sweep",
		Workload:        &job.Workload{Kind: "planted", N: 64, D: 8, Seed: 3},
		Trials:          4_000_000,
		Seed:            13,
		Checkpoint:      ckpt,
		CheckpointEvery: 100_000,
	}
	st, code, _ := postSpec(t, ts.URL, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	// Cancel as soon as the journal exists — the same trigger the CI
	// kill -9 cycle uses, long before the batch can finish.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if fi, err := os.Stat(ckpt); err == nil && fi.Size() > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("checkpoint journal never appeared")
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancelBatch(t, ts.URL, st.ID)
	partial := pollUntil(t, ts.URL, st.ID, stateCancelled)
	if !strings.Contains(string(partial.Aggregate), "trial_spans") {
		t.Fatalf("cancelled checkpointed batch lost its span metadata:\n%s", partial.Aggregate)
	}
	if partial.SpecHash != st.SpecHash {
		t.Fatal("spec hash changed across poll")
	}

	resumed := spec
	resumed.Resume = ckpt
	st2, code, _ := postSpec(t, ts.URL, resumed)
	if code != http.StatusAccepted {
		t.Fatalf("resubmit status = %d", code)
	}
	if st2.SpecHash != st.SpecHash {
		t.Fatal("checkpoint policy leaked into the spec hash: resubmission should hash identically")
	}
	final := pollUntil(t, ts.URL, st2.ID, stateDone)

	plain := spec
	plain.Checkpoint, plain.CheckpointEvery = "", 0
	want := inProcessAggregate(t, plain)
	if string(final.Aggregate) != string(want) {
		t.Fatalf("resumed aggregate differs from the uninterrupted in-process run:\n%s\n%s", final.Aggregate, want)
	}
	if strings.Contains(string(final.Aggregate), "trial_spans") {
		t.Fatal("complete resumed run should not carry trial_spans")
	}
}

// TestBackpressure429 fills the pool and the admission queue with
// jobs held open by a test run hook, then requires the next submit to
// bounce with 429 + Retry-After.
func TestBackpressure429(t *testing.T) {
	srv := New(Config{Jobs: 1, QueueDepth: 1, RetryAfter: 3 * time.Second})
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	srv.run = func(ctx context.Context, js *jobState) (*job.Result, error) {
		started <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
		}
		return srv.execute(ctx, js)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Drain(context.Background())
	defer close(release)

	spec := func(seed uint64) job.Spec {
		return job.Spec{
			Algorithm: "sweep",
			Workload:  &job.Workload{Kind: "planted", N: 64, D: 8, Seed: 3},
			Trials:    10,
			Seed:      seed,
		}
	}
	// First job occupies the single worker …
	if _, code, _ := postSpec(t, ts.URL, spec(1)); code != http.StatusAccepted {
		t.Fatalf("first submit status = %d", code)
	}
	<-started
	// … second fills the queue …
	if _, code, _ := postSpec(t, ts.URL, spec(2)); code != http.StatusAccepted {
		t.Fatalf("second submit status = %d", code)
	}
	// … third must bounce.
	_, code, hdr := postSpec(t, ts.URL, spec(3))
	if code != http.StatusTooManyRequests {
		t.Fatalf("overflow submit status = %d, want 429", code)
	}
	if ra := hdr.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", ra)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if !strings.Contains(buf.String(), "fnrd_batches_rejected_total 1") {
		t.Fatalf("metrics missing the rejection:\n%s", buf.String())
	}
}

// TestDrainJournalsInFlight: Drain cancels a running checkpointed
// batch, its journal survives with real coverage, and post-drain the
// server refuses work.
func TestDrainJournalsInFlight(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	ckpt := filepath.Join(t.TempDir(), "drain.ckpt")
	spec := job.Spec{
		Algorithm:       "sweep",
		Workload:        &job.Workload{Kind: "planted", N: 64, D: 8, Seed: 3},
		Trials:          200_000_000,
		Seed:            4,
		Checkpoint:      ckpt,
		CheckpointEvery: 100_000,
	}
	st, code, _ := postSpec(t, ts.URL, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	pollUntil(t, ts.URL, st.ID, stateRunning)
	time.Sleep(200 * time.Millisecond)

	dctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := getStatus(t, ts.URL, st.ID); got.State != stateCancelled {
		t.Fatalf("post-drain state = %q, want cancelled", got.State)
	}

	// The journal is a valid checkpoint for this batch with coverage.
	m, err := spec.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Batch(m, job.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := fnr.ReadBatchCheckpoint(ckpt, b)
	if err != nil {
		t.Fatalf("journal unreadable after drain: %v", err)
	}
	if len(r.Spans()) == 0 {
		t.Fatal("drained journal covers nothing")
	}

	// Draining servers refuse new work and report unhealthy.
	if _, code, _ := postSpec(t, ts.URL, spec); code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit status = %d, want 503", code)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain healthz = %d, want 503", resp.StatusCode)
	}
}

// TestSubmitValidation: malformed and invalid specs bounce with 400.
func TestSubmitValidation(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Drain(context.Background())

	for name, body := range map[string]string{
		"garbage":       "{not json",
		"unknown-field": `{"algorithm":"sweep","workload":{"kind":"planted","n":64,"d":8},"trials":5,"surprise":1}`,
		"no-workload":   `{"algorithm":"sweep","trials":5}`,
		"bad-algorithm": `{"algorithm":"nope","workload":{"kind":"planted","n":64,"d":8},"trials":5}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/batches", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/batches/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id status = %d, want 404", resp.StatusCode)
	}
}

// TestScenarioSubmitByteIdentical: a k-agent delayed-wakeup scenario
// spec is a first-class daemon submission — the HTTP aggregate is
// byte-identical to the same spec run in-process, it echoes the
// resolved scenario (derived starts included), and a scenario a
// pairwise algorithm cannot serve bounces with 400 at submit time,
// before any queue slot is spent.
func TestScenarioSubmitByteIdentical(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Drain(context.Background())

	spec := job.Spec{
		Algorithm:  "walkpair",
		Workload:   &job.Workload{Kind: "planted", N: 256, D: 16, Seed: 5},
		Trials:     40,
		Seed:       5,
		MaxRounds:  1 << 16,
		Agents:     3,
		WakeDelays: []int64{0, 0, 128},
		Meet:       "firstpair",
	}
	st, code, _ := postSpec(t, ts.URL, spec)
	if code != http.StatusAccepted {
		t.Fatalf("scenario submit status = %d", code)
	}
	final := pollUntil(t, ts.URL, st.ID, stateDone)
	want := inProcessAggregate(t, spec)
	if string(final.Aggregate) != string(want) {
		t.Fatalf("HTTP scenario aggregate differs from the in-process run:\n%s\n%s", final.Aggregate, want)
	}
	for _, frag := range []string{`"scenario":{"agents":3`, `"wake_delays":[0,0,128]`, `"meet":"firstpair"`} {
		if !strings.Contains(string(final.Aggregate), frag) {
			t.Errorf("scenario aggregate missing %s:\n%s", frag, final.Aggregate)
		}
	}

	// The two-agent strategies cannot serve k>2; validation rejects the
	// submission outright.
	bad := spec
	bad.Algorithm = "whiteboard"
	body, err := json.Marshal(bad)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/batches", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("k=3 whiteboard submit status = %d, want 400", resp.StatusCode)
	}
	var er errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(er.Error, "does not support 3 agents") {
		t.Fatalf("rejection error = %q, want a two-agent-strategy message", er.Error)
	}
}

// TestMetricsSchema pins the exposition names the README documents.
func TestMetricsSchema(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Drain(context.Background())

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"fnrd_batches_submitted_total", "fnrd_batches_rejected_total",
		"fnrd_batches_completed_total", "fnrd_batches_failed_total",
		"fnrd_batches_cancelled_total", "fnrd_trials_completed_total",
		"fnrd_batches_inflight", "fnrd_queue_depth", "fnrd_queue_capacity",
		"fnrd_draining", "fnrd_graphcache_hits_total",
		"fnrd_graphcache_misses_total", "fnrd_graphcache_builds_total",
		"fnrd_graphcache_evictions_total", "fnrd_graphcache_entries",
		"fnrd_graphcache_bytes", "fnrd_graphcache_max_bytes",
	} {
		if !strings.Contains(buf.String(), "\n"+name+" ") && !strings.Contains(buf.String(), name+" ") {
			t.Errorf("metrics output missing %s", name)
		}
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics Content-Type = %q", ct)
	}
}
