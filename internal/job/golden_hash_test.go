package job_test

import (
	"context"
	"testing"

	"fnr/internal/job"
)

// Golden spec identities, captured BEFORE the scenario fields were
// added to job.Spec: a spec without scenario fields must canonical-
// JSON and hash byte-identically to the pre-scenario encoder, or
// every daemon cache key and dedup table built before the refactor
// silently invalidates. The scenario block is appended to the struct
// with omitempty for exactly this reason.
func TestGoldenSpecHashesPreScenario(t *testing.T) {
	intp := func(v int) *int { return &v }
	cases := []struct {
		name      string
		spec      job.Spec
		canonical string
		hash      string
		wkey      string
	}{
		{
			name: "reference",
			spec: job.Spec{
				Algorithm: "whiteboard",
				Workload:  &job.Workload{N: 1024, D: 181, Seed: 7},
				Trials:    200,
				Seed:      7,
			},
			canonical: `{"algorithm":"whiteboard","workload":{"kind":"planted","n":1024,"d":181,"seed":7},"trials":200,"seed":7}`,
			hash:      "ba103599e726217cf177ff117640f2efc3943cca64812c731234a347fce0fda4",
			wkey:      "efc2a522f4caa1278292b4bfcd1b598f11cadb2183cbed744c9ccb61a0cd9cea",
		},
		{
			name: "defaultkind",
			spec: job.Spec{
				Algorithm: "sweep",
				Workload:  &job.Workload{N: 64, D: 8, Seed: 3},
				Trials:    10,
				Seed:      4,
				Params:    "practical",
			},
			canonical: `{"algorithm":"sweep","workload":{"kind":"planted","n":64,"d":8,"seed":3},"trials":10,"seed":4}`,
			hash:      "f019264bff91e7b2f29f7325639a18174474c3662bb39596b0b3fbda27734cb0",
			wkey:      "8031628c497828440991791eb7400e10af339279dddc2b02b39f3fa38986a329",
		},
		{
			name: "starts-shard-faults",
			spec: job.Spec{
				Algorithm:  "walkpair",
				Workload:   &job.Workload{N: 128, D: 8, Seed: 11},
				StartA:     intp(3),
				StartB:     intp(17),
				Trials:     500,
				Seed:       11,
				ShardIndex: 1,
				ShardCount: 3,
				Faults:     "panic:p=0.01,stall:p=0.02,builderr:p=0.005",
				FaultSeed:  9,
				Checkpoint: "x.ckpt",
			},
			canonical: `{"algorithm":"walkpair","workload":{"kind":"planted","n":128,"d":8,"seed":11},"start_a":3,"start_b":17,"trials":500,"seed":11,"shard_index":1,"shard_count":3,"faults":"panic:p=0.01,stall:p=0.02,builderr:p=0.005","fault_seed":9,"checkpoint":"x.ckpt"}`,
			hash:      "7f7784eb1ae791918d6280c2e91ff9daf3d04724042e7523254f3a66b4826ea8",
			wkey:      "778d4a9c83f40a5fc919b8c14ed6aa790f0acb8470a0f742b3350df0580e9d2d",
		},
		{
			name: "graphref-paper",
			spec: job.Spec{
				Algorithm: "noboard",
				GraphRef:  "abc123",
				Trials:    7,
				Seed:      1,
				Delta:     32,
				MaxRounds: 5000,
				Params:    "paper",
			},
			canonical: `{"algorithm":"noboard","graph_ref":"abc123","trials":7,"seed":1,"delta":32,"max_rounds":5000,"params":"paper"}`,
			hash:      "f0c2d0d31d17c92125b8463ff22fcc4b160d9339d4b9c74b38aeb434a40700ed",
			wkey:      "abc123",
		},
		{
			name: "harness-stream",
			spec: job.Spec{
				Algorithm: "dfs",
				Workload:  &job.Workload{Kind: "ring", N: 33, Seed: 2, Stream: 11400714819323198485},
				Trials:    12,
				Seed:      6,
			},
			canonical: `{"algorithm":"dfs","workload":{"kind":"ring","n":33,"seed":2,"stream":11400714819323198485},"trials":12,"seed":6}`,
			hash:      "7d11304caea37488242f3308dc7c6ca0d221577e5177b83d54b8816d59eac3fc",
			wkey:      "b44a7e689aaefbc4449795c845c26912aa76a645b158118870eef08dc66254cb",
		},
	}
	for _, tc := range cases {
		data, err := tc.spec.CanonicalJSON()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if string(data) != tc.canonical {
			t.Errorf("%s: canonical JSON drifted from the pre-scenario encoder:\ngot:  %s\nwant: %s", tc.name, data, tc.canonical)
		}
		h, err := tc.spec.Hash()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if h != tc.hash {
			t.Errorf("%s: Hash = %s, want %s", tc.name, h, tc.hash)
		}
		if k := tc.spec.WorkloadKey(); k != tc.wkey {
			t.Errorf("%s: WorkloadKey = %s, want %s", tc.name, k, tc.wkey)
		}
	}
}

// The scenario normalization boundary: a bare agents=2 block is
// observably the legacy setting and must hash like one; anything more
// (delays, extra agents, a predicate) is new identity.
func TestScenarioSpecHashing(t *testing.T) {
	base := job.Spec{
		Algorithm: "walkpair",
		Workload:  &job.Workload{N: 64, D: 8, Seed: 3},
		Trials:    10,
		Seed:      4,
	}
	baseHash, err := base.Hash()
	if err != nil {
		t.Fatal(err)
	}

	bare := base
	bare.Agents = 2
	if h, _ := bare.Hash(); h != baseHash {
		t.Errorf("bare agents=2 spec hash %s differs from legacy %s", h, baseHash)
	}
	zeroDelays := base
	zeroDelays.WakeDelays = []int64{0, 0}
	if h, _ := zeroDelays.Hash(); h != baseHash {
		t.Errorf("all-zero wake_delays spec hash %s differs from legacy %s", h, baseHash)
	}
	meetAll := base
	meetAll.Meet = "all"
	if h, _ := meetAll.Hash(); h != baseHash {
		t.Errorf(`meet="all" spec hash %s differs from legacy %s`, h, baseHash)
	}

	delayed := base
	delayed.WakeDelays = []int64{0, 16}
	if h, _ := delayed.Hash(); h == baseHash {
		t.Error("a real wake delay did not change the spec hash")
	}
	k3 := base
	k3.Agents = 3
	if h, _ := k3.Hash(); h == baseHash {
		t.Error("agents=3 did not change the spec hash")
	}
	data, err := k3.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	want := `{"algorithm":"walkpair","workload":{"kind":"planted","n":64,"d":8,"seed":3},"trials":10,"seed":4,"agents":3}`
	if string(data) != want {
		t.Errorf("scenario fields must append after the legacy fields:\ngot:  %s\nwant: %s", data, want)
	}
}

// Scenario specs validate and run end to end: derived extra starts
// are deterministic (same spec twice → byte-identical aggregates), a
// bad spec fails before any work, and a pairwise algorithm rejects
// k>2 at validation time.
func TestScenarioSpecRuns(t *testing.T) {
	spec := job.Spec{
		Algorithm:  "walkpair",
		Workload:   &job.Workload{N: 64, D: 8, Seed: 3},
		Trials:     8,
		Seed:       4,
		MaxRounds:  1 << 14,
		Agents:     3,
		WakeDelays: []int64{0, 16, 0},
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	run := func() *string {
		res, err := job.Run(context.Background(), spec, job.ExecOptions{})
		if err != nil {
			t.Fatal(err)
		}
		s := renderAggregate(t, res)
		return &s
	}
	first, second := run(), run()
	if *first != *second {
		t.Errorf("derived-start scenario is not reproducible:\n%s\nvs\n%s", *first, *second)
	}

	bad := spec
	bad.WakeDelays = []int64{5}
	if err := bad.Validate(); err == nil {
		t.Error("mismatched wake_delays length validated")
	}
	pairwise := spec
	pairwise.Algorithm = "whiteboard"
	pairwise.WakeDelays = nil
	if err := pairwise.Validate(); err == nil {
		t.Error("whiteboard at k=3 validated; want a two-agent-strategy rejection")
	}
}
