// Package job defines the serializable unit of batch work shared by
// every front end — the CLIs (benchengine, experiments -tail) and the
// fnrd daemon. A Spec names a registered algorithm, a workload (or a
// reference to an already-built graph), a trial count and seed, and
// the optional shard / fault-plan / checkpoint policy; Materialize
// derives the workload's graph and start pair deterministically, and
// Run routes the spec through the engine's reduced or checkpointed
// entry points.
//
// Specs have a canonical JSON encoding and two content hashes:
// Spec.Hash identifies the computation (everything that determines
// the aggregate — execution details like checkpoint paths are
// excluded), and Workload.Key identifies the built graph + start pair
// alone (the graph-cache key, shared by specs that differ only in
// algorithm, trials, or seed).
//
// Workload derivation is the single home of the idiom the CLIs used
// to each open-code: a PCG(seed, stream) generator builds the graph,
// then the *same* stream draws the adjacent start pair. The default
// stream constant 0xbe7c4 matches benchengine's presets and
// experiments -tail; the harness suite passes its historical stream
// via Workload.Stream so every pre-refactor instance is reproduced
// byte for byte.
package job

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"slices"
	"strings"

	"fnr/internal/algo"
	"fnr/internal/core"
	"fnr/internal/engine"
	"fnr/internal/graph"
	"fnr/internal/lower"
	"fnr/internal/sim"
)

// DefaultStream is the PCG stream constant of the standard workload
// derivation (benchengine presets, experiments -tail).
const DefaultStream uint64 = 0xbe7c4

// Workload names a deterministically derivable instance: a generated
// graph plus an adjacent start pair, both functions of (Kind, N, D/P,
// Seed, Stream) alone.
type Workload struct {
	// Kind selects the generator: "planted" (PlantedMinDegree, the
	// default), "gnp" (Erdős–Rényi G(n,p)), "complete", "ring", or a
	// lower-bound family "hard:twostars", "hard:starclique",
	// "hard:kt0", "hard:distance2" (sized by N; start pair fixed by
	// the instance, no RNG).
	Kind string `json:"kind"`
	// N is the vertex-count parameter (family-specific sizing for
	// hard instances, matching fnr.HardInstance).
	N int `json:"n"`
	// D is the planted minimum degree (Kind "planted").
	D int `json:"d,omitempty"`
	// P is the edge probability (Kind "gnp").
	P float64 `json:"p,omitempty"`
	// Seed drives graph generation and the start-pair draw.
	Seed uint64 `json:"seed,omitempty"`
	// Stream overrides the PCG stream constant (0 = DefaultStream).
	// The harness suite uses its historical 0x9e3779b97f4a7c15.
	Stream uint64 `json:"stream,omitempty"`
}

// Materialized is a built workload: the immutable graph and the
// derived adjacent start pair.
type Materialized struct {
	Graph          *graph.Graph
	StartA, StartB graph.Vertex
}

// normalized maps the zero Kind to its default so equal workloads
// hash equally however they were spelled.
func (w Workload) normalized() Workload {
	if w.Kind == "" {
		w.Kind = "planted"
	}
	return w
}

// Validate checks the structural parameters (generator-specific
// constraints surface from the generator itself at Materialize time).
func (w Workload) Validate() error {
	w = w.normalized()
	switch {
	case w.N <= 0:
		return fmt.Errorf("job: workload n must be positive, got %d", w.N)
	case w.Kind == "gnp" && (w.P < 0 || w.P > 1):
		return fmt.Errorf("job: workload p must be in [0, 1], got %v", w.P)
	}
	switch w.Kind {
	case "planted", "gnp", "complete", "ring":
		return nil
	case "hard:twostars", "hard:starclique", "hard:kt0", "hard:distance2":
		return nil
	}
	return fmt.Errorf("job: unknown workload kind %q", w.Kind)
}

// Key is the workload's content hash: sha256 over the canonical JSON
// of the normalized workload, hex-encoded. Two specs with equal keys
// materialize identical graphs and start pairs — the graph-cache key.
func (w Workload) Key() string {
	data, err := json.Marshal(w.normalized())
	if err != nil {
		// Workload has only scalar fields; Marshal cannot fail.
		panic(err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// stream resolves the PCG stream constant.
func (w Workload) stream() uint64 {
	if w.Stream == 0 {
		return DefaultStream
	}
	return w.Stream
}

// hardInstance builds the lower-bound families, sized exactly like
// fnr.HardInstance so "hard:*" workloads and the public constructor
// agree on instances.
func hardInstance(kind string, n int) (*lower.Instance, error) {
	switch kind {
	case "hard:twostars":
		return lower.TwoStarsInstance(max(1, (n-2)/2))
	case "hard:starclique":
		return lower.StarCliqueInstance(max(1, n/8), 4)
	case "hard:kt0":
		return lower.KT0Instance(n)
	case "hard:distance2":
		return lower.Distance2Instance(max(3, (n+1)/2))
	}
	return nil, fmt.Errorf("job: unknown workload kind %q", kind)
}

// Materialize builds the workload: generate the graph from
// PCG(Seed, stream), then draw an adjacent start pair from the same
// stream — a uniformly random non-isolated vertex and a uniform
// neighbor behind one of its ports. The result depends only on the
// workload's fields, so equal workloads (equal Key) are
// byte-identical across processes.
func (w Workload) Materialize() (Materialized, error) {
	w = w.normalized()
	if err := w.Validate(); err != nil {
		return Materialized{}, err
	}
	if strings.HasPrefix(w.Kind, "hard:") {
		inst, err := hardInstance(w.Kind, w.N)
		if err != nil {
			return Materialized{}, err
		}
		return Materialized{Graph: inst.G, StartA: inst.StartA, StartB: inst.StartB}, nil
	}
	rng := rand.New(rand.NewPCG(w.Seed, w.stream()))
	var (
		g   *graph.Graph
		err error
	)
	switch w.Kind {
	case "planted":
		g, err = graph.PlantedMinDegree(w.N, w.D, rng)
	case "gnp":
		g, err = graph.GNP(w.N, w.P, rng)
	case "complete":
		g, err = graph.Complete(w.N)
	case "ring":
		g, err = graph.Ring(w.N)
	}
	if err != nil {
		return Materialized{}, fmt.Errorf("job: workload: %w", err)
	}
	if g.MaxDegree() == 0 {
		return Materialized{}, errors.New("job: workload graph has no edges")
	}
	sa := graph.Vertex(rng.IntN(g.N()))
	for g.Degree(sa) == 0 {
		sa = graph.Vertex(rng.IntN(g.N()))
	}
	sb := g.Adj(sa)[rng.IntN(g.Degree(sa))]
	return Materialized{Graph: g, StartA: sa, StartB: sb}, nil
}

// Spec is one batch job, fully serializable. The zero values of the
// optional fields mean "default": Delta 0 resolves to the
// materialized graph's minimum degree (every CLI preset's choice),
// Delta -1 means "unknown to the agents" (the engine's doubling
// estimation), Params "" means the practical preset.
type Spec struct {
	// Algorithm is a registry name (e.g. "whiteboard", "sweep").
	Algorithm string `json:"algorithm"`
	// Workload derives the instance; exactly one of Workload and
	// GraphRef must be set.
	Workload *Workload `json:"workload,omitempty"`
	// GraphRef references an already-materialized workload by its
	// Workload.Key — the daemon resolves it against its graph cache.
	GraphRef string `json:"graph_ref,omitempty"`
	// StartA/StartB override the materialized start pair (dense
	// vertex indices).
	StartA *int `json:"start_a,omitempty"`
	StartB *int `json:"start_b,omitempty"`
	// Trials and Seed define the batch; per-trial seeds derive from
	// (Seed, global trial index) exactly as in engine.Batch.
	Trials int    `json:"trials"`
	Seed   uint64 `json:"seed"`
	// Delta is the minimum degree told to the agents: 0 = the
	// materialized graph's true minimum degree, -1 = unknown, > 0 =
	// that value.
	Delta int `json:"delta,omitempty"`
	// MaxRounds bounds each trial (0 = engine default).
	MaxRounds int64 `json:"max_rounds,omitempty"`
	// Params selects the constant preset: "" or "practical", or
	// "paper".
	Params string `json:"params,omitempty"`
	// ShardIndex/ShardCount run only the global trial range
	// [Trials·i/k, Trials·(i+1)/k); 0/0 (or k = 1) is unsharded.
	ShardIndex int `json:"shard_index,omitempty"`
	ShardCount int `json:"shard_count,omitempty"`
	// Faults is a deterministic fault-injection plan in the
	// engine.ParseFaultPlan grammar; FaultSeed seeds it.
	Faults    string `json:"faults,omitempty"`
	FaultSeed uint64 `json:"fault_seed,omitempty"`
	// Checkpoint journals progress to this path (atomic rewrite every
	// CheckpointEvery trials; 0 = engine default cadence); Resume
	// loads a prior journal and runs only its uncovered spans. These
	// are execution policy, not identity: they do not affect Hash.
	Checkpoint      string `json:"checkpoint,omitempty"`
	CheckpointEvery int    `json:"checkpoint_every,omitempty"`
	Resume          string `json:"resume,omitempty"`

	// The optional scenario block — k-agent teams and delayed wake-ups
	// (sim.Scenario). All four fields are appended with omitempty so a
	// spec without them canonical-JSONs and hashes byte-identically to
	// pre-scenario specs.
	//
	// Agents is the team size k (0 = the legacy two-agent setting;
	// otherwise 2 ≤ k ≤ sim.MaxAgents). When Starts is empty, agents 0
	// and 1 start at the materialized (or start_a/start_b) pair and
	// agents 2..k-1 at extra vertices derived deterministically from
	// (graph, pair, Seed) — distinct, non-isolated.
	Agents int `json:"agents,omitempty"`
	// Starts overrides every agent's start vertex (dense indices,
	// pairwise distinct); its length is the team size. Mutually
	// exclusive with start_a/start_b.
	Starts []int `json:"starts,omitempty"`
	// WakeDelays holds one wake delay per agent: the number of rounds
	// the agent sleeps at its start vertex before its first action.
	// Empty means every agent wakes at round 0.
	WakeDelays []int64 `json:"wake_delays,omitempty"`
	// Meet selects the meeting predicate: "" (or "all") = all k agents
	// gathered at one vertex, "firstpair" = first co-location of any
	// two agents.
	Meet string `json:"meet,omitempty"`
}

// ExecOptions are the per-process execution knobs that never affect
// results (and therefore stay out of the canonical encoding): worker
// parallelism and lockstep lane width.
type ExecOptions struct {
	Workers   int
	LaneWidth int
}

// Normalize maps equivalent spellings to one canonical form: default
// workload kind, Params "practical" → "", ShardCount ≤ 1 → unsharded
// 0/0, Meet "all" → "", all-zero WakeDelays dropped, and a bare
// Agents 2 (no starts, delays or predicate — observably the legacy
// setting) cleared to 0.
func (s Spec) Normalize() Spec {
	if s.Workload != nil {
		w := s.Workload.normalized()
		s.Workload = &w
	}
	if s.Params == "practical" {
		s.Params = ""
	}
	if s.ShardCount <= 1 {
		s.ShardIndex, s.ShardCount = 0, 0
	}
	if s.Meet == "all" {
		s.Meet = ""
	}
	if len(s.WakeDelays) > 0 && !slices.ContainsFunc(s.WakeDelays, func(d int64) bool { return d != 0 }) {
		s.WakeDelays = nil
	}
	if s.Agents == 2 && len(s.Starts) == 0 && len(s.WakeDelays) == 0 && s.Meet == "" {
		s.Agents = 0
	}
	return s
}

// hasScenario reports whether any scenario field survives
// normalization — i.e. whether the spec lowers to a Batch with a
// non-nil Scenario.
func (s Spec) hasScenario() bool {
	return s.Agents != 0 || len(s.Starts) > 0 || len(s.WakeDelays) > 0 || s.Meet != ""
}

// teamSize resolves the agent count: explicit Agents, else the length
// of Starts or WakeDelays, else 2.
func (s Spec) teamSize() int {
	switch {
	case s.Agents != 0:
		return s.Agents
	case len(s.Starts) > 0:
		return len(s.Starts)
	case len(s.WakeDelays) > 0:
		return len(s.WakeDelays)
	}
	return 2
}

// Validate checks everything checkable without building the graph.
// Algorithm names resolve against the registry, so callers must have
// the strategy registrations imported (importing package fnr, or the
// registration packages directly, suffices).
func (s Spec) Validate() error {
	s = s.Normalize()
	if s.Algorithm == "" {
		return errors.New("job: spec has no algorithm")
	}
	spec, err := algo.Lookup(s.Algorithm)
	if err != nil {
		return fmt.Errorf("job: %w", err)
	}
	switch {
	case s.Workload == nil && s.GraphRef == "":
		return errors.New("job: spec needs a workload or a graph_ref")
	case s.Workload != nil && s.GraphRef != "":
		return errors.New("job: workload and graph_ref are mutually exclusive")
	case (s.StartA == nil) != (s.StartB == nil):
		return errors.New("job: start_a and start_b must be set together")
	case s.Trials <= 0:
		return fmt.Errorf("job: trials must be positive, got %d", s.Trials)
	case s.Delta < -1:
		return fmt.Errorf("job: delta must be ≥ -1, got %d", s.Delta)
	case s.ShardCount > 0 && (s.ShardIndex < 0 || s.ShardIndex >= s.ShardCount):
		return fmt.Errorf("job: shard %d/%d out of range", s.ShardIndex, s.ShardCount)
	case s.CheckpointEvery < 0:
		return fmt.Errorf("job: checkpoint_every must be ≥ 0, got %d", s.CheckpointEvery)
	}
	if s.Workload != nil {
		if err := s.Workload.Validate(); err != nil {
			return err
		}
	}
	if _, err := s.params(); err != nil {
		return err
	}
	if _, err := s.faultPlan(); err != nil {
		return err
	}
	return s.validateScenario(spec)
}

// validateScenario checks the scenario block's internal consistency
// and the algorithm's team support; vertex-range and engine-level
// checks happen at lowering time against the materialized graph.
func (s Spec) validateScenario(spec algo.Spec) error {
	if !s.hasScenario() {
		return nil
	}
	k := s.teamSize()
	switch {
	case k < 2:
		return fmt.Errorf("job: a scenario needs at least 2 agents, got %d", k)
	case k > sim.MaxAgents:
		return fmt.Errorf("job: scenario has %d agents, limit is %d", k, sim.MaxAgents)
	case len(s.Starts) > 0 && len(s.Starts) != k:
		return fmt.Errorf("job: %d starts for %d agents", len(s.Starts), k)
	case len(s.Starts) > 0 && (s.StartA != nil || s.StartB != nil):
		return errors.New("job: starts and start_a/start_b are mutually exclusive")
	case len(s.WakeDelays) > 0 && len(s.WakeDelays) != k:
		return fmt.Errorf("job: %d wake delays for %d agents (want 0 or %d)", len(s.WakeDelays), k, k)
	}
	for i, v := range s.Starts {
		if v < 0 {
			return fmt.Errorf("job: agent %d start vertex %d is negative", i, v)
		}
		for j := range i {
			if s.Starts[j] == v {
				return fmt.Errorf("job: agents %d and %d both start at vertex %d", j, i, v)
			}
		}
	}
	for i, d := range s.WakeDelays {
		if d < 0 {
			return fmt.Errorf("job: agent %d wake delay %d is negative", i, d)
		}
	}
	if s.Meet != "" && s.Meet != "firstpair" {
		return fmt.Errorf("job: unknown meet predicate %q (want \"all\" or \"firstpair\")", s.Meet)
	}
	if k > 2 && !spec.SupportsTeam() {
		return fmt.Errorf("job: algo %q does not support %d agents (two-agent strategy)", s.Algorithm, k)
	}
	return nil
}

// CanonicalJSON is the spec's canonical wire form: the normalized
// spec marshaled with fixed field order. Equal specs (after
// normalization) encode identically.
func (s Spec) CanonicalJSON() ([]byte, error) {
	return json.Marshal(s.Normalize())
}

// Hash is the spec's content hash: sha256 over the canonical JSON of
// the result-determining fields, hex-encoded. Checkpoint policy
// (Checkpoint, CheckpointEvery, Resume) is execution detail — a
// resumed run is byte-identical to an uninterrupted one — and is
// excluded, so a job and its resume resubmission hash the same.
func (s Spec) Hash() (string, error) {
	s.Checkpoint, s.CheckpointEvery, s.Resume = "", 0, ""
	data, err := s.CanonicalJSON()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// WorkloadKey is the graph-cache key: the workload's content hash,
// or the GraphRef verbatim (a GraphRef *is* a workload key echoed
// back by a client).
func (s Spec) WorkloadKey() string {
	if s.GraphRef != "" {
		return s.GraphRef
	}
	if s.Workload == nil {
		return ""
	}
	return s.Workload.Key()
}

// params resolves the constant preset.
func (s Spec) params() (core.Params, error) {
	switch s.Params {
	case "", "practical":
		return core.PracticalParams(), nil
	case "paper":
		return core.PaperParams(), nil
	}
	return core.Params{}, fmt.Errorf("job: unknown params preset %q", s.Params)
}

// faultPlan parses the fault plan, nil when none.
func (s Spec) faultPlan() (*engine.FaultPlan, error) {
	if s.Faults == "" {
		return nil, nil
	}
	return engine.ParseFaultPlan(s.Faults, s.FaultSeed)
}

// Materialize builds the spec's own workload. Specs carrying a
// GraphRef cannot materialize — resolve the reference against a
// graph cache instead.
func (s Spec) Materialize() (Materialized, error) {
	if s.Workload == nil {
		return Materialized{}, fmt.Errorf("job: spec has no workload (graph_ref %q must be resolved by the caller)", s.GraphRef)
	}
	return s.Workload.Materialize()
}

// Batch lowers the spec onto a materialized workload, producing the
// engine batch every entry point shares.
func (s Spec) Batch(m Materialized, opt ExecOptions) (engine.Batch, error) {
	s = s.Normalize()
	params, err := s.params()
	if err != nil {
		return engine.Batch{}, err
	}
	plan, err := s.faultPlan()
	if err != nil {
		return engine.Batch{}, err
	}
	sa, sb := m.StartA, m.StartB
	if s.StartA != nil && s.StartB != nil {
		sa, sb = graph.Vertex(*s.StartA), graph.Vertex(*s.StartB)
	}
	delta := s.Delta
	switch {
	case delta == 0:
		if m.Graph != nil {
			delta = m.Graph.MinDegree()
		}
	case delta < 0:
		delta = 0
	}
	b := engine.Batch{
		Graph:      m.Graph,
		StartA:     sa,
		StartB:     sb,
		Algorithm:  s.Algorithm,
		Params:     params,
		Delta:      delta,
		Trials:     s.Trials,
		Seed:       s.Seed,
		MaxRounds:  s.MaxRounds,
		Workers:    opt.Workers,
		LaneWidth:  opt.LaneWidth,
		ShardIndex: s.ShardIndex,
		ShardCount: s.ShardCount,
		Faults:     plan,
	}
	if s.hasScenario() {
		sc, err := s.scenario(m.Graph, sa, sb)
		if err != nil {
			return engine.Batch{}, err
		}
		b.Scenario = sc
	}
	return b, nil
}

// scenarioStream is the PCG stream constant of extra-start derivation
// — its own stream so scenario starts are decorrelated from both the
// workload draw (Workload.stream) and the per-trial seeds.
const scenarioStream uint64 = 0x5ce7a2100

// scenario lowers the spec's scenario block onto the materialized
// graph and start pair.
func (s Spec) scenario(g *graph.Graph, sa, sb graph.Vertex) (*sim.Scenario, error) {
	k := s.teamSize()
	sc := &sim.Scenario{MeetFirstPair: s.Meet == "firstpair"}
	if len(s.Starts) > 0 {
		sc.Starts = make([]graph.Vertex, len(s.Starts))
		for i, v := range s.Starts {
			sc.Starts[i] = graph.Vertex(v)
		}
	} else {
		starts, err := deriveStarts(g, sa, sb, k, s.Seed)
		if err != nil {
			return nil, err
		}
		sc.Starts = starts
	}
	if len(s.WakeDelays) > 0 {
		sc.WakeDelays = slices.Clone(s.WakeDelays)
	}
	return sc, nil
}

// deriveStarts extends the two-agent start pair to a k-agent start
// vector: agents 0 and 1 keep (sa, sb), agents 2..k-1 draw distinct
// non-isolated vertices from PCG(seed, scenarioStream) — a pure
// function of (graph, pair, seed), so graph_ref submissions and cache
// hits derive the same vector as local materialization. Rejection
// sampling is bounded; a crowded draw falls back to a deterministic
// linear scan, so the derivation always terminates.
func deriveStarts(g *graph.Graph, sa, sb graph.Vertex, k int, seed uint64) ([]graph.Vertex, error) {
	starts := append(make([]graph.Vertex, 0, k), sa, sb)
	if k <= 2 {
		return starts, nil
	}
	if g == nil {
		return nil, errors.New("job: cannot derive scenario starts without a graph")
	}
	n := g.N()
	rng := rand.New(rand.NewPCG(seed, scenarioStream))
	for len(starts) < k {
		var v graph.Vertex
		found := false
		for range 64 {
			c := graph.Vertex(rng.IntN(n))
			if g.Degree(c) > 0 && !slices.Contains(starts, c) {
				v, found = c, true
				break
			}
		}
		if !found {
			off := rng.IntN(n)
			for d := range n {
				c := graph.Vertex((off + d) % n)
				if g.Degree(c) > 0 && !slices.Contains(starts, c) {
					v, found = c, true
					break
				}
			}
		}
		if !found {
			return nil, fmt.Errorf("job: graph has fewer than %d non-isolated vertices for a %d-agent scenario", k, k)
		}
		starts = append(starts, v)
	}
	return starts, nil
}

// Result is a finished (or cancelled-partway) job: the merged reducer
// plus the batch it ran, which together produce the aggregate.
type Result struct {
	Reducer *engine.Reducer
	Batch   engine.Batch
}

// Aggregate renders the result's deterministic summary — identical
// bytes to fnr.RunBatchReduced followed by Aggregate on the same
// batch, whatever entry point produced the reducer.
func (r *Result) Aggregate() *engine.Aggregate {
	return r.Reducer.Aggregate(r.Batch)
}

// Run materializes the spec's workload and executes it; see RunBuilt.
func Run(ctx context.Context, s Spec, opt ExecOptions) (*Result, error) {
	m, err := s.Materialize()
	if err != nil {
		return nil, err
	}
	return RunBuilt(ctx, s, m, opt)
}

// RunBuilt executes the spec on an already-materialized workload
// (typically a graph-cache hit), routing on the checkpoint policy:
// plain specs run through engine.RunReduced, specs with a Checkpoint
// or Resume path through engine.RunCheckpointed (Resume loads the
// prior journal first and only its uncovered trial spans re-run).
// Cancelling ctx returns the partial Result completed so far together
// with ctx.Err() — checkpointed runs flush their journal before
// returning, so a cancelled job resubmitted with Resume set finishes
// byte-identical to an uninterrupted run.
func RunBuilt(ctx context.Context, s Spec, m Materialized, opt ExecOptions) (*Result, error) {
	s = s.Normalize()
	b, err := s.Batch(m, opt)
	if err != nil {
		return nil, err
	}
	var r *engine.Reducer
	if s.Checkpoint != "" || s.Resume != "" {
		var prior *engine.Reducer
		if s.Resume != "" {
			if prior, err = engine.ReadCheckpointFile(s.Resume, b); err != nil {
				return nil, fmt.Errorf("job: resume: %w", err)
			}
		}
		ck := engine.Checkpoint{Path: s.Checkpoint, Every: s.CheckpointEvery}
		if ck.Path == "" {
			ck.Path = s.Resume
		}
		r, err = engine.RunCheckpointed(ctx, b, ck, prior)
	} else {
		r, err = engine.RunReduced(ctx, b)
	}
	if r == nil {
		return nil, err
	}
	return &Result{Reducer: r, Batch: b}, err
}
