package job_test

import (
	"context"
	"encoding/json"
	"math/rand/v2"
	"path/filepath"
	"strings"
	"testing"

	"fnr/internal/engine"
	"fnr/internal/graph"
	"fnr/internal/job"

	// Strategy registrations: Spec.Validate resolves algorithm names
	// against the registry.
	_ "fnr/internal/algo/paper"
	_ "fnr/internal/baseline"
)

// legacyDerive is the workload-derivation idiom exactly as the CLIs
// and the harness open-coded it before the job package existed — the
// oracle Materialize must reproduce byte for byte.
func legacyDerive(t *testing.T, n, d int, seed, stream uint64) (*graph.Graph, graph.Vertex, graph.Vertex) {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, stream))
	g, err := graph.PlantedMinDegree(n, d, rng)
	if err != nil {
		t.Fatal(err)
	}
	sa := graph.Vertex(rng.IntN(g.N()))
	for g.Degree(sa) == 0 {
		sa = graph.Vertex(rng.IntN(g.N()))
	}
	sb := g.Adj(sa)[rng.IntN(g.Degree(sa))]
	return g, sa, sb
}

func TestMaterializeMatchesLegacyDerivation(t *testing.T) {
	for _, tc := range []struct {
		name   string
		n, d   int
		seed   uint64
		stream uint64
	}{
		{"benchengine-default-stream", 256, 16, 7, 0},
		{"tail-stream", 128, 8, 11, 0},
		{"harness-stream", 256, 16, 3, 0x9e3779b97f4a7c15},
	} {
		t.Run(tc.name, func(t *testing.T) {
			stream := tc.stream
			if stream == 0 {
				stream = job.DefaultStream
			}
			wantG, wantA, wantB := legacyDerive(t, tc.n, tc.d, tc.seed, stream)
			m, err := job.Workload{Kind: "planted", N: tc.n, D: tc.d, Seed: tc.seed, Stream: tc.stream}.Materialize()
			if err != nil {
				t.Fatal(err)
			}
			if !m.Graph.Equal(wantG) {
				t.Fatal("materialized graph differs from the legacy derivation")
			}
			if m.StartA != wantA || m.StartB != wantB {
				t.Fatalf("start pair (%d, %d), legacy derivation chose (%d, %d)", m.StartA, m.StartB, wantA, wantB)
			}
		})
	}
}

func TestWorkloadKey(t *testing.T) {
	base := job.Workload{Kind: "planted", N: 64, D: 8, Seed: 3}
	if got := (job.Workload{N: 64, D: 8, Seed: 3}).Key(); got != base.Key() {
		t.Error("empty kind should normalize to planted and share the key")
	}
	for name, other := range map[string]job.Workload{
		"n":      {Kind: "planted", N: 65, D: 8, Seed: 3},
		"d":      {Kind: "planted", N: 64, D: 9, Seed: 3},
		"seed":   {Kind: "planted", N: 64, D: 8, Seed: 4},
		"stream": {Kind: "planted", N: 64, D: 8, Seed: 3, Stream: 0x9e3779b97f4a7c15},
		"kind":   {Kind: "gnp", N: 64, P: 0.5, Seed: 3},
	} {
		if other.Key() == base.Key() {
			t.Errorf("changing %s did not change the workload key", name)
		}
	}
	// Specs differing only in execution share the workload key.
	w := base
	s1 := job.Spec{Algorithm: "sweep", Workload: &w, Trials: 10, Seed: 1}
	s2 := job.Spec{Algorithm: "whiteboard", Workload: &w, Trials: 999, Seed: 42}
	if s1.WorkloadKey() != s2.WorkloadKey() {
		t.Error("specs with equal workloads should share WorkloadKey")
	}
	if ref := (job.Spec{Algorithm: "sweep", GraphRef: "abc", Trials: 1}); ref.WorkloadKey() != "abc" {
		t.Errorf("GraphRef should be the workload key verbatim, got %q", ref.WorkloadKey())
	}
}

func TestSpecHashNormalizationAndExclusions(t *testing.T) {
	w := job.Workload{Kind: "planted", N: 64, D: 8, Seed: 3}
	base := job.Spec{Algorithm: "sweep", Workload: &w, Trials: 100, Seed: 5}
	baseHash, err := base.Hash()
	if err != nil {
		t.Fatal(err)
	}

	// Equivalent spellings hash identically.
	for name, same := range map[string]job.Spec{
		"params-practical": {Algorithm: "sweep", Workload: &w, Trials: 100, Seed: 5, Params: "practical"},
		"kind-defaulted":   {Algorithm: "sweep", Workload: &job.Workload{N: 64, D: 8, Seed: 3}, Trials: 100, Seed: 5},
		"shard-1-of-1":     {Algorithm: "sweep", Workload: &w, Trials: 100, Seed: 5, ShardCount: 1},
		"checkpointed":     {Algorithm: "sweep", Workload: &w, Trials: 100, Seed: 5, Checkpoint: "x.ckpt", CheckpointEvery: 7, Resume: "x.ckpt"},
	} {
		h, err := same.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if h != baseHash {
			t.Errorf("%s: hash %s differs from base %s", name, h, baseHash)
		}
	}

	// Result-determining changes do not.
	for name, diff := range map[string]job.Spec{
		"algorithm": {Algorithm: "whiteboard", Workload: &w, Trials: 100, Seed: 5},
		"trials":    {Algorithm: "sweep", Workload: &w, Trials: 101, Seed: 5},
		"seed":      {Algorithm: "sweep", Workload: &w, Trials: 100, Seed: 6},
		"delta":     {Algorithm: "sweep", Workload: &w, Trials: 100, Seed: 5, Delta: 3},
		"params":    {Algorithm: "sweep", Workload: &w, Trials: 100, Seed: 5, Params: "paper"},
		"shard":     {Algorithm: "sweep", Workload: &w, Trials: 100, Seed: 5, ShardIndex: 1, ShardCount: 2},
		"faults":    {Algorithm: "sweep", Workload: &w, Trials: 100, Seed: 5, Faults: "panic:p=0.5", FaultSeed: 1},
	} {
		h, err := diff.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if h == baseHash {
			t.Errorf("changing %s did not change the spec hash", name)
		}
	}
}

func TestValidate(t *testing.T) {
	w := job.Workload{Kind: "planted", N: 64, D: 8, Seed: 3}
	good := job.Spec{Algorithm: "sweep", Workload: &w, Trials: 10, Seed: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	one := 1
	for name, bad := range map[string]job.Spec{
		"no-algorithm":      {Workload: &w, Trials: 10},
		"unknown-algorithm": {Algorithm: "nope", Workload: &w, Trials: 10},
		"no-workload":       {Algorithm: "sweep", Trials: 10},
		"both-sources":      {Algorithm: "sweep", Workload: &w, GraphRef: "k", Trials: 10},
		"zero-trials":       {Algorithm: "sweep", Workload: &w},
		"bad-delta":         {Algorithm: "sweep", Workload: &w, Trials: 10, Delta: -2},
		"bad-shard":         {Algorithm: "sweep", Workload: &w, Trials: 10, ShardIndex: 2, ShardCount: 2},
		"bad-params":        {Algorithm: "sweep", Workload: &w, Trials: 10, Params: "exotic"},
		"bad-faults":        {Algorithm: "sweep", Workload: &w, Trials: 10, Faults: "gibberish"},
		"lone-start":        {Algorithm: "sweep", Workload: &w, Trials: 10, StartA: &one},
		"bad-kind":          {Algorithm: "sweep", Workload: &job.Workload{Kind: "mystery", N: 8}, Trials: 10},
		"bad-n":             {Algorithm: "sweep", Workload: &job.Workload{Kind: "planted", N: 0, D: 1}, Trials: 10},
		"bad-p":             {Algorithm: "sweep", Workload: &job.Workload{Kind: "gnp", N: 8, P: 1.5}, Trials: 10},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("%s: invalid spec accepted", name)
		}
	}
}

func TestCanonicalJSONRoundTrips(t *testing.T) {
	w := job.Workload{Kind: "planted", N: 64, D: 8, Seed: 3}
	s := job.Spec{Algorithm: "sweep", Workload: &w, Trials: 10, Seed: 1, Faults: "panic:p=0.01", FaultSeed: 2}
	data, err := s.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back job.Spec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	data2, err := back.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatalf("canonical JSON not a fixed point:\n%s\n%s", data, data2)
	}
}

func TestHardWorkloads(t *testing.T) {
	for _, kind := range []string{"hard:twostars", "hard:starclique", "hard:kt0", "hard:distance2"} {
		m, err := job.Workload{Kind: kind, N: 32}.Materialize()
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if m.Graph == nil || m.Graph.N() == 0 {
			t.Fatalf("%s: empty instance", kind)
		}
		if m.StartA == m.StartB {
			t.Fatalf("%s: degenerate start pair", kind)
		}
	}
	// Hard instances run end to end through Run (sweep works on all
	// KT1 families; distance2 starts at distance two, still valid).
	res, err := job.Run(context.Background(), job.Spec{
		Algorithm: "sweep",
		Workload:  &job.Workload{Kind: "hard:twostars", N: 32},
		Trials:    5, Seed: 9,
	}, job.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if agg := res.Aggregate(); agg.Trials != 5 {
		t.Fatalf("hard workload aggregate trials = %d, want 5", agg.Trials)
	}
}

// TestRunMatchesEngineReduced pins the contract the server's
// byte-identity guarantee rests on: job.Run produces the same
// aggregate JSON as hand-building the batch and calling
// engine.RunReduced.
func TestRunMatchesEngineReduced(t *testing.T) {
	w := job.Workload{Kind: "planted", N: 64, D: 8, Seed: 3}
	spec := job.Spec{Algorithm: "whiteboard", Workload: &w, Trials: 40, Seed: 12}
	res, err := job.Run(context.Background(), spec, job.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(res.Aggregate())
	if err != nil {
		t.Fatal(err)
	}

	m, err := spec.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Batch(m, job.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := engine.RunReduced(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(r.Aggregate(b))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("job.Run aggregate differs from engine.RunReduced:\n%s\n%s", got, want)
	}
}

// TestCheckpointResumeByteIdentical runs half the trials as shard 0/2
// journalling to a checkpoint, resumes the full unsharded spec from
// that journal (so only the uncovered upper half runs), and requires
// the final aggregate to byte-match an uninterrupted run.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "job.ckpt")
	w := job.Workload{Kind: "planted", N: 64, D: 8, Seed: 3}
	full := job.Spec{Algorithm: "sweep", Workload: &w, Trials: 4000, Seed: 21}

	half := full
	half.ShardIndex, half.ShardCount = 0, 2
	half.Checkpoint = ckpt
	if _, err := job.Run(context.Background(), half, job.ExecOptions{}); err != nil {
		t.Fatal(err)
	}

	resumed := full
	resumed.Resume = ckpt
	resumed.Checkpoint = ckpt
	res, err := job.Run(context.Background(), resumed, job.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(res.Aggregate())
	if err != nil {
		t.Fatal(err)
	}

	ref, err := job.Run(context.Background(), full, job.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(ref.Aggregate())
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("resumed aggregate differs from uninterrupted run:\n%s\n%s", got, want)
	}
	if strings.Contains(string(got), "trial_spans") {
		t.Fatal("complete resumed run should not carry trial_spans")
	}
}
