package job_test

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"fnr/internal/job"
)

// The golden aggregates below were captured from `experiments -tail`
// BEFORE the workload derivation moved into this package — the pin
// that deduplicating the CLIs onto job.Materialize/job.Run changed no
// output byte. Encoding matches the CLI: json.Encoder with two-space
// indent.

// goldenTailWhiteboard: experiments -tail whiteboard -tail-n 256
// -tail-d 32 -tail-trials 60 -tail-seed 5
const goldenTailWhiteboard = `{
  "algorithm": "whiteboard",
  "trials": 60,
  "seed": 5,
  "met": 60,
  "failures": 0,
  "errors": 0,
  "success_rate": 1,
  "rounds": {
    "mean": 105.11666666666666,
    "median": 71,
    "p95": 296.3499999999998,
    "min": 6,
    "max": 427
  },
  "moves": {
    "mean": 208.58333333333334,
    "median": 141,
    "p95": 590.5499999999996,
    "min": 11,
    "max": 853
  }
}`

// goldenTailFaulted: experiments -tail walkpair -tail-n 128 -tail-d 8
// -tail-trials 500 -tail-seed 11 -shard 1/3
// -faults panic:p=0.01,stall:p=0.02,builderr:p=0.005 -fault-seed 9 —
// a sharded, fault-injected run, pinning first_errors ordering and
// trial_spans coverage alongside the distributions.
const goldenTailFaulted = `{
  "algorithm": "walkpair",
  "trials": 167,
  "seed": 11,
  "met": 161,
  "failures": 6,
  "errors": 3,
  "success_rate": 0.9640718562874252,
  "rounds": {
    "mean": 146.28571428571428,
    "median": 111,
    "p95": 422,
    "min": 1,
    "max": 613
  },
  "moves": {
    "mean": 287.219512195122,
    "median": 212,
    "p95": 843.7,
    "min": 0,
    "max": 1226
  },
  "first_errors": [
    "trial 180: sim: trial panicked: fault injection: panic at trial 180",
    "trial 199: sim: trial panicked: fault injection: panic at trial 199",
    "trial 297: sim: trial panicked: fault injection: panic at trial 297"
  ],
  "trial_spans": [
    {
      "lo": 166,
      "hi": 333
    }
  ]
}`

// renderAggregate reproduces the tail CLI's output encoding.
func renderAggregate(t *testing.T, res *job.Result) string {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res.Aggregate()); err != nil {
		t.Fatal(err)
	}
	return strings.TrimSpace(buf.String())
}

func TestGoldenTailWhiteboard(t *testing.T) {
	res, err := job.Run(context.Background(), job.Spec{
		Algorithm: "whiteboard",
		Workload:  &job.Workload{Kind: "planted", N: 256, D: 32, Seed: 5},
		Trials:    60,
		Seed:      5,
	}, job.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := renderAggregate(t, res); got != goldenTailWhiteboard {
		t.Fatalf("whiteboard tail aggregate drifted from the pre-refactor golden:\ngot:\n%s\nwant:\n%s", got, goldenTailWhiteboard)
	}
}

func TestGoldenTailFaulted(t *testing.T) {
	res, err := job.Run(context.Background(), job.Spec{
		Algorithm:  "walkpair",
		Workload:   &job.Workload{Kind: "planted", N: 128, D: 8, Seed: 11},
		Trials:     500,
		Seed:       11,
		ShardIndex: 1,
		ShardCount: 3,
		Faults:     "panic:p=0.01,stall:p=0.02,builderr:p=0.005",
		FaultSeed:  9,
	}, job.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := renderAggregate(t, res); got != goldenTailFaulted {
		t.Fatalf("faulted shard tail aggregate drifted from the pre-refactor golden:\ngot:\n%s\nwant:\n%s", got, goldenTailFaulted)
	}
}
