package engine

import (
	"encoding/json"
	"errors"
	"testing"

	"fnr/internal/algo"
	"fnr/internal/sim"

	_ "fnr/internal/algo/paper"
)

// finishCountingStepper records whether its Finish hook ran.
type finishCountingStepper struct{ finished *int }

func (s finishCountingStepper) Init(*sim.StepContext)     {}
func (s finishCountingStepper) Next(*sim.View) sim.Action { return sim.Halt() }
func (s finishCountingStepper) Finish()                   { *s.finished++ }

// vandalStepper dirties the worker context as hard as a stepper can —
// whiteboard writes, junk parked on the scratch slot — then aborts
// the run.
type vandalStepper struct{ rounds int }

func (s *vandalStepper) Init(ctx *sim.StepContext) {
	// Poison the agent's scratch slot with a foreign type: the next
	// real trial must cope (it type-asserts and rebuilds) without its
	// results changing.
	ctx.Scratch.Set("vandal junk")
}

func (s *vandalStepper) Next(v *sim.View) sim.Action {
	if s.rounds <= 0 {
		return sim.Abort(errors.New("vandal abort"))
	}
	s.rounds--
	return sim.Stay().WithWrite(424242)
}

// panickingStepper dirties scratch like the vandal, then panics out
// of Next entirely — the worst a trial can do to its worker.
type panickingStepper struct{ rounds int }

func (s *panickingStepper) Init(ctx *sim.StepContext) {
	ctx.Scratch.Set("panic junk")
}

func (s *panickingStepper) Next(v *sim.View) sim.Action {
	if s.rounds <= 0 {
		panic("deliberate mid-batch panic")
	}
	s.rounds--
	return sim.Stay().WithWrite(171717)
}

// TestBuilderErrorMidBatchLeavesWorkerContextClean is the satellite
// gate for engine batch error paths: a stepper-builder error (or an
// aborting, whiteboard-scribbling, scratch-poisoning trial) in the
// middle of a worker's trial sequence must not leave the worker-owned
// TrialContext in a state that influences later trials — the
// error-then-retry sequence must reproduce the clean batch's outcomes
// and aggregate JSON byte for byte.
func TestBuilderErrorMidBatchLeavesWorkerContextClean(t *testing.T) {
	g, sa, sb := testGraph(t)
	for _, name := range []string{"whiteboard", "noboard"} {
		base := Batch{
			Graph: g, StartA: sa, StartB: sb,
			Algorithm: name, Delta: g.MinDegree(),
			Trials: 6, Seed: 5, MaxRounds: 1 << 22, Workers: 1,
		}
		spec, opts, err := base.prepare()
		if err != nil {
			t.Fatal(err)
		}

		// Reference: the six trials on one clean shared context.
		clean := sim.NewTrialContext()
		var cleanOut []Outcome
		for i := 0; i < base.Trials; i++ {
			cleanOut = append(cleanOut, runStepperTrial(base, spec, opts, clean, i))
		}

		// Disturbed: the same six trials on one shared context, with a
		// builder failure and a vandal trial injected after trial 0.
		finished := 0
		brokenSpec := algo.Spec{
			Name: "broken", Caps: spec.Caps, Build: spec.Build,
			BuildSteppers: func(algo.BuildOpts) (sim.Stepper, sim.Stepper, error) {
				return finishCountingStepper{&finished}, nil, errors.New("mid-batch builder failure")
			},
		}
		vandalSpec := algo.Spec{
			Name: "vandal", Caps: algo.Caps{NeighborIDs: true, Whiteboards: true}, Build: spec.Build,
			BuildSteppers: func(algo.BuildOpts) (sim.Stepper, sim.Stepper, error) {
				return &vandalStepper{rounds: 4}, &vandalStepper{rounds: 6}, nil
			},
		}
		dirty := sim.NewTrialContext()
		var dirtyOut []Outcome
		dirtyOut = append(dirtyOut, runStepperTrial(base, spec, opts, dirty, 0))
		if out := runStepperTrial(base, brokenSpec, opts, dirty, 99); !out.Err {
			t.Fatalf("%s: builder failure did not produce an error outcome: %+v", name, out)
		}
		if finished != 1 {
			t.Errorf("%s: partially built stepper's Finish ran %d times, want 1", name, finished)
		}
		if out := runStepperTrial(base, vandalSpec, opts, dirty, 99); !out.Err {
			t.Fatalf("%s: vandal trial did not produce an error outcome: %+v", name, out)
		}
		for i := 1; i < base.Trials; i++ {
			dirtyOut = append(dirtyOut, runStepperTrial(base, spec, opts, dirty, i))
		}

		for i := range cleanOut {
			if cleanOut[i] != dirtyOut[i] {
				t.Errorf("%s trial %d: outcome diverged after mid-batch errors: clean %+v vs dirty %+v",
					name, i, cleanOut[i], dirtyOut[i])
			}
		}
		cleanAgg, err := json.Marshal(AggregateOutcomes(base, cleanOut))
		if err != nil {
			t.Fatal(err)
		}
		dirtyAgg, err := json.Marshal(AggregateOutcomes(base, dirtyOut))
		if err != nil {
			t.Fatal(err)
		}
		if string(cleanAgg) != string(dirtyAgg) {
			t.Errorf("%s: aggregate JSON diverged after an error-then-retry batch:\nclean: %s\ndirty: %s",
				name, cleanAgg, dirtyAgg)
		}
	}
}

// TestPanicMidBatchQuarantinesWorkerContext extends the mid-batch
// hygiene gate to panics: a trial that scribbles on its TrialContext
// and then panics out of Next must surface as an error outcome
// carrying the panic message, the worker's poisoned context must be
// quarantined (rebuilt, never re-armed), and every subsequent trial
// must reproduce the clean batch byte for byte.
func TestPanicMidBatchQuarantinesWorkerContext(t *testing.T) {
	g, sa, sb := testGraph(t)
	for _, name := range []string{"whiteboard", "noboard"} {
		base := Batch{
			Graph: g, StartA: sa, StartB: sb,
			Algorithm: name, Delta: g.MinDegree(),
			Trials: 6, Seed: 5, MaxRounds: 1 << 22, Workers: 1,
		}
		spec, opts, err := base.prepare()
		if err != nil {
			t.Fatal(err)
		}

		clean := newStepperWorker()
		var cleanOut []Outcome
		for i := 0; i < base.Trials; i++ {
			cleanOut = append(cleanOut, clean.run(base, spec, opts, i))
		}

		panicSpec := algo.Spec{
			Name: "panicker", Caps: algo.Caps{NeighborIDs: true, Whiteboards: true}, Build: spec.Build,
			BuildSteppers: func(algo.BuildOpts) (sim.Stepper, sim.Stepper, error) {
				return &panickingStepper{rounds: 3}, &panickingStepper{rounds: 5}, nil
			},
		}
		dirty := newStepperWorker()
		var dirtyOut []Outcome
		dirtyOut = append(dirtyOut, dirty.run(base, spec, opts, 0))
		before := dirty.tc
		out := dirty.run(base, panicSpec, opts, 99)
		if !out.Err {
			t.Fatalf("%s: panicking trial did not produce an error outcome: %+v", name, out)
		}
		if want := "sim: trial panicked: deliberate mid-batch panic"; out.Msg != want {
			t.Errorf("%s: panic outcome message %q, want %q", name, out.Msg, want)
		}
		if dirty.tc == before {
			t.Errorf("%s: worker kept its TrialContext across a panic — poisoned state can leak", name)
		}
		for i := 1; i < base.Trials; i++ {
			dirtyOut = append(dirtyOut, dirty.run(base, spec, opts, i))
		}

		for i := range cleanOut {
			if cleanOut[i] != dirtyOut[i] {
				t.Errorf("%s trial %d: outcome diverged after a mid-batch panic: clean %+v vs dirty %+v",
					name, i, cleanOut[i], dirtyOut[i])
			}
		}
		cleanAgg, _ := json.Marshal(AggregateOutcomes(base, cleanOut))
		dirtyAgg, _ := json.Marshal(AggregateOutcomes(base, dirtyOut))
		if string(cleanAgg) != string(dirtyAgg) {
			t.Errorf("%s: aggregate JSON diverged after a panic-then-retry batch:\nclean: %s\ndirty: %s",
				name, cleanAgg, dirtyAgg)
		}
	}
}
