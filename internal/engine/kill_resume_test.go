package engine

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"fnr/internal/graph"
)

// killResumeBatch is the shared batch of the kill/resume pair: the
// child process and the in-process reference must construct the
// identical batch from nothing but this function.
func killResumeBatch() (Batch, error) {
	rng := rand.New(rand.NewPCG(3, 0x6b696c6c))
	g, err := graph.PlantedMinDegree(96, 16, rng)
	if err != nil {
		return Batch{}, err
	}
	sa := graph.Vertex(0)
	return Batch{
		Graph: g, StartA: sa, StartB: g.Adj(sa)[0],
		Algorithm: "whiteboard", Delta: g.MinDegree(),
		Trials: 60_000, Seed: 23, MaxRounds: 1 << 22,
		Faults: &FaultPlan{Seed: 6, PPanic: 1e-3, PBuildErr: 1e-3},
	}, nil
}

// TestKillResumeChild is the subprocess body of
// TestKillResumeByteIdenticalAggregate — a no-op unless re-executed
// with the journal path in the environment. It runs the shared batch
// checkpointed with a tight flush cadence and is expected to be
// SIGKILLed somewhere in the middle.
func TestKillResumeChild(t *testing.T) {
	path := os.Getenv("FNR_KILL_RESUME_JOURNAL")
	if path == "" {
		t.Skip("not a kill/resume child")
	}
	b, err := killResumeBatch()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunCheckpointed(context.Background(), b, Checkpoint{Path: path, Every: 512}, nil); err != nil {
		t.Fatal(err)
	}
}

// The crash-safety acceptance test: SIGKILL a checkpointed run midway
// through, resume from whatever journal the corpse left behind, and
// the final aggregate JSON is byte-identical to an uninterrupted run.
func TestKillResumeByteIdenticalAggregate(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	b, err := killResumeBatch()
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunReduced(t.Context(), b)
	if err != nil {
		t.Fatal(err)
	}
	wantAgg, _ := json.Marshal(want.Aggregate(b))

	journal := filepath.Join(t.TempDir(), "kill.ckpt")
	cmd := exec.Command(os.Args[0], "-test.run=^TestKillResumeChild$", "-test.v")
	cmd.Env = append(os.Environ(), "FNR_KILL_RESUME_JOURNAL="+journal)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	childDone := make(chan error, 1)
	go func() { childDone <- cmd.Wait() }()

	// Kill as soon as the first journal flush lands — mid-run if the
	// child is still going, harmlessly late if it already finished (a
	// complete journal resumes to a no-op and the assertion holds
	// either way).
	deadline := time.After(2 * time.Minute)
	var killed bool
waitForJournal:
	for {
		select {
		case err := <-childDone:
			if err != nil {
				t.Fatalf("child exited before a journal appeared: %v", err)
			}
			break waitForJournal
		case <-deadline:
			cmd.Process.Kill()
			t.Fatal("no journal flush within two minutes")
		default:
			if st, err := os.Stat(journal); err == nil && st.Size() > 0 {
				cmd.Process.Kill() // SIGKILL: no deferred cleanup runs
				killed = true
				<-childDone
				break waitForJournal
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	if !killed {
		t.Log("child finished before the kill; resuming a complete journal instead")
	}

	prior, err := ReadCheckpointFile(journal, b)
	if err != nil {
		t.Fatalf("journal left by the killed child is unreadable: %v", err)
	}
	if covered := prior.trials; killed && covered >= b.Trials {
		t.Logf("child covered all %d trials before dying", covered)
	}
	r, err := RunCheckpointed(t.Context(), b, Checkpoint{Path: journal}, prior)
	if err != nil {
		t.Fatal(err)
	}
	gotAgg, _ := json.Marshal(r.Aggregate(b))
	if string(gotAgg) != string(wantAgg) {
		t.Errorf("kill -9 + resume aggregate differs from uninterrupted run:\ngot:  %s\nwant: %s", gotAgg, wantAgg)
	}
	if fmt.Sprint(r.Spans()) != fmt.Sprintf("[{0 %d}]", b.Trials) {
		t.Errorf("resumed coverage %v, want the full range", r.Spans())
	}
}
