package engine

import (
	"fmt"
	"strconv"
	"strings"

	"fnr/internal/sim"
)

// This file is the engine's deterministic fault-injection harness —
// the knob that makes the fault-tolerance layer itself
// differential-testable. A FaultPlan assigns each global trial index
// a fault kind (or none) as a pure function of (plan seed, trial
// index), so the same plan produces the same faulted trials at any
// worker count, lane width, shard split or execution path, and the
// engine's core invariant (byte-identical aggregates regardless of
// parallelism) extends to batches that panic, stall and fail to
// build. Faults interpose on steppers: a builder error is vetoed
// before the pair is built (per-trial path) or armed (lane PreArm
// hook), and panic/stall faults fire from a wrapper stepper's Next.

// FaultKind is one injected failure mode.
type FaultKind uint8

const (
	// FaultNone leaves the trial untouched.
	FaultNone FaultKind = iota
	// FaultPanic panics on the trial's first stepper Next call — the
	// probe for per-trial panic isolation and slot quarantine.
	FaultPanic
	// FaultStall makes both agents stay put for the rest of the
	// budget, so the trial deterministically exhausts MaxRounds (the
	// delayed/lossy-execution probe, in the spirit of
	// asynchronous-start rendezvous models).
	FaultStall
	// FaultBuildErr fails the trial's stepper construction — the
	// probe for mid-batch builder-error hygiene.
	FaultBuildErr
)

// FaultPlan injects deterministic per-trial faults into a batch (see
// Batch.Faults). Each probability selects the fraction of trials hit
// by that fault kind; kinds are mutually exclusive per trial
// (probabilities must sum to ≤ 1). The zero probabilities inject
// nothing.
type FaultPlan struct {
	// Seed drives fault placement; independent of the batch seed, so
	// the same trial outcomes can be replayed under different fault
	// placements and vice versa.
	Seed uint64
	// PPanic, PStall and PBuildErr are the per-trial probabilities of
	// each fault kind.
	PPanic, PStall, PBuildErr float64
}

// ParseFaultPlan parses the fault-plan spec grammar — comma-separated
// `kind:p=PROB` clauses over the kinds panic, stall and builderr,
// e.g. "panic:p=1e-4,stall:p=1e-4,builderr:p=1e-5" — into a plan
// with the given placement seed.
func ParseFaultPlan(spec string, seed uint64) (*FaultPlan, error) {
	f := &FaultPlan{Seed: seed}
	seen := map[string]bool{}
	for clause := range strings.SplitSeq(spec, ",") {
		clause = strings.TrimSpace(clause)
		kind, prob, ok := strings.Cut(clause, ":")
		if !ok {
			return nil, fmt.Errorf("engine: fault plan clause %q: want kind:p=PROB", clause)
		}
		val, ok := strings.CutPrefix(prob, "p=")
		if !ok {
			return nil, fmt.Errorf("engine: fault plan clause %q: want kind:p=PROB", clause)
		}
		p, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("engine: fault plan clause %q: %w", clause, err)
		}
		if seen[kind] {
			return nil, fmt.Errorf("engine: fault plan repeats kind %q", kind)
		}
		seen[kind] = true
		switch kind {
		case "panic":
			f.PPanic = p
		case "stall":
			f.PStall = p
		case "builderr":
			f.PBuildErr = p
		default:
			return nil, fmt.Errorf("engine: fault plan kind %q (want panic, stall or builderr)", kind)
		}
	}
	if err := f.validate(); err != nil {
		return nil, err
	}
	return f, nil
}

// validate checks the plan's probabilities.
func (f *FaultPlan) validate() error {
	sum := 0.0
	for _, p := range []float64{f.PPanic, f.PStall, f.PBuildErr} {
		if !(p >= 0 && p <= 1) { // also rejects NaN
			return fmt.Errorf("engine: fault probability %v outside [0, 1]", p)
		}
		sum += p
	}
	if sum > 1 {
		return fmt.Errorf("engine: fault probabilities sum to %v > 1", sum)
	}
	return nil
}

// faultMix decorrelates the fault placement stream from the batch's
// trial-seed stream: a FaultPlan sharing the batch seed must not hit
// trials correlated with their simulation randomness.
const faultMix = 0x8f1bbcdcbfa53e0b

// KindFor returns the fault injected at the given global trial index
// — a pure function of (plan seed, trial), which is the whole
// determinism story: placement cannot depend on scheduling.
func (f *FaultPlan) KindFor(trial int) FaultKind {
	x := TrialSeed(f.Seed^faultMix, trial)
	p := float64(x>>11) / (1 << 53) // uniform in [0, 1)
	switch {
	case p < f.PPanic:
		return FaultPanic
	case p < f.PPanic+f.PStall:
		return FaultStall
	case p < f.PPanic+f.PStall+f.PBuildErr:
		return FaultBuildErr
	}
	return FaultNone
}

// armError returns the injected builder error for the trial, or nil.
// Both execution paths surface it the same way — before any stepper
// is built or armed — so the message is path-independent.
func (f *FaultPlan) armError(trial int) error {
	if f.KindFor(trial) == FaultBuildErr {
		return fmt.Errorf("fault injection: builder error at trial %d", trial)
	}
	return nil
}

// armSteppers points every wrapper stepper of the team at the trial
// about to run on them, setting (or clearing) their pending fault.
// Called once per trial: directly on the per-trial path, via the
// lane's PostArm hook on the lockstep path.
func (f *FaultPlan) armSteppers(trial int, team []sim.Stepper) {
	kind := f.KindFor(trial)
	for _, st := range team {
		if c, ok := st.(faultCarrier); ok {
			c.setFault(kind, trial)
		}
	}
}

// wrapBuilder interposes fault wrappers on a stepper-team builder.
func (f *FaultPlan) wrapBuilder(build func() ([]sim.Stepper, error)) func() ([]sim.Stepper, error) {
	return func() ([]sim.Stepper, error) {
		team, err := build()
		if err != nil {
			return team, err
		}
		for _, st := range team {
			if st == nil {
				// Leave a nil-bearing team untouched; the lane
				// surfaces it as the trial's error.
				return team, nil
			}
		}
		for i, st := range team {
			team[i] = wrapFault(st)
		}
		return team, nil
	}
}

// faultHook adapts a FaultPlan to the lane's arm-interception seam.
type faultHook struct{ plan *FaultPlan }

func (h faultHook) PreArm(trial int) error { return h.plan.armError(trial) }
func (h faultHook) PostArm(trial int, team []sim.Stepper) {
	h.plan.armSteppers(trial, team)
}

// faultCarrier is how armSteppers reaches a wrapper regardless of
// which concrete wrapper type the stepper got.
type faultCarrier interface {
	setFault(kind FaultKind, trial int)
}

// wrapFault wraps one stepper with fault interposition, preserving
// its Reusable capability: a reusable inner stepper keeps the lane's
// build-once/Reset-per-trial amortization, a plain one keeps the
// rebuild-per-trial flow. (Capability must be preserved per stepper —
// hiding Reusable would silently flip every faulted lane onto the
// rebuild path and the reuse machinery would never run under fault.)
func wrapFault(s sim.Stepper) sim.Stepper {
	if _, ok := s.(sim.Reusable); ok {
		return &reusableFaultStepper{faultStepper{inner: s}}
	}
	return &faultStepper{inner: s}
}

// stallWait is the stay budget an injected stall returns: larger than
// any round budget, small enough that round arithmetic cannot
// overflow. The runtime fast-forwards overlapping stays, so a stalled
// trial costs O(1) ticks, not O(MaxRounds).
const stallWait = int64(1) << 62

// faultStepper interposes on one agent's stepper. The pending fault
// is re-armed per trial (armSteppers), so a wrapper living across
// many lane trials injects at exactly the planned indices and runs
// the others clean.
type faultStepper struct {
	inner sim.Stepper
	kind  FaultKind
	trial int
	fired bool
}

func (s *faultStepper) setFault(kind FaultKind, trial int) {
	s.kind, s.trial, s.fired = kind, trial, false
}

func (s *faultStepper) Init(ctx *sim.StepContext) { s.inner.Init(ctx) }

// Next injects the pending fault, if any: a panic fires once on the
// trial's first acting round (of whichever agent acts first — the
// lockstep order is deterministic, so "first" is too); a stall
// replaces every action with a budget-exhausting stay.
func (s *faultStepper) Next(v *sim.View) sim.Action {
	switch s.kind {
	case FaultPanic:
		if !s.fired {
			s.fired = true
			panic(fmt.Sprintf("fault injection: panic at trial %d", s.trial))
		}
	case FaultStall:
		return sim.StayFor(stallWait)
	}
	return s.inner.Next(v)
}

// Finish honors the inner stepper's lifecycle.
func (s *faultStepper) Finish() { sim.Finish(s.inner) }

// reusableFaultStepper is faultStepper for a Reusable inner stepper.
type reusableFaultStepper struct{ faultStepper }

func (s *reusableFaultStepper) Reset(ctx *sim.StepContext) {
	s.inner.(sim.Reusable).Reset(ctx)
}
