package engine

import (
	"context"
	"encoding/json"
	"errors"
	"runtime"
	"testing"
	"time"
)

// cancelBatch is a batch big enough that a racing cancel reliably
// lands mid-run on every execution path.
func cancelBatch(t *testing.T) Batch {
	t.Helper()
	g, sa, sb := testGraph(t)
	return Batch{
		Graph: g, StartA: sa, StartB: sb,
		Algorithm: "whiteboard", Delta: g.MinDegree(),
		Trials: 10_000, Seed: 77, MaxRounds: 1 << 22,
	}
}

// Cancelling RunReduced mid-batch returns the completed partial state
// together with ctx.Err(): the reducer's trial count equals its span
// coverage exactly (nothing half-run, nothing uncounted), and
// resuming the uncovered ranges reproduces the uninterrupted
// aggregate byte for byte — wherever the cancel happened to land.
func TestCancelMidBatchReturnsCoveredPartialState(t *testing.T) {
	b := cancelBatch(t)
	want, err := RunReduced(t.Context(), b)
	if err != nil {
		t.Fatal(err)
	}
	wantAgg, _ := json.Marshal(want.Aggregate(b))

	paths := []struct {
		name string
		mut  func(*Batch)
	}{
		{"lanes", func(b *Batch) {}},
		{"legacy stepper", func(b *Batch) { b.LaneWidth = -1 }},
		{"program", func(b *Batch) { b.ForceProgramPath = true }},
	}
	for _, p := range paths {
		pb := b
		p.mut(&pb)
		ctx, cancel := context.WithCancel(t.Context())
		go func() {
			time.Sleep(2 * time.Millisecond)
			cancel()
		}()
		r, err := RunReduced(ctx, pb)
		cancel()
		if err == nil {
			// The batch outran the cancel; nothing to assert beyond
			// the result being the reference.
			if blob, _ := json.Marshal(r.Aggregate(pb)); string(blob) != string(wantAgg) {
				t.Errorf("%s: uncancelled run diverged from reference", p.name)
			}
			continue
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", p.name, err)
		}
		covered := 0
		spans := r.Spans()
		for i, s := range spans {
			if s.Lo >= s.Hi || s.Lo < 0 || s.Hi > pb.Trials {
				t.Fatalf("%s: malformed span %v", p.name, s)
			}
			if i > 0 && s.Lo <= spans[i-1].Hi {
				t.Fatalf("%s: spans not coalesced-ascending: %v", p.name, spans)
			}
			covered += s.Hi - s.Lo
		}
		if covered != r.trials {
			t.Fatalf("%s: spans cover %d trials but reducer absorbed %d", p.name, covered, r.trials)
		}
		if covered == pb.Trials {
			t.Logf("%s: cancel landed after the last chunk; resume is a no-op", p.name)
		}
		// Resume: the partial state plus the uncovered remainder must
		// reproduce the uninterrupted aggregate exactly.
		resumed, err := RunCheckpointed(t.Context(), pb, Checkpoint{}, r)
		if err != nil {
			t.Fatalf("%s: resume: %v", p.name, err)
		}
		gotAgg, _ := json.Marshal(resumed.Aggregate(pb))
		if string(gotAgg) != string(wantAgg) {
			t.Errorf("%s: cancel+resume aggregate differs from uninterrupted run:\ngot:  %s\nwant: %s",
				p.name, gotAgg, wantAgg)
		}
	}
}

// A context cancelled before the call returns immediately: no trials,
// empty coverage, ctx.Err() — and RunOutcomes/Run report (nil, err).
func TestPreCancelledContext(t *testing.T) {
	b := cancelBatch(t)
	ctx, cancel := context.WithCancel(t.Context())
	cancel()
	r, err := RunReduced(ctx, b)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunReduced: err = %v, want context.Canceled", err)
	}
	if r.trials != 0 || len(r.Spans()) != 0 {
		t.Errorf("pre-cancelled RunReduced absorbed %d trials, spans %v", r.trials, r.Spans())
	}
	if out, err := RunOutcomes(ctx, b); out != nil || !errors.Is(err, context.Canceled) {
		t.Errorf("RunOutcomes: (%v, %v), want (nil, context.Canceled)", out, err)
	}
	if agg, err := Run(ctx, b); agg != nil || !errors.Is(err, context.Canceled) {
		t.Errorf("Run: (%v, %v), want (nil, context.Canceled)", agg, err)
	}
	if agg, err := RunStreaming(ctx, b); agg != nil || !errors.Is(err, context.Canceled) {
		t.Errorf("RunStreaming: (%v, %v), want (nil, context.Canceled)", agg, err)
	}
}

// Cancellation must not leak worker goroutines: every worker exits
// before the Run* call returns, on all three execution paths, even
// when the cancel races chunk claiming.
func TestCancelLeaksNoGoroutines(t *testing.T) {
	b := cancelBatch(t)
	b.Workers = 8
	before := runtime.NumGoroutine()
	for i := range 20 {
		ctx, cancel := context.WithCancel(t.Context())
		pb := b
		switch i % 3 {
		case 1:
			pb.LaneWidth = -1
		case 2:
			pb.ForceProgramPath = true
		}
		go cancel() // race the cancel against the whole run
		if _, err := RunReduced(ctx, pb); err != nil && !errors.Is(err, context.Canceled) {
			t.Fatal(err)
		}
		cancel()
	}
	// Workers exit synchronously (the pool waits on its WaitGroup),
	// but give the scheduler a grace window before declaring a leak.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if after := runtime.NumGoroutine(); after <= before {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("%d goroutines before the cancelled batches, %d after — workers leaked", before, after)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
