package engine

import (
	"encoding/json"
	"math/rand/v2"
	"testing"

	"fnr/internal/algo"
	"fnr/internal/graph"

	_ "fnr/internal/algo/paper"
	_ "fnr/internal/baseline"
)

type diffInstance struct {
	name string
	g    *graph.Graph
}

// The differential suite: for every registered algorithm, across a
// seed × instance matrix, the goroutine-free stepper path and the
// goroutine-backed Program path must produce identical per-trial
// Outcomes and byte-identical Aggregate JSON. This is the contract
// that lets the engine switch paths freely (and lets benchengine
// compare their timings honestly). CI runs it under -race, which also
// exercises the coroutine adapter against the race detector.
func TestStepperAndProgramPathsAreIdentical(t *testing.T) {
	planted, err := graph.PlantedMinDegree(96, 24, rand.New(rand.NewPCG(5, 6)))
	if err != nil {
		t.Fatal(err)
	}
	complete, err := graph.Complete(16)
	if err != nil {
		t.Fatal(err)
	}
	instances := []diffInstance{{"planted96", planted}, {"k16", complete}}

	for _, spec := range specsUnderTest(t) {
		for _, inst := range instances {
			for _, seed := range []uint64{1, 99} {
				sa := graph.Vertex(0)
				sb := inst.g.Adj(sa)[0]
				base := Batch{
					Graph: inst.g, StartA: sa, StartB: sb,
					Algorithm: spec, Delta: inst.g.MinDegree(),
					Trials: 6, Seed: seed, MaxRounds: 1 << 20,
				}

				fast := base
				slow := base
				slow.ForceProgramPath = true

				fastOut, err := RunOutcomes(t.Context(), fast)
				if err != nil {
					t.Fatalf("%s/%s/seed%d stepper path: %v", spec, inst.name, seed, err)
				}
				slowOut, err := RunOutcomes(t.Context(), slow)
				if err != nil {
					t.Fatalf("%s/%s/seed%d program path: %v", spec, inst.name, seed, err)
				}
				for i := range fastOut {
					if fastOut[i] != slowOut[i] {
						t.Errorf("%s/%s/seed%d trial %d: stepper %+v vs program %+v",
							spec, inst.name, seed, i, fastOut[i], slowOut[i])
					}
				}

				fastAgg, err := json.Marshal(AggregateOutcomes(fast, fastOut))
				if err != nil {
					t.Fatal(err)
				}
				slowAgg, err := json.Marshal(AggregateOutcomes(slow, slowOut))
				if err != nil {
					t.Fatal(err)
				}
				if string(fastAgg) != string(slowAgg) {
					t.Errorf("%s/%s/seed%d: aggregate JSON differs:\nstepper: %s\nprogram: %s",
						spec, inst.name, seed, fastAgg, slowAgg)
				}
			}
		}
	}
}

// specsUnderTest returns every registered algorithm name, failing the
// test if the registry is unexpectedly empty (a differential suite
// that silently tests nothing is worse than a failing one).
func specsUnderTest(t *testing.T) []string {
	t.Helper()
	names := algo.Names()
	if len(names) < 7 {
		t.Fatalf("registry has %d specs, expected at least the 7 built-ins: %v", len(names), names)
	}
	return names
}

// The tightened gate for the paper's two algorithms, now native
// steppers: per-trial outcomes and aggregate JSON must be
// byte-identical across worker counts 1/4/16 and across the
// native-vs-ForceProgramPath axis — every combination against one
// reference. CI runs this under -race, which exercises the native
// machines and the worker-owned TrialContext reuse against the race
// detector.
func TestPaperSteppersIdenticalAcrossWorkersAndPaths(t *testing.T) {
	g, sa, sb := testGraph(t)
	for _, name := range []string{"whiteboard", "noboard"} {
		base := Batch{
			Graph: g, StartA: sa, StartB: sb,
			Algorithm: name, Delta: g.MinDegree(),
			Trials: 24, Seed: 424, MaxRounds: 1 << 22,
		}
		var refOut []Outcome
		var refAgg []byte
		for _, force := range []bool{false, true} {
			for _, workers := range []int{1, 4, 16} {
				b := base
				b.Workers = workers
				b.ForceProgramPath = force
				out, err := RunOutcomes(t.Context(), b)
				if err != nil {
					t.Fatalf("%s force=%v workers=%d: %v", name, force, workers, err)
				}
				agg, err := json.Marshal(AggregateOutcomes(b, out))
				if err != nil {
					t.Fatal(err)
				}
				if refOut == nil {
					refOut, refAgg = out, agg
					continue
				}
				for i := range out {
					if out[i] != refOut[i] {
						t.Errorf("%s force=%v workers=%d trial %d: %+v vs reference %+v",
							name, force, workers, i, out[i], refOut[i])
					}
				}
				if string(agg) != string(refAgg) {
					t.Errorf("%s force=%v workers=%d: aggregate JSON differs:\n%s\nreference: %s",
						name, force, workers, agg, refAgg)
				}
			}
		}
	}
}

// The stepper fast path must also be deterministic across worker
// counts, exactly like the Program path.
func TestStepperPathDeterministicAcrossWorkers(t *testing.T) {
	g, sa, sb := testGraph(t)
	for _, name := range []string{"sweep", "birthday", "whiteboard"} {
		base := Batch{
			Graph: g, StartA: sa, StartB: sb,
			Algorithm: name, Delta: g.MinDegree(),
			Trials: 30, Seed: 77, MaxRounds: 1 << 22,
		}
		var blobs [][]byte
		for _, workers := range []int{1, 8} {
			b := base
			b.Workers = workers
			agg, err := Run(t.Context(), b)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			blob, err := json.Marshal(agg)
			if err != nil {
				t.Fatal(err)
			}
			blobs = append(blobs, blob)
		}
		if string(blobs[0]) != string(blobs[1]) {
			t.Errorf("%s: stepper-path aggregates differ across worker counts:\n1: %s\n8: %s", name, blobs[0], blobs[1])
		}
	}
}

// The lockstep-lane gate (satellite of the lockstep PR): for both
// paper algorithms, per-trial outcomes and aggregate JSON must be
// byte-identical across workers 1/4/16 × lane widths 1/8/64, with
// the legacy one-at-a-time stepper path (LaneWidth -1, 1 worker) as
// the reference. CI runs this under -race, exercising the lane's
// slot state and the chunked claim queue against the race detector.
func TestLaneWidthAndWorkersDeterministic(t *testing.T) {
	g, sa, sb := testGraph(t)
	for _, name := range []string{"whiteboard", "noboard"} {
		base := Batch{
			Graph: g, StartA: sa, StartB: sb,
			Algorithm: name, Delta: g.MinDegree(),
			Trials: 24, Seed: 424, MaxRounds: 1 << 22,
		}
		ref := base
		ref.Workers = 1
		ref.LaneWidth = -1 // legacy per-trial stepper path
		refOut, err := RunOutcomes(t.Context(), ref)
		if err != nil {
			t.Fatalf("%s reference: %v", name, err)
		}
		refAgg, err := json.Marshal(AggregateOutcomes(ref, refOut))
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4, 16} {
			for _, width := range []int{1, 8, 64} {
				b := base
				b.Workers = workers
				b.LaneWidth = width
				out, err := RunOutcomes(t.Context(), b)
				if err != nil {
					t.Fatalf("%s workers=%d width=%d: %v", name, workers, width, err)
				}
				for i := range out {
					if out[i] != refOut[i] {
						t.Errorf("%s workers=%d width=%d trial %d: %+v vs reference %+v",
							name, workers, width, i, out[i], refOut[i])
					}
				}
				agg, err := json.Marshal(AggregateOutcomes(b, out))
				if err != nil {
					t.Fatal(err)
				}
				if string(agg) != string(refAgg) {
					t.Errorf("%s workers=%d width=%d: aggregate JSON differs:\n%s\nreference: %s",
						name, workers, width, agg, refAgg)
				}
			}
		}
	}
}
