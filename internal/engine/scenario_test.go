package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"fnr/internal/graph"
	"fnr/internal/sim"

	_ "fnr/internal/algo/paper"
	_ "fnr/internal/baseline"
)

// The engine-level scenario suite: the k=2/τ=0 fold (a legacy-shaped
// scenario must aggregate byte-identically to the pair-field batch on
// every execution path), k-way start validation, k>2 execution and
// rejection, the aggregate's scenario echo, and checkpoint v2.

func aggJSON(t *testing.T, b Batch) []byte {
	t.Helper()
	agg, err := Run(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(agg)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// The differential guarantee of the refactor: a scenario that is
// observably the legacy two-agent setting aggregates byte-identically
// to the same batch spelled with StartA/StartB — across worker
// counts, lane widths, and all three execution paths, for both paper
// algorithms.
func TestLegacyScenarioByteIdenticalAcrossPaths(t *testing.T) {
	g, sa, sb := testGraph(t)
	type pathCase struct {
		name         string
		workers      int
		laneWidth    int
		forceProgram bool
	}
	paths := []pathCase{
		{"workers1/lane1", 1, 1, false},
		{"workers4/lane1", 4, 1, false},
		{"workers16/lane8", 16, 8, false},
		{"workers4/lane8", 4, 8, false},
		{"workers4/legacy-stepper", 4, -1, false},
		{"workers4/program", 4, 0, true},
	}
	for _, name := range []string{"whiteboard", "noboard"} {
		for _, pc := range paths {
			legacy := Batch{
				Graph: g, StartA: sa, StartB: sb,
				Algorithm: name, Delta: g.MinDegree(),
				Trials: 20, Seed: 77, MaxRounds: 1 << 22,
				Workers: pc.workers, LaneWidth: pc.laneWidth, ForceProgramPath: pc.forceProgram,
			}
			scenario := legacy
			scenario.StartA, scenario.StartB = 0, 0
			scenario.Scenario = &sim.Scenario{
				Starts:     []graph.Vertex{sa, sb},
				WakeDelays: []int64{0, 0},
			}
			lj, sj := aggJSON(t, legacy), aggJSON(t, scenario)
			if !bytes.Equal(lj, sj) {
				t.Errorf("%s/%s: scenario batch diverged from legacy batch:\nlegacy:   %s\nscenario: %s", name, pc.name, lj, sj)
			}
		}
	}
}

// Satellite: the legacy StartA==StartB rejection is now the k=2 case
// of k-way distinct-start validation; both levels must name the
// colliding agents.
func TestDistinctStartValidationKWay(t *testing.T) {
	g, sa, _ := testGraph(t)
	// k=2 via the pair fields (the legacy spelling).
	_, err := Run(context.Background(), Batch{
		Graph: g, StartA: sa, StartB: sa, Algorithm: "sweep", Trials: 2, Seed: 1,
	})
	if err == nil || !strings.Contains(err.Error(), "agents a and b both start at vertex 0") {
		t.Errorf("k=2 equal starts: err = %v, want agents a and b named", err)
	}
	// k=3 with a duplicate in the scenario's start vector.
	_, err = Run(context.Background(), Batch{
		Graph: g, Algorithm: "walkpair", Trials: 2, Seed: 1,
		Scenario: &sim.Scenario{Starts: []graph.Vertex{4, 9, 4}},
	})
	if err == nil || !strings.Contains(err.Error(), "agents a and c both start at vertex 4") {
		t.Errorf("k=3 duplicate starts: err = %v, want agents a and c named", err)
	}
	if err != nil && !strings.Contains(err.Error(), "distinct start vertices") {
		t.Errorf("k=3 duplicate starts: err = %v, want the distinct-start-vertices phrasing", err)
	}
}

// k>2 scenarios run on every oblivious baseline and stay
// deterministic across worker counts and lane widths; the paper's
// pairwise algorithms reject k>2 loudly.
func TestKAgentScenarios(t *testing.T) {
	g, _, _ := testGraph(t)
	sc := &sim.Scenario{
		Starts:     []graph.Vertex{0, 7, 19, 42},
		WakeDelays: []int64{0, 16, 0, 3},
	}
	for _, name := range []string{"walkpair", "sweep", "dfs", "staywalk", "birthday"} {
		base := Batch{
			Graph: g, Algorithm: name, Delta: g.MinDegree(),
			Trials: 16, Seed: 31, MaxRounds: 1 << 12, Scenario: sc,
		}
		var blobs [][]byte
		for _, w := range []struct{ workers, lane int }{{1, 1}, {8, 1}, {8, 8}} {
			b := base
			b.Workers, b.LaneWidth = w.workers, w.lane
			blobs = append(blobs, aggJSON(t, b))
		}
		for i := 1; i < len(blobs); i++ {
			if !bytes.Equal(blobs[0], blobs[i]) {
				t.Errorf("%s: k=4 aggregate differs across parallelism:\n%s\n%s", name, blobs[0], blobs[i])
			}
		}
	}
	// The paper's pairwise algorithms must reject k>2 before any
	// worker starts.
	for _, name := range []string{"whiteboard", "noboard"} {
		_, err := Run(context.Background(), Batch{
			Graph: g, Algorithm: name, Delta: g.MinDegree(),
			Trials: 2, Seed: 1, MaxRounds: 1 << 18,
			Scenario: &sim.Scenario{Starts: []graph.Vertex{0, 7, 19}},
		})
		if err == nil || !strings.Contains(err.Error(), "does not support 3 agents") {
			t.Errorf("%s at k=3: err = %v, want a loud two-agent-strategy rejection", name, err)
		}
	}
}

// The aggregate echoes the scenario it ran under — and only then:
// legacy batches and folded legacy-shaped scenarios stay scenario-free.
func TestAggregateScenarioEcho(t *testing.T) {
	g, sa, sb := testGraph(t)
	legacy := Batch{Graph: g, StartA: sa, StartB: sb, Algorithm: "sweep", Trials: 4, Seed: 9}
	agg, err := Run(context.Background(), legacy)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Scenario != nil {
		t.Errorf("legacy batch aggregate carries a scenario: %+v", agg.Scenario)
	}

	folded := legacy
	folded.StartA, folded.StartB = 0, 0
	folded.Scenario = &sim.Scenario{Starts: []graph.Vertex{sa, sb}}
	agg, err = Run(context.Background(), folded)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Scenario != nil {
		t.Errorf("legacy-shaped scenario was not folded away: %+v", agg.Scenario)
	}

	k3 := Batch{
		Graph: g, Algorithm: "walkpair", Trials: 8, Seed: 9, MaxRounds: 1 << 18,
		Scenario: &sim.Scenario{
			Starts:        []graph.Vertex{1, 5, 9},
			WakeDelays:    []int64{0, 256, 0},
			MeetFirstPair: true,
		},
	}
	agg, err = Run(context.Background(), k3)
	if err != nil {
		t.Fatal(err)
	}
	want := &ScenarioInfo{Agents: 3, Starts: []int{1, 5, 9}, WakeDelays: []int64{0, 256, 0}, Meet: "firstpair"}
	if !agg.Scenario.Equal(want) {
		t.Errorf("scenario echo = %+v, want %+v", agg.Scenario, want)
	}
	// The streaming path echoes identically.
	streamed, err := RunStreaming(context.Background(), k3)
	if err != nil {
		t.Fatal(err)
	}
	if !streamed.Equal(agg) {
		t.Errorf("streaming aggregate diverged from Run on a scenario batch:\nrun:    %+v\nstream: %+v", agg, streamed)
	}
}

// Checkpoint v2: scenario batches journal under the v2 magic with the
// scenario in the identity section; legacy batches keep the v1 bytes;
// every cross-pairing fails identity validation.
func TestCheckpointScenarioIdentity(t *testing.T) {
	g, sa, sb := testGraph(t)
	legacy := Batch{Graph: g, StartA: sa, StartB: sb, Algorithm: "walkpair", Trials: 12, Seed: 3, MaxRounds: 1 << 14}
	scen := Batch{
		Graph: g, Algorithm: "walkpair", Trials: 12, Seed: 3, MaxRounds: 1 << 14,
		Scenario: &sim.Scenario{Starts: []graph.Vertex{2, 11, 23}, WakeDelays: []int64{0, 16, 0}},
	}
	write := func(b Batch) []byte {
		r, err := RunReduced(context.Background(), b)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteCheckpoint(&buf, b, r); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	legacyBlob, scenBlob := write(legacy), write(scen)
	if got := string(legacyBlob[:8]); got != ckptMagic {
		t.Errorf("legacy journal magic = %q, want v1", got)
	}
	if got := string(scenBlob[:8]); got != ckptMagicV2 {
		t.Errorf("scenario journal magic = %q, want v2", got)
	}

	// Roundtrip: the reloaded reducer aggregates byte-identically.
	r, err := ReadCheckpoint(bytes.NewReader(scenBlob), scen)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := RunStreaming(context.Background(), scen)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Aggregate(scen).Equal(direct) {
		t.Error("scenario checkpoint roundtrip changed the aggregate")
	}

	// Mismatches fail loudly.
	mismatches := []struct {
		name string
		blob []byte
		b    Batch
	}{
		{"v1 journal, scenario batch", legacyBlob, scen},
		{"v2 journal, legacy batch", scenBlob, legacy},
	}
	wrongDelay := scen
	wrongDelay.Scenario = &sim.Scenario{Starts: []graph.Vertex{2, 11, 23}, WakeDelays: []int64{0, 17, 0}}
	mismatches = append(mismatches, struct {
		name string
		blob []byte
		b    Batch
	}{"wake delays differ", scenBlob, wrongDelay})
	wrongStart := scen
	wrongStart.Scenario = &sim.Scenario{Starts: []graph.Vertex{2, 11, 24}, WakeDelays: []int64{0, 16, 0}}
	mismatches = append(mismatches, struct {
		name string
		blob []byte
		b    Batch
	}{"starts differ", scenBlob, wrongStart})
	for _, tc := range mismatches {
		if _, err := ReadCheckpoint(bytes.NewReader(tc.blob), tc.b); err == nil ||
			!strings.Contains(err.Error(), "different batch") {
			t.Errorf("%s: err = %v, want a different-batch identity error", tc.name, err)
		}
	}

	// A legacy-shaped scenario folds before journalling: its bytes are
	// the v1 journal's, and it resumes against the legacy batch.
	foldable := legacy
	foldable.StartA, foldable.StartB = 0, 0
	foldable.Scenario = &sim.Scenario{Starts: []graph.Vertex{sa, sb}}
	if !bytes.Equal(write(foldable), legacyBlob) {
		t.Error("legacy-shaped scenario journal differs from the legacy journal")
	}
}

// RunCheckpointed resume works for scenario batches: a run cut short
// resumes to the byte-identical aggregate.
func TestScenarioCheckpointResume(t *testing.T) {
	g, _, _ := testGraph(t)
	b := Batch{
		Graph: g, Algorithm: "dfs", Trials: 30, Seed: 8, MaxRounds: 1 << 14,
		Scenario: &sim.Scenario{Starts: []graph.Vertex{0, 33, 66}, WakeDelays: []int64{0, 0, 64}},
	}
	path := t.TempDir() + "/scen.ckpt"
	// First leg: cancel after some progress by bounding to a shard.
	shard := b
	shard.ShardCount, shard.ShardIndex = 3, 0
	r1, err := RunCheckpointed(context.Background(), shard, Checkpoint{Path: path, Every: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.trials == 0 {
		t.Fatal("first leg made no progress")
	}
	prior, err := ReadCheckpointFile(path, b)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunCheckpointed(context.Background(), b, Checkpoint{Path: path, Every: 1}, prior)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := RunStreaming(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Aggregate(b).Equal(direct) {
		t.Error("resumed scenario run diverged from the uninterrupted aggregate")
	}
}
