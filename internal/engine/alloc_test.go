package engine

import (
	"math/rand/v2"
	"runtime"
	"testing"

	"fnr/internal/graph"
	"fnr/internal/sim"

	_ "fnr/internal/algo/paper"
)

// bytesPerTrial measures the average heap bytes and allocation count
// one trial costs under the given trial-context supplier.
func bytesPerTrial(t *testing.T, b Batch, trials int, tcFor func() *sim.TrialContext) (bytesPer, allocsPer float64) {
	t.Helper()
	spec, opts, err := b.prepare()
	if err != nil {
		t.Fatal(err)
	}
	// Warm: run every measured trial once first, so a reusable context
	// has grown its scratch to each seed's high-water mark and the
	// measured pass sees the steady state the gates are about. (For
	// the fresh-context supplier this warm-up changes nothing.)
	for i := 0; i <= trials; i++ {
		if out := runStepperTrial(b, spec, opts, tcFor(), i); out.Err {
			t.Fatalf("warm-up trial %d errored", i)
		}
	}
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	for i := 1; i <= trials; i++ {
		if out := runStepperTrial(b, spec, opts, tcFor(), i); out.Err {
			t.Fatalf("trial %d errored", i)
		}
	}
	runtime.ReadMemStats(&m1)
	return float64(m1.TotalAlloc-m0.TotalAlloc) / float64(trials),
		float64(m1.Mallocs-m0.Mallocs) / float64(trials)
}

// TestWhiteboardTrialScratchAllocs is the allocation-regression gate
// for the per-trial walker scratch: on a reused sim.TrialContext the
// Theorem-1 whiteboard algorithm must not re-allocate its Θ(n') dense
// idspace arrays (≈ 24 bytes per ID before the scratch fold) or its
// per-Construct counters each trial.
func TestWhiteboardTrialScratchAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	const n, d = 4096, 80
	rng := rand.New(rand.NewPCG(21, 0xa110c))
	g, err := graph.PlantedMinDegree(n, d, rng)
	if err != nil {
		t.Fatal(err)
	}
	sa := graph.Vertex(rng.IntN(n))
	sb := g.Adj(sa)[rng.IntN(g.Degree(sa))]
	b := Batch{Graph: g, StartA: sa, StartB: sb, Algorithm: "whiteboard",
		Delta: g.MinDegree(), Trials: 1, Seed: 21, Workers: 1}

	shared := sim.NewTrialContext()
	warmBytes, warmAllocs := bytesPerTrial(t, b, 6, func() *sim.TrialContext { return shared })
	t.Logf("warm context: %.0f B/trial, %.1f allocs/trial", warmBytes, warmAllocs)
	// The walker's dense idspace structures alone span ≥ 24·n bytes
	// (idIndex int32+gen, idToID int64+gen, idSet gen); a reused
	// context must stay well below re-allocating them every trial.
	if limit := float64(16 * n); warmBytes > limit {
		t.Errorf("reused TrialContext allocates %.0f B/trial, want < %.0f (walker scratch not reused)", warmBytes, limit)
	}
	if warmAllocs > 128 {
		t.Errorf("reused TrialContext allocates %.1f times/trial, want ≤ 128", warmAllocs)
	}

	coldBytes, _ := bytesPerTrial(t, b, 6, sim.NewTrialContext)
	t.Logf("cold contexts: %.0f B/trial", coldBytes)
	if coldBytes < float64(24*n) {
		// Sanity for the gate itself: fresh contexts must actually pay
		// the Θ(n') cost, or the warm threshold proves nothing.
		t.Errorf("fresh TrialContext allocates only %.0f B/trial — gate no longer measures the dense arrays", coldBytes)
	}
}

// TestNativePaperStepperSetupAllocs is the per-trial setup gate for
// the native paper steppers: with a warm TrialContext the whole trial
// — builder, stepper state machines, lockstep runtime, walker and
// agent-b scratch — must cost under 1 KB of allocations, i.e. the
// iter.Pull coroutine and program-closure setup the
// SteppersFromPrograms adapter used to pay per trial is gone and
// nothing Θ(n) crept back in.
func TestNativePaperStepperSetupAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	const n, d = 4096, 80
	rng := rand.New(rand.NewPCG(21, 0xa110c))
	g, err := graph.PlantedMinDegree(n, d, rng)
	if err != nil {
		t.Fatal(err)
	}
	sa := graph.Vertex(rng.IntN(n))
	sb := g.Adj(sa)[rng.IntN(g.Degree(sa))]
	for _, name := range []string{"whiteboard", "noboard"} {
		b := Batch{Graph: g, StartA: sa, StartB: sb, Algorithm: name,
			Delta: g.MinDegree(), Trials: 1, Seed: 21, Workers: 1}
		shared := sim.NewTrialContext()
		bytesPer, allocsPer := bytesPerTrial(t, b, 6, func() *sim.TrialContext { return shared })
		t.Logf("%s native path, warm context: %.0f B/trial, %.1f allocs/trial", name, bytesPer, allocsPer)
		if bytesPer > 1024 {
			t.Errorf("%s native stepper trial allocates %.0f B on a warm context, want < 1024", name, bytesPer)
		}
		if allocsPer > 24 {
			t.Errorf("%s native stepper trial allocates %.1f times on a warm context, want ≤ 24", name, allocsPer)
		}
	}
}

// TestLockstepLaneAllocs is the allocation-regression gate for the
// lockstep lane path (CI runs it via the -run 'Allocs' step): once a
// lane is warm — steppers built, per-slot scratch grown — re-running
// a whiteboard trial range must cost under 128 B/trial amortized.
// The lane's whole point is that per-trial setup (stepper builds,
// result boxes, context re-arming) amortizes to nothing; this pins
// it.
func TestLockstepLaneAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	const n, d = 4096, 80
	const trials, width = 64, 8
	rng := rand.New(rand.NewPCG(21, 0xa110c))
	g, err := graph.PlantedMinDegree(n, d, rng)
	if err != nil {
		t.Fatal(err)
	}
	sa := graph.Vertex(rng.IntN(n))
	sb := g.Adj(sa)[rng.IntN(g.Degree(sa))]
	b := Batch{Graph: g, StartA: sa, StartB: sb, Algorithm: "whiteboard",
		Delta: g.MinDegree(), Trials: trials, Seed: 21, Workers: 1}
	spec, opts, err := b.prepare()
	if err != nil {
		t.Fatal(err)
	}
	cfg := trialConfig(b, spec, 0)
	seedOf := func(i int) uint64 { return TrialSeed(b.Seed, i) }
	lane := sim.NewTrialLane(width, func() (sim.Stepper, sim.Stepper, error) {
		return spec.Steppers(opts)
	})
	defer lane.Close()
	emit := func(trial int, res *sim.Result, err error) {
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
	lane.Run(cfg, seedOf, 0, trials, emit) // warm every slot and trial
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	lane.Run(cfg, seedOf, 0, trials, emit)
	runtime.ReadMemStats(&m1)
	bytesPer := float64(m1.TotalAlloc-m0.TotalAlloc) / float64(trials)
	allocsPer := float64(m1.Mallocs-m0.Mallocs) / float64(trials)
	t.Logf("warm lane: %.1f B/trial, %.2f allocs/trial", bytesPer, allocsPer)
	if bytesPer > 128 {
		t.Errorf("warm lockstep lane allocates %.1f B/trial, want < 128", bytesPer)
	}
}
