package engine

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// checkpointBatch is the standard batch of the checkpoint tests:
// small enough to run in milliseconds, faulted so the error log and
// error counters are non-trivially populated.
func checkpointBatch(t *testing.T) Batch {
	t.Helper()
	g, sa, sb := testGraph(t)
	return Batch{
		Graph: g, StartA: sa, StartB: sb,
		Algorithm: "sweep", Delta: g.MinDegree(),
		Trials: 240, Seed: 17, MaxRounds: 1 << 22,
		Faults: &FaultPlan{Seed: 9, PPanic: 0.02, PBuildErr: 0.02},
	}
}

// A reducer must survive the wire unchanged: counters, distribution
// tables, error log and coverage spans all round-trip, and the
// aggregate of the reloaded reducer is byte-identical.
func TestCheckpointRoundtrip(t *testing.T) {
	b := checkpointBatch(t)
	r, err := RunReduced(t.Context(), b)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, b, r); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()), b)
	if err != nil {
		t.Fatal(err)
	}
	wantAgg, _ := json.Marshal(r.Aggregate(b))
	gotAgg, _ := json.Marshal(got.Aggregate(b))
	if string(gotAgg) != string(wantAgg) {
		t.Errorf("aggregate changed across the wire:\ngot:  %s\nwant: %s", gotAgg, wantAgg)
	}
}

// A partial reducer — sparse coverage, scattered spans, a populated
// error log — round-trips too; this is the state a crash leaves.
func TestCheckpointRoundtripPartialCoverage(t *testing.T) {
	b := checkpointBatch(t)
	out, err := RunOutcomes(t.Context(), b)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReducer()
	for _, span := range []TrialSpan{{Lo: 0, Hi: 40}, {Lo: 64, Hi: 100}, {Lo: 180, Hi: 240}} {
		for i := span.Lo; i < span.Hi; i++ {
			r.Add(i, out[i])
		}
		r.AddSpan(span.Lo, span.Hi)
	}
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, b, r); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()), b)
	if err != nil {
		t.Fatal(err)
	}
	wantSpans, gotSpans := r.Spans(), got.Spans()
	if len(gotSpans) != len(wantSpans) {
		t.Fatalf("spans %v, want %v", gotSpans, wantSpans)
	}
	for i := range wantSpans {
		if gotSpans[i] != wantSpans[i] {
			t.Fatalf("spans %v, want %v", gotSpans, wantSpans)
		}
	}
	wantAgg, _ := json.Marshal(r.Aggregate(b))
	gotAgg, _ := json.Marshal(got.Aggregate(b))
	if string(gotAgg) != string(wantAgg) {
		t.Errorf("partial aggregate changed across the wire:\ngot:  %s\nwant: %s", gotAgg, wantAgg)
	}
}

// Truncating the journal anywhere, or flipping any byte, must fail
// the read — never load silently wrong state.
func TestCheckpointDetectsTruncationAndCorruption(t *testing.T) {
	b := checkpointBatch(t)
	r, err := RunReduced(t.Context(), b)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, b, r); err != nil {
		t.Fatal(err)
	}
	wire := buf.Bytes()
	for _, cut := range []int{0, 3, 8, 9, len(wire) / 2, len(wire) - 5, len(wire) - 1} {
		if _, err := ReadCheckpoint(bytes.NewReader(wire[:cut]), b); err == nil {
			t.Errorf("truncation at %d/%d bytes read cleanly", cut, len(wire))
		}
	}
	for _, flip := range []int{0, 8, len(wire) / 2, len(wire) - 2} {
		mut := bytes.Clone(wire)
		mut[flip] ^= 0x40
		if _, err := ReadCheckpoint(bytes.NewReader(mut), b); err == nil {
			t.Errorf("bit flip at byte %d read cleanly", flip)
		}
	}
}

// A journal written for one batch must refuse to resume a different
// one, naming the mismatched identity field.
func TestCheckpointIdentityMismatch(t *testing.T) {
	b := checkpointBatch(t)
	r, err := RunReduced(t.Context(), b)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, b, r); err != nil {
		t.Fatal(err)
	}
	mutations := []struct {
		field string
		mut   func(*Batch)
	}{
		{"algorithm", func(b *Batch) { b.Algorithm = "whiteboard" }},
		{"seed", func(b *Batch) { b.Seed++ }},
		{"trials", func(b *Batch) { b.Trials++ }},
		{"delta", func(b *Batch) { b.Delta-- }},
		{"max_rounds", func(b *Batch) { b.MaxRounds++ }},
		{"start_a", func(b *Batch) { b.StartA++ }},
		{"start_b", func(b *Batch) { b.StartB++ }},
		{"fault_plan", func(b *Batch) { f := *b.Faults; f.Seed++; b.Faults = &f }},
		{"fault_plan", func(b *Batch) { b.Faults = nil }},
	}
	for _, m := range mutations {
		mb := b
		m.mut(&mb)
		_, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()), mb)
		if err == nil || !strings.Contains(err.Error(), m.field) {
			t.Errorf("mutated %s: err %v, want mismatch naming the field", m.field, err)
		}
	}
	if _, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()), b); err != nil {
		t.Fatalf("unmutated batch failed to read back: %v", err)
	}
}

func TestUncovered(t *testing.T) {
	span := func(lo, hi int) TrialSpan { return TrialSpan{Lo: lo, Hi: hi} }
	cases := []struct {
		lo, hi  int
		covered []TrialSpan
		want    []TrialSpan
	}{
		{0, 10, nil, []TrialSpan{span(0, 10)}},
		{0, 10, []TrialSpan{span(0, 10)}, nil},
		{0, 10, []TrialSpan{span(0, 4)}, []TrialSpan{span(4, 10)}},
		{0, 10, []TrialSpan{span(6, 10)}, []TrialSpan{span(0, 6)}},
		{0, 10, []TrialSpan{span(2, 4), span(6, 8)}, []TrialSpan{span(0, 2), span(4, 6), span(8, 10)}},
		// Coverage outside [lo, hi) — another shard's spans — is inert.
		{10, 20, []TrialSpan{span(0, 5), span(12, 14), span(25, 30)}, []TrialSpan{span(10, 12), span(14, 20)}},
		{10, 20, []TrialSpan{span(0, 30)}, nil},
		{5, 5, nil, nil},
	}
	for i, c := range cases {
		got := uncovered(c.lo, c.hi, c.covered)
		if len(got) != len(c.want) {
			t.Errorf("case %d: uncovered(%d, %d, %v) = %v, want %v", i, c.lo, c.hi, c.covered, got, c.want)
			continue
		}
		for j := range got {
			if got[j] != c.want[j] {
				t.Errorf("case %d: uncovered(%d, %d, %v) = %v, want %v", i, c.lo, c.hi, c.covered, got, c.want)
				break
			}
		}
	}
}

// Resuming from a partial checkpoint runs only the uncovered ranges
// and produces an aggregate byte-identical to the uninterrupted run
// — the acceptance criterion of the checkpoint layer.
func TestRunCheckpointedResumeMatchesUninterrupted(t *testing.T) {
	b := checkpointBatch(t)
	want, err := RunReduced(t.Context(), b)
	if err != nil {
		t.Fatal(err)
	}
	wantAgg, _ := json.Marshal(want.Aggregate(b))

	// Build the crash survivor: exact prior state for a scattered
	// subset of trials, derived from the reference outcomes.
	out, err := RunOutcomes(t.Context(), b)
	if err != nil {
		t.Fatal(err)
	}
	prior := NewReducer()
	for _, span := range []TrialSpan{{Lo: 0, Hi: 50}, {Lo: 70, Hi: 170}, {Lo: 230, Hi: 240}} {
		for i := span.Lo; i < span.Hi; i++ {
			prior.Add(i, out[i])
		}
		prior.AddSpan(span.Lo, span.Hi)
	}
	path := filepath.Join(t.TempDir(), "resume.ckpt")
	if err := WriteCheckpointFile(path, b, prior); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadCheckpointFile(path, b)
	if err != nil {
		t.Fatal(err)
	}

	journal := filepath.Join(t.TempDir(), "journal.ckpt")
	r, err := RunCheckpointed(t.Context(), b, Checkpoint{Path: journal, Every: 32}, loaded)
	if err != nil {
		t.Fatal(err)
	}
	gotAgg, _ := json.Marshal(r.Aggregate(b))
	if string(gotAgg) != string(wantAgg) {
		t.Errorf("resumed aggregate differs from uninterrupted run:\ngot:  %s\nwant: %s", gotAgg, wantAgg)
	}
	// The final flush leaves a journal that resumes to a no-op: its
	// coverage is complete and its state aggregates identically.
	final, err := ReadCheckpointFile(journal, b)
	if err != nil {
		t.Fatal(err)
	}
	if spans := final.Spans(); len(spans) != 1 || spans[0] != (TrialSpan{Lo: 0, Hi: b.Trials}) {
		t.Errorf("final journal coverage %v, want [{0 %d}]", spans, b.Trials)
	}
	finalAgg, _ := json.Marshal(final.Aggregate(b))
	if string(finalAgg) != string(wantAgg) {
		t.Errorf("final journal aggregate differs:\ngot:  %s\nwant: %s", finalAgg, wantAgg)
	}
	if rerun, err := RunCheckpointed(t.Context(), b, Checkpoint{Path: journal}, final); err != nil {
		t.Fatal(err)
	} else if blob, _ := json.Marshal(rerun.Aggregate(b)); string(blob) != string(wantAgg) {
		t.Errorf("no-op resume changed the aggregate:\ngot:  %s\nwant: %s", blob, wantAgg)
	}
}
