package engine

import (
	"math"
	"slices"

	"fnr/internal/sim"
)

// This file is the bounded-memory aggregation path: per-worker
// Reducer state absorbs outcomes as trials finish, Merge combines the
// workers' parts, and the merged reducer emits the same Aggregate
// shape Run produces — without ever materializing an O(trials)
// outcome slice. Memory is O(distinct observed values), which for
// round/move counts is tiny compared to the trial count of the
// 10M-trial sweeps this exists for (a batch drawing a million
// distinct move totals would still hold two 16 MB tables, not a
// 320 MB outcome slice).
//
// Determinism: a reducer is a multiset (sorted value → count
// tables), so Merge is order- and partition-insensitive — any worker
// count, lane width or chunk assignment merges to the same state,
// byte for byte. Median/P95/Min/Max reproduce stats.Quantile's
// arithmetic exactly (same interpolation on the same sorted values),
// so they are bit-identical to AggregateOutcomes. Mean is the one
// deliberate divergence: AggregateOutcomes streams Welford in trial
// order (order-sensitive rounding), while the reducer computes the
// multiset mean Σ value·count / n — deterministic and
// partition-independent, but up to a few ULPs from the Welford
// result. Values fit float64 exactly (round/move counts are bounded
// by 4n²+1000 « 2⁵³).

// TrialSpan is a half-open range [Lo, Hi) of global trial indices — a
// sharded batch's coverage metadata (see Batch.ShardCount).
type TrialSpan struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// Reducer accumulates one worker's stream of trial outcomes. The
// zero value is empty and ready to use.
type Reducer struct {
	trials, met, errors int
	rounds, moves       distCounter
	spans               []TrialSpan
}

// NewReducer returns an empty reducer (the sink builder the lane
// path wants).
func NewReducer() *Reducer { return &Reducer{} }

// Add absorbs one trial's outcome, mirroring AggregateOutcomes'
// per-outcome bookkeeping: meeting rounds over met trials, move
// totals over non-erroring trials.
func (r *Reducer) Add(o Outcome) {
	r.trials++
	if o.Met {
		r.met++
		r.rounds.add(o.Rounds, 1)
	}
	if o.Err {
		r.errors++
		return
	}
	r.moves.add(o.Moves, 1)
}

// AddSpan records that this reducer covers the global trial range
// [lo, hi) of a sharded batch — metadata Merge coalesces and
// Aggregate reports through TrialSpans. Reducers of unsharded runs
// carry no spans.
func (r *Reducer) AddSpan(lo, hi int) {
	if lo < hi {
		r.spans = coalesceSpans(append(r.spans, TrialSpan{Lo: lo, Hi: hi}))
	}
}

// Spans returns the coalesced global trial ranges this reducer
// covers (nil for an unsharded reducer).
func (r *Reducer) Spans() []TrialSpan { return slices.Clone(r.spans) }

// coalesceSpans sorts spans by Lo and fuses adjacent or overlapping
// ranges, so k shards' [i·T/k, (i+1)·T/k) spans merge to [0, T).
func coalesceSpans(spans []TrialSpan) []TrialSpan {
	if len(spans) < 2 {
		return spans
	}
	slices.SortFunc(spans, func(a, b TrialSpan) int { return a.Lo - b.Lo })
	out := spans[:1]
	for _, s := range spans[1:] {
		if last := &out[len(out)-1]; s.Lo <= last.Hi {
			last.Hi = max(last.Hi, s.Hi)
		} else {
			out = append(out, s)
		}
	}
	return out
}

// Merge combines per-worker reducers into one. It is insensitive to
// the order and the partition of the parts: any split of the same
// outcome multiset merges to the same state, and shard-range
// metadata coalesces (adjacent shards fuse into one span).
func Merge(parts ...*Reducer) *Reducer {
	m := NewReducer()
	for _, p := range parts {
		if p == nil {
			continue
		}
		m.trials += p.trials
		m.met += p.met
		m.errors += p.errors
		m.rounds.merge(&p.rounds)
		m.moves.merge(&p.moves)
		m.spans = append(m.spans, p.spans...)
	}
	m.spans = coalesceSpans(m.spans)
	return m
}

// Aggregate emits the batch summary from the reduced state — the
// same shape (and, Mean's rounding aside, the same bytes) as
// Run/AggregateOutcomes.
func (r *Reducer) Aggregate(b Batch) *Aggregate {
	agg := &Aggregate{
		Algorithm: b.Algorithm,
		Trials:    r.trials,
		Seed:      b.Seed,
		Met:       r.met,
		Failures:  r.trials - r.met,
		Errors:    r.errors,
	}
	if r.trials > 0 {
		agg.SuccessRate = float64(r.met) / float64(r.trials)
	}
	agg.Rounds = r.rounds.dist()
	agg.Moves = r.moves.dist()
	// A complete merge — spans covering all of [0, Trials) — drops the
	// metadata, so k shards merged back together emit byte-identical
	// JSON to the unsharded run.
	if !(len(r.spans) == 1 && r.spans[0] == (TrialSpan{Lo: 0, Hi: b.Trials})) {
		agg.TrialSpans = slices.Clone(r.spans)
	}
	return agg
}

// RunStreaming executes the batch like Run but aggregates through
// per-worker reducers: engine-owned memory is bounded by the number
// of distinct observed values instead of the trial count, which is
// what makes 10M-trial batches practical. Results are deterministic
// at any worker count, lane width and path choice; see the file
// comment for the one documented Mean-rounding divergence from Run.
func RunStreaming(b Batch) (*Aggregate, error) {
	r, err := RunReduced(b)
	if err != nil {
		return nil, err
	}
	return r.Aggregate(b), nil
}

// RunReduced is RunStreaming stopping one step earlier: it returns
// the batch's merged reducer instead of the final aggregate. This is
// the composition point for sharded sweeps — run each shard (same
// Batch, different ShardIndex) in its own process, Merge the
// reducers, and Aggregate the merge; the result is byte-identical to
// the unsharded streaming run, mean included (the multiset mean is
// partition-independent). A sharded reducer carries its coverage in
// Spans.
func RunReduced(b Batch) (*Reducer, error) {
	spec, opts, err := b.prepare()
	if err != nil {
		return nil, err
	}
	lo, hi := b.shardSpan()
	var parts []*Reducer
	switch {
	case b.useSteppers(spec) && b.laneWidth() > 0:
		parts = runLanes(b, spec, opts, b.laneWidth(), NewReducer,
			func(r *Reducer, _ int, o Outcome) { r.Add(o) })
	case b.useSteppers(spec):
		type scratch struct {
			tc *sim.TrialContext
			r  *Reducer
		}
		for _, s := range chunkedWorkers(b.Workers, hi-lo, func() *scratch {
			return &scratch{tc: sim.NewTrialContext(), r: NewReducer()}
		}, func(s *scratch, from, to int) {
			for i := from; i < to; i++ {
				s.r.Add(runStepperTrial(b, spec, opts, s.tc, lo+i))
			}
		}) {
			parts = append(parts, s.r)
		}
	default:
		parts = chunkedWorkers(b.Workers, hi-lo, NewReducer,
			func(r *Reducer, from, to int) {
				for i := from; i < to; i++ {
					r.Add(runTrial(b, spec, opts, lo+i))
				}
			})
	}
	m := Merge(parts...)
	if b.sharded() {
		m.AddSpan(b.shardSpan())
	}
	return m, nil
}

// distCounter is a sorted value → count table: the bounded
// representation of a multiset of int64 observations. The zero value
// is an empty multiset.
type distCounter struct {
	vals   []int64
	counts []int64
	n      int64
}

// add records c occurrences of v.
func (d *distCounter) add(v, c int64) {
	i, ok := slices.BinarySearch(d.vals, v)
	if ok {
		d.counts[i] += c
	} else {
		d.vals = slices.Insert(d.vals, i, v)
		d.counts = slices.Insert(d.counts, i, c)
	}
	d.n += c
}

// merge folds another counter's table into this one.
func (d *distCounter) merge(o *distCounter) {
	for i, v := range o.vals {
		d.add(v, o.counts[i])
	}
}

// dist summarizes the multiset exactly as DistOf summarizes the
// expanded sample — bit-identical for Median/P95/Min/Max (same
// quantile arithmetic on the same sorted values); Mean is the exact
// multiset mean (see the file comment).
func (d *distCounter) dist() Dist {
	if d.n == 0 {
		return Dist{}
	}
	var sum float64
	for i, v := range d.vals {
		sum += float64(v) * float64(d.counts[i])
	}
	return Dist{
		Mean:   sum / float64(d.n),
		Median: d.quantile(0.5),
		P95:    d.quantile(0.95),
		Min:    float64(d.vals[0]),
		Max:    float64(d.vals[len(d.vals)-1]),
	}
}

// quantile reproduces stats.Quantile's linear interpolation on the
// sorted expansion of the multiset, via rank lookups instead of an
// expanded slice: float64(int64) conversion is monotone and exact
// here, so sorted int64 order IS the sorted float64 order and the
// interpolation arithmetic matches bit for bit.
func (d *distCounter) quantile(q float64) float64 {
	if d.n == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q <= 0 {
		return float64(d.vals[0])
	}
	if q >= 1 {
		return float64(d.vals[len(d.vals)-1])
	}
	pos := q * float64(d.n-1)
	lo := int64(math.Floor(pos))
	hi := int64(math.Ceil(pos))
	vlo := float64(d.rank(lo))
	if lo == hi {
		return vlo
	}
	vhi := float64(d.rank(hi))
	frac := pos - float64(lo)
	return vlo*(1-frac) + vhi*frac
}

// rank returns the value at 0-based rank r of the sorted expansion.
func (d *distCounter) rank(r int64) int64 {
	var cum int64
	for i, c := range d.counts {
		cum += c
		if r < cum {
			return d.vals[i]
		}
	}
	return d.vals[len(d.vals)-1]
}
