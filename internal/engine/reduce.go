package engine

import (
	"context"
	"math"
	"slices"
	"strconv"
	"strings"

	"fnr/internal/algo"
)

// This file is the bounded-memory aggregation path: per-worker
// Reducer state absorbs outcomes as trials finish, Merge combines the
// workers' parts, and the merged reducer emits the same Aggregate
// shape Run produces — without ever materializing an O(trials)
// outcome slice. Memory is O(distinct observed values), which for
// round/move counts is tiny compared to the trial count of the
// 10M-trial sweeps this exists for (a batch drawing a million
// distinct move totals would still hold two 16 MB tables, not a
// 320 MB outcome slice).
//
// Determinism: a reducer is a multiset (sorted value → count
// tables), so Merge is order- and partition-insensitive — any worker
// count, lane width or chunk assignment merges to the same state,
// byte for byte. Median/P95/Min/Max reproduce stats.Quantile's
// arithmetic exactly (same interpolation on the same sorted values),
// so they are bit-identical to AggregateOutcomes. Mean is the one
// deliberate divergence: AggregateOutcomes streams Welford in trial
// order (order-sensitive rounding), while the reducer computes the
// multiset mean Σ value·count / n — deterministic and
// partition-independent, but up to a few ULPs from the Welford
// result. Values fit float64 exactly (round/move counts are bounded
// by 4n²+1000 « 2⁵³).

// TrialSpan is a half-open range [Lo, Hi) of global trial indices — a
// sharded batch's coverage metadata (see Batch.ShardCount).
type TrialSpan struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// Reducer accumulates one worker's stream of trial outcomes. The
// zero value is empty and ready to use.
type Reducer struct {
	trials, met, errors int
	rounds, moves       distCounter
	errs                errLog
	spans               []TrialSpan
}

// NewReducer returns an empty reducer (the sink builder the lane
// path wants).
func NewReducer() *Reducer { return &Reducer{} }

// Add absorbs one trial's outcome, mirroring AggregateOutcomes'
// per-outcome bookkeeping: meeting rounds over met trials, move
// totals over non-erroring trials, error detail by global trial
// index (which is what keeps FirstErrors scheduling-independent).
func (r *Reducer) Add(trial int, o Outcome) {
	r.trials++
	if o.Met {
		r.met++
		r.rounds.add(o.Rounds, 1)
	}
	if o.Err {
		r.errors++
		r.errs.note(trial, o.Msg)
		return
	}
	r.moves.add(o.Moves, 1)
}

// reset empties the reducer, keeping its grown tables' capacity — the
// per-chunk flush cadence of the checkpoint path would otherwise
// reallocate every table every 64 trials.
func (r *Reducer) reset() {
	r.trials, r.met, r.errors = 0, 0, 0
	r.rounds.reset()
	r.moves.reset()
	r.errs.entries = r.errs.entries[:0]
	r.spans = r.spans[:0]
}

// AddSpan records that this reducer covers the global trial range
// [lo, hi). The spans list is kept as an arbitrary (possibly
// overlapping, unsorted) cover and only coalesced on read — every
// execution path calls AddSpan once per 64-trial chunk, and a
// 10M-trial run making each add re-sort the list would turn
// bookkeeping into the bottleneck. The common case (a worker
// claiming adjacent chunks) still collapses on the spot.
func (r *Reducer) AddSpan(lo, hi int) {
	if lo >= hi {
		return
	}
	if n := len(r.spans); n > 0 && r.spans[n-1].Hi == lo {
		r.spans[n-1].Hi = hi
		return
	}
	r.spans = append(r.spans, TrialSpan{Lo: lo, Hi: hi})
}

// Spans returns the coalesced global trial ranges this reducer
// covers (nil for an empty reducer).
func (r *Reducer) Spans() []TrialSpan {
	return coalesceSpans(slices.Clone(r.spans))
}

// coalesceSpans sorts spans by Lo and fuses adjacent or overlapping
// ranges, so k shards' [i·T/k, (i+1)·T/k) spans merge to [0, T).
func coalesceSpans(spans []TrialSpan) []TrialSpan {
	if len(spans) < 2 {
		return spans
	}
	slices.SortFunc(spans, func(a, b TrialSpan) int { return a.Lo - b.Lo })
	out := spans[:1]
	for _, s := range spans[1:] {
		if last := &out[len(out)-1]; s.Lo <= last.Hi {
			last.Hi = max(last.Hi, s.Hi)
		} else {
			out = append(out, s)
		}
	}
	return out
}

// Merge combines per-worker reducers into one. It is insensitive to
// the order and the partition of the parts: any split of the same
// outcome multiset merges to the same state, and shard-range
// metadata coalesces (adjacent shards fuse into one span).
func Merge(parts ...*Reducer) *Reducer {
	m := NewReducer()
	for _, p := range parts {
		m.mergeFrom(p)
	}
	m.spans = coalesceSpans(m.spans)
	return m
}

// mergeFrom folds another reducer's state into this one in place —
// the journal path's hot merge (called once per chunk under a lock,
// so it appends spans uncoalesced; see AddSpan). Safe on nil.
func (r *Reducer) mergeFrom(p *Reducer) {
	if p == nil {
		return
	}
	r.trials += p.trials
	r.met += p.met
	r.errors += p.errors
	r.rounds.merge(&p.rounds)
	r.moves.merge(&p.moves)
	r.errs.mergeFrom(&p.errs)
	for _, s := range p.spans {
		r.AddSpan(s.Lo, s.Hi)
	}
}

// Aggregate emits the batch summary from the reduced state — the
// same shape (and, Mean's rounding aside, the same bytes) as
// Run/AggregateOutcomes.
func (r *Reducer) Aggregate(b Batch) *Aggregate {
	b = b.normalized()
	agg := &Aggregate{
		Algorithm: b.Algorithm,
		Trials:    r.trials,
		Seed:      b.Seed,
		Scenario:  b.scenarioInfo(),
		Met:       r.met,
		Failures:  r.trials - r.met,
		Errors:    r.errors,
	}
	if r.trials > 0 {
		agg.SuccessRate = float64(r.met) / float64(r.trials)
	}
	agg.Rounds = r.rounds.dist()
	agg.Moves = r.moves.dist()
	agg.FirstErrors = r.errs.list()
	// A complete reducer — spans covering all of [0, Trials) — drops
	// the metadata, so k shards merged back together (or a resumed
	// run that reached the end) emit byte-identical JSON to the
	// unsharded, uninterrupted run. Spans are tracked per chunk, so
	// coalesce before deciding.
	r.spans = coalesceSpans(r.spans)
	if !(len(r.spans) == 1 && r.spans[0] == (TrialSpan{Lo: 0, Hi: b.Trials})) {
		agg.TrialSpans = slices.Clone(r.spans)
	}
	return agg
}

// RunStreaming executes the batch like Run but aggregates through
// per-worker reducers: engine-owned memory is bounded by the number
// of distinct observed values instead of the trial count, which is
// what makes 10M-trial batches practical. Results are deterministic
// at any worker count, lane width and path choice; see the file
// comment for the one documented Mean-rounding divergence from Run.
// Cancelling ctx returns (nil, ctx.Err()); callers that want the
// partial state use RunReduced.
func RunStreaming(ctx context.Context, b Batch) (*Aggregate, error) {
	r, err := RunReduced(ctx, b)
	if err != nil {
		return nil, err
	}
	return r.Aggregate(b), nil
}

// RunReduced is RunStreaming stopping one step earlier: it returns
// the batch's merged reducer instead of the final aggregate. This is
// the composition point for sharded sweeps — run each shard (same
// Batch, different ShardIndex) in its own process, Merge the
// reducers, and Aggregate the merge; the result is byte-identical to
// the unsharded streaming run, mean included (the multiset mean is
// partition-independent). A reducer carries its trial coverage in
// Spans.
//
// Cancelling ctx stops the run at the next chunk boundary and
// returns the reducer state completed so far TOGETHER WITH ctx.Err():
// every trial the reducer absorbed is listed in its Spans, nothing
// half-run is included, and no goroutine outlives the call — the
// partial reducer can be checkpointed and later resumed (see
// RunCheckpointed) or merged with a rerun of the uncovered ranges.
func RunReduced(ctx context.Context, b Batch) (*Reducer, error) {
	b = b.normalized()
	spec, opts, err := b.prepare()
	if err != nil {
		return nil, err
	}
	lo, hi := b.shardSpan()
	m := Merge(runReducedRange(ctx, b, spec, opts, lo, hi, nil)...)
	return m, ctx.Err()
}

// chunkCollector is the per-worker sink of the reduced execution
// paths: outcomes accumulate into r, and endChunk stamps each
// completed chunk's trial-span coverage. In journal mode (out
// non-nil) the collector instead flushes r to the shared journal
// after every chunk and starts empty, so worker-local state stays
// one chunk deep and a crash loses at most the chunks not yet
// absorbed; in plain mode (out nil) r simply grows and the caller
// merges the workers' parts — no locks anywhere near the hot loop.
type chunkCollector struct {
	r   *Reducer
	out func(*Reducer)
	sw  *stepperWorker // legacy per-trial stepper path only
}

func (c *chunkCollector) endChunk(from, to int) {
	c.r.AddSpan(from, to)
	if c.out != nil {
		c.out(c.r)
		c.r.reset()
	}
}

// runReducedRange executes global trials [lo, hi) of the batch on
// whichever path the batch selects, reducing per worker, and returns
// the workers' reducer parts (empty husks in journal mode — the data
// went to out). Coverage spans are stamped per completed chunk, so a
// cancelled run's parts say exactly which trials they absorbed.
func runReducedRange(ctx context.Context, b Batch, spec algo.Spec, opts algo.BuildOpts, lo, hi int, out func(*Reducer)) []*Reducer {
	newCollector := func() *chunkCollector { return &chunkCollector{r: NewReducer(), out: out} }
	var cs []*chunkCollector
	switch {
	case !b.useSteppers(spec):
		cs = chunkedWorkers(ctx, b.Workers, hi-lo, newCollector,
			func(c *chunkCollector, from, to int) {
				for i := from; i < to; i++ {
					c.r.Add(lo+i, runTrial(b, spec, opts, lo+i))
				}
				c.endChunk(lo+from, lo+to)
			})
	case b.laneWidth() > 0:
		cs = runLanes(ctx, b, spec, opts, b.laneWidth(), lo, hi, newCollector,
			func(c *chunkCollector, trial int, o Outcome) { c.r.Add(trial, o) },
			func(c *chunkCollector, from, to int) { c.endChunk(from, to) })
	default: // legacy one-trial-at-a-time stepper path
		cs = chunkedWorkers(ctx, b.Workers, hi-lo,
			func() *chunkCollector {
				c := newCollector()
				c.sw = newStepperWorker()
				return c
			},
			func(c *chunkCollector, from, to int) {
				for i := from; i < to; i++ {
					c.r.Add(lo+i, c.sw.run(b, spec, opts, lo+i))
				}
				c.endChunk(lo+from, lo+to)
			})
	}
	parts := make([]*Reducer, len(cs))
	for i, c := range cs {
		parts[i] = c.r
	}
	return parts
}

// distCounter is a sorted value → count table: the bounded
// representation of a multiset of int64 observations. The zero value
// is an empty multiset.
type distCounter struct {
	vals   []int64
	counts []int64
	n      int64
}

// reset empties the counter, keeping table capacity.
func (d *distCounter) reset() {
	d.vals, d.counts, d.n = d.vals[:0], d.counts[:0], 0
}

// add records c occurrences of v.
func (d *distCounter) add(v, c int64) {
	i, ok := slices.BinarySearch(d.vals, v)
	if ok {
		d.counts[i] += c
	} else {
		d.vals = slices.Insert(d.vals, i, v)
		d.counts = slices.Insert(d.counts, i, c)
	}
	d.n += c
}

// merge folds another counter's table into this one.
func (d *distCounter) merge(o *distCounter) {
	for i, v := range o.vals {
		d.add(v, o.counts[i])
	}
}

// dist summarizes the multiset exactly as DistOf summarizes the
// expanded sample — bit-identical for Median/P95/Min/Max (same
// quantile arithmetic on the same sorted values); Mean is the exact
// multiset mean (see the file comment).
func (d *distCounter) dist() Dist {
	if d.n == 0 {
		return Dist{}
	}
	var sum float64
	for i, v := range d.vals {
		sum += float64(v) * float64(d.counts[i])
	}
	return Dist{
		Mean:   sum / float64(d.n),
		Median: d.quantile(0.5),
		P95:    d.quantile(0.95),
		Min:    float64(d.vals[0]),
		Max:    float64(d.vals[len(d.vals)-1]),
	}
}

// quantile reproduces stats.Quantile's linear interpolation on the
// sorted expansion of the multiset, via rank lookups instead of an
// expanded slice: float64(int64) conversion is monotone and exact
// here, so sorted int64 order IS the sorted float64 order and the
// interpolation arithmetic matches bit for bit.
func (d *distCounter) quantile(q float64) float64 {
	if d.n == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q <= 0 {
		return float64(d.vals[0])
	}
	if q >= 1 {
		return float64(d.vals[len(d.vals)-1])
	}
	pos := q * float64(d.n-1)
	lo := int64(math.Floor(pos))
	hi := int64(math.Ceil(pos))
	vlo := float64(d.rank(lo))
	if lo == hi {
		return vlo
	}
	vhi := float64(d.rank(hi))
	frac := pos - float64(lo)
	return vlo*(1-frac) + vhi*frac
}

// rank returns the value at 0-based rank r of the sorted expansion.
func (d *distCounter) rank(r int64) int64 {
	var cum int64
	for i, c := range d.counts {
		cum += c
		if r < cum {
			return d.vals[i]
		}
	}
	return d.vals[len(d.vals)-1]
}

// maxFirstErrors bounds Aggregate.FirstErrors: enough distinct
// messages to diagnose a failing batch, small enough that error
// bookkeeping stays O(1) per erroring trial.
const maxFirstErrors = 5

// errEntry is one distinct error message with the lowest global
// trial index observed carrying it.
type errEntry struct {
	trial int
	msg   string
}

// errLog keeps the maxFirstErrors distinct error messages with the
// lowest trial indices — deterministically, no matter in which order
// the trials arrive or how they were partitioned across workers,
// lanes or shards. The exactness argument: an entry that belongs in
// the true top-K can only be rejected if K distinct messages with
// strictly lower current indices are resident, and resident indices
// never undercut their messages' true minima — so K messages with
// lower true minima would exist, contradicting membership. The same
// argument makes bounded per-part logs merge exactly: a globally
// top-K message is top-K in the part holding its global minimum.
type errLog struct {
	entries []errEntry // sorted by (trial, msg), ≤ maxFirstErrors long
}

// note records that the trial erred with the given message. Empty
// messages (hand-built Outcomes) carry no diagnostic value and are
// skipped; Aggregate.Errors still counts them.
func (l *errLog) note(trial int, msg string) {
	if msg == "" {
		return
	}
	for i, e := range l.entries {
		if e.msg != msg {
			continue
		}
		if trial >= e.trial {
			return
		}
		l.entries = slices.Delete(l.entries, i, i+1)
		break
	}
	at, _ := slices.BinarySearchFunc(l.entries, errEntry{trial, msg}, cmpErrEntry)
	if at >= maxFirstErrors {
		return
	}
	l.entries = slices.Insert(l.entries, at, errEntry{trial, msg})
	if len(l.entries) > maxFirstErrors {
		l.entries = l.entries[:maxFirstErrors]
	}
}

func cmpErrEntry(a, b errEntry) int {
	if a.trial != b.trial {
		return a.trial - b.trial
	}
	return strings.Compare(a.msg, b.msg)
}

// mergeFrom folds another log's entries into this one.
func (l *errLog) mergeFrom(o *errLog) {
	for _, e := range o.entries {
		l.note(e.trial, e.msg)
	}
}

// list renders the log for Aggregate.FirstErrors (nil when empty).
func (l *errLog) list() []string {
	if len(l.entries) == 0 {
		return nil
	}
	out := make([]string, len(l.entries))
	for i, e := range l.entries {
		out[i] = "trial " + strconv.Itoa(e.trial) + ": " + e.msg
	}
	return out
}
