package engine

import (
	"encoding/json"
	"strconv"
	"strings"
	"testing"

	_ "fnr/internal/algo/paper"
	_ "fnr/internal/baseline"
)

func TestParseFaultPlan(t *testing.T) {
	plan, err := ParseFaultPlan("panic:p=1e-4,stall:p=1e-4,builderr:p=1e-5", 7)
	if err != nil {
		t.Fatal(err)
	}
	want := FaultPlan{Seed: 7, PPanic: 1e-4, PStall: 1e-4, PBuildErr: 1e-5}
	if *plan != want {
		t.Errorf("parsed %+v, want %+v", *plan, want)
	}
	if plan, err := ParseFaultPlan(" stall:p=0.5 ", 0); err != nil || plan.PStall != 0.5 {
		t.Errorf("single padded clause: %+v, %v", plan, err)
	}

	bad := []string{
		"panic",                     // no colon
		"panic:1e-4",                // no p= prefix
		"panic:p=zap",               // not a float
		"flood:p=0.1",               // unknown kind
		"panic:p=1e-4,panic:p=1e-5", // repeated kind
		"panic:p=-0.1",              // below range
		"panic:p=1.5",               // above range
		"panic:p=NaN",               // NaN
		"panic:p=0.6,stall:p=0.6",   // sum > 1
	}
	for _, spec := range bad {
		if _, err := ParseFaultPlan(spec, 0); err == nil {
			t.Errorf("spec %q: want parse error, got nil", spec)
		}
	}
}

// KindFor is a pure function of (plan seed, trial): placement must
// not drift between calls, must change with the seed, and must hit
// roughly the configured fraction of trials.
func TestFaultPlanKindFor(t *testing.T) {
	plan := &FaultPlan{Seed: 3, PPanic: 0.05, PStall: 0.05, PBuildErr: 0.05}
	counts := map[FaultKind]int{}
	const n = 20000
	for i := range n {
		k := plan.KindFor(i)
		if k != plan.KindFor(i) {
			t.Fatalf("trial %d: KindFor is not stable", i)
		}
		counts[k]++
	}
	for _, k := range []FaultKind{FaultPanic, FaultStall, FaultBuildErr} {
		// 5% of 20000 = 1000 expected; a 3-sigma band is ±~92.
		if c := counts[k]; c < 800 || c > 1200 {
			t.Errorf("kind %d hit %d/%d trials, want ≈1000", k, c, n)
		}
	}
	other := &FaultPlan{Seed: 4, PPanic: 0.05, PStall: 0.05, PBuildErr: 0.05}
	same := 0
	for i := range n {
		if plan.KindFor(i) != FaultNone && plan.KindFor(i) == other.KindFor(i) {
			same++
		}
	}
	if same > n/100 {
		t.Errorf("plans with different seeds agree on %d faulted trials — placement ignores the seed?", same)
	}
	if (&FaultPlan{Seed: 1}).KindFor(5) != FaultNone {
		t.Error("zero-probability plan injected a fault")
	}
}

// The tentpole differential: the same fault plan produces the same
// aggregate JSON — injected panics, stalls, builder errors, messages
// and all — at every worker count, lane width, the legacy per-trial
// path, and across a sharded merge.
func TestFaultDifferentialAcrossPathsAndShards(t *testing.T) {
	g, sa, sb := testGraph(t)
	for _, name := range []string{"whiteboard", "sweep"} {
		base := Batch{
			Graph: g, StartA: sa, StartB: sb,
			Algorithm: name, Delta: g.MinDegree(),
			Trials: 300, Seed: 11, MaxRounds: 1 << 22,
			Faults: &FaultPlan{Seed: 5, PPanic: 0.02, PStall: 0.02, PBuildErr: 0.02},
		}
		var ref []byte
		for _, workers := range []int{1, 4, 16} {
			for _, width := range []int{-1, 1, 8} {
				b := base
				b.Workers = workers
				b.LaneWidth = width
				agg, err := RunStreaming(t.Context(), b)
				if err != nil {
					t.Fatalf("%s workers=%d width=%d: %v", name, workers, width, err)
				}
				blob, err := json.Marshal(agg)
				if err != nil {
					t.Fatal(err)
				}
				if ref == nil {
					ref = blob
					if agg.Errors == 0 {
						t.Fatalf("%s: fault plan injected nothing at these probabilities", name)
					}
					if len(agg.FirstErrors) == 0 {
						t.Fatalf("%s: errors occurred but FirstErrors is empty", name)
					}
					continue
				}
				if string(blob) != string(ref) {
					t.Errorf("%s workers=%d width=%d: faulted aggregate differs:\n%s\nreference: %s",
						name, workers, width, blob, ref)
				}
			}
		}
		// Sharded: run each shard separately, merge, aggregate.
		var parts []*Reducer
		const shards = 3
		for i := range shards {
			b := base
			b.ShardIndex, b.ShardCount = i, shards
			r, err := RunReduced(t.Context(), b)
			if err != nil {
				t.Fatalf("%s shard %d: %v", name, i, err)
			}
			parts = append(parts, r)
		}
		blob, err := json.Marshal(Merge(parts...).Aggregate(base))
		if err != nil {
			t.Fatal(err)
		}
		if string(blob) != string(ref) {
			t.Errorf("%s: sharded merge of faulted batch differs:\n%s\nreference: %s", name, blob, ref)
		}
	}
}

// Injected fault messages surface in FirstErrors with their global
// trial indices, keyed by the lowest-index occurrences.
func TestFaultFirstErrorsNameTheirTrials(t *testing.T) {
	g, sa, sb := testGraph(t)
	b := Batch{
		Graph: g, StartA: sa, StartB: sb,
		Algorithm: "sweep", Delta: g.MinDegree(),
		Trials: 400, Seed: 11, MaxRounds: 1 << 22,
		Faults: &FaultPlan{Seed: 5, PPanic: 0.03, PBuildErr: 0.03},
	}
	agg, err := RunStreaming(t.Context(), b)
	if err != nil {
		t.Fatal(err)
	}
	if len(agg.FirstErrors) == 0 {
		t.Fatal("no FirstErrors despite injected faults")
	}
	if len(agg.FirstErrors) > maxFirstErrors {
		t.Fatalf("FirstErrors carries %d entries, cap is %d", len(agg.FirstErrors), maxFirstErrors)
	}
	// Reconstruct the expected lowest faulted trials from the plan.
	var want []string
	for trial := 0; trial < b.Trials && len(want) < maxFirstErrors; trial++ {
		switch b.Faults.KindFor(trial) {
		case FaultPanic:
			want = append(want, sprintfTrialErr(trial, "sim: trial panicked: fault injection: panic at trial", trial))
		case FaultBuildErr:
			want = append(want, sprintfTrialErr(trial, "fault injection: builder error at trial", trial))
		}
	}
	if len(agg.FirstErrors) != len(want) {
		t.Fatalf("FirstErrors = %q, want %d entries %q", agg.FirstErrors, len(want), want)
	}
	for i, got := range agg.FirstErrors {
		if got != want[i] {
			t.Errorf("FirstErrors[%d] = %q, want %q", i, got, want[i])
		}
	}
}

func sprintfTrialErr(trial int, prefix string, faultTrial int) string {
	return "trial " + strconv.Itoa(trial) + ": " + prefix + " " + strconv.Itoa(faultTrial)
}

// Fault injection interposes on steppers, so a batch that cannot take
// the stepper path must reject a fault plan instead of silently
// running clean.
func TestFaultPlanRequiresStepperPath(t *testing.T) {
	g, sa, sb := testGraph(t)
	b := Batch{
		Graph: g, StartA: sa, StartB: sb,
		Algorithm: "whiteboard", Delta: g.MinDegree(),
		Trials: 4, Seed: 1, MaxRounds: 1 << 22,
		ForceProgramPath: true,
		Faults:           &FaultPlan{Seed: 1, PPanic: 0.5},
	}
	if _, err := Run(t.Context(), b); err == nil || !strings.Contains(err.Error(), "stepper path") {
		t.Errorf("ForceProgramPath + Faults: got err %v, want stepper-path rejection", err)
	}
	b.ForceProgramPath = false
	b.Faults = &FaultPlan{Seed: 1, PPanic: 2}
	if _, err := Run(t.Context(), b); err == nil {
		t.Error("invalid fault probability passed batch validation")
	}
}
