package engine

import (
	"encoding/json"
	"errors"
	"math/rand/v2"
	"strings"
	"sync"
	"testing"

	"fnr/internal/algo"
	"fnr/internal/graph"

	_ "fnr/internal/algo/paper"
	_ "fnr/internal/baseline"
)

func testGraph(t *testing.T) (*graph.Graph, graph.Vertex, graph.Vertex) {
	t.Helper()
	rng := rand.New(rand.NewPCG(11, 12))
	g, err := graph.PlantedMinDegree(128, 40, rng)
	if err != nil {
		t.Fatal(err)
	}
	sa := graph.Vertex(0)
	return g, sa, g.Adj(sa)[0]
}

// The tentpole guarantee: the same batch seed produces byte-identical
// JSON aggregates at 1 worker and at many workers.
func TestDeterminismAcrossWorkers(t *testing.T) {
	g, sa, sb := testGraph(t)
	for _, name := range []string{"whiteboard", "sweep", "staywalk"} {
		base := Batch{
			Graph: g, StartA: sa, StartB: sb,
			Algorithm: name, Delta: g.MinDegree(),
			Trials: 40, Seed: 99, MaxRounds: 1 << 22,
		}
		var blobs [][]byte
		for _, workers := range []int{1, 8} {
			b := base
			b.Workers = workers
			agg, err := Run(t.Context(), b)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			blob, err := json.Marshal(agg)
			if err != nil {
				t.Fatal(err)
			}
			blobs = append(blobs, blob)
		}
		if string(blobs[0]) != string(blobs[1]) {
			t.Errorf("%s: aggregates differ across worker counts:\n1: %s\n8: %s", name, blobs[0], blobs[1])
		}
	}
}

func TestOutcomesMatchTrialSeeds(t *testing.T) {
	g, sa, sb := testGraph(t)
	b := Batch{
		Graph: g, StartA: sa, StartB: sb,
		Algorithm: "sweep", Trials: 10, Seed: 5, Workers: 4,
	}
	outcomes, err := RunOutcomes(t.Context(), b)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 10 {
		t.Fatalf("got %d outcomes", len(outcomes))
	}
	// Each trial must be individually reproducible: re-running trial i
	// as a 1-trial batch with the pre-derived seed is not possible
	// (seeds derive from the index), but re-running the whole batch
	// serially must reproduce every entry.
	b.Workers = 1
	again, err := RunOutcomes(t.Context(), b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range outcomes {
		if outcomes[i] != again[i] {
			t.Fatalf("trial %d differs across runs: %+v vs %+v", i, outcomes[i], again[i])
		}
	}
	for _, o := range outcomes {
		if !o.Met {
			t.Fatalf("sweep on adjacent starts must meet: %+v", o)
		}
	}
}

// Capability mismatch: "noboard" declares NeedsDelta, so a batch
// without Delta must fail up front with the sentinel error.
func TestCapabilityMismatch(t *testing.T) {
	g, sa, sb := testGraph(t)
	_, err := Run(t.Context(), Batch{
		Graph: g, StartA: sa, StartB: sb,
		Algorithm: "noboard", Trials: 4, Seed: 1,
	})
	if !errors.Is(err, algo.ErrDeltaRequired) {
		t.Fatalf("err = %v, want ErrDeltaRequired", err)
	}
}

func TestUnknownAlgorithm(t *testing.T) {
	g, sa, sb := testGraph(t)
	_, err := Run(t.Context(), Batch{Graph: g, StartA: sa, StartB: sb, Algorithm: "nope", Trials: 1})
	if !errors.Is(err, algo.ErrUnknown) {
		t.Fatalf("err = %v, want ErrUnknown", err)
	}
}

func TestBatchValidation(t *testing.T) {
	g, sa, sb := testGraph(t)
	cases := []Batch{
		{Graph: nil, Algorithm: "sweep", Trials: 1},
		{Graph: g, StartA: sa, StartB: sb, Algorithm: "sweep", Trials: 0},
		{Graph: g, StartA: -1, StartB: sb, Algorithm: "sweep", Trials: 1},
		{Graph: g, StartA: sa, StartB: graph.Vertex(g.N()), Algorithm: "sweep", Trials: 1},
	}
	for i, b := range cases {
		if _, err := Run(t.Context(), b); err == nil {
			t.Errorf("case %d: invalid batch accepted", i)
		}
	}
}

// Equal start vertices would turn every trial into a round-0 meeting
// and silently skew aggregates; the batch must be rejected up front
// with an error that names the problem.
func TestEqualStartsRejected(t *testing.T) {
	g, sa, _ := testGraph(t)
	_, err := Run(t.Context(), Batch{Graph: g, StartA: sa, StartB: sa, Algorithm: "sweep", Trials: 4, Seed: 1})
	if err == nil {
		t.Fatal("StartA == StartB accepted")
	}
	if !strings.Contains(err.Error(), "distinct start vertices") {
		t.Fatalf("err = %v, want a distinct-start-vertices error", err)
	}
	// RunOutcomes goes through the same validation.
	if _, err := RunOutcomes(t.Context(), Batch{Graph: g, StartA: sa, StartB: sa, Algorithm: "sweep", Trials: 4, Seed: 1}); err == nil {
		t.Fatal("RunOutcomes accepted StartA == StartB")
	}
}

func TestTrialsScratchPerWorker(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var mu sync.Mutex
		scratches := map[*int]bool{}
		got := TrialsScratch(workers, 40,
			func() *int {
				s := new(int)
				mu.Lock()
				scratches[s] = true
				mu.Unlock()
				return s
			},
			func(s *int, i int) int {
				*s++ // scratch is worker-private: no lock needed
				return i * i
			})
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d", workers, i, v)
			}
		}
		if len(scratches) > max(workers, 1) {
			t.Fatalf("workers=%d: %d scratches allocated, want ≤ %d (one per worker)", workers, len(scratches), workers)
		}
		total := 0
		for s := range scratches {
			total += *s
		}
		if total != 40 {
			t.Fatalf("workers=%d: scratch uses sum to %d, want 40", workers, total)
		}
	}
}

func TestTrialSeed(t *testing.T) {
	seen := map[uint64]bool{}
	for batch := uint64(0); batch < 4; batch++ {
		for trial := 0; trial < 1000; trial++ {
			s := TrialSeed(batch, trial)
			if seen[s] {
				t.Fatalf("seed collision at batch %d trial %d", batch, trial)
			}
			seen[s] = true
		}
	}
	if TrialSeed(7, 3) != TrialSeed(7, 3) {
		t.Fatal("TrialSeed not deterministic")
	}
}

func TestTrialsOrdering(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		got := Trials(workers, 50, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d", workers, i, v)
			}
		}
	}
	if Trials(4, 0, func(int) int { return 0 }) != nil {
		t.Fatal("empty Trials should return nil")
	}
}

func TestDistOf(t *testing.T) {
	if d := DistOf(nil); d != (Dist{}) {
		t.Fatalf("empty dist = %+v", d)
	}
	d := DistOf([]float64{1, 2, 3, 4})
	if d.Mean != 2.5 || d.Median != 2.5 || d.Min != 1 || d.Max != 4 {
		t.Fatalf("dist = %+v", d)
	}
}

func TestAggregateCounts(t *testing.T) {
	g, sa, sb := testGraph(t)
	// walkpair with a tiny budget: misses must be counted as failures
	// and excluded from the rounds distribution.
	agg, err := Run(t.Context(), Batch{
		Graph: g, StartA: sa, StartB: sb,
		Algorithm: "walkpair", Trials: 8, Seed: 3, MaxRounds: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Met+agg.Failures != agg.Trials {
		t.Fatalf("met %d + failures %d != trials %d", agg.Met, agg.Failures, agg.Trials)
	}
	if agg.Met == agg.Trials {
		t.Fatal("1-round budget should force some misses")
	}
}

// The chunked-claim rewrite of the worker pool must preserve the
// output layout exactly: out[i] == f(i) for every index, at any
// worker count, across chunk-boundary edge cases (satellite of the
// lockstep PR — chunk claiming changes which worker runs an index,
// never where its result lands).
func TestTrialsChunkedClaimOrdering(t *testing.T) {
	sizes := []int{1, claimChunk - 1, claimChunk, claimChunk + 1, 5*claimChunk + 17}
	for _, workers := range []int{1, 3, 7, 16} {
		for _, n := range sizes {
			got := Trials(workers, n, func(i int) int { return 3*i + 1 })
			if len(got) != n {
				t.Fatalf("workers=%d n=%d: %d results", workers, n, len(got))
			}
			for i, v := range got {
				if v != 3*i+1 {
					t.Fatalf("workers=%d n=%d: got[%d] = %d, want %d", workers, n, i, v, 3*i+1)
				}
			}
		}
	}
	// chunkedWorkers itself: every index processed exactly once, and
	// one scratch per live worker.
	for _, workers := range []int{1, 4} {
		n := 3*claimChunk + 5
		var mu sync.Mutex
		seen := make([]int, n)
		scratches := chunkedWorkers(t.Context(), workers, n, func() int { return 0 }, func(_ int, from, to int) {
			mu.Lock()
			defer mu.Unlock()
			for i := from; i < to; i++ {
				seen[i]++
			}
		})
		if len(scratches) != workers {
			t.Fatalf("workers=%d: %d scratches", workers, len(scratches))
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d claimed %d times", workers, i, c)
			}
		}
	}
}
