package engine

import (
	"encoding/json"
	"slices"
	"testing"
)

// Sharding contract: shard i of k runs global trials
// [Trials·i/k, Trials·(i+1)/k) with global-index seeds, so the k
// shards together execute exactly the unsharded batch — concatenated
// outcomes identical, merged reducers aggregating to byte-identical
// JSON (complete merges drop the span metadata).
func TestShardedOutcomesConcatenateToUnsharded(t *testing.T) {
	g, sa, sb := testGraph(t)
	base := Batch{
		Graph: g, StartA: sa, StartB: sb,
		Algorithm: "whiteboard", Delta: g.MinDegree(),
		Trials: 23, Seed: 77, MaxRounds: 1 << 22,
	}
	want, err := RunOutcomes(t.Context(), base)
	if err != nil {
		t.Fatal(err)
	}
	// 5 does not divide 23, so shard sizes differ — the rounding in
	// the range split must still partition [0, 23) exactly.
	for _, k := range []int{2, 5, 23} {
		var got []Outcome
		for i := 0; i < k; i++ {
			b := base
			b.ShardIndex, b.ShardCount = i, k
			out, err := RunOutcomes(t.Context(), b)
			if err != nil {
				t.Fatalf("shard %d/%d: %v", i, k, err)
			}
			lo, hi := b.shardSpan()
			if len(out) != hi-lo {
				t.Fatalf("shard %d/%d: %d outcomes for range [%d,%d)", i, k, len(out), lo, hi)
			}
			agg := AggregateOutcomes(b, out)
			if !slices.Equal(agg.TrialSpans, []TrialSpan{{Lo: lo, Hi: hi}}) {
				t.Fatalf("shard %d/%d: aggregate spans %v", i, k, agg.TrialSpans)
			}
			got = append(got, out...)
		}
		if !slices.Equal(got, want) {
			t.Fatalf("k=%d: concatenated shard outcomes differ from the unsharded batch", k)
		}
	}
}

func TestShardedReducersMergeToUnshardedAggregate(t *testing.T) {
	g, sa, sb := testGraph(t)
	base := Batch{
		Graph: g, StartA: sa, StartB: sb,
		Algorithm: "sweep", Delta: g.MinDegree(),
		Trials: 30, Seed: 5, MaxRounds: 1 << 22,
	}
	want, err := RunStreaming(t.Context(), base)
	if err != nil {
		t.Fatal(err)
	}
	if want.TrialSpans != nil {
		t.Fatalf("unsharded aggregate carries spans %v", want.TrialSpans)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	const k = 4
	parts := make([]*Reducer, k)
	for i := range parts {
		b := base
		b.ShardIndex, b.ShardCount = i, k
		if parts[i], err = RunReduced(t.Context(), b); err != nil {
			t.Fatalf("shard %d/%d: %v", i, k, err)
		}
	}
	// A partial merge must report its (coalesced) coverage: shards 0
	// and 1 are adjacent and fuse; shard 3 stays a separate span.
	partial := Merge(parts[0], parts[3], parts[1])
	wantSpans := []TrialSpan{{Lo: 0, Hi: 15}, {Lo: 22, Hi: 30}}
	if !slices.Equal(partial.Spans(), wantSpans) {
		t.Fatalf("partial merge spans %v, want %v", partial.Spans(), wantSpans)
	}
	if agg := partial.Aggregate(base); !slices.Equal(agg.TrialSpans, wantSpans) {
		t.Fatalf("partial aggregate spans %v, want %v", agg.TrialSpans, wantSpans)
	}
	// The complete merge is byte-identical to the unsharded run —
	// spans dropped, multiset mean partition-independent.
	got := Merge(parts...).Aggregate(base)
	gotJSON, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("merged shards differ from unsharded run:\n%s\n%s", gotJSON, wantJSON)
	}
	if !got.Equal(want) {
		t.Fatal("Aggregate.Equal disagrees with the JSON comparison")
	}
}

func TestShardValidation(t *testing.T) {
	g, sa, sb := testGraph(t)
	base := Batch{
		Graph: g, StartA: sa, StartB: sb,
		Algorithm: "sweep", Trials: 10, Seed: 1,
	}
	for _, bad := range []struct{ index, count int }{
		{0, -1}, {-1, 2}, {2, 2}, {1, 0}, {1, 1},
	} {
		b := base
		b.ShardIndex, b.ShardCount = bad.index, bad.count
		if _, err := RunOutcomes(t.Context(), b); err == nil {
			t.Errorf("shard %d/%d accepted", bad.index, bad.count)
		}
	}
	// Count 1 with index 0 is the explicit unsharded spelling.
	b := base
	b.ShardCount = 1
	if _, err := RunOutcomes(t.Context(), b); err != nil {
		t.Errorf("shard 0/1 rejected: %v", err)
	}
}
