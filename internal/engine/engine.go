// Package engine is the deterministic batch-trial runner: it fans N
// independent rendezvous trials across a worker pool and streams the
// per-trial results into compact aggregates (success rate, round and
// move distributions). Each trial's PCG seed is derived from the
// batch seed and the trial index alone, and aggregation runs over the
// trial-indexed outcome slice in index order, so a batch's Aggregate
// is bit-identical whether it ran on 1 worker or on GOMAXPROCS — the
// worker count changes wall-clock time only.
//
// The engine resolves strategies by name through the algo registry;
// anything registered there (the paper's algorithms, the baselines,
// or a third-party Spec) can be batched without the engine knowing
// its construction.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"fnr/internal/algo"
	"fnr/internal/core"
	"fnr/internal/graph"
	"fnr/internal/sim"
	"fnr/internal/stats"
)

// Batch describes one batch of independent trials: the same instance
// and strategy, Trials different derived seeds.
type Batch struct {
	// Graph is the shared instance (immutable, so safe to share
	// across workers). Required.
	Graph *graph.Graph
	// StartA and StartB are the agents' start vertices in the default
	// two-agent setting. Ignored when Scenario is set.
	StartA, StartB graph.Vertex
	// Scenario, if non-nil, runs the batch as a k-agent, delayed-
	// wakeup scenario (see sim.Scenario): per-agent starts and wake
	// delays replace StartA/StartB, and the meeting predicate is
	// all-k gathered (or first-pair). A scenario that is observably
	// the legacy setting — k=2, zero delays, all-gather — is folded
	// into StartA/StartB before anything observes it, so its
	// aggregate and checkpoint identity are byte-identical to the
	// equivalent legacy batch. k>2 requires the stepper path and a
	// strategy with a team builder (the oblivious baselines; the
	// paper's pairwise algorithms reject k>2 loudly).
	Scenario *sim.Scenario
	// Algorithm names a registered strategy (see algo.Names).
	Algorithm string
	// Params overrides the algorithm constants (zero value selects
	// core.PracticalParams).
	Params core.Params
	// Delta is the minimum degree known to the agents (0 = unknown).
	Delta int
	// Trials is the number of independent runs. Required (> 0).
	Trials int
	// Seed is the batch seed; trial i runs with TrialSeed(Seed, i).
	Seed uint64
	// MaxRounds bounds each run (0 = the simulator default 4n²+1000).
	MaxRounds int64
	// Workers bounds trial parallelism (≤ 0 = GOMAXPROCS). It never
	// affects results, only wall-clock time.
	Workers int
	// ForceProgramPath runs the goroutine-backed Program path even
	// when the strategy provides steppers — a benchmarking and
	// diagnostics knob (benchengine times both paths with it; the
	// differential suite uses it to prove the paths byte-identical).
	// The zero value selects the goroutine-free stepper fast path
	// automatically whenever the spec has a stepper builder. Like
	// Workers, it must never affect results, only wall-clock time.
	ForceProgramPath bool
	// LaneWidth selects the lockstep lane width of the stepper fast
	// path: 0 = automatic (AutoLaneWidth of the graph size), ≥ 1 =
	// exactly that many resident trials per worker, < 0 = the legacy
	// one-trial-at-a-time stepper path (a diagnostics knob like
	// ForceProgramPath; the differential suite uses it to prove lane
	// widths byte-identical). It never affects results, only
	// wall-clock time and memory.
	LaneWidth int
	// ShardIndex and ShardCount split the batch's trial range across
	// independent processes: shard i of k runs only the global trial
	// indices [Trials·i/k, Trials·(i+1)/k). Per-trial seeds are still
	// derived from the global index, so the k shards together execute
	// exactly the trials the unsharded batch would, and merging their
	// reducers (Merge) reproduces the unsharded aggregate byte for
	// byte. ShardCount 0 or 1 means unsharded; a sharded aggregate
	// carries its coverage in TrialSpans.
	ShardIndex, ShardCount int
	// Faults, if non-nil, injects deterministic per-trial faults
	// (panics, stalls, builder errors) derived from the plan's seed
	// and the global trial index alone — the differential-test knob
	// for the engine's fault-tolerance layer. Fault injection wraps
	// steppers, so it requires the stepper fast path (prepare rejects
	// a faulted batch whose strategy lacks steppers, or that forces
	// the Program path). Like Workers and LaneWidth, the worker
	// count, lane width and shard split must never change a faulted
	// batch's aggregate.
	Faults *FaultPlan
}

// normalized folds a legacy-equivalent scenario (k=2, zero delays,
// all-gather) into the StartA/StartB pair fields: every public entry
// point applies it first, so such a batch is indistinguishable —
// aggregate bytes, checkpoint identity, execution path — from the
// same batch described the legacy way. Idempotent.
func (b Batch) normalized() Batch {
	if sc := b.Scenario; sc != nil {
		if sa, sb, ok := sc.LegacyPair(); ok {
			b.StartA, b.StartB = sa, sb
			b.Scenario = nil
		}
	}
	return b
}

// teamSize returns the batch's agent count (2 unless a scenario says
// otherwise).
func (b Batch) teamSize() int {
	if b.Scenario != nil {
		return b.Scenario.K()
	}
	return 2
}

// starts returns the batch's per-agent start vertices.
func (b Batch) starts() []graph.Vertex {
	if b.Scenario != nil {
		return b.Scenario.Starts
	}
	return []graph.Vertex{b.StartA, b.StartB}
}

// shardSpan resolves the batch's global trial range [lo, hi).
func (b Batch) shardSpan() (lo, hi int) {
	if b.ShardCount <= 1 {
		return 0, b.Trials
	}
	return b.Trials * b.ShardIndex / b.ShardCount, b.Trials * (b.ShardIndex + 1) / b.ShardCount
}

// sharded reports whether the batch covers only a shard of its trials.
func (b Batch) sharded() bool { return b.ShardCount > 1 }

// DefaultLaneWidth is the widest automatic lockstep lane: wide enough
// to amortize per-sweep overhead and stepper builds across resident
// trials. AutoLaneWidth narrows it on large graphs.
const DefaultLaneWidth = 8

// laneAutoBudget caps the summed per-trial working set the automatic
// lane width keeps resident per worker. Each interleaved trial
// touches O(n) state every sweep (dense Sample counters, whiteboard
// partitions, walker scratch), so widths whose combined footprint
// outgrows the cache run slower than the per-trial path — measured:
// width 8 at n = 65536 is ~6× slower than width 1 on one core.
const laneAutoBudget = 1 << 21

// AutoLaneWidth is the lockstep lane width a Batch with LaneWidth 0
// resolves to on a graph with n vertices: DefaultLaneWidth, narrowed
// so the resident trials' combined O(n) working set stays within a
// per-worker cache budget, and never below 1.
func AutoLaneWidth(n int) int {
	width := DefaultLaneWidth
	if per := 32 * n; per > 0 {
		if w := laneAutoBudget / per; w < width {
			width = w
		}
	}
	return max(width, 1)
}

// laneWidth resolves the batch's lockstep lane width (0 when the
// legacy per-trial stepper path was requested).
func (b Batch) laneWidth() int {
	switch {
	case b.LaneWidth == 0:
		n := 0
		if b.Graph != nil {
			n = b.Graph.N()
		}
		return AutoLaneWidth(n)
	case b.LaneWidth < 0:
		return 0
	}
	return b.LaneWidth
}

// Outcome is one trial reduced to what aggregation needs.
type Outcome struct {
	// Met reports whether the agents rendezvoused within the budget.
	Met bool
	// Rounds is the meeting round when Met, and the executed round
	// count otherwise.
	Rounds int64
	// Moves is the total number of edge traversals by all agents.
	Moves int64
	// Err reports a per-trial simulation failure (abort, builder
	// error, or an isolated panic); such trials count as failures,
	// not meetings.
	Err bool
	// Msg carries the failure detail when Err — the abort error,
	// builder error, or recovered panic message. It feeds
	// Aggregate.FirstErrors; Outcome stays comparable with ==.
	Msg string
}

// errOutcome reduces a trial-level failure to its Outcome.
func errOutcome(err error) Outcome { return Outcome{Err: true, Msg: err.Error()} }

// Dist summarizes a sample: mean, median, p95 and range. The zero
// value stands for an empty sample.
type Dist struct {
	Mean   float64 `json:"mean"`
	Median float64 `json:"median"`
	P95    float64 `json:"p95"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

// DistOf summarizes xs (in the given order — callers pass trial-index
// order so the floating-point accumulation is reproducible).
func DistOf(xs []float64) Dist {
	if len(xs) == 0 {
		return Dist{}
	}
	var s stats.Summary
	for _, x := range xs {
		s.Add(x)
	}
	return Dist{
		Mean:   s.Mean(),
		Median: stats.Median(xs),
		P95:    stats.Quantile(xs, 0.95),
		Min:    s.Min(),
		Max:    s.Max(),
	}
}

// Aggregate is a batch's streamed summary. It deliberately excludes
// the worker count and any timing: two runs of the same Batch must
// marshal to identical JSON regardless of parallelism.
type Aggregate struct {
	// Algorithm echoes the batch's strategy name.
	Algorithm string `json:"algorithm"`
	// Trials is the number of runs executed.
	Trials int `json:"trials"`
	// Seed echoes the batch seed.
	Seed uint64 `json:"seed"`
	// Scenario echoes the batch's k-agent/delayed-wakeup scenario, or
	// is omitted for the legacy two-agent setting (including folded
	// legacy-equivalent scenarios) — keeping legacy aggregate JSON
	// byte-identical to pre-scenario output.
	Scenario *ScenarioInfo `json:"scenario,omitempty"`
	// Met counts trials that rendezvoused; Failures = Trials - Met
	// (budget exhaustions and erroring trials alike).
	Met      int `json:"met"`
	Failures int `json:"failures"`
	// Errors counts trials that faulted (program panic) rather than
	// merely exhausting their budget; always ≤ Failures.
	Errors int `json:"errors"`
	// SuccessRate is Met / Trials.
	SuccessRate float64 `json:"success_rate"`
	// Rounds summarizes the meeting round over met trials only.
	Rounds Dist `json:"rounds"`
	// Moves summarizes total edge traversals over non-erroring
	// trials (an erroring trial has no meaningful move count).
	Moves Dist `json:"moves"`
	// FirstErrors lists the first few distinct error messages of the
	// batch — each with its lowest erroring trial index, "trial N:
	// msg", ordered by that index — so a sea of failures surfaces its
	// cause without storing per-trial detail. Keying by lowest trial
	// index (never arrival order) keeps the list byte-identical
	// regardless of worker count, lane width or shard split, and
	// exact under reducer merges. Omitted when no trial erred.
	FirstErrors []string `json:"first_errors,omitempty"`
	// TrialSpans lists the global trial-index ranges the aggregate
	// covers when the batch ran sharded (several ranges after merging
	// non-adjacent shard reducers). It is omitted — keeping the JSON
	// byte-identical to pre-shard output — for unsharded batches and
	// for complete merges covering all of [0, Trials).
	TrialSpans []TrialSpan `json:"trial_spans,omitempty"`
}

// ScenarioInfo is the aggregate's echo of a batch scenario — the
// JSON-facing mirror of sim.Scenario, kept separate so the wire shape
// is explicit and stable.
type ScenarioInfo struct {
	// Agents is the team size k.
	Agents int `json:"agents"`
	// Starts lists the per-agent start vertices.
	Starts []int `json:"starts"`
	// WakeDelays lists the per-agent wake delays; omitted when every
	// agent wakes at round 0.
	WakeDelays []int64 `json:"wake_delays,omitempty"`
	// Meet is "firstpair" under the first-pair meeting predicate and
	// omitted for the default all-k gathering.
	Meet string `json:"meet,omitempty"`
}

// Equal reports whether two scenario echoes are identical.
func (s *ScenarioInfo) Equal(o *ScenarioInfo) bool {
	if s == nil || o == nil {
		return s == o
	}
	return s.Agents == o.Agents && s.Meet == o.Meet &&
		slices.Equal(s.Starts, o.Starts) &&
		slices.Equal(s.WakeDelays, o.WakeDelays)
}

// scenarioInfo builds the aggregate's scenario echo (nil for the
// legacy setting). The caller has normalized b.
func (b Batch) scenarioInfo() *ScenarioInfo {
	sc := b.Scenario
	if sc == nil {
		return nil
	}
	info := &ScenarioInfo{Agents: sc.K(), Starts: make([]int, sc.K())}
	for i, s := range sc.Starts {
		info.Starts[i] = int(s)
	}
	for _, d := range sc.WakeDelays {
		if d != 0 {
			info.WakeDelays = slices.Clone(sc.WakeDelays)
			break
		}
	}
	if sc.MeetFirstPair {
		info.Meet = "firstpair"
	}
	return info
}

// Equal reports whether two aggregates are field-for-field identical
// (the TrialSpans slice made Aggregate non-comparable with ==).
func (a *Aggregate) Equal(o *Aggregate) bool {
	if a == nil || o == nil {
		return a == o
	}
	return a.Algorithm == o.Algorithm && a.Trials == o.Trials && a.Seed == o.Seed &&
		a.Scenario.Equal(o.Scenario) &&
		a.Met == o.Met && a.Failures == o.Failures && a.Errors == o.Errors &&
		a.SuccessRate == o.SuccessRate && a.Rounds == o.Rounds && a.Moves == o.Moves &&
		slices.Equal(a.FirstErrors, o.FirstErrors) &&
		slices.Equal(a.TrialSpans, o.TrialSpans)
}

// TrialSeed derives trial i's simulation seed from the batch seed.
// The mix is SplitMix64 over an odd-multiple offset, so neighboring
// trial indices and neighboring batch seeds both produce
// well-separated streams.
func TrialSeed(batchSeed uint64, trial int) uint64 {
	x := batchSeed + (uint64(trial)+1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Trials fans f(0..n-1) across a pool of `workers` goroutines
// (≤ 0 = GOMAXPROCS) and returns the results indexed by trial. f must
// be safe for concurrent calls with distinct indices.
func Trials[T any](workers, n int, f func(trial int) T) []T {
	return TrialsScratch(workers, n,
		func() struct{} { return struct{}{} },
		func(_ struct{}, i int) T { return f(i) })
}

// TrialsScratch is Trials with per-worker scratch: every worker
// goroutine calls newScratch once and passes the value to each of its
// f invocations, so reusable trial state (sim.TrialContext on the
// stepper fast path) is allocated per worker, not per trial, without
// any locking. f must be safe for concurrent calls with distinct
// (scratch, trial) pairs; scratch values must never affect results.
func TrialsScratch[S, T any](workers, n int, newScratch func() S, f func(scratch S, trial int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	chunkedWorkers(context.Background(), workers, n, newScratch, func(scratch S, from, to int) {
		for i := from; i < to; i++ {
			out[i] = f(scratch, i)
		}
	})
	return out
}

// claimChunk is the trial-index chunk size workers claim per atomic
// operation: large enough that the shared cursor is off the hot path
// (one contended add per 64 trials instead of per trial), small
// enough that a straggling chunk can't idle the other workers of an
// unbalanced batch for long.
const claimChunk = 64

// chunkedWorkers fans the index range [0, n) across a pool of
// `workers` goroutines (≤ 0 = GOMAXPROCS) that claim claimChunk-sized
// chunks from a shared cursor, calling run(scratch, from, to) for
// each claimed chunk, and returns every worker's scratch once all
// work is done (the streaming reducers merge them). Chunk claiming
// partitions [0, n) exactly — every index is processed once — and
// which worker claims which chunk must never affect results.
//
// Cancelling ctx stops the pool at the next chunk-claim boundary:
// chunks already claimed run to completion (a cancel never tears a
// trial mid-flight), no further chunks are claimed, and every worker
// goroutine exits before chunkedWorkers returns — cancellation leaks
// nothing. The ctx check is free for context.Background() (no Done
// channel means no Err call per chunk).
func chunkedWorkers[S any](ctx context.Context, workers, n int, newScratch func() S, run func(scratch S, from, to int)) []S {
	if n <= 0 {
		return nil
	}
	cancellable := ctx.Done() != nil
	stopped := func() bool { return cancellable && ctx.Err() != nil }
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// The serial fast path claims its chunks from a plain loop —
		// no atomics — but honors the same chunk-boundary cancel.
		scratch := newScratch()
		for from := 0; from < n; from += claimChunk {
			if stopped() {
				break
			}
			run(scratch, from, min(from+claimChunk, n))
		}
		return []S{scratch}
	}
	scratches := make([]S, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			scratch := newScratch()
			scratches[w] = scratch
			for !stopped() {
				from := int(next.Add(claimChunk)) - claimChunk
				if from >= n {
					return
				}
				run(scratch, from, min(from+claimChunk, n))
			}
		}(w)
	}
	wg.Wait()
	return scratches
}

// RunOutcomes executes the batch and returns the per-trial outcomes
// in trial order — the lower-level entry point for callers (the
// experiment harness) that need more than the standard aggregate.
// When the strategy provides steppers (and ForceProgramPath is off)
// the trials run on the goroutine-free stepper path, each worker
// reusing one sim.TrialContext across all its trials; otherwise they
// run on the classic goroutine-backed Program path. The two paths
// produce byte-identical outcomes.
//
// Cancelling ctx stops the run at the next chunk boundary and
// returns (nil, ctx.Err()): an outcome slice cannot say which trials
// it covers, so partial results are the reducer API's job
// (RunReduced returns the completed state plus its TrialSpans).
func RunOutcomes(ctx context.Context, b Batch) ([]Outcome, error) {
	b = b.normalized()
	spec, opts, err := b.prepare()
	if err != nil {
		return nil, err
	}
	lo, hi := b.shardSpan()
	out := make([]Outcome, hi-lo)
	switch {
	case !b.useSteppers(spec):
		chunkedWorkers(ctx, b.Workers, hi-lo,
			func() struct{} { return struct{}{} },
			func(_ struct{}, from, to int) {
				for i := from; i < to; i++ {
					out[i] = runTrial(b, spec, opts, lo+i)
				}
			})
	case b.laneWidth() > 0:
		runLanes(ctx, b, spec, opts, b.laneWidth(), lo, hi,
			func() struct{} { return struct{}{} },
			func(_ struct{}, trial int, o Outcome) { out[trial-lo] = o },
			nil)
	default: // legacy one-trial-at-a-time stepper path
		chunkedWorkers(ctx, b.Workers, hi-lo, newStepperWorker,
			func(w *stepperWorker, from, to int) {
				for i := from; i < to; i++ {
					out[i] = w.run(b, spec, opts, lo+i)
				}
			})
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// laneWorker couples one worker's lockstep lane to its outcome sink.
type laneWorker[S any] struct {
	lane *sim.TrialLane
	sink S
}

// runLanes executes trials [lo, hi) of the batch on the lockstep
// lane path: a pool of workers, each owning one sim.TrialLane of the
// given width and one sink, claiming trial-index chunks and
// streaming each finished trial's Outcome into the worker's sink via
// emit. Emitted trial indices are global (shard-offset), matching
// the seeds. After each chunk, cover (if non-nil) receives the
// chunk's completed global range — [from, from) when a cancel struck
// before any arm, the full chunk otherwise; the reducer path records
// its TrialSpans coverage there. It returns every worker's sink
// (trial-indexed sinks write into shared trial-indexed storage;
// reducer sinks get merged by the caller). Lane width, worker count
// and chunk assignment never affect which Outcome a trial produces.
//
// Cancelling ctx stops each lane at its next refill boundary (via
// lane.Stop): resident trials drain, nothing new is armed, and the
// pool exits at the chunk-claim boundary.
func runLanes[S any](ctx context.Context, b Batch, spec algo.Spec, opts algo.BuildOpts, width, lo, hi int, newSink func() S, emit func(sink S, trial int, o Outcome), cover func(sink S, from, to int)) []S {
	cfg := trialConfig(b, spec, 0) // per-trial seeds come from seedOf
	seedOf := func(t int) uint64 { return TrialSeed(b.Seed, t) }
	build := func() ([]sim.Stepper, error) {
		return spec.Team(opts, b.teamSize())
	}
	if b.Faults != nil {
		build = b.Faults.wrapBuilder(build)
	}
	workers := chunkedWorkers(ctx, b.Workers, hi-lo, func() *laneWorker[S] {
		w := &laneWorker[S]{
			lane: sim.NewTeamLane(width, build),
			sink: newSink(),
		}
		if b.Faults != nil {
			w.lane.Hook = faultHook{b.Faults}
		}
		if ctx.Done() != nil {
			w.lane.Stop = func() bool { return ctx.Err() != nil }
		}
		return w
	}, func(w *laneWorker[S], from, to int) {
		wm := w.lane.Run(cfg, seedOf, lo+from, lo+to, func(trial int, res *sim.Result, err error) {
			emit(w.sink, trial, OutcomeOf(res, err))
		})
		if cover != nil {
			cover(w.sink, lo+from, wm)
		}
	})
	sinks := make([]S, len(workers))
	for i, w := range workers {
		w.lane.Close()
		sinks[i] = w.sink
	}
	return sinks
}

// useSteppers reports whether the batch takes the stepper fast path.
func (b Batch) useSteppers(spec algo.Spec) bool {
	return spec.BuildSteppers != nil && !b.ForceProgramPath
}

// Run executes the batch and streams the outcomes into an Aggregate.
// Cancelling ctx returns (nil, ctx.Err()); see RunOutcomes.
func Run(ctx context.Context, b Batch) (*Aggregate, error) {
	outcomes, err := RunOutcomes(ctx, b)
	if err != nil {
		return nil, err
	}
	return AggregateOutcomes(b, outcomes), nil
}

// AggregateOutcomes reduces trial-ordered outcomes to the batch
// summary. For a sharded batch the summary covers the shard's trials
// only and says so in TrialSpans.
func AggregateOutcomes(b Batch, outcomes []Outcome) *Aggregate {
	b = b.normalized()
	agg := &Aggregate{Algorithm: b.Algorithm, Trials: len(outcomes), Seed: b.Seed, Scenario: b.scenarioInfo()}
	if b.sharded() {
		lo, hi := b.shardSpan()
		agg.TrialSpans = []TrialSpan{{Lo: lo, Hi: hi}}
	}
	lo, _ := b.shardSpan()
	var el errLog
	metRounds := make([]float64, 0, len(outcomes))
	moves := make([]float64, 0, len(outcomes))
	for i, o := range outcomes {
		if o.Met {
			agg.Met++
			metRounds = append(metRounds, float64(o.Rounds))
		}
		if o.Err {
			agg.Errors++
			el.note(lo+i, o.Msg)
			continue
		}
		moves = append(moves, float64(o.Moves))
	}
	agg.FirstErrors = el.list()
	agg.Failures = agg.Trials - agg.Met
	if agg.Trials > 0 {
		agg.SuccessRate = float64(agg.Met) / float64(agg.Trials)
	}
	agg.Rounds = DistOf(metRounds)
	agg.Moves = DistOf(moves)
	return agg
}

// prepare validates the batch and resolves its strategy, including a
// pre-flight program build so capability mismatches (for example
// "noboard" without Delta) fail before any worker starts.
func (b Batch) prepare() (algo.Spec, algo.BuildOpts, error) {
	var spec algo.Spec
	var opts algo.BuildOpts
	if b.Graph == nil {
		return spec, opts, errors.New("engine: nil graph")
	}
	if b.Trials <= 0 {
		return spec, opts, fmt.Errorf("engine: batch needs Trials > 0, got %d", b.Trials)
	}
	if b.ShardCount < 0 || b.ShardIndex < 0 || b.ShardIndex >= max(b.ShardCount, 1) {
		return spec, opts, fmt.Errorf("engine: shard %d/%d invalid (need 0 ≤ index < count)", b.ShardIndex, b.ShardCount)
	}
	n := graph.Vertex(b.Graph.N())
	if sc := b.Scenario; sc != nil {
		if err := sc.Validate(n); err != nil {
			return spec, opts, fmt.Errorf("engine: %w", err)
		}
	} else if b.StartA < 0 || b.StartA >= n || b.StartB < 0 || b.StartB >= n {
		return spec, opts, fmt.Errorf("engine: start vertices (%d, %d) out of range [0,%d)", b.StartA, b.StartB, n)
	}
	// The paper's problem is defined for distinct start vertices;
	// colliding starts would "meet" at round 0 in every trial and
	// silently skew the aggregates toward instant success. The k-way
	// check names the colliding agents (agents a and b in the legacy
	// pair).
	starts := b.starts()
	for i, si := range starts {
		for j := i + 1; j < len(starts); j++ {
			if si == starts[j] {
				return spec, opts, fmt.Errorf("engine: agents %s and %s both start at vertex %d; the rendezvous problem requires distinct start vertices",
					sim.AgentName(i), sim.AgentName(j), si)
			}
		}
	}
	spec, err := algo.Lookup(b.Algorithm)
	if err != nil {
		return spec, opts, fmt.Errorf("engine: %w", err)
	}
	if k := b.teamSize(); k > 2 {
		if !b.useSteppers(spec) {
			// The Program path hosts exactly two direct-style agents;
			// k-agent teams exist only in stepper form.
			return spec, opts, fmt.Errorf("engine: %d-agent scenarios require the stepper path (strategy without steppers, or ForceProgramPath)", k)
		}
		if !spec.SupportsTeam() {
			return spec, opts, fmt.Errorf("engine: algo %q does not support %d agents (two-agent strategy)", spec.Name, k)
		}
	}
	params := b.Params
	if params == (core.Params{}) {
		params = core.PracticalParams()
	}
	opts = algo.BuildOpts{Params: params, Delta: b.Delta}
	if b.Faults != nil {
		if err := b.Faults.validate(); err != nil {
			return spec, opts, fmt.Errorf("engine: %w", err)
		}
		if !b.useSteppers(spec) {
			// Fault wrappers interpose on steppers; the Program path
			// has nothing to wrap, so a faulted batch routed there
			// would silently run fault-free instead.
			return spec, opts, errors.New("engine: fault injection requires the stepper path (strategy without steppers, or ForceProgramPath)")
		}
	}
	// Pre-flight the builder the batch will actually use, so
	// capability mismatches (for example "noboard" without Delta)
	// fail before any worker starts. The probe team never runs, so
	// honor the stepper lifecycle by finishing it explicitly.
	if b.useSteppers(spec) {
		var team []sim.Stepper
		team, err = spec.Team(opts, b.teamSize())
		for i := len(team) - 1; i >= 0; i-- {
			sim.Finish(team[i])
		}
	} else {
		_, _, err = spec.Programs(opts)
	}
	if err != nil {
		return spec, opts, fmt.Errorf("engine: %w", err)
	}
	return spec, opts, nil
}

// trialConfig is the simulation configuration shared by both paths.
func trialConfig(b Batch, spec algo.Spec, trial int) sim.Config {
	return sim.Config{
		Graph:       b.Graph,
		StartA:      b.StartA,
		StartB:      b.StartB,
		Scenario:    b.Scenario,
		NeighborIDs: spec.Caps.NeighborIDs,
		Whiteboards: spec.Caps.Whiteboards,
		Seed:        TrialSeed(b.Seed, trial),
		MaxRounds:   b.MaxRounds,
	}
}

// runTrial executes one trial of the batch on the goroutine-backed
// Program path. A panic on the calling goroutine (a panicking
// builder, or the simulator's own machinery) is isolated as the
// trial's error outcome; the Program path keeps no cross-trial
// scratch, so there is nothing to quarantine.
func runTrial(b Batch, spec algo.Spec, opts algo.BuildOpts, trial int) (o Outcome) {
	defer func() {
		if r := recover(); r != nil {
			o = errOutcome(sim.PanicError(r))
		}
	}()
	progA, progB, err := spec.Programs(opts)
	if err != nil {
		return errOutcome(err)
	}
	res, err := sim.Run(trialConfig(b, spec, trial), progA, progB)
	return OutcomeOf(res, err)
}

// stepperWorker is the per-worker scratch of the legacy
// one-trial-at-a-time stepper path: one sim.TrialContext reused
// across the worker's trials, plus the panic quarantine that reuse
// obliges. It exists so runStepperTrial itself can stay panic-free
// and directly testable.
type stepperWorker struct {
	tc *sim.TrialContext
}

func newStepperWorker() *stepperWorker { return &stepperWorker{tc: sim.NewTrialContext()} }

// run executes one trial, isolating a panic as the trial's error
// outcome. A panicking trial may have left the worker's TrialContext
// scratch (whiteboard array, RNG streams, walker tables) in any
// state, so the context is quarantined — replaced wholesale, exactly
// like a poisoned lane slot — and never re-armed.
func (w *stepperWorker) run(b Batch, spec algo.Spec, opts algo.BuildOpts, trial int) (o Outcome) {
	defer func() {
		if r := recover(); r != nil {
			w.tc = sim.NewTrialContext()
			o = errOutcome(sim.PanicError(r))
		}
	}()
	return runStepperTrial(b, spec, opts, w.tc, trial)
}

// runStepperTrial executes one trial on the stepper fast path,
// reusing the worker-owned trial context's scratch (whiteboards,
// neighbor-ID buffers, PCG state). A mid-batch builder error must not
// leak execution resources a partially built pair may own, nor leave
// the worker's context in a state that influences later trials: any
// returned steppers are finished, the context is untouched (its
// scratch is re-armed by the next successful run), and the trial
// counts as an error outcome.
func runStepperTrial(b Batch, spec algo.Spec, opts algo.BuildOpts, tc *sim.TrialContext, trial int) Outcome {
	if f := b.Faults; f != nil {
		if err := f.armError(trial); err != nil {
			return errOutcome(err)
		}
	}
	team, err := spec.Team(opts, b.teamSize())
	if err != nil {
		// Team finishes anything it built before failing.
		return errOutcome(err)
	}
	if f := b.Faults; f != nil {
		for i, st := range team {
			team[i] = wrapFault(st)
		}
		f.armSteppers(trial, team)
	}
	res, err := tc.RunTeam(trialConfig(b, spec, trial), team)
	return OutcomeOf(res, err)
}

// OutcomeOf reduces one simulation result (or its error) to an
// Outcome — the single definition of that mapping, shared with the
// experiment harness.
func OutcomeOf(res *sim.Result, err error) Outcome {
	if err != nil {
		return errOutcome(err)
	}
	out := Outcome{Moves: res.TotalMoves()}
	if res.Met {
		out.Met = true
		out.Rounds = res.MeetRound
	} else {
		out.Rounds = res.Rounds
	}
	return out
}
