package engine

import (
	"encoding/json"
	"math"
	"math/rand/v2"
	"testing"

	"fnr/internal/stats"

	_ "fnr/internal/algo/paper"
	_ "fnr/internal/baseline"
)

// RunStreaming must agree with Run on every aggregate field: exactly
// for the counts and the quantile-derived statistics, and within a
// few ULPs for the means (the documented Welford-vs-multiset
// divergence).
func TestRunStreamingMatchesRun(t *testing.T) {
	g, sa, sb := testGraph(t)
	for _, name := range []string{"whiteboard", "noboard", "birthday", "walkpair"} {
		b := Batch{
			Graph: g, StartA: sa, StartB: sb,
			Algorithm: name, Delta: g.MinDegree(),
			Trials: 40, Seed: 99, MaxRounds: 1 << 22,
		}
		want, err := Run(t.Context(), b)
		if err != nil {
			t.Fatalf("%s Run: %v", name, err)
		}
		got, err := RunStreaming(t.Context(), b)
		if err != nil {
			t.Fatalf("%s RunStreaming: %v", name, err)
		}
		if got.Algorithm != want.Algorithm || got.Trials != want.Trials ||
			got.Seed != want.Seed || got.Met != want.Met ||
			got.Failures != want.Failures || got.Errors != want.Errors ||
			got.SuccessRate != want.SuccessRate {
			t.Errorf("%s: counts differ: streaming %+v vs %+v", name, got, want)
		}
		checkDist := func(label string, g, w Dist) {
			if g.Median != w.Median || g.P95 != w.P95 || g.Min != w.Min || g.Max != w.Max {
				t.Errorf("%s %s: quantiles differ: streaming %+v vs %+v", name, label, g, w)
			}
			if diff := math.Abs(g.Mean - w.Mean); diff > 1e-9*math.Max(1, math.Abs(w.Mean)) {
				t.Errorf("%s %s: means differ beyond rounding: %v vs %v", name, label, g.Mean, w.Mean)
			}
		}
		checkDist("rounds", got.Rounds, want.Rounds)
		checkDist("moves", got.Moves, want.Moves)
	}
}

// The streaming path must itself be byte-identical across worker
// counts, lane widths, and the per-trial fallback paths — the merge
// is partition-insensitive by construction, and this pins it.
func TestRunStreamingDeterministicAcrossWorkersAndWidths(t *testing.T) {
	g, sa, sb := testGraph(t)
	for _, name := range []string{"whiteboard", "noboard"} {
		base := Batch{
			Graph: g, StartA: sa, StartB: sb,
			Algorithm: name, Delta: g.MinDegree(),
			Trials: 24, Seed: 424, MaxRounds: 1 << 22,
		}
		var ref []byte
		for _, workers := range []int{1, 4, 16} {
			for _, width := range []int{-1, 1, 8, 64} {
				b := base
				b.Workers = workers
				b.LaneWidth = width
				agg, err := RunStreaming(t.Context(), b)
				if err != nil {
					t.Fatalf("%s workers=%d width=%d: %v", name, workers, width, err)
				}
				blob, err := json.Marshal(agg)
				if err != nil {
					t.Fatal(err)
				}
				if ref == nil {
					ref = blob
					continue
				}
				if string(blob) != string(ref) {
					t.Errorf("%s workers=%d width=%d: streaming aggregate differs:\n%s\nreference: %s",
						name, workers, width, blob, ref)
				}
			}
		}
		// The Program path reduces to the same bytes too.
		b := base
		b.ForceProgramPath = true
		agg, err := RunStreaming(t.Context(), b)
		if err != nil {
			t.Fatalf("%s program path: %v", name, err)
		}
		blob, err := json.Marshal(agg)
		if err != nil {
			t.Fatal(err)
		}
		if string(blob) != string(ref) {
			t.Errorf("%s: program-path streaming aggregate differs:\n%s\nreference: %s", name, blob, ref)
		}
	}
}

// Merge must be invariant under how the outcome stream is split into
// parts and in what order the parts are merged.
func TestMergePartitionInvariance(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	outcomes := make([]Outcome, 500)
	for i := range outcomes {
		o := Outcome{Rounds: int64(rng.IntN(50)), Moves: int64(rng.IntN(2000))}
		switch rng.IntN(10) {
		case 0:
			o.Err = true
		case 1, 2:
		default:
			o.Met = true
		}
		outcomes[i] = o
	}
	b := Batch{Algorithm: "x", Seed: 5}

	reduce := func(parts [][]Outcome) []byte {
		rs := make([]*Reducer, len(parts))
		for i, part := range parts {
			rs[i] = NewReducer()
			// Outcomes here carry no error messages, so the trial
			// index handed to Add is irrelevant to the merge.
			for j, o := range part {
				rs[i].Add(j, o)
			}
		}
		blob, err := json.Marshal(Merge(rs...).Aggregate(b))
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}

	ref := reduce([][]Outcome{outcomes})
	splits := [][]Outcome{outcomes[:17], outcomes[17:300], outcomes[300:]}
	if got := reduce(splits); string(got) != string(ref) {
		t.Errorf("3-way split differs:\n%s\nreference: %s", got, ref)
	}
	reversed := [][]Outcome{outcomes[300:], outcomes[17:300], outcomes[:17]}
	if got := reduce(reversed); string(got) != string(ref) {
		t.Errorf("reversed merge order differs:\n%s\nreference: %s", got, ref)
	}
	perTrial := make([][]Outcome, len(outcomes))
	for i := range outcomes {
		perTrial[i] = outcomes[i : i+1]
	}
	if got := reduce(perTrial); string(got) != string(ref) {
		t.Errorf("one-part-per-trial merge differs:\n%s\nreference: %s", got, ref)
	}
	// Nil parts are skipped (a worker that claimed no chunk).
	if got := reduce([][]Outcome{outcomes, nil, {}}); string(got) != string(ref) {
		t.Errorf("empty/nil parts change the merge:\n%s\nreference: %s", got, ref)
	}
}

// distCounter's rank-based quantiles must be bit-identical to
// stats.Quantile on the expanded sample, on both random multisets
// and the edge shapes (single value, heavy duplicates).
func TestDistCounterQuantilesMatchStats(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 41))
	cases := [][]int64{
		{7},
		{3, 3, 3, 3},
		{1, 2},
		{5, 1, 5, 1, 5},
	}
	for c := 0; c < 20; c++ {
		n := 1 + rng.IntN(400)
		xs := make([]int64, n)
		for i := range xs {
			xs[i] = int64(rng.IntN(30)) // duplicate-heavy
		}
		cases = append(cases, xs)
	}
	for ci, xs := range cases {
		var d distCounter
		expanded := make([]float64, len(xs))
		for i, v := range xs {
			d.add(v, 1)
			expanded[i] = float64(v)
		}
		for _, q := range []float64{0, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99, 1} {
			want := stats.Quantile(expanded, q)
			got := d.quantile(q)
			if got != want {
				t.Errorf("case %d q=%v: distCounter %v != stats %v", ci, q, got, want)
			}
		}
		want := DistOf(expanded)
		got := d.dist()
		if got.Median != want.Median || got.P95 != want.P95 || got.Min != want.Min || got.Max != want.Max {
			t.Errorf("case %d: dist quantiles %+v != DistOf %+v", ci, got, want)
		}
	}
	if !math.IsNaN((&distCounter{}).quantile(0.5)) {
		t.Error("empty distCounter quantile should be NaN")
	}
	if d := (&distCounter{}).dist(); d != (Dist{}) {
		t.Errorf("empty distCounter dist = %+v, want zero", d)
	}
}
