package engine

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sync"

	"fnr/internal/atomicio"
)

// This file makes long batches durable: a Reducer (plus the identity
// of the batch that produced it) serializes to a versioned,
// CRC-framed checkpoint journal, RunCheckpointed keeps that journal
// fresh on disk every K trials, and a resumed run loads the journal,
// skips exactly the covered global trial indices, and merges — so
// kill -9 at any point costs at most the last flush interval, and
// the resumed run's aggregate is byte-identical to an uninterrupted
// one (reducer merging is partition-insensitive; see reduce.go).
//
// Wire format (the v3 chunk-framing idiom of internal/graph/io.go):
//
//	magic   8 bytes: "fnrckpt" + version byte 0x01 or 0x02
//	frame   uvarint plen (1 ≤ plen ≤ 4 MiB), plen payload bytes,
//	        crc32c (Castagnoli, little-endian) of those payload bytes
//	...     more frames; the logical payload stream continues across
//	        frame boundaries
//	end     uvarint 0, then crc32c of every wire byte before it
//
// A truncated file fails the end-marker or stream-CRC check; a
// corrupted byte fails its frame's CRC; a torn write never exists
// because the journal is only written through atomicio.
//
// Payload stream (all integers uvarint, strings length-prefixed):
//
//	identity  algorithm, batch seed, trials, delta, maxRounds,
//	          startA, startB, graph n, fault plan (flag + seed +
//	          three probability bit patterns)
//	scenario  (version 0x02 only) agent count k, k start vertices,
//	          delays flag + k wake delays when set, meeting-predicate
//	          flag (1 = first pair)
//	reducer   trials, met, errors; rounds and moves value→count
//	          tables (ascending values); error log entries
//	          (trial, message); coalesced covered spans (lo, hi)
//
// Version selection: a legacy two-agent batch (nil Scenario after
// normalization — see Batch.normalized) writes 0x01, byte-identical
// to pre-scenario journals; a batch carrying a real scenario writes
// 0x02 with the scenario identity section. A version/batch mismatch
// fails identity validation like any other identity drift.
const (
	ckptMagic    = "fnrckpt\x01"
	ckptMagicV2  = "fnrckpt\x02"
	ckptFrameMax = 4 << 20
	// ckptFrameTarget is where the writer cuts a frame; single
	// appends are tiny, so frames never approach ckptFrameMax.
	ckptFrameTarget = 1 << 20
)

var ckptCRC = crc32.MakeTable(crc32.Castagnoli)

// DefaultCheckpointEvery is the flush cadence RunCheckpointed uses
// when Checkpoint.Every is 0: frequent enough that a crash loses
// seconds of work, rare enough that journal writes stay invisible
// next to the trials between them.
const DefaultCheckpointEvery = 1 << 17

// Checkpoint configures RunCheckpointed's journal: the path the
// journal is (atomically) rewritten at, and how many absorbed trials
// may pass between rewrites. An empty Path disables journalling —
// RunCheckpointed then just runs the uncovered ranges and merges.
type Checkpoint struct {
	Path  string
	Every int
}

// RunCheckpointed executes the batch like RunReduced, but resumes
// from and journals to a checkpoint: resume (if non-nil, typically
// loaded via ReadCheckpointFile) contributes its already-covered
// trials, only the uncovered global trial ranges are run, and the
// merged state is rewritten to ck.Path — atomically, so a crash
// mid-write cannot tear it — every ck.Every absorbed trials and once
// more on return. Cancelling ctx returns the merged partial state
// together with ctx.Err(), exactly like RunReduced; the final flush
// still happens, so a cancelled checkpointed run resumes too. A
// journal write failure is sticky (later flushes are skipped) and is
// returned after the run completes — the computation itself never
// stops for a disk problem.
func RunCheckpointed(ctx context.Context, b Batch, ck Checkpoint, resume *Reducer) (*Reducer, error) {
	b = b.normalized()
	spec, opts, err := b.prepare()
	if err != nil {
		return nil, err
	}
	lo, hi := b.shardSpan()
	j := &journal{b: b, ck: ck, r: NewReducer()}
	j.r.mergeFrom(resume)
	for _, gap := range uncovered(lo, hi, j.r.Spans()) {
		runReducedRange(ctx, b, spec, opts, gap.Lo, gap.Hi, j.absorb)
		if ctx.Err() != nil {
			break
		}
	}
	if err := j.finalFlush(); err != nil {
		return j.r, err
	}
	return j.r, ctx.Err()
}

// uncovered returns the maximal subranges of [lo, hi) not covered by
// the given coalesced, sorted spans — the trials a resumed run still
// has to execute.
func uncovered(lo, hi int, covered []TrialSpan) []TrialSpan {
	var out []TrialSpan
	cur := lo
	for _, s := range covered {
		if s.Hi <= cur {
			continue
		}
		if s.Lo >= hi {
			break
		}
		if s.Lo > cur {
			out = append(out, TrialSpan{Lo: cur, Hi: s.Lo})
		}
		cur = s.Hi
		if cur >= hi {
			return out
		}
	}
	if cur < hi {
		out = append(out, TrialSpan{Lo: cur, Hi: hi})
	}
	return out
}

// journal is the shared checkpoint state the workers' chunk flushes
// merge into. The mutex is cold: it is taken once per 64-trial chunk
// and once per journal rewrite, never per trial.
type journal struct {
	mu    sync.Mutex
	b     Batch
	ck    Checkpoint
	r     *Reducer
	fresh int   // trials absorbed since the last flush
	err   error // first flush failure (sticky)
}

func (j *journal) every() int {
	if j.ck.Every > 0 {
		return j.ck.Every
	}
	return DefaultCheckpointEvery
}

// absorb folds one worker's chunk-sized reducer into the journal and
// rewrites the file when the flush cadence is due. It is the `out`
// hook of runReducedRange.
func (j *journal) absorb(part *Reducer) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.fresh += part.trials
	j.r.mergeFrom(part)
	if j.ck.Path != "" && j.fresh >= j.every() {
		j.flushLocked()
	}
}

func (j *journal) flushLocked() {
	j.fresh = 0
	// Keep the in-memory span cover bounded: chunk merges append
	// lazily (see Reducer.AddSpan), the flush settles the list.
	j.r.spans = coalesceSpans(j.r.spans)
	if j.err != nil {
		return
	}
	if err := WriteCheckpointFile(j.ck.Path, j.b, j.r); err != nil {
		j.err = err
	}
}

func (j *journal) finalFlush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.ck.Path != "" {
		j.flushLocked()
	}
	return j.err
}

// WriteCheckpointFile atomically writes the batch's checkpoint to
// path (see WriteCheckpoint).
func WriteCheckpointFile(path string, b Batch, r *Reducer) error {
	return atomicio.WriteFile(path, func(w io.Writer) error {
		return WriteCheckpoint(w, b, r)
	})
}

// ReadCheckpointFile loads and validates the checkpoint at path (see
// ReadCheckpoint).
func ReadCheckpointFile(path string, b Batch) (*Reducer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("engine: checkpoint: %w", err)
	}
	defer f.Close()
	return ReadCheckpoint(f, b)
}

// WriteCheckpoint serializes the reducer, stamped with b's identity,
// to the journal wire format.
func WriteCheckpoint(w io.Writer, b Batch, r *Reducer) error {
	b = b.normalized()
	cw := &ckptWriter{w: w, crc: crc32.New(ckptCRC)}
	if b.Scenario != nil {
		cw.wire([]byte(ckptMagicV2))
	} else {
		cw.wire([]byte(ckptMagic))
	}
	// Identity section.
	cw.str(b.Algorithm)
	cw.u64(b.Seed)
	cw.u64(uint64(b.Trials))
	cw.u64(uint64(b.Delta))
	cw.u64(uint64(b.MaxRounds))
	cw.u64(uint64(b.StartA))
	cw.u64(uint64(b.StartB))
	n := 0
	if b.Graph != nil {
		n = b.Graph.N()
	}
	cw.u64(uint64(n))
	if f := b.Faults; f != nil {
		cw.u64(1)
		cw.u64(f.Seed)
		cw.u64(math.Float64bits(f.PPanic))
		cw.u64(math.Float64bits(f.PStall))
		cw.u64(math.Float64bits(f.PBuildErr))
	} else {
		cw.u64(0)
	}
	// Scenario identity section (v2 journals only).
	if sc := b.Scenario; sc != nil {
		cw.u64(uint64(sc.K()))
		for _, s := range sc.Starts {
			cw.u64(uint64(s))
		}
		if len(sc.WakeDelays) > 0 {
			cw.u64(1)
			for _, d := range sc.WakeDelays {
				cw.u64(uint64(d))
			}
		} else {
			cw.u64(0)
		}
		if sc.MeetFirstPair {
			cw.u64(1)
		} else {
			cw.u64(0)
		}
	}
	// Reducer section.
	cw.u64(uint64(r.trials))
	cw.u64(uint64(r.met))
	cw.u64(uint64(r.errors))
	for _, d := range []*distCounter{&r.rounds, &r.moves} {
		cw.u64(uint64(len(d.vals)))
		for i, v := range d.vals {
			cw.u64(uint64(v))
			cw.u64(uint64(d.counts[i]))
		}
	}
	cw.u64(uint64(len(r.errs.entries)))
	for _, e := range r.errs.entries {
		cw.u64(uint64(e.trial))
		cw.str(e.msg)
	}
	spans := r.Spans()
	cw.u64(uint64(len(spans)))
	for _, s := range spans {
		cw.u64(uint64(s.Lo))
		cw.u64(uint64(s.Hi))
	}
	return cw.end()
}

// ReadCheckpoint deserializes a checkpoint and validates both its
// integrity (framing, CRCs) and its identity against the batch the
// caller is about to resume: a journal written for a different
// algorithm, seed, trial count, graph size, budget, start pair,
// fault plan or scenario must fail loudly here, never resume into
// silently mixed statistics.
func ReadCheckpoint(rd io.Reader, b Batch) (*Reducer, error) {
	b = b.normalized()
	cr, err := newCkptReader(rd)
	if err != nil {
		return nil, err
	}
	// Identity section.
	n := 0
	if b.Graph != nil {
		n = b.Graph.N()
	}
	idChecks := []struct {
		field string
		got   func() (any, any, bool)
	}{
		{"algorithm", func() (any, any, bool) { v := cr.str(); return v, b.Algorithm, v == b.Algorithm }},
		{"seed", func() (any, any, bool) { v := cr.u64(); return v, b.Seed, v == b.Seed }},
		{"trials", func() (any, any, bool) { v := cr.u64(); return v, b.Trials, v == uint64(b.Trials) }},
		{"delta", func() (any, any, bool) { v := cr.u64(); return v, b.Delta, v == uint64(b.Delta) }},
		{"max_rounds", func() (any, any, bool) { v := cr.u64(); return v, b.MaxRounds, v == uint64(b.MaxRounds) }},
		{"start_a", func() (any, any, bool) { v := cr.u64(); return v, b.StartA, v == uint64(b.StartA) }},
		{"start_b", func() (any, any, bool) { v := cr.u64(); return v, b.StartB, v == uint64(b.StartB) }},
		{"graph_n", func() (any, any, bool) { v := cr.u64(); return v, n, v == uint64(n) }},
		{"fault_plan", func() (any, any, bool) {
			present := cr.u64()
			if b.Faults == nil {
				return present, 0, present == 0
			}
			if present != 1 {
				return present, 1, false
			}
			ok := cr.u64() == b.Faults.Seed &&
				cr.u64() == math.Float64bits(b.Faults.PPanic) &&
				cr.u64() == math.Float64bits(b.Faults.PStall) &&
				cr.u64() == math.Float64bits(b.Faults.PBuildErr)
			return "(differs)", "(batch plan)", ok
		}},
		{"scenario", func() (any, any, bool) {
			sc := b.Scenario
			switch {
			case cr.version == 1 && sc == nil:
				return "none", "none", true
			case cr.version == 1:
				return "none (v1 journal)", fmt.Sprintf("%d agents", sc.K()), false
			case sc == nil:
				return "present (v2 journal)", "legacy two-agent batch", false
			}
			if k := cr.count(); k != sc.K() {
				return k, sc.K(), false
			}
			for _, s := range sc.Starts {
				if v := cr.u64(); cr.err == nil && v != uint64(s) {
					return "(start vertices differ)", "(batch scenario)", false
				}
			}
			wantDelays := uint64(0)
			if len(sc.WakeDelays) > 0 {
				wantDelays = 1
			}
			if flag := cr.u64(); cr.err == nil && flag != wantDelays {
				return "(wake delays differ)", "(batch scenario)", false
			} else if flag == 1 && cr.err == nil {
				for _, d := range sc.WakeDelays {
					if v := cr.u64(); cr.err == nil && v != uint64(d) {
						return "(wake delays differ)", "(batch scenario)", false
					}
				}
			}
			wantMeet := uint64(0)
			if sc.MeetFirstPair {
				wantMeet = 1
			}
			if v := cr.u64(); cr.err == nil && v != wantMeet {
				return "(meeting predicate differs)", "(batch scenario)", false
			}
			return "scenario", "scenario", true
		}},
	}
	for _, c := range idChecks {
		got, want, ok := c.got()
		if cr.err != nil {
			return nil, cr.fail()
		}
		if !ok {
			return nil, fmt.Errorf("engine: checkpoint is for a different batch: %s %v, want %v", c.field, got, want)
		}
	}
	// Reducer section.
	r := NewReducer()
	r.trials = cr.count()
	r.met = cr.count()
	r.errors = cr.count()
	for _, d := range []*distCounter{&r.rounds, &r.moves} {
		k := cr.count()
		d.vals = make([]int64, 0, min(k, 1<<16))
		d.counts = make([]int64, 0, min(k, 1<<16))
		prev := int64(-1)
		for range k {
			v, c := int64(cr.u64()), int64(cr.u64())
			if cr.err == nil && (v <= prev || c < 1) {
				cr.err = errors.New("value table not ascending")
			}
			prev = v
			d.vals = append(d.vals, v)
			d.counts = append(d.counts, c)
			d.n += c
		}
	}
	k := cr.count()
	for range k {
		trial := cr.count()
		r.errs.note(trial, cr.str())
	}
	k = cr.count()
	for range k {
		lo, hi := cr.count(), cr.count()
		r.AddSpan(lo, hi)
	}
	if err := cr.finish(); err != nil {
		return nil, err
	}
	return r, nil
}

// ckptWriter frames a payload stream onto the wire (see the file
// comment for the format).
type ckptWriter struct {
	w   io.Writer
	crc hash.Hash32 // whole-stream digest of every wire byte
	buf []byte      // pending payload of the open frame
	err error
}

// wire writes raw wire bytes (magic, frame headers, CRCs) straight
// through, feeding the stream digest.
func (cw *ckptWriter) wire(p []byte) {
	if cw.err != nil {
		return
	}
	cw.crc.Write(p)
	if _, err := cw.w.Write(p); err != nil {
		cw.err = fmt.Errorf("engine: checkpoint: %w", err)
	}
}

func (cw *ckptWriter) u64(x uint64) {
	var vbuf [binary.MaxVarintLen64]byte
	cw.buf = append(cw.buf, vbuf[:binary.PutUvarint(vbuf[:], x)]...)
	if len(cw.buf) >= ckptFrameTarget {
		cw.flushFrame()
	}
}

func (cw *ckptWriter) str(s string) {
	cw.u64(uint64(len(s)))
	cw.buf = append(cw.buf, s...)
	if len(cw.buf) >= ckptFrameTarget {
		cw.flushFrame()
	}
}

func (cw *ckptWriter) flushFrame() {
	if len(cw.buf) == 0 {
		return
	}
	var hdr [binary.MaxVarintLen64]byte
	cw.wire(hdr[:binary.PutUvarint(hdr[:], uint64(len(cw.buf)))])
	cw.wire(cw.buf)
	var fcrc [4]byte
	binary.LittleEndian.PutUint32(fcrc[:], crc32.Checksum(cw.buf, ckptCRC))
	cw.wire(fcrc[:])
	cw.buf = cw.buf[:0]
}

// end flushes the last frame, writes the end marker and the
// whole-stream CRC, and reports any deferred write error.
func (cw *ckptWriter) end() error {
	cw.flushFrame()
	cw.wire([]byte{0})
	var tb [4]byte
	binary.LittleEndian.PutUint32(tb[:], cw.crc.Sum32())
	if cw.err == nil {
		if _, err := cw.w.Write(tb[:]); err != nil {
			cw.err = fmt.Errorf("engine: checkpoint: %w", err)
		}
	}
	return cw.err
}

// ckptReader validates the wire (frame CRCs, end marker, stream CRC)
// up front and then decodes the reassembled payload stream. Decode
// errors are sticky; values after an error are zero.
type ckptReader struct {
	payload []byte
	pos     int
	version int
	err     error
}

func newCkptReader(rd io.Reader) (*ckptReader, error) {
	br := bufio.NewReaderSize(rd, 1<<16)
	crc := crc32.New(ckptCRC)
	wire := func(p []byte) error {
		if _, err := io.ReadFull(br, p); err != nil {
			return err
		}
		crc.Write(p)
		return nil
	}
	var magic [8]byte
	if err := wire(magic[:]); err != nil {
		return nil, fmt.Errorf("engine: checkpoint: reading magic: %w", err)
	}
	var version int
	switch string(magic[:]) {
	case ckptMagic:
		version = 1
	case ckptMagicV2:
		version = 2
	default:
		return nil, errors.New("engine: checkpoint: bad magic (not a checkpoint journal, or unsupported version)")
	}
	var payload bytes.Buffer
	var b [1]byte
	for {
		// Frame length, uvarint byte-by-byte through the digest.
		var plen uint64
		for shift := 0; ; shift += 7 {
			if err := wire(b[:]); err != nil {
				return nil, fmt.Errorf("engine: checkpoint: truncated (frame header): %w", err)
			}
			plen |= uint64(b[0]&0x7f) << shift
			if b[0] < 0x80 {
				break
			}
			if shift >= 56 {
				return nil, errors.New("engine: checkpoint: corrupt frame length")
			}
		}
		if plen == 0 {
			break // end marker
		}
		if plen > ckptFrameMax {
			return nil, fmt.Errorf("engine: checkpoint: frame length %d exceeds limit", plen)
		}
		frame := make([]byte, plen)
		if err := wire(frame); err != nil {
			return nil, fmt.Errorf("engine: checkpoint: truncated (frame body): %w", err)
		}
		var fcrc [4]byte
		if err := wire(fcrc[:]); err != nil {
			return nil, fmt.Errorf("engine: checkpoint: truncated (frame CRC): %w", err)
		}
		if crc32.Checksum(frame, ckptCRC) != binary.LittleEndian.Uint32(fcrc[:]) {
			return nil, errors.New("engine: checkpoint: frame CRC mismatch (corrupt journal)")
		}
		payload.Write(frame)
	}
	want := crc.Sum32()
	var tb [4]byte
	if _, err := io.ReadFull(br, tb[:]); err != nil {
		return nil, fmt.Errorf("engine: checkpoint: truncated (stream CRC): %w", err)
	}
	if binary.LittleEndian.Uint32(tb[:]) != want {
		return nil, errors.New("engine: checkpoint: stream CRC mismatch (corrupt journal)")
	}
	return &ckptReader{payload: payload.Bytes(), version: version}, nil
}

func (cr *ckptReader) u64() uint64 {
	if cr.err != nil {
		return 0
	}
	x, k := binary.Uvarint(cr.payload[cr.pos:])
	if k <= 0 {
		cr.err = errors.New("payload exhausted")
		return 0
	}
	cr.pos += k
	return x
}

// count decodes a uvarint that must fit a non-negative int.
func (cr *ckptReader) count() int {
	x := cr.u64()
	if cr.err == nil && x > uint64(math.MaxInt64) {
		cr.err = errors.New("count overflows int")
		return 0
	}
	return int(x)
}

func (cr *ckptReader) str() string {
	n := cr.count()
	if cr.err != nil {
		return ""
	}
	if n > len(cr.payload)-cr.pos {
		cr.err = errors.New("string length exceeds payload")
		return ""
	}
	s := string(cr.payload[cr.pos : cr.pos+n])
	cr.pos += n
	return s
}

func (cr *ckptReader) fail() error {
	return fmt.Errorf("engine: checkpoint: corrupt payload: %s", cr.err)
}

// finish asserts the payload decoded cleanly and completely.
func (cr *ckptReader) finish() error {
	if cr.err != nil {
		return cr.fail()
	}
	if cr.pos != len(cr.payload) {
		return errors.New("engine: checkpoint: trailing payload bytes (corrupt journal)")
	}
	return nil
}
