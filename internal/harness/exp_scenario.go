package harness

import (
	"context"
	"fmt"

	"fnr/internal/engine"
	"fnr/internal/graph"
	"fnr/internal/sim"
	"fnr/internal/stats"
)

// runS1 probes the scenario layer's two generalizations on the
// standard scaling workload. First, asynchronous wake-up: agent b
// sleeps τ rounds before its first step while a runs the paper's
// whiteboard strategy. The model keeps sleeping agents meetable (a
// position is a position), so a delayed partner is a sitting target
// and the meeting round should stay bounded — growing at most
// additively in τ, never multiplicatively. Second, k-agent gathering:
// independent random-walk teams (walkpair generalized per agent)
// under the first-pair predicate, where more agents means more
// colliding pairs and the first meeting should come sooner, not
// later.
func runS1(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	n, d := 1024, 181
	delays := []int64{0, 16, 256, 4096}
	teams := []int{2, 3, 4}
	if cfg.Quick {
		n, d = 256, 32
		delays = []int64{0, 256}
		teams = []int{2, 3}
	}
	g, sa, sb, err := plantedWorkload(n, d, 1)
	if err != nil {
		return nil, err
	}
	maxRounds := int64(n) * 64
	tb := &Table{
		ID: "S1", Title: "Scenario layer: delayed wake-up and k-agent gathering",
		Claim:   "sleeping agents stay meetable, so wake delay τ costs at most O(τ) rounds; extra agents only speed up the first pairwise meeting",
		Columns: []string{"algorithm", "k", "τ", "meet", "median rounds", "success"},
	}

	var base float64
	for _, tau := range delays {
		sc := &sim.Scenario{Starts: []graph.Vertex{sa, sb}, WakeDelays: []int64{0, tau}}
		out, err := runScenario(cfg, cfg.Seeds, 1, g, sc, "whiteboard", g.MinDegree(), maxRounds)
		if err != nil {
			return nil, err
		}
		med := stats.Median(metRounds(out))
		if tau == 0 {
			base = med
		}
		tb.AddRow("whiteboard", 2, tau, "all", med, successRate(out))
	}
	tb.AddNote("τ=0 median is %.0f; a multiplicative blow-up would put the τ=%d median far beyond %.0f+τ", base, delays[len(delays)-1], base)

	var kMed []float64
	for _, k := range teams {
		sc := &sim.Scenario{Starts: teamStarts(g, sa, sb, k), MeetFirstPair: k > 2}
		meet := "all"
		if k > 2 {
			meet = "firstpair"
		}
		out, err := runScenario(cfg, cfg.Seeds, 2, g, sc, "walkpair", g.MinDegree(), maxRounds)
		if err != nil {
			return nil, err
		}
		med := stats.Median(metRounds(out))
		kMed = append(kMed, med)
		tb.AddRow("walkpair", k, 0, meet, med, successRate(out))
	}
	if len(kMed) >= 2 {
		tb.AddNote("first-meeting median %.0f at k=%d vs %.0f at k=2 — more walkers, more colliding pairs", kMed[len(kMed)-1], teams[len(teams)-1], kMed[0])
	}
	return tb, nil
}

// runScenario is runAlgo for an explicit scenario batch.
func runScenario(cfg Config, trials int, batchSeed uint64, g *graph.Graph, sc *sim.Scenario, name string, delta int, maxRounds int64) ([]engine.Outcome, error) {
	return engine.RunOutcomes(context.Background(), engine.Batch{
		Graph:      g,
		Scenario:   sc,
		Algorithm:  name,
		Params:     cfg.Params,
		Delta:      delta,
		Trials:     trials,
		Seed:       batchSeed,
		MaxRounds:  maxRounds,
		Workers:    cfg.Workers,
		LaneWidth:  cfg.LaneWidth,
		ShardIndex: cfg.ShardIndex,
		ShardCount: cfg.ShardCount,
	})
}

// teamStarts extends the workload's adjacent start pair to k distinct
// non-isolated vertices, scanning deterministically from sb's
// neighborhood outward so every config sees the same team placement.
func teamStarts(g *graph.Graph, sa, sb graph.Vertex, k int) []graph.Vertex {
	starts := []graph.Vertex{sa, sb}
	used := map[graph.Vertex]bool{sa: true, sb: true}
	for v := graph.Vertex(0); len(starts) < k && int(v) < g.N(); v++ {
		if !used[v] && g.Degree(v) > 0 {
			starts = append(starts, v)
			used[v] = true
		}
	}
	if len(starts) < k {
		panic(fmt.Sprintf("harness: graph has fewer than %d non-isolated vertices", k))
	}
	return starts
}

// successRate is the met fraction of a batch's outcomes.
func successRate(outcomes []engine.Outcome) float64 {
	met := 0
	for _, o := range outcomes {
		if o.Met {
			met++
		}
	}
	return float64(met) / float64(len(outcomes))
}
