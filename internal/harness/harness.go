// Package harness defines the experiment suite that validates every
// quantitative claim of the paper (see DESIGN.md §4 for the index):
// E1–E3 validate the upper-bound theorems' scaling, E4–E5 the Sample
// and Construct lemmas, E6–E9 the four lower bounds, E10 the w.h.p.
// claims, and A1–A2 the design-choice ablations. Each experiment
// produces a Table that cmd/experiments prints and EXPERIMENTS.md
// records.
package harness

import (
	"context"
	"runtime"

	"fnr/internal/core"
	"fnr/internal/engine"
	"fnr/internal/graph"
	"fnr/internal/job"
	"fnr/internal/sim"

	// Strategy registrations for the engine batches the experiments
	// submit.
	_ "fnr/internal/algo/paper"
	_ "fnr/internal/baseline"
)

// Config tunes how heavy the experiment suite runs.
type Config struct {
	// Quick shrinks sweeps to the smallest sizes (used by -short tests
	// and smoke runs).
	Quick bool
	// Seeds is the number of independent trials per configuration
	// (default 10, quick 4).
	Seeds int
	// Workers bounds trial parallelism (default GOMAXPROCS).
	Workers int
	// LaneWidth selects the engine's lockstep lane width (0 = the
	// engine default, < 0 = the per-trial stepper path). Like Workers
	// it never affects results, only wall-clock time and memory.
	LaneWidth int
	// ShardIndex and ShardCount split every engine batch the suite
	// submits across independent processes (see engine.Batch): shard
	// i of k runs only its slice of each batch's trials, with seeds
	// still derived from global trial indices. Tables from a sharded
	// run summarize partial samples; merge across shards externally.
	// ShardCount 0 or 1 = unsharded. Bespoke program-pair trials
	// (runTrials) are not sharded.
	ShardIndex, ShardCount int
	// Params selects the algorithm constants (default
	// core.PracticalParams; see DESIGN.md on constant scaling).
	Params core.Params
}

func (c Config) withDefaults() Config {
	if c.Seeds <= 0 {
		if c.Quick {
			c.Seeds = 4
		} else {
			c.Seeds = 10
		}
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Params == (core.Params{}) {
		c.Params = core.PracticalParams()
	}
	return c
}

// Experiment is one entry of the suite.
type Experiment struct {
	// ID is the DESIGN.md identifier ("E1" … "E10", "A1", "A2").
	ID string
	// Title is a one-line description.
	Title string
	// Claim cites the paper statement under validation.
	Claim string
	// Run executes the experiment and renders its table.
	Run func(cfg Config) (*Table, error)
}

// All returns the full suite in presentation order.
func All() []Experiment {
	return []Experiment{
		{ID: "E1", Title: "Theorem 1 scaling in n", Claim: "Main-Rendezvous takes O(n/δ·log²n + √(n∆)/δ·log n) rounds w.h.p. (δ ≥ √n)", Run: runE1},
		{ID: "E2", Title: "Theorem 1 crossover vs the trivial O(∆) sweep", Claim: "sublinear rendezvous beats the ∆-sweep once δ = ω(√n·log n)", Run: runE2},
		{ID: "E3", Title: "Theorem 2 scaling (no whiteboards)", Claim: "Rendezvous-without-Whiteboards takes O(n/√δ·log²n) rounds w.h.p. after t'", Run: runE3},
		{ID: "E4", Title: "Sample(Γ,α) classification accuracy", Claim: "Lemma 2 / Cor. 1: outputs are α-heavy, non-outputs 4α-light, w.h.p.", Run: runE4},
		{ID: "E5", Title: "Construct iteration/strict-run budgets", Claim: "Lemmas 6–7: O(n/δ) iterations, O(log n) strict runs, (a,δ/8,2)-dense output", Run: runE5},
		{ID: "E6", Title: "Lower bound: bounded minimum degree", Claim: "Theorem 3 / Fig. 1: δ = o(√n) forces Ω(∆) rounds", Run: runE6},
		{ID: "E7", Title: "Lower bound: no neighborhood IDs (KT0)", Claim: "Theorem 4 / Fig. 2: without neighbor IDs, Ω(n) rounds", Run: runE7},
		{ID: "E8", Title: "Lower bound: initial distance two", Claim: "Theorem 5 / Fig. 3: distance 2 forces Ω(n) rounds", Run: runE8},
		{ID: "E9", Title: "Lower bound: deterministic algorithms", Claim: "Theorem 6 / Lemma 9: adaptive adversary forces ≥ n/32 rounds", Run: runE9},
		{ID: "E10", Title: "Success probability of both algorithms", Claim: "both theorems hold w.h.p.; measured success rates under scaled constants", Run: runE10},
		{ID: "E11", Title: "Complete graphs: Anderson–Weber consistency", Claim: "on K_n the generalized mechanism reproduces [6]'s Θ(√n) birthday behaviour", Run: runE11},
		{ID: "E12", Title: "Theorem 1 across graph families", Claim: "the w.h.p. guarantee holds on every δ ≥ √n family, not just the scaling workload", Run: runE12},
		{ID: "S1", Title: "Scenario layer: delayed wake-up and k-agent gathering", Claim: "wake delay τ costs at most O(τ) rounds; extra agents only speed up the first pairwise meeting", Run: runS1},
		{ID: "A1", Title: "Ablation: two-step vs strict-only Construct", Claim: "§3.3: optimistic+strict beats the O((n/δ)²) strict-only strawman", Run: runA1},
		{ID: "A2", Title: "Ablation: doubling δ-estimation overhead", Claim: "Cor. 2: removing min-degree knowledge costs only a constant factor", Run: runA2},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// runTrials fans cfg.Seeds custom trials across the engine's worker
// pool. Each trial receives the deterministic seed derived from
// (batchSeed, trial); results come back in trial order, so downstream
// aggregation is independent of the worker count. Experiments that
// run a registered algorithm end-to-end submit an engine batch via
// runAlgo instead — this generic path is for bespoke program pairs
// (Construct-only diagnostics, oracle warm starts, observer taps).
func runTrials[T any](cfg Config, batchSeed uint64, f func(trial int, seed uint64) T) []T {
	return engine.Trials(cfg.Workers, cfg.Seeds, func(i int) T {
		return f(i, engine.TrialSeed(batchSeed, i))
	})
}

// runAlgo submits one batch of a registered algorithm to the engine
// and returns the per-trial outcomes.
func runAlgo(cfg Config, trials int, batchSeed uint64, g *graph.Graph, sa, sb graph.Vertex, name string, delta int, maxRounds int64) ([]engine.Outcome, error) {
	return engine.RunOutcomes(context.Background(), engine.Batch{
		Graph:      g,
		StartA:     sa,
		StartB:     sb,
		Algorithm:  name,
		Params:     cfg.Params,
		Delta:      delta,
		Trials:     trials,
		Seed:       batchSeed,
		MaxRounds:  maxRounds,
		Workers:    cfg.Workers,
		LaneWidth:  cfg.LaneWidth,
		ShardIndex: cfg.ShardIndex,
		ShardCount: cfg.ShardCount,
	})
}

// harnessStream is the PCG stream constant the suite has always used
// for workload derivation — passed through job.Workload so the shared
// derivation reproduces every pre-refactor instance bit-for-bit.
const harnessStream uint64 = 0x9e3779b97f4a7c15

// plantedWorkload builds the standard quasi-regular scaling workload: a
// connected graph with min degree ≥ d and a uniformly chosen adjacent
// start pair (a fixed low-index pair would bias ID-partition algorithms
// toward their first phase). The result depends only on (n, d, seed),
// so different trial seeds share the same instance. The derivation
// itself lives in the job layer, shared with the CLIs and fnrd.
func plantedWorkload(n, d int, seed uint64) (*graph.Graph, graph.Vertex, graph.Vertex, error) {
	m, err := job.Workload{Kind: "planted", N: n, D: d, Seed: seed, Stream: harnessStream}.Materialize()
	if err != nil {
		return nil, 0, 0, err
	}
	return m.Graph, m.StartA, m.StartB, nil
}

// workloadSpec names one planted scaling workload by its defining
// parameters.
type workloadSpec struct {
	n, d int
	seed uint64
}

// workload is one generated scaling instance: the graph plus the
// chosen adjacent start pair.
type workload struct {
	g      *graph.Graph
	sa, sb graph.Vertex
}

// genWorkloads fans count workload generations across the engine
// worker pool and returns them in index order, failing on the
// lowest-index error. gen(i) must depend only on i, so the fan-out is
// deterministic — parallelism changes wall-clock time only.
func genWorkloads(cfg Config, count int, gen func(i int) (workload, error)) ([]workload, error) {
	type result struct {
		w   workload
		err error
	}
	results := engine.Trials(cfg.Workers, count, func(i int) result {
		w, err := gen(i)
		return result{w, err}
	})
	out := make([]workload, count)
	for i, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		out[i] = r.w
	}
	return out, nil
}

// plantedWorkloads generates the specs' workload instances in parallel
// across the engine worker pool. Each instance depends only on its own
// (n, d, seed) triple. Scaling experiments front-load their per-config
// graph generation through this instead of generating serially inside
// the measurement loop.
func plantedWorkloads(cfg Config, specs []workloadSpec) ([]workload, error) {
	return genWorkloads(cfg, len(specs), func(i int) (workload, error) {
		g, sa, sb, err := plantedWorkload(specs[i].n, specs[i].d, specs[i].seed)
		return workload{g: g, sa: sa, sb: sb}, err
	})
}

// runPair executes one bespoke rendezvous trial (custom program
// pair) and reduces it to an engine.Outcome, matching what batches
// produce. Errors (experiment programs must not panic) surface as
// Err outcomes, which count as misses.
func runPair(g *graph.Graph, sa, sb graph.Vertex, seed uint64, maxRounds int64, kt1, boards bool, a, b sim.Program) engine.Outcome {
	return engine.OutcomeOf(sim.Run(sim.Config{
		Graph:       g,
		StartA:      sa,
		StartB:      sb,
		NeighborIDs: kt1,
		Whiteboards: boards,
		Seed:        seed,
		MaxRounds:   maxRounds,
	}, a, b))
}

// metRounds extracts the meeting rounds of successful trials.
func metRounds(outcomes []engine.Outcome) []float64 {
	var xs []float64
	for _, o := range outcomes {
		if o.Met {
			xs = append(xs, float64(o.Rounds))
		}
	}
	return xs
}
