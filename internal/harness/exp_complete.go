package harness

import (
	"math"

	"fnr/internal/engine"
	"fnr/internal/graph"
	"fnr/internal/stats"
)

// runE11 checks the paper's framing that neighborhood rendezvous
// generalizes rendezvous on complete graphs (Anderson–Weber [6],
// Θ(√n) expected rounds with whiteboards): on K_n, the Theorem-1 main
// phase with the trivial dense set T = V must behave like the birthday
// strategy, both scaling as Θ(√n).
func runE11(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	sizes := []int{64, 256, 1024, 4096}
	if cfg.Quick {
		sizes = []int{64, 256}
	}
	tb := &Table{
		ID: "E11", Title: "Complete graphs: consistency with Anderson–Weber [6]",
		Claim:   "on K_n the paper's mechanism degenerates to the birthday strategy: Θ(√n) expected rounds",
		Columns: []string{"n", "birthday median", "mainphase median", "√n", "birthday/√n", "mp/√n"},
	}
	var ns, bdMed, mpMed []float64
	for _, n := range sizes {
		g, err := graph.Complete(n)
		if err != nil {
			return nil, err
		}
		maxRounds := int64(n) * 64
		bd, err := runAlgo(cfg, cfg.Seeds, 1, g, 0, 1, "birthday", 0, maxRounds)
		if err != nil {
			return nil, err
		}
		mp := runTrials(cfg, 500, func(_ int, seed uint64) engine.Outcome {
			return mainPhaseTrial(g, 0, 1, seed, maxRounds)
		})
		b := stats.Median(metRounds(bd))
		m := stats.Median(metRounds(mp))
		root := math.Sqrt(float64(n))
		tb.AddRow(n, b, m, root, b/root, m/root)
		ns = append(ns, float64(n))
		bdMed = append(bdMed, b)
		mpMed = append(mpMed, m)
	}
	if fit, err := stats.LogLogSlope(ns, bdMed); err == nil {
		tb.AddNote("birthday scaling: rounds ~ n^%.2f (R²=%.3f); Anderson–Weber predicts n^0.5", fit.Slope, fit.R2)
	}
	if fit, err := stats.LogLogSlope(ns, mpMed); err == nil {
		tb.AddNote("main-phase scaling: rounds ~ n^%.2f (R²=%.3f) — the generalized algorithm matches the special case it extends", fit.Slope, fit.R2)
	}
	return tb, nil
}
