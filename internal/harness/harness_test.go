package harness

import (
	"bytes"
	"math"
	"math/rand/v2"
	"strings"
	"testing"

	"fnr/internal/core"
	"fnr/internal/graph"
)

func TestTableRenderAndCSV(t *testing.T) {
	tb := &Table{
		ID: "T0", Title: "demo", Claim: "demo claim",
		Columns: []string{"a", "bb", "c"},
	}
	tb.AddRow(1, 2.5, "x")
	tb.AddRow(10, 0.333333333, "longer")
	tb.AddNote("note %d", 7)
	out := tb.Render()
	for _, want := range []string{"### T0 — demo", "demo claim", "| a ", "| bb", "longer", "- note 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 || lines[0] != "a,bb,c" {
		t.Fatalf("csv = %q", buf.String())
	}
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 15 {
		t.Fatalf("registry has %d experiments, want 15", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate ID %q", e.ID)
		}
		seen[e.ID] = true
	}
	if _, ok := ByID("E9"); !ok {
		t.Error("ByID(E9) not found")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID(nope) found something")
	}
}

func TestRunTrialsOrderAndSeeds(t *testing.T) {
	cfg := Config{Seeds: 20, Workers: 3}
	type rec struct {
		trial int
		seed  uint64
	}
	got := runTrials(cfg, 42, func(trial int, seed uint64) rec { return rec{trial, seed} })
	if len(got) != 20 {
		t.Fatalf("got %d results, want 20", len(got))
	}
	seeds := map[uint64]bool{}
	for i, r := range got {
		if r.trial != i {
			t.Fatalf("got[%d].trial = %d (results out of order)", i, r.trial)
		}
		if seeds[r.seed] {
			t.Fatalf("duplicate trial seed %d", r.seed)
		}
		seeds[r.seed] = true
	}
	if len(runTrials(Config{Seeds: 0}, 1, func(int, uint64) int { return 0 })) != 0 {
		t.Fatal("empty trial set failed")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Seeds != 10 || c.Workers < 1 {
		t.Fatalf("defaults: %+v", c)
	}
	q := Config{Quick: true}.withDefaults()
	if q.Seeds != 4 {
		t.Fatalf("quick seeds = %d", q.Seeds)
	}
	if c.Params.SampleMult == 0 {
		t.Fatal("params not defaulted")
	}
}

// Each experiment must run end-to-end in quick mode and produce a
// non-empty, renderable table. This is the integration test for the
// whole reproduction pipeline.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick suite still simulates; skipped under -short")
	}
	cfg := Config{Quick: true, Seeds: 2}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			tb, err := e.Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tb.Rows) == 0 {
				t.Fatalf("%s: empty table", e.ID)
			}
			if tb.ID != e.ID {
				t.Fatalf("%s: table ID %q", e.ID, tb.ID)
			}
			out := tb.Render()
			if !strings.Contains(out, e.ID) {
				t.Fatalf("%s: render missing ID", e.ID)
			}
			var buf bytes.Buffer
			if err := tb.WriteCSV(&buf); err != nil {
				t.Fatalf("%s: csv: %v", e.ID, err)
			}
		})
	}
}

func TestBoundFunctions(t *testing.T) {
	// On complete graphs the Lemma-1 term must reduce to ≈ √n·ln n —
	// the Anderson–Weber regime the paper generalizes.
	n := 1024
	l1 := lemma1Bound(n, n-1, n-1)
	root := math.Sqrt(float64(n)) * math.Log(float64(n))
	if math.Abs(l1-root)/root > 0.01 {
		t.Fatalf("lemma1Bound(K_n) = %v, want ≈ √n·ln n = %v", l1, root)
	}
	// theorem1Bound = n/δ·ln²n + lemma1Bound.
	tb := theorem1Bound(n, 256, 300)
	want := float64(n)/256*math.Pow(math.Log(float64(n)), 2) + lemma1Bound(n, 256, 300)
	if math.Abs(tb-want) > 1e-9 {
		t.Fatalf("theorem1Bound = %v, want %v", tb, want)
	}
	// theorem2Bound grows when δ shrinks.
	p := Config{}.withDefaults().Params
	if theorem2Bound(p, n, 64) <= theorem2Bound(p, n, 256) {
		t.Fatal("theorem2Bound not decreasing in δ")
	}
}

func TestAdversarialRelabel(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 32))
	g, err := graph.PlantedMinDegree(100, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	pivot := graph.Vertex(17)
	h := adversarialRelabel(g, pivot)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.N() != g.N() || h.M() != g.M() {
		t.Fatal("relabel changed structure")
	}
	// N+(pivot) must hold exactly the top IDs.
	cut := int64(h.N() - g.Degree(pivot) - 1)
	if h.ID(pivot) < cut {
		t.Fatalf("pivot ID %d below cut %d", h.ID(pivot), cut)
	}
	for _, w := range h.Adj(pivot) {
		if h.ID(w) < cut {
			t.Fatalf("pivot neighbor ID %d below cut %d", h.ID(w), cut)
		}
	}
	// Everyone else sits below the cut.
	inNb := map[graph.Vertex]bool{pivot: true}
	for _, w := range g.Adj(pivot) {
		inNb[w] = true
	}
	for v := graph.Vertex(0); int(v) < h.N(); v++ {
		if !inNb[v] && h.ID(v) >= cut {
			t.Fatalf("non-neighbor %d got top ID %d", v, h.ID(v))
		}
	}
}

func TestPlantLowDegreeNeighbor(t *testing.T) {
	rng := rand.New(rand.NewPCG(33, 34))
	g, err := graph.PlantedMinDegree(80, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	start := graph.Vertex(5)
	h, err := plantLowDegreeNeighbor(g, start, 5)
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != g.N()+1 {
		t.Fatalf("n = %d, want %d", h.N(), g.N()+1)
	}
	x := graph.Vertex(g.N())
	if h.Degree(x) != 5 {
		t.Fatalf("planted degree %d, want 5", h.Degree(x))
	}
	if !h.HasEdge(x, start) {
		t.Fatal("planted vertex not adjacent to start")
	}
	if h.MinDegree() != 5 {
		t.Fatalf("min degree %d, want 5", h.MinDegree())
	}
}

func TestClassifierWorkloadSeparation(t *testing.T) {
	g, alpha, err := classifierWorkload(16)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 33 || alpha != 4 {
		t.Fatalf("workload n=%d α=%d", g.N(), alpha)
	}
	// Ground truth: clique leaves are ≥ 4α-heavy, isolated < α-light
	// for Γ = N+(center).
	tset := make(map[int64]struct{}, g.N())
	for v := 0; v < g.N(); v++ {
		tset[int64(v)] = struct{}{}
	}
	for v := graph.Vertex(1); v <= 16; v++ {
		if h := core.Heaviness(g, v, tset); h < 4*alpha {
			t.Fatalf("clique leaf %d heaviness %d < 4α=%d", v, h, 4*alpha)
		}
	}
	for v := graph.Vertex(17); v <= 32; v++ {
		if h := core.Heaviness(g, v, tset); h >= alpha {
			t.Fatalf("isolated leaf %d heaviness %d ≥ α=%d", v, h, alpha)
		}
	}
}
