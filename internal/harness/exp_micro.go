package harness

import (
	"math"

	"fnr/internal/core"
	"fnr/internal/graph"
	"fnr/internal/sim"
	"fnr/internal/stats"
)

// classifierWorkload builds the planted heavy/light separation graph
// for E4: a center with 2k leaves, the first k of which form a clique
// (heaviness k+1 for Γ = N+(center)) while the rest touch only the
// center (heaviness 2). With α = ⌊(k+1)/4⌋ the clique leaves are
// ≥ 4α-heavy and the rest < α-light, so Lemma 2 predicts exact
// separation.
func classifierWorkload(k int) (*graph.Graph, int, error) {
	b := graph.NewBuilder(2*k + 1)
	for v := 1; v <= 2*k; v++ {
		b.MustAddEdge(0, graph.Vertex(v))
	}
	for u := 1; u <= k; u++ {
		for v := u + 1; v <= k; v++ {
			b.MustAddEdge(graph.Vertex(u), graph.Vertex(v))
		}
	}
	g, err := b.Build()
	alpha := (k + 1) / 4
	return g, alpha, err
}

// runE4 measures Sample's false-heavy / false-light rates on planted
// separations of growing size.
func runE4(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	ks := []int{16, 32, 64}
	if cfg.Quick {
		ks = []int{16}
	}
	tb := &Table{
		ID: "E4", Title: "Sample(Γ,α) classification on planted heavy/light neighborhoods",
		Claim:   "Lemma 2: reported-heavy ⇒ α-heavy; unreported ⇒ 4α-light (w.h.p.)",
		Columns: []string{"k", "n", "α", "trials", "false-heavy", "false-light", "err rate", "visits/trial"},
	}
	ghost := func(e *sim.Env) {}
	for _, k := range ks {
		g, alpha, err := classifierWorkload(k)
		if err != nil {
			return nil, err
		}
		type oc struct {
			falseHeavy, falseLight int
			visits                 int64
		}
		outcomes := runTrials(cfg, 1, func(_ int, seed uint64) oc {
			rep := &core.SampleReport{}
			_, err := sim.Run(sim.Config{
				Graph: g, StartA: 0, StartB: 1,
				NeighborIDs: true, Seed: seed,
				MaxRounds: 1 << 40, DisableMeeting: true,
			}, core.SampleClassifier(cfg.Params, 8*alpha, rep), ghost)
			if err != nil {
				return oc{}
			}
			heavy := make(map[int64]bool, len(rep.Heavy))
			for _, id := range rep.Heavy {
				heavy[id] = true
			}
			var o oc
			o.visits = rep.Visits
			// Ground truth: clique leaves 1..k and the center are
			// ≥ 4α-heavy; leaves k+1..2k are < α-light.
			if !heavy[0] {
				o.falseLight++
			}
			for v := int64(1); v <= int64(k); v++ {
				if !heavy[v] {
					o.falseLight++
				}
			}
			for v := int64(k + 1); v <= int64(2*k); v++ {
				if heavy[v] {
					o.falseHeavy++
				}
			}
			return o
		})
		fh, fl := 0, 0
		var visits int64
		for _, o := range outcomes {
			fh += o.falseHeavy
			fl += o.falseLight
			visits += o.visits
		}
		decisions := cfg.Seeds * (2*k + 1)
		tb.AddRow(k, g.N(), alpha, cfg.Seeds, fh, fl,
			stats.Rate(fh+fl, decisions), float64(visits)/float64(cfg.Seeds))
	}
	tb.AddNote("err rate is per classification decision; the paper's constants drive it below 1/n⁷, the scaled constants keep it near zero at these sizes")
	return tb, nil
}

// runE5 checks Construct's budgets: O(n/δ) iterations, O(log n) strict
// runs, dense output, and O(n·log²n/δ) rounds.
func runE5(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	sizes := []int{256, 512, 1024, 2048}
	if cfg.Quick {
		sizes = []int{256, 512}
	}
	tb := &Table{
		ID: "E5", Title: "Construct budgets (δ = n^0.75)",
		Claim:   "Lemmas 6–8: ≤ O(n/δ) iterations, O(log n) strict runs, (a,δ/8,2)-dense output, O(n·log²n/δ) rounds",
		Columns: []string{"n", "δ", "iters", "2n/δ", "strict", "ln n", "rounds", "n·ln²n/δ", "ratio", "dense ok"},
	}
	ghost := func(e *sim.Env) {}
	for _, n := range sizes {
		d := int(math.Round(math.Pow(float64(n), 0.75)))
		g, sa, _, err := plantedWorkload(n, d, uint64(n)*13)
		if err != nil {
			return nil, err
		}
		delta := g.MinDegree()
		type oc struct {
			iters, strict int
			rounds        float64
			dense         bool
		}
		outcomes := runTrials(cfg, 1, func(_ int, seed uint64) oc {
			st := &core.WhiteboardStats{}
			_, err := sim.Run(sim.Config{
				Graph: g, StartA: sa, StartB: 0,
				NeighborIDs: true, Seed: seed,
				MaxRounds: 1 << 40, DisableMeeting: true,
			}, core.ConstructOnly(cfg.Params, core.Knowledge{Delta: delta}, st), ghost)
			if err != nil {
				return oc{}
			}
			dense := core.VerifyDense(g, sa, st.T, float64(delta)/cfg.Params.AlphaDen, 2) == nil
			return oc{st.Iterations, st.StrictRuns, float64(st.ConstructRounds), dense}
		})
		var iters, strict stats.Summary
		var rounds []float64
		denseOK := 0
		for _, o := range outcomes {
			iters.Add(float64(o.iters))
			strict.Add(float64(o.strict))
			rounds = append(rounds, o.rounds)
			if o.dense {
				denseOK++
			}
		}
		ln := math.Log(float64(n))
		pred := float64(n) * ln * ln / float64(delta)
		med := stats.Median(rounds)
		tb.AddRow(n, delta, iters.Mean(), 2*float64(n)/float64(delta), strict.Mean(), ln,
			med, pred, med/pred,
			stats.Rate(denseOK, cfg.Seeds))
	}
	tb.AddNote("ratio (rounds vs n·ln²n/δ) staying flat across n confirms Lemma 7's total-time bound")
	return tb, nil
}

// runE10 estimates the success probability of both algorithms across
// many seeds at a fixed mid-size instance.
func runE10(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	seeds := 100
	if cfg.Quick {
		seeds = 16
	}
	n := 512
	tb := &Table{
		ID: "E10", Title: "Success probability across seeds (n=512)",
		Claim:   "both algorithms meet w.h.p.; measured under scaled constants",
		Columns: []string{"algorithm", "δ", "trials", "met", "rate", "median", "p99", "bound", "p99/bound"},
	}
	// Whiteboard algorithm at δ = n^0.75.
	{
		d := int(math.Round(math.Pow(float64(n), 0.75)))
		g, sa, sb, err := plantedWorkload(n, d, uint64(n)*17)
		if err != nil {
			return nil, err
		}
		delta := g.MinDegree()
		bound := theorem1Bound(n, delta, g.MaxDegree())
		maxRounds := int64(400*bound) + 400_000
		outcomes, err := runAlgo(cfg, seeds, 1, g, sa, sb, "whiteboard", delta, maxRounds)
		if err != nil {
			return nil, err
		}
		rounds := metRounds(outcomes)
		tb.AddRow("whiteboard (Thm 1)", delta, seeds, len(rounds), stats.Rate(len(rounds), seeds),
			stats.Median(rounds), stats.Quantile(rounds, 0.99), bound, stats.Quantile(rounds, 0.99)/bound)
	}
	// No-whiteboard algorithm at δ = n^0.8.
	{
		d := int(math.Round(math.Pow(float64(n), 0.8)))
		g, sa, sb, err := plantedWorkload(n, d, uint64(n)*19)
		if err != nil {
			return nil, err
		}
		delta := g.MinDegree()
		bound := theorem2Bound(cfg.Params, n, delta)
		outcomes, err := runAlgo(cfg, seeds, 1, g, sa, sb, "noboard", delta, int64(40*bound))
		if err != nil {
			return nil, err
		}
		rounds := metRounds(outcomes)
		tb.AddRow("no-whiteboard (Thm 2)", delta, seeds, len(rounds), stats.Rate(len(rounds), seeds),
			stats.Median(rounds), stats.Quantile(rounds, 0.99), bound, stats.Quantile(rounds, 0.99)/bound)
	}
	tb.AddNote("the paper's constants push failure below n^{-c}; the scaled constants trade that exponent for simulability — rates here are the measured analogue")
	return tb, nil
}

// runA1 races the paper's two-step Construct against the strict-only
// strawman of §3.3. The separation is governed by the iteration count
// Θ(n/δ) (the strawman re-samples all of NS every iteration), so the
// workload pins δ = 2√n to make n/δ = √n/2 grow with n.
func runA1(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	if cfg.Seeds > 5 {
		cfg.Seeds = 5 // strict-only runs are long; cap the trials
	}
	sizes := []int{1024, 2048, 4096}
	if cfg.Quick {
		sizes = []int{256}
	}
	tb := &Table{
		ID: "A1", Title: "Ablation: two-step vs strict-only Construct (δ = 2√n, so n/δ grows)",
		Claim:   "§3.3: strict-only pays Θ(n/δ) strict Samples (Θ((n/δ)²·δ·polylog) visits); the optimistic pass removes the per-iteration factor",
		Columns: []string{"n", "δ", "n/δ", "two-step rounds", "strict-only rounds", "slowdown", "strict runs (2-step)", "strict runs (ablated)"},
	}
	ghost := func(e *sim.Env) {}
	strictParams := cfg.Params
	strictParams.StrictOnly = true
	for _, n := range sizes {
		d := 2 * int(math.Round(math.Sqrt(float64(n))))
		g, sa, _, err := plantedWorkload(n, d, uint64(n)*23)
		if err != nil {
			return nil, err
		}
		delta := g.MinDegree()
		run := func(p core.Params) (float64, float64) {
			type oc struct {
				rounds float64
				strict int
			}
			outcomes := runTrials(cfg, 1, func(_ int, seed uint64) oc {
				st := &core.WhiteboardStats{}
				_, err := sim.Run(sim.Config{
					Graph: g, StartA: sa, StartB: 0,
					NeighborIDs: true, Seed: seed,
					MaxRounds: 1 << 40, DisableMeeting: true,
				}, core.ConstructOnly(p, core.Knowledge{Delta: delta}, st), ghost)
				if err != nil {
					return oc{}
				}
				return oc{float64(st.ConstructRounds), st.StrictRuns}
			})
			var rounds []float64
			var strict stats.Summary
			for _, o := range outcomes {
				rounds = append(rounds, o.rounds)
				strict.Add(float64(o.strict))
			}
			return stats.Median(rounds), strict.Mean()
		}
		twoStep, strict2 := run(cfg.Params)
		strictOnly, strictAbl := run(strictParams)
		tb.AddRow(n, delta, float64(n)/float64(delta), twoStep, strictOnly, strictOnly/twoStep, strict2, strictAbl)
	}
	tb.AddNote("the slowdown grows with n/δ, matching the extra per-iteration strict Sample the strawman pays; at n/δ ≲ ln n the strawman is actually cheaper (whole-NS samples classify faster than difference-set ones), which is why the paper still needs its strict fallback")
	return tb, nil
}

// runA2 measures the overhead of the §4.1 doubling δ-estimation
// against exact knowledge, on two workloads: the quasi-regular family
// (no restarts ever trigger — the halved initial estimate is already a
// lower bound) and a heterogeneous variant with a planted low-degree
// vertex inside the start's 2-neighborhood, which forces genuine
// restarts and exercises Corollary 2's geometric series.
func runA2(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	sizes := []int{256, 512, 1024}
	if cfg.Quick {
		sizes = []int{256}
	}
	tb := &Table{
		ID: "A2", Title: "Ablation: doubling δ-estimation vs known δ (δ = n^0.75)",
		Claim:   "Cor. 2: the doubling updates form a geometric series — constant-factor overhead",
		Columns: []string{"n", "workload", "δ", "known-δ rounds", "doubling rounds", "overhead", "restarts (mean)"},
	}
	ghost := func(e *sim.Env) {}
	for _, n := range sizes {
		d := int(math.Round(math.Pow(float64(n), 0.75)))
		base, sa, _, err := plantedWorkload(n, d, uint64(n)*29)
		if err != nil {
			return nil, err
		}
		hetero, err := plantLowDegreeNeighbor(base, sa, d/4)
		if err != nil {
			return nil, err
		}
		workloads := []struct {
			name string
			g    *graph.Graph
		}{
			{"quasi-regular", base},
			{"planted low-δ", hetero},
		}
		for _, wl := range workloads {
			g := wl.g
			delta := g.MinDegree()
			run := func(know core.Knowledge) (float64, float64) {
				type oc struct {
					rounds   float64
					restarts int
				}
				outcomes := runTrials(cfg, 1, func(_ int, seed uint64) oc {
					st := &core.WhiteboardStats{}
					_, err := sim.Run(sim.Config{
						Graph: g, StartA: sa, StartB: 0,
						NeighborIDs: true, Seed: seed,
						MaxRounds: 1 << 40, DisableMeeting: true,
					}, core.ConstructOnly(cfg.Params, know, st), ghost)
					if err != nil {
						return oc{}
					}
					return oc{float64(st.ConstructRounds), st.Restarts}
				})
				var rounds []float64
				var restarts stats.Summary
				for _, o := range outcomes {
					rounds = append(rounds, o.rounds)
					restarts.Add(float64(o.restarts))
				}
				return stats.Median(rounds), restarts.Mean()
			}
			known, _ := run(core.Knowledge{Delta: delta})
			doubling, restarts := run(core.Knowledge{Doubling: true})
			tb.AddRow(n, wl.name, delta, known, doubling, doubling/known, restarts)
		}
	}
	tb.AddNote("quasi-regular never restarts (the halved initial estimate already lower-bounds δ) and the weaker α target even ends Construct earlier; the planted low-δ workload forces real restarts and still keeps the overhead O(1) — Corollary 2's geometric series")
	return tb, nil
}

// plantLowDegreeNeighbor adds one vertex of degree `deg` adjacent to
// start itself (plus deg-1 of start's neighbors). Being in N+(start),
// the new vertex is probed and sampled by Construct, so the doubling
// estimation is guaranteed to observe its low degree and restart.
func plantLowDegreeNeighbor(g *graph.Graph, start graph.Vertex, deg int) (*graph.Graph, error) {
	if deg < 1 {
		deg = 1
	}
	if deg > g.Degree(start) {
		deg = g.Degree(start)
	}
	b := graph.NewBuilder(g.N() + 1)
	for v := graph.Vertex(0); int(v) < g.N(); v++ {
		for _, w := range g.Adj(v) {
			if v < w {
				b.MustAddEdge(v, w)
			}
		}
	}
	x := graph.Vertex(g.N())
	b.MustAddEdge(x, start)
	for _, w := range g.Adj(start)[:deg-1] {
		b.MustAddEdge(x, w)
	}
	return b.Build()
}
