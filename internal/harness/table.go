package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is an experiment's rendered result: a titled grid plus free-form
// notes (fitted exponents, pass rates, caveats).
type Table struct {
	ID      string
	Title   string
	Claim   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a formatted note line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.4g", v)
	return s
}

// Render formats the table as GitHub-flavored markdown (directly
// embeddable in EXPERIMENTS.md).
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&b, "Claim: %s\n\n", t.Claim)
	}
	if len(t.Columns) > 0 {
		widths := make([]int, len(t.Columns))
		for i, c := range t.Columns {
			widths[i] = len([]rune(c))
		}
		for _, row := range t.Rows {
			for i, cell := range row {
				if i < len(widths) && len([]rune(cell)) > widths[i] {
					widths[i] = len([]rune(cell))
				}
			}
		}
		writeRow := func(cells []string) {
			b.WriteString("|")
			for i, w := range widths {
				cell := ""
				if i < len(cells) {
					cell = cells[i]
				}
				fmt.Fprintf(&b, " %-*s |", w, cell)
			}
			b.WriteString("\n")
		}
		writeRow(t.Columns)
		b.WriteString("|")
		for _, w := range widths {
			b.WriteString(strings.Repeat("-", w+2))
			b.WriteString("|")
		}
		b.WriteString("\n")
		for _, row := range t.Rows {
			writeRow(row)
		}
		b.WriteString("\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "- %s\n", n)
	}
	return b.String()
}

// WriteCSV emits the grid (header + rows) as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	if err := cw.WriteAll(t.Rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}
