package harness

import (
	"math"

	"fnr/internal/core"
	"fnr/internal/engine"
	"fnr/internal/graph"
	"fnr/internal/sim"
	"fnr/internal/stats"
)

// theorem1Bound evaluates the Theorem-1 round bound
// n/δ·ln²n + √(n∆/δ)·ln n (constants dropped). Note the reading of the
// paper's typeset bound: the whole fraction n∆/δ sits under the root —
// the proof of Lemma 1 computes h·(∆+1)/(δ/16) = Θ(√(n∆/δ)), and only
// this reading degenerates to Anderson–Weber's Θ(√n) on complete
// graphs.
func theorem1Bound(n, delta, maxDeg int) float64 {
	ln := math.Log(float64(n))
	return float64(n)/float64(delta)*ln*ln + lemma1Bound(n, delta, maxDeg)
}

// lemma1Bound evaluates the Main-Rendezvous-only bound √(n∆/δ)·ln n of
// Lemma 1 (the cost after T^a exists).
func lemma1Bound(n, delta, maxDeg int) float64 {
	return math.Sqrt(float64(n)*float64(maxDeg)/float64(delta)) * math.Log(float64(n))
}

// theorem2Bound evaluates the Theorem-2 round bound n/√δ·ln²n plus the
// t' start barrier the algorithm pays under params p.
func theorem2Bound(p core.Params, n, delta int) float64 {
	ln := math.Log(float64(n))
	tPrime := p.C1 * float64(n) * ln * ln / float64(delta)
	return tPrime + float64(n)/math.Sqrt(float64(delta))*ln*ln
}

// mainPhaseTrial runs the warm-start Main-Rendezvous (oracle dense set,
// Lemma 1 isolation) once.
func mainPhaseTrial(g *graph.Graph, sa, sb graph.Vertex, seed uint64, maxRounds int64) engine.Outcome {
	t, via := core.DenseSetOracle(g, sa)
	return runPair(g, sa, sb, seed, maxRounds, true, true,
		core.MainPhaseAgentA(t, via), core.AgentB())
}

// runE1 sweeps n with δ = n^{3/4}: end-to-end Main-Rendezvous against
// the Theorem-1 bound, and the warm-start main phase against Lemma 1's
// bound. End-to-end runs meet whenever the agents co-locate, including
// incidentally during Construct — that is the model's real semantics
// and only helps the upper bound; the warm-start column isolates the
// designed whiteboard mechanism.
func runE1(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	sizes := []int{256, 512, 1024, 2048}
	if cfg.Quick {
		sizes = []int{256, 512}
	}
	tb := &Table{
		ID: "E1", Title: "Theorem 1 scaling in n (δ = n^0.75, quasi-regular)",
		Claim:   "end-to-end = O(n/δ·log²n + √(n∆/δ)·log n); main phase alone = O(√(n∆/δ)·log n) (Lemma 1)",
		Columns: []string{"n", "δ", "∆", "met", "e2e median", "Thm1 bound", "e2e/bound", "mainphase median", "L1 bound", "mp/L1"},
	}
	specs := make([]workloadSpec, len(sizes))
	for i, n := range sizes {
		d := int(math.Round(math.Pow(float64(n), 0.75)))
		specs[i] = workloadSpec{n: n, d: d, seed: uint64(n)}
	}
	workloads, err := plantedWorkloads(cfg, specs)
	if err != nil {
		return nil, err
	}
	var ns, e2eMed, mpMed []float64
	for i, n := range sizes {
		g, sa, sb := workloads[i].g, workloads[i].sa, workloads[i].sb
		delta := g.MinDegree()
		bound := theorem1Bound(n, delta, g.MaxDegree())
		l1 := lemma1Bound(n, delta, g.MaxDegree())
		maxRounds := int64(400*bound) + 400_000
		e2e, err := runAlgo(cfg, cfg.Seeds, 1, g, sa, sb, "whiteboard", delta, maxRounds)
		if err != nil {
			return nil, err
		}
		mp := runTrials(cfg, 1000, func(_ int, seed uint64) engine.Outcome {
			return mainPhaseTrial(g, sa, sb, seed, maxRounds)
		})
		e2eRounds := metRounds(e2e)
		mpRounds := metRounds(mp)
		em, mm := stats.Median(e2eRounds), stats.Median(mpRounds)
		tb.AddRow(n, delta, g.MaxDegree(), len(e2eRounds), em, bound, em/bound, mm, l1, mm/l1)
		if len(e2eRounds) > 0 && len(mpRounds) > 0 {
			ns = append(ns, float64(n))
			e2eMed = append(e2eMed, em)
			mpMed = append(mpMed, mm)
		}
	}
	if fit, err := stats.LogLogSlope(ns, e2eMed); err == nil {
		tb.AddNote("end-to-end scaling: rounds ~ n^%.2f (R²=%.3f) — dominated by incidental meetings during Construct at these n, always ≤ the bound", fit.Slope, fit.R2)
	}
	if fit, err := stats.LogLogSlope(ns, mpMed); err == nil {
		tb.AddNote("main-phase scaling: rounds ~ n^%.2f (R²=%.3f); Lemma 1 predicts √(n∆/δ)·ln n ~ n^0.5·ln n on this quasi-regular family (∆ ≈ δ) — the birthday-style collision of a's probes with b's marks", fit.Slope, fit.R2)
	}
	tb.AddNote("bound reading: the paper's typeset '√n∆/δ' places the whole fraction under the root (the Lemma-1 arithmetic h·(∆+1)/(δ/16) = Θ(√(n∆/δ)) confirms it; the other reading would beat Anderson–Weber's optimal Θ(√n) on complete graphs)")
	return tb, nil
}

// runE2 fixes n and sweeps δ, racing the designed mechanism (warm-start
// main phase) and the end-to-end algorithm against the trivial O(∆)
// sweep to locate the paper's δ = ω(√n·log n) crossover.
func runE2(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	n := 1024
	deltas := []int{32, 64, 128, 256, 512}
	if cfg.Quick {
		n = 256
		deltas = []int{16, 64, 128}
	}
	tb := &Table{
		ID: "E2", Title: "Theorem 1 crossover vs trivial sweep (fixed n)",
		Claim:   "rendezvous becomes o(∆) once δ = ω(√n·log n): the main phase must overtake the ∆-sweep as δ grows",
		Columns: []string{"n", "δ", "∆", "sweep median", "mainphase median", "e2e median", "mp winner", "mp/sweep"},
	}
	sqrtNlogN := math.Sqrt(float64(n)) * math.Log(float64(n))
	specs := make([]workloadSpec, len(deltas))
	for i, d := range deltas {
		specs[i] = workloadSpec{n: n, d: d, seed: uint64(n)*31 + uint64(d)}
	}
	workloads, err := plantedWorkloads(cfg, specs)
	if err != nil {
		return nil, err
	}
	for i := range deltas {
		g, sa, sb := workloads[i].g, workloads[i].sa, workloads[i].sb
		delta := g.MinDegree()
		bound := theorem1Bound(n, delta, g.MaxDegree())
		maxRounds := int64(400*bound) + 400_000
		sweepOut, err := runAlgo(cfg, cfg.Seeds, 1, g, sa, sb, "sweep", 0, int64(4*g.MaxDegree()+16))
		if err != nil {
			return nil, err
		}
		mpOut := runTrials(cfg, 1000, func(_ int, seed uint64) engine.Outcome {
			return mainPhaseTrial(g, sa, sb, seed, maxRounds)
		})
		e2eOut, err := runAlgo(cfg, cfg.Seeds, 1, g, sa, sb, "whiteboard", delta, maxRounds)
		if err != nil {
			return nil, err
		}
		sweepMed := stats.Median(metRounds(sweepOut))
		mpMed := stats.Median(metRounds(mpOut))
		e2eMed := stats.Median(metRounds(e2eOut))
		winner := "sweep"
		if mpMed < sweepMed {
			winner = "main"
		}
		tb.AddRow(n, delta, g.MaxDegree(), sweepMed, mpMed, e2eMed, winner, mpMed/sweepMed)
	}
	tb.AddNote("√n·log n = %.0f at n=%d: the main phase overtakes the sweep as δ crosses that threshold", sqrtNlogN, n)
	tb.AddNote("end-to-end includes Construct, whose calibrated constant (~50–90·n·ln²n/δ) keeps the full-algorithm crossover beyond laptop n — the asymptotic statement is about the mechanism, which the mp column measures")
	return tb, nil
}

// runE3 sweeps n with δ = n^{0.8} for the no-whiteboard algorithm:
// as-specified runs (incidental meetings included) and mechanism runs
// with meeting detection gated to the t' barrier, isolating the
// phase-intersection rendezvous of Algorithm 4.
func runE3(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	sizes := []int{256, 512, 1024}
	if cfg.Quick {
		sizes = []int{256}
	}
	tb := &Table{
		ID: "E3", Title: "Theorem 2 scaling (no whiteboards, tight naming, δ = n^0.8)",
		Claim:   "rounds after t' = O(n/√δ·log²n) w.h.p., using no whiteboards",
		Columns: []string{"n", "δ", "IDs", "met", "e2e median", "designed met", "designed median−t'", "phase bound", "designed/bound", "overflow"},
	}
	specs := make([]workloadSpec, len(sizes))
	for i, n := range sizes {
		d := int(math.Round(math.Pow(float64(n), 0.8)))
		specs[i] = workloadSpec{n: n, d: d, seed: uint64(n) * 7}
	}
	workloads, err := plantedWorkloads(cfg, specs)
	if err != nil {
		return nil, err
	}
	var ns, desMed []float64
	type labeled struct {
		name string
		g    *graph.Graph
	}
	for i, n := range sizes {
		g0, sa, sb := workloads[i].g, workloads[i].sa, workloads[i].sb
		labelings := []labeled{
			{"uniform", g0},
			{"adversarial", adversarialRelabel(g0, sb)},
		}
		for _, lb := range labelings {
			g := lb.g
			delta := g.MinDegree()
			ln := math.Log(float64(n))
			tPrime := int64(math.Ceil(cfg.Params.C1 * float64(g.NPrime()) * ln * ln / float64(delta)))
			phaseBound := float64(n) / math.Sqrt(float64(delta)) * ln * ln
			sched := tPrime + int64(40*phaseBound) + 400_000
			e2e, err := runAlgo(cfg, cfg.Seeds, 1, g, sa, sb, "noboard", delta, sched)
			if err != nil {
				return nil, err
			}
			// Designed-mechanism measurement: let the schedule play out
			// in full (meeting detection off), record every
			// co-location, and take the first one inside one of agent
			// a's slot residencies — i.e. b's sweep stepping onto a
			// waiting a, the rendezvous event Theorem 2's proof
			// constructs.
			type coloc struct {
				round int64
				pos   graph.Vertex
			}
			type oc struct {
				engine.Outcome
				overflow int
			}
			mech := runTrials(cfg, 1, func(_ int, seed uint64) oc {
				st := &core.NoboardStats{}
				a, b := core.NoboardAgents(cfg.Params, delta, st)
				var events []coloc
				_, err := sim.Run(sim.Config{
					Graph: g, StartA: sa, StartB: sb,
					NeighborIDs: true, Whiteboards: false,
					Seed: seed, MaxRounds: sched,
					DisableMeeting: true,
					Observer: func(ev sim.RoundEvent) {
						if ev.PosA == ev.PosB {
							events = append(events, coloc{ev.Round, ev.PosA})
						}
					},
				}, a, b)
				out := oc{overflow: st.OverflowPhasesA + st.OverflowPhasesB}
				if err != nil {
					return out
				}
				for _, ev := range events {
					id := g.ID(ev.pos)
					for _, r := range st.Residencies {
						if r.VertexID == id && ev.round >= r.From && ev.round <= r.To {
							out.Met = true
							out.Rounds = ev.round - tPrime
							return out
						}
					}
				}
				return out
			})
			var mechPlain []engine.Outcome
			overflow := 0
			for _, o := range mech {
				mechPlain = append(mechPlain, o.Outcome)
				overflow += o.overflow
			}
			e2eRounds := metRounds(e2e)
			desRounds := metRounds(mechPlain)
			dm := stats.Median(desRounds)
			tb.AddRow(n, delta, lb.name, len(e2eRounds), stats.Median(e2eRounds),
				len(desRounds), dm, phaseBound, dm/phaseBound, overflow)
			if lb.name == "adversarial" && len(desRounds) > 0 {
				ns = append(ns, float64(n))
				desMed = append(desMed, dm)
			}
		}
	}
	if fit, err := stats.LogLogSlope(ns, desMed); err == nil {
		tb.AddNote("adversarial-ID designed-meeting scaling: rounds-after-t' ~ n^%.2f (R²=%.3f); bound n/√δ·ln²n ~ n^0.6·ln²n", fit.Slope, fit.R2)
	}
	tb.AddNote("uniform IDs place Φ^a∩Φ^b vertices in early intervals, so phase 1 usually succeeds (the bound is a worst case over ID placement); the adversarial labeling packs N+(b's start) into the top of the ID space, forcing the schedule to run to its last phases — that series carries the n/√δ·ln²n shape")
	tb.AddNote("e2e runs usually meet during Construct or in transit (real model semantics, ≤ the bound); the designed column isolates phase-intersection meetings (b stepping onto a slot-resident a)")
	tb.AddNote("runs execute with whiteboards disabled: any write would fail the run")
	return tb, nil
}

// adversarialRelabel returns a copy of g whose IDs place the closed
// neighborhood of pivot at the very top of the (tight) ID space,
// pushing every Φ^a∩Φ^b candidate into Algorithm 4's final phases —
// the worst case its analysis pays for.
func adversarialRelabel(g *graph.Graph, pivot graph.Vertex) *graph.Graph {
	n := g.N()
	b := graph.Rebuild(g)
	inNb := make(map[graph.Vertex]bool, g.Degree(pivot)+1)
	inNb[pivot] = true
	for _, w := range g.Adj(pivot) {
		inNb[w] = true
	}
	lo, hi := int64(0), int64(n-len(inNb))
	for v := graph.Vertex(0); int(v) < n; v++ {
		if inNb[v] {
			b.SetID(v, hi)
			hi++
		} else {
			b.SetID(v, lo)
			lo++
		}
	}
	return b.MustBuild()
}
