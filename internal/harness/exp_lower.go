package harness

import (
	"math"

	"fnr/internal/lower"
	"fnr/internal/sim"
	"fnr/internal/stats"
)

// lowerStrategy is one registered strategy raced on a lower-bound
// instance: the table's display label plus the registry name the
// engine resolves.
type lowerStrategy struct {
	label string
	algo  string
}

func walkStrategies() []lowerStrategy {
	return []lowerStrategy{
		{label: "stay+walk", algo: "staywalk"},
		{label: "walk+walk", algo: "walkpair"},
	}
}

// raceOnInstance batches a strategy on an instance across seeds and
// returns the median meeting round (misses count as the budget) and
// the success count.
func raceOnInstance(cfg Config, inst *lower.Instance, s lowerStrategy, delta int, budget int64) (float64, int, error) {
	outcomes, err := runAlgo(cfg, cfg.Seeds, 1, inst.G, inst.StartA, inst.StartB, s.algo, delta, budget)
	if err != nil {
		return 0, 0, err
	}
	var rounds []float64
	met := 0
	for _, o := range outcomes {
		rounds = append(rounds, float64(o.Rounds))
		if o.Met {
			met++
		}
	}
	return stats.Median(rounds), met, nil
}

// runE6 measures Ω(∆) behaviour on the Theorem-3 instances (δ = o(√n)).
func runE6(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	halves := []int{128, 256, 512, 1024}
	if cfg.Quick {
		halves = []int{64, 128}
	}
	tb := &Table{
		ID: "E6", Title: "Theorem 3 / Fig. 1: two-star instances (δ=1, ∆=Θ(n))",
		Claim:   "every strategy — including the paper's own algorithm — needs Ω(∆) rounds",
		Columns: []string{"n", "∆", "strategy", "median rounds", "met", "median/∆"},
	}
	strategies := append(walkStrategies(), lowerStrategy{label: "sweep", algo: "sweep"})
	for _, half := range halves {
		inst, err := lower.TwoStarsInstance(half)
		if err != nil {
			return nil, err
		}
		maxDeg := float64(inst.G.MaxDegree())
		budget := int64(float64(inst.G.N()) * 64 * math.Log(float64(inst.G.N())))
		for _, s := range strategies {
			med, met, err := raceOnInstance(cfg, inst, s, 1, budget)
			if err != nil {
				return nil, err
			}
			tb.AddRow(inst.G.N(), inst.G.MaxDegree(), s.label, med, met, med/maxDeg)
		}
		// The paper's own algorithm (δ known = 1) degrades to Ω(n)
		// here — Theorem 3 says it must. Kept to the smaller sizes:
		// with δ = 1 its Sample phase alone costs Θ(n·log n) visits.
		if half <= 256 {
			s := lowerStrategy{label: "main (Thm 1 alg)", algo: "whiteboard"}
			med, met, err := raceOnInstance(cfg, inst, s, 1, budget*8)
			if err != nil {
				return nil, err
			}
			tb.AddRow(inst.G.N(), inst.G.MaxDegree(), s.label, med, met, med/maxDeg)
		}
	}
	tb.AddNote("median/∆ bounded below by a constant across n ⇒ Ω(∆) as predicted; no strategy is sublinear (misses are recorded at the round budget)")
	tb.AddNote("walk+walk never meets: the two-star instance is bipartite with the agents starting on opposite sides, and synchronized walkers preserve that parity forever — the symmetry trap the paper's introduction describes")
	return tb, nil
}

// runE7 measures Ω(n) behaviour on the Theorem-4 KT0 instances.
func runE7(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	sizes := []int{128, 256, 512, 1024}
	if cfg.Quick {
		sizes = []int{64, 128}
	}
	tb := &Table{
		ID: "E7", Title: "Theorem 4 / Fig. 2: bridged clique pairs without neighbor IDs",
		Claim:   "in KT0 the bridge hides among clique ports: Ω(n) rounds",
		Columns: []string{"n", "strategy", "median rounds", "met", "median/n"},
	}
	for _, n := range sizes {
		inst, err := lower.KT0Instance(n)
		if err != nil {
			return nil, err
		}
		budget := int64(n) * int64(n) / 2
		for _, s := range walkStrategies() {
			med, met, err := raceOnInstance(cfg, inst, s, 0, budget)
			if err != nil {
				return nil, err
			}
			tb.AddRow(n, s.label, med, met, med/float64(n))
		}
	}
	tb.AddNote("median/n stays bounded below ⇒ Ω(n) (Theorem 4's bound); these port-blind walkers in fact pay ~n² — crossing either bridge is a 1/Θ(n) event at a 1/Θ(n) vertex")
	tb.AddNote("the walkers declare no neighbor-ID capability, so the engine runs them in KT0 — the experiment physically cannot cheat")
	return tb, nil
}

// runE8 measures Ω(n) behaviour at initial distance two (Theorem 5),
// including the distance-1 algorithm's failure.
func runE8(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	sizes := []int{65, 129, 257, 513}
	if cfg.Quick {
		sizes = []int{65, 129}
	}
	tb := &Table{
		ID: "E8", Title: "Theorem 5 / Fig. 3: cliques sharing one vertex, initial distance 2",
		Claim:   "distance 2 forces Ω(n) rounds; the Theorem-1 algorithm (built for distance 1) fails outright",
		Columns: []string{"n", "δ", "strategy", "median rounds", "met", "median/n"},
	}
	for _, size := range sizes {
		inst, err := lower.Distance2Instance(size)
		if err != nil {
			return nil, err
		}
		n := inst.G.N()
		budget := int64(n) * 256
		for _, s := range walkStrategies() {
			med, met, err := raceOnInstance(cfg, inst, s, 0, budget)
			if err != nil {
				return nil, err
			}
			tb.AddRow(n, inst.G.MinDegree(), s.label, med, met, med/float64(n))
		}
		// The paper's whiteboard algorithm assumes distance 1: b's
		// marks carry an ID that a cannot reach in one hop, so the
		// algorithm never completes (recorded as met=0).
		if size <= 129 {
			s := lowerStrategy{label: "main (Thm 1 alg)", algo: "whiteboard"}
			med, met, err := raceOnInstance(cfg, inst, s, inst.G.MinDegree(), budget)
			if err != nil {
				return nil, err
			}
			tb.AddRow(n, inst.G.MinDegree(), s.label, med, met, med/float64(n))
		}
	}
	tb.AddNote("the distance-1 assumption is load-bearing: Theorem 1's algorithm stalls at distance 2 exactly as Theorem 5 predicts")
	return tb, nil
}

// runE9 builds the Theorem-6 adversarial instances and verifies that
// deterministic agent pairs cannot meet before n/32 rounds.
func runE9(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	sizes := []int{64, 128, 256, 512}
	if cfg.Quick {
		sizes = []int{64, 128}
	}
	tb := &Table{
		ID: "E9", Title: "Theorem 6 / Lemma 9: adaptive adversary vs deterministic pairs",
		Claim:   "the glued instance prevents rendezvous for ≥ n/32 rounds, with probability one",
		Columns: []string{"n", "pair", "δ", "n/32", "met by n/32", "meet round (8n budget)"},
	}
	pairs := []struct {
		name     string
		mkA, mkB func() lower.DetAgent
	}{
		{"sweep/sweep", lower.NewGreedySweep, lower.NewGreedySweep},
		{"dfs/dfs", lower.NewLexDFS, lower.NewLexDFS},
		{"sweep/dfs", lower.NewGreedySweep, lower.NewLexDFS},
		{"desc/desc", lower.NewGreedySweepDesc, lower.NewGreedySweepDesc},
	}
	for _, n := range sizes {
		for _, p := range pairs {
			inst, err := lower.Theorem6Instance(n, p.mkA, p.mkB)
			if err != nil {
				return nil, err
			}
			// Phase 1: the theorem's window — must not meet.
			short, err := sim.Run(sim.Config{
				Graph: inst.G, StartA: inst.StartA, StartB: inst.StartB,
				NeighborIDs: true, MaxRounds: inst.LowerBound,
			}, lower.AsProgram(p.mkA()), lower.AsProgram(p.mkB()))
			if err != nil {
				return nil, err
			}
			// Phase 2: a long budget to see when (if ever) they meet.
			long, err := sim.Run(sim.Config{
				Graph: inst.G, StartA: inst.StartA, StartB: inst.StartB,
				NeighborIDs: true, MaxRounds: int64(8 * n),
			}, lower.AsProgram(p.mkA()), lower.AsProgram(p.mkB()))
			if err != nil {
				return nil, err
			}
			meet := "never"
			if long.Met {
				meet = trimFloat(float64(long.MeetRound))
			}
			tb.AddRow(n, p.name, inst.G.MinDegree(), inst.LowerBound, short.Met, meet)
		}
	}
	tb.AddNote("\"met by n/32\" must be false everywhere — that is Theorem 6's statement; δ = Θ(n) per Lemma 9(ii)")
	return tb, nil
}
