package harness

import (
	"os"
	"testing"
)

// TestPrintQuickTables is a development aid: FNR_PRINT=1 go test -run PrintQuick
func TestPrintQuickTables(t *testing.T) {
	if os.Getenv("FNR_PRINT") == "" {
		t.Skip("set FNR_PRINT=1 to print")
	}
	cfg := Config{Quick: true, Seeds: 3}
	for _, e := range All() {
		tb, err := e.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		t.Logf("\n%s", tb.Render())
	}
}
