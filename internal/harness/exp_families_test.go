package harness

import (
	"hash/fnv"
	"testing"

	"fnr/internal/graph"
)

// workloadHash digests an E12 workload: the graph's full observable
// topology (sizes, ID table, adjacency in port order) plus the start
// pair drawn from the same stream.
func workloadHash(w workload) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(x uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(x >> (8 * i))
		}
		h.Write(buf[:])
	}
	g := w.g
	put(uint64(g.N()))
	put(uint64(g.NPrime()))
	for v := graph.Vertex(0); int(v) < g.N(); v++ {
		put(uint64(g.ID(v)))
	}
	for v := graph.Vertex(0); int(v) < g.N(); v++ {
		put(uint64(g.Degree(v)))
		for _, u := range g.Adj(v) {
			put(uint64(u))
		}
	}
	put(uint64(w.sa))
	put(uint64(w.sb))
	return h.Sum64()
}

// TestE12WorkloadStreamsPinned pins the per-family draw streams of the
// E12 sweep after their re-seeding from (n, familyIndex): each family
// now generates from its own PCG stream, so the sweep parallelizes
// like E1–E3. If a hash moves, the derivation (or a generator's draw
// sequence) changed and every recorded E12 table is invalidated.
func TestE12WorkloadStreamsPinned(t *testing.T) {
	want := map[int][]uint64{
		128: {0xb136116dcf2af37c, 0x468a2ca491b3c202, 0xa7e32e84564e34ee, 0xd4414a691426ba93, 0x7e50f5da82ffbdf7},
		512: {0xc8be577aaafd244b, 0xbc1528b9ca0b8267, 0xc7b29f17b913f2de, 0x6d8761aa46e60110, 0xc854fff6e18fc044},
	}
	for _, n := range []int{128, 512} {
		families := e12Families(n)
		if len(families) != len(want[n]) {
			t.Fatalf("n=%d: %d families, want %d", n, len(families), len(want[n]))
		}
		for i, f := range families {
			w, err := e12Workload(n, i, f)
			if err != nil {
				t.Fatalf("n=%d family %q: %v", n, f.name, err)
			}
			if h := workloadHash(w); h != want[n][i] {
				t.Errorf("n=%d family %q: workload hash = %#x, want %#x", n, f.name, h, want[n][i])
			}
		}
	}
}

// TestE12WorkloadsParallelDeterministic pins that the parallel fan-out
// returns the same workloads at any worker count.
func TestE12WorkloadsParallelDeterministic(t *testing.T) {
	n := 128
	families := e12Families(n)
	w1, err := e12Workloads(Config{Workers: 1}.withDefaults(), n, families)
	if err != nil {
		t.Fatal(err)
	}
	w8, err := e12Workloads(Config{Workers: 8}.withDefaults(), n, families)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w1 {
		if !w1[i].g.Equal(w8[i].g) || w1[i].sa != w8[i].sa || w1[i].sb != w8[i].sb {
			t.Errorf("family %d: workloads differ across worker counts", i)
		}
	}
}
