package harness

import (
	"math"
	"math/rand/v2"

	"fnr/internal/core"
	"fnr/internal/graph"
	"fnr/internal/sim"
	"fnr/internal/stats"
)

// e12Family is one graph family of the E12 sweep. The generator takes
// the family's private RNG so that families are independent streams.
type e12Family struct {
	name string
	gen  func(rng *rand.Rand) (*graph.Graph, error)
}

// e12Families returns the family list for size n: structurally
// different graphs, all satisfying δ ≥ √n.
func e12Families(n int) []e12Family {
	d := int(math.Round(math.Pow(float64(n), 0.75)))
	return []e12Family{
		{"complete", func(*rand.Rand) (*graph.Graph, error) { return graph.Complete(n) }},
		{"planted n^0.75", func(rng *rand.Rand) (*graph.Graph, error) { return graph.PlantedMinDegree(n, d, rng) }},
		{"random regular", func(rng *rand.Rand) (*graph.Graph, error) { return graph.RandomRegular(n, d+d%2, rng) }},
		{"dense gnp", func(rng *rand.Rand) (*graph.Graph, error) { return graph.GNP(n, 0.5, rng) }},
		{"planted √n·2logn", func(rng *rand.Rand) (*graph.Graph, error) {
			dd := int(2 * math.Sqrt(float64(n)) * math.Log2(float64(n)) / 2)
			if dd >= n {
				dd = n - 1
			}
			return graph.PlantedMinDegree(n, dd, rng)
		}},
	}
}

// e12Rand derives family famIdx's private PCG stream from (n, famIdx),
// so every family's draws are independent of list order and of the
// other families — the workloads can generate in parallel. The
// resulting draw streams are pinned by hash tests; changing this
// derivation invalidates them.
func e12Rand(n, famIdx int) *rand.Rand {
	return rand.New(rand.NewPCG(uint64(n), 0xfa111e5+uint64(famIdx)))
}

// e12Workload generates family famIdx's instance and start pair from
// its private stream.
func e12Workload(n, famIdx int, fam e12Family) (workload, error) {
	rng := e12Rand(n, famIdx)
	g, err := fam.gen(rng)
	if err != nil {
		return workload{}, err
	}
	sa := graph.Vertex(rng.IntN(g.N()))
	for g.Degree(sa) == 0 {
		sa = graph.Vertex(rng.IntN(g.N()))
	}
	sb := g.Adj(sa)[rng.IntN(g.Degree(sa))]
	return workload{g: g, sa: sa, sb: sb}, nil
}

// e12Workloads generates every family's workload in parallel across
// the engine worker pool, like E1–E3's planted workloads. Each
// instance depends only on (n, famIdx), so parallelism changes
// wall-clock time only.
func e12Workloads(cfg Config, n int, families []e12Family) ([]workload, error) {
	return genWorkloads(cfg, len(families), func(i int) (workload, error) {
		return e12Workload(n, i, families[i])
	})
}

// runE12 stresses the Theorem-1 guarantee across structurally different
// graph families, all satisfying δ ≥ √n: the w.h.p. statement is
// universal over the class G(∆̂, δ̂), not a property of one workload.
// For each family the experiment reports the end-to-end success rate,
// the median against the evaluated bound, and whether Construct's
// output verified dense.
func runE12(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	n := 512
	if cfg.Quick {
		n = 128
	}
	families := e12Families(n)
	workloads, err := e12Workloads(cfg, n, families)
	if err != nil {
		return nil, err
	}
	tb := &Table{
		ID: "E12", Title: "Theorem 1 across graph families (δ ≥ √n everywhere)",
		Claim:   "the w.h.p. guarantee is universal over the instance class, not an artifact of one workload",
		Columns: []string{"family", "n", "δ", "∆", "met", "median", "bound", "median/bound", "dense ok"},
	}
	ghost := func(e *sim.Env) {}
	for i, f := range families {
		g, sa, sb := workloads[i].g, workloads[i].sa, workloads[i].sb
		delta := g.MinDegree()
		bound := theorem1Bound(g.N(), delta, g.MaxDegree())
		maxRounds := int64(400*bound) + 400_000
		outcomes, err := runAlgo(cfg, cfg.Seeds, 1, g, sa, sb, "whiteboard", delta, maxRounds)
		if err != nil {
			return nil, err
		}
		// Dense verification on one construct-only run per family.
		st := &core.WhiteboardStats{}
		_, err = sim.Run(sim.Config{
			Graph: g, StartA: sa, StartB: sb,
			NeighborIDs: true, Seed: 99,
			MaxRounds: 1 << 40, DisableMeeting: true,
		}, core.ConstructOnly(cfg.Params, core.Knowledge{Delta: delta}, st), ghost)
		if err != nil {
			return nil, err
		}
		denseOK := core.VerifyDense(g, sa, st.T, float64(delta)/cfg.Params.AlphaDen, 2) == nil
		rounds := metRounds(outcomes)
		med := stats.Median(rounds)
		tb.AddRow(f.name, g.N(), delta, g.MaxDegree(), len(rounds), med, bound, med/bound, denseOK)
	}
	tb.AddNote("every family satisfies δ ≥ √n = %.0f; medians stay within a small constant of the evaluated bound on all of them", math.Sqrt(float64(n)))
	return tb, nil
}
