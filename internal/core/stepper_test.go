package core

import (
	"math/rand/v2"
	"reflect"
	"strings"
	"testing"

	"fnr/internal/graph"
	"fnr/internal/sim"
)

// The core-level differential suite: the native stepper machines must
// reproduce the Program reference implementations not merely in
// outcomes (the engine suite pins that) but in the full simulation
// Result and in every diagnostic stat — iteration counts, sample
// visits, restarts, the constructed T^a, phase overflows, residency
// windows. Any drift in RNG draw order or action sequencing shows up
// here first.

type diffCase struct {
	name string
	g    *graph.Graph
}

// sameResult compares two simulation Results field by field (Result
// carries a per-agent stats slice on k > 2 runs, so it is not
// comparable with ==; both runs here are two-agent, but the helper
// checks the slice anyway).
func sameResult(a, b *sim.Result) bool {
	if a.Met != b.Met || a.MeetRound != b.MeetRound || a.MeetVertex != b.MeetVertex ||
		a.Rounds != b.Rounds || a.A != b.A || a.B != b.B || a.Writes != b.Writes {
		return false
	}
	if len(a.Agents) != len(b.Agents) {
		return false
	}
	for i := range a.Agents {
		if a.Agents[i] != b.Agents[i] {
			return false
		}
	}
	return true
}

func diffInstances(t *testing.T) []diffCase {
	t.Helper()
	rng := rand.New(rand.NewPCG(31, 32))
	planted, err := graph.PlantedMinDegree(128, 40, rng)
	if err != nil {
		t.Fatal(err)
	}
	complete, err := graph.Complete(24)
	if err != nil {
		t.Fatal(err)
	}
	b := graph.Rebuild(planted)
	b.PermuteIDs(rng)
	permuted := b.MustBuild()
	return []diffCase{{"planted128", planted}, {"k24", complete}, {"permuted128", permuted}}
}

// Stats note: the goroutine (channel) adapter lets a program run
// ahead eagerly after submitting an action, so when a run ends on the
// program's final move its diagnostics may include one trailing
// counter bump the suspended forms never execute. The simulation
// Result is identical on all three hostings; for the diagnostics the
// reference is the coroutine-hosted program — the exact execution the
// engine's fast path ran before the native rewrite.
func TestWhiteboardStepperMatchesProgramExactly(t *testing.T) {
	for _, inst := range diffInstances(t) {
		sa, sb := adjacentStarts(t, inst.g)
		for _, know := range []Knowledge{
			{Delta: inst.g.MinDegree()},
			{Doubling: true},
		} {
			mode := "known"
			if know.Doubling {
				mode = "doubling"
			}
			for seed := uint64(1); seed <= 4; seed++ {
				cfg := sim.Config{
					Graph: inst.g, StartA: sa, StartB: sb,
					NeighborIDs: true, Whiteboards: true,
					Seed: seed, MaxRounds: 1 << 22,
				}
				cst := &WhiteboardStats{}
				progA, progB := WhiteboardAgents(PracticalParams(), know, cst)
				cres, cerr := sim.Run(cfg, progA, progB)
				if cerr != nil {
					t.Fatalf("%s/%s/seed%d goroutine program: %v", inst.name, mode, seed, cerr)
				}
				pst := &WhiteboardStats{}
				progA, progB = WhiteboardAgents(PracticalParams(), know, pst)
				pres, perr := sim.RunSteppers(cfg, sim.NewProgramStepper(progA), sim.NewProgramStepper(progB))
				if perr != nil {
					t.Fatalf("%s/%s/seed%d coroutine program: %v", inst.name, mode, seed, perr)
				}
				nst := &WhiteboardStats{}
				stA, stB := WhiteboardSteppers(PracticalParams(), know, nst)
				nres, nerr := sim.RunSteppers(cfg, stA, stB)
				if nerr != nil {
					t.Fatalf("%s/%s/seed%d native: %v", inst.name, mode, seed, nerr)
				}
				if !sameResult(cres, nres) || !sameResult(pres, nres) {
					t.Errorf("%s/%s/seed%d: results differ:\ngoroutine: %+v\ncoroutine: %+v\nnative:    %+v",
						inst.name, mode, seed, cres, pres, nres)
				}
				if !reflect.DeepEqual(pst, nst) {
					t.Errorf("%s/%s/seed%d: whiteboard stats differ:\ncoroutine: %+v\nnative:    %+v", inst.name, mode, seed, pst, nst)
				}
			}
		}
	}
}

func TestNoboardStepperMatchesProgramExactly(t *testing.T) {
	for _, inst := range diffInstances(t) {
		sa, sb := adjacentStarts(t, inst.g)
		delta := inst.g.MinDegree()
		for seed := uint64(1); seed <= 3; seed++ {
			for _, disableMeeting := range []bool{false, true} {
				cfg := sim.Config{
					Graph: inst.g, StartA: sa, StartB: sb,
					NeighborIDs: true,
					Seed:        seed, MaxRounds: 1 << 24,
					DisableMeeting: disableMeeting,
				}
				cst := &NoboardStats{}
				progA, progB := NoboardAgents(PracticalParams(), delta, cst)
				cres, cerr := sim.Run(cfg, progA, progB)
				if cerr != nil {
					t.Fatalf("%s/seed%d goroutine program: %v", inst.name, seed, cerr)
				}
				pst := &NoboardStats{}
				progA, progB = NoboardAgents(PracticalParams(), delta, pst)
				pres, perr := sim.RunSteppers(cfg, sim.NewProgramStepper(progA), sim.NewProgramStepper(progB))
				if perr != nil {
					t.Fatalf("%s/seed%d coroutine program: %v", inst.name, seed, perr)
				}
				nst := &NoboardStats{}
				stA, stB := NoboardSteppers(PracticalParams(), delta, nst)
				nres, nerr := sim.RunSteppers(cfg, stA, stB)
				if nerr != nil {
					t.Fatalf("%s/seed%d native: %v", inst.name, seed, nerr)
				}
				if !sameResult(cres, nres) || !sameResult(pres, nres) {
					t.Errorf("%s/seed%d/dm=%v: results differ:\ngoroutine: %+v\ncoroutine: %+v\nnative:    %+v",
						inst.name, seed, disableMeeting, cres, pres, nres)
				}
				if !reflect.DeepEqual(pst, nst) {
					t.Errorf("%s/seed%d/dm=%v: noboard stats differ:\ncoroutine: %+v\nnative:    %+v",
						inst.name, seed, disableMeeting, pst, nst)
				}
			}
		}
	}
}

// A warm TrialContext (reused walker/agent-b scratch) must reproduce
// fresh-context runs bit for bit — the scratch-reuse contract of the
// native machines.
func TestNativeSteppersIdenticalOnWarmContext(t *testing.T) {
	rng := rand.New(rand.NewPCG(91, 92))
	g, err := graph.PlantedMinDegree(96, 30, rng)
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := adjacentStarts(t, g)
	for _, alg := range []string{"whiteboard", "noboard"} {
		cfg := sim.Config{
			Graph: g, StartA: sa, StartB: sb,
			NeighborIDs: true, Whiteboards: alg == "whiteboard",
			MaxRounds: 1 << 22,
		}
		build := func() (sim.Stepper, sim.Stepper) {
			if alg == "whiteboard" {
				return WhiteboardSteppers(PracticalParams(), Knowledge{Delta: g.MinDegree()}, nil)
			}
			return NoboardSteppers(PracticalParams(), g.MinDegree(), nil)
		}
		tc := sim.NewTrialContext()
		for seed := uint64(1); seed <= 4; seed++ {
			cfg.Seed = seed
			a1, b1 := build()
			warm, err := tc.RunSteppers(cfg, a1, b1)
			if err != nil {
				t.Fatalf("%s seed %d warm: %v", alg, seed, err)
			}
			a2, b2 := build()
			fresh, err := sim.RunSteppers(cfg, a2, b2)
			if err != nil {
				t.Fatalf("%s seed %d fresh: %v", alg, seed, err)
			}
			if !sameResult(warm, fresh) {
				t.Errorf("%s seed %d: warm context diverged:\nwarm:  %+v\nfresh: %+v", alg, seed, warm, fresh)
			}
		}
	}
}

// isolatedStartGraph builds a graph whose vertex 0 has degree 0 (the
// δ = 0 boundary) beside a small connected component.
func isolatedStartGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.FromAdjacency([]int64{0, 1, 2, 3}, [][]graph.Vertex{
		nil, {2, 3}, {1, 3}, {1, 2},
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// The satellite-2 boundary: degenerate inputs that violate the
// paper's δ ≥ 1 precondition must fail with an explicit error on both
// paths — never hang in a silent restart/sampling loop.
func TestDegenerateInputsFailExplicitlyOnBothPaths(t *testing.T) {
	iso := isolatedStartGraph(t)
	conn, err := graph.Complete(8)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		cfg     sim.Config
		prog    func() (sim.Program, sim.Program)
		native  func() (sim.Stepper, sim.Stepper)
		errWant string
	}{
		{
			name: "whiteboard doubling from degree-0 start",
			cfg: sim.Config{Graph: iso, StartA: 0, StartB: 1,
				NeighborIDs: true, Whiteboards: true, MaxRounds: 1 << 16},
			prog: func() (sim.Program, sim.Program) {
				return WhiteboardAgents(PracticalParams(), Knowledge{Doubling: true}, nil)
			},
			native: func() (sim.Stepper, sim.Stepper) {
				return WhiteboardSteppers(PracticalParams(), Knowledge{Doubling: true}, nil)
			},
			errWant: "degree 0",
		},
		{
			name: "whiteboard declared δ ≥ 1 but degree-0 start",
			cfg: sim.Config{Graph: iso, StartA: 0, StartB: 1,
				NeighborIDs: true, Whiteboards: true, MaxRounds: 1 << 16},
			prog: func() (sim.Program, sim.Program) {
				return WhiteboardAgents(PracticalParams(), Knowledge{Delta: 2}, nil)
			},
			native: func() (sim.Stepper, sim.Stepper) {
				return WhiteboardSteppers(PracticalParams(), Knowledge{Delta: 2}, nil)
			},
			errWant: "degree 0",
		},
		{
			name: "whiteboard declared δ = 0 without doubling",
			cfg: sim.Config{Graph: conn, StartA: 0, StartB: 1,
				NeighborIDs: true, Whiteboards: true, MaxRounds: 1 << 16},
			prog: func() (sim.Program, sim.Program) {
				return WhiteboardAgents(PracticalParams(), Knowledge{Delta: 0}, nil)
			},
			native: func() (sim.Stepper, sim.Stepper) {
				return WhiteboardSteppers(PracticalParams(), Knowledge{Delta: 0}, nil)
			},
			errWant: "δ ≥ 1",
		},
		{
			name: "noboard with δ = 0",
			cfg: sim.Config{Graph: conn, StartA: 0, StartB: 1,
				NeighborIDs: true, MaxRounds: 1 << 16},
			prog: func() (sim.Program, sim.Program) {
				return NoboardAgents(PracticalParams(), 0, nil)
			},
			native: func() (sim.Stepper, sim.Stepper) {
				return NoboardSteppers(PracticalParams(), 0, nil)
			},
			errWant: "δ ≥ 1",
		},
	}
	for _, tc := range cases {
		pa, pb := tc.prog()
		_, perr := sim.Run(tc.cfg, pa, pb)
		if perr == nil || !strings.Contains(perr.Error(), tc.errWant) {
			t.Errorf("%s: program path error = %v, want mention of %q", tc.name, perr, tc.errWant)
		}
		na, nb := tc.native()
		_, nerr := sim.RunSteppers(tc.cfg, na, nb)
		if nerr == nil || !strings.Contains(nerr.Error(), tc.errWant) {
			t.Errorf("%s: native path error = %v, want mention of %q", tc.name, nerr, tc.errWant)
		}
	}
}

// The schedule derivation itself must reject precondition violations
// and stay exactly agent-independent at the boundaries.
func TestNoboardScheduleBoundaries(t *testing.T) {
	p := PracticalParams()
	if _, err := newNoboardSchedule(p, 1024, 0); err == nil {
		t.Error("δ = 0 schedule derived without error")
	}
	if _, err := newNoboardSchedule(p, 1024, -3); err == nil {
		t.Error("δ < 0 schedule derived without error")
	}
	if _, err := newNoboardSchedule(p, 0, 4); err == nil {
		t.Error("n' = 0 schedule derived without error")
	}
	// n' = 1, δ = 1: the extreme valid boundary — well-formed, floors
	// applied, and identical however many times it is derived (the two
	// agents must agree exactly).
	s1, err := newNoboardSchedule(p, 1, 1)
	if err != nil {
		t.Fatalf("n'=1, δ=1: %v", err)
	}
	s2, err := newNoboardSchedule(p, 1, 1)
	if err != nil || s1 != s2 {
		t.Fatalf("schedule derivation diverged between agents: %+v vs %+v (err=%v)", s1, s2, err)
	}
	if s1.beta < 1 || s1.residency < 8 || s1.phaseLen != s1.residency*s1.residency || s1.phases < 1 || s1.tPrime < 1 {
		t.Errorf("n'=1, δ=1 schedule malformed: %+v", s1)
	}
	// The doubling-estimate helpers behind Construct's restart loop.
	if _, err := halvedDeltaEst(1); err == nil {
		t.Error("restart at δ' = 1 must be an explicit error, not an infinite loop")
	}
	if next, err := halvedDeltaEst(8); err != nil || next != 4 {
		t.Errorf("halvedDeltaEst(8) = (%v, %v), want (4, nil)", next, err)
	}
	if est := initialDeltaEst(Knowledge{Doubling: true}, 1); est != 1 {
		t.Errorf("doubling initial estimate at degree 1 = %v, want clamped 1", est)
	}
}
