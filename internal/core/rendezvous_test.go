package core

import (
	"math/rand/v2"
	"testing"

	"fnr/internal/graph"
	"fnr/internal/sim"
)

// adjacentStarts returns a deterministic adjacent pair of vertices.
func adjacentStarts(t *testing.T, g *graph.Graph) (graph.Vertex, graph.Vertex) {
	t.Helper()
	pairs := graph.PairsAtDistance(g, 1, 1)
	if len(pairs) == 0 {
		t.Fatal("graph has no edges")
	}
	return pairs[0][0], pairs[0][1]
}

func TestWhiteboardRendezvousOnComplete(t *testing.T) {
	g, err := graph.Complete(64)
	if err != nil {
		t.Fatal(err)
	}
	a, b := adjacentStarts(t, g)
	for seed := uint64(0); seed < 5; seed++ {
		progA, progB := WhiteboardAgents(PracticalParams(), Knowledge{Delta: g.MinDegree()}, nil)
		res, err := sim.Run(sim.Config{
			Graph: g, StartA: a, StartB: b,
			NeighborIDs: true, Whiteboards: true,
			Seed: seed, MaxRounds: 1 << 40,
		}, progA, progB)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Met {
			t.Fatalf("seed %d: no rendezvous", seed)
		}
	}
}

func TestWhiteboardRendezvousOnPlanted(t *testing.T) {
	rng := rand.New(rand.NewPCG(100, 200))
	g, err := graph.PlantedMinDegree(256, 64, rng)
	if err != nil {
		t.Fatal(err)
	}
	a, b := adjacentStarts(t, g)
	for seed := uint64(0); seed < 3; seed++ {
		st := &WhiteboardStats{}
		progA, progB := WhiteboardAgents(PracticalParams(), Knowledge{Delta: g.MinDegree()}, st)
		res, err := sim.Run(sim.Config{
			Graph: g, StartA: a, StartB: b,
			NeighborIDs: true, Whiteboards: true,
			Seed: seed, MaxRounds: 1 << 40,
		}, progA, progB)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Met {
			t.Fatalf("seed %d: no rendezvous", seed)
		}
		if res.MeetRound <= st.ConstructRounds {
			t.Errorf("seed %d: met at %d before construct finished at %d",
				seed, res.MeetRound, st.ConstructRounds)
		}
	}
}

func TestWhiteboardRendezvousWithDoubling(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	g, err := graph.PlantedMinDegree(200, 60, rng)
	if err != nil {
		t.Fatal(err)
	}
	a, b := adjacentStarts(t, g)
	st := &WhiteboardStats{}
	progA, progB := WhiteboardAgents(PracticalParams(), Knowledge{Doubling: true}, st)
	res, err := sim.Run(sim.Config{
		Graph: g, StartA: a, StartB: b,
		NeighborIDs: true, Whiteboards: true,
		Seed: 7, MaxRounds: 1 << 40,
	}, progA, progB)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met {
		t.Fatal("no rendezvous under doubling estimation")
	}
}

// The whiteboard algorithm must also work when vertex IDs are permuted
// (decorrelated from indices) and sparse (n' > n).
func TestWhiteboardRendezvousSparseIDs(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	g0, err := graph.PlantedMinDegree(128, 40, rng)
	if err != nil {
		t.Fatal(err)
	}
	b := graph.Rebuild(g0)
	if err := b.SparseIDs(16, rng); err != nil {
		t.Fatal(err)
	}
	g := b.MustBuild()
	a, bb := adjacentStarts(t, g)
	progA, progB := WhiteboardAgents(PracticalParams(), Knowledge{Delta: g.MinDegree()}, nil)
	res, err := sim.Run(sim.Config{
		Graph: g, StartA: a, StartB: bb,
		NeighborIDs: true, Whiteboards: true,
		Seed: 3, MaxRounds: 1 << 40,
	}, progA, progB)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met {
		t.Fatal("no rendezvous with sparse IDs")
	}
}

func TestAgentBWritesMarks(t *testing.T) {
	g, err := graph.Complete(16)
	if err != nil {
		t.Fatal(err)
	}
	idle := func(e *sim.Env) {
		for {
			e.StayFor(1 << 20)
		}
	}
	res, err := sim.Run(sim.Config{
		Graph: g, StartA: 5, StartB: 2,
		NeighborIDs: true, Whiteboards: true,
		Seed: 1, MaxRounds: 500, DisableMeeting: true,
	}, idle, AgentB())
	if err != nil {
		t.Fatal(err)
	}
	if res.Writes == 0 {
		t.Fatal("agent b never wrote a mark")
	}
	// B alternates move-mark-return; in 500 rounds it must write often.
	if res.Writes < 100 {
		t.Fatalf("agent b wrote only %d marks in 500 rounds", res.Writes)
	}
}

func TestSampleClassifierSeparation(t *testing.T) {
	// Star with 64 leaves around vertex 0; leaves 1..32 additionally
	// form a clique ("heavy": |N+(leaf) ∩ N+(0)| = 33), leaves 33..64
	// have only the center ("light": |N+(leaf) ∩ N+(0)| = 2).
	// With delta = 64 (α = 8): heavy leaves exceed 4α = 32, light
	// leaves are below α = 8, so Lemma 2 predicts exact separation.
	b := graph.NewBuilder(65)
	for v := 1; v <= 64; v++ {
		b.MustAddEdge(0, graph.Vertex(v))
	}
	for u := 1; u <= 32; u++ {
		for v := u + 1; v <= 32; v++ {
			b.MustAddEdge(graph.Vertex(u), graph.Vertex(v))
		}
	}
	g := b.MustBuild()
	ghost := func(e *sim.Env) {}
	for seed := uint64(0); seed < 3; seed++ {
		rep := &SampleReport{}
		_, err := sim.Run(sim.Config{
			Graph: g, StartA: 0, StartB: 40,
			NeighborIDs: true, Seed: seed, MaxRounds: 1 << 40,
			DisableMeeting: true,
		}, SampleClassifier(PracticalParams(), 64, rep), ghost)
		if err != nil {
			t.Fatal(err)
		}
		heavy := make(map[int64]bool, len(rep.Heavy))
		for _, id := range rep.Heavy {
			heavy[id] = true
		}
		for v := int64(1); v <= 32; v++ {
			if !heavy[v] {
				t.Errorf("seed %d: clique leaf %d classified light", seed, v)
			}
		}
		for v := int64(33); v <= 64; v++ {
			if heavy[v] {
				t.Errorf("seed %d: isolated leaf %d classified heavy", seed, v)
			}
		}
		// The center itself is 65-heavy.
		if !heavy[0] {
			t.Errorf("seed %d: center classified light", seed)
		}
	}
}

func TestDenseSetOracleIsDense(t *testing.T) {
	rng := rand.New(rand.NewPCG(19, 20))
	g, err := graph.PlantedMinDegree(200, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, v0 := range []graph.Vertex{0, 7, 199} {
		tset, via := DenseSetOracle(g, v0)
		// The oracle set is (v0, δ+1, 2)-dense: every u ∈ N+(v0) has
		// its whole closed neighborhood inside T.
		if err := VerifyDense(g, v0, tset, float64(g.MinDegree()+1), 2); err != nil {
			t.Errorf("oracle set from %d not dense: %v", v0, err)
		}
		// Via entries must be usable: each maps to v0 itself, a
		// neighbor of v0, or the member directly.
		for id, through := range via {
			tv, ok := g.VertexByID(through)
			if !ok {
				t.Fatalf("via[%d] = %d references unknown vertex", id, through)
			}
			if through != g.ID(v0) && tv != v0 && !g.HasEdge(v0, tv) && through != id {
				t.Errorf("via[%d] = %d is not reachable in one hop from %d", id, through, g.ID(v0))
			}
		}
	}
}

func TestMainPhaseAgentMeetsOnPlanted(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 24))
	g, err := graph.PlantedMinDegree(200, 64, rng)
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := adjacentStarts(t, g)
	tset, via := DenseSetOracle(g, sa)
	for seed := uint64(0); seed < 3; seed++ {
		res, err := sim.Run(sim.Config{
			Graph: g, StartA: sa, StartB: sb,
			NeighborIDs: true, Whiteboards: true,
			Seed: seed, MaxRounds: 1 << 40,
		}, MainPhaseAgentA(tset, via), AgentB())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Met {
			t.Fatalf("seed %d: warm-start main phase never met", seed)
		}
	}
}

func TestNoboardScheduleFloors(t *testing.T) {
	p := PracticalParams()
	// Degenerate δ = 1: the schedule must stay well-formed.
	s, err := newNoboardSchedule(p, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.beta < 1 || s.residency < 8 || s.phaseLen != s.residency*s.residency {
		t.Fatalf("degenerate schedule malformed: %+v", s)
	}
	if s.prob != 1 {
		t.Fatalf("Φ probability %v, want saturated at 1 for δ=1", s.prob)
	}
	if s.phases < 1 {
		t.Fatalf("phases = %d", s.phases)
	}
}

// The verbatim paper constants must actually execute, not just parse:
// run both algorithms end-to-end with PaperParams on a small instance.
// (The constants are huge, so keep n tiny; this is a faithfulness
// smoke test, not a benchmark.)
func TestPaperParamsEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewPCG(61, 62))
	g, err := graph.PlantedMinDegree(64, 32, rng)
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := adjacentStarts(t, g)
	progA, progB := WhiteboardAgents(PaperParams(), Knowledge{Delta: g.MinDegree()}, nil)
	res, err := sim.Run(sim.Config{
		Graph: g, StartA: sa, StartB: sb,
		NeighborIDs: true, Whiteboards: true,
		Seed: 1, MaxRounds: 1 << 40,
	}, progA, progB)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met {
		t.Fatal("whiteboard algorithm with paper constants never met")
	}
	na, nb := NoboardAgents(PaperParams(), g.MinDegree(), nil)
	res, err = sim.Run(sim.Config{
		Graph: g, StartA: sa, StartB: sb,
		NeighborIDs: true, Seed: 1, MaxRounds: 1 << 40,
	}, na, nb)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met {
		t.Fatal("no-whiteboard algorithm with paper constants never met")
	}
}
