// Package core implements the rendezvous algorithms of the paper "Fast
// Neighborhood Rendezvous" (Eguchi, Kitamura, Izumi; ICDCS 2020):
//
//   - the Sample(Γ, α) heaviness classifier (Algorithm 2, Lemma 2),
//   - the Construct procedure building an (a, δ/8, 2)-dense set T^a
//     (Algorithm 3, Lemmas 3–8),
//   - Main-Rendezvous, the whiteboard algorithm of Theorem 1,
//   - Rendezvous-without-Whiteboards, the tight-naming algorithm of
//     Theorem 2 (Algorithm 4), and
//   - the doubling minimum-degree estimation of §4.1 (Corollary 2).
//
// Agents are sim.Programs; all graph knowledge is acquired through the
// simulator's views (neighbor IDs of the current vertex), never by
// inspecting the graph structure directly.
package core

import "math"

// Params carries every constant in the paper's pseudocode. The paper's
// values make the union bounds close at asymptotic n but are
// impractically large for simulation at laptop-scale n (e.g. one
// no-whiteboard phase is ⌈4·18·ln n⌉² ≈ 250k rounds at n=1024), so two
// presets are provided. Scaling the constants changes only the
// failure-probability exponent, never the asymptotic round complexity;
// EXPERIMENTS.md reports measured success rates under Practical.
type Params struct {
	// SampleMult is the sample-count multiplier of Algorithm 2: the
	// run of Sample(Γ, α) visits ⌈SampleMult·|Γ|·ln n/α⌉ random
	// vertices of Γ. Paper value: 96.
	SampleMult float64
	// HeavyThresholdMult sets the heaviness decision threshold
	// ℓ = ⌈HeavyThresholdMult·ln n⌉ on the visit counters. Paper
	// value: 150.
	HeavyThresholdMult float64
	// ProbeMult is the strict-decision probe count multiplier of
	// Algorithm 3 (step 2 samples ⌈ProbeMult·ln n⌉ candidates and
	// verifies them exactly by visiting). Paper value: 4.
	ProbeMult float64
	// AlphaDen sets the heaviness parameter α = δ/AlphaDen. Paper
	// value: 8.
	AlphaDen float64
	// LightDen sets the exact lightness check threshold δ/LightDen
	// used when probing candidates. Paper value: 2.
	LightDen float64
	// C1 scales the no-whiteboard start barrier
	// t' = ⌈C1·n'·ln²n/δ⌉ by which Construct must have finished.
	// Paper: "sufficiently large constant c₁".
	C1 float64
	// C2 is the sparseness constant of Theorem 2's analysis. Paper
	// value: 18.
	C2 float64
	// PhiMult scales the Φ-set inclusion probability
	// min(1, PhiMult·ln n/√δ). Paper value: 4.
	PhiMult float64
	// WaitMult scales the per-vertex residency L = ⌈WaitMult·C2·ln n⌉
	// of Algorithm 4 (each phase lasts L² rounds). Paper value: 4.
	WaitMult float64
	// StrictOnly disables the optimistic difference-set Samples and
	// runs a strict Sample over all of NS in every iteration — the
	// O((n/δ)²) strawman §3.3 motivates the two-step strategy against.
	// Ablation use only.
	StrictOnly bool
}

// PaperParams returns the constants exactly as printed in the paper.
func PaperParams() Params {
	return Params{
		SampleMult:         96,
		HeavyThresholdMult: 150,
		ProbeMult:          4,
		AlphaDen:           8,
		LightDen:           2,
		// The paper only requires c₁ "sufficiently large"; 1000 covers
		// the measured Construct cost under these sample volumes.
		C1:       1000,
		C2:       18,
		PhiMult:  4,
		WaitMult: 4,
	}
}

// PracticalParams returns constants scaled for laptop-size n. The
// ratios that the proofs rely on are preserved (the threshold sits
// strictly between the α-light and 4α-heavy expectations; the phase
// length dominates the sweep length), so the asymptotic behaviour and
// the w.h.p. structure are intact — only the probability exponents
// shrink. Measured success rates under these constants are reported in
// EXPERIMENTS.md.
func PracticalParams() Params {
	return Params{
		SampleMult:         12,
		HeavyThresholdMult: 20,
		ProbeMult:          2,
		AlphaDen:           8,
		LightDen:           2,
		// Calibrated: measured Construct cost is 46–86·n·ln²n/δ rounds
		// across n ∈ [128, 4096] under these sample volumes.
		C1:       120,
		C2:       4,
		PhiMult:  1.5,
		WaitMult: 2,
	}
}

// lnOf returns the natural log of the ID-space bound, the agents' only
// handle on log n (n' = n^O(1) so ln n' = Θ(ln n)); clamped below at 1.
func lnOf(nPrime int64) float64 {
	if nPrime < 3 {
		return 1
	}
	return math.Log(float64(nPrime))
}

// Knowledge describes what agent a knows about the minimum degree.
type Knowledge struct {
	// Delta is the known minimum degree (or a constant-factor lower
	// estimate of it). Ignored when Doubling is set.
	Delta int
	// Doubling enables the §4.1 estimation: start from half the start
	// vertex's degree and restart Construct with a halved estimate
	// whenever a visited vertex's degree undercuts it.
	Doubling bool
}
