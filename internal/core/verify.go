package core

import (
	"fmt"

	"fnr/internal/graph"
)

// VerifyDense checks Definition 3 of the paper against the ground-truth
// graph: T (given as vertex IDs) is (z, alpha, beta)-dense for the
// start vertex v0 iff
//
//  1. v0 ∈ T,
//  2. every w ∈ T satisfies dist(v0, w) ≤ beta, and
//  3. every u ∈ N+(v0) is alpha-heavy for T, i.e. |T ∩ N+(u)| ≥ alpha.
//
// It returns nil when all three conditions hold. This is a test and
// diagnostics helper: algorithms never call it (agents cannot see the
// whole graph).
func VerifyDense(g *graph.Graph, v0 graph.Vertex, t []int64, alpha float64, beta int32) error {
	tset := make(map[graph.Vertex]struct{}, len(t))
	for _, id := range t {
		v, ok := g.VertexByID(id)
		if !ok {
			return fmt.Errorf("core: T contains unknown ID %d", id)
		}
		tset[v] = struct{}{}
	}
	if _, ok := tset[v0]; !ok {
		return fmt.Errorf("core: start vertex (ID %d) not in T", g.ID(v0))
	}
	dist := graph.BFSDistances(g, v0)
	for v := range tset {
		if dist[v] < 0 || dist[v] > beta {
			return fmt.Errorf("core: T member ID %d at distance %d > %d from start", g.ID(v), dist[v], beta)
		}
	}
	heaviness := func(u graph.Vertex) int {
		cnt := 0
		if _, ok := tset[u]; ok {
			cnt++
		}
		for _, w := range g.Adj(u) {
			if _, ok := tset[w]; ok {
				cnt++
			}
		}
		return cnt
	}
	if h := heaviness(v0); float64(h) < alpha {
		return fmt.Errorf("core: start vertex is not %.2f-heavy for T (|T∩N+| = %d)", alpha, h)
	}
	for _, u := range g.Adj(v0) {
		if h := heaviness(u); float64(h) < alpha {
			return fmt.Errorf("core: neighbor ID %d is not %.2f-heavy for T (|T∩N+| = %d)", g.ID(u), alpha, h)
		}
	}
	return nil
}

// Heaviness returns |T ∩ N+(u)| for a vertex u against a set of IDs,
// computed from the ground-truth graph. Exposed for experiments that
// need the per-vertex heavy/light truth (Lemma 2 validation).
func Heaviness(g *graph.Graph, u graph.Vertex, t map[int64]struct{}) int {
	cnt := 0
	if _, ok := t[g.ID(u)]; ok {
		cnt++
	}
	for _, w := range g.Adj(u) {
		if _, ok := t[g.ID(w)]; ok {
			cnt++
		}
	}
	return cnt
}
