package core

import (
	"fmt"

	"fnr/internal/graph"
	"fnr/internal/sim"
)

// DenseSetOracle computes T = N⁺(N⁺(v0)) with via-paths directly from
// the ground-truth graph. The result is (v0, δ+1, 2)-dense (every
// u ∈ N⁺(v0) has its whole closed neighborhood inside T), which is the
// strongest set the Construct procedure could hope to build.
//
// It exists for mechanism isolation: feeding it to MainPhaseAgentA
// starts agent a warm, so a run measures Lemma 1's Main-Rendezvous cost
// O(√(n∆)/δ·log n) alone, without the Construct prefix and without the
// incidental meetings that happen while a wanders during Construct.
func DenseSetOracle(g *graph.Graph, v0 graph.Vertex) (t []int64, via map[int64]int64) {
	via = make(map[int64]int64)
	homeID := g.ID(v0)
	add := func(id, through int64) {
		if _, ok := via[id]; ok {
			return
		}
		via[id] = through
		t = append(t, id)
	}
	add(homeID, homeID)
	for _, u := range g.Adj(v0) {
		add(g.ID(u), g.ID(u)) // distance 1: direct
	}
	for _, u := range g.Adj(v0) {
		uID := g.ID(u)
		for _, w := range g.Adj(u) {
			add(g.ID(w), uID) // distance ≤ 2 via u
		}
	}
	return t, via
}

// MainPhaseAgentA returns agent a's program starting directly in the
// Main-Rendezvous loop (Algorithm 1) with an externally supplied dense
// set and via-paths, as produced by DenseSetOracle. Every via entry
// must be a neighbor of a's start vertex (or the vertex itself for
// distance-1 members). Pair it with AgentB.
func MainPhaseAgentA(t []int64, via map[int64]int64) sim.Program {
	return func(e *sim.Env) {
		params := PracticalParams()
		w := newWalker(e, &params, 1, false)
		for _, id := range t {
			v, ok := via[id]
			if !ok {
				panic(fmt.Sprintf("core: oracle set member %d has no via entry", id))
			}
			w.s.via.setIfMissing(id, v)
			if !w.s.ns.has(id) {
				w.s.ns.add(id)
				w.s.nsL = append(w.s.nsL, id)
			}
		}
		mainRendezvousA(e, w)
	}
}
