package core

import (
	"fmt"
	"math/rand/v2"

	"fnr/internal/sim"
)

// Native sim.Stepper forms of agent b for both paper algorithms,
// mirroring AgentB (Theorem 1's oblivious marker) and NoboardAgentB
// (Algorithm 4's interval sweeper) action for action and draw for
// draw. Like the agent-a machine they exist to strip the per-trial
// coroutine from the engine's fast path; the Program forms remain the
// differential reference.

// bScratch is the reusable agent-b buffer set parked on the trial
// context's scratch slot: the closed neighborhood N+(start) and (for
// Algorithm 4) the Φ^b sample. Reuse is representation-only, exactly
// like walkerScratch.
type bScratch struct {
	np  []int64
	phi []int64
}

// bScratchFor finds (or creates) the agent-b scratch on slot; a nil
// slot yields a fresh one (no reuse, identical behavior).
func bScratchFor(slot *sim.AgentScratch) *bScratch {
	if slot == nil {
		return &bScratch{}
	}
	sc, _ := slot.Get().(*bScratch)
	if sc == nil {
		sc = &bScratch{}
		slot.Set(sc)
	}
	return sc
}

// errNotAdjacentB mirrors the Program form's MoveToID panic.
func errNotAdjacentB(v *sim.View, id int64) error {
	return fmt.Errorf("core: agent b at vertex %d has no visible neighbor with ID %d", v.HereID, id)
}

// whiteboardBStepper is AgentB as a state machine: repeatedly pick u
// uniformly from N+(start), visit it, write the start vertex's ID on
// its whiteboard, and return. It needs no knowledge of n or δ.
type whiteboardBStepper struct {
	rng    *rand.Rand
	boards bool
	slot   *sim.AgentScratch
	home   int64
	np     []int64
	away   bool // at the marked neighbor, heading home next
}

func (s *whiteboardBStepper) Init(ctx *sim.StepContext) {
	s.rng = ctx.Rand
	s.boards = ctx.Whiteboards
	s.slot = ctx.Scratch
}

// Reset re-arms the machine for another trial (the lane reuse
// contract). np == nil re-triggers the first-round neighborhood
// snapshot, which reuses the bScratch parked on the context's slot —
// the same state a freshly built stepper starts from.
func (s *whiteboardBStepper) Reset(ctx *sim.StepContext) {
	*s = whiteboardBStepper{}
	s.Init(ctx)
}

func (s *whiteboardBStepper) Next(v *sim.View) sim.Action {
	if s.np == nil {
		s.home = v.HereID
		sc := bScratchFor(s.slot)
		sc.np = append(sc.np[:0], s.home)
		sc.np = append(sc.np, v.NeighborIDs...)
		s.np = sc.np
	}
	if s.away {
		// The mark commits together with the move home, exactly like
		// the Program form's staged WriteWhiteboard before
		// MoveToID(home).
		if !s.boards {
			return sim.Abort(fmt.Errorf("core: agent b wrote a whiteboard in a whiteboard-free run"))
		}
		p, ok := v.PortOfID(s.home)
		if !ok {
			return sim.Abort(errNotAdjacentB(v, s.home))
		}
		s.away = false
		return sim.Move(p).WithWrite(s.home)
	}
	// np is home followed by the neighbors in port order, so a drawn
	// index j ≥ 1 is the neighbor behind port j-1 — no ID lookup.
	j := s.rng.IntN(len(s.np))
	if s.np[j] == s.home {
		if !s.boards {
			return sim.Abort(fmt.Errorf("core: agent b wrote a whiteboard in a whiteboard-free run"))
		}
		return sim.Stay().WithWrite(s.home) // commit the write, staying put
	}
	s.away = true
	return sim.Move(j - 1)
}

// nbBPC is the resume point of the native Algorithm-4 agent-b machine.
type nbBPC uint8

const (
	pcBStart nbBPC = iota
	pcBPhaseBegin
	pcBSweepCheck
	pcBSweepMove
	pcBSweepAt
	pcBSweepBack
)

// noboardBStepper is NoboardAgentB as a state machine: sample
// Φ^b ⊆ N+(start), and in phase i sweep the vertices of Φ^b in the
// i-th β-interval L times, pausing two rounds at the start vertex
// between sweeps.
type noboardBStepper struct {
	p     *Params // shared with the paired agent-a machine
	delta int
	nst   *NoboardStats

	rng    *rand.Rand
	nPrime int64
	slot   *sim.AgentScratch

	sched noboardSchedule
	home  int64
	phi   []int64

	pc        nbBPC
	phiIdx    int
	phase     int64
	phaseTo   int64
	phaseHi   int64
	group     []int64
	sweepCost int64
	sweep     int64 // completed sweeps this phase (the program's j)
	groupIdx  int
}

func (s *noboardBStepper) Init(ctx *sim.StepContext) {
	s.rng = ctx.Rand
	s.nPrime = ctx.NPrime
	s.slot = ctx.Scratch
}

// Reset re-arms the machine for another trial (the lane reuse
// contract): keep the trial-constant configuration, zero the rest,
// Init anew. pcBStart redoes the schedule/Φ^b setup on the parked
// bScratch.
func (s *noboardBStepper) Reset(ctx *sim.StepContext) {
	*s = noboardBStepper{p: s.p, delta: s.delta, nst: s.nst}
	s.Init(ctx)
}

func (s *noboardBStepper) moveTo(v *sim.View, id int64) sim.Action {
	p, ok := v.PortOfID(id)
	if !ok {
		return sim.Abort(errNotAdjacentB(v, id))
	}
	return sim.Move(p)
}

// endWait emits WaitUntilRound(round) with resume state after; pure
// when the barrier has already passed.
func (s *noboardBStepper) endWait(v *sim.View, round int64, after nbBPC) (sim.Action, bool) {
	s.pc = after
	if round > v.Round {
		return sim.StayFor(round - v.Round), true
	}
	return sim.Action{}, false
}

func (s *noboardBStepper) Next(v *sim.View) sim.Action {
	for {
		switch s.pc {
		case pcBStart: // round 0 at the start vertex
			// Schedule derivation first: a δ < 1 input fails here, at
			// round 0 and before any RNG draw, like the Program form.
			sched, err := newNoboardSchedule(*s.p, s.nPrime, s.delta)
			if err != nil {
				return sim.Abort(err)
			}
			s.sched = sched
			s.home = v.HereID
			sc := bScratchFor(s.slot)
			sc.np = append(sc.np[:0], s.home)
			sc.np = append(sc.np, v.NeighborIDs...)
			sc.phi = sampleSubsetInto(s.rng, sc.phi, sc.np, sched.prob)
			s.phi = sc.phi
			if s.nst != nil {
				s.nst.PhiB = len(s.phi)
			}
			s.phiIdx = 0
			s.phase = 1
			if act, ok := s.endWait(v, sched.tPrime, pcBPhaseBegin); ok {
				return act // the t' start barrier
			}

		case pcBPhaseBegin:
			if s.phase > s.sched.phases {
				return sim.Halt() // all phases done
			}
			s.phaseTo = s.sched.phaseEnd(s.phase)
			s.phaseHi = s.phase * s.sched.beta
			start := s.phiIdx
			for s.phiIdx < len(s.phi) && s.phi[s.phiIdx] < s.phaseHi {
				s.phiIdx++
			}
			s.group = s.phi[start:s.phiIdx]
			if len(s.group) == 0 {
				s.phase++
				if act, ok := s.endWait(v, s.phaseTo, pcBPhaseBegin); ok {
					return act
				}
				continue
			}
			s.sweepCost = 2*int64(len(s.group)) + 2
			s.sweep = 0
			s.pc = pcBSweepCheck

		case pcBSweepCheck: // at home: room for another sweep?
			if s.sweep >= s.sched.residency {
				s.phase++
				if act, ok := s.endWait(v, s.phaseTo, pcBPhaseBegin); ok {
					return act
				}
				continue
			}
			if v.Round+s.sweepCost > s.phaseTo {
				if s.nst != nil {
					s.nst.OverflowPhasesB++
				}
				s.phase++
				if act, ok := s.endWait(v, s.phaseTo, pcBPhaseBegin); ok {
					return act
				}
				continue
			}
			s.groupIdx = 0
			s.pc = pcBSweepMove

		case pcBSweepMove: // at home: next group member (skipping home)
			for s.groupIdx < len(s.group) && s.group[s.groupIdx] == s.home {
				s.groupIdx++
			}
			if s.groupIdx >= len(s.group) {
				s.sweep++
				s.pc = pcBSweepCheck
				return sim.StayFor(2) // the between-sweeps pause
			}
			s.pc = pcBSweepAt
			return s.moveTo(v, s.group[s.groupIdx])

		case pcBSweepAt: // at the swept vertex: bounce straight home
			s.pc = pcBSweepBack
			return s.moveTo(v, s.home)

		case pcBSweepBack: // back home
			s.groupIdx++
			s.pc = pcBSweepMove

		default:
			return sim.Abort(fmt.Errorf("core: native agent b in impossible state %d", s.pc))
		}
	}
}
