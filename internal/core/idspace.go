package core

// ID-keyed lookup structures for the walker's hot loops. Vertex IDs
// are guaranteed to lie in [0, n') (see package graph), so when the
// ID space is small these compile down to dense array indexing —
// profiling showed the map-backed originals spending roughly half of
// agent a's CPU in map accesses. Above denseIDLimit the same types
// fall back to maps, trading speed for memory. Both representations
// answer queries identically and are never iterated, so the choice
// cannot affect simulation results.
//
// All three types are reusable across trials: init prepares a value
// for a fresh run, and the dense forms reset by bumping a generation
// stamp instead of clearing Θ(n') memory, so a walker parked on a
// sim.AgentScratch slot re-arms in O(1) and allocates nothing after
// its first trial (the map forms clear in place, keeping buckets).

// denseIDLimit bounds the ID space for which dense arrays are used
// (8 MiB for the largest array at the limit).
const denseIDLimit = 1 << 20

// epoch is the generation-stamp machinery shared by the dense forms:
// an entry is live iff its stamp equals the current generation, so a
// whole-structure reset is one counter bump. gen doubles as the dense
// backing ("dense mode" iff gen != nil).
type epoch struct {
	gen []uint32
	cur uint32
}

// reset re-arms the epoch over an n-entry index space, reusing the
// stamp array when the size already matches.
func (ep *epoch) reset(n int) {
	if len(ep.gen) != n {
		ep.gen = make([]uint32, n)
		ep.cur = 1
		return
	}
	ep.cur++
	if ep.cur == 0 { // stamp counter wrapped: hard-clear once per 2^32 resets
		clear(ep.gen)
		ep.cur = 1
	}
}

func (ep *epoch) drop()             { ep.gen, ep.cur = nil, 0 }
func (ep *epoch) live(i int64) bool { return ep.gen[i] == ep.cur }
func (ep *epoch) mark(i int64)      { ep.gen[i] = ep.cur }

// idIndex maps vertex IDs to small dense indexes (-1 = absent).
type idIndex struct {
	ep    epoch
	dense []int32
	m     map[int64]int32
}

// init prepares the index for a fresh run over ID space [0, nPrime).
func (x *idIndex) init(nPrime int64, sizeHint int) {
	if nPrime > 0 && nPrime <= denseIDLimit {
		x.m = nil
		if int64(len(x.dense)) != nPrime {
			x.dense = make([]int32, nPrime)
		}
		x.ep.reset(int(nPrime))
		return
	}
	x.dense = nil
	x.ep.drop()
	if x.m != nil {
		clear(x.m)
		return
	}
	x.m = make(map[int64]int32, sizeHint)
}

func (x *idIndex) set(id int64, idx int32) {
	if x.dense != nil {
		x.dense[id] = idx
		x.ep.mark(id)
		return
	}
	x.m[id] = idx
}

// get returns the index of id, or -1 if absent.
func (x *idIndex) get(id int64) int32 {
	if x.dense != nil {
		if id < 0 || id >= int64(len(x.dense)) || !x.ep.live(id) {
			return -1
		}
		return x.dense[id]
	}
	if idx, ok := x.m[id]; ok {
		return idx
	}
	return -1
}

// idSet is a set of vertex IDs. In dense mode membership lives
// entirely in the epoch stamps.
type idSet struct {
	ep epoch
	m  map[int64]struct{}
}

// init prepares the set for a fresh run over ID space [0, nPrime).
func (s *idSet) init(nPrime int64, sizeHint int) {
	if nPrime > 0 && nPrime <= denseIDLimit {
		s.m = nil
		s.ep.reset(int(nPrime))
		return
	}
	s.ep.drop()
	if s.m != nil {
		clear(s.m)
		return
	}
	s.m = make(map[int64]struct{}, sizeHint)
}

func (s *idSet) add(id int64) {
	if s.ep.gen != nil {
		s.ep.mark(id)
		return
	}
	s.m[id] = struct{}{}
}

func (s *idSet) has(id int64) bool {
	if s.ep.gen != nil {
		return id >= 0 && id < int64(len(s.ep.gen)) && s.ep.live(id)
	}
	_, ok := s.m[id]
	return ok
}

// idToID maps vertex IDs to vertex IDs (the walker's via table). It
// tracks its entry count so memory accounting stays meaningful under
// the dense representation.
type idToID struct {
	ep      epoch
	dense   []int64
	m       map[int64]int64
	entries int
}

// init prepares the table for a fresh run over ID space [0, nPrime).
func (t *idToID) init(nPrime int64, sizeHint int) {
	t.entries = 0
	if nPrime > 0 && nPrime <= denseIDLimit {
		t.m = nil
		if int64(len(t.dense)) != nPrime {
			t.dense = make([]int64, nPrime)
		}
		t.ep.reset(int(nPrime))
		return
	}
	t.dense = nil
	t.ep.drop()
	if t.m != nil {
		clear(t.m)
		return
	}
	t.m = make(map[int64]int64, sizeHint)
}

func (t *idToID) get(id int64) (int64, bool) {
	if t.dense != nil {
		if id < 0 || id >= int64(len(t.dense)) || !t.ep.live(id) {
			return 0, false
		}
		return t.dense[id], true
	}
	v, ok := t.m[id]
	return v, ok
}

// setIfMissing records id -> via unless id already has an entry.
func (t *idToID) setIfMissing(id, via int64) {
	if t.dense != nil {
		if !t.ep.live(id) {
			t.dense[id] = via
			t.ep.mark(id)
			t.entries++
		}
		return
	}
	if _, ok := t.m[id]; !ok {
		t.m[id] = via
		t.entries++
	}
}

func (t *idToID) len() int { return t.entries }
