package core

// ID-keyed lookup structures for the walker's hot loops. Vertex IDs
// are guaranteed to lie in [0, n') (see package graph), so when the
// ID space is small these compile down to dense array indexing —
// profiling showed the map-backed originals spending roughly half of
// agent a's CPU in map accesses. Above denseIDLimit the same types
// fall back to maps, trading speed for memory. Both representations
// answer queries identically and are never iterated, so the choice
// cannot affect simulation results.

// denseIDLimit bounds the ID space for which dense arrays are used
// (8 MiB for the largest array at the limit).
const denseIDLimit = 1 << 20

// idIndex maps vertex IDs to small dense indexes (-1 = absent).
type idIndex struct {
	dense []int32
	m     map[int64]int32
}

func newIDIndex(nPrime int64, sizeHint int) *idIndex {
	if nPrime > 0 && nPrime <= denseIDLimit {
		d := make([]int32, nPrime)
		for i := range d {
			d[i] = -1
		}
		return &idIndex{dense: d}
	}
	return &idIndex{m: make(map[int64]int32, sizeHint)}
}

func (x *idIndex) set(id int64, idx int32) {
	if x.dense != nil {
		x.dense[id] = idx
		return
	}
	x.m[id] = idx
}

// get returns the index of id, or -1 if absent.
func (x *idIndex) get(id int64) int32 {
	if x.dense != nil {
		if id < 0 || id >= int64(len(x.dense)) {
			return -1
		}
		return x.dense[id]
	}
	if idx, ok := x.m[id]; ok {
		return idx
	}
	return -1
}

// idSet is a set of vertex IDs.
type idSet struct {
	dense []bool
	m     map[int64]struct{}
}

func newIDSet(nPrime int64, sizeHint int) *idSet {
	if nPrime > 0 && nPrime <= denseIDLimit {
		return &idSet{dense: make([]bool, nPrime)}
	}
	return &idSet{m: make(map[int64]struct{}, sizeHint)}
}

func (s *idSet) add(id int64) {
	if s.dense != nil {
		s.dense[id] = true
		return
	}
	s.m[id] = struct{}{}
}

func (s *idSet) has(id int64) bool {
	if s.dense != nil {
		return id >= 0 && id < int64(len(s.dense)) && s.dense[id]
	}
	_, ok := s.m[id]
	return ok
}

// idToID maps vertex IDs to vertex IDs (the walker's via table). It
// tracks its entry count so memory accounting stays meaningful under
// the dense representation.
type idToID struct {
	dense   []int64 // -1 = absent (IDs are non-negative)
	m       map[int64]int64
	entries int
}

func newIDToID(nPrime int64, sizeHint int) *idToID {
	if nPrime > 0 && nPrime <= denseIDLimit {
		d := make([]int64, nPrime)
		for i := range d {
			d[i] = -1
		}
		return &idToID{dense: d}
	}
	return &idToID{m: make(map[int64]int64, sizeHint)}
}

func (t *idToID) get(id int64) (int64, bool) {
	if t.dense != nil {
		if id < 0 || id >= int64(len(t.dense)) || t.dense[id] < 0 {
			return 0, false
		}
		return t.dense[id], true
	}
	v, ok := t.m[id]
	return v, ok
}

// setIfMissing records id -> via unless id already has an entry.
func (t *idToID) setIfMissing(id, via int64) {
	if t.dense != nil {
		if t.dense[id] < 0 {
			t.dense[id] = via
			t.entries++
		}
		return
	}
	if _, ok := t.m[id]; !ok {
		t.m[id] = via
		t.entries++
	}
}

func (t *idToID) len() int { return t.entries }
