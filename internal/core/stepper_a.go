package core

import (
	"fmt"
	"math/rand/v2"
	"slices"

	"fnr/internal/sim"
)

// This file is the native sim.Stepper form of agent a for both paper
// algorithms: the direct-style control flow of runConstruct /
// constructDense (§4.1 doubling restarts included), mainRendezvousA
// (Theorem 1) and NoboardAgentA's phase schedule (Algorithm 4) is
// inverted into one explicit resumable state machine, so the engine's
// fast path steps the agent inline — no goroutine, no iter.Pull
// coroutine, no program closures. The Program forms in rendezvous.go /
// construct.go / noboard.go remain the differential-test reference:
// every decision (RNG draw order, thresholds, stats) must match them
// draw for draw, which is why all pure arithmetic lives in the shared
// walkerCore and the schedule/estimate helpers, and only the
// *sequencing* is re-expressed here.
//
// Reading guide: each aPC value is a resume point, i.e. "what to do
// with the view of the agent's next acting round". A state handler
// either emits exactly one action (return) or transitions purely
// (continue); blocking calls of the direct style — goTo, goHome,
// WaitUntilRound — become the travel/return/wait emissions below with
// the follow-up state recorded in the machine.

// aPC is the resume point of the native agent-a machine.
type aPC uint8

const (
	// Construct (shared by both algorithms).
	pcStart aPC = iota
	pcConstructBegin
	pcRestart
	pcIterBegin
	pcSampleLoop
	pcSampleArrive
	pcSampleReturned
	pcAfterSample
	pcProbeLoop
	pcProbeArrive
	pcProbeReturned
	pcAfterStrictSample
	pcStrictLoop
	pcStrictArrive
	pcStrictReturned
	pcChosenGo
	pcChosenArrive
	pcConstructDone
	// Travel plumbing (outbound second hop, homebound second hop).
	pcOutVia
	pcReturnVia
	// Theorem-1 main phase.
	pcMainLoop
	pcMainArrive
	pcMainReturned
	pcWait
	// Algorithm-4 phase schedule.
	pcNbSchedule
	pcNbPhi
	pcNbPhaseBegin
	pcNbSlotLoop
	pcNbArrive
	pcNbResidencyDone
	pcNbDone
)

// waitForever is the bulk-stay the machine parks on once rendezvous is
// guaranteed by position (the runtime fast-forwards it; identical stay
// accounting to the Program form's one-round loop).
const waitForever = int64(1) << 62

// WhiteboardSteppers returns the native stepper pair of the Theorem-1
// algorithm — behaviorally identical to WhiteboardAgents (same action
// sequence, same RNG draw order, same stats), minus the per-trial
// coroutine/program-closure setup. st may be nil.
func WhiteboardSteppers(p Params, know Knowledge, st *WhiteboardStats) (a, b sim.Stepper) {
	return &nativeAgentA{p: &p, know: know, wst: st}, &whiteboardBStepper{}
}

// NoboardSteppers returns the native stepper pair of the Theorem-2
// algorithm (Algorithm 4) — behaviorally identical to NoboardAgents.
// st may be nil.
func NoboardSteppers(p Params, delta int, st *NoboardStats) (a, b sim.Stepper) {
	as := &nativeAgentA{p: &p, know: Knowledge{Delta: delta}, nb: &nbAState{}, delta: delta, nst: st}
	if st != nil {
		as.wst = &st.Construct
	}
	return as, &noboardBStepper{p: &p, delta: delta, nst: st}
}

// nbAState is the Algorithm-4 schedule state of agent a, split out of
// nativeAgentA so the (hotter, smaller) whiteboard trials don't carry
// it; nb != nil is also what selects noboard mode after Construct.
type nbAState struct {
	sched      noboardSchedule
	phi        []int64
	phiIdx     int
	phase      int64
	phaseFrom  int64
	phaseTo    int64
	phaseHi    int64
	slotNo     int64
	slotEnd    int64
	resideU    int64
	resideFrom int64
}

// nativeAgentA is agent a as an explicit state machine.
type nativeAgentA struct {
	// Per-trial configuration. p is shared with the paired agent-b
	// machine (read-only for the whole trial).
	p     *Params
	know  Knowledge
	delta int // noboard δ
	wst   *WhiteboardStats
	nst   *NoboardStats
	nb    *nbAState // non-nil selects Algorithm 4 after Construct

	// Run-constant context (Init).
	rng        *rand.Rand
	nPrime     int64
	slot       *sim.AgentScratch
	graphStamp uint64

	// runConstruct's δ' bookkeeping (the walkerCore holds the copy the
	// current Construct attempt runs under).
	deltaEst float64

	w  walkerCore
	pc aPC

	// Travel plumbing: the outbound destination and the states to
	// dispatch at arrival / back home.
	outDest   int64
	outArrive aPC
	retAfter  aPC

	// Sample(Γ, α) sub-machine.
	sampleSet []int64
	sampleM   int
	sampleI   int
	sampleRet aPC
	heavyOut  []int64

	// Probe / strict exact checks.
	probeJ, probeMax int
	ecU              int64
	ecCnt            int
	chosen           int64

	// Theorem-1 main phase.
	mark int64
}

func (s *nativeAgentA) Init(ctx *sim.StepContext) {
	s.rng = ctx.Rand
	s.nPrime = ctx.NPrime
	s.slot = ctx.Scratch
	s.graphStamp = ctx.GraphStamp
}

// Reset re-arms the machine for another trial (the lane reuse
// contract): zero every per-trial field, keep only the trial-constant
// configuration, and Init with the new context. The parked
// walkerScratch survives on the context's scratch slot — exactly the
// reuse a freshly built stepper gets.
func (s *nativeAgentA) Reset(ctx *sim.StepContext) {
	if s.nb != nil {
		*s.nb = nbAState{}
	}
	*s = nativeAgentA{p: s.p, know: s.know, delta: s.delta, wst: s.wst, nst: s.nst, nb: s.nb}
	s.Init(ctx)
}

// moveTo emits the move crossing to the adjacent vertex id — the
// stepper counterpart of Env.MoveToID, aborting (like the Program
// form's panic) when id is not visible as a neighbor. Moves departing
// home — the overwhelming majority — read the port straight off the
// walker's N+(home) position index (npHomeL is home followed by the
// neighbors in port order), skipping the graph's per-vertex lookup.
func (s *nativeAgentA) moveTo(v *sim.View, id int64) sim.Action {
	if s.w.s != nil && v.HereID == s.w.home {
		if j := s.w.s.npIdx.get(id); j > 0 {
			return sim.Move(int(j) - 1)
		}
	}
	p, ok := v.PortOfID(id)
	if !ok {
		return sim.Abort(fmt.Errorf("core: agent a at vertex %d has no visible neighbor with ID %d", v.HereID, id))
	}
	return sim.Move(p)
}

// travelOut begins goTo(dest) for dest != home: ≤ 2 moves via the via
// table, with arrival bookkeeping (visit count, doubling degree check)
// handled by the arrive state.
func (s *nativeAgentA) travelOut(v *sim.View, dest int64, arrive aPC) sim.Action {
	via, ok := s.w.viaOf(dest)
	if !ok {
		return sim.Abort(fmt.Errorf("core: goTo(%d): vertex unknown to walker", dest))
	}
	s.outDest = dest
	s.outArrive = arrive
	if via != dest {
		s.pc = pcOutVia
		return s.moveTo(v, via)
	}
	s.pc = arrive
	return s.moveTo(v, dest)
}

// beginReturn begins goHome from the current vertex (≤ 2 moves, no
// degree checks), arranging for `after` to run with the view at home.
// emitted=false means the agent is already home.
func (s *nativeAgentA) beginReturn(v *sim.View, after aPC) (sim.Action, bool) {
	cur := v.HereID
	if cur == s.w.home {
		s.pc = after
		return sim.Action{}, false
	}
	if j := s.w.s.npIdx.get(cur); j >= 0 { // adjacent to home
		s.pc = after
		return s.homeward(v, int(j)), true
	}
	via, ok := s.w.viaOf(cur)
	if !ok {
		return sim.Abort(fmt.Errorf("core: goHome from unknown vertex %d", cur)), true
	}
	s.retAfter = after
	s.pc = pcReturnVia
	return s.moveTo(v, via), true
}

// homeward moves home from the j-th member of N+(home) through the
// walker's cached return port, falling back to the generic lookup if
// home is somehow not visible (moveTo then aborts, as before).
func (s *nativeAgentA) homeward(v *sim.View, j int) sim.Action {
	if p, ok := s.w.homePort(v, j); ok {
		return sim.Move(p)
	}
	return s.moveTo(v, s.w.home)
}

// arriveRestart handles a doubling violation observed on arrival: go
// home (the Program form's goHomeAndReturn) and restart Construct.
func (s *nativeAgentA) arriveRestart(v *sim.View) sim.Action {
	act, ok := s.beginReturn(v, pcRestart)
	if !ok {
		// Unreachable (arrivals are never at home), but keep the
		// machine total: restart without motion.
		return s.nextFrom(v)
	}
	return act
}

// startSample begins Sample(set, α) with completion state ret —
// mirroring sampleRun including its empty-set early exit.
func (s *nativeAgentA) startSample(set []int64, ret aPC) {
	s.sampleRet = ret
	if len(set) == 0 || s.w.alpha() <= 0 {
		s.heavyOut = nil
		s.pc = ret
		return
	}
	s.sampleSet = set
	s.sampleM = s.w.sampleSize(len(set), s.w.alpha())
	s.sampleI = 0
	s.w.sampleReset()
	s.pc = pcSampleLoop
}

// endWait emits WaitUntilRound(round) with resume state after; pure
// when the barrier has already passed.
func (s *nativeAgentA) endWait(v *sim.View, round int64, after aPC) (sim.Action, bool) {
	s.pc = after
	if round > v.Round {
		return sim.StayFor(round - v.Round), true
	}
	return sim.Action{}, false
}

func (s *nativeAgentA) Next(v *sim.View) sim.Action { return s.nextFrom(v) }

// nextFrom is the dispatch loop: run pure transitions until a state
// emits this acting round's action.
func (s *nativeAgentA) nextFrom(v *sim.View) sim.Action {
	for {
		switch s.pc {
		case pcStart:
			// runConstruct preamble: δ ≥ 1 preflight and the initial
			// δ' estimate, both shared with the Program form.
			if err := constructPreflight(s.know, v.Degree); err != nil {
				return sim.Abort(err)
			}
			s.deltaEst = initialDeltaEst(s.know, v.Degree)
			s.pc = pcConstructBegin

		case pcConstructBegin:
			// constructDense prologue: fresh walker core over the
			// (reused) scratch, home degree check, NS ← N+(home).
			s.w = newWalkerCore(walkerScratchFor(s.slot), s.graphStamp, s.nPrime, s.p, s.deltaEst, s.know.Doubling, v.HereID, v.NeighborIDs)
			if s.w.degreeViolates(v.Degree) {
				s.pc = pcRestart // home itself violates the estimate
				continue
			}
			s.w.resetHeavyMarks()
			s.heavyOut = nil
			s.sampleSet = s.w.learn(s.w.home, s.w.s.homeNb) // Γ₁ = N+(home), reusing the field as gamma
			s.pc = pcIterBegin

		case pcRestart:
			// §4.1 doubling restart (runConstruct's halving loop).
			if s.wst != nil {
				s.wst.Restarts++
			}
			next, err := halvedDeltaEst(s.deltaEst)
			if err != nil {
				return sim.Abort(err)
			}
			s.deltaEst = next
			s.pc = pcConstructBegin

		case pcIterBegin:
			if s.wst != nil {
				s.wst.Iterations++
			}
			set := s.sampleSet // the difference set Γ_i held since the last learn
			if s.p.StrictOnly {
				set = s.w.s.nsL
				if s.wst != nil {
					s.wst.StrictRuns++
				}
			} else if s.wst != nil {
				s.wst.OptimisticRuns++
			}
			s.startSample(set, pcAfterSample)

		case pcSampleLoop: // at home
			if s.sampleI >= s.sampleM {
				s.heavyOut = s.w.sampleHeavy()
				s.pc = s.sampleRet
				continue
			}
			t := s.sampleSet[s.rng.IntN(len(s.sampleSet))]
			if t == s.w.home {
				s.w.sampleObserveHome()
				s.sampleI++
				continue
			}
			return s.travelOut(v, t, pcSampleArrive)

		case pcSampleArrive: // at the sampled vertex
			s.w.visits++
			if s.w.degreeViolates(v.Degree) {
				return s.arriveRestart(v)
			}
			s.w.sampleObserve(v.HereID, v.NeighborIDs)
			if act, ok := s.beginReturn(v, pcSampleReturned); ok {
				return act
			}

		case pcSampleReturned: // back home
			if s.wst != nil {
				s.wst.SampleVisits++
			}
			s.sampleI++
			s.pc = pcSampleLoop

		case pcAfterSample:
			s.w.markHeavy(s.heavyOut)
			if len(s.w.candidates()) == 0 {
				s.pc = pcConstructDone // N+(home) fully classified heavy
				continue
			}
			s.probeMax = s.w.probeBudget()
			s.probeJ = 0
			s.pc = pcProbeLoop

		case pcProbeLoop: // at home; R (s.w.s.cand) fixed for the loop
			if s.probeJ >= s.probeMax {
				// Strict decision: Sample over all of NS.
				if s.wst != nil {
					s.wst.StrictRuns++
				}
				s.startSample(s.w.s.nsL, pcAfterStrictSample)
				continue
			}
			r := s.w.s.cand
			u := r[s.rng.IntN(len(r))]
			s.ecU = u
			if u == s.w.home {
				s.ecCnt = s.w.countAgainstNS(u, s.w.s.homeNb)
				s.pc = pcProbeReturned
				continue
			}
			return s.travelOut(v, u, pcProbeArrive)

		case pcProbeArrive: // at the probed candidate
			s.w.visits++
			if s.w.degreeViolates(v.Degree) {
				return s.arriveRestart(v)
			}
			s.ecCnt = s.w.countAgainstNS(v.HereID, v.NeighborIDs)
			s.w.noteLastSeen(v.HereID, v.NeighborIDs)
			if act, ok := s.beginReturn(v, pcProbeReturned); ok {
				return act
			}

		case pcProbeReturned: // back home: evaluate the exact check
			if float64(s.ecCnt) < s.w.lightBound() {
				s.chosen = s.ecU
				s.pc = pcChosenGo
				continue
			}
			s.probeJ++
			s.pc = pcProbeLoop

		case pcAfterStrictSample:
			s.w.markHeavy(s.heavyOut)
			s.pc = pcStrictLoop

		case pcStrictLoop: // at home; R recomputed every draw
			r := s.w.candidates()
			if len(r) == 0 {
				s.pc = pcConstructDone // R = ∅ with no light vertex found
				continue
			}
			u := r[s.rng.IntN(len(r))]
			s.ecU = u
			if u == s.w.home {
				s.ecCnt = s.w.countAgainstNS(u, s.w.s.homeNb)
				s.pc = pcStrictReturned
				continue
			}
			return s.travelOut(v, u, pcStrictArrive)

		case pcStrictArrive:
			s.w.visits++
			if s.w.degreeViolates(v.Degree) {
				return s.arriveRestart(v)
			}
			s.ecCnt = s.w.countAgainstNS(v.HereID, v.NeighborIDs)
			s.w.noteLastSeen(v.HereID, v.NeighborIDs)
			if act, ok := s.beginReturn(v, pcStrictReturned); ok {
				return act
			}

		case pcStrictReturned:
			if float64(s.ecCnt) < s.w.lightBound() {
				s.chosen = s.ecU
				s.pc = pcChosenGo
				continue
			}
			s.w.markHeavyOne(s.ecU) // exactly verified heavy
			s.pc = pcStrictLoop

		case pcChosenGo: // S ← S ∪ {x_i}
			if nbs, cached := s.w.cachedNeighborhood(s.chosen); cached {
				s.sampleSet = s.w.learn(s.chosen, nbs) // Γ_{i+1}
				s.pc = pcIterBegin
				continue
			}
			return s.travelOut(v, s.chosen, pcChosenArrive)

		case pcChosenArrive: // at x_i: learn its neighborhood in place
			s.w.visits++
			if s.w.degreeViolates(v.Degree) {
				return s.arriveRestart(v)
			}
			s.sampleSet = s.w.learn(v.HereID, v.NeighborIDs) // Γ_{i+1}
			if act, ok := s.beginReturn(v, pcIterBegin); ok {
				return act
			}

		case pcConstructDone: // at home: T^a = NS is built
			if s.wst != nil {
				s.wst.DeltaUsed = s.w.deltaEst
				s.wst.ConstructRounds = v.Round
				s.wst.T = append([]int64(nil), s.w.s.nsL...)
				s.wst.TSize = len(s.w.s.nsL)
				s.wst.MemoryWords = s.w.memoryWords()
			}
			// Degree checks are a Construct-only device; the main
			// phase must not trigger restarts.
			s.w.doubling = false
			if s.nb != nil {
				s.pc = pcNbSchedule
			} else {
				s.pc = pcMainLoop
			}

		case pcOutVia: // outbound at the via vertex
			if s.w.degreeViolates(v.Degree) {
				return s.arriveRestart(v)
			}
			s.pc = s.outArrive
			return s.moveTo(v, s.outDest)

		case pcReturnVia: // homebound at the via vertex
			s.pc = s.retAfter
			if j := s.w.s.npIdx.get(v.HereID); j >= 0 {
				return s.homeward(v, int(j))
			}
			return s.moveTo(v, s.w.home)

		case pcMainLoop: // Theorem-1 main phase, at home
			t := s.w.s.nsL
			u := t[s.rng.IntN(len(t))]
			if u != s.w.home {
				return s.travelOut(v, u, pcMainArrive)
			}
			// Drawing home visits it for free: read the mark here and
			// fall through to the same decision as a remote visit.
			s.mark = v.Whiteboard
			s.pc = pcMainReturned

		case pcMainArrive: // at the sampled T^a vertex
			s.w.visits++
			s.mark = v.Whiteboard
			if act, ok := s.beginReturn(v, pcMainReturned); ok {
				return act
			}

		case pcMainReturned: // back home: act on the mark read remotely
			mark := s.mark
			if mark == sim.NoMark {
				s.pc = pcMainLoop
				continue
			}
			// mark is b's start-vertex ID; the initial distance is one,
			// so it is a neighbor of home. A mark that is not adjacent
			// cannot come from this algorithm; skip it defensively.
			if !slices.Contains(s.w.s.homeNb, mark) && mark != s.w.home {
				s.pc = pcMainLoop
				continue
			}
			s.pc = pcWait
			if mark != s.w.home {
				return s.moveTo(v, mark)
			}

		case pcWait: // at b's start vertex: wait for b's next return
			return sim.StayFor(waitForever)

		case pcNbSchedule: // Algorithm 4: derive the phase schedule
			sched, err := newNoboardSchedule(*s.p, s.nPrime, s.delta)
			if err != nil {
				return sim.Abort(err)
			}
			s.nb.sched = sched
			if s.nst != nil {
				s.nst.TPrime = sched.tPrime
				s.nst.PhaseLen = sched.phaseLen
				s.nst.Phases = sched.phases
				if v.Round > sched.tPrime {
					s.nst.LateConstruct = true
				}
			}
			if act, ok := s.endWait(v, sched.tPrime, pcNbPhi); ok {
				return act // the t' start barrier
			}

		case pcNbPhi: // at home, round ≥ t': sample Φ^a ⊆ T^a
			s.nb.phi = sampleSubsetInto(s.rng, s.w.s.phi, s.w.s.nsL, s.nb.sched.prob)
			s.w.s.phi = s.nb.phi
			if s.nst != nil {
				s.nst.PhiA = len(s.nb.phi)
			}
			s.nb.phiIdx = 0
			s.nb.phase = 1
			s.pc = pcNbPhaseBegin

		case pcNbPhaseBegin:
			if s.nb.phase > s.nb.sched.phases {
				s.pc = pcNbDone
				continue
			}
			s.nb.phaseFrom = s.nb.sched.phaseEnd(s.nb.phase - 1)
			s.nb.phaseTo = s.nb.sched.phaseEnd(s.nb.phase)
			s.nb.phaseHi = s.nb.phase * s.nb.sched.beta
			s.nb.slotNo = 0
			s.pc = pcNbSlotLoop

		case pcNbSlotLoop: // at home: next Φ^a vertex of this interval
			if !(s.nb.phiIdx < len(s.nb.phi) && s.nb.phi[s.nb.phiIdx] < s.nb.phaseHi) {
				s.nb.phase++
				if act, ok := s.endWait(v, s.nb.phaseTo, pcNbPhaseBegin); ok {
					return act // phase barrier
				}
				continue
			}
			s.nb.slotNo++
			s.nb.slotEnd = s.nb.phaseFrom + s.nb.slotNo*s.nb.sched.residency
			if s.nb.slotEnd > s.nb.phaseTo || v.Round > s.nb.slotEnd-s.nb.sched.residency+4 {
				// Out of slots (or running late): skip the rest of
				// this interval to preserve synchronization.
				if s.nst != nil {
					s.nst.OverflowPhasesA++
				}
				for s.nb.phiIdx < len(s.nb.phi) && s.nb.phi[s.nb.phiIdx] < s.nb.phaseHi {
					s.nb.phiIdx++
				}
				s.nb.phase++
				if act, ok := s.endWait(v, s.nb.phaseTo, pcNbPhaseBegin); ok {
					return act
				}
				continue
			}
			s.nb.resideU = s.nb.phi[s.nb.phiIdx]
			s.nb.phiIdx++
			if s.nb.resideU == s.w.home {
				s.pc = pcNbArrive
				continue
			}
			return s.travelOut(v, s.nb.resideU, pcNbArrive)

		case pcNbArrive: // at the slot vertex: reside until slotEnd-2
			if s.nb.resideU != s.w.home {
				s.w.visits++ // goTo's arrival bookkeeping (checks off)
			}
			s.nb.resideFrom = v.Round
			if act, ok := s.endWait(v, s.nb.slotEnd-2, pcNbResidencyDone); ok {
				return act
			}

		case pcNbResidencyDone: // residency over: record and go home
			if s.nst != nil {
				s.nst.Residencies = append(s.nst.Residencies, Residency{
					VertexID: s.nb.resideU, From: s.nb.resideFrom, To: v.Round,
				})
			}
			if act, ok := s.beginReturn(v, pcNbSlotLoop); ok {
				return act
			}

		case pcNbDone: // all phases done (w.h.p. rendezvous earlier)
			return sim.Halt()

		default:
			return sim.Abort(fmt.Errorf("core: native agent a in impossible state %d", s.pc))
		}
	}
}
