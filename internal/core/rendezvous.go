package core

import (
	"errors"
	"fmt"
	"slices"

	"fnr/internal/sim"
)

// WhiteboardAgents returns the (a, b) program pair implementing the
// Theorem-1 algorithm: agent a runs Construct and then Main-Rendezvous
// sampling; agent b obliviously marks random closed neighbors of its
// start vertex with its start ID. The pair needs whiteboards and
// neighbor-ID access. st may be nil.
func WhiteboardAgents(p Params, know Knowledge, st *WhiteboardStats) (a, b sim.Program) {
	return AgentA(p, know, st), AgentB()
}

// AgentA returns agent a's program for the Theorem-1 algorithm:
// Construct an (a, δ/8, 2)-dense set T^a (with doubling δ-estimation if
// requested), then repeatedly sample a uniform vertex of T^a, read its
// whiteboard, and on finding agent b's mark move to b's start vertex
// and wait there. st may be nil.
func AgentA(p Params, know Knowledge, st *WhiteboardStats) sim.Program {
	return func(e *sim.Env) {
		w := runConstruct(e, &p, know, st)
		mainRendezvousA(e, w)
	}
}

// ConstructOnly returns a program that runs Construct and halts,
// exposing T^a through st for the Lemma 5–8 experiments.
func ConstructOnly(p Params, know Knowledge, st *WhiteboardStats) sim.Program {
	return func(e *sim.Env) {
		runConstruct(e, &p, know, st)
	}
}

// constructPreflight validates the paper's δ ≥ 1 precondition as far
// as it is observable at the start vertex, instead of silently
// flooring the estimate: a degree-0 start (or a declared δ < 1
// without doubling) would previously spin Construct's restart loop or
// Main-Rendezvous's sampling loop forever without ever emitting an
// action, hanging the run. Both agent forms (Program and native
// stepper) fail through this one check so the two paths report the
// identical error at the identical round.
func constructPreflight(know Knowledge, homeDegree int) error {
	// A degree-0 start contradicts δ ≥ 1 whatever the agent was told:
	// with a declared δ the main phase would sample T^a = {home}
	// forever without acting, with doubling the restart loop would
	// never terminate.
	if homeDegree == 0 {
		return errors.New("core: start vertex has degree 0; the paper's algorithms require δ ≥ 1")
	}
	if !know.Doubling && know.Delta < 1 {
		return fmt.Errorf("core: Construct requires a known minimum degree δ ≥ 1, got %d", know.Delta)
	}
	return nil
}

// initialDeltaEst derives the first δ' estimate: half the start
// degree under §4.1 doubling (floored at 1 — a valid lower estimate,
// not a precondition violation), the declared δ otherwise. Call after
// constructPreflight.
func initialDeltaEst(know Knowledge, homeDegree int) float64 {
	if know.Doubling {
		deltaEst := float64(homeDegree) / 2
		if deltaEst < 1 {
			deltaEst = 1
		}
		return deltaEst
	}
	return float64(know.Delta)
}

// halvedDeltaEst advances the doubling estimation after a restart. A
// restart demanded at δ' = 1 is impossible on δ ≥ 1 inputs (every
// visited vertex has the edge it was entered through), so instead of
// flooring into an infinite restart loop it is reported as an error.
func halvedDeltaEst(cur float64) (float64, error) {
	if cur <= 1 {
		return 0, errors.New("core: doubling estimation restarted at δ' = 1 — a visited vertex has degree 0, violating the δ ≥ 1 precondition")
	}
	next := cur / 2
	if next < 1 {
		next = 1
	}
	return next, nil
}

// runConstruct runs Construct under the requested δ-knowledge mode,
// handling §4.1 doubling restarts.
func runConstruct(e *sim.Env, p *Params, know Knowledge, st *WhiteboardStats) *walker {
	if err := constructPreflight(know, e.Degree()); err != nil {
		panic(err)
	}
	deltaEst := initialDeltaEst(know, e.Degree())
	for {
		w, err := constructDense(e, p, deltaEst, know.Doubling, st)
		if err == nil {
			// Degree checks are a Construct-only device; the main
			// phase must not trigger restarts.
			w.doubling = false
			return w
		}
		var re *restartError
		if !know.Doubling || !errors.As(err, &re) {
			panic(err)
		}
		if st != nil {
			st.Restarts++
		}
		next, derr := halvedDeltaEst(deltaEst)
		if derr != nil {
			panic(derr)
		}
		deltaEst = next
	}
}

// mainRendezvousA is agent a's loop of Algorithm 1: sample v ∈ T^a
// uniformly, visit it, read the whiteboard, return home; once a mark
// (b's start-vertex ID) is found, move there and wait for b.
func mainRendezvousA(e *sim.Env, w *walker) {
	t := w.s.nsL
	rng := e.Rand()
	for {
		v := t[rng.IntN(len(t))]
		if err := w.goTo(v); err != nil {
			panic(err)
		}
		mark := e.Whiteboard()
		if err := w.goHome(); err != nil {
			panic(err)
		}
		if mark == sim.NoMark {
			continue
		}
		// mark is b's start-vertex ID; the initial distance is one, so
		// it is a neighbor of home. A mark that is not adjacent cannot
		// come from this algorithm; skip it defensively.
		if !slices.Contains(w.s.homeNb, mark) && mark != w.home {
			continue
		}
		if mark != w.home {
			if err := e.MoveToID(mark); err != nil {
				panic(err)
			}
		}
		// Wait for b's next return to its start vertex.
		for {
			e.Stay()
		}
	}
}

// AgentB returns agent b's oblivious program of Algorithm 1: repeatedly
// pick u uniformly from N+(start), visit it, write the start vertex's
// ID on its whiteboard, and return. It needs no knowledge of n or δ.
func AgentB() sim.Program {
	return func(e *sim.Env) {
		home := e.HereID()
		np := make([]int64, 0, e.Degree()+1)
		np = append(np, home)
		np = append(np, e.NeighborIDs()...)
		rng := e.Rand()
		for {
			u := np[rng.IntN(len(np))]
			if u == home {
				if err := e.WriteWhiteboard(home); err != nil {
					panic(err)
				}
				e.Stay() // commit the write, staying put
				continue
			}
			if err := e.MoveToID(u); err != nil {
				panic(err)
			}
			if err := e.WriteWhiteboard(home); err != nil {
				panic(err)
			}
			if err := e.MoveToID(home); err != nil {
				panic(err)
			}
		}
	}
}

// SampleReport exposes one standalone Sample(Γ, α) classification for
// the Lemma-2 experiments.
type SampleReport struct {
	// Heavy is the output set H': the vertices of N+(start) classified
	// α-heavy for Γ = N+(start).
	Heavy []int64
	// Visits is the number of vertex visits the run spent.
	Visits int64
}

// SampleClassifier returns a program that classifies every vertex of
// N+(start) as heavy or light for Γ = N+(start) with α = δ/AlphaDen,
// stores the result in rep, and halts. Used to validate Lemma 2 /
// Corollary 1 empirically.
func SampleClassifier(p Params, delta int, rep *SampleReport) sim.Program {
	return func(e *sim.Env) {
		w := newWalker(e, &p, float64(delta), false)
		gamma := w.learn(w.home, w.s.homeNb)
		heavy, err := w.sampleRun(gamma, w.alpha(), nil)
		if err != nil {
			panic(err)
		}
		// Copy: the sampleRun result is walker scratch and must not
		// outlive the run inside a caller-owned report.
		rep.Heavy = append([]int64(nil), heavy...)
		rep.Visits = w.visits
	}
}
