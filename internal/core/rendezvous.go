package core

import (
	"errors"
	"slices"

	"fnr/internal/sim"
)

// WhiteboardAgents returns the (a, b) program pair implementing the
// Theorem-1 algorithm: agent a runs Construct and then Main-Rendezvous
// sampling; agent b obliviously marks random closed neighbors of its
// start vertex with its start ID. The pair needs whiteboards and
// neighbor-ID access. st may be nil.
func WhiteboardAgents(p Params, know Knowledge, st *WhiteboardStats) (a, b sim.Program) {
	return AgentA(p, know, st), AgentB()
}

// AgentA returns agent a's program for the Theorem-1 algorithm:
// Construct an (a, δ/8, 2)-dense set T^a (with doubling δ-estimation if
// requested), then repeatedly sample a uniform vertex of T^a, read its
// whiteboard, and on finding agent b's mark move to b's start vertex
// and wait there. st may be nil.
func AgentA(p Params, know Knowledge, st *WhiteboardStats) sim.Program {
	return func(e *sim.Env) {
		w := runConstruct(e, p, know, st)
		mainRendezvousA(e, w)
	}
}

// ConstructOnly returns a program that runs Construct and halts,
// exposing T^a through st for the Lemma 5–8 experiments.
func ConstructOnly(p Params, know Knowledge, st *WhiteboardStats) sim.Program {
	return func(e *sim.Env) {
		runConstruct(e, p, know, st)
	}
}

// runConstruct runs Construct under the requested δ-knowledge mode,
// handling §4.1 doubling restarts.
func runConstruct(e *sim.Env, p Params, know Knowledge, st *WhiteboardStats) *walker {
	var deltaEst float64
	if know.Doubling {
		deltaEst = float64(e.Degree()) / 2
		if deltaEst < 1 {
			deltaEst = 1
		}
	} else {
		deltaEst = float64(know.Delta)
		if deltaEst < 1 {
			deltaEst = 1
		}
	}
	for {
		w, err := constructDense(e, p, deltaEst, know.Doubling, st)
		if err == nil {
			// Degree checks are a Construct-only device; the main
			// phase must not trigger restarts.
			w.doubling = false
			return w
		}
		var re *restartError
		if !know.Doubling || !errors.As(err, &re) {
			panic(err)
		}
		if st != nil {
			st.Restarts++
		}
		deltaEst /= 2
		if deltaEst < 1 {
			deltaEst = 1
		}
	}
}

// mainRendezvousA is agent a's loop of Algorithm 1: sample v ∈ T^a
// uniformly, visit it, read the whiteboard, return home; once a mark
// (b's start-vertex ID) is found, move there and wait for b.
func mainRendezvousA(e *sim.Env, w *walker) {
	t := w.s.nsL
	rng := e.Rand()
	for {
		v := t[rng.IntN(len(t))]
		if err := w.goTo(v); err != nil {
			panic(err)
		}
		mark := e.Whiteboard()
		if err := w.goHome(); err != nil {
			panic(err)
		}
		if mark == sim.NoMark {
			continue
		}
		// mark is b's start-vertex ID; the initial distance is one, so
		// it is a neighbor of home. A mark that is not adjacent cannot
		// come from this algorithm; skip it defensively.
		if !slices.Contains(w.s.homeNb, mark) && mark != w.home {
			continue
		}
		if mark != w.home {
			if err := e.MoveToID(mark); err != nil {
				panic(err)
			}
		}
		// Wait for b's next return to its start vertex.
		for {
			e.Stay()
		}
	}
}

// AgentB returns agent b's oblivious program of Algorithm 1: repeatedly
// pick u uniformly from N+(start), visit it, write the start vertex's
// ID on its whiteboard, and return. It needs no knowledge of n or δ.
func AgentB() sim.Program {
	return func(e *sim.Env) {
		home := e.HereID()
		np := make([]int64, 0, e.Degree()+1)
		np = append(np, home)
		np = append(np, e.NeighborIDs()...)
		rng := e.Rand()
		for {
			u := np[rng.IntN(len(np))]
			if u == home {
				if err := e.WriteWhiteboard(home); err != nil {
					panic(err)
				}
				e.Stay() // commit the write, staying put
				continue
			}
			if err := e.MoveToID(u); err != nil {
				panic(err)
			}
			if err := e.WriteWhiteboard(home); err != nil {
				panic(err)
			}
			if err := e.MoveToID(home); err != nil {
				panic(err)
			}
		}
	}
}

// SampleReport exposes one standalone Sample(Γ, α) classification for
// the Lemma-2 experiments.
type SampleReport struct {
	// Heavy is the output set H': the vertices of N+(start) classified
	// α-heavy for Γ = N+(start).
	Heavy []int64
	// Visits is the number of vertex visits the run spent.
	Visits int64
}

// SampleClassifier returns a program that classifies every vertex of
// N+(start) as heavy or light for Γ = N+(start) with α = δ/AlphaDen,
// stores the result in rep, and halts. Used to validate Lemma 2 /
// Corollary 1 empirically.
func SampleClassifier(p Params, delta int, rep *SampleReport) sim.Program {
	return func(e *sim.Env) {
		w := newWalker(e, p, float64(delta), false)
		gamma := w.learn(w.home, w.s.homeNb)
		heavy, err := w.sampleRun(gamma, w.alpha(), nil)
		if err != nil {
			panic(err)
		}
		// Copy: the sampleRun result is walker scratch and must not
		// outlive the run inside a caller-owned report.
		rep.Heavy = append([]int64(nil), heavy...)
		rep.Visits = w.visits
	}
}
