package core

import (
	"fmt"
	"math"

	"fnr/internal/sim"
)

// restartError signals a doubling-estimation restart: a visited
// vertex's degree undercut the current δ' estimate (§4.1).
type restartError struct {
	seenDegree int
}

func (e *restartError) Error() string {
	return fmt.Sprintf("core: visited vertex of degree %d below current δ' estimate", e.seenDegree)
}

// walkerScratch is the reusable Θ(n' + ∆) storage behind a walker: the
// dense-or-map ID structures of idspace.go plus every growable list
// the walker and Construct touch. It parks on the agent's
// sim.AgentScratch slot between trials, so a worker running many
// trials re-arms it in O(1) (epoch bumps, length resets) instead of
// re-allocating ~1 MB of dense arrays per trial at n=65536. Reuse is
// representation-only: a warmed scratch answers every query exactly
// like a fresh one, so trial outcomes cannot depend on it (the
// engine's differential suite pins this).
type walkerScratch struct {
	npIdx idIndex // ID -> position in npHomeL (-1 if not in N+(home))
	via   idToID  // known vertex -> neighbor of home on a shortest path
	ns    idSet   // N+(S), the paper's NS^a
	// walker lists (see the walker fields of the same names).
	homeNb     []int64
	npHomeL    []int64
	nsL        []int64
	lastSeenNb []int64
	// retPort caches, per npHomeL position, the port from that vertex
	// back to home (-1 until first computed). Every Sample draw and
	// every distance-2 trip ends standing on a neighbor of home, so
	// the cache turns the return move's per-vertex port lookup (a
	// binary search over a Θ(∆) neighbor list) into one array read.
	// Ports are pure graph structure, so the cache survives re-arms —
	// including whole trials — as long as (graph stamp, home) match;
	// retStamp/retHome key that (stamp 0 never matches).
	retPort  []int32
	retStamp uint64
	retHome  int64
	// Construct/Sample scratch (see constructDense and sampleRun).
	counts []int32
	inH    []bool
	heavy  []int64
	cand   []int64
	// diff double-buffers learn's difference sets: the previous
	// difference set stays intact while the next one builds (Construct
	// holds Γ_i across the learn call that produces Γ_{i+1}).
	diff    [2][]int64
	diffCur int
	// phi is the Φ^a sample buffer of the native noboard stepper
	// (Algorithm 4); the Program form allocates instead — results are
	// identical either way.
	phi []int64
}

// walkerScratchFor finds (or creates) the walker scratch parked on the
// given trial-context slot. A nil slot (hand-built contexts, plain
// sim.Run) yields a fresh scratch every time — behaviorally identical,
// just without the reuse.
func walkerScratchFor(slot *sim.AgentScratch) *walkerScratch {
	if slot == nil {
		return &walkerScratch{}
	}
	ws, _ := slot.Get().(*walkerScratch)
	if ws == nil {
		ws = &walkerScratch{}
		slot.Set(ws)
	}
	return ws
}

// walkerCore is the runtime-agnostic part of agent a's bookkeeping:
// the learned 2-neighborhood of the start vertex, the via table that
// keeps every learned vertex within two moves of home, and the pure
// arithmetic of Algorithms 2 and 3. The Program-path walker embeds it
// and adds Env-driven movement; the native steppers drive the same
// core from their state machines, so the two paths share every
// decision computation (and cannot drift apart numerically).
//
// The ID-keyed state lives in the dense-or-map structures of
// idspace.go: Sample's inner loop touches them once per observed
// neighbor, which made the original map-backed forms the dominant
// cost of the whole Theorem-1 simulation. All of it lives in the
// reusable walkerScratch s:
//
//   - s.homeNb: N(home) IDs in port order
//   - s.npHomeL: N+(home) as a list (home first)
//   - s.nsL: NS as a list, in discovery order
type walkerCore struct {
	p        *Params
	s        *walkerScratch
	lnN      float64
	deltaEst float64 // current δ' (exact δ or the doubling estimate)
	doubling bool
	// denseCounts selects the ID-indexed Sample counters (see
	// sampleReset): like the idspace structures, small ID spaces get
	// dense arrays, large ones the position-indexed fallback.
	nPrime      int64
	denseCounts bool

	home   int64
	visits int64 // number of vertex visits (diagnostics)

	// lastSeen holds the full neighbor list of the most recently
	// visited candidate only (in s.lastSeenNb). One entry suffices —
	// Construct consumes it immediately when the candidate is selected
	// as x_i — and keeping just one preserves the paper's O(n log n)-bit
	// memory claim (an unbounded cache could reach Θ(δ·∆) words).
	lastSeenID int64
}

// walker couples a walkerCore to the Program path's Env: movement
// (goTo/goHome) and observation go through blocking Env calls.
type walker struct {
	walkerCore
	e *sim.Env
}

// newWalkerCore snapshots the start vertex's neighborhood (home ID and
// its neighbor list as observed there) and re-arms the shared scratch.
// Only one core per agent is ever live at a time (doubling restarts
// discard the old one before constructing anew), so re-arming here is
// safe.
func newWalkerCore(s *walkerScratch, graphStamp uint64, nPrime int64, p *Params, deltaEst float64, doubling bool, home int64, homeNbs []int64) walkerCore {
	s.homeNb = append(s.homeNb[:0], homeNbs...)
	w := walkerCore{
		p:           p,
		s:           s,
		lnN:         lnOf(nPrime),
		deltaEst:    deltaEst,
		doubling:    doubling,
		nPrime:      nPrime,
		denseCounts: nPrime > 0 && nPrime <= denseIDLimit,
		home:        home,
		lastSeenID:  -1,
	}
	s.via.init(nPrime, 2*len(s.homeNb))
	s.ns.init(nPrime, 2*len(s.homeNb))
	s.npIdx.init(nPrime, len(s.homeNb)+1)
	s.npHomeL = append(s.npHomeL[:0], w.home)
	s.npHomeL = append(s.npHomeL, s.homeNb...)
	for i, id := range s.npHomeL {
		s.npIdx.set(id, int32(i))
	}
	if graphStamp == 0 || s.retStamp != graphStamp || s.retHome != home || len(s.retPort) != len(s.npHomeL) {
		if cap(s.retPort) < len(s.npHomeL) {
			s.retPort = make([]int32, len(s.npHomeL))
		}
		s.retPort = s.retPort[:len(s.npHomeL)]
		for i := range s.retPort {
			s.retPort[i] = -1
		}
		s.retStamp, s.retHome = graphStamp, home
	}
	s.nsL = s.nsL[:0]
	s.lastSeenNb = s.lastSeenNb[:0]
	s.via.setIfMissing(w.home, w.home)
	for _, id := range s.homeNb {
		s.via.setIfMissing(id, id)
	}
	return w
}

// newWalker builds the Program-path walker. Must be called with the
// agent at its start vertex.
func newWalker(e *sim.Env, p *Params, deltaEst float64, doubling bool) *walker {
	return &walker{
		walkerCore: newWalkerCore(walkerScratchFor(e.Scratch()), 0, e.NPrime(), p, deltaEst, doubling, e.HereID(), e.NeighborIDs()),
		e:          e,
	}
}

// alpha returns α = δ'/AlphaDen.
func (w *walkerCore) alpha() float64 { return w.deltaEst / w.p.AlphaDen }

// lightBound returns the exact-check lightness threshold δ'/LightDen.
func (w *walkerCore) lightBound() float64 { return w.deltaEst / w.p.LightDen }

// degreeViolates reports whether a visited vertex of the given degree
// violates the doubling-estimation invariant (§4.1).
func (w *walkerCore) degreeViolates(degree int) bool {
	return w.doubling && float64(degree) < w.deltaEst
}

// checkDegree enforces the doubling-estimation invariant on the vertex
// the agent currently occupies.
func (w *walker) checkDegree() error {
	if w.degreeViolates(w.e.Degree()) {
		return &restartError{seenDegree: w.e.Degree()}
	}
	return nil
}

// viaOf returns the first hop from home toward the known vertex
// target (possibly target itself when adjacent to home).
func (w *walkerCore) viaOf(target int64) (int64, bool) {
	return w.s.via.get(target)
}

// homePort returns the port leading home from the j-th member of
// N+(home) — the vertex the view stands on — computing it once per
// (vertex, home) pair and serving repeats from the retPort cache. The
// cached value is exactly what PortOfID returned the first time, so
// trajectories are unchanged.
func (w *walkerCore) homePort(v *sim.View, j int) (int, bool) {
	if p := w.s.retPort[j]; p >= 0 {
		return int(p), true
	}
	p, ok := v.PortOfID(w.home)
	if !ok {
		return 0, false
	}
	w.s.retPort[j] = int32(p)
	return p, true
}

// goTo moves from home to the known vertex target (≤ 2 moves) and
// verifies the degree invariant on arrival. The caller must currently
// be at home.
func (w *walker) goTo(target int64) error {
	if target == w.home {
		return nil
	}
	via, ok := w.viaOf(target)
	if !ok {
		return fmt.Errorf("core: goTo(%d): vertex unknown to walker", target)
	}
	if via != target {
		if err := w.e.MoveToID(via); err != nil {
			return err
		}
		if err := w.checkDegree(); err != nil {
			return err
		}
	}
	if err := w.e.MoveToID(target); err != nil {
		return err
	}
	w.visits++
	return w.checkDegree()
}

// goHome returns to home from wherever the agent stands (≤ 2 moves).
func (w *walker) goHome() error {
	cur := w.e.HereID()
	if cur == w.home {
		return nil
	}
	if w.s.npIdx.get(cur) < 0 { // not adjacent to home: go via
		via, ok := w.viaOf(cur)
		if !ok {
			return fmt.Errorf("core: goHome from unknown vertex %d", cur)
		}
		if err := w.e.MoveToID(via); err != nil {
			return err
		}
	}
	return w.e.MoveToID(w.home)
}

// observeHere returns N+(current vertex) as (self ID, neighbor IDs).
// The neighbor slice is the simulator's shared buffer: valid only until
// the next move.
func (w *walker) observeHere() (int64, []int64) {
	return w.e.HereID(), w.e.NeighborIDs()
}

// learn records x's full neighborhood (observed while standing on x)
// into NS^a, assigning via-vertices for the newly discovered vertices,
// and returns the list of vertices newly added to NS (the difference
// set N+(S ∪ {x}) \ N+(S)). The returned slice stays valid until the
// next learn call after it (the double buffer in s.diff).
func (w *walkerCore) learn(x int64, nbs []int64) []int64 {
	s := w.s
	s.diffCur ^= 1
	added := s.diff[s.diffCur][:0]
	add := func(id int64) {
		if s.ns.has(id) {
			return
		}
		s.ns.add(id)
		s.nsL = append(s.nsL, id)
		added = append(added, id)
		s.via.setIfMissing(id, x)
	}
	add(x)
	for _, id := range nbs {
		add(id)
	}
	s.diff[s.diffCur] = added
	return added
}

// noteLastSeen retains the observed neighborhood of the most recently
// visited candidate (the single-entry cache behind cachedNeighborhood).
func (w *walkerCore) noteLastSeen(self int64, nbs []int64) {
	w.lastSeenID = self
	w.s.lastSeenNb = append(w.s.lastSeenNb[:0], nbs...)
}

// exactCount returns |NS ∩ N+(u)| by visiting u, as the strict
// decision of Algorithm 3 does (home is free: its neighborhood is
// known). The observed neighborhood is retained as the single-entry
// lastSeen cache so that learn can use it if u is selected as x_i. The
// agent ends the call back at home.
func (w *walker) exactCount(u int64) (int, error) {
	if u == w.home {
		return w.countAgainstNS(u, w.s.homeNb), nil
	}
	if err := w.goTo(u); err != nil {
		return 0, err
	}
	self, nbs := w.observeHere()
	cnt := w.countAgainstNS(self, nbs)
	w.noteLastSeen(self, nbs)
	if err := w.goHome(); err != nil {
		return 0, err
	}
	return cnt, nil
}

// cachedNeighborhood returns u's full neighbor list if u is home or the
// most recently visited candidate.
func (w *walkerCore) cachedNeighborhood(u int64) ([]int64, bool) {
	if u == w.home {
		return w.s.homeNb, true
	}
	if u == w.lastSeenID {
		return w.s.lastSeenNb, true
	}
	return nil, false
}

// memoryWords estimates the walker's state size in machine words:
// O(|NS| + ∆) = O(n), matching the paper's O(n log n)-bit claim. The
// dense idspace representations trade extra transient memory for
// speed; the estimate deliberately counts logical entries, i.e. the
// algorithm's information content.
func (w *walkerCore) memoryWords() int {
	s := w.s
	return len(s.homeNb) + len(s.npHomeL) + s.via.len() + len(s.nsL) + len(s.lastSeenNb)
}

func (w *walkerCore) countAgainstNS(self int64, nbs []int64) int {
	cnt := 0
	if w.s.ns.has(self) {
		cnt++
	}
	for _, id := range nbs {
		if w.s.ns.has(id) {
			cnt++
		}
	}
	return cnt
}

// The pure arithmetic of Algorithm 2, Sample(Γ, α), shared verbatim by
// the Program-path sampleRun and the native steppers so the two paths
// cannot diverge on a threshold.

// sampleSize returns the visit budget ⌈SampleMult·|Γ|·ln n / α⌉ (≥ 1).
func (w *walkerCore) sampleSize(gammaLen int, alpha float64) int {
	m := int(math.Ceil(w.p.SampleMult * float64(gammaLen) * w.lnN / alpha))
	if m < 1 {
		m = 1
	}
	return m
}

// sampleReset prepares the per-call visit counters. In dense mode
// (small ID space, like idspace.go) counters are indexed directly by
// vertex ID, which turns the observation loop into plain array bumps
// — no npIdx lookup, no epoch check — and only the N+(home) entries
// are ever read, so the reset clears exactly those (O(∆)). Slots at
// other IDs may hold garbage from earlier calls; sampleHeavy never
// looks at them, and int32 wraparound on a never-read slot is
// harmless. In map mode counters live at each vertex's position in
// npHomeL, as before. Either way the counter array is walker scratch:
// allocated once per worker, both representations count identically.
func (w *walkerCore) sampleReset() {
	ws := w.s
	if w.denseCounts {
		if int64(cap(ws.counts)) < w.nPrime {
			ws.counts = make([]int32, w.nPrime)
		}
		ws.counts = ws.counts[:w.nPrime]
		for _, id := range ws.npHomeL {
			ws.counts[id] = 0
		}
		return
	}
	if cap(ws.counts) < len(ws.npHomeL) {
		ws.counts = make([]int32, len(ws.npHomeL))
	}
	ws.counts = ws.counts[:len(ws.npHomeL)]
	clear(ws.counts)
}

// sampleObserveHome credits a draw that landed on home: visiting home
// is free, and N+(home) ∩ N+(home) is everything.
func (w *walkerCore) sampleObserveHome() {
	ws := w.s
	if w.denseCounts {
		for _, id := range ws.npHomeL {
			ws.counts[id]++
		}
		return
	}
	for j := range ws.counts {
		ws.counts[j]++
	}
}

// sampleObserve credits one remote visit's observation (self plus its
// neighbor list) against the N+(home) counters. The dense branch
// bumps unconditionally — IDs outside N+(home) land on slots nothing
// reads — which is what removes the per-neighbor membership lookup
// from the hottest loop of the whole simulation.
func (w *walkerCore) sampleObserve(self int64, nbs []int64) {
	ws := w.s
	if w.denseCounts {
		ws.counts[self]++
		for _, u := range nbs {
			ws.counts[u]++
		}
		return
	}
	if j := ws.npIdx.get(self); j >= 0 {
		ws.counts[j]++
	}
	for _, u := range nbs {
		if j := ws.npIdx.get(u); j >= 0 {
			ws.counts[j]++
		}
	}
}

// sampleHeavy scans the counters and returns the vertices whose count
// reached ℓ = ⌈HeavyThresholdMult·ln n⌉. The returned list is scratch:
// every caller consumes it before the next sample run (markHeavy
// immediately, or a copy for the Lemma-2 report).
func (w *walkerCore) sampleHeavy() []int64 {
	ws := w.s
	threshold := int32(math.Ceil(w.p.HeavyThresholdMult * w.lnN))
	heavy := ws.heavy[:0]
	if w.denseCounts {
		for _, u := range ws.npHomeL {
			if ws.counts[u] >= threshold {
				heavy = append(heavy, u)
			}
		}
		ws.heavy = heavy
		return heavy
	}
	for j, u := range ws.npHomeL {
		if ws.counts[j] >= threshold {
			heavy = append(heavy, u)
		}
	}
	ws.heavy = heavy
	return heavy
}

// The shared pure bookkeeping of Algorithm 3, Construct.

// resetHeavyMarks prepares the H classification array. inH is indexed
// by npHomeL position: heavy classification only ever applies to
// members of N+(home).
func (w *walkerCore) resetHeavyMarks() {
	ws := w.s
	if cap(ws.inH) < len(ws.npHomeL) {
		ws.inH = make([]bool, len(ws.npHomeL))
	}
	ws.inH = ws.inH[:len(ws.npHomeL)]
	clear(ws.inH)
}

// markHeavy records the given members of N+(home) as classified heavy.
func (w *walkerCore) markHeavy(ids []int64) {
	for _, u := range ids {
		w.s.inH[w.s.npIdx.get(u)] = true
	}
}

// markHeavyOne records a single exactly-verified heavy vertex.
func (w *walkerCore) markHeavyOne(u int64) {
	w.s.inH[w.s.npIdx.get(u)] = true
}

// candidates returns R, the members of N+(home) not yet classified
// heavy, into the cand scratch list.
func (w *walkerCore) candidates() []int64 {
	ws := w.s
	r := ws.cand[:0]
	for j, u := range ws.npHomeL {
		if !ws.inH[j] {
			r = append(r, u)
		}
	}
	ws.cand = r
	return r
}

// probeBudget returns the step-2 probe count ⌈ProbeMult·ln n⌉ (≥ 1).
func (w *walkerCore) probeBudget() int {
	probes := int(math.Ceil(w.p.ProbeMult * w.lnN))
	if probes < 1 {
		probes = 1
	}
	return probes
}
