package core

import (
	"fmt"
	"slices"

	"fnr/internal/sim"
)

// restartError signals a doubling-estimation restart: a visited
// vertex's degree undercut the current δ' estimate (§4.1).
type restartError struct {
	seenDegree int
}

func (e *restartError) Error() string {
	return fmt.Sprintf("core: visited vertex of degree %d below current δ' estimate", e.seenDegree)
}

// walker is agent a's bookkeeping: the learned 2-neighborhood of its
// start vertex, with a via-vertex per known vertex so that any learned
// vertex is reachable from home in at most two moves (the paper's
// "shortest paths to all vertices in T^a" knowledge).
//
// The ID-keyed state lives in the dense-or-map structures of
// idspace.go: Sample's inner loop touches them once per observed
// neighbor, which made the original map-backed forms the dominant
// cost of the whole Theorem-1 simulation.
type walker struct {
	e        *sim.Env
	p        Params
	lnN      float64
	deltaEst float64 // current δ' (exact δ or the doubling estimate)
	doubling bool

	home    int64
	homeNb  []int64  // N(home) IDs in port order
	npIdx   *idIndex // ID -> position in npHomeL (-1 if not in N+(home))
	npHomeL []int64  // N+(home) as a list (home first)
	via     *idToID  // known vertex -> neighbor of home on a shortest path
	ns      *idSet   // N+(S), the paper's NS^a
	nsL     []int64  // NS as a list, in discovery order
	visits  int64    // number of vertex visits (diagnostics)

	// lastSeen holds the full neighbor list of the most recently
	// visited candidate only. One entry suffices — Construct consumes
	// it immediately when the candidate is selected as x_i — and
	// keeping just one preserves the paper's O(n log n)-bit memory
	// claim (an unbounded cache could reach Θ(δ·∆) words).
	lastSeenID int64
	lastSeenNb []int64
}

// newWalker snapshots the start vertex's neighborhood. Must be called
// with the agent at its start vertex.
func newWalker(e *sim.Env, p Params, deltaEst float64, doubling bool) *walker {
	nPrime := e.NPrime()
	homeNb := slices.Clone(e.NeighborIDs())
	w := &walker{
		e:          e,
		p:          p,
		lnN:        lnOf(nPrime),
		deltaEst:   deltaEst,
		doubling:   doubling,
		home:       e.HereID(),
		homeNb:     homeNb,
		via:        newIDToID(nPrime, 2*len(homeNb)),
		ns:         newIDSet(nPrime, 2*len(homeNb)),
		lastSeenID: -1,
	}
	w.npIdx = newIDIndex(nPrime, len(w.homeNb)+1)
	w.npHomeL = make([]int64, 0, len(w.homeNb)+1)
	w.npHomeL = append(w.npHomeL, w.home)
	w.npHomeL = append(w.npHomeL, w.homeNb...)
	for i, id := range w.npHomeL {
		w.npIdx.set(id, int32(i))
	}
	w.via.setIfMissing(w.home, w.home)
	for _, id := range w.homeNb {
		w.via.setIfMissing(id, id)
	}
	return w
}

// alpha returns α = δ'/AlphaDen.
func (w *walker) alpha() float64 { return w.deltaEst / w.p.AlphaDen }

// lightBound returns the exact-check lightness threshold δ'/LightDen.
func (w *walker) lightBound() float64 { return w.deltaEst / w.p.LightDen }

// checkDegree enforces the doubling-estimation invariant on the vertex
// the agent currently occupies.
func (w *walker) checkDegree() error {
	if w.doubling && float64(w.e.Degree()) < w.deltaEst {
		return &restartError{seenDegree: w.e.Degree()}
	}
	return nil
}

// goTo moves from home to the known vertex target (≤ 2 moves) and
// verifies the degree invariant on arrival. The caller must currently
// be at home.
func (w *walker) goTo(target int64) error {
	if target == w.home {
		return nil
	}
	via, ok := w.via.get(target)
	if !ok {
		return fmt.Errorf("core: goTo(%d): vertex unknown to walker", target)
	}
	if via != target {
		if err := w.e.MoveToID(via); err != nil {
			return err
		}
		if err := w.checkDegree(); err != nil {
			return err
		}
	}
	if err := w.e.MoveToID(target); err != nil {
		return err
	}
	w.visits++
	return w.checkDegree()
}

// goHome returns to home from wherever the agent stands (≤ 2 moves).
func (w *walker) goHome() error {
	cur := w.e.HereID()
	if cur == w.home {
		return nil
	}
	if w.npIdx.get(cur) < 0 { // not adjacent to home: go via
		via, ok := w.via.get(cur)
		if !ok {
			return fmt.Errorf("core: goHome from unknown vertex %d", cur)
		}
		if err := w.e.MoveToID(via); err != nil {
			return err
		}
	}
	return w.e.MoveToID(w.home)
}

// observeHere returns N+(current vertex) as (self ID, neighbor IDs).
// The neighbor slice is the simulator's shared buffer: valid only until
// the next move.
func (w *walker) observeHere() (int64, []int64) {
	return w.e.HereID(), w.e.NeighborIDs()
}

// learn records x's full neighborhood (observed while standing on x)
// into NS^a, assigning via-vertices for the newly discovered vertices,
// and returns the list of vertices newly added to NS (the difference
// set N+(S ∪ {x}) \ N+(S)).
func (w *walker) learn(x int64, nbs []int64) []int64 {
	var added []int64
	add := func(id int64) {
		if w.ns.has(id) {
			return
		}
		w.ns.add(id)
		w.nsL = append(w.nsL, id)
		added = append(added, id)
		w.via.setIfMissing(id, x)
	}
	add(x)
	for _, id := range nbs {
		add(id)
	}
	return added
}

// exactCount returns |NS ∩ N+(u)| by visiting u, as the strict
// decision of Algorithm 3 does (home is free: its neighborhood is
// known). The observed neighborhood is retained as the single-entry
// lastSeen cache so that learn can use it if u is selected as x_i. The
// agent ends the call back at home.
func (w *walker) exactCount(u int64) (int, error) {
	if u == w.home {
		return w.countAgainstNS(u, w.homeNb), nil
	}
	if err := w.goTo(u); err != nil {
		return 0, err
	}
	self, nbs := w.observeHere()
	cnt := w.countAgainstNS(self, nbs)
	w.lastSeenID = self
	w.lastSeenNb = append(w.lastSeenNb[:0], nbs...)
	if err := w.goHome(); err != nil {
		return 0, err
	}
	return cnt, nil
}

// cachedNeighborhood returns u's full neighbor list if u is home or the
// most recently visited candidate.
func (w *walker) cachedNeighborhood(u int64) ([]int64, bool) {
	if u == w.home {
		return w.homeNb, true
	}
	if u == w.lastSeenID {
		return w.lastSeenNb, true
	}
	return nil, false
}

// memoryWords estimates the walker's state size in machine words:
// O(|NS| + ∆) = O(n), matching the paper's O(n log n)-bit claim. The
// dense idspace representations trade extra transient memory for
// speed; the estimate deliberately counts logical entries, i.e. the
// algorithm's information content.
func (w *walker) memoryWords() int {
	return len(w.homeNb) + len(w.npHomeL) + w.via.len() + len(w.nsL) + len(w.lastSeenNb)
}

func (w *walker) countAgainstNS(self int64, nbs []int64) int {
	cnt := 0
	if w.ns.has(self) {
		cnt++
	}
	for _, id := range nbs {
		if w.ns.has(id) {
			cnt++
		}
	}
	return cnt
}
