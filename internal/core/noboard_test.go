package core

import (
	"math/rand/v2"
	"testing"

	"fnr/internal/graph"
	"fnr/internal/sim"
)

func TestNoboardSchedule(t *testing.T) {
	p := PracticalParams()
	s, err := newNoboardSchedule(p, 1024, 256)
	if err != nil {
		t.Fatal(err)
	}
	if s.beta != 16 {
		t.Errorf("beta = %d, want 16", s.beta)
	}
	if s.phases != 64 {
		t.Errorf("phases = %d, want 64", s.phases)
	}
	if s.phaseLen != s.residency*s.residency {
		t.Errorf("phaseLen = %d, want L² = %d", s.phaseLen, s.residency*s.residency)
	}
	if s.residency < 8 {
		t.Errorf("residency = %d, want ≥ 8", s.residency)
	}
	if s.prob <= 0 || s.prob > 1 {
		t.Errorf("prob = %v out of (0, 1]", s.prob)
	}
	if s.phaseEnd(0) != s.tPrime || s.phaseEnd(2) != s.tPrime+2*s.phaseLen {
		t.Error("phaseEnd arithmetic wrong")
	}
	// Both agents must derive the identical schedule.
	if s2, err := newNoboardSchedule(p, 1024, 256); err != nil || s2 != s {
		t.Errorf("schedule derivation not deterministic (err=%v)", err)
	}
}

func TestNoboardRendezvousOnPlanted(t *testing.T) {
	rng := rand.New(rand.NewPCG(77, 78))
	g, err := graph.PlantedMinDegree(256, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	a, b := adjacentStarts(t, g)
	met := 0
	for seed := uint64(0); seed < 3; seed++ {
		st := &NoboardStats{}
		progA, progB := NoboardAgents(PracticalParams(), g.MinDegree(), st)
		res, err := sim.Run(sim.Config{
			Graph: g, StartA: a, StartB: b,
			NeighborIDs: true, Whiteboards: false, // the point of Theorem 2
			Seed: seed, MaxRounds: 1 << 40,
		}, progA, progB)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if st.LateConstruct {
			t.Errorf("seed %d: Construct missed the t' barrier (t'=%d)", seed, st.TPrime)
		}
		if res.Met {
			met++
			if res.MeetRound < st.TPrime {
				t.Errorf("seed %d: met at %d before the t'=%d barrier", seed, res.MeetRound, st.TPrime)
			}
		}
	}
	// The w.h.p. guarantee under practical constants: allow one miss
	// across seeds, but not systematic failure.
	if met < 2 {
		t.Fatalf("only %d/3 seeds achieved rendezvous", met)
	}
}

func TestNoboardRendezvousOnComplete(t *testing.T) {
	g, err := graph.Complete(128)
	if err != nil {
		t.Fatal(err)
	}
	st := &NoboardStats{}
	progA, progB := NoboardAgents(PracticalParams(), g.MinDegree(), st)
	res, err := sim.Run(sim.Config{
		Graph: g, StartA: 0, StartB: 1,
		NeighborIDs: true, Seed: 5, MaxRounds: 1 << 40,
	}, progA, progB)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met {
		t.Fatal("no rendezvous on K128")
	}
}

// The Theorem-2 algorithm must never touch whiteboards: running it with
// whiteboards disabled (as above) would panic on any write, and this
// test additionally runs it with whiteboards ENABLED and asserts zero
// writes occurred.
func TestNoboardWritesNothing(t *testing.T) {
	g, err := graph.Complete(64)
	if err != nil {
		t.Fatal(err)
	}
	progA, progB := NoboardAgents(PracticalParams(), g.MinDegree(), nil)
	res, err := sim.Run(sim.Config{
		Graph: g, StartA: 0, StartB: 1,
		NeighborIDs: true, Whiteboards: true,
		Seed: 9, MaxRounds: 1 << 40,
	}, progA, progB)
	if err != nil {
		t.Fatal(err)
	}
	if res.Writes != 0 {
		t.Fatalf("no-whiteboard algorithm performed %d writes", res.Writes)
	}
}

func TestNoboardPermutedIDs(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 14))
	g0, err := graph.PlantedMinDegree(200, 80, rng)
	if err != nil {
		t.Fatal(err)
	}
	b := graph.Rebuild(g0)
	b.PermuteIDs(rng) // tight naming preserved, IDs decorrelated
	g := b.MustBuild()
	a, bb := adjacentStarts(t, g)
	progA, progB := NoboardAgents(PracticalParams(), g.MinDegree(), nil)
	res, err := sim.Run(sim.Config{
		Graph: g, StartA: a, StartB: bb,
		NeighborIDs: true, Seed: 21, MaxRounds: 1 << 40,
	}, progA, progB)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met {
		t.Fatal("no rendezvous with permuted IDs")
	}
}

// Exercise the full phase schedule of both noboard agents: detection
// disabled so no incidental meeting can cut the run short. Agent a must
// record residencies inside its slot windows; neither agent may
// overflow its phases on this comfortably-sized instance.
func TestNoboardFullScheduleRuns(t *testing.T) {
	rng := rand.New(rand.NewPCG(55, 56))
	g, err := graph.PlantedMinDegree(128, 48, rng)
	if err != nil {
		t.Fatal(err)
	}
	a, b := adjacentStarts(t, g)
	st := &NoboardStats{}
	progA, progB := NoboardAgents(PracticalParams(), g.MinDegree(), st)
	sched, err := newNoboardSchedule(PracticalParams(), g.NPrime(), g.MinDegree())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Config{
		Graph: g, StartA: a, StartB: b,
		NeighborIDs:    true,
		Seed:           2,
		MaxRounds:      sched.phaseEnd(sched.phases) + 10,
		DisableMeeting: true,
	}, progA, progB)
	if err != nil {
		t.Fatal(err)
	}
	if st.LateConstruct {
		t.Fatal("construct missed the barrier on a small instance")
	}
	if st.PhiA == 0 || st.PhiB == 0 {
		t.Fatalf("empty probe sets: |Φa|=%d |Φb|=%d", st.PhiA, st.PhiB)
	}
	if len(st.Residencies) == 0 {
		t.Fatal("agent a recorded no slot residencies")
	}
	if len(st.Residencies) != st.PhiA {
		t.Fatalf("%d residencies for %d Φa vertices (overflowA=%d)",
			len(st.Residencies), st.PhiA, st.OverflowPhasesA)
	}
	for i, r := range st.Residencies {
		if r.From < st.TPrime || r.To < r.From {
			t.Fatalf("residency %d malformed: %+v (t'=%d)", i, r, st.TPrime)
		}
		// Residency must be meaningfully long: L minus travel slack.
		if r.To-r.From < sched.residency-6 {
			t.Fatalf("residency %d too short: %+v (L=%d)", i, r, sched.residency)
		}
	}
	if st.OverflowPhasesA != 0 || st.OverflowPhasesB != 0 {
		t.Fatalf("unexpected overflows: a=%d b=%d", st.OverflowPhasesA, st.OverflowPhasesB)
	}
	// Both agents halt once all phases are done.
	if !res.A.Halted || !res.B.Halted {
		t.Fatalf("agents did not halt after the schedule: a=%v b=%v", res.A.Halted, res.B.Halted)
	}
}
