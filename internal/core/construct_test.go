package core

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"

	"fnr/internal/graph"
	"fnr/internal/sim"
)

// runConstructOnly builds the graph's dense set from startA and returns
// the stats. Agent b just waits.
func runConstructOnly(t *testing.T, g *graph.Graph, start graph.Vertex, know Knowledge, seed uint64) *WhiteboardStats {
	t.Helper()
	st := &WhiteboardStats{}
	ghost := func(e *sim.Env) {} // halts immediately
	other := graph.Vertex(0)
	if start == other {
		other = 1
	}
	_, err := sim.Run(sim.Config{
		Graph:          g,
		StartA:         start,
		StartB:         other,
		NeighborIDs:    true,
		Seed:           seed,
		MaxRounds:      1 << 40,
		DisableMeeting: true,
	}, ConstructOnly(PracticalParams(), know, st), ghost)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return st
}

func TestConstructDenseOnComplete(t *testing.T) {
	g, err := graph.Complete(64)
	if err != nil {
		t.Fatal(err)
	}
	delta := g.MinDegree()
	st := runConstructOnly(t, g, 0, Knowledge{Delta: delta}, 1)
	if err := VerifyDense(g, 0, st.T, float64(delta)/8, 2); err != nil {
		t.Fatalf("dense verification: %v", err)
	}
	// On a complete graph N+(v0) = V, so T must be all of V.
	if st.TSize != g.N() {
		t.Fatalf("TSize = %d, want %d", st.TSize, g.N())
	}
}

func TestConstructDenseOnPlanted(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	g, err := graph.PlantedMinDegree(256, 64, rng)
	if err != nil {
		t.Fatal(err)
	}
	delta := g.MinDegree()
	for seed := uint64(0); seed < 3; seed++ {
		st := runConstructOnly(t, g, 3, Knowledge{Delta: delta}, seed)
		if err := VerifyDense(g, 3, st.T, float64(delta)/8, 2); err != nil {
			t.Errorf("seed %d: dense verification: %v", seed, err)
		}
		// Lemma 6: O(n/δ) iterations. With n/δ = 4, a generous
		// constant-factor cap still catches regressions.
		if st.Iterations > 16*g.N()/delta+16 {
			t.Errorf("seed %d: %d iterations for n/δ = %d", seed, st.Iterations, g.N()/delta)
		}
		if st.StrictRuns > 20 {
			t.Errorf("seed %d: %d strict runs, want O(log n)", seed, st.StrictRuns)
		}
	}
}

func TestConstructWithDoubling(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	g, err := graph.PlantedMinDegree(200, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	st := runConstructOnly(t, g, 0, Knowledge{Doubling: true}, 2)
	// The final estimate must not exceed the true minimum degree by
	// more than the initial halving allows, and the produced set must
	// be dense for the estimate actually used.
	if st.DeltaUsed <= 0 {
		t.Fatalf("DeltaUsed = %v", st.DeltaUsed)
	}
	if err := VerifyDense(g, 0, st.T, st.DeltaUsed/8, 2); err != nil {
		t.Fatalf("dense verification at δ'=%v: %v", st.DeltaUsed, err)
	}
}

func TestDoublingRestarts(t *testing.T) {
	// K42 plus one pendant vertex on the start vertex: the initial
	// estimate δ' = deg(home)/2 = 21 is violated by the pendant
	// (degree 1), forcing restarts until δ' ≤ 1.
	b := graph.NewBuilder(43)
	for u := 0; u < 42; u++ {
		for v := u + 1; v < 42; v++ {
			b.MustAddEdge(graph.Vertex(u), graph.Vertex(v))
		}
	}
	b.MustAddEdge(0, 42)
	g := b.MustBuild()
	st := runConstructOnly(t, g, 0, Knowledge{Doubling: true}, 3)
	if st.Restarts == 0 {
		t.Fatal("expected doubling restarts, got none")
	}
	if st.DeltaUsed > 1 {
		t.Fatalf("DeltaUsed = %v, want ≤ 1 (pendant has degree 1)", st.DeltaUsed)
	}
	if err := VerifyDense(g, 0, st.T, st.DeltaUsed/8, 2); err != nil {
		t.Fatalf("dense verification: %v", err)
	}
}

func TestVerifyDenseRejects(t *testing.T) {
	g, err := graph.Ring(8)
	if err != nil {
		t.Fatal(err)
	}
	// Missing start vertex.
	if err := VerifyDense(g, 0, []int64{1, 2}, 1, 2); err == nil {
		t.Error("accepted T without start vertex")
	}
	// Too far: vertex 4 is at distance 4 from 0 on C8.
	if err := VerifyDense(g, 0, []int64{0, 4}, 0.5, 2); err == nil {
		t.Error("accepted T with far vertex")
	}
	// Not heavy enough: alpha too large for the ring.
	if err := VerifyDense(g, 0, []int64{0, 1, 7}, 3.5, 2); err == nil {
		t.Error("accepted T violating heaviness")
	}
	// Unknown ID.
	if err := VerifyDense(g, 0, []int64{0, 999}, 1, 2); err == nil {
		t.Error("accepted T with unknown ID")
	}
	// A valid dense set for the ring: N+(N+(0)) with alpha ≤ 3.
	if err := VerifyDense(g, 0, []int64{0, 1, 7, 2, 6}, 3, 2); err != nil {
		t.Errorf("rejected valid dense set: %v", err)
	}
}

func TestHeaviness(t *testing.T) {
	g, err := graph.Complete(5)
	if err != nil {
		t.Fatal(err)
	}
	tset := map[int64]struct{}{0: {}, 1: {}, 2: {}}
	if h := Heaviness(g, 4, tset); h != 3 {
		t.Fatalf("Heaviness = %d, want 3", h)
	}
	if h := Heaviness(g, 1, tset); h != 3 {
		t.Fatalf("Heaviness = %d, want 3", h)
	}
}

// The paper claims agents need O(n log n) bits ⇒ O(n) words of memory.
// The walker's state must stay linear in n (plus one neighborhood
// buffer of size ≤ ∆), not Θ(δ·∆) as an unbounded visit cache would be.
func TestConstructMemoryLinear(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 18))
	g, err := graph.PlantedMinDegree(512, 128, rng)
	if err != nil {
		t.Fatal(err)
	}
	st := runConstructOnly(t, g, 0, Knowledge{Delta: g.MinDegree()}, 4)
	if st.MemoryWords == 0 {
		t.Fatal("MemoryWords not recorded")
	}
	budget := 4*g.N() + 2*g.MaxDegree()
	if st.MemoryWords > budget {
		t.Fatalf("agent memory %d words exceeds linear budget %d (n=%d, ∆=%d)",
			st.MemoryWords, budget, g.N(), g.MaxDegree())
	}
}

func TestPaperParamsFaithful(t *testing.T) {
	p := PaperParams()
	// The printed constants of Algorithms 2–4.
	if p.SampleMult != 96 || p.HeavyThresholdMult != 150 || p.ProbeMult != 4 ||
		p.AlphaDen != 8 || p.LightDen != 2 || p.C2 != 18 || p.PhiMult != 4 || p.WaitMult != 4 {
		t.Fatalf("PaperParams drifted: %+v", p)
	}
	if p.StrictOnly {
		t.Fatal("PaperParams must not enable the ablation flag")
	}
	// The threshold must sit strictly between the α-light and 4α-heavy
	// expectations for BOTH presets — the separation Lemma 2 needs.
	for _, params := range []Params{p, PracticalParams()} {
		if !(params.SampleMult < params.HeavyThresholdMult) {
			t.Fatalf("threshold below the α-light expectation: %+v", params)
		}
		if !(params.HeavyThresholdMult < 4*params.SampleMult) {
			t.Fatalf("threshold above the 4α-heavy expectation: %+v", params)
		}
	}
}

func TestLnOfFloors(t *testing.T) {
	if lnOf(0) != 1 || lnOf(2) != 1 {
		t.Fatal("lnOf must clamp tiny ID spaces to 1")
	}
	if lnOf(1000) <= 1 {
		t.Fatal("lnOf(1000) should exceed the floor")
	}
}

func TestRestartErrorMessage(t *testing.T) {
	err := &restartError{seenDegree: 3}
	if msg := err.Error(); msg == "" || !strings.Contains(msg, "3") {
		t.Fatalf("unhelpful restart error: %q", msg)
	}
}

// Drive walker navigation errors directly: unknown targets must fail
// without moving.
func TestWalkerNavigationErrors(t *testing.T) {
	g, err := graph.Complete(6)
	if err != nil {
		t.Fatal(err)
	}
	ghost := func(e *sim.Env) {}
	ran := false
	prog := func(e *sim.Env) {
		params := PracticalParams()
		w := newWalker(e, &params, 1, false)
		w.learn(w.home, w.s.homeNb)
		if err := w.goTo(999); err == nil {
			panic("goTo(999) succeeded for unknown vertex")
		}
		if e.HereID() != w.home {
			panic("failed goTo moved the agent")
		}
		// Known vertex at distance 1 works and comes back.
		if cnt, err := w.exactCount(w.s.homeNb[0]); err != nil || cnt == 0 {
			panic("exactCount on neighbor failed")
		}
		if e.HereID() != w.home {
			panic("exactCount did not return home")
		}
		if _, ok := w.cachedNeighborhood(w.s.homeNb[0]); !ok {
			panic("lastSeen cache empty after exactCount")
		}
		if _, ok := w.cachedNeighborhood(12345); ok {
			panic("cache hit for never-visited vertex")
		}
		ran = true
	}
	if _, err := sim.Run(sim.Config{
		Graph: g, StartA: 0, StartB: 5,
		NeighborIDs: true, MaxRounds: 100, DisableMeeting: true,
	}, prog, ghost); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("program did not complete")
	}
}

// Property: across random graphs and seeds, Construct's output always
// satisfies the (a, δ/8, 2)-dense definition verified against the
// ground truth.
func TestConstructDenseProperty(t *testing.T) {
	ghost := func(e *sim.Env) {}
	check := func(seed uint64, nRaw, startRaw uint8) bool {
		n := 64 + int(nRaw)%128
		d := int(math.Sqrt(float64(n))) + 4 + int(seed%16) // δ ≥ √n
		if d >= n {
			d = n - 1
		}
		rng := rand.New(rand.NewPCG(seed, 7))
		g, err := graph.PlantedMinDegree(n, d, rng)
		if err != nil {
			return false
		}
		start := graph.Vertex(int(startRaw) % n)
		other := graph.Vertex(0)
		if start == other {
			other = 1
		}
		st := &WhiteboardStats{}
		_, err = sim.Run(sim.Config{
			Graph: g, StartA: start, StartB: other,
			NeighborIDs: true, Seed: seed, MaxRounds: 1 << 40, DisableMeeting: true,
		}, ConstructOnly(PracticalParams(), Knowledge{Delta: g.MinDegree()}, st), ghost)
		if err != nil {
			return false
		}
		return VerifyDense(g, start, st.T, float64(g.MinDegree())/8, 2) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
