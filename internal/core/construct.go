package core

import (
	"errors"

	"fnr/internal/sim"
)

// WhiteboardStats collects diagnostics from agent a's run of the
// Theorem-1 algorithm. Fill it in by passing a pointer to the agent
// constructors; it is written only by the agent goroutine and must be
// read only after sim.Run returns.
type WhiteboardStats struct {
	// Iterations is the number of Construct iterations (the paper's i;
	// Lemma 6 bounds it by O(n/δ)).
	Iterations int
	// OptimisticRuns and StrictRuns count the two kinds of Sample
	// invocations (Lemma 7 bounds strict runs by O(log n)).
	OptimisticRuns int
	StrictRuns     int
	// SampleVisits is the number of vertex visits spent inside Sample.
	SampleVisits int64
	// Restarts counts doubling-estimation restarts (§4.1).
	Restarts int
	// DeltaUsed is the final δ' estimate Construct succeeded with.
	DeltaUsed float64
	// ConstructRounds is the round at which Construct completed.
	ConstructRounds int64
	// T is the constructed dense set (vertex IDs); TSize = len(T).
	T     []int64
	TSize int
	// MemoryWords estimates agent a's state size in machine words
	// (set entries + via paths + cached neighborhoods). The paper
	// claims O(n log n) bits, i.e. O(n) words, suffice.
	MemoryWords int
}

// sampleRun implements Algorithm 2, Sample(Γ, α): visit
// ⌈SampleMult·|Γ|·ln n / α⌉ uniform samples of Γ (with replacement),
// counting for every u ∈ N+(home) how many visited vertices contain u
// in their closed neighborhood, and output as heavy the vertices whose
// counter reaches ℓ = ⌈HeavyThresholdMult·ln n⌉.
//
// Per Lemma 2, with the paper's constants each output vertex is α-heavy
// for Γ and each non-output vertex is 4α-light for Γ, w.h.p.
func (w *walker) sampleRun(gamma []int64, alpha float64, st *WhiteboardStats) ([]int64, error) {
	if len(gamma) == 0 || alpha <= 0 {
		return nil, nil
	}
	m := w.sampleSize(len(gamma), alpha)
	w.sampleReset()
	rng := w.e.Rand()
	for i := 0; i < m; i++ {
		v := gamma[rng.IntN(len(gamma))]
		if v == w.home {
			w.sampleObserveHome()
			continue
		}
		if err := w.goTo(v); err != nil {
			return nil, err
		}
		self, nbs := w.observeHere()
		w.sampleObserve(self, nbs)
		if err := w.goHome(); err != nil {
			return nil, err
		}
		if st != nil {
			st.SampleVisits++
		}
	}
	return w.sampleHeavy(), nil
}

// constructDense implements Algorithm 3, Construct: grow S ⊆ N+(home)
// by repeatedly adding a δ/2-light vertex x_i (found by an optimistic
// Sample over the newly-added difference set, then exact probes, then a
// strict Sample over all of NS), until every vertex of N+(home) is
// classified δ/8-heavy for NS = N+(S). The returned walker's ns/nsL is
// the (a, δ/8, 2)-dense set T^a (Lemma 6).
//
// One divergence from the pseudocode, noted in DESIGN.md: vertices
// drawn from R after a strict run are verified exactly by visiting them
// (the visit is needed anyway to learn N+(x_i)); a candidate that turns
// out heavy is recorded as such instead of being added to S. This
// guarantees termination even when a scaled-down Sample misclassifies,
// and never adds rounds beyond the paper's own visit.
//
// On a doubling-estimation violation the walker returns home and a
// *restartError is returned.
func constructDense(e *sim.Env, p *Params, deltaEst float64, doubling bool, st *WhiteboardStats) (*walker, error) {
	w := newWalker(e, p, deltaEst, doubling)
	if err := w.checkDegree(); err != nil {
		return nil, err // home itself violates the estimate
	}
	ws := w.s
	// The H marks and candidate list are walker scratch, reused across
	// trials (see the walkerCore helpers).
	w.resetHeavyMarks()
	gamma := w.learn(w.home, ws.homeNb) // NS ← N+(home); Γ₁ = N+(home)
	rng := e.Rand()

	goHomeAndReturn := func(err error) (*walker, error) {
		var re *restartError
		if errors.As(err, &re) {
			if herr := w.goHome(); herr != nil {
				return nil, herr
			}
		}
		return nil, err
	}

	for {
		if st != nil {
			st.Iterations++
		}
		// Optimistic decision: Sample over the difference set (or, in
		// the StrictOnly ablation, a strict Sample over all of NS — the
		// strawman whose O((n/δ)²) total cost §3.3 motivates the
		// two-step strategy against).
		sampleSet := gamma
		if p.StrictOnly {
			sampleSet = ws.nsL
			if st != nil {
				st.StrictRuns++
			}
		} else if st != nil {
			st.OptimisticRuns++
		}
		heavy, err := w.sampleRun(sampleSet, w.alpha(), st)
		if err != nil {
			return goHomeAndReturn(err)
		}
		w.markHeavy(heavy)
		r := w.candidates()
		if len(r) == 0 {
			break
		}
		// Step 2: probe up to ⌈ProbeMult·ln n⌉ random candidates,
		// checking lightness exactly by visiting.
		probes := w.probeBudget()
		var chosen int64
		found := false
		for j := 0; j < probes; j++ {
			u := r[rng.IntN(len(r))]
			cnt, err := w.exactCount(u)
			if err != nil {
				return goHomeAndReturn(err)
			}
			if float64(cnt) < w.lightBound() {
				chosen, found = u, true
				break
			}
		}
		if !found {
			// Strict decision: Sample over all of NS, then draw
			// exactly-verified candidates until a light one appears or
			// R empties.
			if st != nil {
				st.StrictRuns++
			}
			heavy, err := w.sampleRun(ws.nsL, w.alpha(), st)
			if err != nil {
				return goHomeAndReturn(err)
			}
			w.markHeavy(heavy)
			for {
				r = w.candidates()
				if len(r) == 0 {
					break
				}
				u := r[rng.IntN(len(r))]
				cnt, err := w.exactCount(u)
				if err != nil {
					return goHomeAndReturn(err)
				}
				if float64(cnt) < w.lightBound() {
					chosen, found = u, true
					break
				}
				w.markHeavyOne(u) // exactly verified heavy
			}
			if !found {
				break // R = ∅: N+(home) fully classified heavy
			}
		}
		// S ← S ∪ {x_i}; NS ← NS ∪ N+(x_i). The exact check just
		// visited x_i, so its neighborhood is cached. (S itself needs
		// no explicit set: NS and the via table carry everything the
		// algorithm reads.)
		nbs, cached := w.cachedNeighborhood(chosen)
		if !cached {
			if err := w.goTo(chosen); err != nil {
				return goHomeAndReturn(err)
			}
			self, seen := w.observeHere()
			gamma = w.learn(self, seen)
			if err := w.goHome(); err != nil {
				return goHomeAndReturn(err)
			}
		} else {
			gamma = w.learn(chosen, nbs)
		}
	}
	if st != nil {
		st.DeltaUsed = w.deltaEst
		st.ConstructRounds = e.Round()
		st.T = append([]int64(nil), ws.nsL...)
		st.TSize = len(ws.nsL)
		st.MemoryWords = w.memoryWords()
	}
	return w, nil
}
