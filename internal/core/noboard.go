package core

import (
	"fmt"
	"math"
	"math/rand/v2"
	"slices"

	"fnr/internal/sim"
)

// noboardSchedule holds the quantities both agents of Algorithm 4
// derive independently from (n', δ); they must agree exactly for the
// phase barriers to synchronize.
type noboardSchedule struct {
	tPrime    int64 // start barrier t' = ⌈C1·n'·ln²n/δ⌉
	beta      int64 // ID-interval width β = ⌈√δ⌉
	residency int64 // per-vertex residency L = ⌈WaitMult·C2·ln n⌉
	phaseLen  int64 // phase length L²
	phases    int64 // ⌈n'/β⌉
	prob      float64
}

// newNoboardSchedule derives the schedule from (n', δ). Both agents
// call it with identical inputs, so the phase barriers synchronize by
// construction; the residency and β floors below are clamps on valid
// inputs, not repairs of invalid ones — δ < 1 or n' < 1 violate the
// paper's preconditions (the t' term divides by δ) and are rejected
// explicitly instead of silently floored into a nonsense schedule
// (float→int64 conversion of the +Inf barrier is not even
// well-defined).
func newNoboardSchedule(p Params, nPrime int64, delta int) (noboardSchedule, error) {
	if delta < 1 {
		return noboardSchedule{}, fmt.Errorf("core: Algorithm 4 requires a known minimum degree δ ≥ 1, got %d", delta)
	}
	if nPrime < 1 {
		return noboardSchedule{}, fmt.Errorf("core: Algorithm 4 requires an ID-space bound n' ≥ 1, got %d", nPrime)
	}
	lnN := lnOf(nPrime)
	d := float64(delta)
	l := int64(math.Ceil(p.WaitMult * p.C2 * lnN))
	if l < 8 {
		l = 8 // floor keeping slot travel (≤4 rounds) strictly inside
	}
	beta := int64(math.Ceil(math.Sqrt(d)))
	if beta < 1 {
		beta = 1
	}
	return noboardSchedule{
		tPrime:    int64(math.Ceil(p.C1 * float64(nPrime) * lnN * lnN / d)),
		beta:      beta,
		residency: l,
		phaseLen:  l * l,
		phases:    (nPrime + beta - 1) / beta,
		prob:      math.Min(1, p.PhiMult*lnN/math.Sqrt(d)),
	}, nil
}

// phaseEnd returns the global round at which phase i (1-based) ends.
func (s noboardSchedule) phaseEnd(i int64) int64 {
	return s.tPrime + i*s.phaseLen
}

// NoboardStats collects diagnostics from a run of the Theorem-2
// algorithm. Written only by the agents' goroutines; read it after
// sim.Run returns.
type NoboardStats struct {
	// Construct holds agent a's Construct diagnostics.
	Construct WhiteboardStats
	// TPrime, PhaseLen, Phases echo the derived schedule.
	TPrime   int64
	PhaseLen int64
	Phases   int64
	// PhiA and PhiB are the sampled probe-set sizes.
	PhiA, PhiB int
	// OverflowPhasesA counts phases agent a could not finish within
	// the phase budget (sparseness violation; rare).
	OverflowPhasesA int
	// OverflowPhasesB counts phases agent b's sweeps overran.
	OverflowPhasesB int
	// LateConstruct reports that Construct finished after t'
	// (desynchronizes the schedule; indicates C1 too small).
	LateConstruct bool
	// Residencies records agent a's per-slot stays (vertex and the
	// inclusive round window during which a sat there). Mechanism
	// experiments match these against observed co-locations to find
	// the first *designed* meeting (b stepping onto a resident a).
	Residencies []Residency
}

// Residency is one slot stay of agent a in Algorithm 4.
type Residency struct {
	VertexID int64
	From, To int64 // inclusive round window at VertexID
}

// NoboardAgents returns the (a, b) program pair of Theorem 2
// (Algorithm 4, Rendezvous-without-Whiteboards). The pair requires
// neighbor-ID access and tight naming (n' = O(n)) but no whiteboards;
// both agents must know δ (the doubling technique of §4.1 applies only
// to the whiteboard algorithm's agent a). st may be nil.
func NoboardAgents(p Params, delta int, st *NoboardStats) (a, b sim.Program) {
	return NoboardAgentA(p, delta, st), NoboardAgentB(p, delta, st)
}

// NoboardAgentA returns agent a's program: run Construct before the t'
// barrier, sample Φ^a ⊆ T^a with probability PhiMult·ln n/√δ, then in
// phase i visit each vertex of Φ^a with ID in the i-th β-interval in
// ascending order, residing L rounds per vertex.
func NoboardAgentA(p Params, delta int, st *NoboardStats) sim.Program {
	return func(e *sim.Env) {
		var cst *WhiteboardStats
		if st != nil {
			cst = &st.Construct
		}
		w := runConstruct(e, &p, Knowledge{Delta: delta}, cst)
		sched, err := newNoboardSchedule(p, e.NPrime(), delta)
		if err != nil {
			panic(err)
		}
		if st != nil {
			st.TPrime = sched.tPrime
			st.PhaseLen = sched.phaseLen
			st.Phases = sched.phases
			if e.Round() > sched.tPrime {
				st.LateConstruct = true
			}
		}
		e.WaitUntilRound(sched.tPrime)
		phi := sampleSubset(e, w.s.nsL, sched.prob)
		if st != nil {
			st.PhiA = len(phi)
		}
		idx := 0
		for i := int64(1); i <= sched.phases; i++ {
			phaseStart := sched.phaseEnd(i - 1)
			end := sched.phaseEnd(i)
			hi := i * sched.beta
			slot := int64(0)
			for idx < len(phi) && phi[idx] < hi {
				slot++
				slotEnd := phaseStart + slot*sched.residency
				if slotEnd > end || e.Round() > slotEnd-sched.residency+4 {
					// Out of slots (or running late): skip the rest of
					// this interval to preserve synchronization.
					if st != nil {
						st.OverflowPhasesA++
					}
					for idx < len(phi) && phi[idx] < hi {
						idx++
					}
					break
				}
				u := phi[idx]
				idx++
				if err := w.goTo(u); err != nil {
					panic(err)
				}
				from := e.Round()
				e.WaitUntilRound(slotEnd - 2)
				if st != nil {
					st.Residencies = append(st.Residencies, Residency{
						VertexID: u, From: from, To: e.Round(),
					})
				}
				if err := w.goHome(); err != nil {
					panic(err)
				}
			}
			e.WaitUntilRound(end)
		}
		// All phases done; halt (w.h.p. rendezvous happened earlier).
	}
}

// NoboardAgentB returns agent b's program: sample Φ^b ⊆ N+(start), and
// in phase i sweep the vertices of Φ^b in the i-th β-interval L times,
// pausing two rounds at the start vertex between sweeps.
func NoboardAgentB(p Params, delta int, st *NoboardStats) sim.Program {
	return func(e *sim.Env) {
		// Schedule derivation first: a δ < 1 input fails here, at round
		// 0 and before any RNG draw, on both the Program and the native
		// stepper path.
		sched, err := newNoboardSchedule(p, e.NPrime(), delta)
		if err != nil {
			panic(err)
		}
		home := e.HereID()
		np := make([]int64, 0, e.Degree()+1)
		np = append(np, home)
		np = append(np, e.NeighborIDs()...)
		phi := sampleSubset(e, np, sched.prob)
		if st != nil {
			st.PhiB = len(phi)
		}
		e.WaitUntilRound(sched.tPrime)
		idx := 0
		for i := int64(1); i <= sched.phases; i++ {
			end := sched.phaseEnd(i)
			hi := i * sched.beta
			start := idx
			for idx < len(phi) && phi[idx] < hi {
				idx++
			}
			group := phi[start:idx]
			if len(group) == 0 {
				e.WaitUntilRound(end)
				continue
			}
			sweepCost := 2*int64(len(group)) + 2
			for j := int64(0); j < sched.residency; j++ {
				if e.Round()+sweepCost > end {
					if st != nil {
						st.OverflowPhasesB++
					}
					break
				}
				for _, u := range group {
					if u == home {
						continue
					}
					if err := e.MoveToID(u); err != nil {
						panic(err)
					}
					if err := e.MoveToID(home); err != nil {
						panic(err)
					}
				}
				e.StayFor(2)
			}
			e.WaitUntilRound(end)
		}
	}
}

// sampleSubsetInto returns the sorted subset of ids where each element
// is kept independently with probability prob, appending into out
// (reset to length 0) so batch callers can reuse a scratch buffer. The
// draw sequence is one rng.Float64 per element, in order — shared by
// the Program and native stepper forms.
func sampleSubsetInto(rng *rand.Rand, out, ids []int64, prob float64) []int64 {
	out = out[:0]
	for _, v := range ids {
		if rng.Float64() < prob {
			out = append(out, v)
		}
	}
	slices.Sort(out)
	return out
}

// sampleSubset is the Program-path form of sampleSubsetInto.
func sampleSubset(e *sim.Env, ids []int64, prob float64) []int64 {
	return sampleSubsetInto(e.Rand(), nil, ids, prob)
}
