// Package fnr is a from-scratch Go reproduction of the paper "Fast
// Neighborhood Rendezvous" (Ryota Eguchi, Naoki Kitamura, Taisuke
// Izumi; ICDCS 2020, arXiv:2105.03638): two mobile agents placed on
// adjacent vertices of a graph must meet at a common vertex in as few
// synchronous rounds as possible.
//
// The package bundles:
//
//   - the paper's two randomized algorithms — the whiteboard algorithm
//     of Theorem 1 (Construct + Main-Rendezvous, O(n/δ·log²n +
//     √(n∆/δ)·log n) rounds w.h.p. for δ ≥ √n) and the whiteboard-free
//     algorithm of Theorem 2 (O(n/√δ·log²n) rounds w.h.p. under tight
//     naming), including the §4.1 doubling minimum-degree estimation;
//   - the baselines they are measured against (the trivial O(∆)
//     neighbor sweep, DFS exploration, random walks, and a birthday
//     strategy for complete graphs standing in for Anderson–Weber);
//   - the synchronous two-agent simulator implementing the paper's
//     model (per-round moves, whiteboards, KT1/KT0 neighbor-ID
//     visibility, rendezvous = co-location at the start of a round);
//   - graph generators, including the hard instances behind the
//     paper's four Ω(·) lower bounds (Theorems 3–6); and
//   - the experiment suite of DESIGN.md, reproducing every
//     quantitative claim (see EXPERIMENTS.md for results).
//
// # Quick start
//
//	g, _ := fnr.PlantedMinDegree(1024, 181, rand.New(rand.NewPCG(1, 2)))
//	res, err := fnr.Rendezvous(g, 0, g.Adj(0)[0], fnr.AlgWhiteboard, fnr.Options{Seed: 7})
//	if err != nil { ... }
//	fmt.Println(res.Met, res.MeetRound)
//
// Custom agents implement Program against Env and run under RunPrograms.
package fnr

import (
	"context"
	"errors"
	"fmt"

	"fnr/internal/algo"
	"fnr/internal/core"
	"fnr/internal/engine"
	"fnr/internal/graph"
	"fnr/internal/harness"
	"fnr/internal/job"
	"fnr/internal/lower"
	"fnr/internal/sim"

	// Strategy registrations: each package's init adds its specs to
	// the algo registry (the blank-import idiom). Everything below —
	// Algorithm, ParseAlgorithm, Rendezvous, RunBatch — is served
	// from that registry.
	_ "fnr/internal/algo/paper"
	_ "fnr/internal/baseline"
)

// Core re-exported types. Aliases keep the internal packages private
// while letting users hold and pass the values around.
type (
	// Graph is an immutable undirected simple graph with unique vertex
	// IDs and explicit port numbering.
	Graph = graph.Graph
	// Vertex is a dense internal vertex index.
	Vertex = graph.Vertex
	// Builder assembles custom graphs.
	Builder = graph.Builder
	// Params carries every constant of the paper's pseudocode.
	Params = core.Params
	// Result reports a simulation outcome.
	Result = sim.Result
	// RoundEvent is delivered to observers once per round.
	RoundEvent = sim.RoundEvent
	// SimConfig configures a raw two-program simulation.
	SimConfig = sim.Config
	// Env is an agent's handle onto the simulation.
	Env = sim.Env
	// Program is a mobile-agent algorithm in direct style.
	Program = sim.Program
	// Stepper is a mobile-agent algorithm in state-machine style —
	// the goroutine-free fast path for batch trials.
	Stepper = sim.Stepper
	// StepperFinisher is the optional stepper-lifecycle hook: a
	// Stepper owning execution resources implements Finish, and the
	// runtime guarantees it runs on every exit path of a run.
	StepperFinisher = sim.Finisher
	// StepContext carries the run-constant inputs to a Stepper's Init.
	StepContext = sim.StepContext
	// AgentName identifies an agent by team index (AgentA and AgentB
	// are agents 0 and 1 of the default two-agent setting).
	AgentName = sim.AgentName
	// Scenario generalizes a simulation beyond the paper's two-agent
	// setting: k ≥ 2 agents with per-agent start vertices and wake
	// delays, gathered (or pairwise-met) under a chosen predicate.
	// Set it on SimConfig.Scenario or Batch.Scenario; nil means the
	// legacy two-agent run.
	Scenario = sim.Scenario
	// AgentStats is one agent's per-run accounting (moves, stays);
	// Result.Agents carries one per agent on k > 2 runs.
	AgentStats = sim.AgentStats
	// AgentScratch is a per-agent reusable scratch slot on the batch
	// engine's trial contexts; long-lived strategies can park state
	// there across trials (see StepContext.Scratch).
	AgentScratch = sim.AgentScratch
	// View is the per-round observation handed to a Stepper.
	View = sim.View
	// Action is one Stepper decision for one acting round.
	Action = sim.Action
	// Instance is a packaged lower-bound scenario.
	Instance = lower.Instance
	// Experiment is one entry of the reproduction suite.
	Experiment = harness.Experiment
	// ExperimentConfig tunes the reproduction suite.
	ExperimentConfig = harness.Config
	// Table is an experiment's rendered result.
	Table = harness.Table
	// WhiteboardStats exposes agent a's diagnostics for AlgWhiteboard.
	WhiteboardStats = core.WhiteboardStats
	// NoboardStats exposes diagnostics for AlgNoWhiteboard.
	NoboardStats = core.NoboardStats
)

// NoMark is the empty-whiteboard sentinel.
const NoMark = sim.NoMark

// V3MaxChunkLen is the largest frame payload the v3 graph reader
// accepts — the bound on a streaming decode's transient buffer.
const V3MaxChunkLen = graph.V3MaxChunkLen

// The two agents of a legacy run (team indices 0 and 1).
const (
	AgentA = sim.AgentA
	AgentB = sim.AgentB
)

// MaxScenarioAgents is the largest team size a Scenario can name.
const MaxScenarioAgents = sim.MaxAgents

// Graph generators, re-exported from the graph substrate.
var (
	NewBuilder    = graph.NewBuilder
	Rebuild       = graph.Rebuild
	FromAdjacency = graph.FromAdjacency
	// ReadGraph parses any serialization format (v1 text, v2 binary,
	// v3 chunked binary), auto-detected. Graph.WriteTo writes text,
	// Graph.WriteBinary writes v2; Graph.WriteBinaryV3 writes the
	// streaming chunked format, the only one whose arc count may
	// exceed 2³¹ and whose decode keeps transient memory bounded by
	// the chunk size.
	ReadGraph        = graph.Read
	Complete         = graph.Complete
	Ring             = graph.Ring
	Path             = graph.Path
	Star             = graph.Star
	Grid             = graph.Grid
	Torus            = graph.Torus
	Hypercube        = graph.Hypercube
	GNP              = graph.GNP
	GNPExact         = graph.GNPExact
	PlantedMinDegree = graph.PlantedMinDegree
	// PlantedMinDegreeProgress is PlantedMinDegree with a progress
	// callback (done vs expected edges) for long generations.
	PlantedMinDegreeProgress = graph.PlantedMinDegreeProgress
	RandomRegular            = graph.RandomRegular
	BFSDistances             = graph.BFSDistances
	Dist                     = graph.Dist
	IsConnected              = graph.IsConnected
	PairsAtDistance          = graph.PairsAtDistance
)

// Parameter presets.
var (
	// PaperParams returns the constants exactly as printed in the paper.
	PaperParams = core.PaperParams
	// PracticalParams returns constants scaled for laptop-size n (the
	// default; see DESIGN.md on constant scaling).
	PracticalParams = core.PracticalParams
)

// VerifyDense checks the paper's (z, α, β)-dense condition of a vertex
// set against the ground-truth graph (test/diagnostics helper).
var VerifyDense = core.VerifyDense

// Stepper action constructors and adapters, re-exported for custom
// strategies (see RunSteppers and RegisterAlgorithm).
var (
	// ActStay spends one round at the current vertex.
	ActStay = sim.Stay
	// ActStayFor spends k rounds at the current vertex (k < 1 is
	// clamped to 1); the simulator fast-forwards overlapping waits.
	ActStayFor = sim.StayFor
	// ActMove crosses the edge behind a local port.
	ActMove = sim.Move
	// ActHalt stops the agent at its current vertex permanently.
	ActHalt = sim.Halt
	// ActAbort fails the whole run with an error (the stepper
	// counterpart of a Program panic).
	ActAbort = sim.Abort
	// ProgramStepper adapts a direct-style Program into a Stepper via
	// a lightweight coroutine, keeping it on the fast path without a
	// state-machine rewrite.
	ProgramStepper = sim.NewProgramStepper
	// AlgorithmSteppersFromPrograms lifts an AlgorithmSpec.Build
	// function into a BuildSteppers function using ProgramStepper.
	AlgorithmSteppersFromPrograms = algo.SteppersFromPrograms
	// FinishStepper releases a stepper's execution resources if it
	// implements StepperFinisher (safe on nil) — call it on steppers
	// that were built but never handed to a run.
	FinishStepper = sim.Finish
)

// Experiments returns the full reproduction suite (E1–E10, A1, A2).
func Experiments() []Experiment { return harness.All() }

// ExperimentByID looks up one suite entry.
func ExperimentByID(id string) (Experiment, bool) { return harness.ByID(id) }

// Algorithm selects a rendezvous strategy for Rendezvous. Its value
// is an index into the registry listing (see Algorithms); the named
// constants below are stable because the built-in strategies register
// with matching algo.Spec.Order ranks.
type Algorithm int

// The built-in strategies.
const (
	// AlgWhiteboard is the paper's Theorem-1 algorithm (Construct +
	// Main-Rendezvous). Needs whiteboards and neighbor IDs.
	AlgWhiteboard Algorithm = iota
	// AlgNoWhiteboard is the paper's Theorem-2 algorithm. Needs
	// neighbor IDs and tight naming; Options.Delta must be set.
	AlgNoWhiteboard
	// AlgSweep is the trivial O(∆) baseline: a waits, b sweeps its
	// neighborhood.
	AlgSweep
	// AlgDFS is rendezvous by full graph exploration: a waits, b
	// walks a DFS traversal.
	AlgDFS
	// AlgStayWalk is the wait-and-random-walk baseline (KT0-capable).
	AlgStayWalk
	// AlgWalkPair runs two independent random walkers (KT0-capable).
	AlgWalkPair
	// AlgBirthday is the complete-graph whiteboard birthday strategy
	// standing in for Anderson–Weber [6].
	AlgBirthday
)

// specOf resolves an Algorithm value against the registry.
func specOf(a Algorithm) (algo.Spec, error) {
	specs := algo.Specs()
	if int(a) < 0 || int(a) >= len(specs) {
		// Format the raw value: rendering `a` itself would re-enter
		// String → specOf.
		return algo.Spec{}, fmt.Errorf("fnr: unknown algorithm Algorithm(%d)", int(a))
	}
	return specs[int(a)], nil
}

// String returns the CLI-friendly registered name.
func (a Algorithm) String() string {
	if spec, err := specOf(a); err == nil {
		return spec.Name
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// ParseAlgorithm maps a registered name to an Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	for i, spec := range algo.Specs() {
		if spec.Name == s {
			return Algorithm(i), nil
		}
	}
	return 0, fmt.Errorf("fnr: unknown algorithm %q (registered: %v)", s, algo.Names())
}

// AlgorithmInfo describes one registered strategy for discovery (CLI
// -algo listings, documentation).
type AlgorithmInfo struct {
	// Algorithm is the value to pass to Rendezvous.
	Algorithm Algorithm
	// Name is the registered CLI name.
	Name string
	// Summary is a one-line description.
	Summary string
	// NeedsNeighborIDs marks KT1-only strategies.
	NeedsNeighborIDs bool
	// NeedsWhiteboards marks strategies that write vertex whiteboards.
	NeedsWhiteboards bool
	// NeedsDelta marks strategies that require Options.Delta.
	NeedsDelta bool
}

// Algorithms enumerates every registered strategy in Algorithm order.
// The list is dynamic: strategies registered through
// RegisterAlgorithm appear alongside the built-ins.
func Algorithms() []AlgorithmInfo {
	specs := algo.Specs()
	out := make([]AlgorithmInfo, len(specs))
	for i, s := range specs {
		out[i] = AlgorithmInfo{
			Algorithm:        Algorithm(i),
			Name:             s.Name,
			Summary:          s.Summary,
			NeedsNeighborIDs: s.Caps.NeighborIDs,
			NeedsWhiteboards: s.Caps.Whiteboards,
			NeedsDelta:       s.Caps.NeedsDelta,
		}
	}
	return out
}

// Registry extension surface, re-exported so user packages can plug
// in strategies without reaching into internal paths.
type (
	// AlgorithmSpec is a registrable strategy description.
	AlgorithmSpec = algo.Spec
	// AlgorithmCaps declares a strategy's simulation capabilities.
	AlgorithmCaps = algo.Caps
	// AlgorithmBuildOpts carries per-run inputs to a Build function.
	AlgorithmBuildOpts = algo.BuildOpts
)

// RegisterAlgorithm adds a strategy to the registry (typically from
// an init function). Registered strategies are resolvable by
// ParseAlgorithm, runnable by Rendezvous and RunBatch, and listed by
// Algorithms. Pick a unique Order ≥ 100: orders rank the listing
// (and thus Algorithm values), and a duplicate — including the zero
// value, which collides with AlgWhiteboard's rank — panics at
// registration.
//
// A spec can describe its agents two ways, and the choice is a
// throughput tradeoff:
//
//   - Build (required) constructs direct-style Programs: ordinary Go
//     functions, easiest to write and read, each hosted on its own
//     goroutine with two channel handoffs per acting round when run
//     via Rendezvous/RunPrograms.
//   - BuildSteppers (optional) constructs state-machine Steppers that
//     the simulator steps inline — no goroutines, no channels, and
//     with per-trial scratch reuse inside RunBatch. Batches select
//     this fast path automatically when it is present; on the
//     reference benchmark it is several times faster per trial.
//
// A spec that provides both must keep them behaviorally identical
// (same actions, same RNG draw order). The cheap middle ground is
// AlgorithmSteppersFromPrograms, which hosts the Build programs on
// coroutines: direct style, most of the fast-path win, no rewrite.
var RegisterAlgorithm = algo.Register

// Options tunes a Rendezvous run. The zero value is usable for every
// algorithm except AlgNoWhiteboard (which needs Delta).
type Options struct {
	// Seed drives all agent randomness. Seed 0 is normalized to 1 by
	// the simulator itself, so every entry point (Rendezvous,
	// RunBatch, RunPrograms, RunSteppers) agrees on the default run.
	Seed uint64
	// MaxRounds bounds the run (defaults to 4n²+1000).
	MaxRounds int64
	// Params overrides the algorithm constants (defaults to
	// PracticalParams).
	Params Params
	// Delta is the minimum degree known to the agents. Zero means
	// "unknown": AlgWhiteboard then uses the §4.1 doubling estimation;
	// AlgNoWhiteboard reports an error (Theorem 2 assumes known δ).
	Delta int
	// Observer, if set, receives one event per simulated round.
	Observer func(RoundEvent)
	// WhiteboardStats, if set, collects agent a's diagnostics
	// (AlgWhiteboard only).
	WhiteboardStats *WhiteboardStats
	// NoboardStats, if set, collects diagnostics (AlgNoWhiteboard
	// only).
	NoboardStats *NoboardStats
}

// buildOpts lowers Options to the registry builders' input.
func buildOpts(opt Options) algo.BuildOpts {
	params := opt.Params
	if params == (Params{}) {
		params = core.PracticalParams()
	}
	return algo.BuildOpts{
		Params:          params,
		Delta:           opt.Delta,
		WhiteboardStats: opt.WhiteboardStats,
		NoboardStats:    opt.NoboardStats,
	}
}

// BuildPrograms constructs one run's direct-style Program pair for a
// registered algorithm — the building block for driving a registered
// strategy through RunPrograms with a custom SimConfig. Programs are
// stateful: build a fresh pair per run.
func BuildPrograms(a Algorithm, opt Options) (Program, Program, error) {
	spec, err := specOf(a)
	if err != nil {
		return nil, nil, err
	}
	progA, progB, err := spec.Programs(buildOpts(opt))
	if err != nil {
		return nil, nil, fmt.Errorf("fnr: %w", err)
	}
	return progA, progB, nil
}

// BuildSteppers constructs one run's Stepper pair for a registered
// algorithm — the state-machine counterpart of BuildPrograms, for
// RunSteppers. It fails for algorithms without a stepper builder
// (those run on the Program path only). Steppers are stateful: build
// a fresh pair per run, and FinishStepper any pair that is never
// handed to a run.
func BuildSteppers(a Algorithm, opt Options) (Stepper, Stepper, error) {
	spec, err := specOf(a)
	if err != nil {
		return nil, nil, err
	}
	stA, stB, err := spec.Steppers(buildOpts(opt))
	if err != nil {
		return nil, nil, fmt.Errorf("fnr: %w", err)
	}
	return stA, stB, nil
}

// Rendezvous runs the selected strategy for two agents starting on
// startA and startB (which the paper's algorithms require to be
// adjacent) and reports the outcome. The strategy is resolved through
// the registry: its declared capabilities configure the simulation
// (neighbor-ID visibility, whiteboards) and its Build constructs the
// program pair.
func Rendezvous(g *Graph, startA, startB Vertex, a Algorithm, opt Options) (*Result, error) {
	if g == nil {
		return nil, errors.New("fnr: nil graph")
	}
	spec, err := specOf(a)
	if err != nil {
		return nil, err
	}
	progA, progB, err := spec.Programs(buildOpts(opt))
	if err != nil {
		return nil, fmt.Errorf("fnr: %w", err)
	}
	return sim.Run(sim.Config{
		Graph:       g,
		StartA:      startA,
		StartB:      startB,
		NeighborIDs: spec.Caps.NeighborIDs,
		Whiteboards: spec.Caps.Whiteboards,
		MaxRounds:   opt.MaxRounds,
		Seed:        opt.Seed,
		Observer:    opt.Observer,
	}, progA, progB)
}

// Batch-execution surface, re-exported from the engine.
type (
	// Batch describes N independent trials of one registered strategy
	// on one instance; see RunBatch.
	Batch = engine.Batch
	// BatchOutcome is one trial of a batch, reduced for aggregation.
	BatchOutcome = engine.Outcome
	// Aggregate is a batch's deterministic summary (success rate,
	// round and move distributions).
	Aggregate = engine.Aggregate
	// BatchReducer is the bounded-memory outcome accumulator behind
	// RunBatchStreaming — and the composition point for sharded
	// sweeps (see Batch.ShardCount and RunBatchReduced).
	BatchReducer = engine.Reducer
	// TrialSpan is a half-open global trial-index range [Lo, Hi): a
	// sharded batch's coverage metadata on reducers and aggregates.
	TrialSpan = engine.TrialSpan
	// ScenarioInfo is the aggregate's echo of the scenario a batch ran
	// under (nil on legacy two-agent batches).
	ScenarioInfo = engine.ScenarioInfo
)

// MergeBatchReducers combines per-shard (or per-worker) reducers;
// the merge is order- and partition-insensitive, and shard spans
// coalesce. Merging every shard of a batch and aggregating yields
// byte-identical JSON to the unsharded streaming run.
var MergeBatchReducers = engine.Merge

// RunBatchReduced is RunBatchStreaming stopping one step earlier: it
// returns the batch's merged reducer instead of the final aggregate,
// so shards run in separate processes can be combined with
// MergeBatchReducers before calling Aggregate.
func RunBatchReduced(b Batch) (*BatchReducer, error) {
	return engine.RunReduced(context.Background(), b)
}

// RunBatchReducedContext is RunBatchReduced under a context:
// cancelling ctx stops the run at the next chunk boundary — no trial
// is ever torn mid-flight, no goroutine outlives the call — and
// returns the reducer state completed so far together with
// ctx.Err(). The partial reducer's Spans say exactly which global
// trials it covers, so it can be checkpointed and resumed.
func RunBatchReducedContext(ctx context.Context, b Batch) (*BatchReducer, error) {
	return engine.RunReduced(ctx, b)
}

// DefaultLaneWidth is the widest lockstep lane Batch.LaneWidth = 0
// selects: how many trials each worker keeps resident at once on the
// stepper fast path. On large graphs the automatic width narrows so
// the resident trials' combined working set stays cache-friendly —
// AutoLaneWidth reports the resolved value.
const DefaultLaneWidth = engine.DefaultLaneWidth

// AutoLaneWidth reports the lockstep lane width a Batch with
// LaneWidth 0 resolves to on a graph with n vertices.
func AutoLaneWidth(n int) int { return engine.AutoLaneWidth(n) }

// RunBatch fans the batch's trials across a worker pool and returns
// the streamed aggregate. Each trial's seed derives from
// (Batch.Seed, trial index), so the result is bit-identical for any
// Workers setting.
func RunBatch(b Batch) (*Aggregate, error) { return engine.Run(context.Background(), b) }

// RunBatchContext is RunBatch under a context; a cancelled run
// returns (nil, ctx.Err()). Callers that want the partial state of a
// cancelled run use RunBatchReducedContext.
func RunBatchContext(ctx context.Context, b Batch) (*Aggregate, error) {
	return engine.Run(ctx, b)
}

// RunBatchOutcomes is RunBatch returning the per-trial outcomes in
// trial order instead of the aggregate.
func RunBatchOutcomes(b Batch) ([]BatchOutcome, error) {
	return engine.RunOutcomes(context.Background(), b)
}

// RunBatchStreaming is RunBatch with bounded-memory aggregation:
// outcomes stream into per-worker reducers as trials finish, so
// engine-owned memory scales with the number of distinct observed
// values, not the trial count — the entry point for 10M-trial
// batches. Results are deterministic at any Workers/LaneWidth
// setting; the means may differ from RunBatch by a few ULPs (exact
// multiset mean vs trial-ordered Welford — see engine.RunStreaming).
func RunBatchStreaming(b Batch) (*Aggregate, error) {
	return engine.RunStreaming(context.Background(), b)
}

// RunBatchStreamingContext is RunBatchStreaming under a context; a
// cancelled run returns (nil, ctx.Err()).
func RunBatchStreamingContext(ctx context.Context, b Batch) (*Aggregate, error) {
	return engine.RunStreaming(ctx, b)
}

// Fault-tolerance surface, re-exported from the engine: crash-safe
// checkpoint journals for long batches, and the deterministic
// fault-injection plans that make the tolerance machinery itself
// differential-testable.
type (
	// BatchCheckpoint configures RunBatchCheckpointed's journal: the
	// file rewritten (atomically) with the batch's merged reducer
	// state, and the trial cadence of those rewrites.
	BatchCheckpoint = engine.Checkpoint
	// FaultPlan injects deterministic per-trial faults (panics,
	// stalls, builder errors) into a batch via Batch.Faults; fault
	// placement depends only on (plan seed, global trial index), so
	// aggregates stay byte-identical at any parallelism.
	FaultPlan = engine.FaultPlan
)

// ParseFaultPlan parses the fault-plan grammar, e.g.
// "panic:p=1e-4,stall:p=1e-4,builderr:p=1e-5".
func ParseFaultPlan(spec string, seed uint64) (*FaultPlan, error) {
	return engine.ParseFaultPlan(spec, seed)
}

// RunBatchCheckpointed executes the batch like RunBatchReducedContext
// while journalling progress to ck.Path every ck.Every trials (and
// once on return), resuming from an earlier journal's reducer if one
// is given: only the trials outside resume's covered spans run, and
// the merged result is byte-identical to an uninterrupted run — the
// engine's crash-recovery loop (kill at any point, reload the
// journal with ReadBatchCheckpoint, rerun).
func RunBatchCheckpointed(ctx context.Context, b Batch, ck BatchCheckpoint, resume *BatchReducer) (*BatchReducer, error) {
	return engine.RunCheckpointed(ctx, b, ck, resume)
}

// WriteBatchCheckpoint atomically writes a batch's reducer state to
// a versioned, CRC-framed checkpoint journal at path.
func WriteBatchCheckpoint(path string, b Batch, r *BatchReducer) error {
	return engine.WriteCheckpointFile(path, b, r)
}

// ReadBatchCheckpoint loads the checkpoint journal at path,
// validating its integrity and that it belongs to this exact batch
// (algorithm, seed, trials, instance, budget and fault plan).
func ReadBatchCheckpoint(path string, b Batch) (*BatchReducer, error) {
	return engine.ReadCheckpointFile(path, b)
}

// RunPrograms executes two custom agent programs under an explicit
// simulation configuration — the low-level entry point for user-written
// strategies.
func RunPrograms(cfg SimConfig, a, b Program) (*Result, error) {
	return sim.Run(cfg, a, b)
}

// RunSteppers executes two state-machine agents under an explicit
// simulation configuration — the goroutine-free counterpart of
// RunPrograms. Mixing styles is fine: wrap a Program with
// ProgramStepper to run it against a native Stepper.
func RunSteppers(cfg SimConfig, a, b Stepper) (*Result, error) {
	return sim.RunSteppers(cfg, a, b)
}

// RunTeam executes a k-agent stepper team under an explicit
// simulation configuration — the entry point for Scenario runs (the
// team length must match the scenario's agent count; a nil
// cfg.Scenario expects the usual two steppers).
func RunTeam(cfg SimConfig, team []Stepper) (*Result, error) {
	return sim.RunTeam(cfg, team)
}

// HardKind selects a lower-bound instance family.
type HardKind int

// The four Ω(·) families of §5.
const (
	// HardTwoStars is Theorem 3 / Fig. 1(a): δ=1, ∆=Θ(n).
	HardTwoStars HardKind = iota
	// HardStarClique is Theorem 3 / Fig. 1(b): δ=Θ(n/∆).
	HardStarClique
	// HardKT0 is Theorem 4 / Fig. 2: run it without neighbor IDs.
	HardKT0
	// HardDistance2 is Theorem 5 / Fig. 3: initial distance two.
	HardDistance2
	// HardDeterministic is Theorem 6 / Lemma 9: the adaptive adversary
	// against a greedy-sweep agent pair.
	HardDeterministic
)

// HardInstance builds a lower-bound instance of the given family sized
// by n (interpretation varies per family; see internal/lower).
func HardInstance(kind HardKind, n int) (*Instance, error) {
	switch kind {
	case HardTwoStars:
		return lower.TwoStarsInstance(max(1, (n-2)/2))
	case HardStarClique:
		arms := max(1, n/8)
		return lower.StarCliqueInstance(arms, 4)
	case HardKT0:
		return lower.KT0Instance(n)
	case HardDistance2:
		return lower.Distance2Instance(max(3, (n+1)/2))
	case HardDeterministic:
		return lower.Theorem6Instance(n, lower.NewGreedySweep, lower.NewGreedySweep)
	}
	return nil, fmt.Errorf("fnr: unknown hard-instance kind %d", kind)
}

// SweepAgentsForInstance returns the deterministic greedy-sweep pair
// used to exercise HardDeterministic instances.
func SweepAgentsForInstance() (Program, Program) {
	return lower.AsProgram(lower.NewGreedySweep()), lower.AsProgram(lower.NewGreedySweep())
}

// ---- Batch-job layer (internal/job) ------------------------------------
//
// A JobSpec is the one serializable description of a batch — algorithm,
// workload (or a reference to a cached graph), trials, seed, shard,
// fault plan, checkpoint policy — shared by the CLIs and the fnrd
// daemon. Constructing a spec and calling RunJob is equivalent to
// materializing the workload by hand and running the engine's reduced
// path, byte-for-byte in the aggregate.

type (
	// JobSpec is the canonical serializable batch description.
	JobSpec = job.Spec
	// JobWorkload names a generated topology plus derivation seed.
	JobWorkload = job.Workload
	// JobMaterialized is a built graph with its derived start pair.
	JobMaterialized = job.Materialized
	// JobExecOptions carries execution-only knobs (never affect
	// results).
	JobExecOptions = job.ExecOptions
	// JobResult pairs the finished (or partial) reducer with the batch
	// it reduced, so Aggregate needs no extra arguments.
	JobResult = job.Result
)

// MaterializeWorkload derives the graph and start pair for a workload —
// the single home of the seeded-PCG derivation previously duplicated
// across the CLIs and harness.
func MaterializeWorkload(w JobWorkload) (JobMaterialized, error) {
	return w.Materialize()
}

// RunJob materializes the spec's workload and executes it, routing to
// the plain reduced path or the checkpointed path according to the
// spec. On cancellation the partial result is returned alongside
// ctx.Err.
func RunJob(ctx context.Context, s JobSpec, opt JobExecOptions) (*JobResult, error) {
	return job.Run(ctx, s, opt)
}

// RunJobBuilt is RunJob for a workload that is already materialized —
// the entry point for callers that manage graph reuse themselves (the
// fnrd daemon's graph cache, benchengine's pre-built mega graph).
func RunJobBuilt(ctx context.Context, s JobSpec, m JobMaterialized, opt JobExecOptions) (*JobResult, error) {
	return job.RunBuilt(ctx, s, m, opt)
}
