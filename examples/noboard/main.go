// Noboard: Theorem 2's rendezvous without whiteboards. A sensor
// network with tightly named nodes (IDs exactly 0..n-1) cannot offer
// shared storage, so the agents synchronize purely through the global
// clock and the ID space: both derive the same phase schedule from
// (n', δ), sample probe sets Φ, and sweep ID intervals in lockstep.
//
// The run executes with whiteboards ENABLED in the simulator and then
// asserts the algorithm performed zero writes — certifying the
// "without whiteboards" claim, not just assuming it.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"fnr"
)

func main() {
	rng := rand.New(rand.NewPCG(7, 11))
	g, err := fnr.PlantedMinDegree(512, 148, rng) // δ ≈ n^0.8
	if err != nil {
		log.Fatal(err)
	}
	startA := fnr.Vertex(rng.IntN(g.N()))
	startB := g.Adj(startA)[0]
	fmt.Printf("network: %v (tight naming: IDs are exactly 0..%d)\n", g, g.N()-1)

	st := &fnr.NoboardStats{}
	res, err := fnr.Rendezvous(g, startA, startB, fnr.AlgNoWhiteboard, fnr.Options{
		Seed:         13,
		Delta:        g.MinDegree(),
		NoboardStats: st,
	})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Met {
		log.Fatalf("no rendezvous within %d rounds", res.Rounds)
	}
	fmt.Printf("rendezvous at round %d on vertex ID %d\n", res.MeetRound, g.ID(res.MeetVertex))
	if st.TPrime > 0 {
		fmt.Printf("schedule: t' = %d, %d phases of %d rounds\n", st.TPrime, st.Phases, st.PhaseLen)
		fmt.Printf("probe sets: |Φa| = %d, |Φb| = %d\n", st.PhiA, st.PhiB)
	} else {
		fmt.Println("the agents met while a was still building T^a, before the phase schedule began —")
		fmt.Println("early co-location is real rendezvous in this model and only helps the bound")
	}

	// Certify the headline claim: zero whiteboard writes. The
	// simulator counted every committed write; the Theorem-2 agents
	// must not have produced any.
	if res.Writes != 0 {
		log.Fatalf("algorithm wrote %d whiteboard marks — not whiteboard-free!", res.Writes)
	}
	fmt.Println("whiteboard writes: 0 — the algorithm used none, as Theorem 2 promises")
}
