// Hardinstance: the paper's four impossibility results made tangible.
// Each §5 lower bound comes with a concrete graph family; this example
// builds one instance per family, runs an appropriate strategy, and
// shows the Ω(·) wall in the measured round counts.
package main

import (
	"fmt"
	"log"

	"fnr"
)

func main() {
	demoTwoStars()
	demoKT0()
	demoDistance2()
	demoDeterministic()
}

func demoTwoStars() {
	// Theorem 3 / Fig. 1(a): two stars with adjacent centers. δ = 1 is
	// far below √n, and every strategy pays Ω(∆) to find the
	// center-center edge among ∆ identical-looking ports.
	inst, err := fnr.HardInstance(fnr.HardTwoStars, 514)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("— Theorem 3 (min degree): %v\n  %s\n", inst.G, inst.Note)
	res, err := fnr.Rendezvous(inst.G, inst.StartA, inst.StartB, fnr.AlgStayWalk, fnr.Options{Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  stay+walk met at round %d — Θ(∆) = Θ(%d), not sublinear\n\n", res.MeetRound, inst.G.MaxDegree())
}

func demoKT0() {
	// Theorem 4 / Fig. 2: two bridged cliques, run WITHOUT neighbor
	// IDs. The two bridge ports are indistinguishable from the
	// n/2-2 clique ports, so nothing beats Ω(n).
	inst, err := fnr.HardInstance(fnr.HardKT0, 512)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("— Theorem 4 (no neighbor IDs): %v\n  %s\n", inst.G, inst.Note)
	res, err := fnr.RunPrograms(fnr.SimConfig{
		Graph: inst.G, StartA: inst.StartA, StartB: inst.StartB,
		NeighborIDs: false, // the KT0 model: ports carry no IDs
		Seed:        4, MaxRounds: int64(inst.G.N()) * int64(inst.G.N()),
	}, walkProgram(), walkProgram())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  two random walkers met at round %d — Θ(n) = Θ(%d)\n\n", res.MeetRound, inst.G.N())
}

func demoDistance2() {
	// Theorem 5 / Fig. 3: two cliques sharing a single vertex; the
	// agents start at distance TWO. The paper's whiteboard algorithm
	// assumes distance one and simply cannot finish here.
	inst, err := fnr.HardInstance(fnr.HardDistance2, 257)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("— Theorem 5 (initial distance 2): %v\n  %s\n", inst.G, inst.Note)
	budget := int64(inst.G.N()) * 64
	res, err := fnr.Rendezvous(inst.G, inst.StartA, inst.StartB, fnr.AlgWhiteboard, fnr.Options{
		Seed: 4, Delta: inst.G.MinDegree(), MaxRounds: budget,
	})
	if err != nil {
		log.Fatal(err)
	}
	if res.Met {
		fmt.Printf("  Theorem-1 algorithm met at round %d (incidental collision — possible but unreliable)\n", res.MeetRound)
	} else {
		fmt.Printf("  Theorem-1 algorithm: NO rendezvous in %d rounds — its distance-1 assumption is load-bearing\n", res.Rounds)
	}
	walk, err := fnr.Rendezvous(inst.G, inst.StartA, inst.StartB, fnr.AlgWalkPair, fnr.Options{Seed: 4, MaxRounds: budget})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  random-walk pair met at round %d — Θ(n) remains the honest price\n\n", walk.MeetRound)
}

func demoDeterministic() {
	// Theorem 6 / Lemma 9: an adaptive adversary grows the graph in
	// response to a deterministic algorithm's moves, then glues two
	// such constructions into one instance on which the pair provably
	// cannot meet for n/32 rounds.
	inst, err := fnr.HardInstance(fnr.HardDeterministic, 512)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("— Theorem 6 (deterministic algorithms): %v\n  %s\n", inst.G, inst.Note)
	a, b := fnr.SweepAgentsForInstance()
	res, err := fnr.RunPrograms(fnr.SimConfig{
		Graph: inst.G, StartA: inst.StartA, StartB: inst.StartB,
		NeighborIDs: true, MaxRounds: int64(8 * inst.G.N()),
	}, a, b)
	if err != nil {
		log.Fatal(err)
	}
	if res.Met && res.MeetRound < inst.LowerBound {
		log.Fatalf("  IMPOSSIBLE: met at %d < %d", res.MeetRound, inst.LowerBound)
	}
	outcome := "never met at all"
	if res.Met {
		outcome = fmt.Sprintf("first met at round %d", res.MeetRound)
	}
	fmt.Printf("  deterministic sweep pair held off ≥ %d rounds as proven (%s within the 8n budget)\n",
		inst.LowerBound, outcome)
}

// walkProgram returns a fresh KT0-compatible uniform random walker.
func walkProgram() fnr.Program {
	return func(e *fnr.Env) {
		for {
			if err := e.MoveToPort(e.Rand().IntN(e.Degree())); err != nil {
				return
			}
		}
	}
}
