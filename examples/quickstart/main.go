// Quickstart: run the paper's whiteboard rendezvous algorithm on a
// dense random graph and print what happened.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"fnr"
)

func main() {
	// A quasi-regular graph on 1024 vertices with minimum degree 181
	// (≈ n^0.75, comfortably above the √n = 32 threshold Theorem 1
	// needs).
	rng := rand.New(rand.NewPCG(42, 0))
	g, err := fnr.PlantedMinDegree(1024, 181, rng)
	if err != nil {
		log.Fatal(err)
	}

	// The two agents start on the two endpoints of an arbitrary edge —
	// the "neighborhood rendezvous" setting.
	startA := fnr.Vertex(rng.IntN(g.N()))
	startB := g.Adj(startA)[0]
	fmt.Printf("graph: %v\n", g)
	fmt.Printf("agent a starts at ID %d, agent b at ID %d (adjacent)\n", g.ID(startA), g.ID(startB))

	// Run the Theorem-1 algorithm. Delta: 0 means agent a estimates
	// the minimum degree itself by §4.1's doubling technique.
	st := &fnr.WhiteboardStats{}
	res, err := fnr.Rendezvous(g, startA, startB, fnr.AlgWhiteboard, fnr.Options{
		Seed:            7,
		WhiteboardStats: st,
	})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Met {
		log.Fatalf("no rendezvous within %d rounds", res.Rounds)
	}
	fmt.Printf("rendezvous at round %d on vertex ID %d\n", res.MeetRound, g.ID(res.MeetVertex))
	fmt.Printf("agent a moved %d times, b moved %d times, %d whiteboard marks\n",
		res.A.Moves, res.B.Moves, res.Writes)
	if st.TSize > 0 {
		fmt.Printf("agent a's dense set T^a had %d vertices (δ' estimate %.0f, %d restarts)\n",
			st.TSize, st.DeltaUsed, st.Restarts)
	} else {
		fmt.Println("the agents met while a was still building T^a — that counts too")
	}

	// Compare with the trivial O(∆) baseline from the same starts.
	sweep, err := fnr.Rendezvous(g, startA, startB, fnr.AlgSweep, fnr.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trivial neighbor sweep from the same starts: round %d\n", sweep.MeetRound)
}
