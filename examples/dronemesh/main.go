// Dronemesh: the paper's motivating setting played out as a dense
// wireless mesh. Two delivery drones parked at adjacent pads of a
// 900-pad mesh need to physically meet to hand over a package. Each
// pad knows the IDs of its radio neighbors (KT1) and offers a small
// mailbox (whiteboard). The example races every bundled strategy from
// the same starting pads and prints a comparison table.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"os"
	"text/tabwriter"

	"fnr"
)

func main() {
	// The mesh: a 30×30 torus densified with random long-range links
	// until every pad has at least 60 radio neighbors.
	const side = 30
	rng := rand.New(rand.NewPCG(2024, 6))
	g, err := fnr.PlantedMinDegree(side*side, 60, rng)
	if err != nil {
		log.Fatal(err)
	}
	startA := fnr.Vertex(rng.IntN(g.N()))
	startB := g.Adj(startA)[rng.IntN(g.Degree(startA))]
	fmt.Printf("mesh: %v\n", g)
	fmt.Printf("drone A at pad %d, drone B at pad %d (radio neighbors)\n\n", g.ID(startA), g.ID(startB))

	type row struct {
		algo  fnr.Algorithm
		label string
		note  string
	}
	rows := []row{
		{fnr.AlgWhiteboard, "whiteboard (Thm 1)", "mailbox marks + dense-set sampling"},
		{fnr.AlgNoWhiteboard, "no-whiteboard (Thm 2)", "ID-interval phase schedule, no mailboxes"},
		{fnr.AlgSweep, "neighbor sweep", "trivial O(∆) baseline"},
		{fnr.AlgDFS, "DFS exploration", "distance-oblivious O(n) baseline"},
		{fnr.AlgStayWalk, "stay + random walk", "meeting-time baseline"},
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "strategy\trounds\tdrone A moves\tdrone B moves\tmailbox writes\tnote")
	for _, r := range rows {
		opt := fnr.Options{Seed: 99}
		if r.algo == fnr.AlgNoWhiteboard {
			opt.Delta = g.MinDegree()
		}
		res, err := fnr.Rendezvous(g, startA, startB, r.algo, opt)
		if err != nil {
			log.Fatal(err)
		}
		rounds := "timeout"
		if res.Met {
			rounds = fmt.Sprint(res.MeetRound)
		}
		fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%d\t%s\n", r.label, rounds, res.A.Moves, res.B.Moves, res.Writes, r.note)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nAll strategies start from identical pads with the same seed;")
	fmt.Println("rounds are synchronous radio slots, one hop per slot.")
}
