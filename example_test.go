package fnr_test

import (
	"fmt"
	"log"

	"fnr"
)

// The trivial O(∆) baseline on a complete graph: agent a waits while
// agent b sweeps its neighborhood in port order; the agents start
// adjacent, so b finds a on its first probe.
func ExampleRendezvous() {
	g, err := fnr.Complete(8)
	if err != nil {
		log.Fatal(err)
	}
	res, err := fnr.Rendezvous(g, 0, 1, fnr.AlgSweep, fnr.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("met:", res.Met, "round:", res.MeetRound, "vertex:", res.MeetVertex)
	// Output: met: true round: 1 vertex: 0
}

// Custom agents are ordinary functions against fnr.Env; every movement
// call costs one synchronous round.
func ExampleRunPrograms() {
	g, err := fnr.Ring(6)
	if err != nil {
		log.Fatal(err)
	}
	chaser := func(e *fnr.Env) {
		for {
			next := (e.HereID() + 1) % e.NPrime()
			if err := e.MoveToID(next); err != nil {
				return
			}
		}
	}
	waiter := func(e *fnr.Env) {
		for {
			e.Stay()
		}
	}
	res, err := fnr.RunPrograms(fnr.SimConfig{
		Graph: g, StartA: 0, StartB: 3, NeighborIDs: true, MaxRounds: 10,
	}, chaser, waiter)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("met at round", res.MeetRound)
	// Output: met at round 3
}
