module fnr

go 1.23
