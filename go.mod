module fnr

go 1.22
