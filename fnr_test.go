package fnr

import (
	"math/rand/v2"
	"testing"
)

func TestRendezvousAllAlgorithms(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	g, err := PlantedMinDegree(128, 40, rng)
	if err != nil {
		t.Fatal(err)
	}
	sa := Vertex(0)
	sb := g.Adj(sa)[0]
	algos := []struct {
		algo Algorithm
		opt  Options
	}{
		{AlgWhiteboard, Options{Delta: g.MinDegree()}},
		{AlgWhiteboard, Options{}}, // doubling estimation
		{AlgNoWhiteboard, Options{Delta: g.MinDegree()}},
		{AlgSweep, Options{}},
		{AlgDFS, Options{}},
		{AlgStayWalk, Options{}},
		{AlgWalkPair, Options{MaxRounds: 1 << 22}},
	}
	for _, tc := range algos {
		tc.opt.Seed = 5
		if tc.opt.MaxRounds == 0 {
			tc.opt.MaxRounds = 1 << 40
		}
		res, err := Rendezvous(g, sa, sb, tc.algo, tc.opt)
		if err != nil {
			t.Fatalf("%v: %v", tc.algo, err)
		}
		if !res.Met {
			t.Errorf("%v: no rendezvous", tc.algo)
		}
	}
}

func TestRendezvousBirthdayOnComplete(t *testing.T) {
	g, err := Complete(64)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Rendezvous(g, 0, 1, AlgBirthday, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met {
		t.Fatal("birthday strategy failed on K64")
	}
}

func TestRendezvousValidation(t *testing.T) {
	g, err := Complete(8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Rendezvous(nil, 0, 1, AlgSweep, Options{}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := Rendezvous(g, 0, 1, AlgNoWhiteboard, Options{}); err == nil {
		t.Error("AlgNoWhiteboard without Delta accepted")
	}
	if _, err := Rendezvous(g, 0, 1, Algorithm(99), Options{}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestParseAlgorithm(t *testing.T) {
	// Round-trip over the dynamic registry listing: every registered
	// spec must parse back to its own Algorithm value.
	infos := Algorithms()
	if len(infos) < 7 {
		t.Fatalf("registry lists %d algorithms, want ≥ 7", len(infos))
	}
	for _, info := range infos {
		got, err := ParseAlgorithm(info.Algorithm.String())
		if err != nil || got != info.Algorithm {
			t.Errorf("round trip %v failed: %v, %v", info.Algorithm, got, err)
		}
		if info.Name != info.Algorithm.String() {
			t.Errorf("info name %q != String() %q", info.Name, info.Algorithm.String())
		}
	}
	if _, err := ParseAlgorithm("nope"); err == nil {
		t.Error("ParseAlgorithm accepted garbage")
	}
}

// The historical constants must stay aligned with the registry order
// the built-in specs declare.
func TestAlgorithmConstantsMatchRegistry(t *testing.T) {
	want := map[Algorithm]string{
		AlgWhiteboard:   "whiteboard",
		AlgNoWhiteboard: "noboard",
		AlgSweep:        "sweep",
		AlgDFS:          "dfs",
		AlgStayWalk:     "staywalk",
		AlgWalkPair:     "walkpair",
		AlgBirthday:     "birthday",
	}
	for a, name := range want {
		if a.String() != name {
			t.Errorf("constant %d maps to %q, want %q", int(a), a.String(), name)
		}
	}
	if Algorithm(-1).String() != "Algorithm(-1)" {
		t.Errorf("out-of-range String() = %q", Algorithm(-1).String())
	}
}

// The registry's declared capabilities must configure the simulation:
// strategies without the whiteboard capability physically cannot
// write, and KT0-capable strategies run without neighbor IDs.
func TestAlgorithmCapabilities(t *testing.T) {
	byName := map[string]AlgorithmInfo{}
	for _, info := range Algorithms() {
		byName[info.Name] = info
	}
	if !byName["whiteboard"].NeedsWhiteboards || !byName["whiteboard"].NeedsNeighborIDs {
		t.Error("whiteboard capabilities wrong")
	}
	if byName["noboard"].NeedsWhiteboards || !byName["noboard"].NeedsDelta {
		t.Error("noboard capabilities wrong")
	}
	if byName["staywalk"].NeedsNeighborIDs || byName["walkpair"].NeedsNeighborIDs {
		t.Error("walk strategies must be KT0-capable")
	}
}

func TestRunBatchFacade(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	g, err := PlantedMinDegree(128, 40, rng)
	if err != nil {
		t.Fatal(err)
	}
	sa := Vertex(0)
	sb := g.Adj(sa)[0]
	batch := Batch{
		Graph: g, StartA: sa, StartB: sb,
		Algorithm: "whiteboard", Delta: g.MinDegree(),
		Trials: 12, Seed: 4, Workers: 4,
	}
	agg, err := RunBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Trials != 12 || agg.Met == 0 {
		t.Fatalf("aggregate %+v", agg)
	}
	outcomes, err := RunBatchOutcomes(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 12 {
		t.Fatalf("got %d outcomes", len(outcomes))
	}
	// The batch surface must reject capability mismatches.
	bad := batch
	bad.Algorithm = "noboard"
	bad.Delta = 0
	if _, err := RunBatch(bad); err == nil {
		t.Error("noboard batch without Delta accepted")
	}
}

func TestWhiteboardStatsExposed(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	g, err := PlantedMinDegree(128, 40, rng)
	if err != nil {
		t.Fatal(err)
	}
	st := &WhiteboardStats{}
	res, err := Rendezvous(g, 0, g.Adj(0)[0], AlgWhiteboard, Options{
		Seed: 2, Delta: g.MinDegree(), WhiteboardStats: st,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met {
		t.Fatal("no rendezvous")
	}
	// Stats may be partially filled if the meeting interrupted
	// Construct; either way the struct must be safe to read.
	if st.Iterations < 0 || st.StrictRuns < 0 {
		t.Fatal("stats corrupted")
	}
}

func TestHardInstances(t *testing.T) {
	kinds := []struct {
		kind HardKind
		n    int
	}{
		{HardTwoStars, 100},
		{HardStarClique, 64},
		{HardKT0, 64},
		{HardDistance2, 101},
		{HardDeterministic, 128},
	}
	for _, tc := range kinds {
		inst, err := HardInstance(tc.kind, tc.n)
		if err != nil {
			t.Fatalf("kind %d: %v", tc.kind, err)
		}
		if err := inst.G.Validate(); err != nil {
			t.Fatalf("kind %d: invalid graph: %v", tc.kind, err)
		}
		if inst.LowerBound <= 0 {
			t.Errorf("kind %d: no lower bound", tc.kind)
		}
	}
	if _, err := HardInstance(HardKind(99), 10); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestDeterministicHardInstanceHoldsOff(t *testing.T) {
	inst, err := HardInstance(HardDeterministic, 128)
	if err != nil {
		t.Fatal(err)
	}
	a, b := SweepAgentsForInstance()
	res, err := RunPrograms(SimConfig{
		Graph: inst.G, StartA: inst.StartA, StartB: inst.StartB,
		NeighborIDs: true, MaxRounds: inst.LowerBound,
	}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Met {
		t.Fatalf("met at %d, theorem forbids before %d", res.MeetRound, inst.LowerBound)
	}
}

func TestCustomProgramAPI(t *testing.T) {
	g, err := Ring(8)
	if err != nil {
		t.Fatal(err)
	}
	chaser := func(e *Env) {
		n := e.NPrime()
		for {
			if err := e.MoveToID((e.HereID() + 1) % n); err != nil {
				return
			}
		}
	}
	waiter := func(e *Env) {
		for {
			e.Stay()
		}
	}
	res, err := RunPrograms(SimConfig{
		Graph: g, StartA: 0, StartB: 4, NeighborIDs: true, MaxRounds: 20,
	}, chaser, waiter)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met || res.MeetVertex != 4 {
		t.Fatalf("custom program rendezvous failed: %+v", res)
	}
}

// Custom steppers run through the re-exported state-machine surface.
type testChaseStepper struct{ n int64 }

func (s *testChaseStepper) Init(ctx *StepContext) { s.n = ctx.NPrime }

func (s *testChaseStepper) Next(v *View) Action {
	if p, ok := v.PortOfID((v.HereID + 1) % s.n); ok {
		return ActMove(p)
	}
	return ActHalt()
}

type testWaitStepper struct{}

func (testWaitStepper) Init(*StepContext) {}

func (testWaitStepper) Next(*View) Action { return ActStayFor(1 << 20) }

func TestCustomStepperAPI(t *testing.T) {
	g, err := Ring(8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSteppers(SimConfig{
		Graph: g, StartA: 0, StartB: 4, NeighborIDs: true, MaxRounds: 20,
	}, &testChaseStepper{}, testWaitStepper{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met || res.MeetVertex != 4 {
		t.Fatalf("custom stepper rendezvous failed: %+v", res)
	}
	// Mixing styles: a coroutine-hosted Program against the stepper.
	waiter := func(e *Env) {
		for {
			e.Stay()
		}
	}
	res, err = RunSteppers(SimConfig{
		Graph: g, StartA: 0, StartB: 4, NeighborIDs: true, MaxRounds: 20,
	}, &testChaseStepper{}, ProgramStepper(waiter))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met || res.MeetVertex != 4 {
		t.Fatalf("mixed-style rendezvous failed: %+v", res)
	}
}

// Seed-0 regression: Options.Seed == 0 used to be normalized to 1 in
// Rendezvous only, so the same logical run differed between entry
// points (Rendezvous vs RunPrograms vs the batch engine). The default
// now lives in the simulator; every entry point must agree.
func TestSeedZeroAgreesAcrossEntryPoints(t *testing.T) {
	g, err := Complete(12)
	if err != nil {
		t.Fatal(err)
	}
	viaFacade := func(seed uint64) *Result {
		res, err := Rendezvous(g, 0, 7, AlgWalkPair, Options{Seed: seed, MaxRounds: 1 << 22})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	walker := func(e *Env) {
		for {
			if err := e.MoveToPort(e.Rand().IntN(e.Degree())); err != nil {
				panic(err)
			}
		}
	}
	viaPrograms := func(seed uint64) *Result {
		res, err := RunPrograms(SimConfig{Graph: g, StartA: 0, StartB: 7, Seed: seed, MaxRounds: 1 << 22}, walker, walker)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	// Result carries a per-agent slice on k > 2 runs, so compare the
	// two-agent fields directly.
	sameResult := func(a, b *Result) bool {
		return a.Met == b.Met && a.MeetRound == b.MeetRound && a.MeetVertex == b.MeetVertex &&
			a.Rounds == b.Rounds && a.A == b.A && a.B == b.B && a.Writes == b.Writes
	}
	// Seed 0 and seed 1 are the same run on every path…
	if !sameResult(viaFacade(0), viaFacade(1)) {
		t.Error("Rendezvous: Seed 0 and Seed 1 differ")
	}
	if !sameResult(viaPrograms(0), viaPrograms(1)) {
		t.Error("RunPrograms: Seed 0 and Seed 1 differ")
	}
	// …and the paths agree with each other (walkpair is exactly the
	// two-walker program pair).
	if !sameResult(viaFacade(0), viaPrograms(0)) {
		t.Errorf("entry points disagree on the default-seeded run:\nRendezvous:  %+v\nRunPrograms: %+v",
			*viaFacade(0), *viaPrograms(0))
	}
}

func TestExperimentsRegistryExposed(t *testing.T) {
	if len(Experiments()) != 15 {
		t.Fatalf("got %d experiments", len(Experiments()))
	}
	if _, ok := ExperimentByID("A2"); !ok {
		t.Fatal("A2 missing")
	}
}
