// Command rendezvous runs neighborhood-rendezvous simulations and
// prints the outcome — a single traced run by default, a parallel
// batch with aggregate statistics under -trials.
//
// Usage:
//
//	rendezvous -graph planted -n 1024 -d 181 -algo whiteboard -seed 7
//	rendezvous -graph complete -n 256 -algo birthday
//	rendezvous -hard kt0 -n 256 -algo walkpair
//	rendezvous -graph planted -n 1024 -algo whiteboard -trials 500 -parallel 8 -json
//	rendezvous -list-algos
//
// The algorithm list is served by the strategy registry: anything
// registered (including third-party strategies linked into a custom
// build) is runnable by name.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand/v2"
	"os"
	"strings"
	"time"

	"fnr"
)

func algoNames() []string {
	infos := fnr.Algorithms()
	names := make([]string, len(infos))
	for i, a := range infos {
		names[i] = a.Name
	}
	return names
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("rendezvous: ")
	var (
		graphKind = flag.String("graph", "planted", "graph family: planted|complete|ring|star|hypercube|torus|regular|gnp")
		hardKind  = flag.String("hard", "", "lower-bound instance instead of -graph: twostars|starclique|kt0|dist2|det")
		n         = flag.Int("n", 256, "number of vertices (dimension for hypercube)")
		d         = flag.Int("d", 0, "degree parameter (planted/regular; default n^0.75)")
		p         = flag.Float64("p", 0.1, "edge probability for gnp")
		algoName  = flag.String("algo", "whiteboard", "algorithm: "+strings.Join(algoNames(), "|"))
		listAlgos = flag.Bool("list-algos", false, "list registered algorithms and exit")
		seed      = flag.Uint64("seed", 1, "random seed (graph, agents, and batch trials)")
		trials    = flag.Int("trials", 1, "number of independent trials (> 1 submits an engine batch)")
		parallel  = flag.Int("parallel", 0, "batch worker count (0 = GOMAXPROCS; never affects results)")
		jsonOut   = flag.Bool("json", false, "emit machine-readable JSON instead of text")
		maxRounds = flag.Int64("max-rounds", 0, "round budget (0 = 4n²+1000)")
		preset    = flag.String("params", "practical", "constant preset: practical|paper")
		delta     = flag.Int("delta", 0, "min degree known to agents (0 = doubling estimation / graph's δ where required)")
		trace     = flag.Bool("trace", false, "print agent positions every round (single runs only)")
	)
	flag.Parse()

	if *listAlgos {
		printAlgos(*jsonOut)
		return
	}
	if *algoName == "detpair" {
		// The deterministic greedy-sweep pair the Theorem-6 adversary
		// defends against; only meaningful with -hard det.
		runDetPair(*hardKind, *n)
		return
	}
	algo, err := fnr.ParseAlgorithm(*algoName)
	if err != nil {
		log.Fatal(err)
	}
	info := fnr.Algorithms()[algo]
	params := fnr.PracticalParams()
	switch *preset {
	case "practical":
	case "paper":
		params = fnr.PaperParams()
	default:
		log.Fatalf("unknown preset %q", *preset)
	}

	g, sa, sb, kt0, err := buildInstance(*graphKind, *hardKind, *n, *d, *p, *seed)
	if err != nil {
		log.Fatal(err)
	}
	if info.NeedsDelta && *delta == 0 {
		*delta = g.MinDegree()
	}
	if kt0 && info.NeedsNeighborIDs {
		log.Printf("warning: the %s instance is a KT0 lower bound, but %v declares the neighbor-ID capability, so it still sees IDs here; the KT0 restriction only binds ID-free strategies (the E7 harness races those)", *hardKind, algo)
	}
	if *hardKind == "det" {
		log.Printf("note: the det instance defends against the deterministic greedy-sweep pair; use -algo detpair to see the ≥ n/32 hold-off")
	}

	if *trials > 1 {
		runBatch(g, sa, sb, info.Name, params, *delta, *trials, *seed, *maxRounds, *parallel, *jsonOut)
		return
	}
	if !*jsonOut {
		fmt.Printf("instance: %v, start a=%d (ID %d), b=%d (ID %d), dist=%d\n",
			g, sa, g.ID(sa), sb, g.ID(sb), fnr.Dist(g, sa, sb))
	}

	opt := fnr.Options{
		Seed:      *seed,
		MaxRounds: *maxRounds,
		Params:    params,
		Delta:     *delta,
	}
	if *trace && !*jsonOut {
		opt.Observer = func(ev fnr.RoundEvent) {
			fmt.Printf("round %8d: a=%d b=%d (×%d)\n", ev.Round, ev.PosA, ev.PosB, ev.Skipped)
		}
	}
	res, err := fnr.Rendezvous(g, sa, sb, algo, opt)
	if err != nil {
		log.Fatal(err)
	}
	if *jsonOut {
		out := map[string]any{
			"algorithm":  info.Name,
			"n":          g.N(),
			"min_degree": g.MinDegree(),
			"max_degree": g.MaxDegree(),
			"seed":       *seed,
			"met":        res.Met,
			"rounds":     res.Rounds,
			"moves_a":    res.A.Moves,
			"moves_b":    res.B.Moves,
			"writes":     res.Writes,
		}
		if res.Met {
			out["meet_round"] = res.MeetRound
			out["meet_vertex_id"] = g.ID(res.MeetVertex)
		}
		emitJSON(out)
		if !res.Met {
			os.Exit(1)
		}
		return
	}
	if res.Met {
		fmt.Printf("rendezvous at round %d on vertex %d (ID %d)\n", res.MeetRound, res.MeetVertex, g.ID(res.MeetVertex))
	} else {
		fmt.Printf("no rendezvous within %d rounds\n", res.Rounds)
		defer os.Exit(1)
	}
	fmt.Printf("agent a: %d moves, %d stays, halted=%v\n", res.A.Moves, res.A.Stays, res.A.Halted)
	fmt.Printf("agent b: %d moves, %d stays, halted=%v\n", res.B.Moves, res.B.Stays, res.B.Halted)
	fmt.Printf("whiteboard writes: %d\n", res.Writes)
}

// runBatch submits an engine batch and prints the aggregate.
func runBatch(g *fnr.Graph, sa, sb fnr.Vertex, name string, params fnr.Params, delta, trials int, seed uint64, maxRounds int64, workers int, jsonOut bool) {
	start := time.Now()
	agg, err := fnr.RunBatch(fnr.Batch{
		Graph:     g,
		StartA:    sa,
		StartB:    sb,
		Algorithm: name,
		Params:    params,
		Delta:     delta,
		Trials:    trials,
		Seed:      seed,
		MaxRounds: maxRounds,
		Workers:   workers,
	})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	if agg.Met == 0 {
		// Mirror the single-run convention: no rendezvous → exit 1.
		defer os.Exit(1)
	}
	if jsonOut {
		emitJSON(agg)
		return
	}
	fmt.Printf("instance: %v, start a=%d b=%d\n", g, sa, sb)
	fmt.Printf("batch: %s × %d trials (seed %d) in %v\n", name, trials, seed, elapsed.Round(time.Millisecond))
	fmt.Printf("met %d/%d (%.1f%%)\n", agg.Met, agg.Trials, 100*agg.SuccessRate)
	fmt.Printf("rounds (met): mean %.1f median %.1f p95 %.1f range [%.0f, %.0f]\n",
		agg.Rounds.Mean, agg.Rounds.Median, agg.Rounds.P95, agg.Rounds.Min, agg.Rounds.Max)
	fmt.Printf("moves (all):  mean %.1f median %.1f p95 %.1f range [%.0f, %.0f]\n",
		agg.Moves.Mean, agg.Moves.Median, agg.Moves.P95, agg.Moves.Min, agg.Moves.Max)
}

// printAlgos lists the registry contents.
func printAlgos(jsonOut bool) {
	infos := fnr.Algorithms()
	if jsonOut {
		emitJSON(infos)
		return
	}
	for _, a := range infos {
		var needs []string
		if a.NeedsNeighborIDs {
			needs = append(needs, "neighbor IDs")
		}
		if a.NeedsWhiteboards {
			needs = append(needs, "whiteboards")
		}
		if a.NeedsDelta {
			needs = append(needs, "known δ")
		}
		req := ""
		if len(needs) > 0 {
			req = " [needs " + strings.Join(needs, ", ") + "]"
		}
		fmt.Printf("%-12s %s%s\n", a.Name, a.Summary, req)
	}
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Fatal(err)
	}
}

func runDetPair(hardKind string, n int) {
	if hardKind != "det" {
		log.Fatal("-algo detpair requires -hard det")
	}
	inst, err := fnr.HardInstance(fnr.HardDeterministic, n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance: %v\n%s\n", inst.G, inst.Note)
	a, b := fnr.SweepAgentsForInstance()
	res, err := fnr.RunPrograms(fnr.SimConfig{
		Graph: inst.G, StartA: inst.StartA, StartB: inst.StartB,
		NeighborIDs: true, MaxRounds: int64(8 * n),
	}, a, b)
	if err != nil {
		log.Fatal(err)
	}
	if res.Met {
		fmt.Printf("met at round %d (theorem guarantees ≥ %d)\n", res.MeetRound, inst.LowerBound)
	} else {
		fmt.Printf("no rendezvous within %d rounds (theorem guarantees ≥ %d)\n", res.Rounds, inst.LowerBound)
	}
}

func buildInstance(graphKind, hardKind string, n, d int, p float64, seed uint64) (g *fnr.Graph, sa, sb fnr.Vertex, kt0 bool, err error) {
	if hardKind != "" {
		var kind fnr.HardKind
		switch hardKind {
		case "twostars":
			kind = fnr.HardTwoStars
		case "starclique":
			kind = fnr.HardStarClique
		case "kt0":
			kind = fnr.HardKT0
		case "dist2":
			kind = fnr.HardDistance2
		case "det":
			kind = fnr.HardDeterministic
		default:
			return nil, 0, 0, false, fmt.Errorf("unknown hard instance %q", hardKind)
		}
		inst, err := fnr.HardInstance(kind, n)
		if err != nil {
			return nil, 0, 0, false, err
		}
		return inst.G, inst.StartA, inst.StartB, inst.KT0, nil
	}
	rng := rand.New(rand.NewPCG(seed, 0xfeed))
	if d == 0 {
		d = depthDefault(n)
	}
	switch graphKind {
	case "planted":
		g, err = fnr.PlantedMinDegree(n, d, rng)
	case "complete":
		g, err = fnr.Complete(n)
	case "ring":
		g, err = fnr.Ring(n)
	case "star":
		g, err = fnr.Star(n)
	case "hypercube":
		g, err = fnr.Hypercube(n)
	case "torus":
		side := 3
		for side*side < n {
			side++
		}
		g, err = fnr.Torus(side, side)
	case "regular":
		g, err = fnr.RandomRegular(n, d, rng)
	case "gnp":
		g, err = fnr.GNP(n, p, rng)
	default:
		err = fmt.Errorf("unknown graph family %q", graphKind)
	}
	if err != nil {
		return nil, 0, 0, false, err
	}
	sa = fnr.Vertex(rng.IntN(g.N()))
	for g.Degree(sa) == 0 {
		sa = fnr.Vertex(rng.IntN(g.N()))
	}
	adj := g.Adj(sa)
	sb = adj[rng.IntN(len(adj))]
	return g, sa, sb, false, nil
}

func depthDefault(n int) int {
	d := 2
	for d*d*d*d < n*n*n { // d ≈ n^0.75
		d++
	}
	return d
}
