// Command rendezvous runs one neighborhood-rendezvous simulation and
// prints the outcome.
//
// Usage:
//
//	rendezvous -graph planted -n 1024 -d 181 -algo whiteboard -seed 7
//	rendezvous -graph complete -n 256 -algo birthday
//	rendezvous -hard kt0 -n 256 -algo walkpair
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand/v2"
	"os"

	"fnr"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rendezvous: ")
	var (
		graphKind = flag.String("graph", "planted", "graph family: planted|complete|ring|star|hypercube|torus|regular|gnp")
		hardKind  = flag.String("hard", "", "lower-bound instance instead of -graph: twostars|starclique|kt0|dist2|det")
		n         = flag.Int("n", 256, "number of vertices (dimension for hypercube)")
		d         = flag.Int("d", 0, "degree parameter (planted/regular; default n^0.75)")
		p         = flag.Float64("p", 0.1, "edge probability for gnp")
		algoName  = flag.String("algo", "whiteboard", "algorithm: whiteboard|noboard|sweep|dfs|staywalk|walkpair|birthday")
		seed      = flag.Uint64("seed", 1, "random seed (graph and agents)")
		maxRounds = flag.Int64("max-rounds", 0, "round budget (0 = 4n²+1000)")
		preset    = flag.String("params", "practical", "constant preset: practical|paper")
		delta     = flag.Int("delta", 0, "min degree known to agents (0 = doubling estimation / graph's δ for noboard)")
		trace     = flag.Bool("trace", false, "print agent positions every round")
	)
	flag.Parse()

	if *algoName == "detpair" {
		// The deterministic greedy-sweep pair the Theorem-6 adversary
		// defends against; only meaningful with -hard det.
		runDetPair(*hardKind, *n)
		return
	}
	algo, err := fnr.ParseAlgorithm(*algoName)
	if err != nil {
		log.Fatal(err)
	}
	params := fnr.PracticalParams()
	switch *preset {
	case "practical":
	case "paper":
		params = fnr.PaperParams()
	default:
		log.Fatalf("unknown preset %q", *preset)
	}

	g, sa, sb, kt0, err := buildInstance(*graphKind, *hardKind, *n, *d, *p, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance: %v, start a=%d (ID %d), b=%d (ID %d), dist=%d\n",
		g, sa, g.ID(sa), sb, g.ID(sb), fnr.Dist(g, sa, sb))

	opt := fnr.Options{
		Seed:      *seed,
		MaxRounds: *maxRounds,
		Params:    params,
		Delta:     *delta,
	}
	if algo == fnr.AlgNoWhiteboard && opt.Delta == 0 {
		opt.Delta = g.MinDegree()
	}
	if *trace {
		opt.Observer = func(ev fnr.RoundEvent) {
			fmt.Printf("round %8d: a=%d b=%d (×%d)\n", ev.Round, ev.PosA, ev.PosB, ev.Skipped)
		}
	}
	if kt0 && (algo == fnr.AlgWhiteboard || algo == fnr.AlgNoWhiteboard || algo == fnr.AlgSweep || algo == fnr.AlgDFS || algo == fnr.AlgBirthday) {
		log.Printf("warning: %v needs neighbor IDs but the %s instance is a KT0 lower bound; it will fail fast", algo, *hardKind)
	}
	if *hardKind == "det" {
		log.Printf("note: the det instance defends against the deterministic greedy-sweep pair; use -algo detpair to see the ≥ n/32 hold-off")
	}

	res, err := fnr.Rendezvous(g, sa, sb, algo, opt)
	if err != nil {
		log.Fatal(err)
	}
	if res.Met {
		fmt.Printf("rendezvous at round %d on vertex %d (ID %d)\n", res.MeetRound, res.MeetVertex, g.ID(res.MeetVertex))
	} else {
		fmt.Printf("no rendezvous within %d rounds\n", res.Rounds)
		defer os.Exit(1)
	}
	fmt.Printf("agent a: %d moves, %d stays, halted=%v\n", res.A.Moves, res.A.Stays, res.A.Halted)
	fmt.Printf("agent b: %d moves, %d stays, halted=%v\n", res.B.Moves, res.B.Stays, res.B.Halted)
	fmt.Printf("whiteboard writes: %d\n", res.Writes)
}

func runDetPair(hardKind string, n int) {
	if hardKind != "det" {
		log.Fatal("-algo detpair requires -hard det")
	}
	inst, err := fnr.HardInstance(fnr.HardDeterministic, n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance: %v\n%s\n", inst.G, inst.Note)
	a, b := fnr.SweepAgentsForInstance()
	res, err := fnr.RunPrograms(fnr.SimConfig{
		Graph: inst.G, StartA: inst.StartA, StartB: inst.StartB,
		NeighborIDs: true, MaxRounds: int64(8 * n),
	}, a, b)
	if err != nil {
		log.Fatal(err)
	}
	if res.Met {
		fmt.Printf("met at round %d (theorem guarantees ≥ %d)\n", res.MeetRound, inst.LowerBound)
	} else {
		fmt.Printf("no rendezvous within %d rounds (theorem guarantees ≥ %d)\n", res.Rounds, inst.LowerBound)
	}
}

func buildInstance(graphKind, hardKind string, n, d int, p float64, seed uint64) (g *fnr.Graph, sa, sb fnr.Vertex, kt0 bool, err error) {
	if hardKind != "" {
		var kind fnr.HardKind
		switch hardKind {
		case "twostars":
			kind = fnr.HardTwoStars
		case "starclique":
			kind = fnr.HardStarClique
		case "kt0":
			kind = fnr.HardKT0
		case "dist2":
			kind = fnr.HardDistance2
		case "det":
			kind = fnr.HardDeterministic
		default:
			return nil, 0, 0, false, fmt.Errorf("unknown hard instance %q", hardKind)
		}
		inst, err := fnr.HardInstance(kind, n)
		if err != nil {
			return nil, 0, 0, false, err
		}
		return inst.G, inst.StartA, inst.StartB, inst.KT0, nil
	}
	rng := rand.New(rand.NewPCG(seed, 0xfeed))
	if d == 0 {
		d = depthDefault(n)
	}
	switch graphKind {
	case "planted":
		g, err = fnr.PlantedMinDegree(n, d, rng)
	case "complete":
		g, err = fnr.Complete(n)
	case "ring":
		g, err = fnr.Ring(n)
	case "star":
		g, err = fnr.Star(n)
	case "hypercube":
		g, err = fnr.Hypercube(n)
	case "torus":
		side := 3
		for side*side < n {
			side++
		}
		g, err = fnr.Torus(side, side)
	case "regular":
		g, err = fnr.RandomRegular(n, d, rng)
	case "gnp":
		g, err = fnr.GNP(n, p, rng)
	default:
		err = fmt.Errorf("unknown graph family %q", graphKind)
	}
	if err != nil {
		return nil, 0, 0, false, err
	}
	sa = fnr.Vertex(rng.IntN(g.N()))
	for g.Degree(sa) == 0 {
		sa = fnr.Vertex(rng.IntN(g.N()))
	}
	adj := g.Adj(sa)
	sb = adj[rng.IntN(len(adj))]
	return g, sa, sb, false, nil
}

func depthDefault(n int) int {
	d := 2
	for d*d*d*d < n*n*n { // d ≈ n^0.75
		d++
	}
	return d
}
