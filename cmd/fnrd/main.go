// Command fnrd serves fnr batch jobs over HTTP/JSON.
//
// It exposes the batch-job layer (internal/job) behind a small daemon:
// POST a job.Spec to /v1/batches, poll GET /v1/batches/{id} until the
// state is "done", and the returned aggregate is byte-identical to
// running the same spec in-process through fnr.RunBatchReduced. Graphs
// are shared across batches through a content-addressed cache keyed by
// workload hash, so repeated submissions against the same topology
// build it once. Specs may carry a scenario block (agents, starts,
// wake_delays, meet) to run k-agent delayed-wakeup gatherings; specs
// without one hash and execute exactly as before the scenario layer
// existed. SIGINT/SIGTERM drains gracefully: in-flight
// checkpointed batches journal their covered trial spans before the
// process exits, ready for a resume resubmission.
//
// Usage:
//
//	fnrd [-addr :8080] [-jobs 2] [-queue 16] [-job-workers 0]
//	     [-cache-mb 2048] [-retry-after 1s] [-drain-timeout 30s]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"fnr/internal/graphcache"
	"fnr/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	jobs := flag.Int("jobs", 2, "batches executed concurrently")
	queue := flag.Int("queue", 16, "admission queue depth (overflow is 429)")
	jobWorkers := flag.Int("job-workers", 0, "engine workers per batch (0 = GOMAXPROCS)")
	cacheMB := flag.Int64("cache-mb", 2048, "graph cache budget in MiB (0 = default, <0 = unlimited)")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint on 429")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight batches on shutdown")
	flag.Parse()

	srv := server.New(server.Config{
		Jobs:       *jobs,
		QueueDepth: *queue,
		JobWorkers: *jobWorkers,
		RetryAfter: *retryAfter,
		Cache:      graphcache.New(*cacheMB << 20),
	})
	hs := &http.Server{Addr: *addr, Handler: srv}

	// The same drain trigger the CLIs use: first SIGINT/SIGTERM
	// cancels, a second one kills.
	ctx, stop := server.SignalContext(context.Background())
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "fnrd listening on %s (jobs=%d queue=%d cache=%dMiB)\n",
		*addr, *jobs, *queue, *cacheMB)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "fnrd:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "fnrd: draining (in-flight checkpointed batches journal their spans)")

	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Drain(dctx)
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "fnrd: shutdown:", err)
	}
	if drainErr != nil {
		fmt.Fprintln(os.Stderr, "fnrd: drain timed out with batches still running")
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "fnrd: drained cleanly")
}
