// Command benchengine emits BENCH_engine.json: the fixed reference
// batch (whiteboard vs sweep, 200 trials each on PlantedMinDegree
// (1024, 181), batch seed 7) that gives later changes a perf
// trajectory to compare against. Each batch is timed four ways — the
// lockstep lane path (the engine default) in parallel and serially,
// the legacy one-trial-at-a-time stepper path serially, and the
// goroutine-backed Program path serially — and the aggregates of every
// run are checked byte-identical before anything is written. The aggregates are
// deterministic; only the *_elapsed_ms fields vary between machines
// and runs.
//
// In addition to the reference batch the report carries a large
// scaling preset (default PlantedMinDegree(65536, 256), 20 whiteboard
// trials) — the datapoint that tracks whether graph generation and the
// trial engine keep scaling past laptop n. Graph generation is timed
// for both presets (gen_elapsed_ms), as is one serialize→parse round
// trip per format (io.read_elapsed_ms for binary v2 against
// io.read_text_elapsed_ms for v1 text). A third preset ("mega",
// default 10M sweep trials on PlantedMinDegree(64, 8)) exercises the
// streaming reducer: the batch runs through RunBatchStreaming and the
// report records the live heap afterwards as a bounded-memory witness.
//
// A "scenarios" preset reruns the reference workload as explicit
// job-layer scenarios: a two-agent whiteboard sweep over wake delays
// τ ∈ -wake-delays (agent b sleeps τ rounds before its first step)
// plus one k-agent walkpair entry with the first-pair meeting
// predicate. Each entry records the exact canonical spec JSON and its
// hash, so a smoke check can resubmit the identical spec to a running
// fnrd and diff the aggregates byte for byte; the τ=0 entry doubles
// as a live legacy-parity gate (its hash and aggregate must match the
// scenario-free spec exactly).
//
// A fourth preset ("huge", default PlantedMinDegree(2²⁰, 64))
// exercises the 64-bit graph core end to end: bulk Hamiltonian-cycle
// generation (timed against the sequential prefix it replaced), a v3
// chunked write to a real file, a streaming read back with a
// transient-memory witness (io.read_peak_transient_mb, gated under
// 2×V3MaxChunkLen by -assert-huge-io), and one sweep lane batch.
//
// Usage:
//
//	benchengine              # writes BENCH_engine.json in the cwd
//	benchengine -o out.json
//	benchengine -trials 500 -parallel 8
//	benchengine -large=false             # skip the n=65536 preset
//	benchengine -cpuprofile cpu.pprof    # profile the timed runs
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand/v2"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"fnr"
	"fnr/internal/atomicio"
)

type batchReport struct {
	Aggregate *fnr.Aggregate `json:"aggregate"`
	// ElapsedMS is wall-clock for the batch on the lockstep lane path
	// (the engine default) at the configured worker count
	// (machine-dependent; excluded from determinism claims, like
	// every elapsed field here).
	ElapsedMS int64 `json:"elapsed_ms"`
	// TrialsPerSec is Trials / ElapsedMS — throughput of the default
	// path at the configured worker count.
	TrialsPerSec float64 `json:"trials_per_sec"`
	// LaneWidth is the lockstep lane width of the timed runs.
	LaneWidth int `json:"lane_width"`
	// SerialElapsedMS is wall-clock for the goroutine-backed Program
	// path at one worker — the classic path, kept as the baseline the
	// stepper path is measured against.
	SerialElapsedMS int64 `json:"serial_elapsed_ms"`
	// StepperElapsedMS is wall-clock for the legacy one-trial-at-a-
	// time stepper path (LaneWidth -1) at one worker — the PR 5 fast
	// path, kept timed so the lockstep gain stays visible.
	StepperElapsedMS int64 `json:"stepper_elapsed_ms"`
	// LockstepElapsedMS is wall-clock for the lockstep lane path at
	// one worker.
	LockstepElapsedMS int64 `json:"lockstep_elapsed_ms"`
	// StepperSpeedup is SerialElapsedMS / StepperElapsedMS: how much
	// the goroutine-free path gains over the goroutine path, serial
	// against serial.
	StepperSpeedup float64 `json:"stepper_speedup"`
	// LockstepSpeedup is StepperElapsedMS / LockstepElapsedMS: what
	// batch-resident lockstep execution gains over running the same
	// steppers one trial at a time, serial against serial.
	LockstepSpeedup float64 `json:"lockstep_speedup"`
	// NativeSetupElapsedMS and CoroutineSetupElapsedMS time the pure
	// per-trial stepper setup cost over setup-cycles build+Init+Finish
	// cycles: the registered native state machines against the same
	// strategy's Programs hosted on iter.Pull coroutines
	// (ProgramStepper) — the setup the fast path paid for the paper's
	// algorithms before their native rewrite. Machine-dependent, like
	// every elapsed field.
	NativeSetupElapsedMS    int64 `json:"native_setup_elapsed_ms"`
	CoroutineSetupElapsedMS int64 `json:"coroutine_setup_elapsed_ms"`
	// SetupSpeedup is CoroutineSetupElapsedMS / NativeSetupElapsedMS.
	SetupSpeedup float64 `json:"setup_speedup"`
}

// largeBatchReport times one large-preset batch: the stepper fast
// path in parallel and serially. The goroutine-backed Program path is
// not re-timed at this scale — the reference batches above already
// track that ratio, and the differential suite proves the paths
// byte-identical.
type largeBatchReport struct {
	Aggregate *fnr.Aggregate `json:"aggregate"`
	// ElapsedMS is wall-clock for the lockstep lane path (the engine
	// default) at the configured worker count.
	ElapsedMS int64 `json:"elapsed_ms"`
	// TrialsPerSec is Trials / ElapsedMS at the configured workers.
	TrialsPerSec float64 `json:"trials_per_sec"`
	// LaneWidth is the lockstep lane width of the timed runs.
	LaneWidth int `json:"lane_width"`
	// StepperElapsedMS is wall-clock for the legacy per-trial stepper
	// path at one worker; LockstepElapsedMS for the lane path at one
	// worker; LockstepSpeedup their ratio (as in batchReport).
	StepperElapsedMS  int64   `json:"stepper_elapsed_ms"`
	LockstepElapsedMS int64   `json:"lockstep_elapsed_ms"`
	LockstepSpeedup   float64 `json:"lockstep_speedup"`
	// Setup costs, as in batchReport.
	NativeSetupElapsedMS    int64   `json:"native_setup_elapsed_ms"`
	CoroutineSetupElapsedMS int64   `json:"coroutine_setup_elapsed_ms"`
	SetupSpeedup            float64 `json:"setup_speedup"`
}

// largeReport is the n=65536 scaling preset: generation and
// serialization costs plus one whiteboard batch.
type largeReport struct {
	N       int    `json:"n"`
	D       int    `json:"d"`
	Trials  int    `json:"trials"`
	Seed    uint64 `json:"seed"`
	Workers int    `json:"workers"`
	// GenElapsedMS is wall-clock for generating the preset's graph.
	GenElapsedMS int64 `json:"gen_elapsed_ms"`
	// Serialization round-trip costs (see ioReport).
	IO      *ioReport                   `json:"io,omitempty"`
	Batches map[string]largeBatchReport `json:"batches"`
}

// ioReport times one serialize→parse round trip per format on the
// preset's graph, in memory. ReadElapsedMS (binary v2) against
// ReadTextElapsedMS is the datapoint tracking the binary format's
// parse-cost win; the byte counts track its size win.
type ioReport struct {
	// ReadElapsedMS is wall-clock for graph.Read on the v2 binary
	// serialization.
	ReadElapsedMS int64 `json:"read_elapsed_ms"`
	// ReadTextElapsedMS is wall-clock for graph.Read on the v1 text
	// serialization.
	ReadTextElapsedMS int64 `json:"read_text_elapsed_ms"`
	// ReadSpeedup is ReadTextElapsedMS / ReadElapsedMS.
	ReadSpeedup float64 `json:"read_speedup"`
	// WriteElapsedMS / WriteTextElapsedMS time the two writers.
	WriteElapsedMS     int64 `json:"write_elapsed_ms"`
	WriteTextElapsedMS int64 `json:"write_text_elapsed_ms"`
	// Bytes / TextBytes are the serialized sizes.
	Bytes     int `json:"bytes"`
	TextBytes int `json:"text_bytes"`
}

// hugeReport is the million-vertex preset (default n=2²⁰, d=64): it
// exercises the 64-bit graph core end to end — parallel planted
// generation, a v3 chunked write to disk, a streaming read back, and
// one lane batch of the ∆-sweep baseline (d « √n is outside the
// whiteboard algorithm's δ ≥ √n regime). The prefix timings compare
// the sequential Hamiltonian-cycle edge loop against the bulk
// AddCycle fill that PlantedMinDegree now uses.
type hugeReport struct {
	N       int    `json:"n"`
	D       int    `json:"d"`
	Trials  int    `json:"trials"`
	Seed    uint64 `json:"seed"`
	Workers int    `json:"workers"`
	// GenElapsedMS is wall-clock for generating the preset's graph
	// (bulk cycle prefix + deficit loop + CSR build).
	GenElapsedMS int64 `json:"gen_elapsed_ms"`
	// PrefixSerialElapsedMS times the pre-bulk generation prefix (n
	// sequential MustAddEdge calls over a Hamiltonian cycle);
	// PrefixBulkElapsedMS the byte-equivalent AddCycle fill;
	// PrefixSpeedup their ratio.
	PrefixSerialElapsedMS int64         `json:"prefix_serial_elapsed_ms"`
	PrefixBulkElapsedMS   int64         `json:"prefix_bulk_elapsed_ms"`
	PrefixSpeedup         float64       `json:"prefix_speedup"`
	IO                    *hugeIOReport `json:"io"`
	// Batch fields: one lane-path sweep batch at the configured
	// worker count.
	Algorithm    string         `json:"algorithm"`
	ElapsedMS    int64          `json:"elapsed_ms"`
	TrialsPerSec float64        `json:"trials_per_sec"`
	LaneWidth    int            `json:"lane_width"`
	Aggregate    *fnr.Aggregate `json:"aggregate"`
}

// hugeIOReport times the huge preset's serialize→parse round trip
// through the v3 chunked format on a real file (the only format able
// to carry graphs past 2³¹ arcs), with a transient-memory witness.
type hugeIOReport struct {
	// WriteElapsedMS / ReadElapsedMS are wall-clock for the v3 write
	// and the streaming read back; Bytes is the serialized size.
	WriteElapsedMS int64 `json:"write_elapsed_ms"`
	ReadElapsedMS  int64 `json:"read_elapsed_ms"`
	Bytes          int64 `json:"bytes"`
	// ReadPeakTransientMB is the decode's allocation total beyond the
	// returned graph's own footprint (runtime.ReadMemStats TotalAlloc
	// delta minus the computed CSR array bytes) — the witness that
	// streaming decode memory is O(chunk), not O(file). The CI gate
	// requires it under 2× the frame cap (2 × V3MaxChunkLen = 8 MiB).
	ReadPeakTransientMB float64 `json:"read_peak_transient_mb"`
}

// scenarioReport is the delayed-wakeup preset: the reference workload
// rerun as explicit scenarios through the job layer (the exact path an
// fnrd submission takes). The sweep holds the two-agent whiteboard
// instance fixed and delays agent b's wake-up by τ rounds for each τ
// in -wake-delays — the datapoint tracking how asynchronous start
// times shift the meeting-round distribution. The team entry runs a
// k-agent walkpair scenario (last agent delayed, first-pair meeting
// predicate), exercising the generalized k-agent loop end to end. The
// τ=0 sweep entry is a live legacy-parity witness: its spec must hash
// identically to the scenario-free spec and its aggregate must be
// byte-identical to running that spec, or the run aborts.
type scenarioReport struct {
	N       int    `json:"n"`
	D       int    `json:"d"`
	Trials  int    `json:"trials"`
	Seed    uint64 `json:"seed"`
	Workers int    `json:"workers"`
	// Sweep is the two-agent wake-delay sweep, one entry per τ.
	Sweep []scenarioEntry `json:"sweep"`
	// Team is the k-agent entry (nil when -scenario-agents is 2).
	Team *scenarioEntry `json:"team,omitempty"`
}

// scenarioEntry is one scenario datapoint. Spec carries the exact
// canonical job JSON, so a smoke check can resubmit the identical
// spec to a running fnrd and diff the returned aggregate against
// Aggregate byte for byte.
type scenarioEntry struct {
	Algorithm string `json:"algorithm"`
	Agents    int    `json:"agents"`
	// WakeDelay is the delayed agent's τ (the last agent; everyone
	// else wakes at round 0).
	WakeDelay int64 `json:"wake_delay"`
	// Spec is the canonical job JSON of the entry; SpecHash its
	// content hash (the daemon's cache key for this scenario).
	Spec     json.RawMessage `json:"spec"`
	SpecHash string          `json:"spec_hash"`
	// ElapsedMS is wall-clock for the batch at the configured worker
	// count (machine-dependent, like every elapsed field).
	ElapsedMS int64          `json:"elapsed_ms"`
	Aggregate *fnr.Aggregate `json:"aggregate"`
}

// megaReport is the streaming-aggregation preset: a 10M-trial batch
// on a tiny instance, run through RunBatchStreaming, proving the
// engine sustains trial counts whose outcome slice alone would cost
// hundreds of MB — with bounded engine-owned memory.
type megaReport struct {
	N         int    `json:"n"`
	D         int    `json:"d"`
	Trials    int    `json:"trials"`
	Seed      uint64 `json:"seed"`
	Workers   int    `json:"workers"`
	Algorithm string `json:"algorithm"`
	// ElapsedMS is wall-clock for the streaming batch at the
	// configured worker count; TrialsPerSec the resulting throughput.
	ElapsedMS    int64   `json:"elapsed_ms"`
	TrialsPerSec float64 `json:"trials_per_sec"`
	// HeapAllocMB is the live heap right after the batch returns — a
	// bounded-memory witness (an O(trials) outcome slice would put
	// 32 B × trials here).
	HeapAllocMB float64        `json:"heap_alloc_mb"`
	Aggregate   *fnr.Aggregate `json:"aggregate"`
}

type report struct {
	N          int    `json:"n"`
	D          int    `json:"d"`
	Trials     int    `json:"trials"`
	Seed       uint64 `json:"seed"`
	Workers    int    `json:"workers"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// GenElapsedMS is wall-clock for generating the reference graph.
	GenElapsedMS int64                  `json:"gen_elapsed_ms"`
	IO           *ioReport              `json:"io,omitempty"`
	Batches      map[string]batchReport `json:"batches"`
	Scenarios    *scenarioReport        `json:"scenarios,omitempty"`
	Large        *largeReport           `json:"large,omitempty"`
	Mega         *megaReport            `json:"mega,omitempty"`
	Huge         *hugeReport            `json:"huge,omitempty"`
}

// timeReads serializes g in both formats and times parsing each back,
// GC-fencing the timed sections so one measurement's garbage does not
// bill the next.
func timeReads(g *fnr.Graph) *ioReport {
	rep := &ioReport{}
	var bin, text bytes.Buffer
	start := time.Now()
	if _, err := g.WriteBinary(&bin); err != nil {
		log.Fatal(err)
	}
	rep.WriteElapsedMS = max(time.Since(start).Milliseconds(), 1)
	start = time.Now()
	if _, err := g.WriteTo(&text); err != nil {
		log.Fatal(err)
	}
	rep.WriteTextElapsedMS = max(time.Since(start).Milliseconds(), 1)
	rep.Bytes, rep.TextBytes = bin.Len(), text.Len()
	readOne := func(data []byte) int64 {
		runtime.GC()
		start := time.Now()
		h, err := fnr.ReadGraph(bytes.NewReader(data))
		if err != nil {
			log.Fatal(err)
		}
		elapsed := max(time.Since(start).Milliseconds(), 1)
		if !h.Equal(g) {
			log.Fatal("serialization round trip changed the graph")
		}
		return elapsed
	}
	// Min of three interleaved reads: a single GC cycle or a noisy-
	// neighbor stall on a shared host would otherwise bill one format
	// multiple seconds the other did not pay.
	for i := 0; i < 3; i++ {
		binMS, textMS := readOne(bin.Bytes()), readOne(text.Bytes())
		if i == 0 || binMS < rep.ReadElapsedMS {
			rep.ReadElapsedMS = binMS
		}
		if i == 0 || textMS < rep.ReadTextElapsedMS {
			rep.ReadTextElapsedMS = textMS
		}
	}
	rep.ReadSpeedup = float64(rep.ReadTextElapsedMS) / float64(rep.ReadElapsedMS)
	return rep
}

// timeSetups measures the pure per-trial stepper setup-and-teardown
// cost of one strategy, cycles times over: build the pair, Init each
// agent with a run-equivalent StepContext, Finish each. The native
// loop builds the registered state machines; the coroutine loop hosts
// the same strategy's Programs on ProgramStepper, whose Init creates
// (and Finish unwinds) an iter.Pull coroutine per agent — what the
// engine's fast path paid per trial for the paper's algorithms before
// their native rewrite. GC-fenced; ms floored at 1.
func timeSetups(name string, g *fnr.Graph, delta, cycles int, seed uint64) (nativeMS, coroMS int64) {
	a, err := fnr.ParseAlgorithm(name)
	if err != nil {
		log.Fatal(err)
	}
	var info fnr.AlgorithmInfo
	for _, ai := range fnr.Algorithms() {
		if ai.Name == name {
			info = ai
		}
	}
	opt := fnr.Options{Delta: delta}
	initAndFinish := func(sa, sb fnr.Stepper) {
		for i, st := range []fnr.Stepper{sa, sb} {
			ctx := fnr.StepContext{
				Name:        fnr.AgentName(i),
				NPrime:      g.NPrime(),
				NeighborIDs: info.NeedsNeighborIDs,
				Whiteboards: info.NeedsWhiteboards,
				Rand:        rand.New(rand.NewPCG(seed, uint64(0xA+i))),
			}
			st.Init(&ctx)
			fnr.FinishStepper(st)
		}
	}
	runtime.GC()
	start := time.Now()
	for i := 0; i < cycles; i++ {
		sa, sb, err := fnr.BuildSteppers(a, opt)
		if err != nil {
			log.Fatal(err)
		}
		initAndFinish(sa, sb)
	}
	nativeMS = max(time.Since(start).Milliseconds(), 1)
	runtime.GC()
	start = time.Now()
	for i := 0; i < cycles; i++ {
		pa, pb, err := fnr.BuildPrograms(a, opt)
		if err != nil {
			log.Fatal(err)
		}
		initAndFinish(fnr.ProgramStepper(pa), fnr.ProgramStepper(pb))
	}
	coroMS = max(time.Since(start).Milliseconds(), 1)
	return nativeMS, coroMS
}

// timedRun executes the batch and returns its aggregate with
// wall-clock milliseconds (minimum 1, so speedup ratios stay finite).
func timedRun(b fnr.Batch) (*fnr.Aggregate, int64) {
	start := time.Now()
	agg, err := fnr.RunBatch(b)
	if err != nil {
		log.Fatalf("%s: %v", b.Algorithm, err)
	}
	return agg, max(time.Since(start).Milliseconds(), 1)
}

// timedRunBest is timedRun keeping the fastest of reps runs. The
// serial-path timings exist to support ratio claims (lockstep vs
// per-trial vs goroutine), and on a shared host a single GC cycle or
// noisy-neighbor stall would otherwise decide a ratio one run paid
// and the other did not.
func timedRunBest(b fnr.Batch, reps int) (*fnr.Aggregate, int64) {
	agg, best := timedRun(b)
	for i := 1; i < reps; i++ {
		if _, e := timedRun(b); e < best {
			best = e
		}
	}
	return agg, best
}

// genWorkload reproduces the fixed workload derivation — the planted
// graph from PCG(seed, 0xbe7c4) plus an adjacent start pair from the
// same stream — through the shared job layer, so a benchmark run, an
// `experiments -tail` run, and an fnrd submission with the same
// (n, d, seed) all exercise the same instance. Returns the graph, the
// pair, and the generation time.
func genWorkload(n, d int, seed uint64) (*fnr.Graph, fnr.Vertex, fnr.Vertex, int64) {
	start := time.Now()
	m, err := fnr.MaterializeWorkload(fnr.JobWorkload{Kind: "planted", N: n, D: d, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	genMS := max(time.Since(start).Milliseconds(), 1)
	return m.Graph, m.StartA, m.StartB, genMS
}

// runScenarioSpec validates and executes one scenario spec through the
// shared job layer on the already-materialized reference workload, and
// packs the result into a scenarioEntry.
func runScenarioSpec(spec fnr.JobSpec, built fnr.JobMaterialized, workers int, delay int64) scenarioEntry {
	spec = spec.Normalize()
	if err := spec.Validate(); err != nil {
		log.Fatalf("scenario %s: %v", spec.Algorithm, err)
	}
	canon, err := spec.CanonicalJSON()
	if err != nil {
		log.Fatalf("scenario %s: %v", spec.Algorithm, err)
	}
	hash, err := spec.Hash()
	if err != nil {
		log.Fatalf("scenario %s: %v", spec.Algorithm, err)
	}
	start := time.Now()
	res, err := fnr.RunJobBuilt(context.Background(), spec, built, fnr.JobExecOptions{Workers: workers})
	if err != nil {
		log.Fatalf("scenario %s: %v", spec.Algorithm, err)
	}
	agents := spec.Agents
	if agents == 0 {
		agents = 2
	}
	return scenarioEntry{
		Algorithm: spec.Algorithm,
		Agents:    agents,
		WakeDelay: delay,
		Spec:      json.RawMessage(canon),
		SpecHash:  hash,
		ElapsedMS: max(time.Since(start).Milliseconds(), 1),
		Aggregate: res.Aggregate(),
	}
}

// runScenarios executes the delayed-wakeup preset (see scenarioReport)
// on the reference workload: the whiteboard wake-delay sweep plus one
// k-agent walkpair entry.
func runScenarios(g *fnr.Graph, sa, sb fnr.Vertex, n, d, trials int, seed uint64, workers, agents int, delays []int64) *scenarioReport {
	srep := &scenarioReport{
		N: n, D: d, Trials: trials, Seed: seed, Workers: workers,
	}
	built := fnr.JobMaterialized{Graph: g, StartA: sa, StartB: sb}
	base := fnr.JobSpec{
		Algorithm: "whiteboard",
		Workload:  &fnr.JobWorkload{Kind: "planted", N: n, D: d, Seed: seed},
		Trials:    trials,
		Seed:      seed,
	}
	for _, tau := range delays {
		spec := base
		spec.WakeDelays = []int64{0, tau}
		entry := runScenarioSpec(spec, built, workers, tau)
		if tau == 0 {
			// Legacy-parity witness: a τ=0 scenario is the legacy
			// two-agent batch, so it must share the plain spec's hash
			// and aggregate exactly.
			plain := runScenarioSpec(base, built, workers, 0)
			if entry.SpecHash != plain.SpecHash {
				log.Fatalf("scenario τ=0: spec hash %s differs from the scenario-free spec's %s", entry.SpecHash, plain.SpecHash)
			}
			if !entry.Aggregate.Equal(plain.Aggregate) {
				log.Fatal("scenario τ=0: aggregate differs from the scenario-free run — legacy parity broken")
			}
		}
		srep.Sweep = append(srep.Sweep, entry)
	}
	if agents > 2 {
		// k walkers, last one delayed by the sweep's largest τ, first
		// pair to collide ends the trial (an all-gather of independent
		// walkers on the reference graph would rarely finish inside
		// any sane round bound).
		wd := make([]int64, agents)
		if len(delays) > 0 {
			wd[agents-1] = delays[len(delays)-1]
		}
		spec := base
		spec.Algorithm = "walkpair"
		spec.Agents = agents
		spec.WakeDelays = wd
		spec.Meet = "firstpair"
		entry := runScenarioSpec(spec, built, workers, wd[agents-1])
		srep.Team = &entry
	}
	return srep
}

// runHuge executes the million-vertex preset (see hugeReport):
// prefix timings, full generation, a v3 file round trip with the
// transient-memory witness, and one sweep lane batch. assertIO turns
// the transient witness into a hard gate (the CI smoke job's check
// that streaming decode memory stays O(chunk)).
func runHuge(n, d, trials int, seed uint64, workers, shardIndex, shardCount int, assertIO bool) *hugeReport {
	hrep := &hugeReport{
		N: n, D: d, Trials: trials, Seed: seed,
		Workers: workers, Algorithm: "sweep",
	}

	// Prefix timings: the generation's Hamiltonian-cycle permutation
	// laid down two ways — n sequential MustAddEdge calls against one
	// bulk AddCycle — on builders grown to the generator's row
	// capacity, exactly as PlantedMinDegree grows them.
	perm := rand.New(rand.NewPCG(seed, 0xbe7c4)).Perm(n)
	rowCap := min(d+2, n-1)
	sb := fnr.NewBuilder(n)
	sb.Grow(rowCap)
	runtime.GC()
	start := time.Now()
	for i, v := range perm {
		sb.MustAddEdge(fnr.Vertex(v), fnr.Vertex(perm[(i+1)%n]))
	}
	hrep.PrefixSerialElapsedMS = max(time.Since(start).Milliseconds(), 1)
	sb = nil
	bb := fnr.NewBuilder(n)
	bb.Grow(rowCap)
	runtime.GC()
	start = time.Now()
	if err := bb.AddCycle(perm); err != nil {
		log.Fatal(err)
	}
	hrep.PrefixBulkElapsedMS = max(time.Since(start).Milliseconds(), 1)
	hrep.PrefixSpeedup = float64(hrep.PrefixSerialElapsedMS) / float64(hrep.PrefixBulkElapsedMS)
	bb, perm = nil, nil

	hg, hsa, hsb, genMS := genWorkload(n, d, seed)
	hrep.GenElapsedMS = genMS

	// v3 round trip through a real file: the sized streaming-read
	// path, with a TotalAlloc witness that transient decode memory is
	// O(chunk). The witness is everything the read allocated beyond
	// the returned graph's own arrays.
	hio := &hugeIOReport{}
	hrep.IO = hio
	f, err := os.CreateTemp("", "fnr-huge-*.fnrb3")
	if err != nil {
		log.Fatal(err)
	}
	defer os.Remove(f.Name())
	defer f.Close()
	bw := bufio.NewWriterSize(f, 1<<20)
	start = time.Now()
	wrote, err := hg.WriteBinaryV3(bw)
	if err == nil {
		err = bw.Flush()
	}
	if err != nil {
		log.Fatal(err)
	}
	hio.WriteElapsedMS = max(time.Since(start).Milliseconds(), 1)
	hio.Bytes = wrote
	if _, err := f.Seek(0, 0); err != nil {
		log.Fatal(err)
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start = time.Now()
	h, err := fnr.ReadGraph(f)
	if err != nil {
		log.Fatal(err)
	}
	hio.ReadElapsedMS = max(time.Since(start).Milliseconds(), 1)
	runtime.ReadMemStats(&after)
	transient := int64(after.TotalAlloc-before.TotalAlloc) - h.FootprintBytes()
	hio.ReadPeakTransientMB = float64(transient) / (1 << 20)
	if !h.Equal(hg) {
		log.Fatal("huge: v3 round trip changed the graph")
	}
	h = nil
	if lim := 2 * int64(fnr.V3MaxChunkLen); assertIO && transient >= lim {
		log.Fatalf("huge: streaming read allocated %.1f MB beyond the graph (budget %d MB) — decode memory is not O(chunk)",
			hio.ReadPeakTransientMB, lim>>20)
	}

	// One sweep lane batch. At d=64 « √n=1024 the whiteboard
	// algorithm is outside its δ ≥ √n regime, so the ∆-sweep baseline
	// is the preset's algorithm; MaxRounds guards against a stuck
	// trial burning the CI timeout.
	batch := fnr.Batch{
		Graph:      hg,
		StartA:     hsa,
		StartB:     hsb,
		Algorithm:  "sweep",
		Delta:      hg.MinDegree(),
		Trials:     trials,
		Seed:       seed,
		Workers:    workers,
		MaxRounds:  1 << 22,
		ShardIndex: shardIndex,
		ShardCount: shardCount,
	}
	agg, elapsed := timedRun(batch)
	hrep.ElapsedMS = elapsed
	hrep.TrialsPerSec = float64(trials) / (float64(elapsed) / 1000)
	hrep.LaneWidth = fnr.AutoLaneWidth(hg.N())
	hrep.Aggregate = agg
	return hrep
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchengine: ")
	var (
		out         = flag.String("o", "BENCH_engine.json", "output path")
		n           = flag.Int("n", 1024, "graph size")
		d           = flag.Int("d", 181, "planted minimum degree")
		trials      = flag.Int("trials", 200, "trials per batch")
		seed        = flag.Uint64("seed", 7, "batch seed (also the graph seed)")
		parallel    = flag.Int("parallel", 0, "worker count for the timed run (0 = GOMAXPROCS)")
		large       = flag.Bool("large", true, "also run the large scaling preset")
		largeN      = flag.Int("large-n", 65536, "large preset graph size")
		largeD      = flag.Int("large-d", 256, "large preset planted minimum degree")
		largeTrials = flag.Int("large-trials", 20, "large preset trials")
		setupCycles = flag.Int("setup-cycles", 10000, "build+Init+Finish cycles per stepper setup-cost measurement")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile of the timed runs to this file")

		scenarios      = flag.Bool("scenarios", true, "also run the delayed-wakeup scenario preset")
		scenarioAgents = flag.Int("scenario-agents", 3, "agent count for the scenario preset's k-agent entry (2 = skip)")
		scenarioTrials = flag.Int("scenario-trials", 64, "trials per scenario entry")
		wakeDelays     = flag.String("wake-delays", "0,16,256", "comma-separated wake delays τ for the scenario sweep")

		shard           = flag.String("shard", "", "run batch shard i of k, format i/k (trial seeds stay global; merge reducers across shards)")
		assertLockstep  = flag.Bool("assert-lockstep", false, "fail if the lockstep lane path is slower than the per-trial stepper path on any preset (CI smoke)")
		mega            = flag.Bool("mega", true, "also run the 10M-trial streaming-aggregation preset")
		megaTrials      = flag.Int("mega-trials", 10_000_000, "streaming preset trials")
		megaN           = flag.Int("mega-n", 64, "streaming preset graph size")
		megaD           = flag.Int("mega-d", 8, "streaming preset planted minimum degree")
		checkpoint      = flag.String("checkpoint", "", "journal the mega preset's progress to this file (atomic rewrite every -checkpoint-every trials)")
		checkpointEvery = flag.Int("checkpoint-every", 0, "trials between mega checkpoint flushes (0 = engine default)")
		resume          = flag.String("resume", "", "resume the mega preset from this checkpoint journal, skipping its covered trials")
		huge            = flag.Bool("huge", true, "also run the million-vertex graph-core preset")
		hugeN           = flag.Int("huge-n", 1<<20, "huge preset graph size")
		hugeD           = flag.Int("huge-d", 64, "huge preset planted minimum degree")
		hugeTrials      = flag.Int("huge-trials", 8, "huge preset sweep trials")
		assertHugeIO    = flag.Bool("assert-huge-io", false, "fail if the huge preset's streaming read allocates ≥ 2×V3MaxChunkLen beyond the graph (CI smoke)")
	)
	flag.Parse()

	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var shardIndex, shardCount int
	if *shard != "" {
		if n, _ := fmt.Sscanf(*shard, "%d/%d", &shardIndex, &shardCount); n != 2 || shardIndex < 0 || shardCount < 1 || shardIndex >= shardCount {
			log.Fatalf("invalid -shard %q: want i/k with 0 ≤ i < k", *shard)
		}
	}
	g, sa, sb, genMS := genWorkload(*n, *d, *seed)
	// Generate the large workload before the CPU profile starts too:
	// the profile covers only the timed engine runs, and at n=65536
	// generation would otherwise dominate every sample.
	var lg *fnr.Graph
	var lsa, lsb fnr.Vertex
	var lGenMS int64
	if *large {
		lg, lsa, lsb, lGenMS = genWorkload(*largeN, *largeD, *seed)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	rep := report{
		N: *n, D: *d, Trials: *trials, Seed: *seed,
		Workers: workers, GOMAXPROCS: runtime.GOMAXPROCS(0),
		GenElapsedMS: genMS,
		IO:           timeReads(g),
		Batches:      map[string]batchReport{},
	}
	for _, name := range []string{"whiteboard", "sweep"} {
		batch := fnr.Batch{
			Graph:      g,
			StartA:     sa,
			StartB:     sb,
			Algorithm:  name,
			Delta:      g.MinDegree(),
			Trials:     *trials,
			Seed:       *seed,
			Workers:    workers,
			ShardIndex: shardIndex,
			ShardCount: shardCount,
		}
		// Lockstep lane path (the engine default), configured workers.
		agg, elapsed := timedRun(batch)

		// Lockstep lane path, serial.
		batch.Workers = 1
		lockAgg, lockElapsed := timedRunBest(batch, 3)

		// Legacy one-trial-at-a-time stepper path, serial.
		batch.LaneWidth = -1
		stepperAgg, stepperElapsed := timedRunBest(batch, 3)

		// Goroutine-backed Program path, serial.
		batch.LaneWidth = 0
		batch.ForceProgramPath = true
		serialAgg, serialElapsed := timedRunBest(batch, 3)

		if !serialAgg.Equal(agg) || !stepperAgg.Equal(agg) || !lockAgg.Equal(agg) {
			log.Fatalf("%s: aggregates differ across paths/workers — engine determinism broken", name)
		}
		if *assertLockstep && lockElapsed > stepperElapsed+stepperElapsed/4+2 {
			log.Fatalf("%s: lockstep lane (%dms) slower than per-trial stepper path (%dms)", name, lockElapsed, stepperElapsed)
		}
		nativeSetup, coroSetup := timeSetups(name, g, g.MinDegree(), *setupCycles, *seed)
		rep.Batches[name] = batchReport{
			Aggregate:               agg,
			ElapsedMS:               elapsed,
			TrialsPerSec:            float64(*trials) / (float64(elapsed) / 1000),
			LaneWidth:               fnr.AutoLaneWidth(g.N()),
			SerialElapsedMS:         serialElapsed,
			StepperElapsedMS:        stepperElapsed,
			LockstepElapsedMS:       lockElapsed,
			StepperSpeedup:          float64(serialElapsed) / float64(stepperElapsed),
			LockstepSpeedup:         float64(stepperElapsed) / float64(lockElapsed),
			NativeSetupElapsedMS:    nativeSetup,
			CoroutineSetupElapsedMS: coroSetup,
			SetupSpeedup:            float64(coroSetup) / float64(nativeSetup),
		}
	}

	if *scenarios {
		var delays []int64
		for _, part := range strings.Split(*wakeDelays, ",") {
			tau, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
			if err != nil || tau < 0 {
				log.Fatalf("invalid -wake-delays %q: want comma-separated non-negative integers", *wakeDelays)
			}
			delays = append(delays, tau)
		}
		rep.Scenarios = runScenarios(g, sa, sb, *n, *d, *scenarioTrials, *seed, workers, *scenarioAgents, delays)
	}

	if *large {
		lrep := &largeReport{
			N: *largeN, D: *largeD, Trials: *largeTrials, Seed: *seed,
			Workers: workers, GenElapsedMS: lGenMS,
			IO:      timeReads(lg),
			Batches: map[string]largeBatchReport{},
		}
		for _, name := range []string{"whiteboard"} {
			batch := fnr.Batch{
				Graph:      lg,
				StartA:     lsa,
				StartB:     lsb,
				Algorithm:  name,
				Delta:      lg.MinDegree(),
				Trials:     *largeTrials,
				Seed:       *seed,
				Workers:    workers,
				ShardIndex: shardIndex,
				ShardCount: shardCount,
			}
			agg, elapsed := timedRun(batch)
			batch.Workers = 1
			lockAgg, lockElapsed := timedRunBest(batch, 3)
			batch.LaneWidth = -1
			stepperAgg, stepperElapsed := timedRunBest(batch, 3)
			if !stepperAgg.Equal(agg) || !lockAgg.Equal(agg) {
				log.Fatalf("large %s: aggregates differ across paths/workers — engine determinism broken", name)
			}
			if *assertLockstep && lockElapsed > stepperElapsed+stepperElapsed/4+2 {
				log.Fatalf("large %s: lockstep lane (%dms) slower than per-trial stepper path (%dms)", name, lockElapsed, stepperElapsed)
			}
			nativeSetup, coroSetup := timeSetups(name, lg, lg.MinDegree(), *setupCycles, *seed)
			lrep.Batches[name] = largeBatchReport{
				Aggregate:               agg,
				ElapsedMS:               elapsed,
				TrialsPerSec:            float64(*largeTrials) / (float64(elapsed) / 1000),
				LaneWidth:               fnr.AutoLaneWidth(lg.N()),
				StepperElapsedMS:        stepperElapsed,
				LockstepElapsedMS:       lockElapsed,
				LockstepSpeedup:         float64(stepperElapsed) / float64(lockElapsed),
				NativeSetupElapsedMS:    nativeSetup,
				CoroutineSetupElapsedMS: coroSetup,
				SetupSpeedup:            float64(coroSetup) / float64(nativeSetup),
			}
		}
		rep.Large = lrep
	}

	if *mega {
		// One job.Spec covers both modes — plain and crash-safe (the
		// resumed result is byte-identical to an uninterrupted run;
		// reducer merging is partition-insensitive). The workload is
		// materialized before the timer so generation stays outside the
		// throughput measurement.
		mg, msa, msb, _ := genWorkload(*megaN, *megaD, *seed)
		spec := fnr.JobSpec{
			Algorithm:       "sweep",
			Workload:        &fnr.JobWorkload{Kind: "planted", N: *megaN, D: *megaD, Seed: *seed},
			Trials:          *megaTrials,
			Seed:            *seed,
			ShardIndex:      shardIndex,
			ShardCount:      shardCount,
			Checkpoint:      *checkpoint,
			CheckpointEvery: *checkpointEvery,
			Resume:          *resume,
		}.Normalize()
		if err := spec.Validate(); err != nil {
			log.Fatalf("mega sweep: %v", err)
		}
		built := fnr.JobMaterialized{Graph: mg, StartA: msa, StartB: msb}
		runtime.GC()
		start := time.Now()
		res, err := fnr.RunJobBuilt(context.Background(), spec, built, fnr.JobExecOptions{Workers: workers})
		if err != nil {
			log.Fatalf("mega sweep: %v", err)
		}
		agg := res.Aggregate()
		elapsed := max(time.Since(start).Milliseconds(), 1)
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		rep.Mega = &megaReport{
			N: *megaN, D: *megaD, Trials: *megaTrials, Seed: *seed,
			Workers: workers, Algorithm: "sweep",
			ElapsedMS:    elapsed,
			TrialsPerSec: float64(*megaTrials) / (float64(elapsed) / 1000),
			HeapAllocMB:  float64(ms.HeapAlloc) / (1 << 20),
			Aggregate:    agg,
		}
	}

	if *huge {
		rep.Huge = runHuge(*hugeN, *hugeD, *hugeTrials, *seed, workers, shardIndex, shardCount, *assertHugeIO)
	}

	// Atomic write: a benchmark process killed mid-report must leave
	// either the previous BENCH file or the new one, never a torn
	// half-JSON a downstream comparison then half-parses.
	if err := atomicio.WriteFile(*out, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}); err != nil {
		log.Fatal(err)
	}
	log.Printf("gen n=%d d=%d: %dms", *n, *d, rep.GenElapsedMS)
	for _, name := range []string{"whiteboard", "sweep"} {
		b := rep.Batches[name]
		log.Printf("%s: lockstep %dms vs per-trial %dms vs goroutine %dms serial (%.1fx lockstep), %dms at %d workers (%.0f trials/s)",
			name, b.LockstepElapsedMS, b.StepperElapsedMS, b.SerialElapsedMS, b.LockstepSpeedup, b.ElapsedMS, workers, b.TrialsPerSec)
		log.Printf("%s setup: native %dms vs coroutine %dms per %d cycles (%.1fx)",
			name, b.NativeSetupElapsedMS, b.CoroutineSetupElapsedMS, *setupCycles, b.SetupSpeedup)
	}
	log.Printf("read n=%d: binary %dms (%d bytes) vs text %dms (%d bytes), %.1fx",
		*n, rep.IO.ReadElapsedMS, rep.IO.Bytes, rep.IO.ReadTextElapsedMS, rep.IO.TextBytes, rep.IO.ReadSpeedup)
	if rep.Scenarios != nil {
		for _, e := range rep.Scenarios.Sweep {
			log.Printf("scenario %s τ=%d: %d trials in %dms, mean meeting round %.1f",
				e.Algorithm, e.WakeDelay, rep.Scenarios.Trials, e.ElapsedMS, e.Aggregate.Rounds.Mean)
		}
		if e := rep.Scenarios.Team; e != nil {
			log.Printf("scenario %s k=%d τ=%d (firstpair): %d trials in %dms, mean meeting round %.1f",
				e.Algorithm, e.Agents, e.WakeDelay, rep.Scenarios.Trials, e.ElapsedMS, e.Aggregate.Rounds.Mean)
		}
	}
	if rep.Large != nil {
		log.Printf("large gen n=%d d=%d: %dms", rep.Large.N, rep.Large.D, rep.Large.GenElapsedMS)
		log.Printf("large read: binary %dms (%d bytes) vs text %dms (%d bytes), %.1fx",
			rep.Large.IO.ReadElapsedMS, rep.Large.IO.Bytes, rep.Large.IO.ReadTextElapsedMS, rep.Large.IO.TextBytes, rep.Large.IO.ReadSpeedup)
		for name, b := range rep.Large.Batches {
			log.Printf("large %s: %d trials, lockstep %dms vs per-trial %dms at 1 worker (%.1fx), %dms at %d workers",
				name, rep.Large.Trials, b.LockstepElapsedMS, b.StepperElapsedMS, b.LockstepSpeedup, b.ElapsedMS, workers)
			log.Printf("large %s setup: native %dms vs coroutine %dms per %d cycles (%.1fx)",
				name, b.NativeSetupElapsedMS, b.CoroutineSetupElapsedMS, *setupCycles, b.SetupSpeedup)
		}
	}
	if rep.Mega != nil {
		log.Printf("mega %s: %d trials on n=%d d=%d in %dms (%.0f trials/s), heap after %.1f MB",
			rep.Mega.Algorithm, rep.Mega.Trials, rep.Mega.N, rep.Mega.D,
			rep.Mega.ElapsedMS, rep.Mega.TrialsPerSec, rep.Mega.HeapAllocMB)
	}
	if rep.Huge != nil {
		h := rep.Huge
		log.Printf("huge gen n=%d d=%d: %dms; cycle prefix serial %dms vs bulk %dms (%.1fx)",
			h.N, h.D, h.GenElapsedMS, h.PrefixSerialElapsedMS, h.PrefixBulkElapsedMS, h.PrefixSpeedup)
		log.Printf("huge v3: write %dms (%d bytes), streaming read %dms, transient %.2f MB beyond the graph",
			h.IO.WriteElapsedMS, h.IO.Bytes, h.IO.ReadElapsedMS, h.IO.ReadPeakTransientMB)
		log.Printf("huge %s: %d trials in %dms (%.0f trials/s)",
			h.Algorithm, h.Trials, h.ElapsedMS, h.TrialsPerSec)
	}
	log.Printf("wrote %s", *out)
}
