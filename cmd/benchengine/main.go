// Command benchengine emits BENCH_engine.json: the fixed reference
// batch (whiteboard vs sweep, 200 trials each on PlantedMinDegree
// (1024, 181), batch seed 7) that gives later changes a perf
// trajectory to compare against. The aggregates are deterministic —
// only the elapsed_ms fields vary between machines and runs.
//
// Usage:
//
//	benchengine              # writes BENCH_engine.json in the cwd
//	benchengine -o out.json
//	benchengine -trials 500 -parallel 8
package main

import (
	"encoding/json"
	"flag"
	"log"
	"math/rand/v2"
	"os"
	"runtime"
	"time"

	"fnr"
)

type batchReport struct {
	Aggregate *fnr.Aggregate `json:"aggregate"`
	// ElapsedMS is wall-clock for the batch at the configured worker
	// count (machine-dependent; excluded from determinism claims).
	ElapsedMS int64 `json:"elapsed_ms"`
	// SerialElapsedMS is wall-clock for the same batch at one worker.
	SerialElapsedMS int64 `json:"serial_elapsed_ms"`
}

type report struct {
	N          int                    `json:"n"`
	D          int                    `json:"d"`
	Trials     int                    `json:"trials"`
	Seed       uint64                 `json:"seed"`
	Workers    int                    `json:"workers"`
	GOMAXPROCS int                    `json:"gomaxprocs"`
	Batches    map[string]batchReport `json:"batches"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchengine: ")
	var (
		out      = flag.String("o", "BENCH_engine.json", "output path")
		n        = flag.Int("n", 1024, "graph size")
		d        = flag.Int("d", 181, "planted minimum degree")
		trials   = flag.Int("trials", 200, "trials per batch")
		seed     = flag.Uint64("seed", 7, "batch seed (also the graph seed)")
		parallel = flag.Int("parallel", 0, "worker count for the timed run (0 = GOMAXPROCS)")
	)
	flag.Parse()

	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rng := rand.New(rand.NewPCG(*seed, 0xbe7c4))
	g, err := fnr.PlantedMinDegree(*n, *d, rng)
	if err != nil {
		log.Fatal(err)
	}
	sa := fnr.Vertex(rng.IntN(g.N()))
	for g.Degree(sa) == 0 {
		sa = fnr.Vertex(rng.IntN(g.N()))
	}
	sb := g.Adj(sa)[rng.IntN(g.Degree(sa))]

	rep := report{
		N: *n, D: *d, Trials: *trials, Seed: *seed,
		Workers: workers, GOMAXPROCS: runtime.GOMAXPROCS(0),
		Batches: map[string]batchReport{},
	}
	for _, name := range []string{"whiteboard", "sweep"} {
		batch := fnr.Batch{
			Graph:     g,
			StartA:    sa,
			StartB:    sb,
			Algorithm: name,
			Delta:     g.MinDegree(),
			Trials:    *trials,
			Seed:      *seed,
			Workers:   workers,
		}
		start := time.Now()
		agg, err := fnr.RunBatch(batch)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		elapsed := time.Since(start)

		batch.Workers = 1
		start = time.Now()
		serialAgg, err := fnr.RunBatch(batch)
		if err != nil {
			log.Fatalf("%s (serial): %v", name, err)
		}
		serialElapsed := time.Since(start)
		if *serialAgg != *agg {
			log.Fatalf("%s: serial and parallel aggregates differ — engine determinism broken", name)
		}
		rep.Batches[name] = batchReport{
			Aggregate:       agg,
			ElapsedMS:       elapsed.Milliseconds(),
			SerialElapsedMS: serialElapsed.Milliseconds(),
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (whiteboard %dms, sweep %dms at %d workers)",
		*out, rep.Batches["whiteboard"].ElapsedMS, rep.Batches["sweep"].ElapsedMS, workers)
}
