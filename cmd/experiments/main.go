// Command experiments regenerates the paper-reproduction tables
// (DESIGN.md §4, results recorded in EXPERIMENTS.md). Trials inside
// every experiment run on the batch engine's worker pool.
//
// Usage:
//
//	experiments                  # full suite, markdown to stdout
//	experiments -run E1,E5       # selected experiments
//	experiments -quick -trials 4 # smaller sweeps
//	experiments -csv out/        # also write one CSV per experiment
//	experiments -json            # machine-readable tables on stdout
//	experiments -parallel 8     # bound trial parallelism
//
// Tail mode runs one long crash-safe batch instead of the table
// suite — the entry point for resolving the Theorem 1–2 tail
// constants with orders-of-magnitude more trials than the tables
// use. It journals progress, resumes after a kill, honors Ctrl-C
// (finishing cleanly with whatever coverage it reached), and can
// inject deterministic faults; the aggregate JSON goes to stdout:
//
//	experiments -tail whiteboard -tail-trials 10000000 \
//	    -checkpoint tail.ckpt            # kill -9 any time
//	experiments -tail whiteboard -tail-trials 10000000 \
//	    -checkpoint tail.ckpt -resume tail.ckpt   # picks up coverage
//	experiments -tail sweep -faults panic:p=1e-4,stall:p=1e-4
//
// Tail batches can be scenarios: -agents k runs a k-agent gathering
// (team-capable algorithms only for k>2), -wake-delay τ delays the
// last agent's wake-up by τ rounds, and -meet firstpair ends each
// trial at the first pairwise meeting instead of the all-k gather:
//
//	experiments -tail walkpair -agents 3 -wake-delay 256 -meet firstpair
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"fnr"
	"fnr/internal/server"
)

// parseShard parses "i/k" into a shard index and count.
func parseShard(s string) (index, count int, err error) {
	if n, _ := fmt.Sscanf(s, "%d/%d", &index, &count); n != 2 || index < 0 || count < 1 || index >= count {
		return 0, 0, fmt.Errorf("invalid -shard %q: want i/k with 0 ≤ i < k", s)
	}
	return index, count, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		runList  = flag.String("run", "all", "comma-separated experiment IDs, or 'all'")
		quick    = flag.Bool("quick", false, "small sweeps (smoke mode)")
		trials   = flag.Int("trials", 0, "trials per configuration (0 = default)")
		seeds    = flag.Int("seeds", 0, "alias of -trials (kept for compatibility)")
		parallel = flag.Int("parallel", 0, "parallel trials (0 = GOMAXPROCS; never affects results)")
		workers  = flag.Int("workers", 0, "alias of -parallel (kept for compatibility)")
		preset   = flag.String("params", "practical", "constant preset: practical|paper")
		shard    = flag.String("shard", "", "run engine-batch shard i of k, format i/k (trial seeds stay global; tables then summarize partial samples)")
		csvDir   = flag.String("csv", "", "directory to write per-experiment CSVs")
		jsonOut  = flag.Bool("json", false, "emit one JSON document with every table instead of markdown")

		tailAlgo        = flag.String("tail", "", "run one crash-safe tail batch of this algorithm instead of the suite (e.g. whiteboard, sweep)")
		tailN           = flag.Int("tail-n", 1<<12, "tail mode: planted workload size")
		tailD           = flag.Int("tail-d", 64, "tail mode: planted minimum degree")
		tailTrials      = flag.Int("tail-trials", 100_000, "tail mode: trials")
		tailSeed        = flag.Uint64("tail-seed", 1, "tail mode: batch seed (also derives the workload)")
		checkpoint      = flag.String("checkpoint", "", "tail mode: journal progress to this file (atomic rewrite every -checkpoint-every trials)")
		checkpointEvery = flag.Int("checkpoint-every", 0, "tail mode: trials between checkpoint flushes (0 = engine default)")
		resume          = flag.String("resume", "", "tail mode: resume from this checkpoint journal, skipping its covered trials")
		faults          = flag.String("faults", "", "tail mode: deterministic fault plan, e.g. panic:p=1e-4,stall:p=1e-4,builderr:p=1e-5")
		faultSeed       = flag.Uint64("fault-seed", 0, "tail mode: fault-plan seed (independent of -tail-seed)")
		agents          = flag.Int("agents", 0, "tail mode: agent count k (0 = legacy two-agent batch; k>2 needs a team-capable algorithm)")
		wakeDelay       = flag.Int64("wake-delay", 0, "tail mode: delay the last agent's wake-up by this many rounds")
		meet            = flag.String("meet", "", "tail mode: meeting predicate, all|firstpair (empty = all)")
	)
	flag.Parse()

	if *trials == 0 {
		*trials = *seeds
	}
	if *parallel == 0 {
		*parallel = *workers
	}
	cfg := fnr.ExperimentConfig{Quick: *quick, Seeds: *trials, Workers: *parallel}
	if *shard != "" {
		var err error
		if cfg.ShardIndex, cfg.ShardCount, err = parseShard(*shard); err != nil {
			log.Fatal(err)
		}
	}
	switch *preset {
	case "practical":
		cfg.Params = fnr.PracticalParams()
	case "paper":
		cfg.Params = fnr.PaperParams()
	default:
		log.Fatalf("unknown preset %q", *preset)
	}

	if *tailAlgo != "" {
		runTail(cfg, tailOptions{
			algorithm: *tailAlgo,
			params:    *preset,
			n:         *tailN, d: *tailD,
			trials: *tailTrials, seed: *tailSeed,
			checkpoint: *checkpoint, checkpointEvery: *checkpointEvery,
			resume: *resume,
			faults: *faults, faultSeed: *faultSeed,
			agents: *agents, wakeDelay: *wakeDelay, meet: *meet,
		})
		return
	}

	var selected []fnr.Experiment
	if *runList == "all" {
		selected = fnr.Experiments()
	} else {
		for _, id := range strings.Split(*runList, ",") {
			id = strings.TrimSpace(id)
			e, ok := fnr.ExperimentByID(id)
			if !ok {
				log.Fatalf("unknown experiment %q", id)
			}
			selected = append(selected, e)
		}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	type jsonTable struct {
		ID        string     `json:"id"`
		Title     string     `json:"title"`
		Claim     string     `json:"claim"`
		Columns   []string   `json:"columns"`
		Rows      [][]string `json:"rows"`
		Notes     []string   `json:"notes"`
		ElapsedMS int64      `json:"elapsed_ms"`
	}
	var jsonTables []jsonTable
	for _, e := range selected {
		start := time.Now()
		tb, err := e.Run(cfg)
		if err != nil {
			log.Fatalf("%s: %v", e.ID, err)
		}
		elapsed := time.Since(start)
		if *jsonOut {
			jsonTables = append(jsonTables, jsonTable{
				ID: tb.ID, Title: tb.Title, Claim: tb.Claim,
				Columns: tb.Columns, Rows: tb.Rows, Notes: tb.Notes,
				ElapsedMS: elapsed.Milliseconds(),
			})
		} else {
			fmt.Println(tb.Render())
			fmt.Printf("(%s completed in %v)\n\n", e.ID, elapsed.Round(time.Millisecond))
		}
		if *csvDir != "" {
			path := filepath.Join(*csvDir, strings.ToLower(e.ID)+".csv")
			f, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := tb.WriteCSV(f); err != nil {
				f.Close()
				log.Fatalf("%s: writing csv: %v", e.ID, err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonTables); err != nil {
			log.Fatal(err)
		}
	}
}

// tailOptions collects the -tail* flag values.
type tailOptions struct {
	algorithm       string
	params          string
	n, d            int
	trials          int
	seed            uint64
	checkpoint      string
	checkpointEvery int
	resume          string
	faults          string
	faultSeed       uint64
	agents          int
	wakeDelay       int64
	meet            string
}

// runTail executes one long crash-safe batch and prints its aggregate
// as indented JSON. The whole run is one fnr.JobSpec — the same
// serializable description cmd/fnrd accepts over HTTP — so the
// workload derivation (PCG stream 0xbe7c4) and the aggregate bytes
// match a benchengine mega run or a daemon submission of the same
// parameters exactly.
func runTail(cfg fnr.ExperimentConfig, opt tailOptions) {
	// SIGINT/SIGTERM cancel the batch at the next chunk boundary via
	// the drain helper shared with cmd/fnrd; the run still flushes its
	// journal and prints the partial aggregate.
	ctx, stop := server.SignalContext(context.Background())
	defer stop()

	spec := fnr.JobSpec{
		Algorithm:       opt.algorithm,
		Workload:        &fnr.JobWorkload{Kind: "planted", N: opt.n, D: opt.d, Seed: opt.seed},
		Trials:          opt.trials,
		Seed:            opt.seed,
		Params:          opt.params,
		ShardIndex:      cfg.ShardIndex,
		ShardCount:      cfg.ShardCount,
		Faults:          opt.faults,
		FaultSeed:       opt.faultSeed,
		Checkpoint:      opt.checkpoint,
		CheckpointEvery: opt.checkpointEvery,
		Resume:          opt.resume,
		Agents:          opt.agents,
		Meet:            opt.meet,
	}
	if opt.wakeDelay > 0 {
		// -wake-delay τ delays the last agent; everyone else wakes at
		// round 0. The spec's delay vector must match the team size.
		k := opt.agents
		if k == 0 {
			k = 2
		}
		wd := make([]int64, k)
		wd[k-1] = opt.wakeDelay
		spec.WakeDelays = wd
	}
	spec = spec.Normalize()
	if err := spec.Validate(); err != nil {
		log.Fatalf("tail: %v", err)
	}

	res, err := fnr.RunJob(ctx, spec, fnr.JobExecOptions{Workers: cfg.Workers})
	// Cancellation still yields the partial result; report it before
	// deciding the exit status.
	cancelled := err != nil && ctx.Err() != nil && res != nil
	if err != nil && !cancelled {
		log.Fatalf("tail: %v", err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if encErr := enc.Encode(res.Aggregate()); encErr != nil {
		log.Fatal(encErr)
	}
	if cancelled {
		log.Fatalf("tail: interrupted (%v); coverage flushed, rerun with -resume to finish", err)
	}
}
