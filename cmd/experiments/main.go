// Command experiments regenerates the paper-reproduction tables
// (DESIGN.md §4, results recorded in EXPERIMENTS.md).
//
// Usage:
//
//	experiments                 # full suite, markdown to stdout
//	experiments -run E1,E5      # selected experiments
//	experiments -quick -seeds 4 # smaller sweeps
//	experiments -csv out/       # also write one CSV per experiment
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"fnr"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		runList = flag.String("run", "all", "comma-separated experiment IDs, or 'all'")
		quick   = flag.Bool("quick", false, "small sweeps (smoke mode)")
		seeds   = flag.Int("seeds", 0, "trials per configuration (0 = default)")
		workers = flag.Int("workers", 0, "parallel trials (0 = GOMAXPROCS)")
		preset  = flag.String("params", "practical", "constant preset: practical|paper")
		csvDir  = flag.String("csv", "", "directory to write per-experiment CSVs")
	)
	flag.Parse()

	cfg := fnr.ExperimentConfig{Quick: *quick, Seeds: *seeds, Workers: *workers}
	switch *preset {
	case "practical":
		cfg.Params = fnr.PracticalParams()
	case "paper":
		cfg.Params = fnr.PaperParams()
	default:
		log.Fatalf("unknown preset %q", *preset)
	}

	var selected []fnr.Experiment
	if *runList == "all" {
		selected = fnr.Experiments()
	} else {
		for _, id := range strings.Split(*runList, ",") {
			id = strings.TrimSpace(id)
			e, ok := fnr.ExperimentByID(id)
			if !ok {
				log.Fatalf("unknown experiment %q", id)
			}
			selected = append(selected, e)
		}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	for _, e := range selected {
		start := time.Now()
		tb, err := e.Run(cfg)
		if err != nil {
			log.Fatalf("%s: %v", e.ID, err)
		}
		fmt.Println(tb.Render())
		fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			path := filepath.Join(*csvDir, strings.ToLower(e.ID)+".csv")
			f, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := tb.WriteCSV(f); err != nil {
				f.Close()
				log.Fatalf("%s: writing csv: %v", e.ID, err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}
	}
}
