// Command experiments regenerates the paper-reproduction tables
// (DESIGN.md §4, results recorded in EXPERIMENTS.md). Trials inside
// every experiment run on the batch engine's worker pool.
//
// Usage:
//
//	experiments                  # full suite, markdown to stdout
//	experiments -run E1,E5       # selected experiments
//	experiments -quick -trials 4 # smaller sweeps
//	experiments -csv out/        # also write one CSV per experiment
//	experiments -json            # machine-readable tables on stdout
//	experiments -parallel 8      # bound trial parallelism
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"fnr"
)

// parseShard parses "i/k" into a shard index and count.
func parseShard(s string) (index, count int, err error) {
	if n, _ := fmt.Sscanf(s, "%d/%d", &index, &count); n != 2 || index < 0 || count < 1 || index >= count {
		return 0, 0, fmt.Errorf("invalid -shard %q: want i/k with 0 ≤ i < k", s)
	}
	return index, count, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		runList  = flag.String("run", "all", "comma-separated experiment IDs, or 'all'")
		quick    = flag.Bool("quick", false, "small sweeps (smoke mode)")
		trials   = flag.Int("trials", 0, "trials per configuration (0 = default)")
		seeds    = flag.Int("seeds", 0, "alias of -trials (kept for compatibility)")
		parallel = flag.Int("parallel", 0, "parallel trials (0 = GOMAXPROCS; never affects results)")
		workers  = flag.Int("workers", 0, "alias of -parallel (kept for compatibility)")
		preset   = flag.String("params", "practical", "constant preset: practical|paper")
		shard    = flag.String("shard", "", "run engine-batch shard i of k, format i/k (trial seeds stay global; tables then summarize partial samples)")
		csvDir   = flag.String("csv", "", "directory to write per-experiment CSVs")
		jsonOut  = flag.Bool("json", false, "emit one JSON document with every table instead of markdown")
	)
	flag.Parse()

	if *trials == 0 {
		*trials = *seeds
	}
	if *parallel == 0 {
		*parallel = *workers
	}
	cfg := fnr.ExperimentConfig{Quick: *quick, Seeds: *trials, Workers: *parallel}
	if *shard != "" {
		var err error
		if cfg.ShardIndex, cfg.ShardCount, err = parseShard(*shard); err != nil {
			log.Fatal(err)
		}
	}
	switch *preset {
	case "practical":
		cfg.Params = fnr.PracticalParams()
	case "paper":
		cfg.Params = fnr.PaperParams()
	default:
		log.Fatalf("unknown preset %q", *preset)
	}

	var selected []fnr.Experiment
	if *runList == "all" {
		selected = fnr.Experiments()
	} else {
		for _, id := range strings.Split(*runList, ",") {
			id = strings.TrimSpace(id)
			e, ok := fnr.ExperimentByID(id)
			if !ok {
				log.Fatalf("unknown experiment %q", id)
			}
			selected = append(selected, e)
		}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	type jsonTable struct {
		ID        string     `json:"id"`
		Title     string     `json:"title"`
		Claim     string     `json:"claim"`
		Columns   []string   `json:"columns"`
		Rows      [][]string `json:"rows"`
		Notes     []string   `json:"notes"`
		ElapsedMS int64      `json:"elapsed_ms"`
	}
	var jsonTables []jsonTable
	for _, e := range selected {
		start := time.Now()
		tb, err := e.Run(cfg)
		if err != nil {
			log.Fatalf("%s: %v", e.ID, err)
		}
		elapsed := time.Since(start)
		if *jsonOut {
			jsonTables = append(jsonTables, jsonTable{
				ID: tb.ID, Title: tb.Title, Claim: tb.Claim,
				Columns: tb.Columns, Rows: tb.Rows, Notes: tb.Notes,
				ElapsedMS: elapsed.Milliseconds(),
			})
		} else {
			fmt.Println(tb.Render())
			fmt.Printf("(%s completed in %v)\n\n", e.ID, elapsed.Round(time.Millisecond))
		}
		if *csvDir != "" {
			path := filepath.Join(*csvDir, strings.ToLower(e.ID)+".csv")
			f, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := tb.WriteCSV(f); err != nil {
				f.Close()
				log.Fatalf("%s: writing csv: %v", e.ID, err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonTables); err != nil {
			log.Fatal(err)
		}
	}
}
