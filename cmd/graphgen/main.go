// Command graphgen generates, inspects, and serializes the graph
// families used by the reproduction.
//
// The default -format binary picks the narrowest binary version that
// can carry the graph: v2 normally, the chunked v3 once the arc count
// exceeds v2's int32 capacity. -format binary3 forces v3. Large
// planted generations (-n 2¹⁸ and up) report progress on stderr.
//
// Usage:
//
//	graphgen -type planted -n 1024 -d 181 -o g.fnr   # generate + save (binary v2)
//	graphgen -type planted -o g.txt -format text      # v1 text (golden files)
//	graphgen -type twostars -n 514 -stats             # properties only
//	graphgen -in g.fnr -stats                         # inspect a file (any format)
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand/v2"
	"os"

	"fnr"
	"fnr/internal/atomicio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("graphgen: ")
	var (
		kind   = flag.String("type", "planted", "family: planted|complete|ring|path|star|grid|torus|hypercube|gnp|regular|twostars|starclique|kt0|dist2|det")
		n      = flag.Int("n", 256, "size parameter")
		d      = flag.Int("d", 16, "degree parameter")
		p      = flag.Float64("p", 0.1, "edge probability (gnp)")
		seed   = flag.Uint64("seed", 1, "generator seed")
		out    = flag.String("o", "", "write the graph to this file")
		format = flag.String("format", "binary", "output format: binary (v2, or v3 when the graph exceeds v2 capacity), binary3 (force v3), or text (v1); reading auto-detects")
		in     = flag.String("in", "", "read a graph from this file instead of generating (either format)")
		stats  = flag.Bool("stats", false, "print structural properties")
		idMode = flag.String("ids", "tight", "ID assignment: tight|permuted|sparse")
	)
	flag.Parse()

	var g *fnr.Graph
	var err error
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		g, err = fnr.ReadGraph(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	} else {
		g, err = generate(*kind, *n, *d, *p, *seed, *idMode)
		if err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println(g)
	if *stats {
		fmt.Printf("connected: %v\n", fnr.IsConnected(g))
		adjacent := fnr.PairsAtDistance(g, 1, 1)
		if len(adjacent) > 0 {
			fmt.Printf("sample adjacent pair: %d-%d\n", adjacent[0][0], adjacent[0][1])
		}
	}
	if *out != "" {
		write, label := (*fnr.Graph).WriteBinary, "binary v2"
		switch *format {
		case "binary":
			// v2 is the compact default, but its counts are int32; once
			// the arc count would overflow them, only the chunked v3
			// format can carry the graph.
			if arcs := 2 * int64(g.M()); arcs > math.MaxInt32 {
				write, label = (*fnr.Graph).WriteBinaryV3, "binary v3"
			}
		case "binary3":
			write, label = (*fnr.Graph).WriteBinaryV3, "binary v3"
		case "text":
			write, label = (*fnr.Graph).WriteTo, "text"
		default:
			log.Fatalf("unknown format %q (want binary, binary3, or text)", *format)
		}
		// Atomic rewrite: a crash mid-write (or a reader racing the
		// generator) never observes a truncated graph file.
		err := atomicio.WriteFile(*out, func(w io.Writer) error {
			_, err := write(g, w)
			return err
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%s)\n", *out, label)
	}
}

func generate(kind string, n, d int, p float64, seed uint64, idMode string) (*fnr.Graph, error) {
	rng := rand.New(rand.NewPCG(seed, 0xbeef))
	hard := map[string]fnr.HardKind{
		"twostars": fnr.HardTwoStars, "starclique": fnr.HardStarClique,
		"kt0": fnr.HardKT0, "dist2": fnr.HardDistance2, "det": fnr.HardDeterministic,
	}
	if hk, ok := hard[kind]; ok {
		inst, err := fnr.HardInstance(hk, n)
		if err != nil {
			return nil, err
		}
		fmt.Printf("hard instance %q: start a=%d b=%d, predicted lower bound %d rounds\n",
			inst.Name, inst.StartA, inst.StartB, inst.LowerBound)
		fmt.Printf("note: %s\n", inst.Note)
		return inst.G, nil
	}
	var g *fnr.Graph
	var err error
	switch kind {
	case "planted":
		// At large n generation runs for minutes; report progress on
		// stderr, throttled to ~5% steps so the log stays short no
		// matter the size.
		var progress func(done, expected int)
		if n >= 1<<18 {
			lastPct := -5
			progress = func(done, expected int) {
				if pct := done * 100 / expected; pct >= lastPct+5 {
					lastPct = pct
					log.Printf("planted n=%d d=%d: %d/%d edges (%d%%)", n, d, done, expected, pct)
				}
			}
		}
		g, err = fnr.PlantedMinDegreeProgress(n, d, rng, progress)
	case "complete":
		g, err = fnr.Complete(n)
	case "ring":
		g, err = fnr.Ring(n)
	case "path":
		g, err = fnr.Path(n)
	case "star":
		g, err = fnr.Star(n)
	case "grid":
		g, err = fnr.Grid(n, n)
	case "torus":
		g, err = fnr.Torus(n, n)
	case "hypercube":
		g, err = fnr.Hypercube(n)
	case "gnp":
		g, err = fnr.GNP(n, p, rng)
	case "regular":
		g, err = fnr.RandomRegular(n, d, rng)
	default:
		return nil, fmt.Errorf("unknown graph family %q", kind)
	}
	if err != nil {
		return nil, err
	}
	switch idMode {
	case "tight":
		return g, nil
	case "permuted", "sparse":
		b := fnr.Rebuild(g)
		if idMode == "permuted" {
			b.PermuteIDs(rng)
		} else if err := b.SparseIDs(16, rng); err != nil {
			return nil, err
		}
		return b.Build()
	default:
		return nil, fmt.Errorf("unknown ID mode %q", idMode)
	}
}
