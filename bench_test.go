package fnr

// One benchmark per reproduction experiment (DESIGN.md §4): each run
// regenerates the corresponding EXPERIMENTS.md table under a reduced
// (quick) configuration and reports table size and wall time. Full
// tables are produced by `go run ./cmd/experiments`.
//
// Micro-benchmarks at the bottom measure the substrate itself
// (simulator round throughput, generators, Construct, adversary).

import (
	"math/rand/v2"
	"testing"

	"fnr/internal/core"
	"fnr/internal/harness"
	"fnr/internal/lower"
	"fnr/internal/sim"
)

// benchExperiment runs one suite entry per iteration in quick mode.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := harness.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	cfg := harness.Config{Quick: true, Seeds: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb, err := e.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(tb.Rows)), "rows")
	}
}

func BenchmarkE1MainScalingN(b *testing.B)   { benchExperiment(b, "E1") }
func BenchmarkE2Crossover(b *testing.B)      { benchExperiment(b, "E2") }
func BenchmarkE3NoWhiteboard(b *testing.B)   { benchExperiment(b, "E3") }
func BenchmarkE4SampleAccuracy(b *testing.B) { benchExperiment(b, "E4") }
func BenchmarkE5Construct(b *testing.B)      { benchExperiment(b, "E5") }
func BenchmarkE6StarLowerBound(b *testing.B) { benchExperiment(b, "E6") }
func BenchmarkE7KT0LowerBound(b *testing.B)  { benchExperiment(b, "E7") }
func BenchmarkE8Distance2(b *testing.B)      { benchExperiment(b, "E8") }
func BenchmarkE9Adversary(b *testing.B)      { benchExperiment(b, "E9") }
func BenchmarkE10SuccessRate(b *testing.B)   { benchExperiment(b, "E10") }
func BenchmarkE11AndersonWeber(b *testing.B) { benchExperiment(b, "E11") }
func BenchmarkA1StrictOnly(b *testing.B)     { benchExperiment(b, "A1") }
func BenchmarkA2Doubling(b *testing.B)       { benchExperiment(b, "A2") }

// BenchmarkSimRoundThroughput measures the raw cost of one simulated
// round (two moving agents, KT1 views, no fast-forwarding possible).
func BenchmarkSimRoundThroughput(b *testing.B) {
	g, err := Ring(64)
	if err != nil {
		b.Fatal(err)
	}
	walker := func(e *Env) {
		n := e.NPrime()
		for {
			if err := e.MoveToID((e.HereID() + 1) % n); err != nil {
				return
			}
		}
	}
	b.ResetTimer()
	res, err := RunPrograms(SimConfig{
		Graph: g, StartA: 0, StartB: 32, NeighborIDs: true,
		MaxRounds: int64(b.N), DisableMeeting: true,
	}, walker, walker)
	if err != nil {
		b.Fatal(err)
	}
	if res.Rounds != int64(b.N) {
		b.Fatalf("executed %d rounds, want %d", res.Rounds, b.N)
	}
}

// BenchmarkPlantedMinDegree measures workload-graph generation.
func BenchmarkPlantedMinDegree(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 2))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := PlantedMinDegree(1024, 181, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConstruct measures one full Construct run (the dominant cost
// of the Theorem-1 algorithm) at n=256, δ=n^0.75.
func BenchmarkConstruct(b *testing.B) {
	rng := rand.New(rand.NewPCG(3, 4))
	g, err := PlantedMinDegree(256, 64, rng)
	if err != nil {
		b.Fatal(err)
	}
	ghost := func(e *sim.Env) {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := sim.Run(sim.Config{
			Graph: g, StartA: 0, StartB: 1, NeighborIDs: true,
			Seed: uint64(i), MaxRounds: 1 << 40, DisableMeeting: true,
		}, core.ConstructOnly(core.PracticalParams(), core.Knowledge{Delta: g.MinDegree()}, nil), ghost)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWhiteboardRendezvous measures one end-to-end Theorem-1 run.
func BenchmarkWhiteboardRendezvous(b *testing.B) {
	rng := rand.New(rand.NewPCG(5, 6))
	g, err := PlantedMinDegree(512, 108, rng)
	if err != nil {
		b.Fatal(err)
	}
	sa := Vertex(0)
	sb := g.Adj(sa)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Rendezvous(g, sa, sb, AlgWhiteboard, Options{
			Seed: uint64(i) + 1, Delta: g.MinDegree(),
		})
		if err != nil || !res.Met {
			b.Fatalf("run %d failed: %v met=%v", i, err, res != nil && res.Met)
		}
	}
}

// BenchmarkNoboardRendezvous measures one end-to-end Theorem-2 run.
func BenchmarkNoboardRendezvous(b *testing.B) {
	rng := rand.New(rand.NewPCG(7, 8))
	g, err := PlantedMinDegree(256, 84, rng)
	if err != nil {
		b.Fatal(err)
	}
	sa := Vertex(0)
	sb := g.Adj(sa)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Rendezvous(g, sa, sb, AlgNoWhiteboard, Options{
			Seed: uint64(i) + 1, Delta: g.MinDegree(), MaxRounds: 1 << 40,
		})
		if err != nil || !res.Met {
			b.Fatalf("run %d failed: %v", i, err)
		}
	}
}

// BenchmarkSweepBaseline measures the trivial O(∆) strategy.
func BenchmarkSweepBaseline(b *testing.B) {
	g, err := Complete(512)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Rendezvous(g, 0, 1, AlgSweep, Options{Seed: uint64(i) + 1})
		if err != nil || !res.Met {
			b.Fatalf("run %d failed: %v", i, err)
		}
	}
}

// BenchmarkAdversaryBuild measures Lemma 9's adaptive construction and
// the Theorem-6 glue.
func BenchmarkAdversaryBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := lower.Theorem6Instance(256, lower.NewGreedySweep, lower.NewGreedySweep); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE12Families(b *testing.B) { benchExperiment(b, "E12") }
